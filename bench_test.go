package marketminer

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see EXPERIMENTS.md for the index):
//
//	Table I    — BenchmarkTableI_ParamGrid
//	Table II   — BenchmarkTableII_QuoteGeneration
//	Table III  — BenchmarkTableIII_CumulativeReturns
//	Table IV   — BenchmarkTableIV_MaxDrawdown
//	Table V    — BenchmarkTableV_WinLoss
//	Figure 1   — BenchmarkFigure1_Pipeline
//	Figure 2   — BenchmarkFigure2_BoxPlots
//	§IV cost   — BenchmarkSectionV_SequentialPairDay (the "2 seconds")
//	§V compare — BenchmarkSectionV_IntegratedSweepDay vs _FarmSweepDay
//	§II engine — BenchmarkCorrelation* (window costs, online matrix,
//	             worker scaling)
//	Ablations  — BenchmarkAblation* (stop-loss / correlation-reversion
//	             exits, the §III extensions)
//	Feed edge  — BenchmarkFeed* (binary wire codec vs the CSV path,
//	             quotes/sec)

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/clean"
	"marketminer/internal/corr"
	"marketminer/internal/feed"
	"marketminer/internal/market"
	"marketminer/internal/portfolio"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// benchSweep runs one shared tiny sweep for the aggregation benches.
var (
	sweepOnce sync.Once
	sweepRes  *BacktestResult
	sweepErr  error
)

func sharedSweep(b *testing.B) *BacktestResult {
	b.Helper()
	sweepOnce.Do(func() {
		cfg := SweepConfig(ScaleTiny, 42)
		cfg.Levels = ParamLevels()[:4]
		sweepRes, sweepErr = RunBacktest(context.Background(), cfg)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepRes
}

// benchDay prepares one cleaned trading day for a small universe.
func benchDay(b *testing.B, stocks int) (*backtest.DayData, backtest.Config) {
	b.Helper()
	u, err := taq.NewUniverse(taq.DefaultSymbols()[:stocks])
	if err != nil {
		b.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = u
	mc.Days = 1
	mc.Seed = 7
	cfg := backtest.Config{Market: mc}
	gen, err := market.NewGenerator(mc)
	if err != nil {
		b.Fatal(err)
	}
	dd, err := backtest.PrepareDay(cfg, gen, 0)
	if err != nil {
		b.Fatal(err)
	}
	return dd, cfg
}

// BenchmarkTableI_ParamGrid measures construction of the 42-set grid.
func BenchmarkTableI_ParamGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if g := ParamGrid(); len(g) != 42 {
			b.Fatal("grid size")
		}
	}
}

// BenchmarkTableII_QuoteGeneration measures synthetic TAQ production —
// the Table II substrate — in quotes/op for an 8-stock day.
func BenchmarkTableII_QuoteGeneration(b *testing.B) {
	u, _ := taq.NewUniverse(taq.DefaultSymbols()[:8])
	mc := market.DefaultConfig()
	mc.Universe = u
	mc.Days = 1
	gen, err := market.NewGenerator(mc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day, err := gen.GenerateDay(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(day.Quotes) == 0 {
			b.Fatal("no quotes")
		}
	}
}

// BenchmarkTableIII_CumulativeReturns regenerates the Table III
// statistics from the shared sweep.
func BenchmarkTableIII_CumulativeReturns(b *testing.B) {
	res := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggs := res.CumulativeMonthlyReturns()
		if len(aggs) != 3 {
			b.Fatal("aggregates")
		}
	}
}

// BenchmarkTableIV_MaxDrawdown regenerates the Table IV statistics.
func BenchmarkTableIV_MaxDrawdown(b *testing.B) {
	res := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(res.MaxDailyDrawdowns()) != 3 {
			b.Fatal("aggregates")
		}
	}
}

// BenchmarkTableV_WinLoss regenerates the Table V statistics.
func BenchmarkTableV_WinLoss(b *testing.B) {
	res := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(res.WinLossRatios()) != 3 {
			b.Fatal("aggregates")
		}
	}
}

// BenchmarkFigure2_BoxPlots regenerates all three Figure 2 panels.
func BenchmarkFigure2_BoxPlots(b *testing.B) {
	res := sharedSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FormatFigure2(res) == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure1_Pipeline measures the end-to-end streaming DAG over
// one 6-stock day (collector → … → master).
func BenchmarkFigure1_Pipeline(b *testing.B) {
	u, _ := taq.NewUniverse(taq.DefaultSymbols()[:6])
	mc := market.DefaultConfig()
	mc.Universe = u
	mc.Days = 1
	gen, err := market.NewGenerator(mc)
	if err != nil {
		b.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	cfg := PipelineConfig{Universe: u, Params: []Params{p}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunLivePipeline(context.Background(), cfg, day.Quotes, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSectionV_SequentialPairDay measures the Approach-2 unit of
// work per correlation treatment — the reproduction's analogue of the
// paper's "approximately 2 seconds" per (pair, day, set).
func BenchmarkSectionV_SequentialPairDay(b *testing.B) {
	dd, _ := benchDay(b, 4)
	for _, ct := range corr.Types() {
		b.Run(ct.String(), func(b *testing.B) {
			p := strategy.DefaultParams().WithType(ct)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := backtest.RunPairDaySequential(p, dd, 0, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSectionV_IntegratedSweepDay measures the Approach-3 runner
// on a 1-day, 6-stock, 2-level workload.
func BenchmarkSectionV_IntegratedSweepDay(b *testing.B) {
	cfg := sweepDayConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backtest.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSectionV_FarmSweepDay measures the Approach-2 farm on the
// identical workload; the ratio to IntegratedSweepDay is the paper's
// Section V speedup.
func BenchmarkSectionV_FarmSweepDay(b *testing.B) {
	cfg := sweepDayConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backtest.Farm(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func sweepDayConfig(b *testing.B) backtest.Config {
	b.Helper()
	u, err := taq.NewUniverse(taq.DefaultSymbols()[:6])
	if err != nil {
		b.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = u
	mc.Days = 1
	mc.Seed = 13
	return backtest.Config{Market: mc, Levels: strategy.BaseGrid()[:2]}
}

// BenchmarkCorrelationWindow measures one M=100 window per estimator —
// the §II claim that the robust measure is "computationally expensive".
func BenchmarkCorrelationWindow(b *testing.B) {
	dd, _ := benchDay(b, 4)
	x := dd.Returns[0][:100]
	y := dd.Returns[1][:100]
	for _, ct := range corr.Types() {
		est, err := corr.NewEstimator(ct)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ct.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := est.Corr(x, y)
				if c < -1 || c > 1 {
					b.Fatal("out of range")
				}
			}
		})
	}
}

// BenchmarkCorrelationWindowWarm measures the engine's steady-state
// per-window cost: a warm-started sliding Maronna fit seeded from the
// previous window's fixed point, and the fused variant that serves
// both robust treatments from that single fit. Compare against the
// cold-start BenchmarkCorrelationWindow numbers — the gap is the
// tentpole speedup of the warm-start/fusion overhaul.
func BenchmarkCorrelationWindowWarm(b *testing.B) {
	dd, _ := benchDay(b, 4)
	x, y := dd.Returns[0], dd.Returns[1]
	const m = 100
	steps := len(x) - m
	if steps <= 0 {
		b.Fatal("day too short")
	}
	est := corr.NewMaronnaEstimator(corr.DefaultMaronnaConfig())
	b.Run("Maronna", func(b *testing.B) {
		var sc *corr.Scratch
		warm, sc := est.FitScratch(x[:m], y[:m], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+m], y[t:t+m], sc, &warm)
		}
	})
	b.Run("MaronnaCombinedFused", func(b *testing.B) {
		var sc *corr.Scratch
		warm, sc := est.FitScratch(x[:m], y[:m], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+m], y[t:t+m], sc, &warm)
			c := corr.CombinedFromFit(x[t:t+m], y[t:t+m], warm.Rho, sc.Weights())
			if c < -1 || c > 1 {
				b.Fatal("out of range")
			}
		}
	})
}

// BenchmarkCorrelationSeriesFused compares computing the Maronna and
// Combined day series separately against the fused ComputeSeriesMulti
// pass that shares one robust fit per window between them.
func BenchmarkCorrelationSeriesFused(b *testing.B) {
	dd, _ := benchDay(b, 8)
	short := make([][]float64, len(dd.Returns))
	for i := range short {
		short[i] = dd.Returns[i][:300]
	}
	cfg := corr.EngineConfig{M: 100, Workers: 2}
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, ct := range []corr.Type{corr.Maronna, corr.Combined} {
				c := cfg
				c.Type = ct
				if _, err := corr.ComputeSeries(c, short); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := corr.ComputeSeriesMulti(cfg, []corr.Type{corr.Maronna, corr.Combined}, short); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorrelationMatrixOnline measures one streaming matrix
// update for a 20-stock universe (190 pairs).
func BenchmarkCorrelationMatrixOnline(b *testing.B) {
	dd, _ := benchDay(b, 20)
	for _, ct := range []corr.Type{corr.Pearson, corr.Maronna} {
		b.Run(ct.String(), func(b *testing.B) {
			eng, err := corr.NewOnlineEngine(corr.EngineConfig{Type: ct, M: 100}, 20)
			if err != nil {
				b.Fatal(err)
			}
			vec := make([]float64, 20)
			// Warm up the window.
			for u := 0; u < 100; u++ {
				for i := 0; i < 20; i++ {
					vec[i] = dd.Returns[i][u]
				}
				if _, err := eng.Push(vec); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := 100 + i%500
				for j := 0; j < 20; j++ {
					vec[j] = dd.Returns[j][u]
				}
				if _, err := eng.Push(vec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorrelationWorkerScaling sweeps the worker count for a full
// day of Maronna series over 15 stocks (105 pairs) — the axis the MPI
// implementation scaled along ranks. On a single-core host the curve
// is flat; on a multi-core host it should be near-linear.
func BenchmarkCorrelationWorkerScaling(b *testing.B) {
	dd, _ := benchDay(b, 15)
	short := make([][]float64, len(dd.Returns))
	for i := range short {
		short[i] = dd.Returns[i][:250]
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corr.ComputeSeries(corr.EngineConfig{Type: corr.Maronna, M: 100, Workers: workers}, short); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}

// BenchmarkCleaningFilter measures the TCP-like filter in quotes/op.
func BenchmarkCleaningFilter(b *testing.B) {
	u, _ := taq.NewUniverse(taq.DefaultSymbols()[:8])
	mc := market.DefaultConfig()
	mc.Universe = u
	mc.Days = 1
	mc.Contamination = 0.01
	gen, err := market.NewGenerator(mc)
	if err != nil {
		b.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := clean.NewFilter(clean.DefaultConfig())
		for _, q := range day.Quotes {
			f.Accept(q)
		}
	}
	b.ReportMetric(float64(len(day.Quotes)), "quotes/op")
}

// BenchmarkAblationExits compares the baseline §III exit set with the
// stop-loss and correlation-reversion extensions the paper describes
// but does not evaluate.
func BenchmarkAblationExits(b *testing.B) {
	dd, _ := benchDay(b, 4)
	base := strategy.DefaultParams()
	variants := []struct {
		name string
		mut  func(*strategy.Params)
	}{
		{"baseline", func(p *strategy.Params) {}},
		{"stop-loss", func(p *strategy.Params) { p.StopLoss = 0.002 }},
		{"corr-reversion", func(p *strategy.Params) { p.CorrReversion = true }},
	}
	for _, v := range variants {
		p := base
		v.mut(&p)
		b.Run(v.name, func(b *testing.B) {
			var trades int
			for i := 0; i < b.N; i++ {
				ts, err := backtest.RunPairDaySequential(p, dd, 0, 1, 0)
				if err != nil {
					b.Fatal(err)
				}
				trades += len(ts)
			}
			b.ReportMetric(float64(trades)/float64(b.N), "trades/op")
		})
	}
}

// BenchmarkAblationCosts measures the cost-model ablation: the same
// sweep day frictionless vs with realistic frictions (the paper's
// future-work "implementation shortfalls"). The reported mean-ret
// metric shows the edge shrinking as costs turn on.
func BenchmarkAblationCosts(b *testing.B) {
	variants := []struct {
		name  string
		costs portfolio.CostModel
	}{
		{"frictionless", portfolio.CostModel{}},
		{"commission+spread", portfolio.CostModel{Commission: 0.005, SpreadCross: 1}},
		{"with-impact", portfolio.CostModel{Commission: 0.005, SpreadCross: 1, ImpactCoeff: 1e-7}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := sweepDayConfig(b)
			cfg.Costs = v.costs
			var sum float64
			var n int
			for i := 0; i < b.N; i++ {
				res, err := backtest.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				for p := range res.Series {
					for k := range res.Series[p] {
						for _, r := range res.Series[p][k].Flat() {
							sum += r
							n++
						}
					}
				}
			}
			if n > 0 {
				b.ReportMetric(sum/float64(n)*1e4, "mean-ret-bps")
			}
		})
	}
}

// --- Feed wire format: binary codec vs the CSV path -------------------
//
// The paper's live system moves ~50 GB of quotes per day from the
// collector to the compute cluster; the binary feed codec exists to
// make that edge cheap. These benches compare quotes/sec through the
// codec against the CSV reader/writer on identical data.

// benchFeedQuotes builds one deterministic batch of n quotes.
func benchFeedQuotes(b *testing.B, n int) ([]taq.Quote, *taq.Universe) {
	b.Helper()
	u, err := taq.NewUniverse(taq.DefaultSymbols()[:8])
	if err != nil {
		b.Fatal(err)
	}
	quotes := make([]taq.Quote, n)
	for i := range quotes {
		quotes[i] = taq.Quote{
			Day:     0,
			SeqTime: float64(i) * 0.01,
			Symbol:  u.Symbol(i % u.Len()),
			Bid:     100 + float64(i%500)*0.01,
			Ask:     100.02 + float64(i%500)*0.01,
			BidSize: 1 + i%40,
			AskSize: 1 + (i*3)%40,
		}
	}
	return quotes, u
}

func reportQuotesPerSec(b *testing.B, n int) {
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "quotes/sec")
}

func BenchmarkFeedCodecEncode(b *testing.B) {
	quotes, u := benchFeedQuotes(b, 4096)
	var buf bytes.Buffer
	enc := feed.NewEncoder(&buf, u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.WriteBatch(&feed.Batch{Seq: uint64(i) + 1, Quotes: quotes}); err != nil {
			b.Fatal(err)
		}
	}
	reportQuotesPerSec(b, len(quotes))
}

func BenchmarkFeedCodecDecode(b *testing.B) {
	quotes, u := benchFeedQuotes(b, 4096)
	var buf bytes.Buffer
	enc := feed.NewEncoder(&buf, u)
	if err := enc.WriteHello(&feed.Hello{Version: feed.ProtocolVersion, Symbols: u.Symbols()}); err != nil {
		b.Fatal(err)
	}
	if err := enc.WriteBatch(&feed.Batch{Seq: 1, Quotes: quotes}); err != nil {
		b.Fatal(err)
	}
	stream := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := feed.NewDecoder(bytes.NewReader(stream))
		if _, err := dec.Read(); err != nil { // hello
			b.Fatal(err)
		}
		f, err := dec.Read()
		if err != nil {
			b.Fatal(err)
		}
		if len(f.(*feed.Batch).Quotes) != len(quotes) {
			b.Fatal("short batch")
		}
	}
	reportQuotesPerSec(b, len(quotes))
}

func BenchmarkFeedCSVWrite(b *testing.B) {
	quotes, _ := benchFeedQuotes(b, 4096)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := taq.NewWriter(&buf)
		for _, q := range quotes {
			if err := w.Write(q); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	reportQuotesPerSec(b, len(quotes))
}

func BenchmarkFeedCSVRead(b *testing.B) {
	quotes, _ := benchFeedQuotes(b, 4096)
	var buf bytes.Buffer
	w := taq.NewWriter(&buf)
	for _, q := range quotes {
		if err := w.Write(q); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := taq.NewReader(bytes.NewReader(data), true)
		n := 0
		for {
			_, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(quotes) {
			b.Fatal("short read")
		}
	}
	reportQuotesPerSec(b, len(quotes))
}
