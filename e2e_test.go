package marketminer

// End-to-end integration tests crossing module boundaries the way the
// command-line tools do: CSV persistence → file-collector replay →
// pipeline, and pipeline trades → metrics → report, plus determinism
// of the whole stack.

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/metrics"
	"marketminer/internal/taq"
)

func e2eUniverse(t *testing.T) *Universe {
	t.Helper()
	u, err := NewUniverse([]string{"XOM", "CVX", "UPS", "FDX", "WMT"})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func e2eQuotes(t *testing.T, u *Universe) []Quote {
	t.Helper()
	gen, err := NewMarket(MarketConfig{Universe: u, Seed: 17, Days: 1, Contamination: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	return day.Quotes
}

// TestE2E_CSVReplayMatchesDirectFeed writes a day through the TAQ CSV
// writer, reads it back (the mmgen → mmpipeline path), and checks the
// pipeline produces identical trades from both feeds. Prices survive
// at 4-decimal resolution, which is the generator's native tick size.
func TestE2E_CSVReplayMatchesDirectFeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	u := e2eUniverse(t)
	quotes := e2eQuotes(t, u)

	var buf bytes.Buffer
	w := taq.NewWriter(&buf)
	for _, q := range quotes {
		if err := w.Write(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := taq.NewReader(&buf, true)
	var replayed []Quote
	for {
		q, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replayed = append(replayed, q)
	}
	if len(replayed) != len(quotes) {
		t.Fatalf("replayed %d of %d quotes", len(replayed), len(quotes))
	}

	p := DefaultParams()
	p.M = 50
	cfg := PipelineConfig{Universe: u, Params: []Params{p}}
	direct, err := RunLivePipeline(context.Background(), cfg, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := PipelineConfig{Universe: u, Params: []Params{p}}
	fromCSV, err := RunLivePipeline(context.Background(), cfg2, replayed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Trades[0]) != len(fromCSV.Trades[0]) {
		t.Fatalf("direct %d trades, CSV replay %d", len(direct.Trades[0]), len(fromCSV.Trades[0]))
	}
	for i := range direct.Trades[0] {
		a, b := direct.Trades[0][i], fromCSV.Trades[0][i]
		if a.EntryS != b.EntryS || a.ExitS != b.ExitS || a.LongStock != b.LongStock {
			t.Errorf("trade %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestE2E_TradesToMetricsToReport pushes pipeline trades through the
// Equations (1)–(9) metrics into a rendered table, checking the whole
// analysis chain is consistent.
func TestE2E_TradesToMetricsToReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	u := e2eUniverse(t)
	quotes := e2eQuotes(t, u)
	p := DefaultParams()
	p.M = 50
	res, err := RunLivePipeline(context.Background(), PipelineConfig{
		Universe: u, Params: []Params{p},
	}, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rets []float64
	for _, tr := range res.Trades[0] {
		rets = append(rets, tr.Return)
	}
	if len(rets) == 0 {
		t.Skip("no trades this seed")
	}
	daily := metrics.DailyCumulative(rets)
	wins, losses := metrics.WinLossCounts(rets)
	if wins+losses > len(rets) {
		t.Fatal("win/loss counts exceed trades")
	}
	mdd := metrics.MaxDrawdown(rets)
	if mdd < 0 {
		t.Fatal("negative drawdown")
	}
	// Compounding identity: 1+daily == Π(1+r).
	prod := 1.0
	for _, r := range rets {
		prod *= 1 + r
	}
	if diff := (1 + daily) - prod; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("compounding identity violated: %v", diff)
	}
}

// TestE2E_DeterministicStack asserts the full stack (generator →
// cleaner → backtest → aggregation) is bit-deterministic for a fixed
// seed, which the reproducibility of EXPERIMENTS.md depends on.
func TestE2E_DeterministicStack(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() string {
		cfg := SweepConfig(ScaleTiny, 23)
		cfg.Levels = ParamLevels()[:2]
		res, err := RunBacktest(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return FormatTableIII(res) + FormatTableIV(res) + FormatTableV(res)
	}
	a := run()
	b := run()
	if a != b {
		t.Error("identical seeds produced different tables")
	}
	if !strings.Contains(a, "TABLE III") {
		t.Error("table missing header")
	}
}

// TestE2E_JSONWorkflow exercises the mmbacktest -json → mmreport path.
func TestE2E_JSONWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := SweepConfig(ScaleTiny, 31)
	cfg.Levels = ParamLevels()[:2]
	res, err := RunBacktest(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := backtest.SaveJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := backtest.LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTableIII(back) != FormatTableIII(res) {
		t.Error("Table III changed across JSON round-trip")
	}
	if FormatFigure2(back) != FormatFigure2(res) {
		t.Error("Figure 2 changed across JSON round-trip")
	}
}
