// Command mmchaos drives the deterministic crash/recovery harness: a
// synthetic correlation-engine day run under the supervision runtime,
// with seeded panics, crash-safe snapshots, and an optional hard
// SIGKILL mid-day. The day's result is a single FNV-64 digest over
// every matrix produced, so "the crashed-and-resumed run equals the
// clean run" is one hex comparison — which is exactly what
// scripts/chaos_smoke.sh does.
//
// Usage:
//
//	mmchaos -intervals 500                        # clean run, print digest
//	mmchaos -snapshot day.snap -crash-after 200   # SIGKILL itself mid-day
//	mmchaos -snapshot day.snap                    # resume; digest must match
//	mmchaos -fail-at 60,130                       # seeded panics + restarts
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"marketminer/internal/chaos"
	"marketminer/internal/corr"
	"marketminer/internal/supervise"
)

func main() {
	var (
		n         = flag.Int("n", 8, "universe size")
		m         = flag.Int("m", 50, "correlation window M")
		ctype     = flag.String("type", "maronna", "correlation measure: pearson | maronna | combined")
		intervals = flag.Int("intervals", 500, "return intervals in the day")
		seed      = flag.Int64("seed", 42, "synthetic return seed")
		snapshot  = flag.String("snapshot", "", "crash-safe engine snapshot file (empty = none)")
		every     = flag.Int("snapshot-every", 25, "intervals between snapshots")
		crash     = flag.Int("crash-after", 0, "SIGKILL the process after this many pushes (0 = off)")
		failAt    = flag.String("fail-at", "", "comma-separated intervals that panic once each, e.g. 60,130")
		quiet     = flag.Bool("quiet", false, "print only the final digest")
	)
	flag.Parse()
	if err := run(*n, *m, *ctype, *intervals, *seed, *snapshot, *every, *crash, *failAt, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "mmchaos:", err)
		os.Exit(1)
	}
}

func run(n, m int, ctype string, intervals int, seed int64, snapshot string, every, crash int, failAt string, quiet bool) error {
	ct, err := corr.ParseType(ctype)
	if err != nil {
		return err
	}
	fails, err := parseFailAt(failAt)
	if err != nil {
		return err
	}
	cfg := chaos.DayConfig{
		N: n, M: m, Type: ct, Intervals: intervals, Seed: seed,
		SnapshotPath: snapshot, SnapshotEvery: every,
		FailAt: fails, CrashAfter: crash,
		Policy: supervise.Policy{InitialBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mmchaos: "+format+"\n", args...)
		}
	}
	res, err := chaos.RunDay(context.Background(), cfg)
	if err != nil {
		return err
	}
	if quiet {
		fmt.Printf("%016x\n", res.Digest)
		return nil
	}
	fmt.Printf("digest   %016x\n", res.Digest)
	fmt.Printf("pushed   %d intervals (of %d)\n", res.Pushed, intervals)
	if res.Resumed {
		fmt.Printf("resumed  from snapshot at interval %d\n", res.ResumeCursor)
	}
	if res.ColdStart != "" {
		fmt.Printf("coldstart %s\n", res.ColdStart)
	}
	if res.Report.Panics > 0 {
		fmt.Printf("survived %d panics, %d restarts\n", res.Report.Panics, res.Report.Restarts)
	}
	return nil
}

func parseFailAt(text string) ([]int, error) {
	if text == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(text, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -fail-at interval %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
