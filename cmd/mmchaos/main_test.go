package main

import (
	"path/filepath"
	"testing"
)

func TestRunCleanAndWithPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run(5, 20, "maronna", 120, 7, "", 25, 0, "", true); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "day.snap")
	if err := run(5, 20, "maronna", 120, 7, snap, 25, 0, "40,90", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(5, 20, "spearmanX", 120, 7, "", 25, 0, "", true); err == nil {
		t.Error("unknown ctype should error")
	}
	if err := run(5, 20, "pearson", 120, 7, "", 25, 0, "40,x", true); err == nil {
		t.Error("malformed -fail-at should error")
	}
}

func TestParseFailAt(t *testing.T) {
	got, err := parseFailAt(" 60, 130 ")
	if err != nil || len(got) != 2 || got[0] != 60 || got[1] != 130 {
		t.Fatalf("parseFailAt: %v %v", got, err)
	}
	if out, err := parseFailAt(""); err != nil || out != nil {
		t.Errorf("empty fail-at: %v %v", out, err)
	}
	if _, err := parseFailAt("-3"); err == nil {
		t.Error("negative interval accepted")
	}
}
