package main

import (
	"os"
	"path/filepath"
	"testing"

	"marketminer/internal/taq"
)

func TestRunWritesReadableCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "taq.csv")
	if err := run(out, 1, 4, 5, 0.05, 0.01, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	quotes, err := taq.NewReader(f, true).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(quotes) == 0 {
		t.Fatal("no quotes written")
	}
	for _, q := range quotes[:10] {
		if q.Day != 0 || q.Symbol == "" {
			t.Fatalf("malformed quote %+v", q)
		}
	}
}

func TestRunSampleMode(t *testing.T) {
	// Sample mode writes to stdout only; it must not create the file.
	out := filepath.Join(t.TempDir(), "unused.csv")
	if err := run(out, 1, 4, 5, 0.05, 0, 2, true, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("sample mode should not write a file")
	}
}

func TestRunValidatesStocks(t *testing.T) {
	if err := run("x.csv", 1, 1, 5, 0.05, 0, 2, false, 0); err == nil {
		t.Error("stocks < 2 should error")
	}
	if err := run("x.csv", 1, 1025, 5, 0.05, 0, 2, false, 0); err == nil {
		t.Error("stocks > 1024 should error")
	}
}

// TestRunSyntheticUniverseDeterministic pins the scaled-universe
// contract: past the 61 real tickers the generator extends the
// universe with synthetic symbols, and two runs at the same size and
// seed produce byte-identical files — the property that makes large
// sharded sweeps reproducible.
func TestRunSyntheticUniverseDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")
	// 80 stocks crosses the synthetic-ticker boundary; one day keeps
	// the test fast.
	if err := run(a, 1, 80, 5, 0.05, 0, 7, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(b, 1, 80, 5, 0.05, 0, 7, false, 0); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("same size+seed produced different files")
	}
	if len(da) == 0 {
		t.Fatal("empty output")
	}
}
