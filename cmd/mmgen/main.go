// Command mmgen generates synthetic TAQ quote data — the stand-in for
// the paper's proprietary NYSE March-2008 dataset — and writes it as
// CSV, one file per trading day or a single stream.
//
// Usage:
//
//	mmgen -out taq.csv -days 5 -stocks 20 -seed 42
//	mmgen -sample            # print a Table II style sample and exit
//
// The generator is deterministic in -seed; see internal/market for the
// factor model, breakdown events and contamination it injects.
package main

import (
	"flag"
	"fmt"
	"os"

	"marketminer/internal/market"
	"marketminer/internal/taq"
)

func main() {
	var (
		out      = flag.String("out", "taq.csv", "output CSV path (one file, all days)")
		days     = flag.Int("days", 1, "trading days to generate")
		stocks   = flag.Int("stocks", 61, "universe size (2..1024; past 61 uses synthetic tickers)")
		seed     = flag.Int64("seed", 20080301, "random seed")
		rate     = flag.Float64("rate", 0.5, "quote arrivals per stock per second")
		contam   = flag.Float64("contamination", 0.004, "bad-tick probability")
		breakdn  = flag.Float64("breakdowns", 6, "expected breakdown events per stock per day")
		sample   = flag.Bool("sample", false, "print a Table II style sample and exit")
		sampleSz = flag.Int("sample-size", 12, "rows in the sample")
	)
	flag.Parse()
	if err := run(*out, *days, *stocks, *seed, *rate, *contam, *breakdn, *sample, *sampleSz); err != nil {
		fmt.Fprintln(os.Stderr, "mmgen:", err)
		os.Exit(1)
	}
}

func run(out string, days, stocks int, seed int64, rate, contam, breakdn float64, sample bool, sampleSz int) error {
	if stocks < 2 || stocks > 1024 {
		return fmt.Errorf("stocks must be in [2, 1024], got %d", stocks)
	}
	uni, err := taq.NewUniverse(taq.SyntheticSymbols(stocks))
	if err != nil {
		return err
	}
	cfg := market.DefaultConfig()
	cfg.Universe = uni
	cfg.Days = days
	cfg.Seed = seed
	cfg.QuoteRate = rate
	cfg.Contamination = contam
	cfg.BreakdownsPerDay = breakdn
	gen, err := market.NewGenerator(cfg)
	if err != nil {
		return err
	}

	if sample {
		day, err := gen.GenerateDay(0)
		if err != nil {
			return err
		}
		fmt.Println("TABLE II — SAMPLE DATA (synthetic TAQ)")
		fmt.Printf("%-9s %-6s %10s %10s %8s %8s\n", "Timestamp", "Symbol", "Bid", "Ask", "BidSize", "AskSize")
		for i := 0; i < sampleSz && i < len(day.Quotes); i++ {
			q := day.Quotes[i]
			fmt.Printf("%-9s %-6s %10.2f %10.2f %8d %8d\n", q.Clock(), q.Symbol, q.Bid, q.Ask, q.BidSize, q.AskSize)
		}
		return nil
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := taq.NewWriter(f)
	var bad int
	for d := 0; d < days; d++ {
		day, err := gen.GenerateDay(d)
		if err != nil {
			return err
		}
		for _, q := range day.Quotes {
			if err := w.Write(q); err != nil {
				return err
			}
		}
		bad += day.NumBad
		fmt.Printf("day %2d: %d quotes (%d corrupted)\n", d, len(day.Quotes), day.NumBad)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d quotes (%d corrupted) for %d stocks x %d days to %s\n",
		w.Count(), bad, stocks, days, out)
	return nil
}
