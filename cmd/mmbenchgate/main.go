// Command mmbenchgate compares a freshly measured BENCH_corr.json
// against the committed baseline and fails loudly when a structural
// performance property regressed. It gates ratios, not absolute
// nanoseconds: wall-clock numbers move with the host, but the fusion
// speedup, the matrix engine's win over the per-pair reference, and
// the warm-start hit rate are properties of the code and should never
// collapse.
//
// Usage:
//
//	mmbenchgate -fresh /tmp/bench.json -committed BENCH_corr.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// gateReport is the subset of the bench schema the gate reads. Older
// committed baselines (schema v2, no engine section) gate only the
// fields they carry.
type gateReport struct {
	Schema        string  `json:"schema"`
	FusionSpeedup float64 `json:"fusion_speedup"`
	Robust        struct {
		WarmHitFrac float64 `json:"warm_hit_fraction"`
	} `json:"robust"`
	Engine struct {
		PearsonSpeedup float64 `json:"pearson_speedup"`
		FusedSpeedup   float64 `json:"fused_speedup"`
	} `json:"engine"`
}

type gateConfig struct {
	// minFrac is the fraction of a committed speedup the fresh run must
	// retain. Speedups are already host-normalised ratios, but loaded
	// CI machines still jitter them; 0.6 catches a structural collapse
	// (a speedup falling toward 1×) without flaking on noise.
	minFrac float64
	// warmTol is the absolute tolerance on the warm-start hit fraction,
	// which is a near-deterministic property of the data and estimator.
	warmTol float64
}

type check struct {
	name     string
	fresh    float64
	floor    float64
	ok       bool
	skipNote string
}

// gate evaluates every ratio check and returns the results plus
// overall pass/fail.
func gate(fresh, committed *gateReport, cfg gateConfig) ([]check, bool) {
	var checks []check
	ratio := func(name string, f, c float64) {
		ck := check{name: name, fresh: f, floor: cfg.minFrac * c}
		if c == 0 {
			ck.ok = true
			ck.skipNote = "not in committed baseline"
		} else {
			ck.ok = f >= ck.floor
		}
		checks = append(checks, ck)
	}
	ratio("fusion_speedup", fresh.FusionSpeedup, committed.FusionSpeedup)
	ratio("engine.pearson_speedup", fresh.Engine.PearsonSpeedup, committed.Engine.PearsonSpeedup)
	ratio("engine.fused_speedup", fresh.Engine.FusedSpeedup, committed.Engine.FusedSpeedup)

	wh := check{
		name:  "robust.warm_hit_fraction",
		fresh: fresh.Robust.WarmHitFrac,
		floor: committed.Robust.WarmHitFrac - cfg.warmTol,
	}
	if committed.Robust.WarmHitFrac == 0 {
		wh.ok = true
		wh.skipNote = "not in committed baseline"
	} else {
		wh.ok = wh.fresh >= wh.floor
	}
	checks = append(checks, wh)

	pass := true
	for _, c := range checks {
		pass = pass && c.ok
	}
	return checks, pass
}

func load(path string) (*gateReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r gateReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	var (
		freshPath     = flag.String("fresh", "", "freshly measured bench JSON")
		committedPath = flag.String("committed", "BENCH_corr.json", "committed baseline bench JSON")
		minFrac       = flag.Float64("min-frac", 0.6, "fraction of each committed speedup the fresh run must retain")
		warmTol       = flag.Float64("warm-tol", 0.02, "absolute tolerance on the warm-start hit fraction")
	)
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "mmbenchgate: -fresh is required")
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbenchgate:", err)
		os.Exit(2)
	}
	committed, err := load(*committedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbenchgate:", err)
		os.Exit(2)
	}

	checks, pass := gate(fresh, committed, gateConfig{minFrac: *minFrac, warmTol: *warmTol})
	fmt.Printf("bench gate: fresh %s (%s) vs committed %s (%s)\n",
		*freshPath, fresh.Schema, *committedPath, committed.Schema)
	for _, c := range checks {
		switch {
		case c.skipNote != "":
			fmt.Printf("  SKIP %-28s %s\n", c.name, c.skipNote)
		case c.ok:
			fmt.Printf("  PASS %-28s %.4f >= floor %.4f\n", c.name, c.fresh, c.floor)
		default:
			fmt.Printf("  FAIL %-28s %.4f <  floor %.4f\n", c.name, c.fresh, c.floor)
		}
	}
	if !pass {
		fmt.Println("bench gate: FAIL — a structural performance property regressed")
		os.Exit(1)
	}
	fmt.Println("bench gate: PASS")
}
