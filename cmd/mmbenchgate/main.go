// Command mmbenchgate compares a freshly measured BENCH_corr.json
// against the committed baseline and fails loudly when a structural
// performance property regressed. It gates ratios, not absolute
// nanoseconds: wall-clock numbers move with the host, but the fusion
// speedup, the matrix engine's win over the per-pair reference, and
// the warm-start hit rate are properties of the code and should never
// collapse.
//
// It can also gate the BENCH_scaling.json parallel-efficiency curve:
// pass -fresh-scaling/-committed-scaling and every non-oversubscribed
// worker point's efficiency is held to the same min-frac ratio rule.
// Points that cannot be compared (oversubscribed, or absent from the
// committed curve) are reported in a skip summary, and the gate fails
// outright when zero comparable points remain — an all-skip run gated
// nothing and must not pass silently.
//
// v5 schemas add a simd section (the lane-major AVX2 kernel's speedup
// over the scalar batched kernel, the f32 8-wide lane, and the pack
// overhead share); those checks skip when the fresh run dispatched the
// scalar tier, so non-AVX2 hosts still gate everything else.
//
// Usage:
//
//	mmbenchgate -fresh /tmp/bench.json -committed BENCH_corr.json
//	mmbenchgate -fresh /tmp/bench.json -committed BENCH_corr.json \
//	    -fresh-scaling /tmp/scaling.json -committed-scaling BENCH_scaling.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// gateReport is the subset of the bench schema the gate reads. Older
// committed baselines (schema v2, no engine section) gate only the
// fields they carry.
type gateReport struct {
	Schema        string  `json:"schema"`
	FusionSpeedup float64 `json:"fusion_speedup"`
	Robust        struct {
		WarmHitFrac float64 `json:"warm_hit_fraction"`
	} `json:"robust"`
	Engine struct {
		PearsonSpeedup float64 `json:"pearson_speedup"`
		FusedSpeedup   float64 `json:"fused_speedup"`
	} `json:"engine"`
	Batch struct {
		RobustBatchedSpeedup float64 `json:"robust_batched_speedup"`
		Float32Speedup       float64 `json:"float32_speedup"`
		F32MaxAbsRhoDelta    float64 `json:"f32_max_abs_rho_delta"`
	} `json:"batch"`
	SIMD struct {
		DispatchTier          string  `json:"dispatch_tier"`
		RobustSIMDSpeedup     float64 `json:"robust_simd_speedup"`
		F32SIMDSpeedup        float64 `json:"f32_simd_speedup"`
		F32SIMDMaxAbsRhoDelta float64 `json:"f32_simd_max_abs_rho_delta"`
		PackOverheadFrac      float64 `json:"pack_overhead_frac"`
	} `json:"simd"`
	Screen struct {
		PruneRatio      float64 `json:"screen_prune_ratio"`
		PipelineSpeedup float64 `json:"pipeline_speedup"`
	} `json:"screen"`
}

// scalingGateReport is the subset of the BENCH_scaling.json schema the
// gate reads.
type scalingGateReport struct {
	Schema string `json:"schema"`
	NumCPU int    `json:"numcpu"`
	Points []struct {
		Workers        int     `json:"workers"`
		Efficiency     float64 `json:"efficiency"`
		Oversubscribed bool    `json:"oversubscribed"`
	} `json:"points"`
}

type gateConfig struct {
	// minFrac is the fraction of a committed speedup the fresh run must
	// retain. Speedups are already host-normalised ratios, but loaded
	// CI machines still jitter them; 0.6 catches a structural collapse
	// (a speedup falling toward 1×) without flaking on noise.
	minFrac float64
	// warmTol is the absolute tolerance on the warm-start hit fraction,
	// which is a near-deterministic property of the data and estimator.
	warmTol float64
	// f32Tol is the absolute ceiling on the float32 lane's measured
	// max |Δρ| versus the exact path. Unlike the ratio checks this is a
	// hard accuracy bound, not a host-relative one: the lane's contract
	// is "approximate but bounded", and a delta past this ceiling means
	// the polish or fallback logic broke.
	f32Tol float64
}

type check struct {
	name     string
	fresh    float64
	floor    float64
	ceiling  bool // floor is actually an upper bound (accuracy checks)
	ok       bool
	skipNote string
}

// gate evaluates every ratio check and returns the results plus
// overall pass/fail.
func gate(fresh, committed *gateReport, cfg gateConfig) ([]check, bool) {
	var checks []check
	ratio := func(name string, f, c float64) {
		ck := check{name: name, fresh: f, floor: cfg.minFrac * c}
		if c == 0 {
			ck.ok = true
			ck.skipNote = "not in committed baseline"
		} else {
			ck.ok = f >= ck.floor
		}
		checks = append(checks, ck)
	}
	ratio("fusion_speedup", fresh.FusionSpeedup, committed.FusionSpeedup)
	ratio("engine.pearson_speedup", fresh.Engine.PearsonSpeedup, committed.Engine.PearsonSpeedup)
	ratio("engine.fused_speedup", fresh.Engine.FusedSpeedup, committed.Engine.FusedSpeedup)
	ratio("batch.robust_batched_speedup", fresh.Batch.RobustBatchedSpeedup, committed.Batch.RobustBatchedSpeedup)
	ratio("batch.float32_speedup", fresh.Batch.Float32Speedup, committed.Batch.Float32Speedup)
	ratio("screen.screen_prune_ratio", fresh.Screen.PruneRatio, committed.Screen.PruneRatio)
	ratio("screen.pipeline_speedup", fresh.Screen.PipelineSpeedup, committed.Screen.PipelineSpeedup)

	// The SIMD kernel speedups compare the vector tier against the
	// scalar batched kernel inside the fresh run. A host (or build)
	// that dispatched scalar measures ≈1.0 by construction — that is
	// the fallback working, not a regression — so those ratios are
	// gated only when the fresh run actually ran the vector tier.
	simdRatio := func(name string, f, c float64) {
		ck := check{name: name, fresh: f, floor: cfg.minFrac * c}
		switch {
		case fresh.SIMD.DispatchTier != "" && fresh.SIMD.DispatchTier != "avx2":
			ck.ok = true
			ck.skipNote = "fresh run dispatched " + fresh.SIMD.DispatchTier
		case c == 0:
			ck.ok = true
			ck.skipNote = "not in committed baseline"
		default:
			ck.ok = f >= ck.floor
		}
		checks = append(checks, ck)
	}
	simdRatio("simd.robust_simd_speedup", fresh.SIMD.RobustSIMDSpeedup, committed.SIMD.RobustSIMDSpeedup)
	simdRatio("simd.f32_simd_speedup", fresh.SIMD.F32SIMDSpeedup, committed.SIMD.F32SIMDSpeedup)

	// Pack overhead is a cost fraction, so it gates as a ceiling: the
	// transpose share of vector batch time must not balloon past the
	// committed share by more than the 1/minFrac jitter allowance.
	pack := check{
		name:    "simd.pack_overhead_frac",
		fresh:   fresh.SIMD.PackOverheadFrac,
		floor:   committed.SIMD.PackOverheadFrac / cfg.minFrac,
		ceiling: true,
	}
	switch {
	case fresh.SIMD.DispatchTier != "" && fresh.SIMD.DispatchTier != "avx2":
		pack.ok = true
		pack.skipNote = "fresh run dispatched " + fresh.SIMD.DispatchTier
	case committed.SIMD.PackOverheadFrac == 0:
		pack.ok = true
		pack.skipNote = "not in committed baseline"
	default:
		pack.ok = pack.fresh <= pack.floor
	}
	checks = append(checks, pack)

	// The f32-on-SIMD accuracy delta is an absolute ceiling like the
	// scalar-lane one: the 8-wide kernel must hold the same contract.
	f32simd := check{
		name:    "simd.f32_simd_max_abs_rho_delta",
		fresh:   fresh.SIMD.F32SIMDMaxAbsRhoDelta,
		floor:   cfg.f32Tol,
		ceiling: true,
	}
	if fresh.SIMD.F32SIMDSpeedup == 0 {
		f32simd.ok = true
		f32simd.skipNote = "not in fresh measurement"
	} else {
		f32simd.ok = f32simd.fresh <= f32simd.floor
	}
	checks = append(checks, f32simd)

	// The float32 accuracy delta is gated as an absolute ceiling — but
	// only when the fresh run measured the lane at all (a zero delta
	// with a zero float32 speedup means the section is absent).
	f32 := check{
		name:    "batch.f32_max_abs_rho_delta",
		fresh:   fresh.Batch.F32MaxAbsRhoDelta,
		floor:   cfg.f32Tol,
		ceiling: true,
	}
	if fresh.Batch.Float32Speedup == 0 {
		f32.ok = true
		f32.skipNote = "not in fresh measurement"
	} else {
		f32.ok = f32.fresh <= f32.floor
	}
	checks = append(checks, f32)

	wh := check{
		name:  "robust.warm_hit_fraction",
		fresh: fresh.Robust.WarmHitFrac,
		floor: committed.Robust.WarmHitFrac - cfg.warmTol,
	}
	if committed.Robust.WarmHitFrac == 0 {
		wh.ok = true
		wh.skipNote = "not in committed baseline"
	} else {
		wh.ok = wh.fresh >= wh.floor
	}
	checks = append(checks, wh)

	pass := true
	for _, c := range checks {
		pass = pass && c.ok
	}
	return checks, pass
}

// gateScaling holds each fresh non-oversubscribed worker point's
// parallel efficiency to minFrac of the committed curve's efficiency
// at the same worker count. Oversubscribed points (workers > NumCPU)
// measure scheduler behaviour, not hardware scaling, and are skipped;
// so are worker counts absent from the committed curve (host with a
// different core count, or an older doubling-subsampled baseline).
// Alongside the checks it returns how many points were actually
// compared: a run where every point skipped gated nothing, and the
// caller must fail rather than report a hollow PASS.
func gateScaling(fresh, committed *scalingGateReport, cfg gateConfig) (checks []check, comparable, skipped int) {
	byWorkers := make(map[int]float64)
	for _, p := range committed.Points {
		if !p.Oversubscribed {
			byWorkers[p.Workers] = p.Efficiency
		}
	}
	for _, p := range fresh.Points {
		ck := check{
			name:  fmt.Sprintf("scaling.efficiency[w=%d]", p.Workers),
			fresh: p.Efficiency,
		}
		c, inBaseline := byWorkers[p.Workers]
		switch {
		case p.Oversubscribed:
			ck.ok = true
			ck.skipNote = "oversubscribed (workers > numcpu)"
		case !inBaseline || c == 0:
			ck.ok = true
			ck.skipNote = "not in committed baseline"
		default:
			ck.floor = cfg.minFrac * c
			ck.ok = ck.fresh >= ck.floor
		}
		if ck.skipNote != "" {
			skipped++
		} else {
			comparable++
		}
		checks = append(checks, ck)
	}
	return checks, comparable, skipped
}

func load(path string) (*gateReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r gateReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func loadScaling(path string) (*scalingGateReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r scalingGateReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// printChecks renders check lines and folds their verdicts into pass.
func printChecks(checks []check, pass bool) bool {
	for _, c := range checks {
		rel, relFail := ">=", "< "
		if c.ceiling {
			rel, relFail = "<=", "> "
		}
		switch {
		case c.skipNote != "":
			fmt.Printf("  SKIP %-30s %s\n", c.name, c.skipNote)
		case c.ok:
			fmt.Printf("  PASS %-30s %.4g %s bound %.4g\n", c.name, c.fresh, rel, c.floor)
		default:
			fmt.Printf("  FAIL %-30s %.4g %s bound %.4g\n", c.name, c.fresh, relFail, c.floor)
		}
		pass = pass && c.ok
	}
	return pass
}

func main() {
	var (
		freshPath        = flag.String("fresh", "", "freshly measured bench JSON")
		committedPath    = flag.String("committed", "BENCH_corr.json", "committed baseline bench JSON")
		freshScaling     = flag.String("fresh-scaling", "", "freshly measured scaling JSON (optional)")
		committedScaling = flag.String("committed-scaling", "BENCH_scaling.json", "committed baseline scaling JSON")
		minFrac          = flag.Float64("min-frac", 0.6, "fraction of each committed speedup/efficiency the fresh run must retain")
		warmTol          = flag.Float64("warm-tol", 0.02, "absolute tolerance on the warm-start hit fraction")
		f32Tol           = flag.Float64("f32-tol", 1e-4, "absolute ceiling on the float32 lane's max |Δρ| vs the exact path")
	)
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "mmbenchgate: -fresh is required")
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbenchgate:", err)
		os.Exit(2)
	}
	committed, err := load(*committedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbenchgate:", err)
		os.Exit(2)
	}

	cfg := gateConfig{minFrac: *minFrac, warmTol: *warmTol, f32Tol: *f32Tol}
	checks, pass := gate(fresh, committed, cfg)
	fmt.Printf("bench gate: fresh %s (%s) vs committed %s (%s)\n",
		*freshPath, fresh.Schema, *committedPath, committed.Schema)
	pass = printChecks(checks, pass)

	if *freshScaling != "" {
		fs, err := loadScaling(*freshScaling)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmbenchgate:", err)
			os.Exit(2)
		}
		cs, err := loadScaling(*committedScaling)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmbenchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("scaling gate: fresh %s (%s, numcpu %d) vs committed %s (%s, numcpu %d)\n",
			*freshScaling, fs.Schema, fs.NumCPU, *committedScaling, cs.Schema, cs.NumCPU)
		scChecks, comparable, skipped := gateScaling(fs, cs, cfg)
		pass = printChecks(scChecks, pass)
		fmt.Printf("  %d scaling point(s) compared, %d skipped (oversubscribed/missing)\n", comparable, skipped)
		if comparable == 0 {
			fmt.Println("  FAIL scaling: zero comparable points — the curve was not gated at all")
			pass = false
		}
	}

	if !pass {
		fmt.Println("bench gate: FAIL — a structural performance property regressed")
		os.Exit(1)
	}
	fmt.Println("bench gate: PASS")
}
