package main

import "testing"

func report(fusion, warm, pearson, fused float64) *gateReport {
	var r gateReport
	r.FusionSpeedup = fusion
	r.Robust.WarmHitFrac = warm
	r.Engine.PearsonSpeedup = pearson
	r.Engine.FusedSpeedup = fused
	return &r
}

// fullReport extends report with the v4 batch and screen sections.
func fullReport(fusion, warm, pearson, fused, batched, f32, f32Delta, prune, pipeline float64) *gateReport {
	r := report(fusion, warm, pearson, fused)
	r.Batch.RobustBatchedSpeedup = batched
	r.Batch.Float32Speedup = f32
	r.Batch.F32MaxAbsRhoDelta = f32Delta
	r.Screen.PruneRatio = prune
	r.Screen.PipelineSpeedup = pipeline
	return r
}

var cfg = gateConfig{minFrac: 0.6, warmTol: 0.02, f32Tol: 1e-4}

func TestGatePassesWithinTolerance(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	// Fresh run somewhat slower but structurally intact.
	fresh := report(2.0, 0.990, 1.3, 0.9)
	checks, pass := gate(fresh, committed, cfg)
	if !pass {
		t.Fatalf("gate failed on tolerable drift: %+v", checks)
	}
}

func TestGateFailsOnFusionCollapse(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	fresh := report(1.0, 0.998, 1.8, 1.1) // fusion win gone
	checks, pass := gate(fresh, committed, cfg)
	if pass {
		t.Fatal("gate passed a fusion-speedup collapse")
	}
	for _, c := range checks {
		if c.name == "fusion_speedup" && c.ok {
			t.Fatal("fusion_speedup check did not fail")
		}
	}
}

func TestGateFailsOnWarmHitDrop(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	fresh := report(2.9, 0.90, 1.8, 1.1) // warm chain broken
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a warm-hit-fraction drop")
	}
}

func TestGateFailsOnEngineRegression(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	fresh := report(2.9, 0.998, 0.9, 1.1) // matrix engine now slower than reference
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a matrix-engine regression")
	}
}

func TestGateSkipsFieldsAbsentFromBaseline(t *testing.T) {
	// A v2 baseline carries no engine section; those checks must skip,
	// not fail, so the gate works across a schema upgrade. The same
	// applies to a v3 baseline with no batch/screen sections.
	committed := report(2.9, 0.998, 0, 0)
	fresh := report(2.9, 0.998, 1.8, 1.1)
	checks, pass := gate(fresh, committed, cfg)
	if !pass {
		t.Fatalf("gate failed against a v2 baseline: %+v", checks)
	}
	skips := 0
	for _, c := range checks {
		if c.skipNote != "" {
			skips++
		}
	}
	// engine pearson+fused, batch batched+f32 speedups, screen
	// prune+pipeline, the f32 accuracy delta (lane not measured), and
	// the four simd checks (section absent from both reports).
	if skips != 11 {
		t.Fatalf("%d checks skipped, want 11: %+v", skips, checks)
	}
}

func TestGateFailsOnBatchedSpeedupCollapse(t *testing.T) {
	committed := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.5, 2.2)
	fresh := fullReport(2.9, 0.998, 1.8, 1.1, 0.5, 1.2, 4e-6, 0.5, 2.2)
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a robust_batched_speedup collapse")
	}
}

func TestGateFailsOnPruneRatioCollapse(t *testing.T) {
	committed := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.5, 2.2)
	fresh := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.1, 2.2)
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a screen_prune_ratio collapse")
	}
}

func TestGateFailsOnPipelineSpeedupCollapse(t *testing.T) {
	committed := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.5, 2.2)
	fresh := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.5, 1.0)
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a pipeline_speedup collapse")
	}
}

func TestGateFailsOnF32AccuracyBreach(t *testing.T) {
	committed := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.5, 2.2)
	fresh := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 5e-4, 0.5, 2.2)
	checks, pass := gate(fresh, committed, cfg)
	if pass {
		t.Fatal("gate passed an f32 accuracy breach")
	}
	for _, c := range checks {
		if c.name == "batch.f32_max_abs_rho_delta" && c.ok {
			t.Fatal("f32 accuracy check did not fail")
		}
	}
}

// simdReportFix extends fullReport with a v5 simd section.
func simdReportFix(tier string, robust, f32, f32Delta, packFrac float64) *gateReport {
	r := fullReport(2.9, 0.998, 1.8, 1.1, 1.1, 1.2, 4e-6, 0.5, 2.2)
	r.SIMD.DispatchTier = tier
	r.SIMD.RobustSIMDSpeedup = robust
	r.SIMD.F32SIMDSpeedup = f32
	r.SIMD.F32SIMDMaxAbsRhoDelta = f32Delta
	r.SIMD.PackOverheadFrac = packFrac
	return r
}

func TestGateFailsOnSIMDSpeedupCollapse(t *testing.T) {
	committed := simdReportFix("avx2", 1.9, 1.8, 5e-6, 0.01)
	fresh := simdReportFix("avx2", 1.0, 1.8, 5e-6, 0.01) // vector win gone
	checks, pass := gate(fresh, committed, cfg)
	if pass {
		t.Fatal("gate passed a robust_simd_speedup collapse")
	}
	for _, c := range checks {
		if c.name == "simd.robust_simd_speedup" && c.ok {
			t.Fatal("robust_simd_speedup check did not fail")
		}
	}
}

func TestGateSkipsSIMDOnScalarDispatch(t *testing.T) {
	// A host without AVX2 measures speedups ≈1.0 against an avx2
	// baseline: that is the fallback working, and the gate must skip
	// the simd ratios rather than fail them.
	committed := simdReportFix("avx2", 1.9, 1.8, 5e-6, 0.01)
	fresh := simdReportFix("scalar", 1.0, 1.0, 5e-6, 0)
	checks, pass := gate(fresh, committed, cfg)
	if !pass {
		t.Fatalf("gate failed a scalar-dispatch fresh run: %+v", checks)
	}
	for _, c := range checks {
		if c.name == "simd.robust_simd_speedup" && c.skipNote == "" {
			t.Fatalf("robust_simd_speedup was gated on a scalar host: %+v", c)
		}
	}
}

func TestGateFailsOnPackOverheadBlowup(t *testing.T) {
	committed := simdReportFix("avx2", 1.9, 1.8, 5e-6, 0.02)
	fresh := simdReportFix("avx2", 1.9, 1.8, 5e-6, 0.30) // transpose cost ballooned
	checks, pass := gate(fresh, committed, cfg)
	if pass {
		t.Fatal("gate passed a pack-overhead blowup")
	}
	for _, c := range checks {
		if c.name == "simd.pack_overhead_frac" && c.ok {
			t.Fatal("pack_overhead_frac check did not fail")
		}
	}
}

func scalingFixture(numCPU int, effs []float64, oversub []bool) *scalingGateReport {
	r := &scalingGateReport{Schema: "marketminer/bench_scaling/v2", NumCPU: numCPU}
	for i, e := range effs {
		r.Points = append(r.Points, struct {
			Workers        int     `json:"workers"`
			Efficiency     float64 `json:"efficiency"`
			Oversubscribed bool    `json:"oversubscribed"`
		}{Workers: i + 1, Efficiency: e, Oversubscribed: oversub[i]})
	}
	return r
}

func TestGateScalingSkipsOversubscribedAndMissing(t *testing.T) {
	committed := scalingFixture(2, []float64{1.0, 0.9}, []bool{false, false})
	// Fresh host has 2 real cores and two oversubscribed tail points
	// whose efficiency is necessarily poor; points 3-4 are absent from
	// the committed curve anyway.
	fresh := scalingFixture(2, []float64{1.0, 0.85, 0.4, 0.3}, []bool{false, false, true, true})
	checks, comparable, skipped := gateScaling(fresh, committed, cfg)
	printableOK(t, checks)
	if n := len(checks); n != 4 {
		t.Fatalf("%d checks, want 4", n)
	}
	if comparable != 2 || skipped != 2 {
		t.Fatalf("comparable=%d skipped=%d, want 2/2", comparable, skipped)
	}
	for _, c := range checks[2:] {
		if c.skipNote == "" {
			t.Fatalf("oversubscribed point %s was gated: %+v", c.name, c)
		}
	}
}

// TestGateScalingCountsZeroComparable pins the hollow-PASS fix: a fresh
// curve whose every point is oversubscribed or missing from the
// baseline must report zero comparable points, so main can fail instead
// of printing PASS over an ungated curve.
func TestGateScalingCountsZeroComparable(t *testing.T) {
	committed := scalingFixture(2, []float64{1.0, 0.9}, []bool{false, false})
	// Every fresh point is either oversubscribed or at a worker count
	// the committed curve lacks.
	fresh := scalingFixture(8, []float64{0, 0, 0.7, 0.6}, []bool{true, true, false, false})
	fresh.Points[0].Workers = 9
	fresh.Points[1].Workers = 10
	fresh.Points[2].Workers = 3
	fresh.Points[3].Workers = 4
	checks, comparable, skipped := gateScaling(fresh, committed, cfg)
	if comparable != 0 || skipped != len(checks) {
		t.Fatalf("comparable=%d skipped=%d (of %d), want 0/%d", comparable, skipped, len(checks), len(checks))
	}
}

func TestGateScalingFailsOnEfficiencyCollapse(t *testing.T) {
	committed := scalingFixture(2, []float64{1.0, 0.9}, []bool{false, false})
	fresh := scalingFixture(2, []float64{1.0, 0.3}, []bool{false, false})
	checks, _, _ := gateScaling(fresh, committed, cfg)
	pass := true
	for _, c := range checks {
		pass = pass && c.ok
	}
	if pass {
		t.Fatal("scaling gate passed a 2-worker efficiency collapse")
	}
}

func printableOK(t *testing.T, checks []check) []check {
	t.Helper()
	for _, c := range checks {
		if !c.ok {
			t.Fatalf("check %s failed: %+v", c.name, c)
		}
	}
	return checks
}
