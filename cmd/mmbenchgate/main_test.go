package main

import "testing"

func report(fusion, warm, pearson, fused float64) *gateReport {
	var r gateReport
	r.FusionSpeedup = fusion
	r.Robust.WarmHitFrac = warm
	r.Engine.PearsonSpeedup = pearson
	r.Engine.FusedSpeedup = fused
	return &r
}

var cfg = gateConfig{minFrac: 0.6, warmTol: 0.02}

func TestGatePassesWithinTolerance(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	// Fresh run somewhat slower but structurally intact.
	fresh := report(2.0, 0.990, 1.3, 0.9)
	checks, pass := gate(fresh, committed, cfg)
	if !pass {
		t.Fatalf("gate failed on tolerable drift: %+v", checks)
	}
}

func TestGateFailsOnFusionCollapse(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	fresh := report(1.0, 0.998, 1.8, 1.1) // fusion win gone
	checks, pass := gate(fresh, committed, cfg)
	if pass {
		t.Fatal("gate passed a fusion-speedup collapse")
	}
	for _, c := range checks {
		if c.name == "fusion_speedup" && c.ok {
			t.Fatal("fusion_speedup check did not fail")
		}
	}
}

func TestGateFailsOnWarmHitDrop(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	fresh := report(2.9, 0.90, 1.8, 1.1) // warm chain broken
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a warm-hit-fraction drop")
	}
}

func TestGateFailsOnEngineRegression(t *testing.T) {
	committed := report(2.9, 0.998, 1.8, 1.1)
	fresh := report(2.9, 0.998, 0.9, 1.1) // matrix engine now slower than reference
	if _, pass := gate(fresh, committed, cfg); pass {
		t.Fatal("gate passed a matrix-engine regression")
	}
}

func TestGateSkipsFieldsAbsentFromBaseline(t *testing.T) {
	// A v2 baseline carries no engine section; those checks must skip,
	// not fail, so the gate works across a schema upgrade.
	committed := report(2.9, 0.998, 0, 0)
	fresh := report(2.9, 0.998, 1.8, 1.1)
	checks, pass := gate(fresh, committed, cfg)
	if !pass {
		t.Fatalf("gate failed against a v2 baseline: %+v", checks)
	}
	skips := 0
	for _, c := range checks {
		if c.skipNote != "" {
			skips++
		}
	}
	if skips != 2 {
		t.Fatalf("%d checks skipped, want 2 (engine speedups)", skips)
	}
}
