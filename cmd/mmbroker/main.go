// Command mmbroker drives the partitioned signal broker: serve a
// synthetic day's pair signals to consumer groups, subscribe as a
// group member and print a digest of the delivered stream, or run the
// subscriber-scale fan-out benchmark.
//
// The digest a subscriber prints is an FNV-64 fold over every
// delivered signal (partition by partition, offsets, float bits and
// all), so "a faulted run delivered exactly the clean run's stream" is
// one hex comparison — scripts/broker_smoke.sh is built on it.
//
// Usage:
//
//	mmbroker -mode serve -listen :9100 -await-subs 2 -kill 1@30
//	mmbroker -mode subscribe -connect :9100 -group g -member m-0 -from-start
//	mmbroker -mode subscribe -connect :9100 -chaos seed=7,corrupt=4096,cut=32768
//	mmbroker -mode bench -subs 1000,10000 -bench-json BENCH_broker.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"marketminer/internal/broker"
	"marketminer/internal/chaos"
	"marketminer/internal/corr"
)

func main() {
	var (
		mode      = flag.String("mode", "serve", "serve | subscribe | bench")
		listen    = flag.String("listen", ":9100", "serve: address to listen on")
		connect   = flag.String("connect", ":9100", "subscribe: broker address")
		stocks    = flag.Int("n", 8, "universe size")
		m         = flag.Int("m", 20, "correlation window M")
		w         = flag.Int("w", 5, "C-bar moving-average window W")
		d         = flag.Float64("d", 0.01, "divergence threshold")
		ctype     = flag.String("type", "pearson", "correlation measure: pearson | maronna | combined")
		parts     = flag.Int("partitions", 4, "topic partitions")
		intervals = flag.Int("intervals", 120, "synthetic day length in return intervals")
		seed      = flag.Int64("seed", 42, "synthetic return seed")
		awaitSubs = flag.Int("await-subs", 0, "serve: wait for this many group members before feeding")
		kill      = flag.String("kill", "", "serve: hard-kill a partition processor mid-day, e.g. 1@30 (partition 1 after interval 30)")
		rate      = flag.Float64("rate", 0, "serve: pace feeding to ≈ this many intervals/sec (0 = full speed)")
		group     = flag.String("group", "g", "subscribe: consumer group")
		member    = flag.String("member", "m-0", "subscribe: member id")
		fromStart = flag.Bool("from-start", false, "subscribe: full replay instead of snapshot-on-subscribe")
		chaosF    = flag.String("chaos", "", "subscribe: fault-injection spec for the connection, e.g. seed=7,corrupt=4096,cut=32768")
		subsF     = flag.String("subs", "1000,10000", "bench: comma-separated subscriber counts")
		benchJSON = flag.String("bench-json", "", "bench: write results to this JSON file")
		quiet     = flag.Bool("quiet", false, "subscribe: print only the final digest")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ct, err := corr.ParseType(*ctype)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbroker:", err)
		os.Exit(1)
	}
	bcfg := broker.Config{
		N: *stocks, Partitions: *parts, M: *m, W: *w, D: *d, Type: ct,
	}
	switch *mode {
	case "serve":
		err = serve(ctx, bcfg, *listen, *intervals, *seed, *awaitSubs, *kill, *rate)
	case "subscribe":
		err = subscribe(ctx, *connect, *group, *member, *fromStart, *chaosF, *quiet)
	case "bench":
		err = bench(ctx, bcfg, *intervals, *seed, *subsF, *benchJSON)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmbroker:", err)
		os.Exit(1)
	}
}

// synthReturns generates the deterministic synthetic day every mode
// shares: same seed, same stream, so digests compare across runs.
func synthReturns(n, T int, seed int64) [][]float64 {
	out := make([][]float64, T)
	for s := range out {
		v := make([]float64, n)
		for i := range v {
			x := float64(seed%997)*0.001 + float64(s+1)*0.31 + float64(i)*1.07
			v[i] = 0.001*math.Sin(x) + 0.0003*math.Cos(float64(s*(i+2))*0.77)
		}
		out[s] = v
	}
	return out
}

func serve(ctx context.Context, cfg broker.Config, listen string, intervals int, seed int64, awaitSubs int, killSpec string, rate float64) error {
	killPart, killAfter, err := parseKill(killSpec)
	if err != nil {
		return err
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mmbroker: "+format+"\n", args...)
	}
	b, err := broker.New(cfg)
	if err != nil {
		return err
	}
	defer b.Close()
	b.Start()
	addr, err := b.ListenAndServe(listen)
	if err != nil {
		return err
	}
	fmt.Printf("mmbroker: serving %d partitions (%d stocks, %d intervals) on %s\n",
		b.NumPartitions(), cfg.N, intervals, addr)

	if awaitSubs > 0 {
		fmt.Printf("mmbroker: waiting for %d group members\n", awaitSubs)
		for b.MemberCount() < awaitSubs {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(20 * time.Millisecond):
			}
		}
	}

	var pace <-chan time.Time
	if rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer t.Stop()
		pace = t.C
	}
	rets := synthReturns(cfg.N, intervals, seed)
	for s, r := range rets {
		if pace != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-pace:
			}
		}
		if err := b.OfferReturns(s, r); err != nil {
			return err
		}
		if killSpec != "" && s == killAfter {
			fmt.Printf("mmbroker: hard-killing partition %d processor after interval %d\n", killPart, s)
			b.KillPartition(killPart)
		}
	}
	b.FinishInput()
	if err := b.WaitDone(ctx); err != nil {
		return err
	}
	fmt.Println("mmbroker: day complete; serving retained logs until interrupted")
	<-ctx.Done()
	return nil
}

func subscribe(ctx context.Context, connect, group, member string, fromStart bool, chaosSpec string, quiet bool) error {
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", connect)
	}
	var ch *chaos.Chaos
	if chaosSpec != "" {
		spec, err := chaos.ParseSpec(chaosSpec)
		if err != nil {
			return err
		}
		ch = chaos.New(spec)
		dial = ch.Dialer(dial)
	}
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, "mmbroker: "+format+"\n", args...)
		}
	}
	sub, err := broker.NewSubscriber(broker.SubscriberConfig{
		Group: group, Member: member, FromStart: fromStart,
		Dial: dial, Logf: logf,
	})
	if err != nil {
		return err
	}
	if err := sub.Run(ctx); err != nil {
		return err
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	parts := sub.Partitions()
	for _, p := range parts {
		put(uint64(p))
		for _, sg := range sub.Signals(p) {
			put(sg.Offset)
			put(uint64(sg.Pair))
			put(uint64(sg.S))
			put(uint64(sg.Kind))
			put(math.Float64bits(sg.C))
			put(math.Float64bits(sg.Cbar))
		}
	}
	st := sub.Stats()
	if !quiet {
		fmt.Printf("mmbroker: %s delivered %d signals over %d partitions (%d sessions, %d dups suppressed, %d acks)\n",
			member, st.Delivered, len(parts), st.Connects, st.Duplicates, st.Acked)
		if ch != nil {
			fmt.Printf("mmbroker: chaos injected: %+v\n", ch.Stats())
		}
	}
	fmt.Printf("%016x\n", h.Sum64())
	return nil
}

// benchFile is the committed BENCH_broker.json shape.
type benchFile struct {
	Schema     string                `json:"schema"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"numcpu"`
	Workload   string                `json:"workload"`
	Points     []*broker.BenchResult `json:"points"`
}

func bench(ctx context.Context, cfg broker.Config, intervals int, seed int64, subsF, out string) error {
	var counts []int
	for _, f := range strings.Split(subsF, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 {
			return fmt.Errorf("bad -subs entry %q", f)
		}
		counts = append(counts, c)
	}
	sort.Ints(counts)
	file := benchFile{
		Schema:     "marketminer/bench_broker/v1",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload: fmt.Sprintf("signal fan-out, %d stocks (%d pairs), %d partitions, %d intervals, M=%d",
			cfg.N, cfg.N*(cfg.N-1)/2, cfg.Partitions, intervals, cfg.M),
	}
	for _, c := range counts {
		res, err := broker.RunBench(ctx, broker.BenchConfig{
			N: cfg.N, M: cfg.M, Partitions: cfg.Partitions, W: cfg.W, D: cfg.D,
			Intervals: intervals, Subscribers: c, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("mmbroker: %6d subscribers: %10.0f signals/sec delivered, p50 %.0fµs p99 %.0fµs (%d deliveries in %.1fms)\n",
			res.Subscribers, res.SignalsPerSec, res.DeliverP50us, res.DeliverP99us, res.Deliveries, res.DurationMS)
		file.Points = append(file.Points, res)
	}
	if out != "" {
		blob, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("mmbroker: wrote %s\n", out)
	}
	return nil
}

func parseKill(spec string) (part, after int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	lhs, rhs, ok := strings.Cut(spec, "@")
	if !ok {
		return 0, 0, fmt.Errorf("bad -kill %q, want partition@interval", spec)
	}
	if part, err = strconv.Atoi(lhs); err != nil || part < 0 {
		return 0, 0, fmt.Errorf("bad -kill partition %q", lhs)
	}
	if after, err = strconv.Atoi(rhs); err != nil || after < 0 {
		return 0, 0, fmt.Errorf("bad -kill interval %q", rhs)
	}
	return part, after, nil
}
