// Command mmreport renders the paper's tables from raw sweep results
// saved by "mmbacktest -json". It lets the expensive sweep run once
// while the analysis (Tables III–V, Figure 2, per-pair extremes) is
// re-rendered cheaply.
//
// Usage:
//
//	mmreport -in results.json
//	mmreport -in results.json -top 5     # also list best/worst pairs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"marketminer/internal/backtest"
	"marketminer/internal/report"
	"marketminer/internal/taq"
)

func main() {
	var (
		in  = flag.String("in", "", "JSON results file from mmbacktest -json")
		top = flag.Int("top", 0, "list the N best and worst pairs per treatment")
	)
	flag.Parse()
	if err := run(*in, *top); err != nil {
		fmt.Fprintln(os.Stderr, "mmreport:", err)
		os.Exit(1)
	}
}

func run(in string, top int) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := backtest.LoadJSON(f)
	if err != nil {
		return err
	}
	fmt.Printf("loaded sweep: %d stocks (%d pairs), %d days, %d levels x %d types, %d trades\n\n",
		res.Universe.Len(), res.NumPairs(), res.Days, len(res.Levels), len(res.Types), res.TradeCount)

	rets := res.CumulativeMonthlyReturns()
	fmt.Println(report.TableIII(rets))
	fmt.Println(report.TableIV(res.MaxDailyDrawdowns()))
	fmt.Println(report.TableV(res.WinLossRatios()))
	fmt.Println(report.Figure2("Average cumulative monthly returns", rets))

	if top > 0 {
		// "Identifying which pairs perform well is worthy a further
		// investigation" — the per-pair extremes the paper defers.
		for _, a := range rets {
			fmt.Printf("TOP/BOTTOM %d PAIRS — %s (by average gross monthly return)\n", top, a.Type)
			type pairVal struct {
				pair int
				v    float64
			}
			vals := make([]pairVal, 0, len(a.PerPair))
			for p, v := range a.PerPair {
				vals = append(vals, pairVal{p, v})
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i].v > vals[j].v })
			n := res.Universe.Len()
			name := func(pid int) string {
				pr := taq.PairFromID(pid, n)
				return res.Universe.Symbol(pr.I) + "/" + res.Universe.Symbol(pr.J)
			}
			for i := 0; i < top && i < len(vals); i++ {
				fmt.Printf("  best %2d: %-12s %.4f\n", i+1, name(vals[i].pair), vals[i].v)
			}
			for i := 0; i < top && i < len(vals); i++ {
				k := len(vals) - 1 - i
				fmt.Printf("  worst %2d: %-12s %.4f\n", i+1, name(vals[k].pair), vals[k].v)
			}
			fmt.Println()
		}
	}
	return nil
}
