// Command mmreport renders the paper's tables from raw sweep results.
// It consumes either a JSON results file saved by "mmbacktest -json",
// or — for sharded sweeps — the per-shard checkpoint journals, which
// it merges into the full result before rendering. The expensive sweep
// runs once (possibly split across machines); the analysis (Tables
// III–V, Figure 2, per-pair extremes) re-renders cheaply.
//
// Usage:
//
//	mmreport -in results.json
//	mmreport -in results.json -top 5       # also list best/worst pairs
//	mmreport -merge 'shard*.journal'       # combine sharded sweep journals
//	mmreport -merge s0.journal,s1.journal -out merged.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"marketminer/internal/backtest"
	"marketminer/internal/report"
	"marketminer/internal/sweep"
	"marketminer/internal/taq"
)

func main() {
	var (
		in    = flag.String("in", "", "JSON results file from mmbacktest -json")
		merge = flag.String("merge", "", "comma-separated sweep journals (globs allowed) to merge into the full result")
		out   = flag.String("out", "", "write the (merged) result to this JSON file")
		top   = flag.Int("top", 0, "list the N best and worst pairs per treatment")
	)
	flag.Parse()
	if err := run(*in, *merge, *out, *top); err != nil {
		fmt.Fprintln(os.Stderr, "mmreport:", err)
		os.Exit(1)
	}
}

func run(in, merge, out string, top int) error {
	if (in == "") == (merge == "") {
		return fmt.Errorf("exactly one of -in or -merge is required")
	}
	var res *backtest.Result
	switch {
	case merge != "":
		paths, err := expandPaths(merge)
		if err != nil {
			return err
		}
		var rep *sweep.MergeReport
		res, rep, err = sweep.MergeFiles(paths)
		if rep != nil {
			for _, c := range rep.Corrupt {
				fmt.Printf("warning: %v\n", c)
			}
		}
		if err != nil {
			return err
		}
		fmt.Println(report.MergeSummary(rep.Files, rep.ShardCount, rep.Units, rep.UnitsTotal, rep.Duplicates, len(rep.Corrupt)))
	default:
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		if res, err = backtest.LoadJSON(f); err != nil {
			return err
		}
	}
	fmt.Printf("loaded sweep: %d stocks (%d pairs), %d days, %d levels x %d types, %d trades\n\n",
		res.Universe.Len(), res.NumPairs(), res.Days, len(res.Levels), len(res.Types), res.TradeCount)

	rets := res.CumulativeMonthlyReturns()
	fmt.Println(report.TableIII(rets))
	fmt.Println(report.TableIV(res.MaxDailyDrawdowns()))
	fmt.Println(report.TableV(res.WinLossRatios()))
	fmt.Println(report.Figure2("Average cumulative monthly returns", rets))

	if top > 0 {
		// "Identifying which pairs perform well is worthy a further
		// investigation" — the per-pair extremes the paper defers.
		for _, a := range rets {
			fmt.Printf("TOP/BOTTOM %d PAIRS — %s (by average gross monthly return)\n", top, a.Type)
			type pairVal struct {
				pair int
				v    float64
			}
			vals := make([]pairVal, 0, len(a.PerPair))
			for p, v := range a.PerPair {
				vals = append(vals, pairVal{p, v})
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i].v > vals[j].v })
			n := res.Universe.Len()
			name := func(pid int) string {
				pr := taq.PairFromID(pid, n)
				return res.Universe.Symbol(pr.I) + "/" + res.Universe.Symbol(pr.J)
			}
			for i := 0; i < top && i < len(vals); i++ {
				fmt.Printf("  best %2d: %-12s %.4f\n", i+1, name(vals[i].pair), vals[i].v)
			}
			for i := 0; i < top && i < len(vals); i++ {
				k := len(vals) - 1 - i
				fmt.Printf("  worst %2d: %-12s %.4f\n", i+1, name(vals[k].pair), vals[k].v)
			}
			fmt.Println()
		}
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := backtest.SaveJSON(f, res); err != nil {
			return err
		}
		fmt.Printf("result saved to %s\n", out)
	}
	return nil
}

// expandPaths splits a comma-separated list and expands glob patterns,
// so both "-merge s0.journal,s1.journal" and "-merge 'shard*.journal'"
// work.
func expandPaths(spec string) ([]string, error) {
	var paths []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.ContainsAny(part, "*?[") {
			matches, err := filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("bad glob %q: %w", part, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("glob %q matched no journals", part)
			}
			sort.Strings(matches)
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, part)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no journal paths in %q", spec)
	}
	return paths, nil
}
