package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"marketminer"
	"marketminer/internal/backtest"
)

func writeResults(t *testing.T) string {
	t.Helper()
	cfg := marketminer.SweepConfig(marketminer.ScaleTiny, 3)
	cfg.Levels = marketminer.ParamLevels()[:2]
	res, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := backtest.SaveJSON(f, res); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersSavedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := writeResults(t)
	if err := run(path, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run("", 0); err == nil {
		t.Error("missing -in should error")
	}
	if err := run("/nonexistent/results.json", 0); err == nil {
		t.Error("missing file should error")
	}
}
