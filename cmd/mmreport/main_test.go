package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"marketminer"
	"marketminer/internal/backtest"
	"marketminer/internal/sweep"
)

func tinyConfig() marketminer.BacktestConfig {
	cfg := marketminer.SweepConfig(marketminer.ScaleTiny, 3)
	cfg.Levels = marketminer.ParamLevels()[:2]
	return cfg
}

func writeResults(t *testing.T) string {
	t.Helper()
	res, err := backtest.Run(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := backtest.SaveJSON(f, res); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersSavedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := writeResults(t)
	if err := run(path, "", "", 2); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresExactlyOneInput(t *testing.T) {
	if err := run("", "", "", 0); err == nil {
		t.Error("missing -in/-merge should error")
	}
	if err := run("a.json", "b.journal", "", 0); err == nil {
		t.Error("both -in and -merge should error")
	}
	if err := run("/nonexistent/results.json", "", "", 0); err == nil {
		t.Error("missing file should error")
	}
	if err := run("", "/nonexistent/*.journal", "", 0); err == nil {
		t.Error("empty glob should error")
	}
}

// TestRunMergesShardJournals drives the sharded path end to end: two
// shard processes write journals, mmreport merges and renders them,
// and the -out JSON equals what the monolithic runner would have
// saved.
func TestRunMergesShardJournals(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		_, err := sweep.Run(context.Background(), sweep.RunConfig{
			Config:      cfg,
			Shard:       sweep.Shard{Index: i, Count: 2},
			JournalPath: filepath.Join(dir, "shard"+string(rune('0'+i))+".journal"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "merged.json")
	if err := run("", filepath.Join(dir, "shard*.journal"), out, 1); err != nil {
		t.Fatal(err)
	}

	want, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := backtest.LoadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.TradeCount != want.TradeCount {
		t.Fatalf("merged trade count %d, single-shot %d", got.TradeCount, want.TradeCount)
	}
}
