// Command mmfarm runs the distributed sweep farm: one coordinator
// (`mmfarm serve`) deals the sweep's (day × pair-block × param-set)
// units to any number of worker processes (`mmfarm work`) over the
// internal/feed wire codec, journaling every completed unit into the
// standard checkpoint journal. Workers can be SIGKILLed, partitioned
// or fed a chaos-injected link mid-sweep; lease expiry and generation
// fencing reassign their work and the merged output stays
// byte-identical to a single-host run.
//
// Every cooperating process must be started with the same sweep flags
// (-scale, -seed, -levels, -block, -screen-*, -f32): the configuration
// fingerprint is checked at join and mismatched workers are refused.
//
// The coordinator itself is crash-tolerant: its durable state (epoch,
// lease table, pending order) lives in a CRC-guarded manifest next to
// the journal, so a SIGKILLed coordinator restarted with the same
// -journal re-serves only unfinished units, and `-standby` runs a warm
// standby that tails the primary's heartbeat file and takes over under
// a higher, fencing epoch when the primary goes silent. Workers given a
// comma-separated -connect list rotate through it on redial and resume
// their prior session, redelivering completed-but-unacknowledged
// results instead of recomputing them.
//
// Usage:
//
//	mmfarm serve -listen :9444 -journal farm.journal -scale paper
//	mmfarm serve -listen :9445 -journal farm.journal -scale paper -standby   # warm standby
//	mmfarm work -connect host:9444,host:9445 -scale paper        # on each box
//	mmfarm work -connect host:9444 -scale paper -chaos 'seed=7,corrupt=8192'
//	mmfarm serve -listen :9444 -journal farm.journal -scale paper -merge-out results.json
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"marketminer"
	"marketminer/internal/backtest"
	"marketminer/internal/farm"
	"marketminer/internal/metrics"
	"marketminer/internal/screen"
	"marketminer/internal/sweep"
)

// sweepOpts are the flags every farm process shares; they must produce
// the exact configuration (and so the exact fingerprint) on every
// host.
type sweepOpts struct {
	scale        string
	seed         int64
	levels       int
	workers      int
	block        int
	screenFrac   float64
	screenSSD    float64
	screenMin    int
	screenStride int
	float32Lane  bool
	quiet        bool
}

func (o *sweepOpts) register(fs *flag.FlagSet) {
	fs.StringVar(&o.scale, "scale", "tiny", "experiment scale: tiny | small | paper")
	fs.Int64Var(&o.seed, "seed", 20080301, "random seed")
	fs.IntVar(&o.levels, "levels", 0, "restrict to first N parameter levels (0 = all 14)")
	fs.IntVar(&o.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&o.block, "block", 0, "pairs per sweep work-unit block (0 = default 128)")
	fs.Float64Var(&o.screenFrac, "screen-frac", 0, "pre-screen pairs: keep this fraction with the smallest normalized-price SSD (0 = off)")
	fs.Float64Var(&o.screenSSD, "screen-ssd", 0, "pre-screen pairs: absolute SSD cap (0 = off)")
	fs.IntVar(&o.screenMin, "screen-min", 0, "pre-screen pairs: minimum surviving pairs")
	fs.IntVar(&o.screenStride, "screen-stride", 1, "pre-screen pairs: path subsample stride")
	fs.BoolVar(&o.float32Lane, "f32", false, "approximate float32 robust iteration lane")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-event log lines")
}

func (o *sweepOpts) config() (marketminer.BacktestConfig, error) {
	var sc marketminer.Scale
	switch o.scale {
	case "tiny":
		sc = marketminer.ScaleTiny
	case "small":
		sc = marketminer.ScaleSmall
	case "paper":
		sc = marketminer.ScalePaper
	default:
		return marketminer.BacktestConfig{}, fmt.Errorf("unknown scale %q", o.scale)
	}
	cfg := marketminer.SweepConfig(sc, o.seed)
	cfg.Workers = o.workers
	cfg.Screen = screen.Config{TopFrac: o.screenFrac, MaxSSD: o.screenSSD, MinKeep: o.screenMin, Stride: o.screenStride}
	cfg.Float32 = o.float32Lane
	if o.levels > 0 {
		all := marketminer.ParamLevels()
		if o.levels > len(all) {
			o.levels = len(all)
		}
		cfg.Levels = all[:o.levels]
	}
	return cfg, nil
}

func (o *sweepOpts) logf() func(string, ...any) {
	if o.quiet {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mmfarm serve|work [flags]   (-h for flags)")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "work":
		err = runWork(os.Args[2:])
	default:
		err = fmt.Errorf("unknown mode %q, want serve or work", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmfarm:", err)
		os.Exit(1)
	}
}

// signalContext cancels on SIGINT/SIGTERM so both modes shut down
// cleanly (the coordinator's journal retains everything accepted).
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("mmfarm serve", flag.ExitOnError)
	var o sweepOpts
	o.register(fs)
	listen := fs.String("listen", "127.0.0.1:9444", "address to accept workers on")
	journal := fs.String("journal", "", "checkpoint journal path (required); resumes if it exists")
	ttl := fs.Duration("ttl", farm.DefaultLeaseTTL, "lease TTL: silence budget before a worker's groups are reassigned")
	limit := fs.Int("limit", 0, "accept at most N units this invocation, then pause (0 = run to completion)")
	mergeOut := fs.String("merge-out", "", "on completion, merge the journal and write raw results JSON here")
	standby := fs.Bool("standby", false, "run as a warm standby: tail the primary's heartbeat file and take over on silence")
	takeoverAfter := fs.Duration("takeover-after", 0, "standby only: heartbeat silence before taking over (0 = the lease TTL)")
	fs.Parse(args)
	if *journal == "" {
		return fmt.Errorf("-journal is required")
	}
	cfg, err := o.config()
	if err != nil {
		return err
	}

	cc := farm.CoordinatorConfig{
		Config:      cfg,
		BlockSize:   o.block,
		JournalPath: *journal,
		LeaseTTL:    *ttl,
		Limit:       *limit,
		Logf:        o.logf(),
		Progress: func(done, total int) {
			if !o.quiet && (done%50 == 0 || done == total) {
				fmt.Printf("  %d/%d units journaled\n", done, total)
			}
		},
	}

	ctx, cancel := signalContext()
	defer cancel()
	start := time.Now()
	var st *farm.CoordStats
	if *standby {
		// The listener is bound lazily at promotion, so a standby can
		// be configured with the primary's own address.
		fmt.Printf("mmfarm: standing by for %s (journal %s)\n", *listen, *journal)
		st, err = farm.RunStandby(ctx, farm.StandbyConfig{
			Coordinator:   cc,
			TakeoverAfter: *takeoverAfter,
			Logf:          o.logf(),
		}, func() (net.Listener, error) {
			l, err := net.Listen("tcp", *listen)
			if err == nil {
				fmt.Printf("mmfarm: standby promoted; coordinating on %s\n", l.Addr())
			}
			return l, err
		})
	} else {
		var c *farm.Coordinator
		c, err = farm.NewCoordinator(cc)
		if err != nil {
			return err
		}
		var l net.Listener
		l, err = net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Printf("mmfarm: coordinating on %s (journal %s)\n", l.Addr(), *journal)
		st, err = c.Serve(ctx, l)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if st.Recovered != nil {
		fmt.Printf("  healed damaged journal tail: %v\n", st.Recovered)
	}
	fmt.Printf("farm: %d/%d units (%d restored, %d from %d worker join(s)) under epoch %d in %v\n",
		st.UnitsRestored+st.UnitsExecuted, st.UnitsTotal, st.UnitsRestored,
		st.UnitsExecuted, st.WorkersJoined, st.Epoch, elapsed.Round(time.Millisecond))
	for _, nc := range metrics.Counters() {
		if nc.Value > 0 && len(nc.Name) > 5 && nc.Name[:5] == "farm." {
			fmt.Printf("  %s = %d\n", nc.Name, nc.Value)
		}
	}
	if st.Paused {
		fmt.Printf("farm: unit budget reached; rerun with the same journal to continue\n")
		return nil
	}
	if *mergeOut != "" {
		res, rep, err := sweep.MergeFiles([]string{*journal})
		if err != nil {
			return err
		}
		f, err := os.Create(*mergeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := backtest.SaveJSON(f, res); err != nil {
			return err
		}
		fmt.Printf("farm: merged %d units (%d duplicates dropped) into %s\n", rep.Units, rep.Duplicates, *mergeOut)
	}
	return nil
}

func runWork(args []string) error {
	fs := flag.NewFlagSet("mmfarm work", flag.ExitOnError)
	var o sweepOpts
	o.register(fs)
	connect := fs.String("connect", "127.0.0.1:9444", "coordinator address(es), comma-separated: primary first, then standbys")
	name := fs.String("name", "", "worker name in coordinator logs (default host:pid)")
	heartbeat := fs.Duration("heartbeat", time.Second, "lease renewal cadence (keep well under the coordinator's -ttl)")
	chaosSpec := fs.String("chaos", "", "inject wire faults on the coordinator link, e.g. 'seed=7,corrupt=8192,cut=65536'")
	fs.Parse(args)
	cfg, err := o.config()
	if err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	addrs := strings.Split(*connect, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	wc := farm.WorkerConfig{
		Config:         cfg,
		BlockSize:      o.block,
		Name:           *name,
		Addrs:          addrs,
		HeartbeatEvery: *heartbeat,
		Logf:           o.logf(),
	}
	if *chaosSpec != "" {
		spec, err := marketminer.ParseChaosSpec(*chaosSpec)
		if err != nil {
			return err
		}
		// The chaos wrapper replaces WorkerConfig.Addrs, so rotate
		// through the candidate coordinators here.
		var dialN int
		dial := func(ctx context.Context) (net.Conn, error) {
			addr := addrs[dialN%len(addrs)]
			dialN++
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
		wc.Dial = marketminer.NewChaos(spec).Dialer(dial)
	}

	ctx, cancel := signalContext()
	defer cancel()
	fmt.Printf("mmfarm: worker %q computing for %s\n", *name, *connect)
	start := time.Now()
	st, err := farm.RunWorker(ctx, wc)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(st.Units) / elapsed.Seconds()
	fmt.Printf("worker %q: %d units in %d group(s) over %d session(s) (%d redials, %d rejoin(s), %d recovered) in %v — %.1f units/s, warm-hit %.0f%%\n",
		*name, st.Units, st.Groups, st.Sessions, st.Redials, st.Rejoins, st.Recovered,
		elapsed.Round(time.Millisecond), rate, 100*st.Warm.WarmHitFraction)
	return nil
}
