// Command mmfeed serves a quote stream over the binary feed protocol:
// the networked edge of the paper's collector stage. It replays a
// historical TAQ CSV file (mmgen output) or generates a synthetic day
// live, and distributes it to any number of mmpipeline subscribers
// (per-client bounded queues, slow-consumer eviction, resume-from-
// sequence on reconnect).
//
// Usage:
//
//	mmfeed -listen :9000 -stocks 10              # synthetic day, served live
//	mmfeed -listen :9000 -in taq.csv -day 0      # replay an mmgen file
//	mmfeed -rate 50000                           # pace ≈ 50k quotes/sec
//	mmfeed -chaos seed=7,corrupt=8192,cut=65536  # serve through injected faults
//
// Pair it with:
//
//	mmpipeline -connect host:9000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"time"

	"marketminer"
	"marketminer/internal/market"
	"marketminer/internal/taq"
)

func main() {
	var (
		listen = flag.String("listen", ":9000", "address to serve the feed on")
		in     = flag.String("in", "", "CSV quote file (empty = synthetic)")
		day    = flag.Int("day", 0, "day index to replay/generate")
		stocks = flag.Int("stocks", 10, "universe size for synthetic data (max 61)")
		seed   = flag.Int64("seed", 20080301, "synthetic data seed")
		batch  = flag.Int("batch", 256, "quotes per wire batch")
		rate   = flag.Float64("rate", 0, "pace the replay to ≈ this many quotes/sec (0 = full speed)")
		chaosF = flag.String("chaos", "", "deterministic fault-injection spec for served connections, e.g. seed=7,corrupt=8192,cut=65536 (empty = off)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *listen, *in, *day, *stocks, *seed, *batch, *rate, *chaosF); err != nil {
		fmt.Fprintln(os.Stderr, "mmfeed:", err)
		os.Exit(1)
	}
}

// run resolves the quote source, binds the listener and serves until
// ctx is cancelled (the stream Finishes once fully published; late
// subscribers keep getting the retained log).
func run(ctx context.Context, listen, in string, day, stocks int, seed int64, batch int, rate float64, chaosSpec string) error {
	quotes, uni, err := load(in, day, stocks, seed)
	if err != nil {
		return err
	}
	var ch *marketminer.Chaos
	if chaosSpec != "" {
		spec, err := marketminer.ParseChaosSpec(chaosSpec)
		if err != nil {
			return err
		}
		ch = marketminer.NewChaos(spec)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("mmfeed: serving %d quotes (%d stocks, day %d) on %s\n", len(quotes), uni.Len(), day, l.Addr())
	if ch != nil {
		fmt.Printf("mmfeed: injecting faults on every served connection: %s\n", ch.Spec())
		l = ch.Listener(l)
		defer func() { fmt.Printf("mmfeed: chaos injected: %+v\n", ch.Stats()) }()
	}
	return serve(ctx, l, quotes, uni, batch, rate)
}

// serve is the listener-in-hand core of run, separated so tests can
// bind their own loopback port.
func serve(ctx context.Context, l net.Listener, quotes []taq.Quote, uni *marketminer.Universe, batch int, rate float64) error {
	s, err := marketminer.NewFeedServer(marketminer.FeedServerConfig{Universe: uni, BatchSize: batch})
	if err != nil {
		l.Close()
		return err
	}
	defer s.Close()
	go s.Serve(l)

	if err := publish(ctx, s, quotes, rate); err != nil {
		return err
	}
	s.Finish()
	st := s.Stats()
	fmt.Printf("mmfeed: stream complete — %d quotes in %d batches, %d subscribers served\n",
		st.Quotes, st.Batches, st.Served)

	<-ctx.Done()
	st = s.Stats()
	fmt.Printf("mmfeed: shutting down — served %d subscribers (%d evicted)\n", st.Served, st.Evicted)
	return nil
}

// publish feeds the quotes into the server, paced to ≈ rate quotes/sec
// when rate > 0 (sleeping every chunk keeps the granularity coarse
// enough for the scheduler while holding the average rate).
func publish(ctx context.Context, s *marketminer.FeedServer, quotes []taq.Quote, rate float64) error {
	if rate <= 0 {
		s.PublishBatch(quotes)
		return nil
	}
	const chunk = 64
	interval := time.Duration(float64(chunk) / rate * float64(time.Second))
	t := time.NewTicker(interval)
	defer t.Stop()
	for len(quotes) > 0 {
		n := min(chunk, len(quotes))
		s.PublishBatch(quotes[:n])
		s.Flush()
		quotes = quotes[n:]
		if len(quotes) == 0 {
			break
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// load resolves the quote source: CSV replay or synthetic generation.
func load(in string, day, stocks int, seed int64) ([]taq.Quote, *marketminer.Universe, error) {
	if in != "" {
		return loadCSV(in, day)
	}
	if stocks < 2 || stocks > 61 {
		return nil, nil, fmt.Errorf("stocks must be in [2, 61]")
	}
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:stocks])
	if err != nil {
		return nil, nil, err
	}
	cfg := market.DefaultConfig()
	cfg.Universe = uni
	cfg.Seed = seed
	cfg.Days = day + 1
	gen, err := market.NewGenerator(cfg)
	if err != nil {
		return nil, nil, err
	}
	md, err := gen.GenerateDay(day)
	if err != nil {
		return nil, nil, err
	}
	return md.Quotes, uni, nil
}

// loadCSV streams one day's quotes out of an mmgen file and derives
// the universe from the symbols seen.
func loadCSV(path string, day int) ([]taq.Quote, *marketminer.Universe, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := taq.NewReader(f, false)
	var quotes []taq.Quote
	seen := map[string]bool{}
	var symbols []string
	for {
		q, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if q.Day != day {
			continue
		}
		quotes = append(quotes, q)
		if !seen[q.Symbol] {
			seen[q.Symbol] = true
			symbols = append(symbols, q.Symbol)
		}
	}
	if len(symbols) < 2 {
		return nil, nil, fmt.Errorf("day %d has quotes for %d symbols; need ≥ 2", day, len(symbols))
	}
	uni, err := taq.NewUniverse(symbols)
	if err != nil {
		return nil, nil, err
	}
	return quotes, uni, nil
}
