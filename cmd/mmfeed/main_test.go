package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"marketminer"
	"marketminer/internal/taq"
)

// TestServeSyntheticDayOverLoopback runs the mmfeed core on a loopback
// listener and subscribes a collector: the full synthetic day must
// arrive, then cancellation shuts the server down cleanly.
func TestServeSyntheticDayOverLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	quotes, uni, err := load("", 0, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, quotes, uni, 128, 0) }()

	c := marketminer.NewFeedCollector(marketminer.FeedCollectorConfig{Addr: l.Addr().String()})
	go c.Run(ctx)
	var got int
	for range c.Quotes() {
		got++
	}
	if got != len(quotes) {
		t.Errorf("collector received %d of %d quotes", got, len(quotes))
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestPublishPacing checks the rate limiter publishes everything (the
// correctness half; the actual pace is scheduler-dependent).
func TestPublishPacing(t *testing.T) {
	quotes, uni, err := load("", 0, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	quotes = quotes[:200]
	s, err := marketminer.NewFeedServer(marketminer.FeedServerConfig{Universe: uni})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := publish(context.Background(), s, quotes, 1e6); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Quotes != len(quotes) {
		t.Errorf("published %d of %d quotes", st.Quotes, len(quotes))
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "127.0.0.1:0", "", 0, 1, 9, 256, 0, ""); err == nil {
		t.Error("stocks < 2 should error")
	}
	if err := run(ctx, "127.0.0.1:0", "/nonexistent.csv", 0, 4, 9, 256, 0, ""); err == nil {
		t.Error("missing CSV should error")
	}
	if err := run(ctx, "256.256.256.256:99999", "", 0, 4, 9, 256, 0, ""); err == nil {
		t.Error("unbindable address should error")
	}
	if err := run(ctx, "127.0.0.1:0", "", 0, 4, 9, 256, 0, "typo=1"); err == nil {
		t.Error("malformed chaos spec should error")
	}
}

func TestLoadCSVDayFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := taq.NewWriter(f)
	for i := 0; i < 6; i++ {
		sym := "AA"
		if i%2 == 1 {
			sym = "BB"
		}
		w.Write(taq.Quote{Day: 0, SeqTime: float64(i), Symbol: sym, Bid: 10, Ask: 10.1, BidSize: 1, AskSize: 1})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	quotes, uni, err := loadCSV(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(quotes) != 6 || uni.Len() != 2 {
		t.Errorf("loaded %d quotes / %d symbols, want 6 / 2", len(quotes), uni.Len())
	}
	if _, _, err := loadCSV(path, 3); err == nil {
		t.Error("empty day should error")
	}
}
