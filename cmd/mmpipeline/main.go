// Command mmpipeline runs the Figure-1 MarketMiner DAG end to end over
// one trading day of quotes: collector → tick cleaning → OHLC bar
// accumulation → technical analysis → parallel correlation engine →
// pair-trading strategy node(s) → master order book. Quotes come from
// the synthetic generator or from a CSV file produced by mmgen (the
// "File Collector" adapter).
//
// Usage:
//
//	mmpipeline -stocks 10                    # synthetic day, live DAG
//	mmpipeline -in taq.csv -day 0            # replay a file
//	mmpipeline -connect host:9000            # subscribe to an mmfeed server
//	mmpipeline -ctype maronna -m 100 -w 60   # engine configuration
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"marketminer"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/taq"
)

func main() {
	var (
		in      = flag.String("in", "", "CSV quote file (empty = synthetic)")
		connect = flag.String("connect", "", "mmfeed server address (overrides -in/-stocks)")
		day     = flag.Int("day", 0, "day index to replay/generate")
		stocks  = flag.Int("stocks", 10, "universe size for synthetic data (max 61)")
		seed    = flag.Int64("seed", 20080301, "synthetic data seed")
		ctype   = flag.String("ctype", "pearson", "correlation measure: pearson | maronna | combined")
		m       = flag.Int("m", 100, "correlation window M")
		w       = flag.Int("w", 60, "correlation average window W")
		d       = flag.Float64("d", 0.0002, "divergence threshold (fraction)")
		workers = flag.Int("workers", 0, "correlation workers (0 = GOMAXPROCS)")
		dot     = flag.Bool("dot", false, "also print the executed DAG in Graphviz dot format")
	)
	flag.Parse()
	if err := run(*in, *connect, *day, *stocks, *seed, *ctype, *m, *w, *d, *workers, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "mmpipeline:", err)
		os.Exit(1)
	}
}

func run(in, connect string, day, stocks int, seed int64, ctype string, m, w int, d float64, workers int, dot bool) error {
	ct, err := corr.ParseType(ctype)
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Resolve the quote source: networked collector, CSV replay, or
	// synthetic generation — the three interchangeable collector
	// adapters of Figure 1.
	var (
		src       marketminer.QuoteSource
		uni       *marketminer.Universe
		collector *marketminer.FeedCollector
	)
	if connect != "" {
		collector = marketminer.NewFeedCollector(marketminer.FeedCollectorConfig{Addr: connect})
		go collector.Run(ctx)
		uctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		uni, err = collector.Universe(uctx)
		cancel()
		if err != nil {
			return fmt.Errorf("connecting to feed %s: %w", connect, err)
		}
		src = marketminer.ChannelSource(collector.Quotes())
		fmt.Printf("feed: connected to %s, %d stocks\n", connect, uni.Len())
	} else {
		var quotes []taq.Quote
		if in != "" {
			quotes, uni, err = loadCSV(in, day)
		} else {
			quotes, uni, err = synthetic(stocks, seed, day)
		}
		if err != nil {
			return err
		}
		src = marketminer.SliceSource(quotes)
		fmt.Printf("feed: %d quotes, %d stocks, day %d\n", len(quotes), uni.Len(), day)
	}

	p := marketminer.DefaultParams()
	p.Ctype = ct
	p.M = m
	p.W = w
	p.D = d
	cfg := marketminer.PipelineConfig{
		Universe: uni,
		Params:   []marketminer.Params{p},
		Workers:  workers,
	}
	start := time.Now()
	res, err := marketminer.RunLivePipelineFrom(ctx, cfg, src, day)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if collector != nil {
		st := collector.Stats()
		fmt.Printf("collector: %d connects, %d disconnects, %d duplicates skipped, %d order violations\n",
			st.Connects, st.Disconnects, st.Duplicates, st.OrderViolations)
	}

	fmt.Printf("\nFIGURE 1 PIPELINE — completed in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  quotes in / cleaned     %8d / %d (%.2f%% rejected)\n",
		res.QuotesIn, res.QuotesClean,
		100*float64(res.QuotesIn-res.QuotesClean)/max1(float64(res.QuotesIn)))
	fmt.Printf("  correlation matrices    %8d (%.0f matrices/sec)\n",
		res.Matrices, float64(res.Matrices)/max1(elapsed.Seconds()))
	fmt.Printf("  trades completed        %8d\n", len(res.Trades[0]))
	fmt.Printf("  order requests          %8d\n", res.Orders)
	fmt.Printf("  book flat at close      %8v\n", res.BookFlat)
	fmt.Printf("  realised cash P&L       %8.2f\n", res.CashPnL)
	fmt.Println("\n  node                      received     emitted")
	for _, s := range res.NodeStats {
		fmt.Printf("  %-24s %10d %11d\n", s.Name, s.Received, s.Emitted)
	}
	if dot {
		fmt.Println("\n" + res.GraphDOT)
	}
	return nil
}

func max1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}

// synthetic generates one day of quotes for a prefix of the default
// universe.
func synthetic(stocks int, seed int64, day int) ([]taq.Quote, *marketminer.Universe, error) {
	if stocks < 2 || stocks > 61 {
		return nil, nil, fmt.Errorf("stocks must be in [2, 61]")
	}
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:stocks])
	if err != nil {
		return nil, nil, err
	}
	cfg := market.DefaultConfig()
	cfg.Universe = uni
	cfg.Seed = seed
	cfg.Days = day + 1
	gen, err := market.NewGenerator(cfg)
	if err != nil {
		return nil, nil, err
	}
	md, err := gen.GenerateDay(day)
	if err != nil {
		return nil, nil, err
	}
	return md.Quotes, uni, nil
}

// loadCSV streams one day's quotes out of an mmgen file and derives
// the universe from the symbols seen.
func loadCSV(path string, day int) ([]taq.Quote, *marketminer.Universe, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := taq.NewReader(f, false)
	var quotes []taq.Quote
	seen := map[string]bool{}
	var symbols []string
	for {
		q, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if q.Day != day {
			continue
		}
		quotes = append(quotes, q)
		if !seen[q.Symbol] {
			seen[q.Symbol] = true
			symbols = append(symbols, q.Symbol)
		}
	}
	if len(symbols) < 2 {
		return nil, nil, fmt.Errorf("day %d has quotes for %d symbols; need ≥ 2", day, len(symbols))
	}
	uni, err := taq.NewUniverse(symbols)
	if err != nil {
		return nil, nil, err
	}
	return quotes, uni, nil
}
