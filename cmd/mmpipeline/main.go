// Command mmpipeline runs the Figure-1 MarketMiner DAG end to end over
// one trading day of quotes: collector → tick cleaning → OHLC bar
// accumulation → technical analysis → parallel correlation engine →
// pair-trading strategy node(s) → master order book. Quotes come from
// the synthetic generator or from a CSV file produced by mmgen (the
// "File Collector" adapter).
//
// Usage:
//
//	mmpipeline -stocks 10                    # synthetic day, live DAG
//	mmpipeline -in taq.csv -day 0            # replay a file
//	mmpipeline -connect host:9000            # subscribe to an mmfeed server
//	mmpipeline -ctype maronna -m 100 -w 60   # engine configuration
//
// Fault tolerance:
//
//	mmpipeline -connect host:9000 -chaos seed=7,cut=65536,partition=4
//	    dial through injected cuts and refused connections (the CRC
//	    wire protocol plus resume-from-sequence must keep the results
//	    identical to a clean run);
//	mmpipeline -supervise -snapshot engine.snap -quarantine poison.jsonl
//	    run the DAG under the supervision runtime: panic isolation,
//	    poison-message quarantine, and crash-safe correlation-engine
//	    snapshots (a restart resumes from the last snapshot).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"marketminer"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/taq"
)

// options collects the flag values; run grew too many knobs for a
// positional parameter list.
type options struct {
	in, connect          string
	day, stocks          int
	seed                 int64
	ctype                string
	m, w                 int
	d                    float64
	workers              int
	dot                  bool
	chaos                string
	supervise            bool
	snapshot, quarantine string
	snapshotEvery        int
	drain                time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "CSV quote file (empty = synthetic)")
	flag.StringVar(&o.connect, "connect", "", "mmfeed server address (overrides -in/-stocks)")
	flag.IntVar(&o.day, "day", 0, "day index to replay/generate")
	flag.IntVar(&o.stocks, "stocks", 10, "universe size for synthetic data (max 61)")
	flag.Int64Var(&o.seed, "seed", 20080301, "synthetic data seed")
	flag.StringVar(&o.ctype, "ctype", "pearson", "correlation measure: pearson | maronna | combined")
	flag.IntVar(&o.m, "m", 100, "correlation window M")
	flag.IntVar(&o.w, "w", 60, "correlation average window W")
	flag.Float64Var(&o.d, "d", 0.0002, "divergence threshold (fraction)")
	flag.IntVar(&o.workers, "workers", 0, "correlation workers (0 = GOMAXPROCS)")
	flag.BoolVar(&o.dot, "dot", false, "also print the executed DAG in Graphviz dot format")
	flag.StringVar(&o.chaos, "chaos", "", "deterministic fault-injection spec: applied to the dial path with -connect, to the quote stream otherwise")
	flag.BoolVar(&o.supervise, "supervise", false, "run the DAG under the supervision runtime")
	flag.StringVar(&o.snapshot, "snapshot", "", "crash-safe correlation-engine snapshot file (implies -supervise)")
	flag.StringVar(&o.quarantine, "quarantine", "", "poison-message journal file (implies -supervise)")
	flag.IntVar(&o.snapshotEvery, "snapshot-every", 25, "matrices between engine snapshots")
	flag.DurationVar(&o.drain, "drain", 0, "graceful-drain timeout on interrupt (0 = abort immediately)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mmpipeline:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	ct, err := corr.ParseType(o.ctype)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var ch *marketminer.Chaos
	if o.chaos != "" {
		spec, err := marketminer.ParseChaosSpec(o.chaos)
		if err != nil {
			return err
		}
		ch = marketminer.NewChaos(spec)
	}

	// Resolve the quote source: networked collector, CSV replay, or
	// synthetic generation — the three interchangeable collector
	// adapters of Figure 1.
	var (
		src       marketminer.QuoteSource
		uni       *marketminer.Universe
		collector *marketminer.FeedCollector
	)
	if o.connect != "" {
		ccfg := marketminer.FeedCollectorConfig{Addr: o.connect}
		if ch != nil {
			// Chaos on the networked path wraps the dialer: faults hit
			// the wire, and the protocol must recover them losslessly.
			tcp := &net.Dialer{}
			addr := o.connect
			ccfg.Dial = ch.Dialer(func(ctx context.Context) (net.Conn, error) {
				return tcp.DialContext(ctx, "tcp", addr)
			})
			fmt.Printf("chaos: injecting faults on the dial path: %s\n", ch.Spec())
		}
		collector = marketminer.NewFeedCollector(ccfg)
		go collector.Run(ctx)
		uctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		uni, err = collector.Universe(uctx)
		cancel()
		if err != nil {
			return fmt.Errorf("connecting to feed %s: %w", o.connect, err)
		}
		src = marketminer.ChannelSource(collector.Quotes())
		fmt.Printf("feed: connected to %s, %d stocks\n", o.connect, uni.Len())
	} else {
		var quotes []taq.Quote
		if o.in != "" {
			quotes, uni, err = loadCSV(o.in, o.day)
		} else {
			quotes, uni, err = synthetic(o.stocks, o.seed, o.day)
		}
		if err != nil {
			return err
		}
		src = marketminer.SliceSource(quotes)
		if ch != nil {
			// Chaos on an in-process source perturbs the data itself
			// (drops, duplicates, reorders) — visible damage for
			// exercising the cleaning stage and the supervision runtime.
			src = ch.Source(src)
			fmt.Printf("chaos: perturbing the quote stream: %s\n", ch.Spec())
		}
		fmt.Printf("feed: %d quotes, %d stocks, day %d\n", len(quotes), uni.Len(), o.day)
	}

	p := marketminer.DefaultParams()
	p.Ctype = ct
	p.M = o.m
	p.W = o.w
	p.D = o.d
	cfg := marketminer.PipelineConfig{
		Universe: uni,
		Params:   []marketminer.Params{p},
		Workers:  o.workers,
	}
	if o.supervise || o.snapshot != "" || o.quarantine != "" {
		cfg.Supervise = &marketminer.SuperviseOptions{
			SnapshotPath:   o.snapshot,
			SnapshotEvery:  o.snapshotEvery,
			QuarantinePath: o.quarantine,
			DrainTimeout:   o.drain,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "supervise: "+format+"\n", args...)
			},
		}
	}
	start := time.Now()
	res, err := marketminer.RunLivePipelineFrom(ctx, cfg, src, o.day)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if collector != nil {
		st := collector.Stats()
		fmt.Printf("collector: %d connects, %d disconnects, %d duplicates skipped, %d order violations\n",
			st.Connects, st.Disconnects, st.Duplicates, st.OrderViolations)
	}

	fmt.Printf("\nFIGURE 1 PIPELINE — completed in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  quotes in / cleaned     %8d / %d (%.2f%% rejected)\n",
		res.QuotesIn, res.QuotesClean,
		100*float64(res.QuotesIn-res.QuotesClean)/max1(float64(res.QuotesIn)))
	fmt.Printf("  correlation matrices    %8d (%.0f matrices/sec)\n",
		res.Matrices, float64(res.Matrices)/max1(elapsed.Seconds()))
	fmt.Printf("  trades completed        %8d\n", len(res.Trades[0]))
	fmt.Printf("  order requests          %8d\n", res.Orders)
	fmt.Printf("  book flat at close      %8v\n", res.BookFlat)
	fmt.Printf("  realised cash P&L       %8.2f\n", res.CashPnL)
	fmt.Println("\n  node                      received     emitted")
	for _, s := range res.NodeStats {
		fmt.Printf("  %-24s %10d %11d\n", s.Name, s.Received, s.Emitted)
	}
	if sup := res.Supervision; sup != nil {
		fmt.Printf("\nSUPERVISION\n")
		if sup.Resumed {
			fmt.Printf("  resumed from snapshot at interval %d\n", sup.ResumeCursor)
		}
		if sup.ColdStart != "" {
			fmt.Printf("  cold start: %s\n", sup.ColdStart)
		}
		fmt.Printf("  snapshots written       %8d\n", sup.Snapshots)
		for _, st := range sup.Stages {
			if st.Panics > 0 || st.Quarantined > 0 || st.Skipped > 0 {
				fmt.Printf("  stage %-18s %d panics, %d quarantined, %d skipped\n",
					st.Name, st.Panics, st.Quarantined, st.Skipped)
			}
		}
	}
	if ch != nil {
		fmt.Printf("\nchaos: injected %+v\n", ch.Stats())
	}
	if o.dot {
		fmt.Println("\n" + res.GraphDOT)
	}
	return nil
}

func max1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}

// synthetic generates one day of quotes for a prefix of the default
// universe.
func synthetic(stocks int, seed int64, day int) ([]taq.Quote, *marketminer.Universe, error) {
	if stocks < 2 || stocks > 61 {
		return nil, nil, fmt.Errorf("stocks must be in [2, 61]")
	}
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:stocks])
	if err != nil {
		return nil, nil, err
	}
	cfg := market.DefaultConfig()
	cfg.Universe = uni
	cfg.Seed = seed
	cfg.Days = day + 1
	gen, err := market.NewGenerator(cfg)
	if err != nil {
		return nil, nil, err
	}
	md, err := gen.GenerateDay(day)
	if err != nil {
		return nil, nil, err
	}
	return md.Quotes, uni, nil
}

// loadCSV streams one day's quotes out of an mmgen file and derives
// the universe from the symbols seen.
func loadCSV(path string, day int) ([]taq.Quote, *marketminer.Universe, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := taq.NewReader(f, false)
	var quotes []taq.Quote
	seen := map[string]bool{}
	var symbols []string
	for {
		q, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if q.Day != day {
			continue
		}
		quotes = append(quotes, q)
		if !seen[q.Symbol] {
			seen[q.Symbol] = true
			symbols = append(symbols, q.Symbol)
		}
	}
	if len(symbols) < 2 {
		return nil, nil, fmt.Errorf("day %d has quotes for %d symbols; need ≥ 2", day, len(symbols))
	}
	uni, err := taq.NewUniverse(symbols)
	if err != nil {
		return nil, nil, err
	}
	return quotes, uni, nil
}
