package main

import (
	"net"

	"os"
	"path/filepath"
	"testing"

	"marketminer"
	"marketminer/internal/taq"
)

// testOptions is the smallest fast configuration for a synthetic day.
func testOptions() options {
	return options{
		stocks: 4, seed: 9, ctype: "pearson",
		m: 30, w: 20, d: 0.005, workers: 1,
	}
}

func TestRunSyntheticDay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := testOptions()
	o.dot = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunSupervisedChaoticDay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The CLI's fault-tolerance surface end to end: a perturbed quote
	// stream through the supervised DAG, snapshotting the engine.
	o := testOptions()
	o.chaos = "seed=5,drop=0.01,dup=0.01"
	o.supervise = true
	o.snapshot = filepath.Join(t.TempDir(), "engine.snap")
	o.quarantine = filepath.Join(t.TempDir(), "poison.jsonl")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	o := testOptions()
	o.ctype = "spearmanX"
	if err := run(o); err == nil {
		t.Error("unknown ctype should error")
	}
	o = testOptions()
	o.stocks = 1
	if err := run(o); err == nil {
		t.Error("stocks < 2 should error")
	}
	o = testOptions()
	o.chaos = "typo=1"
	if err := run(o); err == nil {
		t.Error("malformed chaos spec should error")
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := taq.NewWriter(f)
	for i := 0; i < 10; i++ {
		sym := "AA"
		if i%2 == 1 {
			sym = "BB"
		}
		w.Write(taq.Quote{Day: 0, SeqTime: float64(i), Symbol: sym, Bid: 10, Ask: 10.1, BidSize: 1, AskSize: 1})
	}
	w.Write(taq.Quote{Day: 1, SeqTime: 5, Symbol: "CC", Bid: 1, Ask: 1.1, BidSize: 1, AskSize: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	quotes, uni, err := loadCSV(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(quotes) != 10 {
		t.Errorf("loaded %d quotes, want 10 (day filter)", len(quotes))
	}
	if uni.Len() != 2 {
		t.Errorf("universe = %d symbols, want 2", uni.Len())
	}
	// A day with a single symbol is rejected.
	if _, _, err := loadCSV(path, 1); err == nil {
		t.Error("single-symbol day should error")
	}
	if _, _, err := loadCSV("/nonexistent.csv", 0); err == nil {
		t.Error("missing file should error")
	}
}

// TestRunConnectedToFeed drives the full networked path the CLI pair
// (mmfeed | mmpipeline -connect) uses: a feed server replays a
// synthetic day on loopback and run() subscribes to it.
func TestRunConnectedToFeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	quotes, uni, err := synthetic(4, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := marketminer.NewFeedServer(marketminer.FeedServerConfig{Universe: uni})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	s.PublishBatch(quotes)
	s.Finish()

	o := testOptions()
	o.connect = l.Addr().String()
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}
