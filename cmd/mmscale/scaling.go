package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
)

// cpuModel best-effort reads the CPU model name from /proc/cpuinfo so
// benchmark artifacts record the hardware they were measured on.
// Returns "" when unavailable (non-Linux, restricted container).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// gitRevision best-effort resolves the short revision of the working
// tree the benchmark ran from. Returns "" outside a git checkout.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// scalingPoint is one worker count on the scaling curve. Points with
// Workers > NumCPU are marked Oversubscribed: they exist so the curve
// is complete even on constrained hosts (a 1-core container still
// produces a 1..4 curve), but their speedup/efficiency measure
// scheduler behaviour, not hardware scaling, and consumers such as
// mmbenchgate must skip them when judging parallel efficiency.
type scalingPoint struct {
	Workers        int     `json:"workers"`
	NsPerOp        int64   `json:"ns_per_op"`
	Speedup        float64 `json:"speedup"`    // vs the 1-worker point
	Efficiency     float64 `json:"efficiency"` // speedup / workers
	Oversubscribed bool    `json:"oversubscribed,omitempty"`
}

// scalingReport is the BENCH_scaling.json schema: the matrix engine's
// strong-scaling curve over every worker count from 1 up to
// max(4, NumCPU) on a fixed day workload, with enough environment
// detail (cpu, numcpu, revision, gomaxprocs) to interpret the numbers
// later. NumCPU documents the host core count so a curve measured on a
// 1-core container is not mistaken for a flat-scaling regression; the
// points beyond NumCPU are flagged oversubscribed.
type scalingReport struct {
	Schema      string         `json:"schema"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"numcpu"`
	CPUModel    string         `json:"cpu_model,omitempty"`
	GitRevision string         `json:"git_revision,omitempty"`
	Workload    string         `json:"workload"`
	WindowM     int            `json:"window_m"`
	Points      []scalingPoint `json:"points"`
}

// scalingWorkerCounts returns every worker count 1..max(4, numCPU):
// the full curve, not a doubling subsample, so efficiency cliffs
// between powers of two are visible, and never fewer than four points
// so constrained hosts still produce a curve (the tail is just marked
// oversubscribed).
func scalingWorkerCounts(numCPU int) []int {
	maxW := numCPU
	if maxW < 4 {
		maxW = 4
	}
	counts := make([]int, 0, maxW)
	for w := 1; w <= maxW; w++ {
		counts = append(counts, w)
	}
	return counts
}

// writeScalingJSON benchmarks the full three-treatment matrix pass over
// the prepared day at each worker count and writes the scaling report.
func writeScalingJSON(path string, dd *backtest.DayData) error {
	numCPU := runtime.NumCPU()
	rep := scalingReport{
		Schema:      "marketminer/bench_scaling/v2",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      numCPU,
		CPUModel:    cpuModel(),
		GitRevision: gitRevision(),
		Workload: fmt.Sprintf("ComputeMatrixSeries, %d stocks, %d returns, all three treatments",
			len(dd.Returns), len(dd.Returns[0])),
		WindowM: benchWindowM,
	}
	types := []corr.Type{corr.Pearson, corr.Maronna, corr.Combined}
	var baseNs int64
	for _, w := range scalingWorkerCounts(numCPU) {
		cfg := corr.EngineConfig{M: benchWindowM, Workers: w}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corr.ComputeMatrixSeries(cfg, types, dd.Returns); err != nil {
					b.Fatal(err)
				}
			}
		})
		pt := scalingPoint{Workers: w, NsPerOp: r.NsPerOp(), Oversubscribed: w > numCPU}
		if baseNs == 0 {
			baseNs = pt.NsPerOp
		}
		if pt.NsPerOp > 0 {
			pt.Speedup = float64(baseNs) / float64(pt.NsPerOp)
			pt.Efficiency = pt.Speedup / float64(w)
		}
		rep.Points = append(rep.Points, pt)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
