package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
)

// cpuModel best-effort reads the CPU model name from /proc/cpuinfo so
// benchmark artifacts record the hardware they were measured on.
// Returns "" when unavailable (non-Linux, restricted container).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// gitRevision best-effort resolves the short revision of the working
// tree the benchmark ran from. Returns "" outside a git checkout.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// scalingPoint is one worker count on the scaling curve.
type scalingPoint struct {
	Workers    int     `json:"workers"`
	NsPerOp    int64   `json:"ns_per_op"`
	Speedup    float64 `json:"speedup"`    // vs the 1-worker point
	Efficiency float64 `json:"efficiency"` // speedup / workers
}

// scalingReport is the BENCH_scaling.json schema: the matrix engine's
// strong-scaling curve from 1 to NumCPU workers on a fixed day
// workload, with enough environment detail (cpu, revision, gomaxprocs)
// to interpret the numbers later. On a single-core host the curve
// degenerates to one point — recorded honestly rather than simulated.
type scalingReport struct {
	Schema      string         `json:"schema"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"numcpu"`
	CPUModel    string         `json:"cpu_model,omitempty"`
	GitRevision string         `json:"git_revision,omitempty"`
	Workload    string         `json:"workload"`
	WindowM     int            `json:"window_m"`
	Points      []scalingPoint `json:"points"`
}

// scalingWorkerCounts returns 1, 2, 4, ... doubling up to NumCPU, with
// NumCPU always the last point.
func scalingWorkerCounts(numCPU int) []int {
	var counts []int
	for w := 1; w < numCPU; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, numCPU)
}

// writeScalingJSON benchmarks the full three-treatment matrix pass over
// the prepared day at each worker count and writes the scaling report.
func writeScalingJSON(path string, dd *backtest.DayData) error {
	numCPU := runtime.NumCPU()
	rep := scalingReport{
		Schema:      "marketminer/bench_scaling/v1",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      numCPU,
		CPUModel:    cpuModel(),
		GitRevision: gitRevision(),
		Workload: fmt.Sprintf("ComputeMatrixSeries, %d stocks, %d returns, all three treatments",
			len(dd.Returns), len(dd.Returns[0])),
		WindowM: benchWindowM,
	}
	types := []corr.Type{corr.Pearson, corr.Maronna, corr.Combined}
	var baseNs int64
	for _, w := range scalingWorkerCounts(numCPU) {
		cfg := corr.EngineConfig{M: benchWindowM, Workers: w}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corr.ComputeMatrixSeries(cfg, types, dd.Returns); err != nil {
					b.Fatal(err)
				}
			}
		})
		pt := scalingPoint{Workers: w, NsPerOp: r.NsPerOp()}
		if baseNs == 0 {
			baseNs = pt.NsPerOp
		}
		if pt.NsPerOp > 0 {
			pt.Speedup = float64(baseNs) / float64(pt.NsPerOp)
			pt.Efficiency = pt.Speedup / float64(w)
		}
		rep.Points = append(rep.Points, pt)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
