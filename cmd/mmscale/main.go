// Command mmscale reproduces the Section IV/V performance study: it
// measures the sequential per-(pair, day, parameter-set) cost (the
// paper's "approximately 2 seconds" in Matlab), extrapolates it to the
// paper's prohibitive full-sweep estimates (854 hours / ~445 days /
// tens of years), and then compares the three execution strategies —
// sequential, SGE-like farm, and the integrated MarketMiner engine —
// on the same reduced workload.
//
// Usage:
//
//	mmscale                      # default: 10 stocks, 2 days, 2 levels
//	mmscale -stocks 20 -days 3
//	mmscale -ctype maronna       # unit-cost measure for one treatment
//	mmscale -bench-json BENCH_corr.json   # machine-readable kernel benchmarks
//	mmscale -scaling-json BENCH_scaling.json   # 1..NumCPU engine scaling curve
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/prof"
	"marketminer/internal/report"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

func main() {
	var (
		stocks      = flag.Int("stocks", 10, "universe size (2..1024; past 61 uses synthetic tickers)")
		days        = flag.Int("days", 2, "trading days")
		levels      = flag.Int("levels", 2, "parameter levels (max 14)")
		seed        = flag.Int64("seed", 20080301, "data seed")
		workers     = flag.Int("workers", 0, "workers (0 = GOMAXPROCS)")
		sameM       = flag.Bool("same-m", false, "restrict levels to M=100 so every set shares one correlation series (maximum integrated-engine sharing)")
		benchJSON   = flag.String("bench-json", "", "run the correlation kernel benchmark suite and write machine-readable results to this file")
		scalingJSON = flag.String("scaling-json", "", "measure the matrix engine's 1..NumCPU worker scaling curve and write it to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the approach comparison to this file")
		memProfile  = flag.String("memprofile", "", "write a post-run heap profile to this file")
		simdMode    = flag.String("simd", "auto", "robust-kernel SIMD dispatch: auto | off (f64 results are bit-identical either way)")
	)
	flag.Parse()
	if err := corr.SetSIMDMode(*simdMode); err != nil {
		fmt.Fprintln(os.Stderr, "mmscale:", err)
		os.Exit(1)
	}
	if err := run(*stocks, *days, *levels, *seed, *workers, *sameM, *benchJSON, *scalingJSON, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "mmscale:", err)
		os.Exit(1)
	}
}

func run(stocks, days, levels int, seed int64, workers int, sameM bool, benchJSON, scalingJSON, cpuProfile, memProfile string) error {
	if stocks < 2 || stocks > 1024 {
		return fmt.Errorf("stocks must be in [2, 1024]")
	}
	if levels < 1 || levels > 14 {
		return fmt.Errorf("levels must be in [1, 14]")
	}
	uni, err := taq.NewUniverse(taq.SyntheticSymbols(stocks))
	if err != nil {
		return err
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = days
	mc.Seed = seed
	lvls := strategy.BaseGrid()
	if sameM {
		var only []strategy.Params
		for _, p := range lvls {
			if p.M == 100 {
				only = append(only, p)
			}
		}
		lvls = only
	}
	if levels > len(lvls) {
		levels = len(lvls)
	}
	cfg := backtest.Config{
		Market:  mc,
		Levels:  lvls[:levels],
		Workers: workers,
	}
	fmt.Printf("workload: %d stocks (%d pairs) x %d days x %d levels x 3 types on %d core(s)\n",
		stocks, uni.NumPairs(), days, levels, runtime.GOMAXPROCS(0))
	fmt.Printf("robust kernel SIMD: %s (host supports %s)\n\n", corr.SIMDTier(), corr.SIMDSupported())

	// --- Unit cost per correlation treatment (Section IV) ---------
	gen, err := market.NewGenerator(mc)
	if err != nil {
		return err
	}
	dd, err := backtest.PrepareDay(cfg, gen, 0)
	if err != nil {
		return err
	}
	fmt.Println("SEQUENTIAL UNIT COST — one (pair, day, parameter set) return vector")
	var maronnaUnit float64
	for _, ct := range corr.Types() {
		p := strategy.DefaultParams().WithType(ct)
		// Warm once, then time a few pairs.
		if _, err := backtest.RunPairDaySequential(p, dd, 0, 1, 0); err != nil {
			return err
		}
		const reps = 5
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := backtest.RunPairDaySequential(p, dd, 0, 1+r%(stocks-1), 0); err != nil {
				return err
			}
		}
		unit := time.Since(start).Seconds() / reps
		fmt.Printf("  %-10s %12.6f s\n", ct, unit)
		if ct == corr.Maronna {
			maronnaUnit = unit
		}
	}
	fmt.Println()

	// --- Paper-scale extrapolation (Section IV arithmetic) --------
	ext := report.Extrapolation{UnitSeconds: maronnaUnit, Pairs: 1830, Days: 20, Sets: 42}
	fmt.Println(ext)

	// --- Approach comparison on the reduced workload (Section V) --
	ctx := context.Background()
	stopProf, err := prof.Start(cpuProfile, memProfile)
	if err != nil {
		return err
	}
	startFarm := time.Now()
	farmRes, err := backtest.Farm(ctx, cfg)
	if err != nil {
		stopProf()
		return err
	}
	farmSec := time.Since(startFarm).Seconds()

	startInt := time.Now()
	intRes, err := backtest.Run(ctx, cfg)
	if err != nil {
		stopProf()
		return err
	}
	intSec := time.Since(startInt).Seconds()
	if err := stopProf(); err != nil {
		return err
	}

	if farmRes.TradeCount != intRes.TradeCount {
		return fmt.Errorf("runner mismatch: farm %d trades, integrated %d", farmRes.TradeCount, intRes.TradeCount)
	}
	fmt.Println(report.SpeedupTable(
		fmt.Sprintf("SECTION V — APPROACH COMPARISON (%d trades, identical results)", intRes.TradeCount),
		[]report.Speedup{
			{Name: "approach 2: per-pair farm (SGE-like)", Seconds: farmSec},
			{Name: "approach 3: integrated engine", Seconds: intSec},
		}))
	fmt.Println("the integrated engine computes each (Ctype, M) correlation series once\n" +
		"per day and shares it across every pair and parameter set; the farm\n" +
		"recomputes it per (pair, set), which is the asymptotic waste the paper\n" +
		"identifies as 'the main bottleneck'.")

	if benchJSON != "" {
		fmt.Println("\nrunning correlation kernel benchmark suite ...")
		sw := sweepReport{FarmSeconds: farmSec, IntegratedSeconds: intSec, Trades: intRes.TradeCount}
		if err := writeBenchJSON(benchJSON, dd, workers, sw); err != nil {
			return err
		}
		fmt.Printf("benchmark results saved to %s\n", benchJSON)
	}
	if scalingJSON != "" {
		fmt.Println("\nmeasuring matrix engine scaling curve ...")
		if err := writeScalingJSON(scalingJSON, dd); err != nil {
			return err
		}
		fmt.Printf("scaling curve saved to %s\n", scalingJSON)
	}
	return nil
}
