package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/screen"
)

// benchWindowM is the window length used for the per-window kernel
// benchmarks. It matches the paper grid's dominant M and the
// BenchmarkCorrelationWindow suite in bench_test.go so numbers are
// directly comparable.
const benchWindowM = 100

type windowBench struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type robustReport struct {
	Windows     int     `json:"windows"`
	WarmHits    int     `json:"warm_hits"`
	ColdStarts  int     `json:"cold_starts"`
	Fallbacks   int     `json:"fallbacks"`
	WarmHitFrac float64 `json:"warm_hit_fraction"`
	MeanIters   float64 `json:"mean_iterations"`
	IterHist    []int   `json:"iteration_histogram"`
}

type sweepReport struct {
	FarmSeconds       float64 `json:"farm_seconds"`
	IntegratedSeconds float64 `json:"integrated_seconds"`
	Trades            int64   `json:"trades"`
}

// engineReport compares the matrix-level engine (shared per-stock
// moments + cache tiles + work stealing) against the per-pair
// reference at the same worker count, so the structural win is isolated
// from parallel speedup.
type engineReport struct {
	Workers  int `json:"workers"`
	TileSize int `json:"tile_size"`
	// Whole-day Pearson pass, all pairs — the moment-sharing headline.
	PearsonDayNs    int64   `json:"pearson_day_ns"`
	PearsonDayRefNs int64   `json:"pearson_day_reference_ns"`
	PearsonSpeedup  float64 `json:"pearson_speedup"`
	// Whole-day fused Maronna+Combined pass, all pairs.
	FusedDayNs    int64   `json:"fused_day_ns"`
	FusedDayRefNs int64   `json:"fused_day_reference_ns"`
	FusedSpeedup  float64 `json:"fused_speedup"`
}

// batchReport isolates the batched SoA robust kernel: the whole-day
// fused robust pass at one worker, batched versus the frozen per-pair
// reference, plus the float32 iteration lane and its measured accuracy
// delta. The batch numbers are deliberately single-threaded so the
// structural win is not conflated with parallel speedup. The passes
// are µop-throughput-bound scalar loops (see DESIGN.md §8), so the
// honest batch win is modest; the ≥2× day-level headline comes from
// the screened pipeline below.
type batchReport struct {
	// Whole-day fused Maronna+Combined pass, 1 worker.
	FusedDayNs           int64   `json:"fused_day_ns"`
	FusedDayRefNs        int64   `json:"fused_day_reference_ns"`
	RobustBatchedSpeedup float64 `json:"robust_batched_speedup"`
	// The same pass with the float32 iteration lane.
	Float32DayNs      int64   `json:"float32_day_ns"`
	Float32Speedup    float64 `json:"float32_speedup"`
	F32MaxAbsRhoDelta float64 `json:"f32_max_abs_rho_delta"`
	// Batch occupancy telemetry from one exact-path day.
	BatchSweeps     int     `json:"batch_sweeps"`
	MeanActiveLanes float64 `json:"mean_active_lanes"`
}

// simdReport isolates the lane-major AVX2 backend: the same
// single-threaded batched fused day as the batch section, with the
// vector kernels on, against the scalar batched kernel (batch section
// numbers, which stay pinned to DisableSIMD for cross-version
// comparability). PackOverheadFrac is the fraction of vector batch
// wall-clock spent transposing windows into the lane-major tiles,
// from the SetSIMDProfiling telemetry.
type simdReport struct {
	// DispatchTier is the tier actually used for these numbers;
	// SupportedTier is what the host could do (they differ only when
	// something force-disabled SIMD, which would make RobustSIMDSpeedup
	// meaninglessly 1.0 — the gate skips when scalar).
	DispatchTier  string `json:"dispatch_tier"`
	SupportedTier string `json:"supported_tier"`
	// Whole-day fused Maronna+Combined pass, 1 worker, vector kernels.
	RobustSIMDDayNs   int64   `json:"robust_simd_day_ns"`
	RobustSIMDSpeedup float64 `json:"robust_simd_speedup"`
	// The float32 iteration lane on the 8-wide kernels.
	F32SIMDDayNs          int64   `json:"f32_simd_day_ns"`
	F32SIMDSpeedup        float64 `json:"f32_simd_speedup"`
	F32SIMDMaxAbsRhoDelta float64 `json:"f32_simd_max_abs_rho_delta"`
	// Transpose cost share of the vector batch runs.
	PackOverheadFrac float64 `json:"pack_overhead_frac"`
}

// screenReport measures the SSD pre-screening stage and the full
// screened pipeline: screen the triangle, then run the batched float32
// fused pass over the survivors (vector kernels included — the
// pipeline is the best-available configuration). PipelineSpeedup
// versus the unscreened per-pair reference is the day-level headline.
type screenReport struct {
	TopFrac         float64 `json:"top_frac"`
	PairsTotal      int     `json:"pairs_total"`
	PairsKept       int     `json:"pairs_kept"`
	PruneRatio      float64 `json:"screen_prune_ratio"`
	SelectNs        int64   `json:"select_ns"`
	PipelineDayNs   int64   `json:"pipeline_day_ns"`
	PipelineSpeedup float64 `json:"pipeline_speedup"`
}

// benchReport is the BENCH_corr.json schema: per-window kernel costs
// (cold, warm-started, and fused two-treatment), whole-day series
// throughput, warm-start statistics, and the end-to-end approach
// comparison wall times measured by the surrounding mmscale run.
type benchReport struct {
	Schema string `json:"schema"`
	// Environment the numbers were measured in. GOMAXPROCS is the value
	// actually in effect during the run, not the flag that was asked
	// for; CPUModel and GitRevision are best-effort ("" when
	// undiscoverable).
	GOMAXPROCS  int    `json:"gomaxprocs"`
	CPUModel    string `json:"cpu_model,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	WindowM     int    `json:"window_m"`

	// Cold per-window cost with scratch reuse (median/MAD init every
	// window), keyed by correlation type.
	ColdWindow map[string]windowBench `json:"cold_window"`
	// Steady-state warm-started sliding Maronna window — the engine's
	// actual per-window path.
	WarmWindowMaronna windowBench `json:"warm_window_maronna"`
	// Both treatments computed as independent estimations per window
	// (warm Maronna chain plus a separate Combined estimation) — the
	// pre-fusion engine's cost and the baseline for the fused number.
	UnfusedWindowBothTreatments windowBench `json:"unfused_window_both_treatments"`
	// One warm-started fit serving both the Maronna and Combined
	// treatments (the fused engine's unit of work).
	FusedWindowBothTreatments windowBench `json:"fused_window_both_treatments"`
	// Unfused / fused ns ratio, so the fusion win reads straight off
	// the report.
	FusionSpeedup float64 `json:"fusion_speedup"`

	// Whole-day parallel series cost, in ns per (pair, window), keyed
	// by correlation type, plus the fused Maronna+Combined pass.
	SeriesNsPerWindow      map[string]float64 `json:"series_ns_per_window"`
	SeriesFusedNsPerWindow float64            `json:"series_fused_maronna_combined_ns_per_window"`

	Robust robustReport `json:"robust"`
	Engine engineReport `json:"engine"`
	Batch  batchReport  `json:"batch"`
	SIMD   simdReport   `json:"simd"`
	Screen screenReport `json:"screen"`
	Sweep  sweepReport  `json:"sweep"`
}

// benchScreenTopFrac is the canonical screening setting of the bench
// pipeline: keep the closest half of the pair triangle. The sweep-level
// recall gate (TestScreenedSweepRecall) validates this fraction retains
// ≥95% of trade PnL on the seed universe.
const benchScreenTopFrac = 0.5

// dayBenchMin runs a whole-day benchmark n times and keeps the fastest
// ns/op: on shared single-core hosts individual testing.Benchmark runs
// jitter by ±10–30%, and the minimum is the stable estimator of the
// true cost.
func dayBenchMin(n int, f func() error) int64 {
	best := int64(0)
	for i := 0; i < n; i++ {
		ns := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// measureBatchAndScreen fills the batch and screen sections: the
// single-threaded batched/float32 fused-day numbers against the frozen
// per-pair reference, the float32 accuracy delta, and the screened
// pipeline headline.
func measureBatchAndScreen(rep *benchReport, dd *backtest.DayData) error {
	fusedTypes := []corr.Type{corr.Maronna, corr.Combined}
	// The batch section is pinned to the scalar tier so its ratios keep
	// measuring the structural batching win and stay comparable across
	// versions and hosts; the vector kernels are isolated separately in
	// the simd section.
	ec1 := corr.EngineConfig{M: benchWindowM, Workers: 1, DisableSIMD: true}
	ecF32 := ec1
	ecF32.Float32 = true
	const reps = 3

	rep.Batch.FusedDayRefNs = dayBenchMin(reps, func() error {
		_, err := corr.ComputeSeriesMultiReference(ec1, fusedTypes, dd.Returns)
		return err
	})
	rep.Batch.FusedDayNs = dayBenchMin(reps, func() error {
		_, err := corr.ComputeMatrixSeries(ec1, fusedTypes, dd.Returns)
		return err
	})
	rep.Batch.Float32DayNs = dayBenchMin(reps, func() error {
		_, err := corr.ComputeMatrixSeries(ecF32, fusedTypes, dd.Returns)
		return err
	})
	if rep.Batch.FusedDayNs > 0 {
		rep.Batch.RobustBatchedSpeedup = float64(rep.Batch.FusedDayRefNs) / float64(rep.Batch.FusedDayNs)
	}
	if rep.Batch.Float32DayNs > 0 {
		rep.Batch.Float32Speedup = float64(rep.Batch.FusedDayRefNs) / float64(rep.Batch.Float32DayNs)
	}

	// Accuracy delta and batch telemetry from one run of each path.
	exact, err := corr.ComputeMatrixSeries(ec1, fusedTypes, dd.Returns)
	if err != nil {
		return err
	}
	appx, err := corr.ComputeMatrixSeries(ecF32, fusedTypes, dd.Returns)
	if err != nil {
		return err
	}
	for oi := range exact {
		for k := range exact[oi].Corr {
			for w := range exact[oi].Corr[k] {
				d := math.Abs(exact[oi].Corr[k][w] - appx[oi].Corr[k][w])
				if d > rep.Batch.F32MaxAbsRhoDelta {
					rep.Batch.F32MaxAbsRhoDelta = d
				}
			}
		}
	}
	if st := exact[0].Robust; st != nil {
		rep.Batch.BatchSweeps = st.BatchSweeps
		rep.Batch.MeanActiveLanes = st.MeanActiveLanes()
	}

	// Screened pipeline: prune the triangle, then run the batched
	// float32 fused pass over the survivors. The speedup is measured
	// against the unscreened per-pair reference — the day-level cost an
	// operator actually avoids.
	scfg := screen.Config{TopFrac: benchScreenTopFrac, MinKeep: 1}
	keep, sst, err := screen.Select(scfg, dd.Returns)
	if err != nil {
		return err
	}
	rep.Screen.TopFrac = benchScreenTopFrac
	rep.Screen.PairsTotal = sst.PairsTotal
	rep.Screen.PairsKept = sst.PairsKept
	rep.Screen.PruneRatio = sst.PruneRatio()
	rep.Screen.SelectNs = dayBenchMin(reps, func() error {
		_, _, err := screen.Select(scfg, dd.Returns)
		return err
	})
	ecPipe := ecF32
	ecPipe.DisableSIMD = false // pipeline runs the best available tier
	ecPipe.Pairs = keep
	rep.Screen.PipelineDayNs = dayBenchMin(reps, func() error {
		if _, _, err := screen.Select(scfg, dd.Returns); err != nil {
			return err
		}
		_, err := corr.ComputeMatrixSeries(ecPipe, fusedTypes, dd.Returns)
		return err
	})
	if rep.Screen.PipelineDayNs > 0 {
		rep.Screen.PipelineSpeedup = float64(rep.Batch.FusedDayRefNs) / float64(rep.Screen.PipelineDayNs)
	}
	return nil
}

// measureSIMD fills the simd section: the batched fused day with the
// vector kernels on, against the scalar-tier batch numbers measured
// above, plus the 8-wide float32 lane, its accuracy delta against the
// exact engine, and the transpose (pack) share of vector batch time.
// On hosts without AVX2 both tiers run scalar: speedups come out ≈1.0
// and the gate skips them by the dispatch_tier field.
func measureSIMD(rep *benchReport, dd *backtest.DayData) error {
	rep.SIMD.DispatchTier = corr.SIMDTier()
	rep.SIMD.SupportedTier = corr.SIMDSupported()

	fusedTypes := []corr.Type{corr.Maronna, corr.Combined}
	ec1 := corr.EngineConfig{M: benchWindowM, Workers: 1}
	ecF32 := ec1
	ecF32.Float32 = true
	const reps = 3

	rep.SIMD.RobustSIMDDayNs = dayBenchMin(reps, func() error {
		_, err := corr.ComputeMatrixSeries(ec1, fusedTypes, dd.Returns)
		return err
	})
	rep.SIMD.F32SIMDDayNs = dayBenchMin(reps, func() error {
		_, err := corr.ComputeMatrixSeries(ecF32, fusedTypes, dd.Returns)
		return err
	})
	if rep.SIMD.RobustSIMDDayNs > 0 {
		rep.SIMD.RobustSIMDSpeedup = float64(rep.Batch.FusedDayNs) / float64(rep.SIMD.RobustSIMDDayNs)
	}
	if rep.SIMD.F32SIMDDayNs > 0 {
		rep.SIMD.F32SIMDSpeedup = float64(rep.Batch.Float32DayNs) / float64(rep.SIMD.F32SIMDDayNs)
	}

	// f32-on-SIMD accuracy against the exact engine (whose output is
	// tier-independent by the bit-identity contract), and the pack
	// overhead from one profiled run of each path.
	corr.SetSIMDProfiling(true)
	defer corr.SetSIMDProfiling(false)
	exact, err := corr.ComputeMatrixSeries(ec1, fusedTypes, dd.Returns)
	if err != nil {
		return err
	}
	appx, err := corr.ComputeMatrixSeries(ecF32, fusedTypes, dd.Returns)
	if err != nil {
		return err
	}
	for oi := range exact {
		for k := range exact[oi].Corr {
			for w := range exact[oi].Corr[k] {
				d := math.Abs(exact[oi].Corr[k][w] - appx[oi].Corr[k][w])
				if d > rep.SIMD.F32SIMDMaxAbsRhoDelta {
					rep.SIMD.F32SIMDMaxAbsRhoDelta = d
				}
			}
		}
	}
	var packNs, runNs int64
	for _, series := range [][]*corr.Series{exact, appx} {
		if st := series[0].Robust; st != nil {
			packNs += st.SIMDPackNs
			runNs += st.SIMDRunNs
		}
	}
	if total := packNs + runNs; total > 0 {
		rep.SIMD.PackOverheadFrac = float64(packNs) / float64(total)
	}
	return nil
}

func benchNs(f func(b *testing.B)) windowBench {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	return windowBench{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// writeBenchJSON runs the correlation kernel benchmark suite on the
// already-prepared day and writes the machine-readable report.
func writeBenchJSON(path string, dd *backtest.DayData, workers int, sweep sweepReport) error {
	x, y := dd.Returns[0], dd.Returns[1]
	if len(x) <= benchWindowM {
		return fmt.Errorf("day too short for bench: %d returns, window %d", len(x), benchWindowM)
	}
	steps := len(x) - benchWindowM

	rep := benchReport{
		Schema:            "marketminer/bench_corr/v5",
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CPUModel:          cpuModel(),
		GitRevision:       gitRevision(),
		WindowM:           benchWindowM,
		ColdWindow:        make(map[string]windowBench),
		SeriesNsPerWindow: make(map[string]float64),
		Sweep:             sweep,
	}

	est := corr.NewMaronnaEstimator(corr.DefaultMaronnaConfig())
	cest := corr.NewCombinedEstimator(corr.DefaultMaronnaConfig())
	var sink float64
	var sc *corr.Scratch

	// Every window bench slides through the same day so cold and warm
	// numbers average over identical regimes (including breakdowns).
	rep.ColdWindow[corr.Pearson.String()] = benchNs(func(b *testing.B) {
		t := 0
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			sink = corr.PearsonCorr(x[t:t+benchWindowM], y[t:t+benchWindowM])
		}
	})
	rep.ColdWindow[corr.Maronna.String()] = benchNs(func(b *testing.B) {
		t := 0
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			sink, sc = est.CorrScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc)
		}
	})
	rep.ColdWindow[corr.Combined.String()] = benchNs(func(b *testing.B) {
		t := 0
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			sink, sc = cest.CorrScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc)
		}
	})

	rep.WarmWindowMaronna = benchNs(func(b *testing.B) {
		var warm corr.Fit
		warm, sc = est.FitScratch(x[:benchWindowM], y[:benchWindowM], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc, &warm)
			sink = warm.Rho
		}
	})
	rep.UnfusedWindowBothTreatments = benchNs(func(b *testing.B) {
		var warm corr.Fit
		warm, sc = est.FitScratch(x[:benchWindowM], y[:benchWindowM], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc, &warm)
			sink, sc = cest.CorrScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc)
		}
	})
	rep.FusedWindowBothTreatments = benchNs(func(b *testing.B) {
		var warm corr.Fit
		warm, sc = est.FitScratch(x[:benchWindowM], y[:benchWindowM], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc, &warm)
			sink = corr.CombinedFromFit(x[t:t+benchWindowM], y[t:t+benchWindowM], warm.Rho, sc.Weights())
		}
	})
	if f := rep.FusedWindowBothTreatments.NsPerOp; f > 0 {
		rep.FusionSpeedup = float64(rep.UnfusedWindowBothTreatments.NsPerOp) / float64(f)
	}
	_ = sink

	ecfg := corr.EngineConfig{M: benchWindowM, Workers: workers}
	for _, ct := range corr.Types() {
		ecfg.Type = ct
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cs, err := corr.ComputeSeries(ecfg, dd.Returns)
				if err != nil {
					b.Fatal(err)
				}
				windows := len(cs.Pairs) * cs.Len()
				if windows == 0 {
					b.Fatal("empty series")
				}
			}
		})
		cs, err := corr.ComputeSeries(ecfg, dd.Returns)
		if err != nil {
			return err
		}
		rep.SeriesNsPerWindow[ct.String()] = float64(r.NsPerOp()) / float64(len(cs.Pairs)*cs.Len())
	}

	fusedTypes := []corr.Type{corr.Maronna, corr.Combined}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := corr.ComputeSeriesMulti(ecfg, fusedTypes, dd.Returns); err != nil {
				b.Fatal(err)
			}
		}
	})
	css, err := corr.ComputeSeriesMulti(ecfg, fusedTypes, dd.Returns)
	if err != nil {
		return err
	}
	// Per treatment-window: the fused pass fills two series per fit.
	totalWindows := len(fusedTypes) * len(css[0].Pairs) * css[0].Len()
	rep.SeriesFusedNsPerWindow = float64(r.NsPerOp()) / float64(totalWindows)

	if st := css[0].Robust; st != nil {
		rep.Robust = robustReport{
			Windows:     st.Windows,
			WarmHits:    st.WarmHits,
			ColdStarts:  st.ColdStarts,
			Fallbacks:   st.Fallbacks,
			WarmHitFrac: float64(st.WarmHits) / float64(st.Windows),
			MeanIters:   st.MeanIters(),
			IterHist:    st.IterHist,
		}
	}

	// Matrix engine vs per-pair reference at equal worker count: the
	// structural (sharing + tiling) win, not the parallel one.
	engineWorkers := workers
	if engineWorkers <= 0 {
		engineWorkers = runtime.GOMAXPROCS(0)
	}
	rep.Engine = engineReport{Workers: engineWorkers, TileSize: corr.DefaultTileSize}
	dayBench := func(f func() error) int64 {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
	}
	pearsonTypes := []corr.Type{corr.Pearson}
	rep.Engine.PearsonDayNs = dayBench(func() error {
		_, err := corr.ComputeMatrixSeries(ecfg, pearsonTypes, dd.Returns)
		return err
	})
	rep.Engine.PearsonDayRefNs = dayBench(func() error {
		_, err := corr.ComputeSeriesMultiReference(ecfg, pearsonTypes, dd.Returns)
		return err
	})
	rep.Engine.FusedDayNs = dayBench(func() error {
		_, err := corr.ComputeMatrixSeries(ecfg, fusedTypes, dd.Returns)
		return err
	})
	rep.Engine.FusedDayRefNs = dayBench(func() error {
		_, err := corr.ComputeSeriesMultiReference(ecfg, fusedTypes, dd.Returns)
		return err
	})
	if rep.Engine.PearsonDayNs > 0 {
		rep.Engine.PearsonSpeedup = float64(rep.Engine.PearsonDayRefNs) / float64(rep.Engine.PearsonDayNs)
	}
	if rep.Engine.FusedDayNs > 0 {
		rep.Engine.FusedSpeedup = float64(rep.Engine.FusedDayRefNs) / float64(rep.Engine.FusedDayNs)
	}

	if err := measureBatchAndScreen(&rep, dd); err != nil {
		return err
	}
	if err := measureSIMD(&rep, dd); err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
