package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
)

// benchWindowM is the window length used for the per-window kernel
// benchmarks. It matches the paper grid's dominant M and the
// BenchmarkCorrelationWindow suite in bench_test.go so numbers are
// directly comparable.
const benchWindowM = 100

type windowBench struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type robustReport struct {
	Windows     int     `json:"windows"`
	WarmHits    int     `json:"warm_hits"`
	ColdStarts  int     `json:"cold_starts"`
	Fallbacks   int     `json:"fallbacks"`
	WarmHitFrac float64 `json:"warm_hit_fraction"`
	MeanIters   float64 `json:"mean_iterations"`
	IterHist    []int   `json:"iteration_histogram"`
}

type sweepReport struct {
	FarmSeconds       float64 `json:"farm_seconds"`
	IntegratedSeconds float64 `json:"integrated_seconds"`
	Trades            int64   `json:"trades"`
}

// engineReport compares the matrix-level engine (shared per-stock
// moments + cache tiles + work stealing) against the per-pair
// reference at the same worker count, so the structural win is isolated
// from parallel speedup.
type engineReport struct {
	Workers  int `json:"workers"`
	TileSize int `json:"tile_size"`
	// Whole-day Pearson pass, all pairs — the moment-sharing headline.
	PearsonDayNs    int64   `json:"pearson_day_ns"`
	PearsonDayRefNs int64   `json:"pearson_day_reference_ns"`
	PearsonSpeedup  float64 `json:"pearson_speedup"`
	// Whole-day fused Maronna+Combined pass, all pairs.
	FusedDayNs    int64   `json:"fused_day_ns"`
	FusedDayRefNs int64   `json:"fused_day_reference_ns"`
	FusedSpeedup  float64 `json:"fused_speedup"`
}

// benchReport is the BENCH_corr.json schema: per-window kernel costs
// (cold, warm-started, and fused two-treatment), whole-day series
// throughput, warm-start statistics, and the end-to-end approach
// comparison wall times measured by the surrounding mmscale run.
type benchReport struct {
	Schema string `json:"schema"`
	// Environment the numbers were measured in. GOMAXPROCS is the value
	// actually in effect during the run, not the flag that was asked
	// for; CPUModel and GitRevision are best-effort ("" when
	// undiscoverable).
	GOMAXPROCS  int    `json:"gomaxprocs"`
	CPUModel    string `json:"cpu_model,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	WindowM     int    `json:"window_m"`

	// Cold per-window cost with scratch reuse (median/MAD init every
	// window), keyed by correlation type.
	ColdWindow map[string]windowBench `json:"cold_window"`
	// Steady-state warm-started sliding Maronna window — the engine's
	// actual per-window path.
	WarmWindowMaronna windowBench `json:"warm_window_maronna"`
	// Both treatments computed as independent estimations per window
	// (warm Maronna chain plus a separate Combined estimation) — the
	// pre-fusion engine's cost and the baseline for the fused number.
	UnfusedWindowBothTreatments windowBench `json:"unfused_window_both_treatments"`
	// One warm-started fit serving both the Maronna and Combined
	// treatments (the fused engine's unit of work).
	FusedWindowBothTreatments windowBench `json:"fused_window_both_treatments"`
	// Unfused / fused ns ratio, so the fusion win reads straight off
	// the report.
	FusionSpeedup float64 `json:"fusion_speedup"`

	// Whole-day parallel series cost, in ns per (pair, window), keyed
	// by correlation type, plus the fused Maronna+Combined pass.
	SeriesNsPerWindow      map[string]float64 `json:"series_ns_per_window"`
	SeriesFusedNsPerWindow float64            `json:"series_fused_maronna_combined_ns_per_window"`

	Robust robustReport `json:"robust"`
	Engine engineReport `json:"engine"`
	Sweep  sweepReport  `json:"sweep"`
}

func benchNs(f func(b *testing.B)) windowBench {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	return windowBench{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// writeBenchJSON runs the correlation kernel benchmark suite on the
// already-prepared day and writes the machine-readable report.
func writeBenchJSON(path string, dd *backtest.DayData, workers int, sweep sweepReport) error {
	x, y := dd.Returns[0], dd.Returns[1]
	if len(x) <= benchWindowM {
		return fmt.Errorf("day too short for bench: %d returns, window %d", len(x), benchWindowM)
	}
	steps := len(x) - benchWindowM

	rep := benchReport{
		Schema:            "marketminer/bench_corr/v3",
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CPUModel:          cpuModel(),
		GitRevision:       gitRevision(),
		WindowM:           benchWindowM,
		ColdWindow:        make(map[string]windowBench),
		SeriesNsPerWindow: make(map[string]float64),
		Sweep:             sweep,
	}

	est := corr.NewMaronnaEstimator(corr.DefaultMaronnaConfig())
	cest := corr.NewCombinedEstimator(corr.DefaultMaronnaConfig())
	var sink float64
	var sc *corr.Scratch

	// Every window bench slides through the same day so cold and warm
	// numbers average over identical regimes (including breakdowns).
	rep.ColdWindow[corr.Pearson.String()] = benchNs(func(b *testing.B) {
		t := 0
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			sink = corr.PearsonCorr(x[t:t+benchWindowM], y[t:t+benchWindowM])
		}
	})
	rep.ColdWindow[corr.Maronna.String()] = benchNs(func(b *testing.B) {
		t := 0
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			sink, sc = est.CorrScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc)
		}
	})
	rep.ColdWindow[corr.Combined.String()] = benchNs(func(b *testing.B) {
		t := 0
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			sink, sc = cest.CorrScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc)
		}
	})

	rep.WarmWindowMaronna = benchNs(func(b *testing.B) {
		var warm corr.Fit
		warm, sc = est.FitScratch(x[:benchWindowM], y[:benchWindowM], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc, &warm)
			sink = warm.Rho
		}
	})
	rep.UnfusedWindowBothTreatments = benchNs(func(b *testing.B) {
		var warm corr.Fit
		warm, sc = est.FitScratch(x[:benchWindowM], y[:benchWindowM], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc, &warm)
			sink, sc = cest.CorrScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc)
		}
	})
	rep.FusedWindowBothTreatments = benchNs(func(b *testing.B) {
		var warm corr.Fit
		warm, sc = est.FitScratch(x[:benchWindowM], y[:benchWindowM], sc, nil)
		t := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t = (t + 1) % steps
			warm, sc = est.FitScratch(x[t:t+benchWindowM], y[t:t+benchWindowM], sc, &warm)
			sink = corr.CombinedFromFit(x[t:t+benchWindowM], y[t:t+benchWindowM], warm.Rho, sc.Weights())
		}
	})
	if f := rep.FusedWindowBothTreatments.NsPerOp; f > 0 {
		rep.FusionSpeedup = float64(rep.UnfusedWindowBothTreatments.NsPerOp) / float64(f)
	}
	_ = sink

	ecfg := corr.EngineConfig{M: benchWindowM, Workers: workers}
	for _, ct := range corr.Types() {
		ecfg.Type = ct
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cs, err := corr.ComputeSeries(ecfg, dd.Returns)
				if err != nil {
					b.Fatal(err)
				}
				windows := len(cs.Pairs) * cs.Len()
				if windows == 0 {
					b.Fatal("empty series")
				}
			}
		})
		cs, err := corr.ComputeSeries(ecfg, dd.Returns)
		if err != nil {
			return err
		}
		rep.SeriesNsPerWindow[ct.String()] = float64(r.NsPerOp()) / float64(len(cs.Pairs)*cs.Len())
	}

	fusedTypes := []corr.Type{corr.Maronna, corr.Combined}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := corr.ComputeSeriesMulti(ecfg, fusedTypes, dd.Returns); err != nil {
				b.Fatal(err)
			}
		}
	})
	css, err := corr.ComputeSeriesMulti(ecfg, fusedTypes, dd.Returns)
	if err != nil {
		return err
	}
	// Per treatment-window: the fused pass fills two series per fit.
	totalWindows := len(fusedTypes) * len(css[0].Pairs) * css[0].Len()
	rep.SeriesFusedNsPerWindow = float64(r.NsPerOp()) / float64(totalWindows)

	if st := css[0].Robust; st != nil {
		rep.Robust = robustReport{
			Windows:     st.Windows,
			WarmHits:    st.WarmHits,
			ColdStarts:  st.ColdStarts,
			Fallbacks:   st.Fallbacks,
			WarmHitFrac: float64(st.WarmHits) / float64(st.Windows),
			MeanIters:   st.MeanIters(),
			IterHist:    st.IterHist,
		}
	}

	// Matrix engine vs per-pair reference at equal worker count: the
	// structural (sharing + tiling) win, not the parallel one.
	engineWorkers := workers
	if engineWorkers <= 0 {
		engineWorkers = runtime.GOMAXPROCS(0)
	}
	rep.Engine = engineReport{Workers: engineWorkers, TileSize: corr.DefaultTileSize}
	dayBench := func(f func() error) int64 {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
	}
	pearsonTypes := []corr.Type{corr.Pearson}
	rep.Engine.PearsonDayNs = dayBench(func() error {
		_, err := corr.ComputeMatrixSeries(ecfg, pearsonTypes, dd.Returns)
		return err
	})
	rep.Engine.PearsonDayRefNs = dayBench(func() error {
		_, err := corr.ComputeSeriesMultiReference(ecfg, pearsonTypes, dd.Returns)
		return err
	})
	rep.Engine.FusedDayNs = dayBench(func() error {
		_, err := corr.ComputeMatrixSeries(ecfg, fusedTypes, dd.Returns)
		return err
	})
	rep.Engine.FusedDayRefNs = dayBench(func() error {
		_, err := corr.ComputeSeriesMultiReference(ecfg, fusedTypes, dd.Returns)
		return err
	})
	if rep.Engine.PearsonDayNs > 0 {
		rep.Engine.PearsonSpeedup = float64(rep.Engine.PearsonDayRefNs) / float64(rep.Engine.PearsonDayNs)
	}
	if rep.Engine.FusedDayNs > 0 {
		rep.Engine.FusedSpeedup = float64(rep.Engine.FusedDayRefNs) / float64(rep.Engine.FusedDayNs)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
