package main

import (
	"os"
	"path/filepath"
	"testing"

	"marketminer/internal/backtest"
)

func TestRunPrintGrid(t *testing.T) {
	if err := run(options{scale: "tiny", seed: 1, workers: 1, printGrid: true, shard: "0/1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run(options{scale: "galactic", seed: 1, workers: 1, shard: "0/1"}); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestRunRejectsShardWithoutJournal(t *testing.T) {
	if err := run(options{scale: "tiny", seed: 1, workers: 1, shard: "0/2"}); err == nil {
		t.Error("sharding without a journal should error")
	}
}

func TestRunTinySweepWithJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "res.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	o := options{scale: "tiny", seed: 7, levels: 2, workers: 1, jsonOut: out,
		boxplots: true, cpuProfile: cpu, memProfile: mem, shard: "0/1"}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := backtest.LoadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPairs() != 28 || len(res.Levels) != 2 {
		t.Errorf("saved sweep shape wrong: %d pairs, %d levels", res.NumPairs(), len(res.Levels))
	}
}

// TestRunJournaledSweep drives the checkpointed single-process path
// end to end: the journal is created, the sweep completes, and the
// merged-from-journal result is rendered and saved like the in-memory
// path's.
func TestRunJournaledSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "res.json")
	o := options{scale: "tiny", seed: 7, levels: 2, workers: 1, jsonOut: out,
		journal: filepath.Join(dir, "s.journal"), shard: "0/1", block: 10}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := backtest.LoadJSON(f); err != nil {
		t.Fatal(err)
	}
	// Second invocation resumes a finished journal: everything is
	// restored, nothing re-runs, tables render again.
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}
