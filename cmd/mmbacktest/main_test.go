package main

import (
	"os"
	"path/filepath"
	"testing"

	"marketminer/internal/backtest"
)

func TestRunPrintGrid(t *testing.T) {
	if err := run("tiny", 1, 0, 1, "", false, true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run("galactic", 1, 0, 1, "", false, false, "", ""); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestRunTinySweepWithJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "res.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run("tiny", 7, 2, 1, out, true, false, cpu, mem); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := backtest.LoadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPairs() != 28 || len(res.Levels) != 2 {
		t.Errorf("saved sweep shape wrong: %d pairs, %d levels", res.NumPairs(), len(res.Levels))
	}
}
