package main

import (
	"os"
	"path/filepath"
	"testing"

	"marketminer/internal/backtest"
)

func TestRunPrintGrid(t *testing.T) {
	if err := run("tiny", 1, 0, 1, "", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run("galactic", 1, 0, 1, "", false, false); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestRunTinySweepWithJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := filepath.Join(t.TempDir(), "res.json")
	if err := run("tiny", 7, 2, 1, out, true, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := backtest.LoadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPairs() != 28 || len(res.Levels) != 2 {
		t.Errorf("saved sweep shape wrong: %d pairs, %d levels", res.NumPairs(), len(res.Levels))
	}
}
