// Command mmbacktest runs the paper's Section V experiment: the
// brute-force backtest of the canonical pair-trading strategy over all
// pairs × parameter sets × trading days, comparing the Pearson,
// Maronna and Combined correlation treatments, and prints Tables
// III–V plus the Figure 2 box-plot statistics.
//
// The sweep can run monolithically in memory, or orchestrated through
// the internal/sweep layer: checkpointed to an append-only journal
// (kill it, rerun it, it resumes), and sharded across processes or
// machines with -shard i/n — each shard writes its own journal and
// "mmreport -merge" combines them into the full result.
//
// Usage:
//
//	mmbacktest -scale tiny                  # seconds, qualitative
//	mmbacktest -scale small                 # minutes
//	mmbacktest -scale paper                 # the full 61x20x42 sweep
//	mmbacktest -scale paper -journal p.journal        # checkpointed + resumable
//	mmbacktest -scale paper -journal s0.journal -shard 0/2   # machine 1
//	mmbacktest -scale paper -journal s1.journal -shard 1/2   # machine 2
//	mmbacktest -scale tiny -json out.json   # save raw results
//	mmbacktest -print-grid                  # show Table I's 42 sets
//	mmbacktest -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"marketminer"
	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/prof"
	"marketminer/internal/report"
	"marketminer/internal/screen"
	"marketminer/internal/sweep"
)

// options collects the flag values; keeping them in one struct keeps
// run testable without a dozen positional parameters.
type options struct {
	scale      string
	seed       int64
	levels     int
	workers    int
	jsonOut    string
	boxplots   bool
	printGrid  bool
	cpuProfile string
	memProfile string

	journal  string // checkpoint journal path ("" = in-memory sweep)
	shard    string // "i/n" shard assignment
	block    int    // pairs per sweep block (0 = default)
	maxUnits int    // stop after this many units (0 = run to completion)

	screenFrac   float64 // SSD pre-screening: keep this fraction of pairs (0 = off)
	screenSSD    float64 // SSD pre-screening: absolute SSD cap (0 = off)
	screenMin    int     // SSD pre-screening: minimum surviving pairs
	screenStride int     // SSD pre-screening: path subsample stride
	float32Lane  bool    // approximate float32 robust iteration lane
	simdMode     string  // robust-kernel SIMD dispatch: auto | off
}

func main() {
	var o options
	flag.StringVar(&o.scale, "scale", "tiny", "experiment scale: tiny | small | paper")
	flag.Int64Var(&o.seed, "seed", 20080301, "random seed")
	flag.IntVar(&o.levels, "levels", 0, "restrict to first N parameter levels (0 = all 14)")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.StringVar(&o.jsonOut, "json", "", "write raw results to this JSON file")
	flag.BoolVar(&o.boxplots, "boxplots", true, "print Figure 2 box-plot statistics")
	flag.BoolVar(&o.printGrid, "print-grid", false, "print the Table I parameter grid and exit")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the sweep to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a post-sweep heap profile to this file")
	flag.StringVar(&o.journal, "journal", "", "checkpoint journal path: completed units are appended here and an interrupted sweep resumes from it")
	flag.StringVar(&o.shard, "shard", "0/1", "run shard i of n (requires -journal); merge shard journals with mmreport -merge")
	flag.IntVar(&o.block, "block", 0, "pairs per sweep work-unit block (0 = default 128)")
	flag.IntVar(&o.maxUnits, "max-units", 0, "execute at most N units this invocation, then checkpoint and exit (0 = no limit)")
	flag.Float64Var(&o.screenFrac, "screen-frac", 0, "pre-screen pairs: keep this fraction with the smallest normalized-price SSD (0 = screening off)")
	flag.Float64Var(&o.screenSSD, "screen-ssd", 0, "pre-screen pairs: drop pairs whose path SSD exceeds this absolute cap (0 = off)")
	flag.IntVar(&o.screenMin, "screen-min", 0, "pre-screen pairs: never prune below this many surviving pairs")
	flag.IntVar(&o.screenStride, "screen-stride", 1, "pre-screen pairs: subsample the price path at this stride")
	flag.BoolVar(&o.float32Lane, "f32", false, "use the approximate float32 robust iteration lane (float64 polish; see DESIGN.md §8)")
	flag.StringVar(&o.simdMode, "simd", "auto", "robust-kernel SIMD dispatch: auto | off (f64 results are bit-identical either way)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mmbacktest:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.printGrid {
		fmt.Println("TABLE I — STRATEGY PARAMETER SETS (14 levels x 3 correlation types)")
		for i, p := range marketminer.ParamGrid() {
			fmt.Printf("%2d: %v\n", i+1, p)
		}
		return nil
	}

	if o.simdMode != "" {
		if err := corr.SetSIMDMode(o.simdMode); err != nil {
			return err
		}
	}

	var sc marketminer.Scale
	switch o.scale {
	case "tiny":
		sc = marketminer.ScaleTiny
	case "small":
		sc = marketminer.ScaleSmall
	case "paper":
		sc = marketminer.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", o.scale)
	}
	cfg := marketminer.SweepConfig(sc, o.seed)
	cfg.Workers = o.workers
	cfg.Screen = screen.Config{TopFrac: o.screenFrac, MaxSSD: o.screenSSD, MinKeep: o.screenMin, Stride: o.screenStride}
	cfg.Float32 = o.float32Lane
	if o.levels > 0 {
		all := marketminer.ParamLevels()
		if o.levels > len(all) {
			o.levels = len(all)
		}
		cfg.Levels = all[:o.levels]
	}

	shard, err := sweep.ParseShard(o.shard)
	if err != nil {
		return err
	}
	if (shard.Count > 1 || o.maxUnits > 0) && o.journal == "" {
		return fmt.Errorf("-shard/-max-units require -journal (shards coordinate through their journals)")
	}

	nLevels := len(cfg.Levels)
	if nLevels == 0 {
		nLevels = 14
	}
	fmt.Printf("sweep: %d stocks (%d pairs) x %d days x %d levels x 3 types\n",
		cfg.Market.Universe.Len(), cfg.Market.Universe.NumPairs(), cfg.Market.Days, nLevels)
	fmt.Printf("robust kernel SIMD: %s (host supports %s)\n", corr.SIMDTier(), corr.SIMDSupported())

	stopProf, err := prof.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		return err
	}
	start := time.Now()
	var res *marketminer.BacktestResult
	if o.journal != "" {
		res, err = runOrchestrated(cfg, shard, o)
	} else {
		cfg.Progress = func(day, total, trades int) {
			fmt.Printf("  day %2d/%d: %6d trades\n", day+1, total, trades)
		}
		res, err = marketminer.RunBacktest(context.Background(), cfg)
	}
	if err != nil {
		stopProf()
		return err
	}
	elapsed := time.Since(start)
	if err := stopProf(); err != nil {
		return err
	}
	if res == nil {
		// A multi-process shard (or a -max-units budget slice) is done;
		// table rendering waits for the merge.
		fmt.Printf("shard %s finished its slice in %v; combine journals with:\n  mmreport -merge 'shard*.journal'\n",
			shard, elapsed.Round(time.Millisecond))
		return nil
	}
	fmt.Printf("completed in %v: %d trades\n\n", elapsed.Round(time.Millisecond), res.TradeCount)

	fmt.Println(marketminer.FormatTableIII(res))
	fmt.Println(marketminer.FormatTableIV(res))
	fmt.Println(marketminer.FormatTableV(res))
	if o.boxplots {
		fmt.Println(marketminer.FormatFigure2(res))
	}

	if o.jsonOut != "" {
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := backtest.SaveJSON(f, res); err != nil {
			return err
		}
		fmt.Printf("raw results saved to %s\n", o.jsonOut)
	}
	return nil
}

// runOrchestrated executes this process's shard through the sweep
// layer and, when the whole sweep lives in this one process and is
// complete, merges its own journal into the printable Result.
// It returns (nil, nil) when the result is not yet mergeable here —
// other shards own the rest of the units, or a -max-units budget
// paused the run.
func runOrchestrated(cfg marketminer.BacktestConfig, shard sweep.Shard, o options) (*marketminer.BacktestResult, error) {
	st, err := sweep.Run(context.Background(), sweep.RunConfig{
		Config:        cfg,
		BlockSize:     o.block,
		Shard:         shard,
		JournalPath:   o.journal,
		Limit:         o.maxUnits,
		ProgressEvery: 2 * time.Second,
		Progress: func(p sweep.ProgressInfo) {
			fmt.Println("  " + report.ProgressLine(p.Shard.String(), p.Done, p.Total, p.Rate, p.ETA, p.Trades, p.WarmHitFraction))
		},
	})
	if err != nil {
		return nil, err
	}
	if st.Recovered != nil {
		fmt.Printf("  healed damaged journal tail: %v\n", st.Recovered)
	}
	if st.UnitsSkipped > 0 {
		fmt.Printf("  resumed from checkpoint: %d units restored, %d executed\n", st.UnitsSkipped, st.UnitsExecuted)
	}
	if st.Paused {
		fmt.Printf("  unit budget reached: %d/%d units checkpointed; rerun to continue\n",
			st.UnitsSkipped+st.UnitsExecuted, st.UnitsTotal)
		return nil, nil
	}
	if shard.Count > 1 {
		return nil, nil
	}
	res, rep, err := sweep.MergeFiles([]string{o.journal})
	if err != nil {
		return nil, err
	}
	fmt.Println("  " + report.MergeSummary(rep.Files, rep.ShardCount, rep.Units, rep.UnitsTotal, rep.Duplicates, len(rep.Corrupt)))
	return res, nil
}
