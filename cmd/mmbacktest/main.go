// Command mmbacktest runs the paper's Section V experiment: the
// brute-force backtest of the canonical pair-trading strategy over all
// pairs × parameter sets × trading days, comparing the Pearson,
// Maronna and Combined correlation treatments, and prints Tables
// III–V plus the Figure 2 box-plot statistics.
//
// Usage:
//
//	mmbacktest -scale tiny                  # seconds, qualitative
//	mmbacktest -scale small                 # minutes
//	mmbacktest -scale paper                 # the full 61x20x42 sweep
//	mmbacktest -scale tiny -json out.json   # save raw results
//	mmbacktest -print-grid                  # show Table I's 42 sets
//	mmbacktest -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"marketminer"
	"marketminer/internal/backtest"
	"marketminer/internal/prof"
)

func main() {
	var (
		scale      = flag.String("scale", "tiny", "experiment scale: tiny | small | paper")
		seed       = flag.Int64("seed", 20080301, "random seed")
		levels     = flag.Int("levels", 0, "restrict to first N parameter levels (0 = all 14)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		jsonOut    = flag.String("json", "", "write raw results to this JSON file")
		boxplots   = flag.Bool("boxplots", true, "print Figure 2 box-plot statistics")
		printGrid  = flag.Bool("print-grid", false, "print the Table I parameter grid and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a post-sweep heap profile to this file")
	)
	flag.Parse()
	if err := run(*scale, *seed, *levels, *workers, *jsonOut, *boxplots, *printGrid, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "mmbacktest:", err)
		os.Exit(1)
	}
}

func run(scale string, seed int64, levels, workers int, jsonOut string, boxplots, printGrid bool, cpuProfile, memProfile string) error {
	if printGrid {
		fmt.Println("TABLE I — STRATEGY PARAMETER SETS (14 levels x 3 correlation types)")
		for i, p := range marketminer.ParamGrid() {
			fmt.Printf("%2d: %v\n", i+1, p)
		}
		return nil
	}

	var sc marketminer.Scale
	switch scale {
	case "tiny":
		sc = marketminer.ScaleTiny
	case "small":
		sc = marketminer.ScaleSmall
	case "paper":
		sc = marketminer.ScalePaper
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	cfg := marketminer.SweepConfig(sc, seed)
	cfg.Workers = workers
	if levels > 0 {
		all := marketminer.ParamLevels()
		if levels > len(all) {
			levels = len(all)
		}
		cfg.Levels = all[:levels]
	}
	cfg.Progress = func(day, total, trades int) {
		fmt.Printf("  day %2d/%d: %6d trades\n", day+1, total, trades)
	}

	nLevels := len(cfg.Levels)
	if nLevels == 0 {
		nLevels = 14
	}
	fmt.Printf("sweep: %d stocks (%d pairs) x %d days x %d levels x 3 types\n",
		cfg.Market.Universe.Len(), cfg.Market.Universe.NumPairs(), cfg.Market.Days, nLevels)
	stopProf, err := prof.Start(cpuProfile, memProfile)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := marketminer.RunBacktest(context.Background(), cfg)
	if err != nil {
		stopProf()
		return err
	}
	elapsed := time.Since(start)
	if err := stopProf(); err != nil {
		return err
	}
	fmt.Printf("completed in %v: %d trades\n\n", elapsed.Round(time.Millisecond), res.TradeCount)

	fmt.Println(marketminer.FormatTableIII(res))
	fmt.Println(marketminer.FormatTableIV(res))
	fmt.Println(marketminer.FormatTableV(res))
	if boxplots {
		fmt.Println(marketminer.FormatFigure2(res))
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := backtest.SaveJSON(f, res); err != nil {
			return err
		}
		fmt.Printf("raw results saved to %s\n", jsonOut)
	}
	return nil
}
