// Package marketminer is a Go reproduction of "A High Performance Pair
// Trading Application" (Wang, Rostoker, Wagner — 2009): the MarketMiner
// analytics platform rebuilt on goroutines and channels instead of MPI,
// together with the paper's canonical intra-day statistical pair
// trading strategy, its brute-force backtesting methodology, and the
// full evaluation harness for Tables III–V and Figures 1–2.
//
// This root package is the stable facade: it re-exports the core types
// from the internal packages and provides turnkey constructors for the
// three workflows a user needs —
//
//   - Backtest: the integrated Approach-3 sweep over pairs × parameter
//     sets × days (see BacktestConfig, RunBacktest);
//   - Live: the Figure-1 streaming DAG over a quote feed
//     (see PipelineConfig, RunLivePipeline);
//   - Data: synthetic TAQ generation standing in for the proprietary
//     NYSE dataset (see MarketConfig, NewMarket).
//
// The packages under internal/ are the implementation: taq (data
// model), market (synthetic TAQ), clean (tick filter), series (grids,
// returns, bars), stats (descriptive statistics), corr (Pearson,
// Maronna, Combined + parallel engine), engine (channel DAG runtime),
// strategy (the §III state machine), portfolio (orders and P&L),
// backtest (the three runners), metrics (Equations (1)–(9)), report
// (the paper's tables), sched (SGE-like farm baseline), feed (the
// networked quote-distribution layer: binary codec, replay server,
// resilient collector client), supervise (the fault-tolerance runtime:
// restart policies, quarantine, crash-safe snapshots) and chaos
// (deterministic fault injection for the networked pipeline).
package marketminer

import (
	"context"

	"marketminer/internal/backtest"
	"marketminer/internal/chaos"
	"marketminer/internal/clean"
	"marketminer/internal/core"
	"marketminer/internal/corr"
	"marketminer/internal/feed"
	"marketminer/internal/market"
	"marketminer/internal/report"
	"marketminer/internal/strategy"
	"marketminer/internal/supervise"
	"marketminer/internal/taq"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving users one import path.
type (
	// Quote is one TAQ quote record (Table II).
	Quote = taq.Quote
	// Universe is an ordered symbol set with dense indices.
	Universe = taq.Universe
	// Pair is an unordered stock pair (I < J).
	Pair = taq.Pair
	// Params is a strategy parameter vector (Table I).
	Params = strategy.Params
	// Trade is one completed round-trip pair trade.
	Trade = strategy.Trade
	// CorrType selects Pearson, Maronna or Combined.
	CorrType = corr.Type
	// MarketConfig parameterises the synthetic TAQ generator.
	MarketConfig = market.Config
	// MarketGenerator produces synthetic trading days.
	MarketGenerator = market.Generator
	// CleanConfig tunes the TCP-like tick filter.
	CleanConfig = clean.Config
	// BacktestConfig describes a sweep (market, levels, types).
	BacktestConfig = backtest.Config
	// BacktestResult is the collected return data of one sweep.
	BacktestResult = backtest.Result
	// Aggregate is one Table III/IV/V population per correlation type.
	Aggregate = backtest.Aggregate
	// PipelineConfig configures the Figure-1 streaming DAG.
	PipelineConfig = core.PipelineConfig
	// PipelineResult summarises one streaming run.
	PipelineResult = core.PipelineResult
	// QuoteSource feeds the pipeline's collector node — the seam where
	// the in-memory, file-replay and networked collectors plug in.
	QuoteSource = core.QuoteSource
	// FeedServerConfig tunes a quote-distribution server.
	FeedServerConfig = feed.ServerConfig
	// FeedServer replays quote streams to networked subscribers.
	FeedServer = feed.Server
	// FeedCollectorConfig tunes a networked collector client.
	FeedCollectorConfig = feed.CollectorConfig
	// FeedCollector subscribes to a FeedServer with automatic
	// reconnect, resume and gap detection.
	FeedCollector = feed.Collector
	// SuperviseOptions runs the pipeline under the fault-tolerance
	// runtime (panic isolation, quarantine, crash-safe engine
	// snapshots, graceful drain); set PipelineConfig.Supervise.
	SuperviseOptions = core.SuperviseOptions
	// SupervisionReport is the runtime's accounting for one run.
	SupervisionReport = core.SupervisionReport
	// SupervisePolicy tunes restart backoff and circuit breaking.
	SupervisePolicy = supervise.Policy
	// ChaosSpec is a deterministic fault-injection schedule; parse one
	// with ParseChaosSpec.
	ChaosSpec = chaos.Spec
	// Chaos injects a ChaosSpec into connections, listeners, dialers
	// and quote sources.
	Chaos = chaos.Chaos
	// ChaosStats counts the faults a Chaos actually injected.
	ChaosStats = chaos.Stats
)

// Correlation treatments (the paper's Ctype).
const (
	Pearson  = corr.Pearson
	Maronna  = corr.Maronna
	Combined = corr.Combined
)

// DefaultUniverse returns the 61-stock universe standing in for the
// paper's "61 highly liquid US stocks".
func DefaultUniverse() *Universe { return taq.DefaultUniverse() }

// NewUniverse builds a universe from symbols.
func NewUniverse(symbols []string) (*Universe, error) { return taq.NewUniverse(symbols) }

// DefaultParams returns the §III worked-example parameter vector.
func DefaultParams() Params { return strategy.DefaultParams() }

// ParamLevels returns the paper's 14 non-treatment parameter vectors.
func ParamLevels() []Params { return strategy.BaseGrid() }

// ParamGrid returns the full 42-set grid (14 levels × 3 treatments).
func ParamGrid() []Params { return strategy.FullGrid() }

// CorrTypes lists the three correlation treatments.
func CorrTypes() []CorrType { return corr.Types() }

// NewMarket builds a synthetic TAQ generator; the zero MarketConfig
// yields the paper-scale default (61 stocks, 20 days).
func NewMarket(cfg MarketConfig) (*MarketGenerator, error) { return market.NewGenerator(cfg) }

// DefaultMarketConfig returns the paper-scale generator configuration.
func DefaultMarketConfig() MarketConfig { return market.DefaultConfig() }

// RunBacktest executes the integrated (Approach 3) sweep: shared
// parallel correlation series, every pair × parameter set × day.
func RunBacktest(ctx context.Context, cfg BacktestConfig) (*BacktestResult, error) {
	return backtest.Run(ctx, cfg)
}

// RunBacktestFarm executes the same sweep as independent jobs on the
// SGE-like scheduler — the paper's Approach-2 baseline. It computes
// identical results with asymptotically more work; use it only for the
// performance comparison.
func RunBacktestFarm(ctx context.Context, cfg BacktestConfig) (*BacktestResult, error) {
	return backtest.Farm(ctx, cfg)
}

// RunLivePipeline executes the Figure-1 DAG over a time-sorted quote
// stream: collector → cleaner → OHLC bars → technical analysis →
// parallel correlation engine → strategy nodes → master book.
func RunLivePipeline(ctx context.Context, cfg PipelineConfig, quotes []Quote, day int) (*PipelineResult, error) {
	return core.RunPipeline(ctx, cfg, quotes, day)
}

// RunLivePipelineFrom executes the Figure-1 DAG over an arbitrary
// QuoteSource — typically ChannelSource(collector.Quotes()) for a
// networked feed, or SliceSource for in-memory replay.
func RunLivePipelineFrom(ctx context.Context, cfg PipelineConfig, src QuoteSource, day int) (*PipelineResult, error) {
	return core.RunPipelineSource(ctx, cfg, src, day)
}

// SliceSource adapts an in-memory quote slice to a QuoteSource.
func SliceSource(quotes []Quote) QuoteSource { return core.SliceSource(quotes) }

// ChannelSource adapts a quote channel (e.g. FeedCollector.Quotes) to
// a QuoteSource; it ends when the channel closes.
func ChannelSource(ch <-chan Quote) QuoteSource { return core.ChannelSource(ch) }

// NewFeedServer builds a quote-distribution server for the given
// universe; see FeedServerConfig for tuning.
func NewFeedServer(cfg FeedServerConfig) (*FeedServer, error) { return feed.NewServer(cfg) }

// NewFeedCollector builds a resilient feed client; run it with
// Run(ctx) and consume Quotes().
func NewFeedCollector(cfg FeedCollectorConfig) *FeedCollector { return feed.NewCollector(cfg) }

// ParseChaosSpec parses a deterministic fault-injection schedule, e.g.
// "seed=7,corrupt=8192,cut=65536,partition=5".
func ParseChaosSpec(text string) (ChaosSpec, error) { return chaos.ParseSpec(text) }

// NewChaos builds a fault injector from a spec; wrap listeners,
// dialers or quote sources with it.
func NewChaos(spec ChaosSpec) *Chaos { return chaos.New(spec) }

// FormatTableIII renders the Table III statistics of a finished sweep.
func FormatTableIII(r *BacktestResult) string {
	return report.TableIII(r.CumulativeMonthlyReturns())
}

// FormatTableIV renders the Table IV statistics.
func FormatTableIV(r *BacktestResult) string {
	return report.TableIV(r.MaxDailyDrawdowns())
}

// FormatTableV renders the Table V statistics.
func FormatTableV(r *BacktestResult) string {
	return report.TableV(r.WinLossRatios())
}

// FormatFigure2 renders the three box-plot panels of Figure 2.
func FormatFigure2(r *BacktestResult) string {
	return report.Figure2("Average cumulative monthly returns", r.CumulativeMonthlyReturns()) +
		"\n" + report.Figure2("Average maximum daily drawdown", r.MaxDailyDrawdowns()) +
		"\n" + report.Figure2("Average win-loss ratio", r.WinLossRatios())
}

// Scale selects a pre-sized experiment configuration.
type Scale int

// Experiment scales. Paper scale is the full 61-stock, 20-day, 42-set
// sweep; Small and Tiny shrink the universe and calendar so the whole
// experiment runs in seconds/minutes on a laptop while preserving the
// qualitative results.
const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScalePaper
)

// SweepConfig returns a ready-to-run BacktestConfig at the given scale
// with the given seed. All scales use the full 14-level × 3-type grid.
func SweepConfig(scale Scale, seed int64) BacktestConfig {
	mc := market.DefaultConfig()
	mc.Seed = seed
	switch scale {
	case ScaleTiny:
		u, _ := taq.NewUniverse(taq.DefaultSymbols()[:8])
		mc.Universe = u
		mc.Days = 2
	case ScaleSmall:
		u, _ := taq.NewUniverse(taq.DefaultSymbols()[:20])
		mc.Universe = u
		mc.Days = 5
	case ScalePaper:
		// Defaults already match the paper: 61 stocks, 20 days.
	}
	return BacktestConfig{Market: mc}
}
