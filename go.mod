module marketminer

go 1.22
