// Livetrading: the Figure-1 deployment scenario — multiple strategy
// parameter sets running side by side against one live quote stream,
// with the master process aggregating their order flow into a single
// basket for execution and risk control.
//
// Run with:
//
//	go run ./examples/livetrading
package main

import (
	"context"
	"fmt"
	"log"

	"marketminer"
	"marketminer/internal/market"
	"marketminer/internal/taq"
)

func main() {
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:12])
	if err != nil {
		log.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = 1
	mc.Seed = 2008
	gen, err := market.NewGenerator(mc)
	if err != nil {
		log.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		log.Fatal(err)
	}

	// Three risk profiles sharing one correlation engine (same Ctype
	// and M, as in Figure 1), differing in trigger tightness and
	// holding horizon: an aggressive, a balanced and a conservative
	// book.
	aggressive := marketminer.DefaultParams()
	aggressive.D = 0.0001
	aggressive.HP = 20
	aggressive.L = 1.0 / 3

	balanced := marketminer.DefaultParams()
	balanced.D = 0.0003
	balanced.HP = 30

	conservative := marketminer.DefaultParams()
	conservative.D = 0.0010
	conservative.HP = 40
	conservative.L = 2.0 / 3
	conservative.A = 0.3 // only trade strongly correlated pairs

	names := []string{"aggressive", "balanced", "conservative"}
	res, err := marketminer.RunLivePipeline(context.Background(), marketminer.PipelineConfig{
		Universe: uni,
		Params:   []marketminer.Params{aggressive, balanced, conservative},
	}, day.Quotes, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("live session: %d quotes in, %d cleaned, %d matrices\n\n",
		res.QuotesIn, res.QuotesClean, res.Matrices)
	fmt.Printf("%-14s %8s %10s %10s %10s\n", "profile", "trades", "wins", "losses", "sum ret")
	for i, name := range names {
		var wins, losses int
		var sum float64
		for _, tr := range res.Trades[i] {
			if tr.Return > 0 {
				wins++
			} else if tr.Return < 0 {
				losses++
			}
			sum += tr.Return
		}
		fmt.Printf("%-14s %8d %10d %10d %+9.4f%%\n", name, len(res.Trades[i]), wins, losses, sum*100)
	}
	fmt.Printf("\nmaster book: %d order requests aggregated, flat at close: %v, cash P&L: %+.2f\n",
		res.Orders, res.BookFlat, res.CashPnL)
	fmt.Println("\nper-node message flow (Figure 1):")
	for _, s := range res.NodeStats {
		fmt.Printf("  %-22s in=%-8d out=%d\n", s.Name, s.Received, s.Emitted)
	}
}
