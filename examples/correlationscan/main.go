// Correlationscan: the market-wide correlation search that motivates
// MarketMiner — compute the full sliding-window correlation matrix for
// a universe under all three measures, compare their behaviour on
// contaminated data, and surface the most- and least-correlated pairs.
//
// This is the paper's §II workload in isolation: "a real-time,
// market-wide search for short-term correlation breakdowns".
//
// Run with:
//
//	go run ./examples/correlationscan
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"marketminer"
	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/taq"
)

func main() {
	// 20 stocks → 190 pairs, heavily contaminated so the robust
	// measures have something to be robust about.
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:20])
	if err != nil {
		log.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = 1
	mc.Seed = 77
	mc.Contamination = 0.01
	gen, err := market.NewGenerator(mc)
	if err != nil {
		log.Fatal(err)
	}

	// Reuse the backtest day pipeline: clean → sample → returns.
	dd, err := backtest.PrepareDay(backtest.Config{Market: mc}, gen, 0)
	if err != nil {
		log.Fatal(err)
	}

	const M = 100
	type scan struct {
		t       corr.Type
		series  *corr.Series
		elapsed time.Duration
	}
	var scans []scan
	for _, ct := range marketminer.CorrTypes() {
		start := time.Now()
		s, err := corr.ComputeSeries(corr.EngineConfig{Type: ct, M: M}, dd.Returns)
		if err != nil {
			log.Fatal(err)
		}
		scans = append(scans, scan{t: ct, series: s, elapsed: time.Since(start)})
	}

	fmt.Printf("correlation scan: %d pairs x %d windows (M=%d)\n\n", uni.NumPairs(), scans[0].series.Len(), M)
	fmt.Printf("%-10s %12s %16s\n", "measure", "wall time", "windows/sec")
	for _, sc := range scans {
		total := float64(len(sc.series.Corr) * sc.series.Len())
		fmt.Printf("%-10s %12v %16.0f\n", sc.t, sc.elapsed.Round(time.Millisecond), total/sc.elapsed.Seconds())
	}

	// Rank pairs by mean Pearson correlation over the day.
	type ranked struct {
		pid  int
		mean float64
	}
	pearson := scans[0].series
	var rk []ranked
	for k, row := range pearson.Corr {
		var sum float64
		for _, c := range row {
			sum += c
		}
		rk = append(rk, ranked{pid: pearson.Pairs[k], mean: sum / float64(len(row))})
	}
	sort.Slice(rk, func(i, j int) bool { return rk[i].mean > rk[j].mean })

	pairs := taq.AllPairs(uni.Len())
	name := func(pid int) string {
		p := pairs[pid]
		return uni.Symbol(p.I) + "/" + uni.Symbol(p.J)
	}
	fmt.Println("\nmost correlated pairs (mean Pearson over the day):")
	for i := 0; i < 5; i++ {
		fmt.Printf("  %-12s %+.3f\n", name(rk[i].pid), rk[i].mean)
	}
	fmt.Println("least correlated pairs:")
	for i := len(rk) - 5; i < len(rk); i++ {
		fmt.Printf("  %-12s %+.3f\n", name(rk[i].pid), rk[i].mean)
	}

	// Where the measures disagree most — the outlier-driven windows.
	maronna := scans[1].series
	var worstPair, worstWin int
	var worstGap float64
	for k := range pearson.Corr {
		for u := range pearson.Corr[k] {
			gap := pearson.Corr[k][u] - maronna.Corr[k][u]
			if gap < 0 {
				gap = -gap
			}
			if gap > worstGap {
				worstGap, worstPair, worstWin = gap, k, u
			}
		}
	}
	fmt.Printf("\nlargest Pearson/Maronna disagreement: %.3f on %s at interval %d\n",
		worstGap, name(pearson.Pairs[worstPair]), pearson.FirstS+worstWin)
	fmt.Println("(disagreements of this size mark windows where bad ticks leak through")
	fmt.Println(" the filter — exactly the cases the robust measure exists for)")
}
