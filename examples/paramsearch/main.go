// Paramsearch: the model-development loop the paper's backtesting
// methodology serves — sweep the Table I parameter grid over a small
// universe, then rank parameter sets by risk-adjusted performance to
// "identify the best overall trading strategy" (§IV) and match
// configurations to risk profiles (§V).
//
// Run with:
//
//	go run ./examples/paramsearch
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"marketminer"
	"marketminer/internal/stats"
)

func main() {
	cfg := marketminer.SweepConfig(marketminer.ScaleTiny, 5)
	cfg.Levels = marketminer.ParamLevels() // all 14 levels × 3 types

	fmt.Printf("sweeping %d stocks (%d pairs) x %d days x 42 parameter sets...\n",
		cfg.Market.Universe.Len(), cfg.Market.Universe.NumPairs(), cfg.Market.Days)
	res, err := marketminer.RunBacktest(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d trades\n\n", res.TradeCount)

	// Per parameter set: pool the total cumulative return of every
	// pair, then score by the paper's Sharpe ratio (mean/σ across
	// pairs) — summarising "over all pairs but for a given parameter
	// set indicates which parameters are most effective".
	type scored struct {
		idx    int
		sharpe float64
		mean   float64
		trades int
	}
	var rows []scored
	for k := 0; k < res.NumParams(); k++ {
		var rets []float64
		var trades int
		for p := 0; p < res.NumPairs(); p++ {
			rets = append(rets, res.Series[p][k].TotalCumulative())
			trades += res.Series[p][k].NumTrades()
		}
		rows = append(rows, scored{
			idx:    k,
			sharpe: stats.SharpeRatio(rets),
			mean:   stats.Mean(rets),
			trades: trades,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sharpe > rows[j].sharpe })

	fmt.Println("top 8 parameter sets by cross-pair Sharpe ratio:")
	fmt.Printf("%-4s %10s %12s %8s  %s\n", "rank", "sharpe", "mean ret", "trades", "parameters")
	for i := 0; i < 8 && i < len(rows); i++ {
		r := rows[i]
		fmt.Printf("%-4d %10.3f %+11.4f%% %8d  %v\n",
			i+1, r.sharpe, r.mean*100, r.trades, res.Param(r.idx))
	}
	fmt.Println("\nbottom 3:")
	for i := len(rows) - 3; i < len(rows); i++ {
		r := rows[i]
		fmt.Printf("%-4d %10.3f %+11.4f%% %8d  %v\n",
			i+1, r.sharpe, r.mean*100, r.trades, res.Param(r.idx))
	}

	// Treatment comparison, pooled over levels (the Section V cut).
	fmt.Println("\nby correlation treatment (mean of per-level Sharpe):")
	for ti, ct := range res.Types {
		var s float64
		for li := range res.Levels {
			k := res.ParamIndex(ti, li)
			for _, r := range rows {
				if r.idx == k {
					s += r.sharpe
				}
			}
		}
		fmt.Printf("  %-10s %8.3f\n", ct, s/float64(len(res.Levels)))
	}
}
