// Riskmanaged: the master-process responsibilities the paper assigns
// to the integrated system — "risk management and liquidity
// provisioning" — plus its future-work "implementation shortfalls":
// run the same strategy (a) frictionless and unlimited, (b) under
// pre-trade risk limits, and (c) with transaction costs, and compare.
//
// Run with:
//
//	go run ./examples/riskmanaged
package main

import (
	"context"
	"fmt"
	"log"

	"marketminer"
	"marketminer/internal/backtest"
	"marketminer/internal/market"
	"marketminer/internal/portfolio"
	"marketminer/internal/risk"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

func main() {
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:10])
	if err != nil {
		log.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = 1
	mc.Seed = 404
	gen, err := market.NewGenerator(mc)
	if err != nil {
		log.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		log.Fatal(err)
	}
	p := marketminer.DefaultParams()

	// (a) Unlimited, frictionless — the paper's evaluated setting.
	free, err := marketminer.RunLivePipeline(context.Background(), marketminer.PipelineConfig{
		Universe: uni, Params: []marketminer.Params{p},
	}, day.Quotes, 0)
	if err != nil {
		log.Fatal(err)
	}

	// (b) The same feed under master-side pre-trade limits.
	limited, err := marketminer.RunLivePipeline(context.Background(), marketminer.PipelineConfig{
		Universe: uni,
		Params:   []marketminer.Params{p},
		Risk: risk.Limits{
			MaxGrossExposure: 2000, // dollars of basket gross
			MaxStockShares:   40,
			MaxOrderNotional: 800,
		},
	}, day.Quotes, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FIGURE-1 MASTER PROCESS — risk management")
	fmt.Printf("%-22s %14s %14s\n", "", "unlimited", "limited")
	fmt.Printf("%-22s %14d %14d\n", "order legs accepted", free.Orders, limited.Orders)
	fmt.Printf("%-22s %14d %14d\n", "order legs rejected", free.OrdersRejected, limited.OrdersRejected)
	fmt.Printf("%-22s %14v %14v\n", "book flat at close", free.BookFlat, limited.BookFlat)
	fmt.Printf("%-22s %14.2f %14.2f\n", "cash P&L ($)", free.CashPnL, limited.CashPnL)

	// (c) Implementation shortfall: rerun the day as a backtest sweep
	// with and without the cost model and compare per-trade returns.
	cfg := backtest.Config{
		Market: mc,
		Levels: []strategy.Params{p},
	}
	gross, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Costs = portfolio.CostModel{Commission: 0.005, SpreadCross: 1}
	net, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum := func(r *backtest.Result) (float64, int) {
		var s float64
		var n int
		for pI := range r.Series {
			for k := range r.Series[pI] {
				for _, ret := range r.Series[pI][k].Flat() {
					s += ret
					n++
				}
			}
		}
		return s, n
	}
	gs, gn := sum(gross)
	ns, _ := sum(net)
	fmt.Println("\nIMPLEMENTATION SHORTFALL — §VI future work, quantified")
	fmt.Printf("  trades                  %10d\n", gn)
	fmt.Printf("  mean return, gross      %+9.2f bps\n", gs/float64(gn)*1e4)
	fmt.Printf("  mean return, net        %+9.2f bps  (0.5c/share + full spread cross)\n", ns/float64(gn)*1e4)
	fmt.Println("\n  at these divergence thresholds the edge does not survive full")
	fmt.Println("  spread crossing — d must be sized against the break-even cost")
	fmt.Println("  (portfolio.CostModel.BreakEvenReturn) before deployment.")
}
