// Quickstart: the smallest complete use of the marketminer library —
// generate a synthetic trading day, run the canonical pair-trading
// strategy over every pair with the paper's default parameters, and
// print the trades.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"marketminer"
)

func main() {
	// 1. A small universe: 6 liquid stocks → 15 pairs.
	universe, err := marketminer.NewUniverse([]string{"XOM", "CVX", "UPS", "FDX", "WMT", "TGT"})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthetic TAQ data (the library's stand-in for a live feed
	// or the NYSE TAQ database). One day, deterministic seed.
	gen, err := marketminer.NewMarket(marketminer.MarketConfig{
		Universe:      universe,
		Seed:          1,
		Days:          1,
		Contamination: 0.004, // inject bad ticks, as real TAQ has
	})
	if err != nil {
		log.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d quotes (%d deliberately corrupted)\n", len(day.Quotes), day.NumBad)

	// 3. The paper's canonical strategy parameters (§III), Pearson
	// correlation over a 100-interval sliding window.
	params := marketminer.DefaultParams()

	// 4. Run the Figure-1 pipeline: clean → bars → returns →
	// correlation engine → strategy → master book.
	res, err := marketminer.RunLivePipeline(context.Background(), marketminer.PipelineConfig{
		Universe: universe,
		Params:   []marketminer.Params{params},
	}, day.Quotes, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cleaned %d/%d quotes, produced %d correlation matrices\n",
		res.QuotesClean, res.QuotesIn, res.Matrices)
	fmt.Printf("completed %d pair trades, %d order requests, book flat: %v\n\n",
		len(res.Trades[0]), res.Orders, res.BookFlat)

	for i, tr := range res.Trades[0] {
		fmt.Printf("trade %2d: pair (%s,%s) long %s entry s=%d exit s=%d (%s) return %+.4f%%\n",
			i+1,
			universe.Symbol(tr.PairI), universe.Symbol(tr.PairJ),
			universe.Symbol(tr.LongStock),
			tr.EntryS, tr.ExitS, tr.Reason, tr.Return*100)
		if i == 14 {
			fmt.Printf("... and %d more\n", len(res.Trades[0])-15)
			break
		}
	}
}
