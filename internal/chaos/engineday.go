package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"syscall"

	"marketminer/internal/corr"
	"marketminer/internal/supervise"
)

// DayConfig drives one crash-safe OnlineEngine day: a deterministic
// synthetic return stream pushed interval by interval under the
// supervisor, with periodic warm-state snapshots. It is the harness
// behind the kill/restore acceptance test — a process SIGKILLed
// mid-day must, on restart, resume from its last snapshot and finish
// with a digest bit-identical to an uninterrupted run.
type DayConfig struct {
	// N stocks, M-interval window, Type estimator, Intervals pushes.
	N         int
	M         int
	Type      corr.Type
	Intervals int
	// Seed fixes the synthetic return stream.
	Seed int64
	// SnapshotPath persists warm state ("" disables snapshots: a
	// restart replays the whole day from the open).
	SnapshotPath string
	// SnapshotEvery is the interval count between snapshots
	// (default 25).
	SnapshotEvery int
	// FailAt lists intervals that panic once each, exercising the
	// supervised restart-from-snapshot path in-process.
	FailAt []int
	// CrashAfter, when positive, SIGKILLs the process after that many
	// pushes — a real crash for subprocess tests, no deferred cleanup.
	CrashAfter int
	// Policy tunes the supervisor (zero value = defaults).
	Policy supervise.Policy
	// Logf receives warnings (default: discard).
	Logf func(format string, args ...any)
}

// DayResult reports one (possibly resumed) day run.
type DayResult struct {
	// Digest is the FNV-64a digest of every matrix of the day, in
	// interval order — the bit-identity witness.
	Digest uint64
	// Pushed counts intervals this process actually recomputed; a
	// resumed run pushes fewer than Intervals.
	Pushed int
	// Resumed reports whether warm state was restored from a snapshot.
	Resumed bool
	// ResumeCursor is the first interval computed after the restore.
	ResumeCursor int
	// ColdStart carries the warning when a snapshot existed but was
	// rejected (corrupt, truncated, or invalid fields).
	ColdStart string
	// Report is the supervisor's restart accounting.
	Report supervise.TaskReport
}

// dayState is the snapshot payload: the engine's warm state plus the
// harness cursor and running digest, so the digest provably continues
// from the crash point instead of being recomputed.
type dayState struct {
	Cursor int                  `json:"cursor"`
	Digest uint64               `json:"digest"`
	Engine *corr.EngineSnapshot `json:"engine"`
}

const fnvBasis = 0xcbf29ce484222325

// fnvMix folds one 64-bit word into an FNV-64a digest, byte by byte.
func fnvMix(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= 0x100000001b3
		w >>= 8
	}
	return h
}

func digestMatrix(h uint64, u int, m *corr.Matrix) uint64 {
	h = fnvMix(h, uint64(u))
	if m == nil {
		return fnvMix(h, 0xdead)
	}
	for _, v := range m.Values() {
		h = fnvMix(h, math.Float64bits(v))
	}
	return h
}

// DayReturns builds the deterministic synthetic return stream of a
// day: a common AR(1) factor plus idiosyncratic noise and occasional
// outlier bursts (so the robust warm-fit chain sees cold starts too).
func DayReturns(seed int64, intervals, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, intervals)
	common := 0.0
	for u := range out {
		common = 0.6*common + 0.01*rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = common + 0.02*rng.NormFloat64()
			if rng.Float64() < 0.01 {
				v[i] += 0.4
			}
		}
		out[u] = v
	}
	return out
}

// RunDay executes the day under the supervisor. Panics listed in
// FailAt restart the task; each restart reloads the latest snapshot
// (or cold-starts when there is none or it is rejected) and replays
// only the lost intervals.
func (cfg DayConfig) fingerprint(e *corr.OnlineEngine) string {
	return fmt.Sprintf("%s|day seed=%d intervals=%d", e.Fingerprint(), cfg.Seed, cfg.Intervals)
}

func RunDay(ctx context.Context, cfg DayConfig) (*DayResult, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 25
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rets := DayReturns(cfg.Seed, cfg.Intervals, cfg.N)
	failed := make(map[int]bool)
	res := &DayResult{}

	rep, err := supervise.Run(ctx, "engine-day", cfg.Policy, func(ctx context.Context, progress func()) error {
		eng, err := corr.NewOnlineEngine(corr.EngineConfig{Type: cfg.Type, M: cfg.M}, cfg.N)
		if err != nil {
			return err
		}
		cursor := 0
		digest := uint64(fnvBasis)
		if cfg.SnapshotPath != "" {
			var st dayState
			err := supervise.LoadSnapshot(cfg.SnapshotPath, cfg.fingerprint(eng), &st)
			switch {
			case err == nil:
				if rerr := eng.Restore(st.Engine); rerr != nil {
					res.ColdStart = rerr.Error()
					logf("chaos: snapshot rejected, cold-starting: %v", rerr)
				} else {
					cursor, digest = st.Cursor, st.Digest
					res.Resumed = true
					res.ResumeCursor = cursor
				}
			case errors.Is(err, supervise.ErrNoSnapshot):
				// First run of the day: nothing to resume.
			default:
				res.ColdStart = err.Error()
				logf("chaos: snapshot unusable, cold-starting: %v", err)
			}
		}
		for u := cursor; u < cfg.Intervals; u++ {
			if len(failed) < len(cfg.FailAt) {
				for _, f := range cfg.FailAt {
					if f == u && !failed[u] {
						failed[u] = true
						panic(fmt.Sprintf("chaos: injected stage crash at interval %d", u))
					}
				}
			}
			m, err := eng.Push(rets[u])
			if err != nil {
				return err
			}
			digest = digestMatrix(digest, u, m)
			res.Pushed++
			progress()
			if cfg.SnapshotPath != "" && (u+1)%cfg.SnapshotEvery == 0 {
				st := dayState{Cursor: u + 1, Digest: digest, Engine: eng.Snapshot()}
				if err := supervise.SaveSnapshot(cfg.SnapshotPath, cfg.fingerprint(eng), st); err != nil {
					return fmt.Errorf("chaos: snapshot: %w", err)
				}
			}
			if cfg.CrashAfter > 0 && res.Pushed >= cfg.CrashAfter {
				// A real crash: no deferred cleanup, no atexit — the
				// snapshot on disk is all the next process gets.
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			}
		}
		res.Digest = digest
		return nil
	})
	res.Report = rep
	if err != nil {
		return nil, err
	}
	return res, nil
}
