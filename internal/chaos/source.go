package chaos

import (
	"context"
	"time"

	"marketminer/internal/core"
	"marketminer/internal/taq"
)

// Source wraps a pipeline quote source with quote-level faults: drops,
// duplicates, adjacent-pair reorders, and delays, each decided by the
// quote's position in the stream. Unlike the connection wrappers —
// whose faults the feed protocol must absorb losslessly — a chaotic
// source visibly perturbs the data; it exists to measure how sensitive
// downstream results are to feed imperfections (the Fil-style
// robustness question), and to do so reproducibly.
func (c *Chaos) Source(src core.QuoteSource) core.QuoteSource {
	return func(ctx context.Context, emit func(taq.Quote) bool) error {
		seed := uint64(c.spec.Seed)
		var idx uint64
		var held taq.Quote
		var holding bool
		out := func(q taq.Quote) bool {
			if c.spec.DelayEvery > 0 && c.spec.MaxDelay > 0 &&
				mix(seed, kindSourceDelay, idx)%uint64(c.spec.DelayEvery) == 0 {
				c.delays.Add(1)
				time.Sleep(1 + time.Duration(mix(seed, kindDelayDur, idx)%uint64(c.spec.MaxDelay)))
			}
			return emit(q)
		}
		ok := true
		err := src(ctx, func(q taq.Quote) bool {
			i := idx
			idx++
			if c.spec.DropRate > 0 && hashRate(mix(seed, kindDrop, i)) < c.spec.DropRate {
				c.drops.Add(1)
				return ok
			}
			if holding {
				// A reordered predecessor is waiting: emit the current
				// quote first, then release it.
				holding = false
				if ok = out(q) && out(held); !ok {
					return false
				}
				return ok
			}
			if c.spec.ReorderRate > 0 && hashRate(mix(seed, kindReorder, i)) < c.spec.ReorderRate {
				c.reorders.Add(1)
				held, holding = q, true
				return ok
			}
			if ok = out(q); !ok {
				return false
			}
			if c.spec.DupRate > 0 && hashRate(mix(seed, kindDup, i)) < c.spec.DupRate {
				c.dups.Add(1)
				ok = out(q)
			}
			return ok
		})
		if holding && ok {
			// Stream ended while a quote was held for reordering.
			out(held)
		}
		return err
	}
}
