package chaos

// Zero-loss acceptance suite: the networked Figure-1 pipeline run
// through an actively hostile network — corrupted bytes, severed
// connections, refused dials, injected latency — must produce results
// byte-identical to the in-process pipeline on the same data. The wire
// protocol's CRC framing plus resume-from-sequence reconnects make
// every injected fault recoverable, and the seeded schedule makes each
// hostile run a deterministic regression test, not a flake.

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"marketminer/internal/core"
	"marketminer/internal/feed"
	"marketminer/internal/market"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

func TestE2E_ChaoticNetworkBitIdenticalToInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	u, err := taq.NewUniverse([]string{"XOM", "CVX", "UPS", "FDX", "WMT"})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := market.NewGenerator(market.Config{Universe: u, Seed: 17, Days: 1, Contamination: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	quotes := day.Quotes

	p := strategy.DefaultParams()
	p.M = 50
	cfg := func(u *taq.Universe) core.PipelineConfig {
		return core.PipelineConfig{Universe: u, Params: []strategy.Params{p}}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	baseline, err := core.RunPipeline(ctx, cfg(u), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The server speaks through a corrupting listener; the client dials
	// through cuts and partitions. Both directions are hostile at once.
	serverChaos := New(Spec{Seed: 101, CorruptEvery: 24 << 10, DelayEvery: 32 << 10, MaxDelay: time.Millisecond})
	clientChaos := New(Spec{Seed: 202, CutEvery: 96 << 10, PartitionEvery: 4})

	srv, err := feed.NewServer(feed.ServerConfig{Universe: u, BatchSize: 256, Heartbeat: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(serverChaos.Listener(l))
	go func() {
		srv.PublishBatch(quotes)
		srv.Finish()
	}()

	tcp := &net.Dialer{}
	col := feed.NewCollector(feed.CollectorConfig{
		Dial: clientChaos.Dialer(func(ctx context.Context) (net.Conn, error) {
			return tcp.DialContext(ctx, "tcp", l.Addr().String())
		}),
		InitialBackoff:   2 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
	})
	go col.Run(ctx)
	cu, err := col.Universe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RunPipelineSource(ctx, cfg(cu), core.ChannelSource(col.Quotes()), 0)
	if err != nil {
		t.Fatal(err)
	}

	if got.QuotesIn != baseline.QuotesIn || got.QuotesClean != baseline.QuotesClean {
		t.Errorf("quotes in/clean = %d/%d, baseline %d/%d (lossy recovery)",
			got.QuotesIn, got.QuotesClean, baseline.QuotesIn, baseline.QuotesClean)
	}
	if got.Orders != baseline.Orders || got.OrdersRejected != baseline.OrdersRejected {
		t.Errorf("orders = %d (%d rejected), baseline %d (%d)",
			got.Orders, got.OrdersRejected, baseline.Orders, baseline.OrdersRejected)
	}
	if got.CashPnL != baseline.CashPnL {
		t.Errorf("cash PnL = %v, baseline %v", got.CashPnL, baseline.CashPnL)
	}
	if got.Matrices != baseline.Matrices {
		t.Errorf("matrices = %d, baseline %d", got.Matrices, baseline.Matrices)
	}
	if !reflect.DeepEqual(got.Trades, baseline.Trades) {
		t.Errorf("trade stream differs from in-process run (%d vs %d trades)",
			len(got.Trades[0]), len(baseline.Trades[0]))
	}

	// The pass must come from surviving faults, not dodging them.
	cs := col.Stats()
	sst, cst := serverChaos.Stats(), clientChaos.Stats()
	if sst.Corruptions == 0 {
		t.Errorf("server-side schedule never corrupted a byte: %+v", sst)
	}
	if cst.Cuts == 0 && cst.Partitions == 0 {
		t.Errorf("client-side schedule never severed a connection: %+v", cst)
	}
	if cs.Connects < 2 {
		t.Errorf("collector connected %d times; chaos should have forced reconnects (dial failures %d, disconnects %d)",
			cs.Connects, cs.DialFailures, cs.Disconnects)
	}
	t.Logf("survived: server %+v client %+v collector connects=%d resumes: gaps=%d dups=%d",
		sst, cst, cs.Connects, cs.Gaps, cs.Duplicates)
}
