package chaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrInjected marks connection errors manufactured by the harness, so
// logs distinguish injected faults from real ones.
type ErrInjected struct {
	Fault  string // "disconnect" or "partition"
	ConnID int64
	Offset int64 // byte offset of the fault, -1 for partitions
}

func (e *ErrInjected) Error() string {
	if e.Offset < 0 {
		return fmt.Sprintf("chaos: injected %s (conn %d)", e.Fault, e.ConnID)
	}
	return fmt.Sprintf("chaos: injected %s (conn %d, byte %d)", e.Fault, e.ConnID, e.Offset)
}

// WrapConn applies the schedule to one connection. Reads and writes
// get independent deterministic fault streams; a cut closes the
// underlying connection so both peers observe the failure.
func (c *Chaos) WrapConn(nc net.Conn) net.Conn {
	id := c.nextID.Add(1)
	c.conns.Add(1)
	return &conn{
		Conn: nc,
		ch:   c,
		id:   id,
		rd:   newStream(c.spec, uint64(c.spec.Seed), uint64(id), 0),
		wr:   newStream(c.spec, uint64(c.spec.Seed), uint64(id), 1),
	}
}

// partitioned reports whether connection attempt id falls inside an
// injected partition window.
func (c *Chaos) partitioned(id int64) bool {
	every := c.spec.PartitionEvery
	return every > 0 && mix(uint64(c.spec.Seed), kindPartition, uint64(id))%uint64(every) == 0
}

// Listener wraps l so accepted connections run under the schedule.
// Partitioned attempts are closed immediately after accept — the
// client sees an instant EOF, exactly like a half-open network cut.
func (c *Chaos) Listener(l net.Listener) net.Listener { return &listener{Listener: l, ch: c} }

type listener struct {
	net.Listener
	ch *Chaos
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		id := l.ch.nextID.Add(1)
		l.ch.conns.Add(1)
		if l.ch.partitioned(id) {
			l.ch.partitions.Add(1)
			nc.Close()
			continue
		}
		return &conn{
			Conn: nc,
			ch:   l.ch,
			id:   id,
			rd:   newStream(l.ch.spec, uint64(l.ch.spec.Seed), uint64(id), 0),
			wr:   newStream(l.ch.spec, uint64(l.ch.spec.Seed), uint64(id), 1),
		}, nil
	}
}

// Dialer wraps a dial function (e.g. feed.CollectorConfig.Dial) so
// every outbound connection runs under the schedule. Partitioned
// attempts fail without touching the network; the caller's normal
// backoff-and-retry path carries the client through the partition.
func (c *Chaos) Dialer(dial func(ctx context.Context) (net.Conn, error)) func(ctx context.Context) (net.Conn, error) {
	return func(ctx context.Context) (net.Conn, error) {
		id := c.nextID.Add(1)
		c.conns.Add(1)
		if c.partitioned(id) {
			c.partitions.Add(1)
			return nil, &ErrInjected{Fault: "partition", ConnID: id, Offset: -1}
		}
		nc, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		return &conn{
			Conn: nc,
			ch:   c,
			id:   id,
			rd:   newStream(c.spec, uint64(c.spec.Seed), uint64(id), 0),
			wr:   newStream(c.spec, uint64(c.spec.Seed), uint64(id), 1),
		}, nil
	}
}

// stream holds one direction's fault state. Offsets are absolute byte
// positions in the direction's stream, so fault placement is invariant
// to how the peer chunks its reads and writes.
type stream struct {
	mu      sync.Mutex
	off     int64
	corrupt eventStream
	cut     eventStream
	delay   eventStream
	seed    uint64
	max     time.Duration
}

func newStream(spec Spec, seed, id, dir uint64) *stream {
	s := mix(seed, id, dir)
	delayEvery := spec.DelayEvery
	if spec.MaxDelay <= 0 {
		delayEvery = 0
	}
	return &stream{
		corrupt: newEventStream(s, kindCorrupt, spec.CorruptEvery),
		cut:     newEventStream(s, kindCut, spec.CutEvery),
		delay:   newEventStream(s, kindDelay, delayEvery),
		seed:    s,
		max:     spec.MaxDelay,
	}
}

// apply mutates data in place according to the schedule and returns
// how many bytes survive (the rest fall past an injected cut) plus the
// cut offset (-1 if no cut fired in this window).
func (s *stream) apply(ch *Chaos, data []byte) (keep int, cutAt int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.off + int64(len(data))
	cutAt = -1
	if s.cut.hits(end) {
		cutAt = s.cut.next
		end = cutAt
		s.cut.advance()
	}
	keep = int(end - s.off)
	var sleep time.Duration
	for s.delay.hits(end) {
		sleep += 1 + time.Duration(mix(s.seed, kindDelayDur, s.delay.n)%uint64(s.max))
		s.delay.advance()
		ch.delays.Add(1)
	}
	for s.corrupt.hits(end) {
		bit := mix(s.seed, kindCorruptBit, s.corrupt.n) % 8
		data[s.corrupt.next-s.off] ^= 1 << bit
		s.corrupt.advance()
		ch.corrupts.Add(1)
	}
	s.off = end
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return keep, cutAt
}

type conn struct {
	net.Conn
	ch *Chaos
	id int64
	rd *stream
	wr *stream
}

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n <= 0 {
		return n, err
	}
	keep, cutAt := c.rd.apply(c.ch, p[:n])
	if cutAt < 0 {
		return n, err
	}
	// Injected disconnect: deliver the bytes before the cut, sever the
	// connection, and surface the fault on the next read.
	c.ch.cuts.Add(1)
	c.Conn.Close()
	if keep > 0 {
		return keep, nil
	}
	return 0, &ErrInjected{Fault: "disconnect", ConnID: c.id, Offset: cutAt}
}

func (c *conn) Write(p []byte) (int, error) {
	buf := append([]byte(nil), p...)
	keep, cutAt := c.wr.apply(c.ch, buf)
	if cutAt < 0 {
		return c.Conn.Write(buf)
	}
	c.ch.cuts.Add(1)
	n, _ := c.Conn.Write(buf[:keep])
	c.Conn.Close()
	return n, &ErrInjected{Fault: "disconnect", ConnID: c.id, Offset: cutAt}
}
