package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"marketminer/internal/core"
	"marketminer/internal/taq"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "seed=7,corrupt=8192,cut=65536,delay=4096:2ms,partition=5,drop=0.01,dup=0.02,reorder=0.03"
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.CorruptEvery != 8192 || s.CutEvery != 65536 ||
		s.DelayEvery != 4096 || s.MaxDelay != 2*time.Millisecond ||
		s.PartitionEvery != 5 || s.DropRate != 0.01 || s.DupRate != 0.02 || s.ReorderRate != 0.03 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Active() {
		t.Error("full spec reported inactive")
	}
	back, err := ParseSpec(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if back != s {
		t.Errorf("round trip: %+v vs %+v", back, s)
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	for _, text := range []string{
		"", "seed", "seed=x", "corrupt=0", "corrupt=-5", "cut=1.5",
		"delay=100", "delay=100:0s", "delay=0:1ms", "drop=1.5", "drop=-0.1",
		"typo=3", "seed=1,,",
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
	if s, err := ParseSpec("seed=9"); err != nil || s.Active() {
		t.Errorf("fault-free spec: %+v, %v", s, err)
	}
}

// TestParseSpecUnknownAndDuplicateKeys pins the exact diagnostics for
// malformed specs: an unknown key and a repeated key each name the
// offending key instead of being silently ignored or last-wins merged.
func TestParseSpecUnknownAndDuplicateKeys(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"unknown key", "seed=1,bogus=2", `chaos: unknown key "bogus"`},
		{"unknown key alone", "frobnicate=1", `chaos: unknown key "frobnicate"`},
		{"duplicate seed", "seed=1,seed=2", `chaos: duplicate key "seed"`},
		{"duplicate corrupt", "corrupt=10,cut=20,corrupt=30", `chaos: duplicate key "corrupt"`},
		{"duplicate rate", "drop=0.1,drop=0.1", `chaos: duplicate key "drop"`},
		{"duplicate delay", "delay=10:1ms,delay=20:2ms", `chaos: duplicate key "delay"`},
		{"ok single keys", "seed=1,corrupt=10,cut=20", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.text)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ParseSpec(%q) = %v, want nil", tc.text, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted, want %q", tc.text, tc.wantErr)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("ParseSpec(%q) error %q, want %q", tc.text, err, tc.wantErr)
			}
		})
	}
}

// byteConn is an in-memory net.Conn half: reads stream from a buffer,
// writes accumulate into a buffer.
type byteConn struct {
	r      *bytes.Reader
	w      bytes.Buffer
	closed bool
}

func (c *byteConn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.r.Read(p)
}

func (c *byteConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.w.Write(p)
}

func (c *byteConn) Close() error                     { c.closed = true; return nil }
func (c *byteConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *byteConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *byteConn) SetDeadline(time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(time.Time) error { return nil }

func testPayload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(mix(0xabc, uint64(i)))
	}
	return data
}

// readThrough pulls the whole stream through a fresh injector with the
// given read-chunk size, returning the bytes delivered before the
// stream ended (EOF or injected cut).
func readThrough(spec Spec, data []byte, chunk int) ([]byte, Stats) {
	ch := New(spec)
	conn := ch.WrapConn(&byteConn{r: bytes.NewReader(data)})
	var out []byte
	buf := make([]byte, chunk)
	for {
		n, err := conn.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return out, ch.Stats()
		}
	}
}

func TestConnFaultsInvariantToReadChunking(t *testing.T) {
	data := testPayload(256 << 10)
	spec := Spec{Seed: 42, CorruptEvery: 4 << 10, CutEvery: 64 << 10}
	small, st1 := readThrough(spec, data, 7)
	large, st2 := readThrough(spec, data, 8192)
	if !bytes.Equal(small, large) {
		t.Fatalf("delivered bytes differ across chunk sizes: %d vs %d bytes", len(small), len(large))
	}
	if st1 != st2 {
		t.Errorf("fault stats differ across chunk sizes: %+v vs %+v", st1, st2)
	}
	if st1.Cuts != 1 {
		t.Errorf("cuts = %d, want exactly 1 (stream ends at first cut)", st1.Cuts)
	}
	if st1.Corruptions == 0 {
		t.Error("no corruptions fired over 256KiB at mean gap 4KiB")
	}
	if bytes.Equal(small, data[:len(small)]) {
		t.Error("corruption schedule fired but bytes are unchanged")
	}
	// Same seed replays the same schedule; a different seed does not.
	replay, _ := readThrough(spec, data, 1024)
	if !bytes.Equal(replay, small) {
		t.Error("same seed did not replay the same corrupted stream")
	}
	other, _ := readThrough(Spec{Seed: 43, CorruptEvery: 4 << 10, CutEvery: 64 << 10}, data, 1024)
	if bytes.Equal(other, small) {
		t.Error("different seed replayed the same schedule")
	}
}

func TestConnWriteFaultsInvariantToWriteChunking(t *testing.T) {
	data := testPayload(96 << 10)
	write := func(chunk int) ([]byte, error) {
		ch := New(Spec{Seed: 5, CorruptEvery: 8 << 10, CutEvery: 48 << 10})
		bc := &byteConn{r: bytes.NewReader(nil)}
		conn := ch.WrapConn(bc)
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := conn.Write(data[off:end]); err != nil {
				return bc.w.Bytes(), err
			}
		}
		return bc.w.Bytes(), nil
	}
	a, errA := write(13)
	b, errB := write(4096)
	if !bytes.Equal(a, b) {
		t.Fatalf("written bytes differ across chunk sizes: %d vs %d", len(a), len(b))
	}
	var inj *ErrInjected
	if !errors.As(errA, &inj) || !errors.As(errB, &inj) {
		t.Fatalf("cut errors: %v / %v, want ErrInjected", errA, errB)
	}
	if inj.Fault != "disconnect" {
		t.Errorf("fault = %q", inj.Fault)
	}
}

func TestDialerPartitionsDeterministically(t *testing.T) {
	attempts := func(seed int64) []bool {
		ch := New(Spec{Seed: seed, PartitionEvery: 3})
		dial := ch.Dialer(func(ctx context.Context) (net.Conn, error) {
			return &byteConn{r: bytes.NewReader(nil)}, nil
		})
		var out []bool
		for i := 0; i < 30; i++ {
			conn, err := dial(context.Background())
			if err != nil {
				var inj *ErrInjected
				if !errors.As(err, &inj) || inj.Fault != "partition" {
					t.Fatalf("dial error %v, want injected partition", err)
				}
				out = append(out, true)
				continue
			}
			conn.Close()
			out = append(out, false)
		}
		return out
	}
	first := attempts(11)
	refused := 0
	for _, p := range first {
		if p {
			refused++
		}
	}
	if refused == 0 || refused == len(first) {
		t.Fatalf("refused %d/30 attempts, want a strict subset", refused)
	}
	if !reflect.DeepEqual(first, attempts(11)) {
		t.Error("partition schedule not reproducible for the same seed")
	}
	if reflect.DeepEqual(first, attempts(12)) {
		t.Error("different seeds produced identical partition schedules")
	}
}

func syntheticQuotes(n int) []taq.Quote {
	out := make([]taq.Quote, n)
	for i := range out {
		out[i] = taq.Quote{
			Day: 0, SeqTime: float64(i), Symbol: "AAA",
			Bid: 100 + float64(i%7), Ask: 100.1 + float64(i%7),
			BidSize: 1, AskSize: 1,
		}
	}
	return out
}

func collectSource(t *testing.T, src core.QuoteSource) []taq.Quote {
	t.Helper()
	var got []taq.Quote
	err := src(context.Background(), func(q taq.Quote) bool {
		got = append(got, q)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSourceFaultsDeterministic(t *testing.T) {
	quotes := syntheticQuotes(2000)
	spec := Spec{Seed: 3, DropRate: 0.02, DupRate: 0.02, ReorderRate: 0.05}
	ch := New(spec)
	got := collectSource(t, ch.Source(core.SliceSource(quotes)))
	st := ch.Stats()
	if st.Drops == 0 || st.Dups == 0 || st.Reorders == 0 {
		t.Fatalf("faults did not fire: %+v", st)
	}
	if want := len(quotes) - int(st.Drops) + int(st.Dups); len(got) != want {
		t.Errorf("emitted %d quotes, want %d (%d dropped, %d duplicated)", len(got), want, st.Drops, st.Dups)
	}
	again := collectSource(t, New(spec).Source(core.SliceSource(quotes)))
	if !reflect.DeepEqual(got, again) {
		t.Error("same seed did not replay the same perturbed stream")
	}
	other := collectSource(t, New(Spec{Seed: 4, DropRate: 0.02, DupRate: 0.02, ReorderRate: 0.05}).Source(core.SliceSource(quotes)))
	if reflect.DeepEqual(got, other) {
		t.Error("different seed replayed the same perturbed stream")
	}
}

func TestSourceZeroSpecIsTransparent(t *testing.T) {
	quotes := syntheticQuotes(500)
	got := collectSource(t, New(Spec{Seed: 1}).Source(core.SliceSource(quotes)))
	if !reflect.DeepEqual(got, quotes) {
		t.Error("inactive spec perturbed the stream")
	}
}

func TestListenerAppliesSchedule(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch := New(Spec{Seed: 9, CutEvery: 512})
	wrapped := ch.Listener(l)

	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := wrapped.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		payload := testPayload(64 << 10)
		for off := 0; off < len(payload); off += 1024 {
			if _, err := conn.Write(payload[off : off+1024]); err != nil {
				return // injected cut — expected
			}
		}
		t.Error("server wrote 64KiB through a cut-every-512 schedule")
	}()

	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	n, _ := io.Copy(io.Discard, client)
	<-done
	if st := ch.Stats(); st.Cuts == 0 {
		t.Errorf("no cut recorded (client saw %d bytes)", n)
	}
}
