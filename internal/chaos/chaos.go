// Package chaos is the deterministic fault-injection harness of the
// robustness layer: net.Conn/listener/dialer wrappers and a
// QuoteSource wrapper that inject byte corruption, mid-stream
// disconnects, delays, partitions, and quote drops/duplicates/reorders
// from a seeded schedule.
//
// Every fault decision is a pure function of (seed, connection id,
// direction, event index) through a splitmix64-style hash, so a
// schedule is replayable byte-for-byte regardless of read chunking,
// heartbeat timing, or goroutine interleaving: the same seed always
// corrupts the same byte offsets of the same connections. That is what
// turns "the pipeline survived a flaky network once" into a regression
// test.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Spec is a seeded fault schedule. The zero value injects nothing.
// Byte-level faults (corrupt/cut/delay) apply to wrapped connections;
// rate-based faults (drop/dup/reorder) apply to wrapped quote sources.
// "Every" fields are mean gaps: events fire at deterministic offsets
// drawn uniformly from [1, 2·every].
type Spec struct {
	// Seed drives every fault decision. Two runs with the same seed
	// replay the same schedule.
	Seed int64
	// CorruptEvery is the mean number of bytes between single-bit
	// flips on a connection (per direction). 0 disables.
	CorruptEvery int64
	// CutEvery is the mean number of bytes between injected mid-stream
	// disconnects. 0 disables.
	CutEvery int64
	// DelayEvery is the mean gap (bytes on connections, quotes on
	// sources) between injected delays of up to MaxDelay. 0 disables.
	DelayEvery int64
	// MaxDelay bounds each injected delay.
	MaxDelay time.Duration
	// PartitionEvery refuses roughly one in PartitionEvery connection
	// attempts outright, simulating a network partition the client
	// must retry through. 0 disables.
	PartitionEvery int64
	// DropRate / DupRate / ReorderRate are per-quote probabilities for
	// the QuoteSource wrapper.
	DropRate    float64
	DupRate     float64
	ReorderRate float64
}

// Active reports whether the spec injects any fault at all.
func (s Spec) Active() bool {
	return s.CorruptEvery > 0 || s.CutEvery > 0 || s.DelayEvery > 0 ||
		s.PartitionEvery > 0 || s.DropRate > 0 || s.DupRate > 0 || s.ReorderRate > 0
}

// String renders the spec in ParseSpec format.
func (s Spec) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.CorruptEvery > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%d", s.CorruptEvery))
	}
	if s.CutEvery > 0 {
		parts = append(parts, fmt.Sprintf("cut=%d", s.CutEvery))
	}
	if s.DelayEvery > 0 {
		parts = append(parts, fmt.Sprintf("delay=%d:%s", s.DelayEvery, s.MaxDelay))
	}
	if s.PartitionEvery > 0 {
		parts = append(parts, fmt.Sprintf("partition=%d", s.PartitionEvery))
	}
	if s.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", s.DropRate))
	}
	if s.DupRate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", s.DupRate))
	}
	if s.ReorderRate > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", s.ReorderRate))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g. "seed=7,corrupt=8192,cut=65536,delay=4096:2ms,
// partition=5,drop=0.01,dup=0.01,reorder=0.02". Unknown keys are
// errors so typos never silently disable a fault.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	if strings.TrimSpace(text) == "" {
		return s, fmt.Errorf("chaos: empty spec")
	}
	seen := make(map[string]bool)
	for _, kv := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return s, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		if seen[key] {
			return s, fmt.Errorf("chaos: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "corrupt":
			s.CorruptEvery, err = parseEvery(val)
		case "cut":
			s.CutEvery, err = parseEvery(val)
		case "delay":
			gap, durText, ok := strings.Cut(val, ":")
			if !ok {
				return s, fmt.Errorf("chaos: delay wants gap:duration, got %q", val)
			}
			if s.DelayEvery, err = parseEvery(gap); err == nil {
				s.MaxDelay, err = time.ParseDuration(durText)
			}
		case "partition":
			s.PartitionEvery, err = parseEvery(val)
		case "drop":
			s.DropRate, err = parseRate(val)
		case "dup":
			s.DupRate, err = parseRate(val)
		case "reorder":
			s.ReorderRate, err = parseRate(val)
		default:
			return s, fmt.Errorf("chaos: unknown key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("chaos: bad %s value %q: %v", key, val, err)
		}
	}
	if s.DelayEvery > 0 && s.MaxDelay <= 0 {
		return s, fmt.Errorf("chaos: delay needs a positive duration")
	}
	return s, nil
}

func parseEvery(val string) (int64, error) {
	v, err := strconv.ParseInt(val, 10, 64)
	if err == nil && v <= 0 {
		err = fmt.Errorf("must be positive")
	}
	return v, err
}

func parseRate(val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err == nil && (v < 0 || v > 1) {
		err = fmt.Errorf("must be in [0,1]")
	}
	return v, err
}

// Stats counts the faults a Chaos instance actually injected; tests
// assert on it so a "survived chaos" result cannot come from a
// schedule that never fired.
type Stats struct {
	Conns       int64 // connections wrapped (incl. partitioned attempts)
	Partitions  int64 // connection attempts refused
	Corruptions int64
	Cuts        int64
	Delays      int64
	Drops       int64
	Dups        int64
	Reorders    int64
}

// Chaos mints deterministic fault schedules from one Spec. Each
// wrapped connection gets a sequential id; the (seed, id) pair fixes
// its entire fault schedule at birth.
type Chaos struct {
	spec   Spec
	nextID atomic.Int64

	conns      atomic.Int64
	partitions atomic.Int64
	corrupts   atomic.Int64
	cuts       atomic.Int64
	delays     atomic.Int64
	drops      atomic.Int64
	dups       atomic.Int64
	reorders   atomic.Int64
}

// New builds a fault injector over spec.
func New(spec Spec) *Chaos { return &Chaos{spec: spec} }

// Spec returns the schedule this injector was built from.
func (c *Chaos) Spec() Spec { return c.spec }

// Stats snapshots the injected-fault counters.
func (c *Chaos) Stats() Stats {
	return Stats{
		Conns:       c.conns.Load(),
		Partitions:  c.partitions.Load(),
		Corruptions: c.corrupts.Load(),
		Cuts:        c.cuts.Load(),
		Delays:      c.delays.Load(),
		Drops:       c.drops.Load(),
		Dups:        c.dups.Load(),
		Reorders:    c.reorders.Load(),
	}
}

// Fault kinds, mixed into the hash so each fault type draws an
// independent deterministic event stream.
const (
	kindCorrupt = 1 + iota
	kindCorruptBit
	kindCut
	kindDelay
	kindDelayDur
	kindPartition
	kindDrop
	kindDup
	kindReorder
	kindSourceDelay
)

// mix is a splitmix64 finalization chain: a tiny, well-dispersed hash
// whose output depends on every input word. It is the entire source of
// randomness in this package — no global rand, no time.
func mix(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h += w
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// hashRate maps a hash to [0,1) for rate-based decisions.
func hashRate(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// gap draws the i-th inter-event gap for a fault kind: uniform in
// [1, 2·every], so events fire at mean spacing `every`.
func gap(seed uint64, kind, i uint64, every int64) int64 {
	return 1 + int64(mix(seed, kind, i)%uint64(2*every))
}

// eventStream walks the deterministic offsets of one fault kind on one
// connection direction.
type eventStream struct {
	seed  uint64
	kind  uint64
	every int64
	next  int64 // absolute offset of the next event; -1 when disabled
	n     uint64
}

func newEventStream(seed uint64, kind uint64, every int64) eventStream {
	s := eventStream{seed: seed, kind: kind, every: every, next: -1}
	if every > 0 {
		s.next = gap(seed, kind, 0, every)
		s.n = 1
	}
	return s
}

// hits reports whether the next event lands strictly before offset
// `end`, i.e. inside the window [start, end).
func (s *eventStream) hits(end int64) bool { return s.next >= 0 && s.next < end }

func (s *eventStream) advance() {
	s.next += gap(s.seed, s.kind, s.n, s.every)
	s.n++
}
