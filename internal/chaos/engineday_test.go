package chaos

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"marketminer/internal/corr"
	"marketminer/internal/supervise"
)

func dayConfig(snapshot string) DayConfig {
	return DayConfig{
		N: 5, M: 20, Type: corr.Maronna, Intervals: 200, Seed: 77,
		SnapshotPath: snapshot, SnapshotEvery: 25,
		Policy: supervise.Policy{InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	}
}

func cleanDigest(t *testing.T) uint64 {
	t.Helper()
	res, err := RunDay(context.Background(), dayConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pushed != 200 || res.Resumed {
		t.Fatalf("clean run: %+v", res)
	}
	return res.Digest
}

func TestDayDigestDeterministic(t *testing.T) {
	if cleanDigest(t) != cleanDigest(t) {
		t.Fatal("clean day digest not reproducible")
	}
}

func TestDayPanicsResumeFromSnapshotBitIdentical(t *testing.T) {
	want := cleanDigest(t)
	cfg := dayConfig(filepath.Join(t.TempDir(), "day.snap"))
	cfg.FailAt = []int{60, 130}
	res, err := RunDay(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != want {
		t.Errorf("digest %016x after crashes, want %016x (bit-identity broken)", res.Digest, want)
	}
	if res.Report.Restarts != 2 || res.Report.Panics != 2 {
		t.Errorf("report: %+v, want 2 restarts from 2 panics", res.Report)
	}
	if !res.Resumed {
		t.Error("restarts never restored a snapshot")
	}
	// Crash at 60 resumes from the interval-50 snapshot, crash at 130
	// from interval-125: only the lost tails are replayed.
	if res.Pushed != 200+(60-50)+(130-125) {
		t.Errorf("pushed %d intervals, want 215 (lost tails only, not the whole day)", res.Pushed)
	}
}

func TestDayPanicsWithoutSnapshotsReplayFromOpen(t *testing.T) {
	want := cleanDigest(t)
	cfg := dayConfig("")
	cfg.FailAt = []int{40}
	res, err := RunDay(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != want {
		t.Errorf("digest mismatch on snapshot-less restart")
	}
	if res.Resumed || res.Pushed != 240 {
		t.Errorf("%+v: want cold replay of all 200 intervals after 40 lost", res)
	}
}

func TestDayCorruptSnapshotColdStartsWithWarning(t *testing.T) {
	want := cleanDigest(t)
	path := filepath.Join(t.TempDir(), "day.snap")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	cfg := dayConfig(path)
	cfg.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	res, err := RunDay(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != want {
		t.Errorf("corrupt snapshot produced a wrong result (digest %016x, want %016x)", res.Digest, want)
	}
	if res.Resumed || res.ColdStart == "" {
		t.Errorf("corrupt snapshot not reported: %+v", res)
	}
	if len(logged) == 0 || !strings.Contains(strings.Join(logged, "\n"), "cold-start") {
		t.Errorf("no cold-start warning logged: %q", logged)
	}
}

func TestDayRejectedFieldsColdStart(t *testing.T) {
	// A structurally valid snapshot whose engine state fails field
	// validation (satellite 6) must also cold-start, not crash or
	// mis-resume.
	want := cleanDigest(t)
	path := filepath.Join(t.TempDir(), "day.snap")
	cfg := dayConfig(path)

	eng, err := corr.NewOnlineEngine(corr.EngineConfig{Type: cfg.Type, M: cfg.M}, cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range DayReturns(cfg.Seed, 30, cfg.N) {
		if _, err := eng.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Snapshot()
	snap.Head = cfg.M + 3 // out of range: must be rejected on restore
	st := dayState{Cursor: 30, Digest: 12345, Engine: snap}
	if err := supervise.SaveSnapshot(path, cfg.fingerprint(eng), st); err != nil {
		t.Fatal(err)
	}

	res, err := RunDay(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed || !strings.Contains(res.ColdStart, "head") {
		t.Errorf("invalid snapshot fields not rejected: %+v", res)
	}
	if res.Digest != want {
		t.Errorf("rejected snapshot still skewed the result")
	}
}

// TestDayCrashHelper is not a test: it is the subprocess body for the
// SIGKILL test below, selected via environment variable.
func TestDayCrashHelper(t *testing.T) {
	if os.Getenv("MM_CHAOS_DAY_HELPER") != "1" {
		t.Skip("helper process only")
	}
	cfg := dayConfig(os.Getenv("MM_CHAOS_DAY_SNAPSHOT"))
	cfg.CrashAfter = 120
	RunDay(context.Background(), cfg)
	t.Fatal("helper survived its own SIGKILL")
}

func TestDaySIGKILLThenResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want := cleanDigest(t)
	path := filepath.Join(t.TempDir(), "day.snap")

	cmd := exec.Command(os.Args[0], "-test.run=TestDayCrashHelper", "-test.v")
	cmd.Env = append(os.Environ(), "MM_CHAOS_DAY_HELPER=1", "MM_CHAOS_DAY_SNAPSHOT="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper exited cleanly; expected SIGKILL mid-day:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != -1 {
		t.Fatalf("helper died of %v, want a signal:\n%s", err, out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("killed process left no snapshot: %v", err)
	}

	res, err := RunDay(context.Background(), dayConfig(path))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.ResumeCursor != 100 {
		t.Errorf("resume: %+v, want restore from the interval-100 snapshot", res)
	}
	if res.Pushed != 100 {
		t.Errorf("pushed %d intervals, want 100 (resume must not replay from the open)", res.Pushed)
	}
	if res.Digest != want {
		t.Errorf("digest %016x after SIGKILL+resume, want %016x", res.Digest, want)
	}
}
