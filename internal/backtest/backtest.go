// Package backtest orchestrates the paper's Section IV experiment: for
// every pair p ∈ Φ, every parameter set k ∈ K and every trading day t,
// run the canonical strategy and collect the return sets R_p^{t,k}.
//
// Three runners reproduce the paper's three approaches:
//
//   - RunPairDaySequential — the Matlab Approach-2 unit of work: one
//     (pair, day, parameter set) return vector computed in isolation,
//     including its own correlation series. Its wall time is the
//     analogue of the paper's "approximately 2 seconds".
//   - Farm — Approach 2 at scale: independent per-(pair, set) jobs on
//     an SGE-like scheduler (internal/sched), sharing nothing.
//   - Run — Approach 3, the integrated MarketMiner path: each day's
//     correlation series is computed once per (Ctype, M) by the
//     parallel engine and shared by every pair and parameter set.
package backtest

import (
	"context"
	"fmt"
	"runtime"

	"marketminer/internal/clean"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/metrics"
	"marketminer/internal/portfolio"
	"marketminer/internal/sched"
	"marketminer/internal/screen"
	"marketminer/internal/series"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// Config describes one sweep.
type Config struct {
	// Market generates the synthetic TAQ dataset (days, universe,
	// contamination, …).
	Market market.Config
	// Clean configures the tick filter.
	Clean clean.Config
	// Levels are the non-treatment parameter vectors K′ (Ctype is
	// overridden); nil means strategy.BaseGrid().
	Levels []strategy.Params
	// Types are the correlation treatments; nil means corr.Types().
	Types []corr.Type
	// Costs models implementation shortfall (commission, spread
	// crossing, market impact); the zero value is the paper's
	// frictionless setting. Half-spreads are taken from the market
	// configuration's HalfSpreadBps.
	Costs portfolio.CostModel
	// Screen configures the normalized-price SSD pre-screening stage:
	// each day, pairs whose price paths diverge are pruned before any
	// correlation work, and pruned pairs simply record no trades. The
	// zero value disables screening (bit-identical to the classic
	// full-triangle sweep); when enabled the contract is the ≥95%
	// trade-PnL recall gate, not bit-identity.
	Screen screen.Config
	// Float32 opts the robust correlation engine into the approximate
	// single-precision iteration lane (see corr.EngineConfig.Float32).
	Float32 bool
	// Workers bounds parallelism; ≤ 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives a line per completed day.
	Progress func(day, totalDays, trades int)
}

// ResolvedWorkers returns the effective worker count (GOMAXPROCS when
// Workers ≤ 0).
func (c Config) ResolvedWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ResolvedLevels returns the effective non-treatment parameter vectors
// K′ (strategy.BaseGrid when Levels is nil). Sweep decomposition and
// the runners must agree on this resolution, so it is exported.
func (c Config) ResolvedLevels() []strategy.Params {
	if c.Levels != nil {
		return c.Levels
	}
	return strategy.BaseGrid()
}

// ResolvedTypes returns the effective correlation treatments
// (corr.Types when Types is nil).
func (c Config) ResolvedTypes() []corr.Type {
	if c.Types != nil {
		return c.Types
	}
	return corr.Types()
}

func (c Config) workers() int { return c.ResolvedWorkers() }

func (c Config) levels() []strategy.Params { return c.ResolvedLevels() }

func (c Config) types() []corr.Type { return c.ResolvedTypes() }

// Result is the collected return data of one sweep.
type Result struct {
	Universe *taq.Universe
	Levels   []strategy.Params
	Types    []corr.Type
	Days     int
	// Series[pairID][paramIdx] holds R_p^k split by day, where
	// paramIdx = typeIdx*len(Levels) + levelIdx.
	Series     [][]metrics.PairParamSeries
	TradeCount int64
}

// NumPairs returns |Φ|.
func (r *Result) NumPairs() int { return len(r.Series) }

// ParamIndex maps (type index, level index) to the flat param index.
func (r *Result) ParamIndex(typeIdx, levelIdx int) int {
	return typeIdx*len(r.Levels) + levelIdx
}

// Param returns the full parameter vector at a flat index.
func (r *Result) Param(idx int) strategy.Params {
	typeIdx := idx / len(r.Levels)
	return r.Levels[idx%len(r.Levels)].WithType(r.Types[typeIdx])
}

// NumParams returns |K| = levels × types.
func (r *Result) NumParams() int { return len(r.Levels) * len(r.Types) }

// DayData is the per-day cleaned market state shared by all runners:
// the sampled price grid and the per-stock log-return rows.
type DayData struct {
	PG      *series.PriceGrid
	Returns [][]float64
}

// PrepareDay generates, cleans and samples one trading day into the
// price/return grids all strategies consume (generate → clean →
// sample → backfill → log-returns). Exposed for the example programs
// and benches.
func PrepareDay(cfg Config, gen *market.Generator, day int) (*DayData, error) {
	md, err := gen.GenerateDay(day)
	if err != nil {
		return nil, err
	}
	return prepareQuotes(cfg, gen.Config().Universe, md.Quotes)
}

func prepareQuotes(cfg Config, uni *taq.Universe, quotes []taq.Quote) (*DayData, error) {
	cleaned, _ := clean.Clean(cfg.Clean, quotes)
	grid, err := series.NewGrid(deltaSOf(cfg))
	if err != nil {
		return nil, err
	}
	sm := series.NewSampler(grid, uni)
	for _, q := range cleaned {
		sm.Add(q)
	}
	pg := sm.Finish()
	if err := series.Backfill(pg); err != nil {
		return nil, err
	}
	return &DayData{PG: pg, Returns: series.ReturnGrid(pg)}, nil
}

// deltaSOf returns the grid resolution; all Table I vectors share
// ∆s = 30 s, and Config validation enforces that agreement.
func deltaSOf(cfg Config) int {
	levels := cfg.levels()
	if len(levels) == 0 {
		return 30
	}
	return levels[0].DeltaS
}

// Validate checks the configuration is runnable.
func (c Config) Validate() error {
	levels := c.levels()
	if len(levels) == 0 {
		return fmt.Errorf("backtest: no parameter levels")
	}
	ds := levels[0].DeltaS
	for _, p := range levels {
		if err := p.Validate(); err != nil {
			return err
		}
		if p.DeltaS != ds {
			return fmt.Errorf("backtest: mixed ∆s in levels (%d vs %d)", p.DeltaS, ds)
		}
	}
	if len(c.types()) == 0 {
		return fmt.Errorf("backtest: no correlation types")
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if err := c.Screen.Validate(); err != nil {
		return err
	}
	return nil
}

// TradeReturns converts completed trades to per-trade returns, net of
// the configured cost model. It is the single conversion point shared
// by all runners (and the sweep orchestrator), so every execution path
// prices trades identically.
func TradeReturns(cfg Config, trades []strategy.Trade) []float64 {
	rets := make([]float64, len(trades))
	halfBps := cfg.Market.HalfSpreadBps
	for i, tr := range trades {
		if cfg.Costs.Zero() {
			rets[i] = tr.Return
			continue
		}
		pos := &portfolio.PairPosition{
			LongSh: tr.LongSh, ShortSh: tr.ShortSh,
			LongPx: tr.LongEntry, ShortPx: tr.ShortEntry,
		}
		rets[i] = cfg.Costs.NetReturn(pos, tr.LongExit, tr.ShortExit, halfBps)
	}
	return rets
}

// Run executes the integrated (Approach 3) sweep: for each day the
// correlation series is computed once per (Ctype, M) across all pairs
// by the parallel engine, then every (pair, parameter set) strategy is
// replayed against the shared series.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := market.NewGenerator(cfg.Market)
	if err != nil {
		return nil, err
	}
	// Adopt the generator's sanitised configuration (defaults filled).
	cfg.Market = gen.Config()
	uni := gen.Config().Universe
	levels := cfg.levels()
	types := cfg.types()
	days := gen.Config().Days

	res := &Result{Universe: uni, Levels: levels, Types: types, Days: days}
	numPairs := uni.NumPairs()
	numParams := len(levels) * len(types)
	res.Series = make([][]metrics.PairParamSeries, numPairs)
	for p := range res.Series {
		res.Series[p] = make([]metrics.PairParamSeries, numParams)
		for k := range res.Series[p] {
			res.Series[p][k].Daily = make([][]float64, days)
		}
	}

	pool := sched.New(cfg.workers())
	pairs := taq.AllPairs(uni.Len())
	allIDs := make([]int, numPairs)
	for i := range allIDs {
		allIDs[i] = i
	}

	// Group levels by window M so each (Ctype, M) series is computed
	// exactly once per day — the paper's "overcoming the main
	// bottleneck, the computation of all pair-wise correlations".
	byM := map[int][]int{}
	for li, p := range levels {
		byM[p.M] = append(byM[p.M], li)
	}

	for d := 0; d < days; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dd, err := PrepareDay(cfg, gen, d)
		if err != nil {
			return nil, err
		}
		// Pre-screening: prune the pair triangle on the normalized
		// price paths before any correlation work. Pruned pairs record
		// empty (non-nil) return sets for every parameter set, so the
		// result shape is unchanged.
		runIDs := allIDs
		if cfg.Screen.Enabled() {
			keep, _, err := screen.Select(cfg.Screen, dd.Returns)
			if err != nil {
				return nil, err
			}
			runIDs = keep
			kept := make([]bool, numPairs)
			for _, pid := range keep {
				kept[pid] = true
			}
			for pid := 0; pid < numPairs; pid++ {
				if kept[pid] {
					continue
				}
				for k := range res.Series[pid] {
					res.Series[pid][k].Daily[d] = TradeReturns(cfg, nil)
				}
			}
		}
		var dayTrades int64
		for m, levelIdxs := range byM {
			// One engine pass per (M): the robust treatments share a
			// single warm-started Maronna fit per (pair, window), so
			// Maronna + Combined cost one M-estimation, not two.
			ec := corr.EngineConfig{M: m, Workers: cfg.workers(), Float32: cfg.Float32}
			if cfg.Screen.Enabled() {
				ec.Pairs = runIDs
			}
			css, err := corr.ComputeSeriesMulti(ec, types, dd.Returns)
			if err != nil {
				return nil, err
			}
			for ti, ct := range types {
				cs := css[ti]
				ti, levelIdxs := ti, levelIdxs
				err = pool.Map(ctx, len(runIDs), func(ctx context.Context, i int) error {
					pid := runIDs[i]
					pr := pairs[pid]
					for _, li := range levelIdxs {
						p := levels[li].WithType(ct)
						trades, err := strategy.RunDay(p, cs.Corr[i], cs.FirstS, dd.PG, pr.I, pr.J, d)
						if err != nil {
							return err
						}
						res.Series[pid][ti*len(levels)+li].Daily[d] = TradeReturns(cfg, trades)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
		}
		for p := range res.Series {
			for k := range res.Series[p] {
				dayTrades += int64(len(res.Series[p][k].Daily[d]))
			}
		}
		res.TradeCount += dayTrades
		if cfg.Progress != nil {
			cfg.Progress(d, days, int(dayTrades))
		}
	}
	return res, nil
}
