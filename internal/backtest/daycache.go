package backtest

import (
	"math"
	"sync"
)

// dayCache is a bounded, lazily-filled cache of prepared DayData shared
// by Farm's workers. The farm baseline used to prepare and hold every
// day's data up front, which is O(days) memory before the first job
// runs; the cache prepares a day the first time any worker asks for it
// (singleflight — concurrent callers for the same day block on one
// preparation) and evicts the least-recently-used completed day once
// the cache is full. Capacity around workers+1 keeps every worker's
// current day resident while a sequential day scan reuses each entry
// across all jobs that reach it near the same time.
type dayCache struct {
	prepare func(day int) (*DayData, error)

	mu      sync.Mutex
	cap     int
	clock   int64
	entries map[int]*dayCacheEntry

	// highWater records the largest number of simultaneously resident
	// entries; tests use it to pin the bound. It can exceed cap only
	// when every resident entry is still being prepared (eviction never
	// drops an in-flight preparation), which bounds it by cap+workers.
	highWater int
}

type dayCacheEntry struct {
	ready    chan struct{} // closed when dd/err are set
	dd       *DayData
	err      error
	done     bool
	lastUsed int64
}

// newDayCache returns a cache holding at most capacity completed days
// (minimum 1).
func newDayCache(capacity int, prepare func(day int) (*DayData, error)) *dayCache {
	if capacity < 1 {
		capacity = 1
	}
	return &dayCache{
		prepare: prepare,
		cap:     capacity,
		entries: make(map[int]*dayCacheEntry),
	}
}

// farmCacheCap sizes a Farm run's day cache: one day per worker plus a
// spare so a worker rolling to the next day rarely evicts a day a peer
// is still reading, clamped to the number of days.
func farmCacheCap(days, workers int) int {
	c := workers + 1
	if c < 2 {
		c = 2
	}
	if c > days {
		c = days
	}
	return c
}

// get returns the prepared data for day d, preparing it if no other
// caller already has.
func (c *dayCache) get(d int) (*DayData, error) {
	c.mu.Lock()
	c.clock++
	if e, ok := c.entries[d]; ok {
		e.lastUsed = c.clock
		c.mu.Unlock()
		<-e.ready
		return e.dd, e.err
	}
	if len(c.entries) >= c.cap {
		victim, oldest := -1, int64(math.MaxInt64)
		for day, e := range c.entries {
			if e.done && e.lastUsed < oldest {
				victim, oldest = day, e.lastUsed
			}
		}
		if victim >= 0 {
			delete(c.entries, victim)
		}
	}
	e := &dayCacheEntry{ready: make(chan struct{}), lastUsed: c.clock}
	c.entries[d] = e
	if len(c.entries) > c.highWater {
		c.highWater = len(c.entries)
	}
	c.mu.Unlock()

	dd, err := c.prepare(d)

	c.mu.Lock()
	e.dd, e.err = dd, err
	e.done = true
	c.mu.Unlock()
	close(e.ready)
	return dd, err
}
