package backtest

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDayCacheSingleflightAndBound(t *testing.T) {
	var prepared atomic.Int64
	c := newDayCache(3, func(d int) (*DayData, error) {
		prepared.Add(1)
		return &DayData{}, nil
	})

	// Many goroutines racing over a few days: each day is prepared at
	// most once while it stays resident, and residency never exceeds
	// the capacity (all preparations here complete, so no in-flight
	// overshoot applies).
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < 3; d++ {
				if _, err := c.get(d); err != nil {
					t.Errorf("get(%d): %v", d, err)
				}
			}
		}()
	}
	wg.Wait()
	if got := prepared.Load(); got != 3 {
		t.Errorf("3 resident days prepared %d times, want 3", got)
	}
	if c.highWater > 3 {
		t.Errorf("high-water mark %d exceeds capacity 3", c.highWater)
	}

	// A fourth day must evict the least-recently-used completed day,
	// and re-requesting that day re-prepares it.
	if _, err := c.get(3); err != nil {
		t.Fatal(err)
	}
	if c.highWater > 3 {
		t.Errorf("high-water mark %d after eviction, want <= 3", c.highWater)
	}
	before := prepared.Load()
	if _, err := c.get(0); err != nil { // day 0 is the LRU victim
		t.Fatal(err)
	}
	if prepared.Load() != before+1 {
		t.Errorf("evicted day was not re-prepared (prepared %d -> %d)", before, prepared.Load())
	}
}

func TestDayCachePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	c := newDayCache(2, func(d int) (*DayData, error) {
		calls++
		if d == 1 {
			return nil, boom
		}
		return &DayData{}, nil
	})
	if _, err := c.get(1); !errors.Is(err, boom) {
		t.Fatalf("get(1) err = %v, want boom", err)
	}
	// The failed entry is cached like any other: same error, no retry
	// while resident.
	if _, err := c.get(1); !errors.Is(err, boom) {
		t.Fatalf("second get(1) err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("failed day prepared %d times while resident, want 1", calls)
	}
}

func TestFarmCacheCap(t *testing.T) {
	cases := []struct{ days, workers, want int }{
		{10, 1, 2},
		{10, 4, 5},
		{3, 8, 3},
		{1, 8, 1},
		{10, 0, 2},
	}
	for _, tc := range cases {
		if got := farmCacheCap(tc.days, tc.workers); got != tc.want {
			t.Errorf("farmCacheCap(%d, %d) = %d, want %d", tc.days, tc.workers, got, tc.want)
		}
	}
}
