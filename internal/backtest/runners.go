package backtest

import (
	"context"
	"fmt"

	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/metrics"
	"marketminer/internal/sched"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// RunPairDaySequential reproduces the Matlab Approach-2 unit of work:
// compute the correlation time series for one pair from scratch (no
// sharing with other pairs or parameter sets) and backtest one
// parameter set over one day. Its wall-clock time is the reproduction's
// analogue of the paper's "approximately 2 seconds … on a dual core
// Intel Pentium 4".
func RunPairDaySequential(p strategy.Params, dd *DayData, pairI, pairJ, day int) ([]strategy.Trade, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	x := dd.Returns[pairI]
	y := dd.Returns[pairJ]
	if len(x) < p.M {
		return nil, fmt.Errorf("backtest: %d returns < M=%d", len(x), p.M)
	}
	// Single-pair, single-worker engine run: numerically identical to
	// the shared series the integrated runner computes, but repeated
	// per (pair, parameter set, day) — Approach 2's wasted work.
	cs, err := corr.ComputeSeries(corr.EngineConfig{
		Type:    p.Ctype,
		M:       p.M,
		Workers: 1,
		Pairs:   []int{0},
	}, [][]float64{x, y})
	if err != nil {
		return nil, err
	}
	return strategy.RunDay(p, cs.Corr[0], cs.FirstS, dd.PG, pairI, pairJ, day)
}

// Farm runs the sweep as independent (pair, parameter-set) jobs on an
// SGE-like scheduler: every job recomputes its own correlation series
// for every day, exactly like the paper's Approach 2 job scripts. It
// produces the same Result as Run but does asymptotically more work —
// it exists as the baseline for the Section V performance comparison.
// Use small configurations; the full paper-scale sweep is exactly the
// workload the paper shows to be prohibitive this way.
func Farm(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := market.NewGenerator(cfg.Market)
	if err != nil {
		return nil, err
	}
	cfg.Market = gen.Config()
	uni := gen.Config().Universe
	levels := cfg.levels()
	types := cfg.types()
	days := gen.Config().Days

	res := &Result{Universe: uni, Levels: levels, Types: types, Days: days}
	numPairs := uni.NumPairs()
	numParams := len(levels) * len(types)
	res.Series = make([][]metrics.PairParamSeries, numPairs)
	for p := range res.Series {
		res.Series[p] = make([]metrics.PairParamSeries, numParams)
		for k := range res.Series[p] {
			res.Series[p][k].Daily = make([][]float64, days)
		}
	}

	// Day preparation is shared (it stands for the TAQ database);
	// everything downstream is per-job, as in Approach 2 where each
	// Matlab job re-derived its own correlations from the raw data.
	// Days are prepared lazily into a small bounded cache rather than
	// all up front: GenerateDay is seeded per day, so whichever worker
	// arrives first produces the same data any other would have.
	workers := cfg.workers()
	cache := newDayCache(farmCacheCap(days, workers), func(d int) (*DayData, error) {
		return PrepareDay(cfg, gen, d)
	})

	pairs := taq.AllPairs(uni.Len())
	pool := sched.New(workers)
	total := numPairs * numParams
	err = pool.Map(ctx, total, func(ctx context.Context, job int) error {
		pid := job / numParams
		k := job % numParams
		p := levels[k%len(levels)].WithType(types[k/len(levels)])
		pr := pairs[pid]
		for d := 0; d < days; d++ {
			dd, err := cache.get(d)
			if err != nil {
				return err
			}
			trades, err := RunPairDaySequential(p, dd, pr.I, pr.J, d)
			if err != nil {
				return err
			}
			res.Series[pid][k].Daily[d] = TradeReturns(cfg, trades)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for p := range res.Series {
		for k := range res.Series[p] {
			for d := range res.Series[p][k].Daily {
				res.TradeCount += int64(len(res.Series[p][k].Daily[d]))
			}
		}
	}
	return res, nil
}
