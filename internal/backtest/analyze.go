package backtest

import (
	"math"

	"marketminer/internal/corr"
	"marketminer/internal/metrics"
	"marketminer/internal/stats"
)

// Aggregate is one population of Section V: a per-pair performance
// value averaged over the 14 non-treatment parameter levels for a
// single correlation treatment, plus its descriptive statistics
// (a Table III/IV/V row set) and box-plot summary (a Figure 2 box).
type Aggregate struct {
	Type corr.Type
	// PerPair[p] is the pair-p sample value (e.g. average cumulative
	// monthly return); NaN entries are excluded from Stats/Box and
	// counted in Dropped.
	PerPair []float64
	Stats   stats.Describe
	Box     stats.BoxPlot
	Dropped int
}

// finalize computes the stats over the finite entries of PerPair.
func (a *Aggregate) finalize() {
	clean := make([]float64, 0, len(a.PerPair))
	for _, v := range a.PerPair {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			a.Dropped++
			continue
		}
		clean = append(clean, v)
	}
	a.Stats = stats.DescribeSample(clean)
	if len(clean) > 0 {
		if bp, err := stats.BoxPlotStats(clean); err == nil {
			a.Box = bp
		}
	}
}

// perPairMean averages measure(pair, flatParamIdx) over the levels of
// one treatment, skipping non-finite values; if every level is
// non-finite the pair's entry is NaN.
func (r *Result) perPairMean(typeIdx int, measure func(pair, param int) float64) []float64 {
	out := make([]float64, r.NumPairs())
	for p := range out {
		var sum float64
		var n int
		for li := range r.Levels {
			v := measure(p, r.ParamIndex(typeIdx, li))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			out[p] = math.NaN()
		} else {
			out[p] = sum / float64(n)
		}
	}
	return out
}

// aggregate builds one Aggregate per correlation treatment.
func (r *Result) aggregate(measure func(pair, param int) float64) []Aggregate {
	out := make([]Aggregate, len(r.Types))
	for ti, ct := range r.Types {
		a := Aggregate{Type: ct, PerPair: r.perPairMean(ti, measure)}
		a.finalize()
		out[ti] = a
	}
	return out
}

// DailyReturnOverPairs implements Equation (4): the total cumulative
// return over all pairs on day t using flat parameter index k,
// r^{t,k} = Π_{p∈Φ}(r_p^{t,k}+1) − 1.
func (r *Result) DailyReturnOverPairs(day, param int) float64 {
	prod := 1.0
	for p := range r.Series {
		prod *= 1 + metrics.DailyCumulative(r.Series[p][param].Daily[day])
	}
	return prod - 1
}

// DailyReturnOverParams implements Equation (5): the total cumulative
// return for pair p on day t over all parameter sets,
// r_p^t = Π_{k∈K}(r_p^{t,k}+1) − 1.
func (r *Result) DailyReturnOverParams(pair, day int) float64 {
	prod := 1.0
	for k := range r.Series[pair] {
		prod *= 1 + metrics.DailyCumulative(r.Series[pair][k].Daily[day])
	}
	return prod - 1
}

// CumulativeMonthlyReturns reproduces Table III: the per-pair average
// (over parameter levels) of the total cumulative return r_p^k,
// reported — like the paper — as a gross multiplier (+1, so 1.0 means
// flat), per correlation treatment.
func (r *Result) CumulativeMonthlyReturns() []Aggregate {
	return r.aggregate(func(p, k int) float64 {
		return r.Series[p][k].TotalCumulative() + 1
	})
}

// MaxDailyDrawdowns reproduces Table IV: the per-pair average of the
// Equation (7) maximum daily drawdown, as a fraction (Table IV prints
// it in percent).
func (r *Result) MaxDailyDrawdowns() []Aggregate {
	return r.aggregate(func(p, k int) float64 {
		return r.Series[p][k].MaxDailyDrawdown()
	})
}

// WinLossRatios reproduces Table V: the per-pair average of the
// Equation (8) win–loss ratio. Parameter sets whose ratio is undefined
// (no losing trades) are skipped in the per-pair average, mirroring
// how a ratio estimate is only defined for pairs that actually traded
// both ways.
func (r *Result) WinLossRatios() []Aggregate {
	return r.aggregate(func(p, k int) float64 {
		return r.Series[p][k].WinLossRatio()
	})
}
