package backtest

import (
	"encoding/json"
	"fmt"
	"io"

	"marketminer/internal/corr"
	"marketminer/internal/metrics"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// jsonResult is the serialised form of Result: the universe flattens
// to its symbol list and correlation types to their names, so the file
// is self-describing and stable across refactors.
type jsonResult struct {
	Symbols    []string                `json:"symbols"`
	Levels     []strategy.Params       `json:"levels"`
	Types      []string                `json:"types"`
	Days       int                     `json:"days"`
	TradeCount int64                   `json:"trade_count"`
	Series     [][]jsonPairParamSeries `json:"series"`
}

type jsonPairParamSeries struct {
	Daily [][]float64 `json:"daily"`
}

// SaveJSON writes the sweep result to w.
func SaveJSON(w io.Writer, r *Result) error {
	jr := jsonResult{
		Symbols:    r.Universe.Symbols(),
		Levels:     r.Levels,
		Days:       r.Days,
		TradeCount: r.TradeCount,
	}
	for _, t := range r.Types {
		jr.Types = append(jr.Types, t.String())
	}
	jr.Series = make([][]jsonPairParamSeries, len(r.Series))
	for p := range r.Series {
		jr.Series[p] = make([]jsonPairParamSeries, len(r.Series[p]))
		for k := range r.Series[p] {
			jr.Series[p][k] = jsonPairParamSeries{Daily: r.Series[p][k].Daily}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jr)
}

// LoadJSON reads a sweep result written by SaveJSON.
func LoadJSON(r io.Reader) (*Result, error) {
	var jr jsonResult
	if err := json.NewDecoder(r).Decode(&jr); err != nil {
		return nil, fmt.Errorf("backtest: decode result: %w", err)
	}
	uni, err := taq.NewUniverse(jr.Symbols)
	if err != nil {
		return nil, err
	}
	res := &Result{Universe: uni, Levels: jr.Levels, Days: jr.Days, TradeCount: jr.TradeCount}
	for _, name := range jr.Types {
		t, err := corr.ParseType(name)
		if err != nil {
			return nil, err
		}
		res.Types = append(res.Types, t)
	}
	if len(jr.Series) != uni.NumPairs() {
		return nil, fmt.Errorf("backtest: %d pair series for %d pairs", len(jr.Series), uni.NumPairs())
	}
	wantParams := len(jr.Levels) * len(jr.Types)
	res.Series = make([][]metrics.PairParamSeries, len(jr.Series))
	for p := range jr.Series {
		if len(jr.Series[p]) != wantParams {
			return nil, fmt.Errorf("backtest: pair %d has %d param series, want %d", p, len(jr.Series[p]), wantParams)
		}
		res.Series[p] = make([]metrics.PairParamSeries, wantParams)
		for k := range jr.Series[p] {
			res.Series[p][k] = metrics.PairParamSeries{Daily: jr.Series[p][k].Daily}
		}
	}
	return res, nil
}
