package backtest

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/metrics"
	"marketminer/internal/portfolio"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// tinyConfig: 4 stocks, 2 days, 2 levels × 2 types — small enough for
// unit tests, large enough to exercise every code path.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	u, err := taq.NewUniverse([]string{"A1", "A2", "B1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	lvl := strategy.DefaultParams()
	lvl.M = 30
	lvl.W = 20
	lvl.RT = 20
	lvl.D = 0.005
	lvl2 := lvl
	lvl2.HP = 40
	return Config{
		Market: market.Config{
			Universe:         u,
			Seed:             7,
			Days:             2,
			QuoteRate:        0.25,
			NumSectors:       2,
			BreakdownsPerDay: 8,
			BreakdownMag:     0.006,
			Contamination:    0.002,
		},
		Levels:  []strategy.Params{lvl, lvl2},
		Types:   []corr.Type{corr.Pearson, corr.Maronna},
		Workers: 4,
	}
}

func TestRunIntegratedSweep(t *testing.T) {
	cfg := tinyConfig(t)
	var progressCalls int
	cfg.Progress = func(day, total, trades int) { progressCalls++ }
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPairs() != 6 {
		t.Errorf("pairs = %d, want 6", res.NumPairs())
	}
	if res.NumParams() != 4 {
		t.Errorf("params = %d, want 4", res.NumParams())
	}
	if res.Days != 2 {
		t.Errorf("days = %d", res.Days)
	}
	if res.TradeCount == 0 {
		t.Fatal("sweep produced no trades — breakdown events should trigger the strategy")
	}
	if progressCalls != 2 {
		t.Errorf("progress called %d times, want 2", progressCalls)
	}
	// Every trade return must be finite and sane.
	for p := range res.Series {
		for k := range res.Series[p] {
			for _, day := range res.Series[p][k].Daily {
				for _, r := range day {
					if math.IsNaN(r) || math.Abs(r) > 0.5 {
						t.Fatalf("implausible trade return %v", r)
					}
				}
			}
		}
	}
}

func TestParamIndexRoundTrip(t *testing.T) {
	cfg := tinyConfig(t)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ti, ct := range res.Types {
		for li := range res.Levels {
			idx := res.ParamIndex(ti, li)
			p := res.Param(idx)
			if p.Ctype != ct {
				t.Errorf("Param(%d).Ctype = %v, want %v", idx, p.Ctype, ct)
			}
			if p.HP != res.Levels[li].HP {
				t.Errorf("Param(%d).HP = %d, want %d", idx, p.HP, res.Levels[li].HP)
			}
		}
	}
}

func TestFarmMatchesIntegratedTradeShape(t *testing.T) {
	cfg := tinyConfig(t)
	integrated, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	farmed, err := Farm(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both runners use the same engine computation (the farm just
	// repeats it per pair), so results must be bit-identical.
	if integrated.TradeCount == 0 {
		t.Fatal("no trades to compare")
	}
	if integrated.TradeCount != farmed.TradeCount {
		t.Fatalf("trade counts diverge: integrated=%d farm=%d",
			integrated.TradeCount, farmed.TradeCount)
	}
	for p := range integrated.Series {
		for k := range integrated.Series[p] {
			a := integrated.Series[p][k].Flat()
			b := farmed.Series[p][k].Flat()
			if len(a) != len(b) {
				t.Fatalf("pair %d param %d: %d vs %d trades", p, k, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("pair %d param %d trade %d: %v vs %v", p, k, i, a[i], b[i])
				}
			}
		}
	}
}

func TestRunPairDaySequential(t *testing.T) {
	cfg := tinyConfig(t)
	gen, err := market.NewGenerator(cfg.Market)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := PrepareDay(cfg, gen, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Levels[0].WithType(corr.Pearson)
	trades, err := RunPairDaySequential(p, dd, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trades {
		if tr.PairI != 0 || tr.PairJ != 1 || tr.Day != 0 {
			t.Errorf("trade metadata wrong: %+v", tr)
		}
	}
	// Errors: bad params and short data.
	bad := p
	bad.M = 0
	if _, err := RunPairDaySequential(bad, dd, 0, 1, 0); err == nil {
		t.Error("invalid params should error")
	}
	bad = p
	bad.M = len(dd.Returns[0]) + 1
	if _, err := RunPairDaySequential(bad, dd, 0, 1, 0); err == nil {
		t.Error("oversized window should error")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := tinyConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mixed := cfg
	l2 := cfg.Levels[1]
	l2.DeltaS = 60
	mixed.Levels = []strategy.Params{cfg.Levels[0], l2}
	if err := mixed.Validate(); err == nil {
		t.Error("mixed ∆s should fail validation")
	}
	badLvl := cfg
	l3 := cfg.Levels[0]
	l3.L = 5
	badLvl.Levels = []strategy.Params{l3}
	if err := badLvl.Validate(); err == nil {
		t.Error("invalid level should fail validation")
	}
	empty := cfg
	empty.Levels = []strategy.Params{}
	if err := empty.Validate(); err == nil {
		t.Error("empty levels should fail validation")
	}
	noTypes := cfg
	noTypes.Types = []corr.Type{}
	if err := noTypes.Validate(); err == nil {
		t.Error("empty types should fail validation")
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := tinyConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); err == nil {
		t.Error("cancelled context should abort the sweep")
	}
}

func TestAggregates(t *testing.T) {
	cfg := tinyConfig(t)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rets := res.CumulativeMonthlyReturns()
	if len(rets) != len(cfg.Types) {
		t.Fatalf("aggregates = %d, want %d", len(rets), len(cfg.Types))
	}
	for _, a := range rets {
		if len(a.PerPair) != res.NumPairs() {
			t.Errorf("%v: PerPair = %d", a.Type, len(a.PerPair))
		}
		// Gross returns should be near 1 (intra-day strategy over 2 days).
		if a.Stats.N > 0 && (a.Stats.Mean < 0.5 || a.Stats.Mean > 2) {
			t.Errorf("%v: mean gross return = %v, implausible", a.Type, a.Stats.Mean)
		}
	}
	mdd := res.MaxDailyDrawdowns()
	for _, a := range mdd {
		for _, v := range a.PerPair {
			if v < 0 {
				t.Errorf("%v: negative drawdown %v", a.Type, v)
			}
		}
	}
	wl := res.WinLossRatios()
	for _, a := range wl {
		for _, v := range a.PerPair {
			if !math.IsNaN(v) && v < 0 {
				t.Errorf("%v: negative win-loss ratio %v", a.Type, v)
			}
		}
		// Box plot quartiles must be ordered when defined.
		if a.Stats.N > 0 && (a.Box.Q1 > a.Box.Median || a.Box.Median > a.Box.Q3) {
			t.Errorf("%v: box plot disordered: %+v", a.Type, a.Box)
		}
	}
}

func TestAggregateDropsNonFinite(t *testing.T) {
	a := Aggregate{PerPair: []float64{1, 2, math.NaN(), math.Inf(1), 3}}
	a.finalize()
	if a.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", a.Dropped)
	}
	if a.Stats.N != 3 {
		t.Errorf("Stats.N = %d, want 3", a.Stats.N)
	}
	if a.Stats.Mean != 2 {
		t.Errorf("Stats.Mean = %v, want 2", a.Stats.Mean)
	}
}

func TestRunWithDefaults(t *testing.T) {
	// A zero-ish config gets defaults (61 stocks would be slow, so
	// only exercise validation and the default-filling path).
	cfg := Config{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
	if len(cfg.levels()) != 14 {
		t.Errorf("default levels = %d, want 14", len(cfg.levels()))
	}
	if len(cfg.types()) != 3 {
		t.Errorf("default types = %d, want 3", len(cfg.types()))
	}
}

func TestSaveLoadJSONRoundTrip(t *testing.T) {
	cfg := tinyConfig(t)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TradeCount != res.TradeCount || back.Days != res.Days {
		t.Errorf("metadata mismatch: %+v vs %+v", back.TradeCount, res.TradeCount)
	}
	if back.Universe.Len() != res.Universe.Len() {
		t.Error("universe mismatch")
	}
	if len(back.Types) != len(res.Types) || back.Types[0] != res.Types[0] {
		t.Error("types mismatch")
	}
	for p := range res.Series {
		for k := range res.Series[p] {
			a := res.Series[p][k].Flat()
			b := back.Series[p][k].Flat()
			if len(a) != len(b) {
				t.Fatalf("pair %d param %d trade counts differ", p, k)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("pair %d param %d trade %d differs", p, k, i)
				}
			}
		}
	}
	// Aggregates from the reloaded result must match.
	wantAgg := res.CumulativeMonthlyReturns()
	gotAgg := back.CumulativeMonthlyReturns()
	for i := range wantAgg {
		if wantAgg[i].Stats.Mean != gotAgg[i].Stats.Mean {
			t.Errorf("aggregate %d mean differs", i)
		}
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := LoadJSON(strings.NewReader(`{"symbols":["A","B","C"],"levels":[],"types":["Pearson"],"series":[[]]}`)); err == nil {
		t.Error("inconsistent pair count should error")
	}
	if _, err := LoadJSON(strings.NewReader(`{"symbols":["A","B"],"levels":[],"types":["bogus"],"series":[]}`)); err == nil {
		t.Error("unknown type should error")
	}
}

func TestEquation4And5Aggregates(t *testing.T) {
	cfg := tinyConfig(t)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Equation (4): compound over pairs must equal the direct product.
	for k := 0; k < res.NumParams(); k++ {
		prod := 1.0
		for p := 0; p < res.NumPairs(); p++ {
			prod *= 1 + metrics.DailyCumulative(res.Series[p][k].Daily[0])
		}
		got := res.DailyReturnOverPairs(0, k)
		if math.Abs(got-(prod-1)) > 1e-12 {
			t.Errorf("eq4 param %d: %v vs %v", k, got, prod-1)
		}
	}
	// Equation (5): compound over parameter sets.
	for p := 0; p < res.NumPairs(); p++ {
		prod := 1.0
		for k := 0; k < res.NumParams(); k++ {
			prod *= 1 + metrics.DailyCumulative(res.Series[p][k].Daily[1])
		}
		got := res.DailyReturnOverParams(p, 1)
		if math.Abs(got-(prod-1)) > 1e-12 {
			t.Errorf("eq5 pair %d: %v vs %v", p, got, prod-1)
		}
	}
}

func TestCostsReduceReturns(t *testing.T) {
	cfg := tinyConfig(t)
	free, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	costly := cfg
	costly.Costs = portfolio.CostModel{Commission: 0.005, SpreadCross: 1}
	paid, err := Run(context.Background(), costly)
	if err != nil {
		t.Fatal(err)
	}
	if paid.TradeCount != free.TradeCount {
		t.Fatalf("costs must not change trade decisions: %d vs %d", paid.TradeCount, free.TradeCount)
	}
	var freeSum, paidSum float64
	var n int
	for p := range free.Series {
		for k := range free.Series[p] {
			a := free.Series[p][k].Flat()
			b := paid.Series[p][k].Flat()
			for i := range a {
				freeSum += a[i]
				paidSum += b[i]
				if b[i] > a[i]+1e-12 {
					t.Fatalf("net return above gross: %v > %v", b[i], a[i])
				}
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no trades")
	}
	if paidSum >= freeSum {
		t.Errorf("total net %v should be below gross %v", paidSum, freeSum)
	}
}

func TestConfigValidatesCosts(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Costs = portfolio.CostModel{Commission: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative costs should fail validation")
	}
}
