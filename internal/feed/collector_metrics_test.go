package feed

import (
	"context"
	"net"
	"testing"
	"time"

	"marketminer/internal/metrics"
	"marketminer/internal/taq"
)

// scriptedSession answers one collector connection by hand: read the
// Subscribe, send a Hello, then run the supplied script against the
// encoder. It gives gap tests precise control over sequence numbers,
// which the real Server (correct by construction) never misnumbers.
func scriptedSession(t *testing.T, conn net.Conn, u *taq.Universe, script func(enc *Encoder, from uint64)) {
	t.Helper()
	defer conn.Close()
	dec := NewDecoder(conn)
	f, err := dec.Read()
	if err != nil {
		t.Errorf("scripted server: read subscribe: %v", err)
		return
	}
	sub, ok := f.(*Subscribe)
	if !ok {
		t.Errorf("scripted server: expected subscribe, got %T", f)
		return
	}
	symbols := make([]string, u.Len())
	for i := range symbols {
		symbols[i] = u.Symbol(i)
	}
	enc := NewEncoder(conn, u)
	if err := enc.WriteHello(&Hello{Version: ProtocolVersion, Symbols: symbols}); err != nil {
		t.Errorf("scripted server: hello: %v", err)
		return
	}
	script(enc, sub.From)
}

// TestCollectorGapResumeAndReconnectMetrics forces a sequence gap on
// the wire and checks both the stats struct and the process-wide
// metrics mirror: the gap triggers exactly one resume, the second
// session counts as a reconnect, and no quote is lost or duplicated.
func TestCollectorGapResumeAndReconnectMetrics(t *testing.T) {
	u := testUniverse(t)
	quotes := testQuotes(u, 6, 0)
	batch := func(seq uint64) *Batch {
		i := int(seq-1) * 2
		return &Batch{Seq: seq, Day: 0, Quotes: quotes[i : i+2]}
	}

	gapsBefore := metrics.Counter("feed.collector.gap_resumes").Value()
	reconBefore := metrics.Counter("feed.collector.reconnects").Value()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		// Session 1: seq 1 then seq 3 — a hole the collector must
		// refuse to paper over.
		conn, err := l.Accept()
		if err != nil {
			t.Errorf("accept 1: %v", err)
			return
		}
		scriptedSession(t, conn, u, func(enc *Encoder, from uint64) {
			if from != 0 {
				t.Errorf("first subscribe from=%d, want 0", from)
			}
			enc.WriteBatch(batch(1))
			enc.WriteBatch(batch(3))
			// Collector disconnects on the gap; wait for it rather than
			// racing the close.
			NewDecoder(conn).Read()
		})
		// Session 2: resume after the last delivered batch, complete
		// the stream cleanly.
		conn, err = l.Accept()
		if err != nil {
			t.Errorf("accept 2: %v", err)
			return
		}
		scriptedSession(t, conn, u, func(enc *Encoder, from uint64) {
			if from != 1 {
				t.Errorf("resume subscribe from=%d, want 1", from)
			}
			enc.WriteBatch(batch(2))
			enc.WriteBatch(batch(3))
			enc.WriteEnd(&End{Seq: 3})
		})
	}()

	c := NewCollector(CollectorConfig{
		Addr:             l.Addr().String(),
		InitialBackoff:   time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
		JitterSeed:       1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, err := runCollector(ctx, c)()
	if err != nil {
		t.Fatalf("collector run: %v", err)
	}
	assertSameQuotes(t, got, quotes)
	<-serverDone

	st := c.Stats()
	if st.Gaps != 1 {
		t.Errorf("stats gaps = %d, want 1", st.Gaps)
	}
	if st.Connects != 2 || st.Reconnects != 1 {
		t.Errorf("connects = %d reconnects = %d, want 2 and 1", st.Connects, st.Reconnects)
	}
	if st.Duplicates != 0 {
		t.Errorf("duplicates = %d, want 0 (resume requested the hole)", st.Duplicates)
	}
	if d := metrics.Counter("feed.collector.gap_resumes").Value() - gapsBefore; d != 1 {
		t.Errorf("gap_resumes counter moved by %d, want 1", d)
	}
	if d := metrics.Counter("feed.collector.reconnects").Value() - reconBefore; d != 1 {
		t.Errorf("reconnects counter moved by %d, want 1", d)
	}
}
