package feed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"sync"

	"marketminer/internal/metrics"
	"marketminer/internal/taq"
)

// DialFunc establishes one connection to the feed server. Tests inject
// flaky implementations; the default dials CollectorConfig.Addr.
type DialFunc func(ctx context.Context) (net.Conn, error)

// CollectorConfig tunes a Collector. Zero fields take the documented
// defaults.
type CollectorConfig struct {
	// Addr is the feed server address (used by the default dialer).
	Addr string
	// Dial overrides the transport; when nil a TCP dialer to Addr is
	// used.
	Dial DialFunc
	// Buffer is the depth of the outgoing quote channel (default 1024).
	Buffer int
	// InitialBackoff is the reconnect delay after the first failure
	// (default 50ms); consecutive failures grow it by BackoffFactor
	// (default 2) up to MaxBackoff (default 5s). The applied delay is
	// jittered uniformly in [d/2, d] to decorrelate thundering-herd
	// reconnects across collectors.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	BackoffFactor  float64
	// JitterSeed seeds the backoff jitter rng (0 = deterministic
	// default seed; tests rely on reproducible schedules).
	JitterSeed int64
	// Jitter, when non-nil, replaces the JitterSeed-derived rng.
	// Collectors never share rng state (each owns a private instance,
	// guarded by the collector mutex), so reconnect schedules stay
	// deterministic and race-free; inject a seeded rng here to pin a
	// test's exact backoff sequence.
	Jitter *rand.Rand
	// Sleep, when non-nil, replaces the real backoff wait. It must
	// return false iff ctx was cancelled before the delay elapsed.
	// Tests inject a recording fake so reconnect schedules can be
	// asserted without wall-clock time.
	Sleep func(ctx context.Context, d time.Duration) bool
	// HeartbeatTimeout is the read deadline per frame: a connection
	// silent for longer (no batches, no heartbeats) is presumed dead
	// and redialed (default 15s). Must exceed the server's Heartbeat
	// interval.
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds consecutive connection attempts that fail
	// before Run gives up (0 = retry forever, until ctx cancels).
	MaxAttempts int
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Dial == nil {
		addr := c.Addr
		d := &net.Dialer{}
		c.Dial = func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.Buffer <= 0 {
		c.Buffer = 1024
	}
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 15 * time.Second
	}
	if c.Jitter == nil {
		c.Jitter = rand.New(rand.NewSource(c.JitterSeed))
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return true
			case <-ctx.Done():
				return false
			}
		}
	}
	return c
}

// CollectorStats is a snapshot of collector counters. Gaps and
// Reconnects are mirrored into the process-wide metrics registry as
// "feed.collector.gap_resumes" and "feed.collector.reconnects", so
// operators see resume churn without scraping logs.
type CollectorStats struct {
	Connects        int // sessions that completed a handshake
	Reconnects      int // handshakes after the first (resumed sessions)
	DialFailures    int // failed connection attempts
	Disconnects     int // sessions that ended before the End frame
	Batches         int // batches delivered downstream
	Quotes          int // quotes delivered downstream
	Duplicates      int // quotes skipped because their batch was already seen
	Gaps            int // sequence holes observed (forces a resume)
	OrderViolations int // quotes breaking (Day, SeqTime) monotonicity
	LastSeq         uint64
	Backoffs        []time.Duration // applied reconnect delays, in order
}

// errEndOfFeed signals the server's clean End frame.
var errEndOfFeed = errors.New("feed: end of stream")

// ErrUniverseChanged is returned when a reconnected session advertises
// a different symbol table than the first; resuming a sequence-
// numbered stream across universes would mis-map every quote.
var ErrUniverseChanged = errors.New("feed: server universe changed across reconnect")

// Collector is the resilient client side of the feed: it maintains a
// subscription to a feed server, transparently reconnecting with
// exponential backoff and resuming from the last delivered sequence
// number, and exposes the stream as a quote channel — the same
// contract the in-process pipeline source consumes.
//
// Resilience properties, each covered by tests:
//   - reconnect with exponential backoff + jitter on dial failure or
//     mid-stream disconnect;
//   - zero quote loss and zero duplicates across reconnects, enforced
//     by batch sequence numbers (resume-from-seq + skip-replayed);
//   - heartbeat timeouts: a silent connection is redialed;
//   - (Day, SeqTime) monotonicity validation via taq.OrderChecker.
type Collector struct {
	cfg    CollectorConfig
	quotes chan taq.Quote
	rng    *rand.Rand

	uniReady chan struct{}
	uni      *taq.Universe

	closeOnce sync.Once

	mu      sync.Mutex
	st      CollectorStats
	lastSeq uint64
	order   taq.OrderChecker
}

// NewCollector returns a Collector; call Run to start it.
func NewCollector(cfg CollectorConfig) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:      cfg,
		quotes:   make(chan taq.Quote, cfg.Buffer),
		rng:      cfg.Jitter,
		uniReady: make(chan struct{}),
	}
}

// Quotes returns the delivery channel. It is closed when Run returns:
// after the server's End frame (clean end of stream), on context
// cancellation, or when MaxAttempts is exhausted.
func (c *Collector) Quotes() <-chan taq.Quote { return c.quotes }

// Universe blocks until the first Hello frame has been received and
// returns the server's symbol table as a Universe.
func (c *Collector) Universe(ctx context.Context) (*taq.Universe, error) {
	select {
	case <-c.uniReady:
		return c.uni, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the collector counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.LastSeq = c.lastSeq
	st.OrderViolations = c.order.Violations()
	st.Backoffs = append([]time.Duration(nil), c.st.Backoffs...)
	return st
}

// Run drives the collector until the stream ends cleanly (returns
// nil), the context is cancelled (returns ctx.Err()), or MaxAttempts
// consecutive connection attempts fail (returns the last error). The
// quote channel is closed in every case. Run must be called once.
func (c *Collector) Run(ctx context.Context) error {
	defer c.closeOnce.Do(func() { close(c.quotes) })
	attempt := 0 // consecutive failures without progress
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := c.cfg.Dial(ctx)
		if err != nil {
			c.mu.Lock()
			c.st.DialFailures++
			c.mu.Unlock()
			attempt++
			if c.cfg.MaxAttempts > 0 && attempt >= c.cfg.MaxAttempts {
				return fmt.Errorf("feed: giving up after %d attempts: %w", attempt, err)
			}
			if !c.sleep(ctx, attempt) {
				return ctx.Err()
			}
			continue
		}
		progressed, err := c.session(ctx, conn)
		if errors.Is(err, errEndOfFeed) {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrUniverseChanged) {
			return err
		}
		c.mu.Lock()
		c.st.Disconnects++
		c.mu.Unlock()
		if progressed {
			attempt = 0 // the stream moved; start backoff over
		}
		attempt++
		if c.cfg.MaxAttempts > 0 && attempt >= c.cfg.MaxAttempts {
			return fmt.Errorf("feed: giving up after %d attempts: %w", attempt, err)
		}
		if !c.sleep(ctx, attempt) {
			return ctx.Err()
		}
	}
}

// sleep applies the jittered exponential backoff for the given
// consecutive-failure count; false means the context was cancelled.
func (c *Collector) sleep(ctx context.Context, attempt int) bool {
	d := c.cfg.InitialBackoff
	for i := 1; i < attempt; i++ {
		d = time.Duration(float64(d) * c.cfg.BackoffFactor)
		if d >= c.cfg.MaxBackoff {
			d = c.cfg.MaxBackoff
			break
		}
	}
	c.mu.Lock()
	// Jitter uniformly in [d/2, d].
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.st.Backoffs = append(c.st.Backoffs, d)
	c.mu.Unlock()
	return c.cfg.Sleep(ctx, d)
}

// session runs one connection: subscribe at the resume point, validate
// the Hello, then deliver batches until the stream ends or breaks.
// progressed reports whether at least one new batch arrived.
func (c *Collector) session(ctx context.Context, conn net.Conn) (progressed bool, err error) {
	defer conn.Close()
	// Unblock conn reads when the context dies.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	enc := NewEncoder(conn, nil)
	conn.SetWriteDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
	c.mu.Lock()
	from := c.lastSeq
	c.mu.Unlock()
	if err := enc.WriteSubscribe(&Subscribe{From: from}); err != nil {
		return false, fmt.Errorf("feed: subscribe: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})

	dec := NewDecoder(conn)
	readFrame := func() (Frame, error) {
		conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
		return dec.Read()
	}

	f, err := readFrame()
	if err != nil {
		return false, fmt.Errorf("feed: hello: %w", err)
	}
	hello, ok := f.(*Hello)
	if !ok {
		return false, protoErrf("expected hello, got %s", f.frameType())
	}
	if hello.Version != ProtocolVersion {
		return false, protoErrf("server speaks version %d, want %d", hello.Version, ProtocolVersion)
	}
	if err := c.acceptUniverse(hello.Symbols); err != nil {
		return false, err
	}
	c.mu.Lock()
	c.st.Connects++
	if c.st.Connects > 1 {
		c.st.Reconnects++
		metrics.Counter("feed.collector.reconnects").Inc()
	}
	c.mu.Unlock()

	for {
		f, err := readFrame()
		if err != nil {
			return progressed, err
		}
		switch fr := f.(type) {
		case *Batch:
			c.mu.Lock()
			switch {
			case fr.Seq <= c.lastSeq:
				// Replayed by the resume protocol; already delivered.
				c.st.Duplicates += len(fr.Quotes)
				c.mu.Unlock()
				continue
			case fr.Seq != c.lastSeq+1:
				c.st.Gaps++
				metrics.Counter("feed.collector.gap_resumes").Inc()
				c.mu.Unlock()
				// Force a reconnect; the fresh Subscribe re-requests
				// the hole, so the gap costs latency, not data.
				return progressed, protoErrf("sequence gap: got %d after %d", fr.Seq, c.lastSeq)
			}
			for _, q := range fr.Quotes {
				c.order.Check(q)
			}
			c.lastSeq = fr.Seq
			c.st.Batches++
			c.st.Quotes += len(fr.Quotes)
			c.mu.Unlock()
			for _, q := range fr.Quotes {
				select {
				case c.quotes <- q:
				case <-ctx.Done():
					return progressed, ctx.Err()
				}
			}
			progressed = true
		case *Heartbeat:
			// Liveness only; the read deadline was already refreshed.
		case *End:
			c.mu.Lock()
			behind := fr.Seq > c.lastSeq
			c.mu.Unlock()
			if behind {
				// End arrived but we hold an incomplete prefix (can
				// happen if the server trimmed our resume point);
				// reconnect to fetch the remainder.
				return progressed, protoErrf("end at seq %d but only %d delivered", fr.Seq, c.lastSeq)
			}
			return progressed, errEndOfFeed
		default:
			return progressed, protoErrf("unexpected frame %s", f.frameType())
		}
	}
}

// acceptUniverse installs the symbol table on first contact and
// verifies it is unchanged on reconnects.
func (c *Collector) acceptUniverse(symbols []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.uni == nil {
		u, err := taq.NewUniverse(symbols)
		if err != nil {
			return fmt.Errorf("feed: bad server universe: %w", err)
		}
		c.uni = u
		close(c.uniReady)
		return nil
	}
	if len(symbols) != c.uni.Len() {
		return ErrUniverseChanged
	}
	for i, s := range symbols {
		if c.uni.Symbol(i) != s {
			return ErrUniverseChanged
		}
	}
	return nil
}
