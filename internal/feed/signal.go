package feed

import (
	"encoding/binary"
	"math"
)

// Broker extension frames. The signal broker speaks the same
// length-prefixed CRC-framed wire as the quote feed, with five extra
// frame types: GroupSub (client → broker: join a consumer group with
// per-partition resume offsets), Assign (broker → client: the epoch-
// stamped partition assignment, re-sent on every rebalance), Snapshot
// (broker → client: compacted latest-signal-per-pair state of one
// partition at a known end offset), Delta (broker → client: new
// signals in offset order) and Ack (client → broker: commit offset for
// one partition). Heartbeat and End are shared with the quote feed.
const (
	FrameGroupSub FrameType = 6
	FrameAssign   FrameType = 7
	FrameSnapshot FrameType = 8
	FrameDelta    FrameType = 9
	FrameAck      FrameType = 10
)

// Signal is one published pair signal on the wire. Offset is the
// per-partition log position (starting at 1, contiguous); Pair is the
// canonical pair id; S the grid interval; Kind a broker-defined
// discriminant (update / diverge / revert); C and Cbar the correlation
// and its W-average at S.
type Signal struct {
	Offset uint64
	Pair   uint32
	S      uint32
	Kind   uint8
	C      float64
	Cbar   float64
}

const signalWireSize = 8 + 4 + 4 + 1 + 8 + 8

// MaxSignalRecs bounds the signals carried by one Snapshot or Delta
// frame.
const MaxSignalRecs = (MaxFrameSize - 16) / signalWireSize

// PartitionOffset is a (partition, offset) resume point inside a
// GroupSub frame.
type PartitionOffset struct {
	Partition uint16
	Offset    uint64
}

// GroupSub is the broker client's subscription frame: consumer group
// and member names, explicit per-partition resume offsets (the last
// offset the client has durably seen), and a FromStart flag. A
// partition with no offset and no FromStart is served compacted
// state (Snapshot) then deltas; FromStart forces a full replay from
// offset 1 instead — the mode a deterministic audit consumer wants.
type GroupSub struct {
	Group     string
	Member    string
	FromStart bool
	Offsets   []PartitionOffset
}

// Assign tells a member its current partition set. Epoch increments on
// every group membership or processor-lease change, so a client can
// count rebalances and detect stale assignments.
type Assign struct {
	Epoch         uint64
	NumPartitions uint16
	Partitions    []uint16
}

// SnapshotFrame carries the compacted state of one partition: the
// latest signal per pair (ascending pair id) as of EndOffset. Deltas
// for the partition then continue from EndOffset+1.
type SnapshotFrame struct {
	Partition uint16
	EndOffset uint64
	Latest    []Signal
}

// DeltaFrame carries new signals for one partition in strictly
// ascending contiguous offset order. Sealed marks the end of the
// partition's stream (no further signals will ever follow).
type DeltaFrame struct {
	Partition uint16
	Sealed    bool
	Signals   []Signal
}

// AckFrame commits a member's delivered offset for one partition.
type AckFrame struct {
	Partition uint16
	Offset    uint64
}

func (*GroupSub) frameType() FrameType      { return FrameGroupSub }
func (*Assign) frameType() FrameType        { return FrameAssign }
func (*SnapshotFrame) frameType() FrameType { return FrameSnapshot }
func (*DeltaFrame) frameType() FrameType    { return FrameDelta }
func (*AckFrame) frameType() FrameType      { return FrameAck }

// WriteGroupSub emits a consumer-group subscription.
func (e *Encoder) WriteGroupSub(g *GroupSub) error {
	if len(g.Group) > maxSymbolLen || len(g.Member) > maxSymbolLen {
		return protoErrf("group or member name too long")
	}
	if len(g.Offsets) > math.MaxUint16 {
		return protoErrf("group-sub carries %d offsets", len(g.Offsets))
	}
	e.begin(FrameGroupSub)
	e.putU16(uint16(len(g.Group)))
	e.buf = append(e.buf, g.Group...)
	e.putU16(uint16(len(g.Member)))
	e.buf = append(e.buf, g.Member...)
	if g.FromStart {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
	e.putU16(uint16(len(g.Offsets)))
	for _, po := range g.Offsets {
		e.putU16(po.Partition)
		e.putU64(po.Offset)
	}
	return e.finish()
}

// WriteAssign emits a partition assignment.
func (e *Encoder) WriteAssign(a *Assign) error {
	if len(a.Partitions) > math.MaxUint16 {
		return protoErrf("assign carries %d partitions", len(a.Partitions))
	}
	e.begin(FrameAssign)
	e.putU64(a.Epoch)
	e.putU16(a.NumPartitions)
	e.putU16(uint16(len(a.Partitions)))
	for _, p := range a.Partitions {
		e.putU16(p)
	}
	return e.finish()
}

func (e *Encoder) putSignal(s *Signal) {
	e.putU64(s.Offset)
	e.putU32(s.Pair)
	e.putU32(s.S)
	e.buf = append(e.buf, s.Kind)
	e.putF64(s.C)
	e.putF64(s.Cbar)
}

// WriteSnapshot emits a partition's compacted state.
func (e *Encoder) WriteSnapshot(s *SnapshotFrame) error {
	if len(s.Latest) > MaxSignalRecs {
		return protoErrf("snapshot of %d signals exceeds limit %d", len(s.Latest), MaxSignalRecs)
	}
	e.begin(FrameSnapshot)
	e.putU16(s.Partition)
	e.putU64(s.EndOffset)
	e.putU32(uint32(len(s.Latest)))
	for i := range s.Latest {
		e.putSignal(&s.Latest[i])
	}
	return e.finish()
}

// WriteDelta emits new signals for one partition.
func (e *Encoder) WriteDelta(d *DeltaFrame) error {
	if len(d.Signals) > MaxSignalRecs {
		return protoErrf("delta of %d signals exceeds limit %d", len(d.Signals), MaxSignalRecs)
	}
	e.begin(FrameDelta)
	e.putU16(d.Partition)
	if d.Sealed {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
	e.putU32(uint32(len(d.Signals)))
	for i := range d.Signals {
		e.putSignal(&d.Signals[i])
	}
	return e.finish()
}

// WriteAck emits a commit offset.
func (e *Encoder) WriteAck(a *AckFrame) error {
	e.begin(FrameAck)
	e.putU16(a.Partition)
	e.putU64(a.Offset)
	return e.finish()
}

func getSignal(p []byte) Signal {
	return Signal{
		Offset: binary.LittleEndian.Uint64(p),
		Pair:   binary.LittleEndian.Uint32(p[8:]),
		S:      binary.LittleEndian.Uint32(p[12:]),
		Kind:   p[16],
		C:      math.Float64frombits(binary.LittleEndian.Uint64(p[17:])),
		Cbar:   math.Float64frombits(binary.LittleEndian.Uint64(p[25:])),
	}
}

func decodeGroupSub(p []byte) (*GroupSub, error) {
	g := &GroupSub{}
	str := func(what string) (string, error) {
		if len(p) < 2 {
			return "", protoErrf("group-sub truncated before %s", what)
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return "", protoErrf("group-sub %s truncated", what)
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	var err error
	if g.Group, err = str("group"); err != nil {
		return nil, err
	}
	if g.Member, err = str("member"); err != nil {
		return nil, err
	}
	if len(p) < 3 {
		return nil, protoErrf("group-sub truncated before offsets")
	}
	switch p[0] {
	case 0:
	case 1:
		g.FromStart = true
	default:
		return nil, protoErrf("group-sub from-start flag %d", p[0])
	}
	count := int(binary.LittleEndian.Uint16(p[1:]))
	p = p[3:]
	if len(p) != count*10 {
		return nil, protoErrf("group-sub declares %d offsets but carries %d bytes", count, len(p))
	}
	g.Offsets = make([]PartitionOffset, count)
	for i := range g.Offsets {
		rec := p[i*10:]
		g.Offsets[i] = PartitionOffset{
			Partition: binary.LittleEndian.Uint16(rec),
			Offset:    binary.LittleEndian.Uint64(rec[2:]),
		}
	}
	return g, nil
}

func decodeAssign(p []byte) (*Assign, error) {
	if len(p) < 12 {
		return nil, protoErrf("assign payload too short (%d bytes)", len(p))
	}
	a := &Assign{
		Epoch:         binary.LittleEndian.Uint64(p),
		NumPartitions: binary.LittleEndian.Uint16(p[8:]),
	}
	count := int(binary.LittleEndian.Uint16(p[10:]))
	p = p[12:]
	if len(p) != count*2 {
		return nil, protoErrf("assign declares %d partitions but carries %d bytes", count, len(p))
	}
	a.Partitions = make([]uint16, count)
	for i := range a.Partitions {
		a.Partitions[i] = binary.LittleEndian.Uint16(p[i*2:])
	}
	return a, nil
}

func decodeSnapshot(p []byte) (*SnapshotFrame, error) {
	if len(p) < 14 {
		return nil, protoErrf("snapshot payload too short (%d bytes)", len(p))
	}
	s := &SnapshotFrame{
		Partition: binary.LittleEndian.Uint16(p),
		EndOffset: binary.LittleEndian.Uint64(p[2:]),
	}
	count := int(binary.LittleEndian.Uint32(p[10:]))
	p = p[14:]
	if count > MaxSignalRecs || len(p) != count*signalWireSize {
		return nil, protoErrf("snapshot declares %d signals but carries %d bytes", count, len(p))
	}
	s.Latest = make([]Signal, count)
	for i := range s.Latest {
		s.Latest[i] = getSignal(p[i*signalWireSize:])
	}
	return s, nil
}

func decodeDelta(p []byte) (*DeltaFrame, error) {
	if len(p) < 7 {
		return nil, protoErrf("delta payload too short (%d bytes)", len(p))
	}
	d := &DeltaFrame{Partition: binary.LittleEndian.Uint16(p)}
	switch p[2] {
	case 0:
	case 1:
		d.Sealed = true
	default:
		return nil, protoErrf("delta sealed flag %d", p[2])
	}
	count := int(binary.LittleEndian.Uint32(p[3:]))
	p = p[7:]
	if count > MaxSignalRecs || len(p) != count*signalWireSize {
		return nil, protoErrf("delta declares %d signals but carries %d bytes", count, len(p))
	}
	d.Signals = make([]Signal, count)
	for i := range d.Signals {
		d.Signals[i] = getSignal(p[i*signalWireSize:])
	}
	return d, nil
}

func decodeAck(p []byte) (*AckFrame, error) {
	if len(p) != 10 {
		return nil, protoErrf("ack payload %d bytes, want 10", len(p))
	}
	return &AckFrame{
		Partition: binary.LittleEndian.Uint16(p),
		Offset:    binary.LittleEndian.Uint64(p[2:]),
	}, nil
}
