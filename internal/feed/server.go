package feed

import (
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"marketminer/internal/metrics"
	"marketminer/internal/taq"
)

// ServerConfig tunes a feed server. The zero value of every field is
// replaced by the documented default.
type ServerConfig struct {
	// Universe defines the symbol table sent in Hello and used to
	// encode batches. Required.
	Universe *taq.Universe
	// BatchSize is the number of quotes per sealed batch (default 256).
	BatchSize int
	// QueueLen is the per-client send window in batches: a subscriber
	// more than QueueLen sealed batches behind the head is evicted
	// (default 1024). Because the server retains the full day log,
	// an evicted client reconnects and resumes without loss.
	QueueLen int
	// Heartbeat is the idle interval between liveness frames
	// (default 1s).
	Heartbeat time.Duration
	// WriteTimeout bounds any single frame write (default 5s); a stuck
	// peer is disconnected rather than blocking its writer goroutine
	// forever.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives one line per client life-cycle
	// event (subscribe, evict, disconnect).
	Logf func(format string, args ...any)
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ServerStats is a snapshot of server counters.
type ServerStats struct {
	Clients  int    // currently subscribed
	Served   int    // subscriptions accepted over the lifetime
	Evicted  int    // slow consumers disconnected
	Batches  int    // sealed batches in the log
	Quotes   int    // quotes published (sealed + pending)
	LastSeq  uint64 // sequence number of the newest sealed batch
	Finished bool   // Finish has been called
}

// Server replays a quote stream to many subscribers over the binary
// wire protocol. Quotes enter via Publish (historical file replay and
// live simulator output look identical), are sealed into sequence-
// numbered batches, and are retained for the lifetime of the server so
// that any client can subscribe late (snapshot-on-subscribe) or
// reconnect and resume from its last good sequence number.
//
// Each subscriber is served by its own goroutine reading the shared
// log; a subscriber that falls more than QueueLen batches behind the
// head is evicted (slow-consumer protection). Publish never blocks on
// client I/O.
type Server struct {
	cfg ServerConfig

	mu         sync.Mutex
	log        []*Batch    // sealed batches; log[i].Seq == i+1
	pending    []taq.Quote // quotes not yet sealed
	pendingDay int
	finished   bool
	closed     bool
	clients    map[*client]struct{}
	listeners  map[net.Listener]struct{}
	served     int
	evicted    int
	quotes     int

	wg sync.WaitGroup
}

// client is one subscriber connection, owned by its handler goroutine;
// pos is read by Publish (under s.mu) for lag-based eviction.
type client struct {
	conn   net.Conn
	notify chan struct{} // capacity 1: "the log grew or state changed"
	pos    int           // index of the next log batch to send
}

func (c *client) wake() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// NewServer validates cfg and returns a Server ready to Serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Universe == nil || cfg.Universe.Len() == 0 {
		return nil, errors.New("feed: server requires a universe")
	}
	return &Server{
		cfg:       cfg.withDefaults(),
		clients:   make(map[*client]struct{}),
		listeners: make(map[net.Listener]struct{}),
	}, nil
}

// Publish appends one quote to the stream. Quotes are sealed into a
// batch when BatchSize accumulate or the trading day changes; call
// Flush to seal a partial batch immediately. Publishing after Finish
// or Close is a no-op.
func (s *Server) Publish(q taq.Quote) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished || s.closed {
		return
	}
	if len(s.pending) > 0 && q.Day != s.pendingDay {
		s.sealLocked()
	}
	if len(s.pending) == 0 {
		s.pendingDay = q.Day
	}
	s.pending = append(s.pending, q)
	s.quotes++
	if len(s.pending) >= s.cfg.BatchSize {
		s.sealLocked()
	}
}

// PublishBatch publishes a slice of quotes (convenience for replay).
func (s *Server) PublishBatch(quotes []taq.Quote) {
	for _, q := range quotes {
		s.Publish(q)
	}
}

// Flush seals any pending partial batch so it becomes visible to
// subscribers immediately.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked()
}

// sealLocked moves pending quotes into the log and wakes subscribers
// (and evicts any that have fallen too far behind). Caller holds s.mu.
func (s *Server) sealLocked() {
	if len(s.pending) > 0 {
		b := &Batch{
			Seq:    uint64(len(s.log) + 1),
			Day:    s.pendingDay,
			Quotes: s.pending,
		}
		s.pending = nil
		s.log = append(s.log, b)
	}
	for c := range s.clients {
		if depth := len(s.log) - c.pos; depth > s.cfg.QueueLen {
			// Slow consumer: drop the connection. The client's resume
			// protocol recovers everything from the retained log.
			s.evicted++
			metrics.Counter("feed.evictions").Inc()
			delete(s.clients, c)
			c.conn.Close()
			s.cfg.Logf("feed: evicted slow consumer %s (queue depth %d exceeds limit %d)",
				c.conn.RemoteAddr(), depth, s.cfg.QueueLen)
			continue
		}
		c.wake()
	}
}

// Finish seals the stream: any pending batch is flushed, an End frame
// is delivered to every subscriber after the final batch, and future
// Publish calls are ignored. The server keeps serving the retained log
// to late subscribers until Close.
func (s *Server) Finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	s.sealLocked()
	s.finished = true
	for c := range s.clients {
		c.wake()
	}
}

// Serve accepts subscribers on l until the listener fails or Close is
// called. It blocks; run it in its own goroutine to serve multiple
// listeners.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("feed: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("feed: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// A panicking handler must not take down the whole feed
			// server: isolate it to this client, count it, and move on.
			defer func() {
				if r := recover(); r != nil {
					metrics.Counter("feed.client_panics").Inc()
					s.cfg.Logf("feed: %s: handler panicked: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
					conn.Close()
				}
			}()
			s.handle(conn)
		}()
	}
}

// Close shuts the server down: listeners close, every subscriber
// connection is dropped, and handler goroutines are joined.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.clients {
		c.conn.Close()
		c.wake()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		Clients:  len(s.clients),
		Served:   s.served,
		Evicted:  s.evicted,
		Batches:  len(s.log),
		Quotes:   s.quotes,
		LastSeq:  uint64(len(s.log)),
		Finished: s.finished,
	}
}

// handle serves one subscriber: Subscribe → Hello → replay-from-resume
// → live tail (heartbeats when idle) → End.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()

	// The client speaks first: one Subscribe frame.
	conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout))
	dec := NewDecoder(conn)
	f, err := dec.Read()
	if err != nil {
		s.cfg.Logf("feed: %s: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	sub, ok := f.(*Subscribe)
	if !ok {
		s.cfg.Logf("feed: %s: expected subscribe, got %s", conn.RemoteAddr(), f.frameType())
		return
	}
	conn.SetReadDeadline(time.Time{})

	c := &client{conn: conn, notify: make(chan struct{}, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// Resume after sub.From: log[i].Seq == i+1, so the next index to
	// send is exactly From (clamped into range).
	c.pos = int(min(sub.From, uint64(len(s.log))))
	s.clients[c] = struct{}{}
	s.served++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.clients, c)
		s.mu.Unlock()
	}()
	s.cfg.Logf("feed: %s: subscribed from seq %d", conn.RemoteAddr(), sub.From)

	enc := NewEncoder(conn, s.cfg.Universe)
	write := func(fn func() error) bool {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		return fn() == nil
	}
	if !write(func() error {
		return enc.WriteHello(&Hello{Version: ProtocolVersion, Symbols: s.cfg.Universe.Symbols()})
	}) {
		return
	}

	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		s.mu.Lock()
		var next *Batch
		if c.pos < len(s.log) {
			next = s.log[c.pos]
			c.pos++
		}
		finished, last := s.finished, uint64(len(s.log))
		s.mu.Unlock()

		if next != nil {
			if !write(func() error { return enc.WriteBatch(next) }) {
				return
			}
			continue
		}
		if finished {
			write(func() error { return enc.WriteEnd(&End{Seq: last}) })
			return
		}
		select {
		case <-c.notify:
		case <-hb.C:
			if !write(func() error { return enc.WriteHeartbeat(&Heartbeat{Seq: last}) }) {
				return
			}
		}
	}
}
