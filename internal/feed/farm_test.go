package feed

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestFarmFrameRoundTrip encodes every farm frame and decodes it back,
// requiring exact equality — including float64 bit patterns in Result
// rows and the non-nil-empty-row invariant merge byte-identity needs.
func TestFarmFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		&Join{Version: ProtocolVersion, Name: "worker-7", Fingerprint: "00deadbeef00cafe", HeldLeases: []uint64{}},
		&Join{Version: 1, Name: "", Fingerprint: "", HeldLeases: []uint64{}},
		&Join{Version: ProtocolVersion, Name: "rejoiner", Fingerprint: "00deadbeef00cafe",
			PriorSession: 7, PriorEpoch: 3, HeldLeases: []uint64{12, 99}},
		&Grant{Session: 42, Epoch: 5, UnitsTotal: 1830 * 42 * 20, UnitsDone: 917},
		&Refuse{Code: RefuseFingerprint, Reason: "sweep fingerprint mismatch"},
		&Refuse{Code: RefuseVersion, Reason: ""},
		&Lease{ID: 9, Gen: 3, Day: 19, Block: 14, TTLMillis: 10_000, Params: []uint16{0, 5, 41}},
		&Lease{ID: 1, Gen: 1, Day: 0, Block: 0, TTLMillis: 1, Params: []uint16{}},
		&Result{Lease: 9, Gen: 3, Epoch: 2, Unit: 1234567, Flags: ResultRecovered, Rets: [][]float64{
			{0.0012, -3.4e-5, math.Inf(1)},
			{},
			{math.Copysign(0, -1)},
		}},
		&ResultAck{Unit: 1234567},
		&Steal{Done: 77},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	for _, f := range frames {
		var err error
		switch f := f.(type) {
		case *Join:
			err = enc.WriteJoin(f)
		case *Grant:
			err = enc.WriteGrant(f)
		case *Refuse:
			err = enc.WriteRefuse(f)
		case *Lease:
			err = enc.WriteLease(f)
		case *Result:
			err = enc.WriteResult(f)
		case *ResultAck:
			err = enc.WriteResultAck(f)
		case *Steal:
			err = enc.WriteSteal(f)
		}
		if err != nil {
			t.Fatalf("encode %T: %v", f, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range frames {
		got, err := dec.Read()
		if err != nil {
			t.Fatalf("decode frame %d (%T): %v", i, want, err)
		}
		// Zero-length slices may decode as non-nil empties; normalize
		// nothing — the decoder is required to produce non-nil rows and
		// params, so reflect.DeepEqual must hold with the empties above.
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestResultRowsNeverNil pins the invariant the coordinator's journal
// depends on: a decoded Result row with zero trades is an empty slice,
// not nil, because nil marshals to JSON null while every single-host
// journal row marshals to [].
func TestResultRowsNeverNil(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	if err := enc.WriteResult(&Result{Unit: 1, Rets: [][]float64{nil, {}}}); err != nil {
		t.Fatal(err)
	}
	f, err := NewDecoder(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	r := f.(*Result)
	for i, row := range r.Rets {
		if row == nil {
			t.Errorf("row %d decoded as nil; must be non-nil empty", i)
		}
	}
}

// TestFarmFrameMalformed drives the farm decoders through truncated
// and inconsistent payloads; every case must fail as a protocol error,
// never panic or mis-parse.
func TestFarmFrameMalformed(t *testing.T) {
	cases := []struct {
		name    string
		typ     FrameType
		payload []byte
	}{
		{"join empty", FrameJoin, nil},
		{"join truncated name", FrameJoin, []byte{2, 0, 5, 0, 'a'}},
		{"join truncated before fingerprint", FrameJoin, []byte{2, 0, 1, 0, 'a'}},
		{"join truncated before rejoin fields", FrameJoin, []byte{2, 0, 0, 0, 0, 0, 9}},
		{"join held-lease count lies", FrameJoin, append(make([]byte, 6+16), 2, 0, 1)},
		{"join trailing bytes", FrameJoin, append(make([]byte, 6+18), 9)},
		{"grant short", FrameGrant, make([]byte, 31)},
		{"grant long", FrameGrant, make([]byte, 33)},
		{"refuse empty", FrameRefuse, nil},
		{"refuse reason truncated", FrameRefuse, []byte{1, 0, 5, 0, 'a'}},
		{"refuse trailing bytes", FrameRefuse, []byte{1, 0, 1, 0, 'a', 'b'}},
		{"lease short", FrameLease, make([]byte, 29)},
		{"lease param count mismatch", FrameLease, append(make([]byte, 28), 3, 0, 1, 0)},
		{"result short", FrameResult, make([]byte, resultHeaderSize-1)},
		{"result row count lies", FrameResult, append(make([]byte, resultHeaderSize-4), 2, 0, 0, 0)},
		{"result row payload truncated", FrameResult, append(make([]byte, resultHeaderSize-4), 1, 0, 0, 0, 2, 0, 0, 0, 1, 2, 3)},
		{"result-ack short", FrameResultAck, make([]byte, 7)},
		{"result-ack long", FrameResultAck, make([]byte, 9)},
		{"steal short", FrameSteal, make([]byte, 7)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			writeRawFrame(t, &buf, tc.typ, tc.payload)
			_, err := NewDecoder(&buf).Read()
			if err == nil {
				t.Fatalf("decoder accepted malformed %s frame", tc.typ)
			}
			if !strings.Contains(err.Error(), "protocol error") {
				t.Fatalf("want protocol error, got: %v", err)
			}
		})
	}
}

// writeRawFrame emits a frame with a valid header and CRC around an
// arbitrary payload, so malformed-payload tests exercise the payload
// decoders rather than the checksum path.
func writeRawFrame(t *testing.T, buf *bytes.Buffer, typ FrameType, payload []byte) {
	t.Helper()
	enc := NewEncoder(buf, nil)
	enc.begin(typ)
	enc.buf = append(enc.buf, payload...)
	if err := enc.finish(); err != nil {
		t.Fatal(err)
	}
}
