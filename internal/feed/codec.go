// Package feed is the networked quote-distribution subsystem: the
// "data collector" edge of the paper's Figure 1 lifted out of the
// process. The original MarketMiner ran its collectors as MPI ranks
// streaming TAQ quotes into the DAG; here a feed.Server replays
// historical TAQ files or live simulator output over TCP to any number
// of subscribed feed.Collector clients, each of which exposes the same
// quote-channel contract the in-process pipeline consumes.
//
// The wire protocol is a compact length-prefixed binary framing:
//
//	[1 byte type][4 bytes payload length, LE][4 bytes CRC32, LE][payload]
//
// The CRC32 (IEEE) covers the type byte and the payload, so a flipped
// bit anywhere in a frame — including its type — is detected at decode
// time instead of silently corrupting quotes; a decoder that sees a
// checksum mismatch reports a protocol error, which drops the
// connection and lets the collector's resume-from-seq reconnect path
// refetch the damaged batch losslessly.
//
// Frame types: Hello (server → client: version + symbol table),
// Batch (sequence-numbered quote batches; symbols as dense uint16
// indices into the Hello table), Heartbeat (liveness when idle),
// End (clean end of stream) and Subscribe (client → server: resume
// point). Sequence numbers are per-stream, start at 1, and never skip;
// a collector that observes a hole knows frames were lost and can
// resume from its last good sequence number.
package feed

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"marketminer/internal/taq"
)

// ProtocolVersion is the wire version carried in the Hello frame.
// Version 2 added the per-frame CRC32 to the header.
const ProtocolVersion = 2

// MaxFrameSize bounds a single frame's payload; larger length prefixes
// are treated as stream corruption, not allocation requests.
const MaxFrameSize = 16 << 20

// MaxBatchQuotes bounds the quotes per Batch frame.
const MaxBatchQuotes = (MaxFrameSize - batchHeaderSize) / quoteWireSize

// FrameType tags a wire frame.
type FrameType byte

// Wire frame types.
const (
	FrameHello     FrameType = 1
	FrameBatch     FrameType = 2
	FrameHeartbeat FrameType = 3
	FrameEnd       FrameType = 4
	FrameSubscribe FrameType = 5
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameBatch:
		return "batch"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameEnd:
		return "end"
	case FrameSubscribe:
		return "subscribe"
	case FrameGroupSub:
		return "group-sub"
	case FrameAssign:
		return "assign"
	case FrameSnapshot:
		return "snapshot"
	case FrameDelta:
		return "delta"
	case FrameAck:
		return "ack"
	case FrameJoin:
		return "join"
	case FrameGrant:
		return "grant"
	case FrameLease:
		return "lease"
	case FrameResult:
		return "result"
	case FrameSteal:
		return "steal"
	case FrameRefuse:
		return "refuse"
	case FrameResultAck:
		return "result-ack"
	default:
		return fmt.Sprintf("type-%d", byte(t))
	}
}

// ErrProtocol is wrapped by every malformed-frame error, so transport
// failures (io errors) and protocol failures are distinguishable.
var ErrProtocol = errors.New("feed: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// Frame is one decoded wire message: *Hello, *Batch, *Heartbeat, *End
// or *Subscribe from the quote feed, *GroupSub, *Assign,
// *SnapshotFrame, *DeltaFrame or *AckFrame from the signal broker
// extension (see signal.go), or *Join, *Grant, *Refuse, *Lease,
// *Result, *ResultAck or *Steal from the sweep-farm extension (see
// farm.go).
type Frame interface{ frameType() FrameType }

// Hello is the first server frame: protocol version plus the symbol
// table that Batch frames index into.
type Hello struct {
	Version uint16
	Symbols []string
}

// Batch is a sequence-numbered group of quotes from one trading day.
// Seq starts at 1 and increments by exactly 1 per batch.
type Batch struct {
	Seq    uint64
	Day    int
	Quotes []taq.Quote
}

// Heartbeat is sent when the stream is idle; Seq is the last published
// batch sequence number.
type Heartbeat struct{ Seq uint64 }

// End marks a clean end of stream; Seq is the final batch sequence.
type End struct{ Seq uint64 }

// Subscribe is the client's only frame: resume delivery after sequence
// number From (0 requests the stream from the beginning).
type Subscribe struct{ From uint64 }

func (*Hello) frameType() FrameType     { return FrameHello }
func (*Batch) frameType() FrameType     { return FrameBatch }
func (*Heartbeat) frameType() FrameType { return FrameHeartbeat }
func (*End) frameType() FrameType       { return FrameEnd }
func (*Subscribe) frameType() FrameType { return FrameSubscribe }

// Wire sizes.
const (
	frameHeaderSize = 9                     // type byte + uint32 length + uint32 crc
	quoteWireSize   = 2 + 8 + 8 + 8 + 4 + 4 // idx, seqtime, bid, ask, bidsize, asksize
	batchHeaderSize = 8 + 4 + 4             // seq, day, count
	maxSymbolLen    = math.MaxUint16        // length prefix width
)

// Encoder writes frames to w. One frame is assembled in an internal
// buffer and written with a single Write call, so a net.Conn receives
// whole frames (modulo TCP segmentation). Not safe for concurrent use.
type Encoder struct {
	w   io.Writer
	uni *taq.Universe // symbol → index map for Batch frames; may be nil
	buf []byte
}

// NewEncoder returns an Encoder. uni supplies the symbol→index mapping
// for Batch frames and may be nil for client-side encoders that only
// send Subscribe.
func NewEncoder(w io.Writer, uni *taq.Universe) *Encoder {
	return &Encoder{w: w, uni: uni, buf: make([]byte, 0, 4096)}
}

// begin starts a frame of the given type, reserving the header.
func (e *Encoder) begin(t FrameType) {
	e.buf = e.buf[:0]
	e.buf = append(e.buf, byte(t), 0, 0, 0, 0, 0, 0, 0, 0)
}

// finish patches the length prefix and checksum, then flushes the
// frame. The CRC covers the type byte and payload so header and body
// corruption are both detectable.
func (e *Encoder) finish() error {
	payload := len(e.buf) - frameHeaderSize
	if payload > MaxFrameSize {
		return protoErrf("frame payload %d exceeds limit %d", payload, MaxFrameSize)
	}
	binary.LittleEndian.PutUint32(e.buf[1:5], uint32(payload))
	crc := crc32.Update(0, crc32.IEEETable, e.buf[:1])
	crc = crc32.Update(crc, crc32.IEEETable, e.buf[frameHeaderSize:])
	binary.LittleEndian.PutUint32(e.buf[5:frameHeaderSize], crc)
	_, err := e.w.Write(e.buf)
	return err
}

func (e *Encoder) putU16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *Encoder) putU32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) putU64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) putF64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// WriteHello emits the version + symbol table frame.
func (e *Encoder) WriteHello(h *Hello) error {
	e.begin(FrameHello)
	e.putU16(h.Version)
	e.putU32(uint32(len(h.Symbols)))
	for _, s := range h.Symbols {
		if len(s) > maxSymbolLen {
			return protoErrf("symbol %q too long", s)
		}
		e.putU16(uint16(len(s)))
		e.buf = append(e.buf, s...)
	}
	return e.finish()
}

// WriteBatch emits a quote batch. Every quote's symbol must be in the
// encoder's universe, and sizes must be non-negative.
func (e *Encoder) WriteBatch(b *Batch) error {
	if e.uni == nil {
		return protoErrf("encoder has no universe; cannot encode batches")
	}
	if len(b.Quotes) > MaxBatchQuotes {
		return protoErrf("batch of %d quotes exceeds limit %d", len(b.Quotes), MaxBatchQuotes)
	}
	e.begin(FrameBatch)
	e.putU64(b.Seq)
	e.putU32(uint32(int32(b.Day)))
	e.putU32(uint32(len(b.Quotes)))
	for i := range b.Quotes {
		q := &b.Quotes[i]
		idx, ok := e.uni.Index(q.Symbol)
		if !ok {
			return protoErrf("symbol %q not in feed universe", q.Symbol)
		}
		if q.BidSize < 0 || q.AskSize < 0 {
			return protoErrf("negative size on %s", q.Symbol)
		}
		e.putU16(uint16(idx))
		e.putF64(q.SeqTime)
		e.putF64(q.Bid)
		e.putF64(q.Ask)
		e.putU32(uint32(q.BidSize))
		e.putU32(uint32(q.AskSize))
	}
	return e.finish()
}

// WriteHeartbeat emits a liveness frame.
func (e *Encoder) WriteHeartbeat(h *Heartbeat) error {
	e.begin(FrameHeartbeat)
	e.putU64(h.Seq)
	return e.finish()
}

// WriteEnd emits the clean end-of-stream frame.
func (e *Encoder) WriteEnd(f *End) error {
	e.begin(FrameEnd)
	e.putU64(f.Seq)
	return e.finish()
}

// WriteSubscribe emits the client resume-point frame.
func (e *Encoder) WriteSubscribe(s *Subscribe) error {
	e.begin(FrameSubscribe)
	e.putU64(s.From)
	return e.finish()
}

// Decoder reads frames from r. After a Hello frame is decoded its
// symbol table is retained and used to resolve Batch symbol indices.
// Not safe for concurrent use.
type Decoder struct {
	r       *bufio.Reader
	symbols []string
	buf     []byte
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 1<<16)}
}

// Symbols returns the symbol table from the Hello frame, nil before one
// has been decoded.
func (d *Decoder) Symbols() []string { return d.symbols }

// Read decodes the next frame. It returns io.EOF at a clean stream end
// between frames, io.ErrUnexpectedEOF when a frame is torn, and errors
// wrapping ErrProtocol for structural corruption.
func (d *Decoder) Read() (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(d.r, hdr[:1]); err != nil {
		return nil, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(d.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	t := FrameType(hdr[0])
	n := binary.LittleEndian.Uint32(hdr[1:5])
	wantCRC := binary.LittleEndian.Uint32(hdr[5:])
	if n > MaxFrameSize {
		return nil, protoErrf("frame length %d exceeds limit %d", n, MaxFrameSize)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	crc := crc32.Update(0, crc32.IEEETable, hdr[:1])
	crc = crc32.Update(crc, crc32.IEEETable, d.buf)
	if crc != wantCRC {
		return nil, protoErrf("%s frame checksum mismatch (got %08x, want %08x)", t, crc, wantCRC)
	}
	switch t {
	case FrameHello:
		return d.decodeHello(d.buf)
	case FrameBatch:
		return d.decodeBatch(d.buf)
	case FrameHeartbeat:
		seq, err := decodeU64Payload(d.buf, "heartbeat")
		if err != nil {
			return nil, err
		}
		return &Heartbeat{Seq: seq}, nil
	case FrameEnd:
		seq, err := decodeU64Payload(d.buf, "end")
		if err != nil {
			return nil, err
		}
		return &End{Seq: seq}, nil
	case FrameSubscribe:
		from, err := decodeU64Payload(d.buf, "subscribe")
		if err != nil {
			return nil, err
		}
		return &Subscribe{From: from}, nil
	case FrameGroupSub:
		return decodeGroupSub(d.buf)
	case FrameAssign:
		return decodeAssign(d.buf)
	case FrameSnapshot:
		return decodeSnapshot(d.buf)
	case FrameDelta:
		return decodeDelta(d.buf)
	case FrameAck:
		return decodeAck(d.buf)
	case FrameJoin:
		return decodeJoin(d.buf)
	case FrameGrant:
		return decodeGrant(d.buf)
	case FrameLease:
		return decodeLease(d.buf)
	case FrameResult:
		return decodeResult(d.buf)
	case FrameSteal:
		done, err := decodeU64Payload(d.buf, "steal")
		if err != nil {
			return nil, err
		}
		return &Steal{Done: done}, nil
	case FrameRefuse:
		return decodeRefuse(d.buf)
	case FrameResultAck:
		unit, err := decodeU64Payload(d.buf, "result-ack")
		if err != nil {
			return nil, err
		}
		return &ResultAck{Unit: unit}, nil
	default:
		return nil, protoErrf("unknown frame type %d", hdr[0])
	}
}

func decodeU64Payload(p []byte, what string) (uint64, error) {
	if len(p) != 8 {
		return 0, protoErrf("%s payload %d bytes, want 8", what, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

func (d *Decoder) decodeHello(p []byte) (*Hello, error) {
	if len(p) < 6 {
		return nil, protoErrf("hello payload too short (%d bytes)", len(p))
	}
	h := &Hello{Version: binary.LittleEndian.Uint16(p)}
	count := binary.LittleEndian.Uint32(p[2:])
	p = p[6:]
	if count > math.MaxUint16+1 {
		return nil, protoErrf("hello declares %d symbols", count)
	}
	h.Symbols = make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 2 {
			return nil, protoErrf("hello truncated at symbol %d", i)
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return nil, protoErrf("hello symbol %d truncated", i)
		}
		h.Symbols = append(h.Symbols, string(p[:n]))
		p = p[n:]
	}
	if len(p) != 0 {
		return nil, protoErrf("hello has %d trailing bytes", len(p))
	}
	d.symbols = h.Symbols
	return h, nil
}

func (d *Decoder) decodeBatch(p []byte) (*Batch, error) {
	if d.symbols == nil {
		return nil, protoErrf("batch before hello")
	}
	if len(p) < batchHeaderSize {
		return nil, protoErrf("batch payload too short (%d bytes)", len(p))
	}
	b := &Batch{
		Seq: binary.LittleEndian.Uint64(p),
		Day: int(int32(binary.LittleEndian.Uint32(p[8:]))),
	}
	count := int(binary.LittleEndian.Uint32(p[12:]))
	p = p[batchHeaderSize:]
	if len(p) != count*quoteWireSize {
		return nil, protoErrf("batch declares %d quotes but carries %d bytes", count, len(p))
	}
	b.Quotes = make([]taq.Quote, count)
	for i := 0; i < count; i++ {
		rec := p[i*quoteWireSize:]
		idx := int(binary.LittleEndian.Uint16(rec))
		if idx >= len(d.symbols) {
			return nil, protoErrf("batch quote %d: symbol index %d outside table of %d", i, idx, len(d.symbols))
		}
		b.Quotes[i] = taq.Quote{
			Day:     b.Day,
			Symbol:  d.symbols[idx],
			SeqTime: math.Float64frombits(binary.LittleEndian.Uint64(rec[2:])),
			Bid:     math.Float64frombits(binary.LittleEndian.Uint64(rec[10:])),
			Ask:     math.Float64frombits(binary.LittleEndian.Uint64(rec[18:])),
			BidSize: int(binary.LittleEndian.Uint32(rec[26:])),
			AskSize: int(binary.LittleEndian.Uint32(rec[30:])),
		}
	}
	return b, nil
}
