package feed

import (
	"bytes"
	"io"
	"testing"

	"marketminer/internal/taq"
)

// FuzzDecoder throws arbitrary byte streams at the frame decoder. The
// decoder's contract under corruption is: return an error (or a clean
// EOF), never panic, never allocate proportionally to a lying length
// field. The seed corpus is the frame mix the chaos e2e exercises —
// every frame type the quote feed, the signal broker and the sweep
// farm speak, plus truncated, bit-flipped and length-corrupted
// variants of each.
func FuzzDecoder(f *testing.F) {
	u, err := newSeedUniverse()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, u)
	seed := func(write func() error) []byte {
		buf.Reset()
		if err := write(); err != nil {
			f.Fatal(err)
		}
		return append([]byte(nil), buf.Bytes()...)
	}

	quotes := testQuotesForFuzz(u, 16)
	sigs := testSignals(8, 1)
	frames := [][]byte{
		seed(func() error { return enc.WriteHello(&Hello{Version: ProtocolVersion, Symbols: u.Symbols()}) }),
		seed(func() error { return enc.WriteBatch(&Batch{Seq: 1, Day: 2, Quotes: quotes}) }),
		seed(func() error { return enc.WriteHeartbeat(&Heartbeat{Seq: 3}) }),
		seed(func() error { return enc.WriteEnd(&End{Seq: 4}) }),
		seed(func() error { return enc.WriteSubscribe(&Subscribe{From: 5}) }),
		seed(func() error {
			return enc.WriteGroupSub(&GroupSub{Group: "g", Member: "m-0", FromStart: true,
				Offsets: []PartitionOffset{{Partition: 1, Offset: 7}}})
		}),
		seed(func() error { return enc.WriteAssign(&Assign{Epoch: 2, NumPartitions: 4, Partitions: []uint16{0, 2}}) }),
		seed(func() error { return enc.WriteSnapshot(&SnapshotFrame{Partition: 1, EndOffset: 8, Latest: sigs}) }),
		seed(func() error { return enc.WriteDelta(&DeltaFrame{Partition: 1, Sealed: true, Signals: sigs}) }),
		seed(func() error { return enc.WriteAck(&AckFrame{Partition: 1, Offset: 8}) }),
		// Sweep-farm extension frames, including the rejoin fields and
		// the Refuse/ResultAck types the coordinator-recovery path adds.
		seed(func() error {
			return enc.WriteJoin(&Join{Version: ProtocolVersion, Name: "w-0", Fingerprint: "00deadbeef00cafe",
				PriorSession: 7, PriorEpoch: 2, HeldLeases: []uint64{3, 9}})
		}),
		seed(func() error { return enc.WriteGrant(&Grant{Session: 7, Epoch: 2, UnitsTotal: 96, UnitsDone: 14}) }),
		seed(func() error { return enc.WriteRefuse(&Refuse{Code: RefuseFingerprint, Reason: "mismatch"}) }),
		seed(func() error {
			return enc.WriteLease(&Lease{ID: 3, Gen: 4, Day: 1, Block: 2, TTLMillis: 5000, Params: []uint16{0, 5}})
		}),
		seed(func() error {
			return enc.WriteResult(&Result{Lease: 3, Gen: 4, Epoch: 2, Unit: 17, Flags: ResultRecovered,
				Rets: [][]float64{{0.25, -0.5}, {}}})
		}),
		seed(func() error { return enc.WriteResultAck(&ResultAck{Unit: 17}) }),
		seed(func() error { return enc.WriteSteal(&Steal{Done: 12}) }),
	}

	// A hello followed by a batch (the decoder's symbol table path),
	// and the full session prefix the chaos e2e drives.
	var session []byte
	for _, fr := range frames {
		session = append(session, fr...)
	}
	f.Add(session)
	for _, fr := range frames {
		f.Add(fr)
		if len(fr) > frameHeaderSize {
			f.Add(fr[:frameHeaderSize+1]) // torn payload
		}
		flipped := append([]byte(nil), fr...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
		lied := append([]byte(nil), fr...)
		lied[1] ^= 0xff // length prefix corruption
		f.Add(lied)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			fr, err := dec.Read()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				return // protocol error: acceptable, just must not panic
			}
			if fr == nil {
				t.Fatal("nil frame with nil error")
			}
		}
	})
}

func newSeedUniverse() (*taq.Universe, error) {
	return taq.NewUniverse([]string{"AAA", "BBB", "CCC", "DDD"})
}

func testQuotesForFuzz(u *taq.Universe, n int) []taq.Quote {
	out := make([]taq.Quote, n)
	for i := range out {
		out[i] = taq.Quote{
			Day:     1,
			Symbol:  u.Symbol(i % u.Len()),
			SeqTime: float64(i),
			Bid:     100 + float64(i)*0.5,
			Ask:     100.5 + float64(i)*0.5,
			BidSize: i,
			AskSize: i * 2,
		}
	}
	return out
}
