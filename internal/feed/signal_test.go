package feed

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
)

func testSignals(n int, base uint64) []Signal {
	out := make([]Signal, n)
	for i := range out {
		out[i] = Signal{
			Offset: base + uint64(i),
			Pair:   uint32(i * 7 % 1830),
			S:      uint32(30 + i),
			Kind:   uint8(i % 3),
			C:      math.Cos(float64(i) * 0.1),
			Cbar:   math.Cos(float64(i)*0.1) + 0.01,
		}
	}
	return out
}

func TestBrokerFramesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, nil)
	sigs := testSignals(5, 11)

	want := []Frame{
		&GroupSub{Group: "g", Member: "m-1", FromStart: true,
			Offsets: []PartitionOffset{{Partition: 0, Offset: 10}, {Partition: 3, Offset: 0}}},
		&GroupSub{Group: "dash", Member: "viewer"},
		&Assign{Epoch: 4, NumPartitions: 8, Partitions: []uint16{1, 5, 7}},
		&Assign{Epoch: 5, NumPartitions: 8},
		&SnapshotFrame{Partition: 2, EndOffset: 15, Latest: sigs},
		&SnapshotFrame{Partition: 2},
		&DeltaFrame{Partition: 6, Signals: sigs},
		&DeltaFrame{Partition: 6, Sealed: true},
		&AckFrame{Partition: 1, Offset: 99},
	}
	for i, f := range want {
		var err error
		switch fr := f.(type) {
		case *GroupSub:
			err = enc.WriteGroupSub(fr)
		case *Assign:
			err = enc.WriteAssign(fr)
		case *SnapshotFrame:
			err = enc.WriteSnapshot(fr)
		case *DeltaFrame:
			err = enc.WriteDelta(fr)
		case *AckFrame:
			err = enc.WriteAck(fr)
		}
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		// Empty slices decode as non-nil empty or nil; normalise.
		if !reflect.DeepEqual(normaliseFrame(got), normaliseFrame(w)) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, w)
		}
	}
}

func normaliseFrame(f Frame) Frame {
	switch fr := f.(type) {
	case *GroupSub:
		c := *fr
		if len(c.Offsets) == 0 {
			c.Offsets = nil
		}
		return &c
	case *Assign:
		c := *fr
		if len(c.Partitions) == 0 {
			c.Partitions = nil
		}
		return &c
	case *SnapshotFrame:
		c := *fr
		if len(c.Latest) == 0 {
			c.Latest = nil
		}
		return &c
	case *DeltaFrame:
		c := *fr
		if len(c.Signals) == 0 {
			c.Signals = nil
		}
		return &c
	}
	return f
}

// reframe re-patches a (possibly truncated or mutated) raw frame's
// length prefix and CRC so the corruption reaches the payload decoder
// instead of tripping the checksum.
func reframe(b []byte) []byte {
	payload := len(b) - frameHeaderSize
	binary.LittleEndian.PutUint32(b[1:5], uint32(payload))
	crc := crc32.Update(0, crc32.IEEETable, b[:1])
	crc = crc32.Update(crc, crc32.IEEETable, b[frameHeaderSize:])
	binary.LittleEndian.PutUint32(b[5:frameHeaderSize], crc)
	return b
}

func TestBrokerFramesRejectMalformed(t *testing.T) {
	sig := testSignals(1, 1)[0]
	cases := []struct {
		name  string
		write func(enc *Encoder) error
		mut   func(frame []byte) []byte
	}{
		{"group-sub truncated member", func(e *Encoder) error {
			return e.WriteGroupSub(&GroupSub{Group: "g", Member: "member"})
		}, func(b []byte) []byte { return reframe(b[:len(b)-3]) }},
		{"group-sub bad flag", func(e *Encoder) error {
			return e.WriteGroupSub(&GroupSub{Group: "g", Member: "m"})
		}, func(b []byte) []byte {
			b[frameHeaderSize+2+1+2+1] = 7 // from-start flag position
			return reframe(b)
		}},
		{"assign truncated", func(e *Encoder) error {
			return e.WriteAssign(&Assign{Epoch: 1, NumPartitions: 4, Partitions: []uint16{0, 1}})
		}, func(b []byte) []byte { return reframe(b[:len(b)-2]) }},
		{"snapshot count lies", func(e *Encoder) error {
			return e.WriteSnapshot(&SnapshotFrame{Partition: 0, EndOffset: 3, Latest: []Signal{sig}})
		}, func(b []byte) []byte {
			b[frameHeaderSize+10]++ // count field
			return reframe(b)
		}},
		{"delta bad sealed flag", func(e *Encoder) error {
			return e.WriteDelta(&DeltaFrame{Partition: 0, Signals: []Signal{sig}})
		}, func(b []byte) []byte {
			b[frameHeaderSize+2] = 9
			return reframe(b)
		}},
		{"ack short", func(e *Encoder) error {
			return e.WriteAck(&AckFrame{Partition: 0, Offset: 1})
		}, func(b []byte) []byte { return reframe(b[:len(b)-1]) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			enc := NewEncoder(&buf, nil)
			if err := tc.write(enc); err != nil {
				t.Fatal(err)
			}
			raw := tc.mut(append([]byte(nil), buf.Bytes()...))
			if _, err := NewDecoder(bytes.NewReader(raw)).Read(); err == nil {
				t.Fatal("malformed frame accepted")
			}
		})
	}
}
