package feed

import (
	"encoding/binary"
	"math"
)

// Farm extension frames. The distributed sweep farm (internal/farm)
// deals sweep work units from a coordinator to remote worker processes
// over the same length-prefixed CRC-framed wire as the quote feed and
// the signal broker, with seven extra frame types: Join (worker →
// coordinator: name + sweep-configuration fingerprint, plus the rejoin
// fields — prior session id, prior coordinator epoch and held lease
// ids — that let a worker survive a coordinator restart without losing
// compute), Grant (coordinator → worker: session id + coordinator
// epoch + sweep progress, the accept for a Join), Refuse (coordinator
// → worker: an explicit, fatal rejection — version or fingerprint
// mismatch — distinguishable from a mere connection failure so healthy
// workers retry restarts but exit loudly on misconfiguration), Lease
// (coordinator → worker: a generation-fenced, TTL-bounded claim on one
// (day, pair-block) group's missing units), Result (worker →
// coordinator: one completed unit's per-pair trade returns, stamped
// with the lease's generation and the coordinator epoch so fenced
// zombies — of either kind — are detectable), ResultAck (coordinator →
// worker: the unit was journaled durably; the worker may drop its
// redelivery copy) and Steal (worker → coordinator: a pull request for
// more work — the cross-host analogue of sched.Steal's deque pop).
// Heartbeat (worker → coordinator: lease renewal) and End (coordinator
// → worker: sweep complete) are shared with the quote feed.
const (
	FrameJoin      FrameType = 11
	FrameGrant     FrameType = 12
	FrameLease     FrameType = 13
	FrameResult    FrameType = 14
	FrameSteal     FrameType = 15
	FrameRefuse    FrameType = 16
	FrameResultAck FrameType = 17
)

// Join is the worker's first frame: its name (diagnostics only) and
// the FNV-64a fingerprint of the sweep configuration it was started
// with. The coordinator refuses a mismatched fingerprint — a worker
// built from a different seed, universe, grid or screening setup would
// journal values from a different sweep.
//
// The rejoin fields are zero on a fresh join. A worker reconnecting
// after a session loss (coordinator restart, standby takeover, wire
// fault) sets PriorSession and PriorEpoch to its last Grant's values
// and HeldLeases to the lease ids it still holds unfinished or
// unacked work for; a coordinator that can validate those against its
// durable lease table re-confirms the groups to the new session so
// the worker's in-flight compute is not thrown away.
type Join struct {
	Version     uint16
	Name        string
	Fingerprint string
	// Rejoin fields; all zero for a fresh join.
	PriorSession uint64
	PriorEpoch   uint64
	HeldLeases   []uint64
}

// Grant accepts a Join: the worker's session id (echoed in Heartbeat
// frames to renew its leases), the coordinator epoch (stamped into
// every Result so a stale incarnation's deliveries are fenced), plus
// the sweep's total and already-journaled unit counts for worker-side
// logging.
type Grant struct {
	Session    uint64
	Epoch      uint64
	UnitsTotal uint64
	UnitsDone  uint64
}

// Refuse reasons.
const (
	RefuseVersion     uint16 = 1 // protocol version mismatch
	RefuseFingerprint uint16 = 2 // sweep configuration fingerprint mismatch
)

// Refuse rejects a Join explicitly. Unlike a dropped connection — which
// a worker treats as "coordinator unreachable" and retries under
// backoff (a coordinator restart window looks exactly like that) — a
// Refuse is a deliberate, permanent verdict: this worker's version or
// sweep configuration can never join this coordinator, so it must exit
// loudly instead of burning its retry budget.
type Refuse struct {
	Code   uint16
	Reason string
}

// Lease assigns one (day, pair-block) group's missing units to a
// worker. Gen is the group's generation fencing token: it is bumped
// every time the group is (re)assigned, and a Result carrying a stale
// generation is rejected. TTLMillis is how long the coordinator will
// wait between heartbeats before declaring the holder dead and
// reassigning; Params lists the flat parameter indexes still missing
// (a reassigned group re-leases only what its dead holder never
// delivered).
type Lease struct {
	ID        uint64
	Gen       uint64
	Day       uint32
	Block     uint32
	TTLMillis uint32
	Params    []uint16
}

// Result flag bits.
const (
	// ResultRecovered marks a redelivery from a worker's unacked
	// buffer after a session loss — compute the coordinator would
	// otherwise have had to re-lease. Counted, not treated specially:
	// the value bytes are identical either way.
	ResultRecovered uint8 = 1 << 0
)

// Result delivers one completed unit: the lease and generation it was
// computed under, the coordinator epoch it was granted by, the unit's
// dense id, and the per-pair trade-return rows of the unit's block
// (ascending canonical pair id, pruned pairs as empty rows) — float64
// bits verbatim, so the coordinator journals exactly the values a
// single-host run would have. Flags carries ResultRecovered for
// rejoin redeliveries.
type Result struct {
	Lease uint64
	Gen   uint64
	Epoch uint64
	Unit  uint64
	Flags uint8
	Rets  [][]float64
}

// ResultAck confirms one unit is durably journaled. A worker buffers
// every delivered Result until its ack arrives, so a coordinator that
// dies between receiving a Result and journaling it (or between
// journaling and acking — the redelivery is then deduplicated) can be
// re-sent the finished unit instead of re-computing it.
type ResultAck struct{ Unit uint64 }

// Steal asks the coordinator for (more) work. Done carries the units
// this worker has completed so far, for coordinator-side telemetry.
// A worker that finds the queue empty is parked and receives a Lease
// (or End) when work frees up — including units reclaimed from an
// expired lease, which is how idle workers steal a dead peer's queue
// across the wire.
type Steal struct{ Done uint64 }

func (*Join) frameType() FrameType      { return FrameJoin }
func (*Grant) frameType() FrameType     { return FrameGrant }
func (*Refuse) frameType() FrameType    { return FrameRefuse }
func (*Lease) frameType() FrameType     { return FrameLease }
func (*Result) frameType() FrameType    { return FrameResult }
func (*ResultAck) frameType() FrameType { return FrameResultAck }
func (*Steal) frameType() FrameType     { return FrameSteal }

// resultHeaderSize is the fixed Result prefix: lease, gen, epoch, unit
// (8 bytes each), flags (1) and the row count (4).
const resultHeaderSize = 8*4 + 1 + 4

// MaxResultFloats bounds the total float64 count in one Result frame.
const MaxResultFloats = (MaxFrameSize - resultHeaderSize) / 8

// maxHeldLeases bounds the lease ids a rejoining worker may claim in
// one Join frame; a worker computes one group at a time plus a short
// queue of pushed re-confirmations, so real counts are single digits.
const maxHeldLeases = 1024

// WriteJoin emits a worker's join request.
func (e *Encoder) WriteJoin(j *Join) error {
	if len(j.Name) > maxSymbolLen || len(j.Fingerprint) > maxSymbolLen {
		return protoErrf("join name or fingerprint too long")
	}
	if len(j.HeldLeases) > maxHeldLeases {
		return protoErrf("join claims %d held leases (limit %d)", len(j.HeldLeases), maxHeldLeases)
	}
	e.begin(FrameJoin)
	e.putU16(j.Version)
	e.putU16(uint16(len(j.Name)))
	e.buf = append(e.buf, j.Name...)
	e.putU16(uint16(len(j.Fingerprint)))
	e.buf = append(e.buf, j.Fingerprint...)
	e.putU64(j.PriorSession)
	e.putU64(j.PriorEpoch)
	e.putU16(uint16(len(j.HeldLeases)))
	for _, id := range j.HeldLeases {
		e.putU64(id)
	}
	return e.finish()
}

// WriteGrant emits the coordinator's join accept.
func (e *Encoder) WriteGrant(g *Grant) error {
	e.begin(FrameGrant)
	e.putU64(g.Session)
	e.putU64(g.Epoch)
	e.putU64(g.UnitsTotal)
	e.putU64(g.UnitsDone)
	return e.finish()
}

// WriteRefuse emits an explicit join rejection.
func (e *Encoder) WriteRefuse(r *Refuse) error {
	if len(r.Reason) > maxSymbolLen {
		return protoErrf("refuse reason too long")
	}
	e.begin(FrameRefuse)
	e.putU16(r.Code)
	e.putU16(uint16(len(r.Reason)))
	e.buf = append(e.buf, r.Reason...)
	return e.finish()
}

// WriteLease emits a group lease.
func (e *Encoder) WriteLease(l *Lease) error {
	if len(l.Params) > math.MaxUint16 {
		return protoErrf("lease carries %d params", len(l.Params))
	}
	e.begin(FrameLease)
	e.putU64(l.ID)
	e.putU64(l.Gen)
	e.putU32(l.Day)
	e.putU32(l.Block)
	e.putU32(l.TTLMillis)
	e.putU16(uint16(len(l.Params)))
	for _, p := range l.Params {
		e.putU16(p)
	}
	return e.finish()
}

// WriteResult emits one completed unit.
func (e *Encoder) WriteResult(r *Result) error {
	total := 0
	for _, row := range r.Rets {
		total += len(row)
	}
	if total > MaxResultFloats {
		return protoErrf("result of %d returns exceeds limit %d", total, MaxResultFloats)
	}
	e.begin(FrameResult)
	e.putU64(r.Lease)
	e.putU64(r.Gen)
	e.putU64(r.Epoch)
	e.putU64(r.Unit)
	e.buf = append(e.buf, r.Flags)
	e.putU32(uint32(len(r.Rets)))
	for _, row := range r.Rets {
		e.putU32(uint32(len(row)))
		for _, v := range row {
			e.putF64(v)
		}
	}
	return e.finish()
}

// WriteResultAck emits a durability confirmation for one unit.
func (e *Encoder) WriteResultAck(a *ResultAck) error {
	e.begin(FrameResultAck)
	e.putU64(a.Unit)
	return e.finish()
}

// WriteSteal emits a work request.
func (e *Encoder) WriteSteal(s *Steal) error {
	e.begin(FrameSteal)
	e.putU64(s.Done)
	return e.finish()
}

func decodeJoin(p []byte) (*Join, error) {
	if len(p) < 2 {
		return nil, protoErrf("join payload too short (%d bytes)", len(p))
	}
	j := &Join{Version: binary.LittleEndian.Uint16(p)}
	p = p[2:]
	str := func(what string) (string, error) {
		if len(p) < 2 {
			return "", protoErrf("join truncated before %s", what)
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return "", protoErrf("join %s truncated", what)
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	var err error
	if j.Name, err = str("name"); err != nil {
		return nil, err
	}
	if j.Fingerprint, err = str("fingerprint"); err != nil {
		return nil, err
	}
	if len(p) < 18 {
		return nil, protoErrf("join truncated before rejoin fields")
	}
	j.PriorSession = binary.LittleEndian.Uint64(p)
	j.PriorEpoch = binary.LittleEndian.Uint64(p[8:])
	count := int(binary.LittleEndian.Uint16(p[16:]))
	p = p[18:]
	if count > maxHeldLeases {
		return nil, protoErrf("join claims %d held leases (limit %d)", count, maxHeldLeases)
	}
	if len(p) != count*8 {
		return nil, protoErrf("join declares %d held leases but carries %d bytes", count, len(p))
	}
	j.HeldLeases = make([]uint64, count)
	for i := range j.HeldLeases {
		j.HeldLeases[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	return j, nil
}

func decodeGrant(p []byte) (*Grant, error) {
	if len(p) != 32 {
		return nil, protoErrf("grant payload %d bytes, want 32", len(p))
	}
	return &Grant{
		Session:    binary.LittleEndian.Uint64(p),
		Epoch:      binary.LittleEndian.Uint64(p[8:]),
		UnitsTotal: binary.LittleEndian.Uint64(p[16:]),
		UnitsDone:  binary.LittleEndian.Uint64(p[24:]),
	}, nil
}

func decodeRefuse(p []byte) (*Refuse, error) {
	if len(p) < 4 {
		return nil, protoErrf("refuse payload too short (%d bytes)", len(p))
	}
	r := &Refuse{Code: binary.LittleEndian.Uint16(p)}
	n := int(binary.LittleEndian.Uint16(p[2:]))
	p = p[4:]
	if len(p) != n {
		return nil, protoErrf("refuse declares %d reason bytes but carries %d", n, len(p))
	}
	r.Reason = string(p)
	return r, nil
}

func decodeLease(p []byte) (*Lease, error) {
	if len(p) < 30 {
		return nil, protoErrf("lease payload too short (%d bytes)", len(p))
	}
	l := &Lease{
		ID:        binary.LittleEndian.Uint64(p),
		Gen:       binary.LittleEndian.Uint64(p[8:]),
		Day:       binary.LittleEndian.Uint32(p[16:]),
		Block:     binary.LittleEndian.Uint32(p[20:]),
		TTLMillis: binary.LittleEndian.Uint32(p[24:]),
	}
	count := int(binary.LittleEndian.Uint16(p[28:]))
	p = p[30:]
	if len(p) != count*2 {
		return nil, protoErrf("lease declares %d params but carries %d bytes", count, len(p))
	}
	l.Params = make([]uint16, count)
	for i := range l.Params {
		l.Params[i] = binary.LittleEndian.Uint16(p[i*2:])
	}
	return l, nil
}

func decodeResult(p []byte) (*Result, error) {
	if len(p) < resultHeaderSize {
		return nil, protoErrf("result payload too short (%d bytes)", len(p))
	}
	r := &Result{
		Lease: binary.LittleEndian.Uint64(p),
		Gen:   binary.LittleEndian.Uint64(p[8:]),
		Epoch: binary.LittleEndian.Uint64(p[16:]),
		Unit:  binary.LittleEndian.Uint64(p[24:]),
		Flags: p[32],
	}
	rows := int(binary.LittleEndian.Uint32(p[33:]))
	p = p[resultHeaderSize:]
	if rows > MaxResultFloats {
		return nil, protoErrf("result declares %d rows", rows)
	}
	// Rows are always non-nil, zero trades included: the coordinator
	// journals these slices verbatim, and backtest.TradeReturns (the
	// single-host path) never produces a nil row — nil would marshal
	// as JSON null instead of [] and break merge byte-identity.
	r.Rets = make([][]float64, rows)
	for i := range r.Rets {
		if len(p) < 4 {
			return nil, protoErrf("result truncated at row %d", i)
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n > MaxResultFloats || len(p) < n*8 {
			return nil, protoErrf("result row %d declares %d returns but carries %d bytes", i, n, len(p))
		}
		row := make([]float64, n)
		for k := range row {
			row[k] = math.Float64frombits(binary.LittleEndian.Uint64(p[k*8:]))
		}
		r.Rets[i] = row
		p = p[n*8:]
	}
	if len(p) != 0 {
		return nil, protoErrf("result has %d trailing bytes", len(p))
	}
	return r, nil
}
