package feed

// End-to-end acceptance test: the Figure-1 pipeline fed over the wire
// (feed.Server on loopback → ≥ 2 feed.Collector clients) must produce
// exactly the same order stream as the in-process run on identical
// synthetic data. The binary codec is bit-exact, so the comparison is
// strict equality, not tolerance-based.

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"marketminer/internal/core"
	"marketminer/internal/market"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

func TestE2E_NetworkedPipelineMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	u, err := taq.NewUniverse([]string{"XOM", "CVX", "UPS", "FDX", "WMT"})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := market.NewGenerator(market.Config{Universe: u, Seed: 17, Days: 1, Contamination: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	quotes := day.Quotes

	p := strategy.DefaultParams()
	p.M = 50
	cfg := func(u *taq.Universe) core.PipelineConfig {
		return core.PipelineConfig{Universe: u, Params: []strategy.Params{p}}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	baseline, err := core.RunPipeline(ctx, cfg(u), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}

	s, addr := startServer(t, ServerConfig{Universe: u, BatchSize: 512})
	go func() {
		s.PublishBatch(quotes)
		s.Finish()
	}()

	const nClients = 2
	results := make([]*core.PipelineResult, nClients)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewCollector(CollectorConfig{Addr: addr, HeartbeatTimeout: 30 * time.Second})
			go c.Run(ctx)
			// The universe arrives over the wire in Hello — the
			// pipeline is configured entirely from the feed.
			cu, err := c.Universe(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = core.RunPipelineSource(ctx, cfg(cu), core.ChannelSource(c.Quotes()), 0)
		}(i)
	}
	wg.Wait()

	for i := 0; i < nClients; i++ {
		if errs[i] != nil {
			t.Fatalf("collector pipeline %d: %v", i, errs[i])
		}
		got := results[i]
		if got.QuotesIn != baseline.QuotesIn || got.QuotesClean != baseline.QuotesClean {
			t.Errorf("client %d: quotes in/clean = %d/%d, baseline %d/%d",
				i, got.QuotesIn, got.QuotesClean, baseline.QuotesIn, baseline.QuotesClean)
		}
		if got.Orders != baseline.Orders || got.OrdersRejected != baseline.OrdersRejected {
			t.Errorf("client %d: orders = %d (%d rejected), baseline %d (%d)",
				i, got.Orders, got.OrdersRejected, baseline.Orders, baseline.OrdersRejected)
		}
		if got.CashPnL != baseline.CashPnL {
			t.Errorf("client %d: cash PnL = %v, baseline %v", i, got.CashPnL, baseline.CashPnL)
		}
		if !reflect.DeepEqual(got.Trades, baseline.Trades) {
			t.Errorf("client %d: trade stream differs from in-process run (%d vs %d trades)",
				i, len(got.Trades[0]), len(baseline.Trades[0]))
		}
	}
}
