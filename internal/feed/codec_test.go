package feed

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"marketminer/internal/taq"
)

func testUniverse(t *testing.T) *taq.Universe {
	t.Helper()
	u, err := taq.NewUniverse([]string{"XOM", "CVX", "UPS", "FDX"})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func testQuotes(u *taq.Universe, n int, day int) []taq.Quote {
	out := make([]taq.Quote, n)
	for i := range out {
		out[i] = taq.Quote{
			Day:     day,
			SeqTime: float64(i) * 0.25,
			Symbol:  u.Symbol(i % u.Len()),
			Bid:     100 + float64(i)*0.01,
			Ask:     100.02 + float64(i)*0.01,
			BidSize: i % 50,
			AskSize: (i * 3) % 70,
		}
	}
	return out
}

func TestCodecRoundTripAllFrames(t *testing.T) {
	u := testUniverse(t)
	var buf bytes.Buffer
	enc := NewEncoder(&buf, u)

	quotes := testQuotes(u, 100, 3)
	frames := []struct {
		name  string
		write func() error
	}{
		{"hello", func() error {
			return enc.WriteHello(&Hello{Version: ProtocolVersion, Symbols: u.Symbols()})
		}},
		{"batch", func() error { return enc.WriteBatch(&Batch{Seq: 1, Day: 3, Quotes: quotes}) }},
		{"empty-batch", func() error { return enc.WriteBatch(&Batch{Seq: 2, Day: 3}) }},
		{"heartbeat", func() error { return enc.WriteHeartbeat(&Heartbeat{Seq: 2}) }},
		{"end", func() error { return enc.WriteEnd(&End{Seq: 2}) }},
		{"subscribe", func() error { return enc.WriteSubscribe(&Subscribe{From: 7}) }},
	}
	for _, f := range frames {
		if err := f.write(); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
	}

	dec := NewDecoder(&buf)
	f, err := dec.Read()
	if err != nil {
		t.Fatal(err)
	}
	hello, ok := f.(*Hello)
	if !ok || hello.Version != ProtocolVersion || len(hello.Symbols) != u.Len() {
		t.Fatalf("hello mismatch: %+v", f)
	}
	f, err = dec.Read()
	if err != nil {
		t.Fatal(err)
	}
	b := f.(*Batch)
	if b.Seq != 1 || b.Day != 3 || len(b.Quotes) != len(quotes) {
		t.Fatalf("batch header mismatch: seq=%d day=%d n=%d", b.Seq, b.Day, len(b.Quotes))
	}
	for i := range quotes {
		if b.Quotes[i] != quotes[i] {
			t.Fatalf("quote %d: got %+v want %+v", i, b.Quotes[i], quotes[i])
		}
	}
	if f, err = dec.Read(); err != nil || len(f.(*Batch).Quotes) != 0 {
		t.Fatalf("empty batch: %+v, %v", f, err)
	}
	if f, err = dec.Read(); err != nil || f.(*Heartbeat).Seq != 2 {
		t.Fatalf("heartbeat: %+v, %v", f, err)
	}
	if f, err = dec.Read(); err != nil || f.(*End).Seq != 2 {
		t.Fatalf("end: %+v, %v", f, err)
	}
	if f, err = dec.Read(); err != nil || f.(*Subscribe).From != 7 {
		t.Fatalf("subscribe: %+v, %v", f, err)
	}
	if _, err = dec.Read(); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

func TestCodecPreservesExactFloats(t *testing.T) {
	// Binary framing must be bit-exact — no CSV rounding.
	u := testUniverse(t)
	var buf bytes.Buffer
	enc := NewEncoder(&buf, u)
	enc.WriteHello(&Hello{Version: ProtocolVersion, Symbols: u.Symbols()})
	q := taq.Quote{Day: 0, SeqTime: 1.0 / 3, Symbol: "XOM", Bid: math.Pi, Ask: math.E * 2, BidSize: 1, AskSize: 1}
	if err := enc.WriteBatch(&Batch{Seq: 1, Quotes: []taq.Quote{q}}); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	dec.Read() // hello
	f, err := dec.Read()
	if err != nil {
		t.Fatal(err)
	}
	got := f.(*Batch).Quotes[0]
	if got.Bid != math.Pi || got.Ask != math.E*2 || got.SeqTime != 1.0/3 {
		t.Fatalf("floats not bit-exact: %+v", got)
	}
}

func TestEncoderRejectsBadBatches(t *testing.T) {
	u := testUniverse(t)
	var buf bytes.Buffer

	if err := NewEncoder(&buf, nil).WriteBatch(&Batch{Seq: 1}); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil-universe encoder: %v", err)
	}
	enc := NewEncoder(&buf, u)
	bad := &Batch{Seq: 1, Quotes: []taq.Quote{{Symbol: "NOPE", Bid: 1, Ask: 2}}}
	if err := enc.WriteBatch(bad); !errors.Is(err, ErrProtocol) {
		t.Errorf("unknown symbol: %v", err)
	}
	neg := &Batch{Seq: 1, Quotes: []taq.Quote{{Symbol: "XOM", Bid: 1, Ask: 2, BidSize: -1}}}
	if err := enc.WriteBatch(neg); !errors.Is(err, ErrProtocol) {
		t.Errorf("negative size: %v", err)
	}
}

// rawFrame hand-builds a wire frame with a correct length prefix and
// CRC, so corruption tests can reach the structural checks that run
// after checksum verification.
func rawFrame(t FrameType, payload []byte) []byte {
	out := make([]byte, 0, frameHeaderSize+len(payload))
	out = append(out, byte(t), 0, 0, 0, 0, 0, 0, 0, 0)
	out = append(out, payload...)
	binary.LittleEndian.PutUint32(out[1:5], uint32(len(payload)))
	crc := crc32.Update(0, crc32.IEEETable, out[:1])
	crc = crc32.Update(crc, crc32.IEEETable, out[frameHeaderSize:])
	binary.LittleEndian.PutUint32(out[5:frameHeaderSize], crc)
	return out
}

func TestDecoderRejectsCorruptStreams(t *testing.T) {
	u := testUniverse(t)
	goodHello := func() []byte {
		var buf bytes.Buffer
		NewEncoder(&buf, u).WriteHello(&Hello{Version: 1, Symbols: u.Symbols()})
		return buf.Bytes()
	}
	goodBatch := func() []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, u)
		enc.WriteBatch(&Batch{Seq: 1, Quotes: testQuotes(u, 3, 0)})
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		stream  []byte
		wantEOF bool // torn-frame cases surface as ErrUnexpectedEOF
	}{
		{"unknown-type", rawFrame(FrameType(0xEE), nil), false},
		{"oversized-length", []byte{byte(FrameBatch), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, false},
		{"torn-header", []byte{byte(FrameBatch), 1, 0}, true},
		{"torn-payload", append([]byte{byte(FrameHeartbeat), 8, 0, 0, 0, 0, 0, 0, 0}, 1, 2, 3), true},
		{"batch-before-hello", goodBatch(), false},
		{"bad-checksum", func() []byte {
			f := rawFrame(FrameHeartbeat, []byte{1, 0, 0, 0, 0, 0, 0, 0})
			f[len(f)-1] ^= 0x40 // corrupt payload after the CRC was sealed
			return f
		}(), false},
		{"heartbeat-short-payload", rawFrame(FrameHeartbeat, []byte{1, 2}), false},
		{"hello-truncated-symbols", rawFrame(FrameHello, []byte{1, 0, 5, 0, 0, 0, 9}), false},
		{"batch-bad-count", append(goodHello(), rawFrame(FrameBatch, []byte{
			1, 0, 0, 0, 0, 0, 0, 0, // seq
			0, 0, 0, 0, // day
			200, 0, 0, 0, // count=200, no data
		})...), false},
		{"batch-symbol-out-of-range", append(goodHello(), func() []byte {
			// Hand-build a 1-quote batch with symbol index 9999.
			p := make([]byte, 0, batchHeaderSize+quoteWireSize)
			p = append(p, 1, 0, 0, 0, 0, 0, 0, 0) // seq
			p = append(p, 0, 0, 0, 0)             // day
			p = append(p, 1, 0, 0, 0)             // count
			p = append(p, 0x0F, 0x27)             // idx 9999
			p = append(p, make([]byte, quoteWireSize-2)...)
			return rawFrame(FrameBatch, p)
		}()...), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewDecoder(bytes.NewReader(tc.stream))
			var err error
			for err == nil {
				_, err = dec.Read()
			}
			if tc.wantEOF {
				if err != io.ErrUnexpectedEOF {
					t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
				}
				return
			}
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("err = %v, want ErrProtocol", err)
			}
		})
	}
}

func TestCodecDetectsEveryBitFlip(t *testing.T) {
	// Flip one bit at every byte position of an encoded hello+batch
	// stream; the decoder must report an error for every flip — never
	// silently deliver different quotes. This is the property the chaos
	// harness's byte-corruption mode leans on for its zero-loss e2e:
	// corruption always surfaces as a dropped connection, and the
	// collector refetches from its last good sequence number.
	u := testUniverse(t)
	var buf bytes.Buffer
	enc := NewEncoder(&buf, u)
	if err := enc.WriteHello(&Hello{Version: ProtocolVersion, Symbols: u.Symbols()}); err != nil {
		t.Fatal(err)
	}
	quotes := testQuotes(u, 8, 1)
	if err := enc.WriteBatch(&Batch{Seq: 1, Day: 1, Quotes: quotes}); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEnd(&End{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	decodeAll := func(stream []byte) ([]Frame, error) {
		dec := NewDecoder(bytes.NewReader(stream))
		var out []Frame
		for {
			f, err := dec.Read()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return out, err
			}
			out = append(out, f)
		}
	}
	if frames, err := decodeAll(clean); err != nil || len(frames) != 3 {
		t.Fatalf("clean stream: %d frames, err=%v", len(frames), err)
	}

	for pos := 0; pos < len(clean); pos++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := bytes.Clone(clean)
			mut[pos] ^= bit
			if _, err := decodeAll(mut); err == nil {
				t.Fatalf("bit flip at byte %d (mask %#02x) decoded silently", pos, bit)
			}
		}
	}
}

func TestCodecCompactness(t *testing.T) {
	// The wire format should be materially smaller than CSV for the
	// same quotes — the point of a binary codec on a 50 GB/day feed.
	u := testUniverse(t)
	quotes := testQuotes(u, 1000, 0)

	var bin bytes.Buffer
	enc := NewEncoder(&bin, u)
	enc.WriteHello(&Hello{Version: 1, Symbols: u.Symbols()})
	if err := enc.WriteBatch(&Batch{Seq: 1, Quotes: quotes}); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	w := taq.NewWriter(&csv)
	for _, q := range quotes {
		w.Write(q)
	}
	w.Flush()
	if bin.Len() >= csv.Len() {
		t.Errorf("binary %d bytes ≥ CSV %d bytes", bin.Len(), csv.Len())
	}
}
