package feed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marketminer/internal/metrics"
	"marketminer/internal/taq"
)

// startServer launches a Server on a loopback listener and returns it
// with the listener address. The listener goroutine is cleaned up by
// Server.Close via t.Cleanup.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

// runCollector starts c.Run in the background and returns a function
// that drains the quote channel to completion and reports Run's error.
func runCollector(ctx context.Context, c *Collector) (drain func() ([]taq.Quote, error)) {
	errCh := make(chan error, 1)
	go func() { errCh <- c.Run(ctx) }()
	return func() ([]taq.Quote, error) {
		var got []taq.Quote
		for q := range c.Quotes() {
			got = append(got, q)
		}
		return got, <-errCh
	}
}

func assertSameQuotes(t *testing.T, got, want []taq.Quote) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("received %d quotes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("quote %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestServerServesTwoCollectorsSnapshotAndLiveTail covers the basic
// contract: an early subscriber sees history + live tail across an
// idle (heartbeat-bridged) pause, a late subscriber gets the snapshot,
// and both receive the identical, complete, ordered stream.
func TestServerServesTwoCollectorsSnapshotAndLiveTail(t *testing.T) {
	u := testUniverse(t)
	quotes := testQuotes(u, 500, 0)
	s, addr := startServer(t, ServerConfig{Universe: u, BatchSize: 16, Heartbeat: 20 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// First half published before anyone subscribes.
	s.PublishBatch(quotes[:250])
	s.Flush()

	early := NewCollector(CollectorConfig{Addr: addr, HeartbeatTimeout: 2 * time.Second})
	drainEarly := runCollector(ctx, early)
	if _, err := early.Universe(ctx); err != nil {
		t.Fatal(err)
	}

	// Idle pause: the early subscriber must be kept alive by
	// heartbeats, not disconnected.
	time.Sleep(120 * time.Millisecond)

	// Tail goes out live; a second collector subscribes mid-tail and
	// must see the full snapshot.
	s.PublishBatch(quotes[250:400])
	s.Flush()
	late := NewCollector(CollectorConfig{Addr: addr, HeartbeatTimeout: 2 * time.Second})
	drainLate := runCollector(ctx, late)
	s.PublishBatch(quotes[400:])
	s.Finish()

	gotEarly, err := drainEarly()
	if err != nil {
		t.Fatalf("early collector: %v", err)
	}
	gotLate, err := drainLate()
	if err != nil {
		t.Fatalf("late collector: %v", err)
	}
	assertSameQuotes(t, gotEarly, quotes)
	assertSameQuotes(t, gotLate, quotes)

	st := early.Stats()
	if st.Disconnects != 0 || st.Gaps != 0 || st.Duplicates != 0 {
		t.Errorf("early collector not clean: %+v", st)
	}
	if st.OrderViolations != 0 {
		t.Errorf("order violations on an ordered stream: %d", st.OrderViolations)
	}
	if got := s.Stats(); got.Served != 2 || got.Quotes != len(quotes) {
		t.Errorf("server stats: %+v", got)
	}
}

// TestServerSnapshotAfterFinish: a collector that subscribes after the
// stream ended still receives the entire retained log plus End.
func TestServerSnapshotAfterFinish(t *testing.T) {
	u := testUniverse(t)
	quotes := testQuotes(u, 300, 2)
	s, addr := startServer(t, ServerConfig{Universe: u, BatchSize: 64})
	s.PublishBatch(quotes)
	s.Finish()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := NewCollector(CollectorConfig{Addr: addr})
	got, err := runCollector(ctx, c)()
	if err != nil {
		t.Fatal(err)
	}
	assertSameQuotes(t, got, quotes)
	if u2, _ := c.Universe(ctx); u2.Len() != u.Len() {
		t.Errorf("universe %d symbols, want %d", u2.Len(), u.Len())
	}
}

// TestServerEvictsSlowConsumer: a subscriber that stops reading is
// evicted once it falls more than QueueLen batches behind, and the
// publisher is never blocked by it.
func TestServerEvictsSlowConsumer(t *testing.T) {
	u := testUniverse(t)
	s, addr := startServer(t, ServerConfig{
		Universe: u, BatchSize: 1, QueueLen: 4, WriteTimeout: 200 * time.Millisecond,
	})

	// A raw client that subscribes and then never reads.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := NewEncoder(conn, nil).WriteSubscribe(&Subscribe{From: 0}); err != nil {
		t.Fatal(err)
	}

	q := testQuotes(u, 1, 0)[0]
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after %d batches", s.Stats().Batches)
		}
		for i := 0; i < 500; i++ {
			s.Publish(q)
		}
	}
	if st := s.Stats(); st.Evicted < 1 {
		t.Errorf("evicted = %d, want ≥ 1", st.Evicted)
	}
}

// TestServerEvictionIncrementsCounterAndLogs pins the observability
// contract of slow-consumer eviction: the process-wide metrics counter
// moves and the log line names the client address and its queue depth.
func TestServerEvictionIncrementsCounterAndLogs(t *testing.T) {
	u := testUniverse(t)
	var logMu sync.Mutex
	var lines []string
	s, addr := startServer(t, ServerConfig{
		Universe: u, BatchSize: 1, QueueLen: 4, WriteTimeout: 200 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})

	before := metrics.Counter("feed.evictions").Value()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := NewEncoder(conn, nil).WriteSubscribe(&Subscribe{From: 0}); err != nil {
		t.Fatal(err)
	}

	q := testQuotes(u, 1, 0)[0]
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after %d batches", s.Stats().Batches)
		}
		for i := 0; i < 500; i++ {
			s.Publish(q)
		}
	}
	if delta := metrics.Counter("feed.evictions").Value() - before; delta < 1 {
		t.Errorf("feed.evictions delta = %d, want ≥ 1", delta)
	}
	localAddr := conn.LocalAddr().String()
	logMu.Lock()
	defer logMu.Unlock()
	for _, line := range lines {
		if strings.Contains(line, "evicted slow consumer") {
			if !strings.Contains(line, localAddr) {
				t.Errorf("eviction log lacks client address %s: %q", localAddr, line)
			}
			if !strings.Contains(line, "queue depth") {
				t.Errorf("eviction log lacks queue depth: %q", line)
			}
			return
		}
	}
	t.Fatalf("no eviction log line in %q", lines)
}

// TestCollectorBackoffDeterministicInjectedClock covers the injectable
// RNG and clock: with a seeded Jitter rng and a fake Sleep, the
// reconnect schedule is exactly reproducible (no wall-clock time, no
// shared rand state) — the property the -race feed focus leans on.
func TestCollectorBackoffDeterministicInjectedClock(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		c := NewCollector(CollectorConfig{
			Dial:           func(ctx context.Context) (net.Conn, error) { return nil, errors.New("down") },
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     80 * time.Millisecond,
			BackoffFactor:  2,
			Jitter:         rand.New(rand.NewSource(99)),
			Sleep: func(ctx context.Context, d time.Duration) bool {
				slept = append(slept, d)
				return true
			},
			MaxAttempts: 7,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := runCollector(ctx, c)(); err == nil {
			t.Fatal("want error after MaxAttempts")
		}
		return slept
	}

	got := run()
	if len(got) != 6 { // MaxAttempts=7 → sleeps after failures 1..6
		t.Fatalf("recorded %d sleeps, want 6: %v", len(got), got)
	}

	// Recompute the expected schedule from an identically-seeded rng.
	rng := rand.New(rand.NewSource(99))
	base := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, d := range got {
		b := base[i] * time.Millisecond
		want := b/2 + time.Duration(rng.Int63n(int64(b/2)+1))
		if d != want {
			t.Errorf("sleep %d = %v, want %v", i, d, want)
		}
		if d < b/2 || d > b {
			t.Errorf("sleep %d = %v outside jitter window [%v, %v]", i, d, b/2, b)
		}
	}

	// Same seed → byte-identical schedule on a second run.
	again := run()
	if !reflect.DeepEqual(got, again) {
		t.Errorf("schedule not reproducible:\n  first  %v\n  second %v", got, again)
	}
}

// killableDialer dials the address in addr (swappable for listener
// restarts) and remembers the live connection so tests can sever it.
type killableDialer struct {
	addr atomic.Value // string
	mu   sync.Mutex
	cur  net.Conn
}

func newKillableDialer(addr string) *killableDialer {
	d := &killableDialer{}
	d.addr.Store(addr)
	return d
}

func (d *killableDialer) dial(ctx context.Context) (net.Conn, error) {
	var nd net.Dialer
	conn, err := nd.DialContext(ctx, "tcp", d.addr.Load().(string))
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.cur = conn
	d.mu.Unlock()
	return conn, nil
}

func (d *killableDialer) kill() {
	d.mu.Lock()
	if d.cur != nil {
		d.cur.Close()
	}
	d.mu.Unlock()
}

// TestCollectorResumesAfterServerRestart is the killed-and-restarted
// scenario of the acceptance criteria: mid-stream, the connection is
// severed AND the listener goes away; the collector backs off, redials
// the restarted listener, resumes from its last sequence number, and
// the delivered stream has no gap and no duplicate.
func TestCollectorResumesAfterServerRestart(t *testing.T) {
	u := testUniverse(t)
	quotes := testQuotes(u, 600, 0)
	s, err := NewServer(ServerConfig{Universe: u, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l1)

	dialer := newKillableDialer(l1.Addr().String())
	c := NewCollector(CollectorConfig{
		Dial:             dialer.dial,
		InitialBackoff:   5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		JitterSeed:       1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	drain := runCollector(ctx, c)

	// First half flows, then the world ends: connection severed and
	// listener closed, so redials fail for a while.
	s.PublishBatch(quotes[:300])
	s.Flush()
	for c.Stats().Quotes < 300 {
		time.Sleep(time.Millisecond)
	}
	l1.Close()
	dialer.kill()

	// Let several dial attempts fail against the dead listener.
	for c.Stats().DialFailures < 2 {
		time.Sleep(time.Millisecond)
	}

	// Restart on a fresh port; the collector must resume seamlessly.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dialer.addr.Store(l2.Addr().String())
	go s.Serve(l2)
	s.PublishBatch(quotes[300:])
	s.Finish()

	got, err := drain()
	if err != nil {
		t.Fatalf("collector run: %v", err)
	}
	assertSameQuotes(t, got, quotes)
	st := c.Stats()
	if st.Connects < 2 {
		t.Errorf("connects = %d, want ≥ 2 (reconnect)", st.Connects)
	}
	if st.Gaps != 0 {
		t.Errorf("gaps = %d, want 0 (resume must be seamless)", st.Gaps)
	}
	if st.DialFailures < 2 {
		t.Errorf("dial failures = %d, want ≥ 2", st.DialFailures)
	}
}

// chokeConn kills the connection after a byte budget is read — the
// flaky-transport harness for resilience tests.
type chokeConn struct {
	net.Conn
	mu     sync.Mutex
	budget int // < 0 means unlimited
}

var errChoked = errors.New("flaky: connection killed")

func (c *chokeConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	budget := c.budget
	c.mu.Unlock()
	if budget == 0 {
		c.Conn.Close()
		return 0, errChoked
	}
	if budget > 0 && len(p) > budget {
		p = p[:budget]
	}
	n, err := c.Conn.Read(p)
	if budget > 0 {
		c.mu.Lock()
		c.budget -= n
		c.mu.Unlock()
	}
	return n, err
}

// flakyDialer fails the first `refusals` dials outright, then hands
// out connections with per-session read budgets (the last budget
// repeats; < 0 is unlimited).
type flakyDialer struct {
	addr     string
	mu       sync.Mutex
	refusals int
	budgets  []int
	session  int
}

func (d *flakyDialer) dial(ctx context.Context) (net.Conn, error) {
	d.mu.Lock()
	if d.refusals > 0 {
		d.refusals--
		d.mu.Unlock()
		return nil, errors.New("flaky: dial refused")
	}
	i := d.session
	if i >= len(d.budgets) {
		i = len(d.budgets) - 1
	}
	budget := d.budgets[i]
	d.session++
	d.mu.Unlock()

	var nd net.Dialer
	conn, err := nd.DialContext(ctx, "tcp", d.addr)
	if err != nil {
		return nil, err
	}
	return &chokeConn{Conn: conn, budget: budget}, nil
}

// TestCollectorFlakyTransportZeroLoss drops the connection mid-stream
// repeatedly (byte-budgeted sessions) after refusing the first dials,
// and asserts: exponential backoff growth across consecutive failures,
// multiple reconnects, and zero quote loss / zero duplicates in the
// delivered stream, enforced by sequence-numbered resume.
func TestCollectorFlakyTransportZeroLoss(t *testing.T) {
	u := testUniverse(t)
	quotes := testQuotes(u, 2000, 1)
	s, addr := startServer(t, ServerConfig{Universe: u, BatchSize: 32})
	s.PublishBatch(quotes)
	s.Finish()

	d := &flakyDialer{addr: addr, refusals: 3, budgets: []int{900, 2500, 6000, -1}}
	c := NewCollector(CollectorConfig{
		Dial:             d.dial,
		InitialBackoff:   4 * time.Millisecond,
		MaxBackoff:       40 * time.Millisecond,
		HeartbeatTimeout: 2 * time.Second,
		JitterSeed:       42,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, err := runCollector(ctx, c)()
	if err != nil {
		t.Fatalf("collector run: %v", err)
	}

	// Zero loss, zero duplication, original order.
	assertSameQuotes(t, got, quotes)

	st := c.Stats()
	if st.Connects < 3 {
		t.Errorf("connects = %d, want ≥ 3 (choked sessions must reconnect)", st.Connects)
	}
	if st.DialFailures != 3 {
		t.Errorf("dial failures = %d, want 3", st.DialFailures)
	}
	if st.Disconnects < 2 {
		t.Errorf("disconnects = %d, want ≥ 2", st.Disconnects)
	}

	// Backoff growth across the three consecutive dial failures:
	// jitter keeps each delay in [d/2, d], so consecutive delays are
	// non-decreasing and the third strictly exceeds the first.
	if len(st.Backoffs) < 3 {
		t.Fatalf("backoffs recorded = %d, want ≥ 3", len(st.Backoffs))
	}
	b := st.Backoffs[:3]
	if !(b[0] <= b[1] && b[1] <= b[2]) {
		t.Errorf("backoffs not non-decreasing: %v", b)
	}
	if b[2] <= b[0] {
		t.Errorf("backoff did not grow: %v", b)
	}
}

// TestCollectorHeartbeatTimeout: a server that goes silent (no data,
// no heartbeats) is abandoned after HeartbeatTimeout and the collector
// recovers by reconnecting — here to a healthy server.
func TestCollectorHeartbeatTimeout(t *testing.T) {
	u := testUniverse(t)
	quotes := testQuotes(u, 100, 0)

	// The silent impostor: accepts, answers the handshake, then hangs.
	silent, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	go func() {
		conn, err := silent.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := NewDecoder(conn).Read(); err != nil { // subscribe
			return
		}
		NewEncoder(conn, u).WriteHello(&Hello{Version: ProtocolVersion, Symbols: u.Symbols()})
		time.Sleep(10 * time.Second) // silence: no batches, no heartbeats
	}()

	s, addr := startServer(t, ServerConfig{Universe: u, BatchSize: 16})
	s.PublishBatch(quotes)
	s.Finish()

	var attempts atomic.Int32
	dial := func(ctx context.Context) (net.Conn, error) {
		var nd net.Dialer
		if attempts.Add(1) == 1 {
			return nd.DialContext(ctx, "tcp", silent.Addr().String())
		}
		return nd.DialContext(ctx, "tcp", addr)
	}
	c := NewCollector(CollectorConfig{
		Dial:             dial,
		InitialBackoff:   2 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got, err := runCollector(ctx, c)()
	if err != nil {
		t.Fatal(err)
	}
	assertSameQuotes(t, got, quotes)
	if st := c.Stats(); st.Disconnects < 1 {
		t.Errorf("disconnects = %d, want ≥ 1 (silent server must time out)", st.Disconnects)
	}
}

// TestCollectorGivesUpAfterMaxAttempts bounds the retry loop.
func TestCollectorGivesUpAfterMaxAttempts(t *testing.T) {
	c := NewCollector(CollectorConfig{
		Dial:           func(ctx context.Context) (net.Conn, error) { return nil, errors.New("down") },
		InitialBackoff: time.Millisecond,
		MaxAttempts:    3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := runCollector(ctx, c)()
	if err == nil {
		t.Fatal("want error after MaxAttempts")
	}
	if len(got) != 0 {
		t.Errorf("received %d quotes from a dead feed", len(got))
	}
	if st := c.Stats(); st.DialFailures != 3 {
		t.Errorf("dial failures = %d, want 3", st.DialFailures)
	}
}

// TestCollectorStopsOnContextCancel: cancellation closes the quote
// channel and Run returns ctx.Err().
func TestCollectorStopsOnContextCancel(t *testing.T) {
	u := testUniverse(t)
	s, addr := startServer(t, ServerConfig{Universe: u})
	s.PublishBatch(testQuotes(u, 10, 0))
	s.Flush() // stream never finishes

	ctx, cancel := context.WithCancel(context.Background())
	c := NewCollector(CollectorConfig{Addr: addr, HeartbeatTimeout: 5 * time.Second})
	drain := runCollector(ctx, c)
	for c.Stats().Quotes < 10 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if _, err := drain(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestServerRequiresUniverse(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("NewServer without universe should error")
	}
}

// TestCollectorRejectsUniverseChange: a reconnect that lands on a
// server advertising different symbols must fail loudly rather than
// mis-map sequence-numbered batches.
func TestCollectorRejectsUniverseChange(t *testing.T) {
	u := testUniverse(t)
	u2, err := taq.NewUniverse([]string{"AAA", "BBB", "CCC", "DDD"})
	if err != nil {
		t.Fatal(err)
	}
	s1, addr1 := startServer(t, ServerConfig{Universe: u, BatchSize: 4})
	s2, addr2 := startServer(t, ServerConfig{Universe: u2, BatchSize: 4})
	s1.PublishBatch(testQuotes(u, 8, 0))
	s1.Flush()
	s2.Finish()

	var attempts atomic.Int32
	dial := func(ctx context.Context) (net.Conn, error) {
		var nd net.Dialer
		if attempts.Add(1) == 1 {
			return nd.DialContext(ctx, "tcp", addr1)
		}
		return nd.DialContext(ctx, "tcp", addr2)
	}
	c := NewCollector(CollectorConfig{
		Dial:             dial,
		InitialBackoff:   2 * time.Millisecond,
		HeartbeatTimeout: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	_, err = runCollector(ctx, c)()
	if !errors.Is(err, ErrUniverseChanged) {
		t.Fatalf("err = %v, want ErrUniverseChanged", err)
	}
}
