package sched

import (
	"testing"
	"time"
)

func TestMeterRateAndETA(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewMeter(100)
	m.Now = func() time.Time { return now }
	m.start = now

	now = now.Add(10 * time.Second)
	m.Add(20)
	p := m.Snapshot()
	if p.Done != 20 || p.Total != 100 {
		t.Fatalf("done/total = %d/%d", p.Done, p.Total)
	}
	if p.Rate != 2 {
		t.Fatalf("rate = %v, want 2", p.Rate)
	}
	if p.ETA != 40*time.Second {
		t.Fatalf("eta = %v, want 40s", p.ETA)
	}
}

func TestMeterSkipExcludedFromRate(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewMeter(100)
	m.Now = func() time.Time { return now }
	m.start = now

	m.Skip(80) // checkpoint-restored work
	now = now.Add(10 * time.Second)
	m.Add(10)
	p := m.Snapshot()
	if p.Done != 90 {
		t.Fatalf("done = %d, want 90 (restored + live)", p.Done)
	}
	if p.Rate != 1 {
		t.Fatalf("rate = %v, want 1 (live only)", p.Rate)
	}
	if p.ETA != 10*time.Second {
		t.Fatalf("eta = %v, want 10s for the 10 remaining", p.ETA)
	}
}

func TestMeterNoProgressNoETA(t *testing.T) {
	m := NewMeter(10)
	p := m.Snapshot()
	if p.Rate != 0 || p.ETA != 0 {
		t.Fatalf("fresh meter rate/eta = %v/%v, want zeros", p.Rate, p.ETA)
	}
}
