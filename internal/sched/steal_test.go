package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStealRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 97, 1000} {
			var counts sync.Map
			Steal(workers, n, func(w, task int) {
				c, _ := counts.LoadOrStore(task, new(atomic.Int64))
				c.(*atomic.Int64).Add(1)
			})
			seen := 0
			counts.Range(func(k, v any) bool {
				seen++
				if got := v.(*atomic.Int64).Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %v ran %d times", workers, n, k, got)
				}
				return true
			})
			if seen != n {
				t.Fatalf("workers=%d n=%d: %d tasks ran", workers, n, seen)
			}
		}
	}
}

func TestStealWorkerIDsInRange(t *testing.T) {
	const workers, n = 4, 200
	var bad atomic.Int64
	Steal(workers, n, func(w, task int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker id", bad.Load())
	}
}

// TestStealBalancesSkewedTasks builds the workload the scheduler
// exists for — one contiguous run of tasks far more expensive than the
// rest, exactly where a static range split strands a single worker —
// and asserts that other workers steal into the expensive range.
func TestStealBalancesSkewedTasks(t *testing.T) {
	const workers, n = 4, 64
	var ran [n]atomic.Int64
	steals := Steal(workers, n, func(w, task int) {
		if task < n/workers {
			// The first worker's seeded range is slow.
			time.Sleep(2 * time.Millisecond)
		}
		ran[task].Add(1)
	})
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, ran[i].Load())
		}
	}
	if steals == 0 {
		t.Error("skewed workload produced no steals")
	}
}

func TestStealNilFnAndEdgeCases(t *testing.T) {
	if got := Steal(4, 10, nil); got != 0 {
		t.Errorf("nil fn: steals = %d", got)
	}
	if got := Steal(0, 0, func(w, task int) {}); got != 0 {
		t.Errorf("empty: steals = %d", got)
	}
	// workers <= 0 degrades to sequential execution.
	var runs int
	Steal(-3, 5, func(w, task int) { runs++ })
	if runs != 5 {
		t.Errorf("workers<0 ran %d tasks, want 5", runs)
	}
}

func TestStealPanicPropagatesToCaller(t *testing.T) {
	// A panic on a worker goroutine must reach the Steal caller (after
	// every worker retires) instead of crashing the process from an
	// unjoined goroutine.
	for _, workers := range []int{1, 4} {
		var done atomic.Int64
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			Steal(workers, 32, func(worker, task int) {
				if task == 7 {
					panic("tile blew up")
				}
				done.Add(1)
			})
			t.Fatalf("workers=%d: Steal returned normally", workers)
		}()
	}
}
