package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsAllJobs(t *testing.T) {
	p := New(4)
	var hits [100]atomic.Int32
	err := p.Map(context.Background(), 100, func(ctx context.Context, i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, hits[i].Load())
		}
	}
	if p.Completed() != 100 {
		t.Errorf("Completed = %d", p.Completed())
	}
}

func TestConcurrencyBound(t *testing.T) {
	p := New(3)
	var cur, max atomic.Int32
	var mu sync.Mutex
	err := p.Map(context.Background(), 50, func(ctx context.Context, i int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > max.Load() {
			max.Store(n)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > 3 {
		t.Errorf("observed %d concurrent jobs, bound is 3", m)
	}
}

func TestFirstErrorCancels(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	var ran atomic.Int32
	err := p.Map(context.Background(), 10000, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() >= 10000 {
		t.Error("error did not cancel outstanding jobs")
	}
}

func TestContextCancellation(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := p.Map(ctx, 1000000, func(ctx context.Context, i int) error {
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunJobList(t *testing.T) {
	p := New(2)
	var sum atomic.Int64
	jobs := make([]Job, 10)
	for i := range jobs {
		v := int64(i)
		jobs[i] = func(ctx context.Context) error {
			sum.Add(v)
			return nil
		}
	}
	if err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestRunRejectsNilJob(t *testing.T) {
	p := New(1)
	if err := p.Run(context.Background(), []Job{nil}); err == nil {
		t.Error("nil job should error")
	}
}

func TestMapEdgeCases(t *testing.T) {
	p := New(0) // clamps to 1
	if p.Workers() != 1 {
		t.Errorf("Workers = %d", p.Workers())
	}
	if err := p.Map(context.Background(), 0, func(ctx context.Context, i int) error { return nil }); err != nil {
		t.Errorf("n=0 should be a no-op: %v", err)
	}
	if err := p.Map(context.Background(), -1, func(ctx context.Context, i int) error { return nil }); err == nil {
		t.Error("negative n should error")
	}
	if err := p.Map(context.Background(), 5, nil); err == nil {
		t.Error("nil fn should error")
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	err := p.Map(context.Background(), 64, func(ctx context.Context, i int) error {
		if i == 17 {
			panic("bad unit")
		}
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("panicking job should surface as a Map error")
	}
	if !strings.Contains(err.Error(), "job 17 panicked") || !strings.Contains(err.Error(), "bad unit") {
		t.Errorf("error does not identify the panicking job: %v", err)
	}
}
