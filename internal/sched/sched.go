// Package sched is a bounded-worker job scheduler emulating the Sun
// Grid Engine farm of the paper's Approach 2 ("creating scripts which
// sent out independent Matlab jobs to a Sun Grid Engine scheduler").
// Jobs are independent closures; the pool bounds concurrency, tracks
// completion counts, and cancels outstanding work on the first error —
// the same submit/wait contract an SGE array job gives, with goroutines
// standing in for cluster slots.
//
// Beyond the Pool, the package hosts the deterministic-parallelism
// primitives the engines build on: Map, which writes result i of job i
// into a dense slice so the output ordering is invariant to worker
// count and interleaving; Steal, a tile-claiming counter/deque that
// lets idle workers take tiles from slow ones without changing which
// tile computes which output; and Meter, which samples per-worker
// utilisation for the scaling experiments. The contract throughout:
// scheduling choices may change timing, never results.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Job is one unit of independent work.
type Job func(ctx context.Context) error

// Pool is a fixed-size worker pool. The zero value is unusable; use
// New.
type Pool struct {
	workers int
	done    atomic.Int64
}

// New returns a pool with the given concurrency (clamped to ≥ 1).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// Completed returns the number of jobs that have finished successfully
// across all Run/Map calls on this pool.
func (p *Pool) Completed() int64 { return p.done.Load() }

// Run executes all jobs, at most Workers at a time. It returns the
// first job error (cancelling the rest) or ctx's error if cancelled.
func (p *Pool) Run(ctx context.Context, jobs []Job) error {
	for i, j := range jobs {
		if j == nil {
			return fmt.Errorf("sched: job %d is nil", i)
		}
	}
	return p.Map(ctx, len(jobs), func(ctx context.Context, i int) error {
		return jobs[i](ctx)
	})
}

// Map executes fn(i) for i in [0, n), at most Workers at a time. This
// is the array-job form: the index plays the role of SGE_TASK_ID.
func (p *Pool) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n < 0 {
		return errors.New("sched: negative job count")
	}
	if fn == nil {
		return errors.New("sched: nil function")
	}
	if n == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	workers := p.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				if err := safeJob(ctx, i, fn); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
				p.done.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// safeJob runs one job, converting a panic into an error so a single
// bad unit cancels the batch cleanly (workers joined, Map returns an
// error) instead of crashing the whole process mid-sweep.
func safeJob(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(ctx, i)
}
