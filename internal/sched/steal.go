package sched

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Work-stealing scheduler for statically-known task sets whose per-task
// cost is unpredictable. The correlation engine's robust tiles are the
// motivating workload: Maronna's fixed-point iteration count varies
// 7–22× between windows, so a static range split leaves some workers
// idle while one drags the tail. Each worker owns a deque seeded with a
// contiguous slice of the task ids (preserving the locality of the
// initial assignment); it pops from the front of its own deque and,
// when empty, steals from the back of a victim's, so stolen work is the
// work farthest from the victim's current cache-hot position.

// stealDeque is one worker's task queue. A mutex per deque is cheap
// here because tasks are coarse (a whole pair-tile × all window steps);
// the lock is taken once per task, not per window.
type stealDeque struct {
	mu    sync.Mutex
	tasks []int
}

// popFront takes the owner's next task.
func (d *stealDeque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// popBack steals a task from the far end of a victim's deque.
func (d *stealDeque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

// Steal executes fn(worker, task) exactly once for every task in
// [0, n), using the given number of workers (clamped to [1, n]) with
// work-stealing load balancing. fn observes which worker runs it so
// callers can maintain per-worker scratch state; a given task runs on
// exactly one worker, and Steal returns only after every task has
// finished (all fn calls happen-before the return). It reports the
// number of steals that occurred — 0 means the static split was already
// balanced.
//
// Steal guarantees nothing about execution order, so callers needing
// deterministic output must make every task's result independent of
// scheduling (the correlation engine achieves this by giving each task
// exclusively-owned output slots).
func Steal(workers, n int, fn func(worker, task int)) int {
	if n <= 0 || fn == nil {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		for t := 0; t < n; t++ {
			fn(0, t)
		}
		return 0
	}

	deques := make([]stealDeque, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for t := lo; t < hi; t++ {
			deques[w].tasks = append(deques[w].tasks, t)
		}
	}

	var steals atomic.Int64
	var wg sync.WaitGroup
	// A panic inside fn on a worker goroutine would crash the process
	// before wg.Wait could return; capture the first one and re-throw
	// it on the caller's goroutine after every worker has retired, so
	// Steal panics exactly like the single-worker inline path does.
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicked = fmt.Sprintf("sched: steal task panicked: %v\n%s", r, debug.Stack())
					})
				}
			}()
			for {
				if t, ok := deques[w].popFront(); ok {
					fn(w, t)
					continue
				}
				// Own deque empty: scan the others once. Because the
				// task set is static (no task ever spawns another), a
				// full scan that finds every deque empty means no work
				// will ever appear again and the worker can retire.
				stole := false
				for off := 1; off < workers; off++ {
					v := (w + off) % workers
					if t, ok := deques[v].popBack(); ok {
						steals.Add(1)
						fn(w, t)
						stole = true
						break
					}
				}
				if !stole {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return int(steals.Load())
}
