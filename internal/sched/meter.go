package sched

import (
	"sync"
	"time"
)

// Meter tracks completion throughput for a fixed-size workload: jobs
// done out of a known total, the rate since the meter started, and the
// extrapolated time to finish. It is the observability companion to
// Pool — the pool executes the array job, the meter answers "how far
// along is the sweep and when will it finish", the two questions an
// SGE qstat gives for a running array job.
//
// All methods are safe for concurrent use.
type Meter struct {
	mu      sync.Mutex
	total   int64
	done    int64
	skipped int64
	start   time.Time

	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// NewMeter returns a meter over total jobs, starting its clock
// immediately.
func NewMeter(total int64) *Meter {
	m := &Meter{total: total}
	m.start = m.now()
	return m
}

func (m *Meter) now() time.Time {
	if m.Now != nil {
		return m.Now()
	}
	return time.Now()
}

// Add records n more jobs completed by this run.
func (m *Meter) Add(n int64) {
	m.mu.Lock()
	m.done += n
	m.mu.Unlock()
}

// Skip records n jobs satisfied without work — typically restored from
// a checkpoint journal. Skipped jobs count toward Done but not toward
// the rate, so the ETA after a resume reflects only the live
// throughput of this run.
func (m *Meter) Skip(n int64) {
	m.mu.Lock()
	m.skipped += n
	m.mu.Unlock()
}

// Progress is a point-in-time snapshot of a metered workload.
type Progress struct {
	// Done counts finished jobs, including checkpoint-restored ones;
	// Total is the workload size.
	Done, Total int64
	// Elapsed is the wall time since the meter started.
	Elapsed time.Duration
	// Rate is live jobs per second since start, excluding
	// checkpoint-restored jobs (0 until time passes).
	Rate float64
	// ETA extrapolates the remaining work at the observed rate; it is
	// 0 when done or when no rate is measurable yet.
	ETA time.Duration
}

// Snapshot returns the current progress.
func (m *Meter) Snapshot() Progress {
	m.mu.Lock()
	done, skipped := m.done, m.skipped
	m.mu.Unlock()
	elapsed := m.now().Sub(m.start)
	p := Progress{Done: done + skipped, Total: m.total, Elapsed: elapsed}
	if elapsed > 0 && done > 0 {
		p.Rate = float64(done) / elapsed.Seconds()
		if remaining := m.total - done - skipped; remaining > 0 && p.Rate > 0 {
			p.ETA = time.Duration(float64(remaining) / p.Rate * float64(time.Second))
		}
	}
	return p
}
