// Package series provides the time-series substrate of the
// reproduction: the ∆s interval grid, bid-ask-midpoint (BAM) price
// sampling, 1-period log-returns, sliding return windows, and OHLC bar
// accumulation (the "OHLC Bar Accumulator" node of Figure 1).
//
// All strategy-visible quantities in the paper live on a discrete time
// grid indexed by s = 0..smax-1, where each index covers ∆s seconds of
// the 23400-second trading day.
package series

import (
	"errors"
	"fmt"
	"math"

	"marketminer/internal/taq"
)

// Grid describes the paper's discretisation of a trading day: with
// ∆s = 30 s there are exactly 23400/30 = 780 intervals.
type Grid struct {
	DeltaS int // interval length in seconds
	SMax   int // number of intervals in the day
}

// NewGrid builds a grid for the given ∆s (seconds). ∆s must be positive
// and divide the trading day evenly, as in the paper's example.
func NewGrid(deltaS int) (Grid, error) {
	if deltaS <= 0 {
		return Grid{}, errors.New("series: ∆s must be positive")
	}
	if taq.TradingDaySec%deltaS != 0 {
		return Grid{}, fmt.Errorf("series: ∆s=%d does not divide the %d-second trading day", deltaS, taq.TradingDaySec)
	}
	return Grid{DeltaS: deltaS, SMax: taq.TradingDaySec / deltaS}, nil
}

// Index returns the grid interval containing the given seconds-since-
// open timestamp, and whether the timestamp is inside the session.
func (g Grid) Index(seqTime float64) (int, bool) {
	if seqTime < 0 || seqTime >= taq.TradingDaySec {
		return 0, false
	}
	return int(seqTime) / g.DeltaS, true
}

// PriceGrid holds the per-interval BAM price level for every stock of a
// universe over one trading day: P[i][s] is stock i's price at the end
// of interval s. Intervals with no quote are forward-filled from the
// previous level; leading intervals before a stock's first quote hold
// NaN and the consumer is expected to wait until all stocks have
// printed (the paper's correlations only start at s ≥ M anyway).
type PriceGrid struct {
	Grid   Grid
	Prices [][]float64 // [stock][interval]
}

// NumStocks returns the number of stocks in the grid.
func (pg *PriceGrid) NumStocks() int { return len(pg.Prices) }

// Price returns P_i(s).
func (pg *PriceGrid) Price(i, s int) float64 { return pg.Prices[i][s] }

// Spread returns the price spread P_i(s) − P_j(s) used by the
// retracement logic of §III step 5.
func (pg *PriceGrid) Spread(i, j, s int) float64 {
	return pg.Prices[i][s] - pg.Prices[j][s]
}

// FirstComplete returns the first interval index at which every stock
// has a defined (non-NaN) price, or -1 if no such interval exists.
func (pg *PriceGrid) FirstComplete() int {
	if len(pg.Prices) == 0 {
		return -1
	}
	for s := 0; s < pg.Grid.SMax; s++ {
		ok := true
		for i := range pg.Prices {
			if math.IsNaN(pg.Prices[i][s]) {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return -1
}

// Sampler accumulates a stream of (already cleaned) quotes into a
// PriceGrid for one trading day: the level of interval s is the BAM of
// the last quote with timestamp inside [s·∆s, (s+1)·∆s).
type Sampler struct {
	grid Grid
	uni  *taq.Universe
	last []float64 // latest BAM seen per stock in the current interval, NaN if none
	lvl  []float64 // carried level per stock
	cur  int       // current interval being filled
	pg   *PriceGrid
}

// NewSampler builds a sampler for one day over the given universe.
func NewSampler(grid Grid, uni *taq.Universe) *Sampler {
	n := uni.Len()
	pg := &PriceGrid{Grid: grid, Prices: make([][]float64, n)}
	for i := range pg.Prices {
		row := make([]float64, grid.SMax)
		for s := range row {
			row[s] = math.NaN()
		}
		pg.Prices[i] = row
	}
	lvl := make([]float64, n)
	for i := range lvl {
		lvl[i] = math.NaN()
	}
	return &Sampler{grid: grid, uni: uni, lvl: lvl, pg: pg}
}

// Add incorporates one quote. Quotes must arrive in non-decreasing
// SeqTime order; out-of-session or unknown-symbol quotes are ignored
// and reported via the return value.
func (sm *Sampler) Add(q taq.Quote) bool {
	s, ok := sm.grid.Index(q.SeqTime)
	if !ok {
		return false
	}
	i, ok := sm.uni.Index(q.Symbol)
	if !ok {
		return false
	}
	if s > sm.cur {
		sm.fillThrough(s)
	}
	sm.lvl[i] = q.Mid()
	return true
}

// fillThrough closes intervals cur..s-1 with the carried levels.
func (sm *Sampler) fillThrough(s int) {
	for t := sm.cur; t < s && t < sm.grid.SMax; t++ {
		for i := range sm.lvl {
			sm.pg.Prices[i][t] = sm.lvl[i]
		}
	}
	sm.cur = s
}

// Finish closes all remaining intervals and returns the completed grid.
// The sampler must not be used afterwards.
func (sm *Sampler) Finish() *PriceGrid {
	sm.fillThrough(sm.grid.SMax)
	return sm.pg
}

// Backfill replaces each stock's leading NaN prices (intervals before
// its first quote of the day) with its first defined price, so that
// return series are NaN-free. It returns an error if any stock has no
// quotes at all. Interior NaNs cannot occur with Sampler's forward
// fill.
func Backfill(pg *PriceGrid) error {
	for i, row := range pg.Prices {
		first := -1
		for s, p := range row {
			if !math.IsNaN(p) {
				first = s
				break
			}
		}
		if first < 0 {
			return fmt.Errorf("series: stock %d has no prices for the whole day", i)
		}
		for s := 0; s < first; s++ {
			row[s] = row[first]
		}
	}
	return nil
}

// LogReturns computes the per-interval 1-period log-returns
// x_i(s) = log(P_i(s) / P_i(s-1)) for one stock's price row. Index 0 of
// the result corresponds to s = 1. NaN inputs propagate.
func LogReturns(prices []float64) []float64 {
	if len(prices) < 2 {
		return nil
	}
	out := make([]float64, len(prices)-1)
	for s := 1; s < len(prices); s++ {
		out[s-1] = math.Log(prices[s] / prices[s-1])
	}
	return out
}

// ReturnGrid converts a PriceGrid into per-stock log-return rows. Row i
// has length SMax-1 with entry s-1 = x_i(s).
func ReturnGrid(pg *PriceGrid) [][]float64 {
	out := make([][]float64, len(pg.Prices))
	for i, row := range pg.Prices {
		out[i] = LogReturns(row)
	}
	return out
}

// Window is a fixed-capacity sliding window of float64 values with
// O(1) append and an ordered snapshot view. It carries the last M
// log-returns per stock that feed each correlation calculation:
// "two vectors Xi(s) and Xj(s), containing the last M log-returns".
type Window struct {
	buf  []float64
	head int
	full bool
}

// NewWindow allocates a window of capacity m ≥ 1.
func NewWindow(m int) *Window {
	if m < 1 {
		m = 1
	}
	return &Window{buf: make([]float64, m)}
}

// Push appends x, evicting the oldest element when full.
func (w *Window) Push(x float64) {
	w.buf[w.head] = x
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
		w.full = true
	}
}

// Len returns the number of elements currently held.
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.head
}

// Cap returns the window capacity M.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds M elements.
func (w *Window) Full() bool { return w.full }

// Snapshot appends the window contents, oldest first, to dst and
// returns the extended slice. Pass a reusable dst to avoid allocation.
func (w *Window) Snapshot(dst []float64) []float64 {
	if w.full {
		dst = append(dst, w.buf[w.head:]...)
		return append(dst, w.buf[:w.head]...)
	}
	return append(dst, w.buf[:w.head]...)
}

// At returns the k-th element counted from the oldest (0 = oldest).
func (w *Window) At(k int) float64 {
	if w.full {
		return w.buf[(w.head+k)%len(w.buf)]
	}
	return w.buf[k]
}

// Bar is one OHLC (open/high/low/close) bar, the unit produced by
// Figure 1's "OHLC Bar Accumulator" node.
type Bar struct {
	Day      int
	Interval int // grid interval index
	Symbol   string
	Open     float64
	High     float64
	Low      float64
	Close    float64
	Count    int // quotes aggregated into the bar
}

// BarAccumulator folds a quote stream into per-interval OHLC bars for a
// single symbol. Bars for empty intervals are synthesised from the
// previous close (count 0), so consumers see a gapless series.
type BarAccumulator struct {
	grid    Grid
	symbol  string
	day     int
	cur     int
	started bool
	bar     Bar
	out     []Bar
}

// NewBarAccumulator builds an accumulator for one symbol and day.
func NewBarAccumulator(grid Grid, symbol string, day int) *BarAccumulator {
	return &BarAccumulator{grid: grid, symbol: symbol, day: day}
}

// Add folds one quote (matching the accumulator's symbol) into the
// current bar; returns false if the quote is out of session or for a
// different symbol.
func (ba *BarAccumulator) Add(q taq.Quote) bool {
	if q.Symbol != ba.symbol {
		return false
	}
	s, ok := ba.grid.Index(q.SeqTime)
	if !ok {
		return false
	}
	mid := q.Mid()
	if !ba.started {
		ba.cur = s
		ba.bar = Bar{Day: ba.day, Interval: s, Symbol: ba.symbol, Open: mid, High: mid, Low: mid, Close: mid, Count: 1}
		ba.started = true
		return true
	}
	if s != ba.cur {
		ba.flushThrough(s)
		ba.bar = Bar{Day: ba.day, Interval: s, Symbol: ba.symbol, Open: mid, High: mid, Low: mid, Close: mid, Count: 1}
		ba.cur = s
		return true
	}
	ba.bar.Close = mid
	ba.bar.Count++
	if mid > ba.bar.High {
		ba.bar.High = mid
	}
	if mid < ba.bar.Low {
		ba.bar.Low = mid
	}
	return true
}

// flushThrough emits the current bar and synthetic bars up to (not
// including) interval s.
func (ba *BarAccumulator) flushThrough(s int) {
	ba.out = append(ba.out, ba.bar)
	for t := ba.cur + 1; t < s && t < ba.grid.SMax; t++ {
		c := ba.bar.Close
		ba.out = append(ba.out, Bar{Day: ba.day, Interval: t, Symbol: ba.symbol, Open: c, High: c, Low: c, Close: c})
	}
}

// Bars closes the accumulator and returns the completed, gapless bar
// series (empty if no quote was ever added).
func (ba *BarAccumulator) Bars() []Bar {
	if !ba.started {
		return nil
	}
	ba.flushThrough(ba.grid.SMax)
	ba.started = false
	return ba.out
}

// SpreadStats summarises the spread of a pair over a trailing window:
// the high Sh, low Sl and average S̄ used to place the retracement
// level L in §III step 5.
type SpreadStats struct {
	High, Low, Avg float64
}

// SpreadWindow computes SpreadStats of P_i − P_j over the RT intervals
// ending at (and including) s. It returns an error if the window would
// reach before the start of the day or contains undefined prices.
func SpreadWindow(pg *PriceGrid, i, j, s, rt int) (SpreadStats, error) {
	if rt < 1 {
		return SpreadStats{}, errors.New("series: spread window must be ≥ 1")
	}
	lo := s - rt + 1
	if lo < 0 || s >= pg.Grid.SMax {
		return SpreadStats{}, fmt.Errorf("series: spread window [%d,%d] out of range", lo, s)
	}
	st := SpreadStats{High: math.Inf(-1), Low: math.Inf(1)}
	var sum float64
	for t := lo; t <= s; t++ {
		sp := pg.Spread(i, j, t)
		if math.IsNaN(sp) {
			return SpreadStats{}, fmt.Errorf("series: undefined spread at interval %d", t)
		}
		if sp > st.High {
			st.High = sp
		}
		if sp < st.Low {
			st.Low = sp
		}
		sum += sp
	}
	st.Avg = sum / float64(rt)
	return st, nil
}

// PeriodReturn returns the W-interval simple return of stock i ending
// at s: P_i(s)/P_i(s−W) − 1. Used to pick the over/under-performer in
// §III step 3.
func PeriodReturn(pg *PriceGrid, i, s, w int) float64 {
	if s-w < 0 {
		return math.NaN()
	}
	return pg.Prices[i][s]/pg.Prices[i][s-w] - 1
}
