package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"marketminer/internal/taq"
)

func mustGrid(t *testing.T, deltaS int) Grid {
	t.Helper()
	g, err := NewGrid(deltaS)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridPaperExample(t *testing.T) {
	g := mustGrid(t, 30)
	if g.SMax != 780 {
		t.Fatalf("SMax = %d, want 780 (paper: 23400/30)", g.SMax)
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(0); err == nil {
		t.Error("∆s=0 should error")
	}
	if _, err := NewGrid(-5); err == nil {
		t.Error("negative ∆s should error")
	}
	if _, err := NewGrid(7); err == nil {
		t.Error("non-dividing ∆s should error")
	}
}

func TestGridIndex(t *testing.T) {
	g := mustGrid(t, 30)
	cases := []struct {
		t    float64
		want int
		ok   bool
	}{
		{0, 0, true},
		{29.9, 0, true},
		{30, 1, true},
		{23399, 779, true},
		{23400, 0, false},
		{-1, 0, false},
	}
	for _, c := range cases {
		got, ok := g.Index(c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Index(%v) = %d,%v want %d,%v", c.t, got, ok, c.want, c.ok)
		}
	}
}

func smallUniverse(t *testing.T) *taq.Universe {
	t.Helper()
	u, err := taq.NewUniverse([]string{"AA", "BB"})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSamplerForwardFill(t *testing.T) {
	g := mustGrid(t, 30)
	u := smallUniverse(t)
	sm := NewSampler(g, u)
	// AA quotes in interval 0 and 2; BB only in interval 0.
	if !sm.Add(taq.Quote{SeqTime: 5, Symbol: "AA", Bid: 10, Ask: 10.2}) {
		t.Fatal("Add rejected valid quote")
	}
	sm.Add(taq.Quote{SeqTime: 12, Symbol: "BB", Bid: 20, Ask: 20.2})
	sm.Add(taq.Quote{SeqTime: 65, Symbol: "AA", Bid: 11, Ask: 11.2})
	pg := sm.Finish()
	if got := pg.Price(0, 0); got != 10.1 {
		t.Errorf("AA interval0 = %v, want 10.1", got)
	}
	if got := pg.Price(0, 1); got != 10.1 {
		t.Errorf("AA interval1 (forward fill) = %v, want 10.1", got)
	}
	if got := pg.Price(0, 2); got != 11.1 {
		t.Errorf("AA interval2 = %v, want 11.1", got)
	}
	// BB forward-filled to the end of day.
	if got := pg.Price(1, 779); got != 20.1 {
		t.Errorf("BB last interval = %v, want 20.1", got)
	}
	if fc := pg.FirstComplete(); fc != 0 {
		t.Errorf("FirstComplete = %d, want 0", fc)
	}
}

func TestSamplerLeadingNaN(t *testing.T) {
	g := mustGrid(t, 30)
	u := smallUniverse(t)
	sm := NewSampler(g, u)
	// BB's first quote arrives in interval 3.
	sm.Add(taq.Quote{SeqTime: 1, Symbol: "AA", Bid: 10, Ask: 10.2})
	sm.Add(taq.Quote{SeqTime: 95, Symbol: "BB", Bid: 20, Ask: 20.2})
	pg := sm.Finish()
	if !math.IsNaN(pg.Price(1, 0)) || !math.IsNaN(pg.Price(1, 2)) {
		t.Error("BB should be NaN before its first quote")
	}
	if fc := pg.FirstComplete(); fc != 3 {
		t.Errorf("FirstComplete = %d, want 3", fc)
	}
}

func TestSamplerRejects(t *testing.T) {
	g := mustGrid(t, 30)
	u := smallUniverse(t)
	sm := NewSampler(g, u)
	if sm.Add(taq.Quote{SeqTime: -3, Symbol: "AA", Bid: 1, Ask: 2}) {
		t.Error("out-of-session quote accepted")
	}
	if sm.Add(taq.Quote{SeqTime: 5, Symbol: "ZZ", Bid: 1, Ask: 2}) {
		t.Error("unknown-symbol quote accepted")
	}
}

func TestSamplerEmptyDay(t *testing.T) {
	g := mustGrid(t, 30)
	u := smallUniverse(t)
	pg := NewSampler(g, u).Finish()
	if fc := pg.FirstComplete(); fc != -1 {
		t.Errorf("FirstComplete on empty day = %d, want -1", fc)
	}
}

func TestLogReturns(t *testing.T) {
	prices := []float64{100, 110, 99}
	rs := LogReturns(prices)
	if len(rs) != 2 {
		t.Fatalf("len = %d", len(rs))
	}
	if math.Abs(rs[0]-math.Log(1.1)) > 1e-12 {
		t.Errorf("rs[0] = %v", rs[0])
	}
	if math.Abs(rs[1]-math.Log(0.9)) > 1e-12 {
		t.Errorf("rs[1] = %v", rs[1])
	}
	if LogReturns([]float64{5}) != nil {
		t.Error("single price should give nil returns")
	}
}

func TestReturnGridShape(t *testing.T) {
	g := mustGrid(t, 30)
	pg := &PriceGrid{Grid: g, Prices: [][]float64{make([]float64, g.SMax), make([]float64, g.SMax)}}
	for i := range pg.Prices {
		for s := range pg.Prices[i] {
			pg.Prices[i][s] = 100 + float64(s)
		}
	}
	rg := ReturnGrid(pg)
	if len(rg) != 2 || len(rg[0]) != g.SMax-1 {
		t.Fatalf("ReturnGrid shape = %dx%d", len(rg), len(rg[0]))
	}
	if rg[0][0] <= 0 {
		t.Error("rising prices should give positive log-return")
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 || w.Full() {
		t.Fatal("fresh window state wrong")
	}
	w.Push(1)
	w.Push(2)
	if got := w.Snapshot(nil); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Snapshot = %v", got)
	}
	w.Push(3)
	w.Push(4) // evicts 1
	if !w.Full() || w.Len() != 3 {
		t.Error("window should be full with 3 elements")
	}
	got := w.Snapshot(nil)
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Snapshot = %v, want %v", got, want)
			break
		}
	}
	if w.At(0) != 2 || w.At(2) != 4 {
		t.Errorf("At = %v,%v", w.At(0), w.At(2))
	}
}

func TestWindowSnapshotReuse(t *testing.T) {
	w := NewWindow(2)
	w.Push(7)
	w.Push(8)
	buf := make([]float64, 0, 2)
	got := w.Snapshot(buf)
	if len(got) != 2 || cap(got) != 2 {
		t.Errorf("Snapshot should reuse dst: len=%d cap=%d", len(got), cap(got))
	}
}

func TestWindowCapClamp(t *testing.T) {
	w := NewWindow(0)
	w.Push(1)
	w.Push(2)
	if w.Cap() != 1 || w.At(0) != 2 {
		t.Errorf("clamped window: cap=%d at0=%v", w.Cap(), w.At(0))
	}
}

func TestWindowOrderProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		m := int(capRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		w := NewWindow(m)
		var ref []float64
		for k := 0; k < 100; k++ {
			x := rng.Float64()
			w.Push(x)
			ref = append(ref, x)
			if len(ref) > m {
				ref = ref[1:]
			}
			got := w.Snapshot(nil)
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] || w.At(i) != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBarAccumulator(t *testing.T) {
	g := mustGrid(t, 30)
	ba := NewBarAccumulator(g, "AA", 2)
	quotes := []taq.Quote{
		{SeqTime: 1, Symbol: "AA", Bid: 10, Ask: 10.2},  // mid 10.1
		{SeqTime: 10, Symbol: "AA", Bid: 11, Ask: 11.2}, // mid 11.1
		{SeqTime: 20, Symbol: "AA", Bid: 9, Ask: 9.2},   // mid 9.1
		{SeqTime: 70, Symbol: "AA", Bid: 12, Ask: 12.2}, // interval 2, mid 12.1
	}
	for _, q := range quotes {
		if !ba.Add(q) {
			t.Fatalf("Add rejected %+v", q)
		}
	}
	if ba.Add(taq.Quote{SeqTime: 80, Symbol: "BB", Bid: 1, Ask: 2}) {
		t.Error("foreign symbol accepted")
	}
	bars := ba.Bars()
	if len(bars) != g.SMax {
		t.Fatalf("bars = %d, want %d (gapless)", len(bars), g.SMax)
	}
	b0 := bars[0]
	if b0.Open != 10.1 || b0.High != 11.1 || b0.Low != 9.1 || b0.Close != 9.1 || b0.Count != 3 {
		t.Errorf("bar0 = %+v", b0)
	}
	if b0.Day != 2 || b0.Symbol != "AA" || b0.Interval != 0 {
		t.Errorf("bar0 metadata = %+v", b0)
	}
	// Interval 1 is synthetic: flat at previous close.
	b1 := bars[1]
	if b1.Count != 0 || b1.Open != 9.1 || b1.Close != 9.1 || b1.High != 9.1 || b1.Low != 9.1 {
		t.Errorf("synthetic bar1 = %+v", b1)
	}
	if bars[2].Open != 12.1 || bars[2].Count != 1 {
		t.Errorf("bar2 = %+v", bars[2])
	}
	// Tail is forward-filled to the close.
	if bars[g.SMax-1].Close != 12.1 {
		t.Errorf("last bar = %+v", bars[g.SMax-1])
	}
}

func TestBarAccumulatorEmpty(t *testing.T) {
	g := mustGrid(t, 30)
	ba := NewBarAccumulator(g, "AA", 0)
	if bars := ba.Bars(); bars != nil {
		t.Errorf("empty accumulator returned %d bars", len(bars))
	}
}

func TestBarOHLCInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := NewGrid(60)
		ba := NewBarAccumulator(g, "AA", 0)
		tsec := 0.0
		for k := 0; k < 200; k++ {
			tsec += rng.Float64() * 120
			if tsec >= 23400 {
				break
			}
			bid := 50 + rng.NormFloat64()
			ba.Add(taq.Quote{SeqTime: tsec, Symbol: "AA", Bid: bid, Ask: bid + 0.02})
		}
		for _, b := range ba.Bars() {
			if b.Low > b.Open || b.Low > b.Close || b.High < b.Open || b.High < b.Close {
				return false
			}
			if b.Low > b.High {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSpreadWindow(t *testing.T) {
	g := mustGrid(t, 30)
	n := g.SMax
	pi := make([]float64, n)
	pj := make([]float64, n)
	for s := 0; s < n; s++ {
		pi[s] = 100 + float64(s%5) // 100..104 cycling
		pj[s] = 90
	}
	pg := &PriceGrid{Grid: g, Prices: [][]float64{pi, pj}}
	st, err := SpreadWindow(pg, 0, 1, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Intervals 5..9 → pi = 100..104, spreads 10..14.
	if st.Low != 10 || st.High != 14 || st.Avg != 12 {
		t.Errorf("SpreadStats = %+v", st)
	}
}

func TestSpreadWindowErrors(t *testing.T) {
	g := mustGrid(t, 30)
	pg := &PriceGrid{Grid: g, Prices: [][]float64{make([]float64, g.SMax), make([]float64, g.SMax)}}
	if _, err := SpreadWindow(pg, 0, 1, 3, 10); err == nil {
		t.Error("window reaching before day start should error")
	}
	if _, err := SpreadWindow(pg, 0, 1, 5, 0); err == nil {
		t.Error("rt=0 should error")
	}
	pg.Prices[0][5] = math.NaN()
	if _, err := SpreadWindow(pg, 0, 1, 6, 3); err == nil {
		t.Error("NaN spread should error")
	}
}

func TestPeriodReturn(t *testing.T) {
	g := mustGrid(t, 30)
	prices := make([]float64, g.SMax)
	for s := range prices {
		prices[s] = 100 * math.Pow(1.001, float64(s))
	}
	pg := &PriceGrid{Grid: g, Prices: [][]float64{prices}}
	r := PeriodReturn(pg, 0, 60, 60)
	want := math.Pow(1.001, 60) - 1
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("PeriodReturn = %v, want %v", r, want)
	}
	if !math.IsNaN(PeriodReturn(pg, 0, 10, 60)) {
		t.Error("window before day start should be NaN")
	}
}

func TestBackfill(t *testing.T) {
	g := mustGrid(t, 30)
	u := smallUniverse(t)
	sm := NewSampler(g, u)
	sm.Add(taq.Quote{SeqTime: 1, Symbol: "AA", Bid: 10, Ask: 10.2})
	sm.Add(taq.Quote{SeqTime: 95, Symbol: "BB", Bid: 20, Ask: 20.2}) // interval 3
	pg := sm.Finish()
	if err := Backfill(pg); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if pg.Price(1, s) != 20.1 {
			t.Errorf("BB interval %d = %v, want backfilled 20.1", s, pg.Price(1, s))
		}
	}
	if pg.FirstComplete() != 0 {
		t.Errorf("FirstComplete = %d after backfill", pg.FirstComplete())
	}
}

func TestBackfillErrorsOnEmptyStock(t *testing.T) {
	g := mustGrid(t, 30)
	u := smallUniverse(t)
	sm := NewSampler(g, u)
	sm.Add(taq.Quote{SeqTime: 1, Symbol: "AA", Bid: 10, Ask: 10.2})
	pg := sm.Finish()
	if err := Backfill(pg); err == nil {
		t.Error("stock with no quotes should error")
	}
}
