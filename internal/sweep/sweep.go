// Package sweep is the paper-scale sweep orchestrator: it decomposes
// the Section V brute-force backtest — every pair × parameter set ×
// trading day, the workload the paper prices at 854 hours of
// sequential Matlab — into deterministic work units, schedules them
// across workers and across cooperating processes (shard i of n), and
// checkpoints every completed unit to an append-only journal so an
// interrupted sweep resumes exactly where it stopped.
//
// The decomposition is the shard key (day, pair-block, parameter set):
//
//   - a day is one synthetic trading day (regenerable in isolation —
//     market.Generator seeds each day independently);
//   - a pair-block is a contiguous slice of the canonical pair ids, the
//     unit the correlation engine can compute in isolation because each
//     pair's warm-start chain is independent of every other pair's;
//   - a parameter set is one flat (treatment, level) index.
//
// Units are grouped by (day, pair-block) for execution so the fused
// Maronna+Combined correlation series is computed once per group and
// shared by all parameter sets — the same sharing that makes the
// integrated backtest.Run beat the per-pair farm. Because every unit's
// value depends only on its own (day, block, set) inputs, any shard
// assignment, worker count, interruption point or resume order yields
// bit-identical merged results; TestShardedMergeEqualsSingleShot and
// TestResumeReproducesSingleShot assert this.
package sweep

import (
	"fmt"
	"hash/fnv"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/strategy"
)

// DefaultBlockSize is the default number of pairs per block: at paper
// scale (1830 pairs) it yields 15 blocks × 20 days = 300 groups, fine
// enough that 2–16 shards balance well, coarse enough that the journal
// stays small.
const DefaultBlockSize = 128

// Shard identifies one cooperating process of a sweep: this process
// owns every (day, pair-block) group whose id ≡ Index (mod Count).
// The zero value is invalid; use Shard{0, 1} for a single process.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the "i/n" form used by the -shard flag.
func ParseShard(s string) (Shard, error) {
	var sh Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil {
		return Shard{}, fmt.Errorf("sweep: shard %q is not i/n", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate checks 0 ≤ Index < Count.
func (s Shard) Validate() error {
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: invalid shard %d/%d", s.Index, s.Count)
	}
	return nil
}

// String renders the shard in the "-shard i/n" flag syntax.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Unit is one checkpointable work item: backtest one parameter set
// over one pair-block for one day.
type Unit struct {
	Day   int // trading day index
	Block int // pair-block index
	Param int // flat parameter index (typeIdx*len(levels) + levelIdx)
}

// Plan is the deterministic decomposition of one sweep configuration
// into units. Two processes that build a Plan from the same
// configuration and block size agree on every id, which is what lets
// shards coordinate through nothing but their journal files.
type Plan struct {
	Levels    []strategy.Params
	Types     []corr.Type
	Days      int
	NumPairs  int
	BlockSize int
}

// NewPlan derives the unit decomposition from a backtest configuration
// whose market configuration has already been sanitised (defaults
// filled) — callers obtain that via market.NewGenerator(cfg.Market)
// and Generator.Config, exactly as backtest.Run does.
func NewPlan(cfg backtest.Config, blockSize int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Market.Universe == nil {
		return nil, fmt.Errorf("sweep: configuration has no universe")
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Plan{
		Levels:    cfg.ResolvedLevels(),
		Types:     cfg.ResolvedTypes(),
		Days:      cfg.Market.Days,
		NumPairs:  cfg.Market.Universe.NumPairs(),
		BlockSize: blockSize,
	}, nil
}

// NumBlocks returns the number of pair-blocks.
func (p *Plan) NumBlocks() int { return (p.NumPairs + p.BlockSize - 1) / p.BlockSize }

// NumParams returns |K| = levels × types.
func (p *Plan) NumParams() int { return len(p.Levels) * len(p.Types) }

// NumUnits returns the total unit count of the whole sweep (all
// shards).
func (p *Plan) NumUnits() int { return p.Days * p.NumBlocks() * p.NumParams() }

// NumGroups returns the number of (day, pair-block) execution groups.
func (p *Plan) NumGroups() int { return p.Days * p.NumBlocks() }

// UnitID maps a unit to its dense id; ids order units day-major, then
// block, then parameter set.
func (p *Plan) UnitID(u Unit) int {
	return (u.Day*p.NumBlocks()+u.Block)*p.NumParams() + u.Param
}

// UnitFromID inverts UnitID.
func (p *Plan) UnitFromID(id int) Unit {
	np := p.NumParams()
	g := id / np
	return Unit{Day: g / p.NumBlocks(), Block: g % p.NumBlocks(), Param: id % np}
}

// GroupID maps (day, block) to its dense group id.
func (p *Plan) GroupID(day, block int) int { return day*p.NumBlocks() + block }

// GroupOwner returns which shard index of n owns a group. Assignment
// is round-robin over group ids so consecutive days spread across
// shards and every shard's workload stays balanced.
func (p *Plan) GroupOwner(gid, n int) int { return gid % n }

// BlockRange returns the canonical pair-id half-open range [lo, hi) of
// block b.
func (p *Plan) BlockRange(b int) (lo, hi int) {
	lo = b * p.BlockSize
	hi = lo + p.BlockSize
	if hi > p.NumPairs {
		hi = p.NumPairs
	}
	return lo, hi
}

// Param returns the full parameter vector of a flat parameter index,
// mirroring backtest.Result.Param.
func (p *Plan) Param(idx int) strategy.Params {
	typeIdx := idx / len(p.Levels)
	return p.Levels[idx%len(p.Levels)].WithType(p.Types[typeIdx])
}

// Fingerprint hashes everything that determines unit identities and
// values: the universe, the calendar, the generator and cleaning
// parameters, the cost model, the parameter grid, and the block size.
// Journals carry it in their header; resuming or merging with a
// mismatched configuration is refused rather than silently producing a
// mixed result. The shard assignment is deliberately excluded — all
// shards of one sweep share a fingerprint.
func Fingerprint(cfg backtest.Config, blockSize int) string {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	h := fnv.New64a()
	mc := cfg.Market
	var symbols []string
	if mc.Universe != nil {
		symbols = mc.Universe.Symbols()
	}
	mc.Universe = nil // pointer identity must not leak into the hash
	fmt.Fprintf(h, "v1|%q|%+v|%+v|%+v|%d|", symbols, mc, cfg.Clean, cfg.Costs, blockSize)
	// Screening and the float32 lane change unit values, so they are
	// fingerprinted — but only when active, which keeps every journal
	// written before these knobs existed resumable under its original
	// fingerprint (the zero values reproduce the classic sweep).
	if cfg.Screen.Enabled() || cfg.Float32 {
		fmt.Fprintf(h, "screen:%+v|f32:%v|", cfg.Screen, cfg.Float32)
	}
	for _, l := range cfg.ResolvedLevels() {
		fmt.Fprintf(h, "%+v|", l)
	}
	for _, t := range cfg.ResolvedTypes() {
		fmt.Fprintf(h, "%s|", t)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
