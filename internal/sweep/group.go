package sweep

import (
	"context"
	"sort"
	"sync"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/screen"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// GroupRunner executes (day, pair-block) groups of a sweep plan and is
// the single execution path shared by the local shard orchestrator
// (Run) and the distributed farm worker (internal/farm): both produce
// each unit's Entry through RunGroup, so a unit's bytes are identical
// whether it was computed in-process or on a remote worker — the
// invariant the farm's merge byte-identity rests on.
//
// Day preparation (generate → clean → sample, plus the screening pass
// when enabled) is cached per day, so consecutive groups of the same
// day share one pass regardless of which caller got there first.
// RunGroup is safe for concurrent use across distinct groups; each
// group must be executed by exactly one caller at a time (the
// journal/lease layers guarantee that ownership).
type GroupRunner struct {
	cfg  backtest.Config
	gen  *market.Generator
	plan *Plan

	pairs []taq.Pair

	days []dayOnce

	warmMu sync.Mutex
	warm   corr.RobustStats
}

// dayOnce caches one prepared day: the generated/cleaned/sampled data
// and, when screening is enabled, the day's kept-pair set — identical
// for every block of the day by construction.
type dayOnce struct {
	once sync.Once
	dd   *backtest.DayData
	kept []bool // by pair id; nil when screening is disabled
	err  error
}

// NewGroupRunner validates and sanitises the configuration (filling
// market defaults exactly as backtest.Run does) and derives the unit
// plan. The returned runner's Plan and Config are the canonical
// versions every cooperating process must agree on.
func NewGroupRunner(cfg backtest.Config, blockSize int) (*GroupRunner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := market.NewGenerator(cfg.Market)
	if err != nil {
		return nil, err
	}
	cfg.Market = gen.Config()
	plan, err := NewPlan(cfg, blockSize)
	if err != nil {
		return nil, err
	}
	return &GroupRunner{
		cfg:   cfg,
		gen:   gen,
		plan:  plan,
		pairs: taq.AllPairs(cfg.Market.Universe.Len()),
		days:  make([]dayOnce, plan.Days),
	}, nil
}

// Plan returns the sweep decomposition.
func (r *GroupRunner) Plan() *Plan { return r.plan }

// Config returns the sanitised configuration (market defaults filled).
func (r *GroupRunner) Config() backtest.Config { return r.cfg }

// Fingerprint returns the sweep-configuration fingerprint binding this
// runner to its journals and peers.
func (r *GroupRunner) Fingerprint() string { return Fingerprint(r.cfg, r.plan.BlockSize) }

// WarmStats summarises the robust estimator's warm-start behaviour
// over every group executed so far.
func (r *GroupRunner) WarmStats() RobustSummary {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	return summarize(&r.warm)
}

// PlanHeader builds the journal header binding r's sweep configuration
// to one shard assignment — the header every journal of the sweep
// (local shard or farm coordinator) opens with.
func PlanHeader(r *GroupRunner, sh Shard) Header {
	plan := r.plan
	h := Header{
		Schema:      JournalSchema,
		Fingerprint: r.Fingerprint(),
		ShardIndex:  sh.Index,
		ShardCount:  sh.Count,
		BlockSize:   plan.BlockSize,
		Symbols:     r.cfg.Market.Universe.Symbols(),
		Days:        plan.Days,
		Levels:      plan.Levels,
		UnitsTotal:  plan.NumUnits(),
	}
	for _, t := range plan.Types {
		h.Types = append(h.Types, t.String())
	}
	return h
}

// prepareDay generates, cleans, samples and (when enabled) screens day
// d exactly once.
func (r *GroupRunner) prepareDay(d int) (*dayOnce, error) {
	c := &r.days[d]
	c.once.Do(func() {
		c.dd, c.err = backtest.PrepareDay(r.cfg, r.gen, d)
		if c.err != nil || !r.cfg.Screen.Enabled() {
			return
		}
		keep, _, err := screen.Select(r.cfg.Screen, c.dd.Returns)
		if err != nil {
			c.err = err
			return
		}
		c.kept = make([]bool, r.plan.NumPairs)
		for _, pid := range keep {
			c.kept[pid] = true
		}
	})
	return c, c.err
}

// RunGroup executes the given units of one (day, block) group —
// computing each needed correlation series once per window length and
// serving every parameter unit from it, exactly like the integrated
// backtest — and calls emit once per completed unit with its journal
// Entry and trade count. Units must belong to the group identified by
// gid. engineWorkers sets the matrix engine's intra-group parallelism;
// the engine is worker-count-invariant, so any value produces
// identical bytes.
func (r *GroupRunner) RunGroup(ctx context.Context, gid int, units []Unit, engineWorkers int, emit func(e Entry, trades int64) error) error {
	plan := r.plan
	day, block := gid/plan.NumBlocks(), gid%plan.NumBlocks()
	dc, err := r.prepareDay(day)
	if err != nil {
		return err
	}
	dd := dc.dd
	lo, hi := plan.BlockRange(block)
	blockPairs := make([]int, hi-lo)
	for i := range blockPairs {
		blockPairs[i] = lo + i
	}
	// Screening intersection: the engine computes only this block's
	// surviving pairs; pruned pairs keep their journal slot with an
	// empty return set. rowOf maps a block-local index to its row in
	// the engine output (-1 = pruned).
	engPairs := blockPairs
	rowOf := func(i int) int { return i }
	if dc.kept != nil {
		engPairs = make([]int, 0, hi-lo)
		rows := make([]int, hi-lo)
		for i, pid := range blockPairs {
			if dc.kept[pid] {
				rows[i] = len(engPairs)
				engPairs = append(engPairs, pid)
			} else {
				rows[i] = -1
			}
		}
		rowOf = func(i int) int { return rows[i] }
	}

	// Group the units by window M and compute each needed correlation
	// series once — the fused robust path serves Maronna and Combined
	// from a single fit per window, exactly as the integrated runner
	// does.
	byM := map[int]map[corr.Type][]Unit{}
	for _, u := range units {
		p := plan.Param(u.Param)
		tm, ok := byM[p.M]
		if !ok {
			tm = map[corr.Type][]Unit{}
			byM[p.M] = tm
		}
		tm[p.Ctype] = append(tm[p.Ctype], u)
	}
	ms := make([]int, 0, len(byM))
	for m := range byM {
		ms = append(ms, m)
	}
	sort.Ints(ms)
	for _, m := range ms {
		needed := byM[m]
		var types []corr.Type
		for _, t := range plan.Types {
			if _, ok := needed[t]; ok {
				types = append(types, t)
			}
		}
		var css []*corr.Series
		if len(engPairs) > 0 {
			css, err = corr.ComputeSeriesMulti(corr.EngineConfig{M: m, Workers: engineWorkers, Pairs: engPairs, Float32: r.cfg.Float32}, types, dd.Returns)
			if err != nil {
				return err
			}
			// All robust series of one fused pass share a single stats
			// object; find it past any Pearson series and count it once.
			for _, cs := range css {
				if cs.Robust != nil {
					r.warmMu.Lock()
					r.warm.Merge(cs.Robust)
					r.warmMu.Unlock()
					break
				}
			}
		}
		for ti, t := range types {
			for _, u := range needed[t] {
				if err := ctx.Err(); err != nil {
					return err
				}
				p := plan.Param(u.Param)
				e := Entry{U: plan.UnitID(u), Rets: make([][]float64, hi-lo)}
				var unitTrades int64
				for i, pid := range blockPairs {
					row := rowOf(i)
					if row < 0 {
						e.Rets[i] = backtest.TradeReturns(r.cfg, nil)
						continue
					}
					cs := css[ti]
					pr := r.pairs[pid]
					tr, err := strategy.RunDay(p, cs.Corr[row], cs.FirstS, dd.PG, pr.I, pr.J, u.Day)
					if err != nil {
						return err
					}
					e.Rets[i] = backtest.TradeReturns(r.cfg, tr)
					unitTrades += int64(len(e.Rets[i]))
				}
				if err := emit(e, unitTrades); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
