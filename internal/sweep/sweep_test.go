package sweep

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/market"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// testConfig returns a small but non-trivial sweep: two window lengths
// M (so the per-group byM fan-out is exercised), all three correlation
// treatments, several pairs and days.
func testConfig(t *testing.T, stocks, days, levels int, seed int64) backtest.Config {
	t.Helper()
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:stocks])
	if err != nil {
		t.Fatal(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = days
	mc.Seed = seed
	return backtest.Config{Market: mc, Levels: strategy.BaseGrid()[:levels], Workers: 2}
}

func runShards(t *testing.T, cfg backtest.Config, shards, blockSize int, dir string) []string {
	t.Helper()
	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.journal", i))
		st, err := Run(context.Background(), RunConfig{
			Config:      cfg,
			BlockSize:   blockSize,
			Shard:       Shard{Index: i, Count: shards},
			JournalPath: paths[i],
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		if st.Paused {
			t.Fatalf("shard %d/%d paused without a limit", i, shards)
		}
		if st.UnitsExecuted+st.UnitsSkipped != st.UnitsTotal {
			t.Fatalf("shard %d/%d incomplete: %d+%d of %d units", i, shards, st.UnitsExecuted, st.UnitsSkipped, st.UnitsTotal)
		}
	}
	return paths
}

// sameResult asserts bit-identical sweep output: trade-for-trade,
// return-for-return, and byte-for-byte through the JSON serialisation
// mmreport consumes.
func sameResult(t *testing.T, want, got *backtest.Result, label string) {
	t.Helper()
	if got.TradeCount != want.TradeCount {
		t.Fatalf("%s: %d trades, want %d", label, got.TradeCount, want.TradeCount)
	}
	if !reflect.DeepEqual(got.Series, want.Series) {
		t.Fatalf("%s: merged return series differ from single-shot", label)
	}
	var wb, gb bytes.Buffer
	if err := backtest.SaveJSON(&wb, want); err != nil {
		t.Fatal(err)
	}
	if err := backtest.SaveJSON(&gb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("%s: serialised results are not byte-identical", label)
	}
}

// TestShardedMergeEqualsSingleShot is the bit-determinism property of
// the acceptance criteria: for every shard width and block size, the
// merged per-shard journals equal the single-process backtest.Run
// exactly.
func TestShardedMergeEqualsSingleShot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{42, 20080301} {
		cfg := testConfig(t, 6, 2, 2, seed)
		want, err := backtest.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ shards, block int }{
			{1, 0},    // single shard, default blocks
			{2, 5},    // uneven final block (15 pairs / 5)
			{3, 4},    // more shards than days
			{2, 1000}, // one block spanning all pairs
			{5, 1},    // one pair per block
		} {
			label := fmt.Sprintf("seed=%d shards=%d block=%d", seed, tc.shards, tc.block)
			paths := runShards(t, cfg, tc.shards, tc.block, t.TempDir())
			got, rep, err := MergeFiles(paths)
			if err != nil {
				t.Fatalf("%s: merge: %v", label, err)
			}
			if rep.Units != rep.UnitsTotal || rep.Duplicates != 0 {
				t.Fatalf("%s: merge report %+v", label, rep)
			}
			sameResult(t, want, got, label)
		}
	}
}

// TestResumeReproducesSingleShot kills a sweep twice — once by unit
// budget, once by context cancellation mid-run — and asserts the
// resumed journal merges to the identical trade count and return
// series as an uninterrupted run.
func TestResumeReproducesSingleShot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(t, 6, 2, 2, 7)
	want, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("limit", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "s.journal")
		rc := RunConfig{Config: cfg, BlockSize: 4, Shard: Shard{0, 1}, JournalPath: path, Limit: 5}
		st1, err := Run(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		if !st1.Paused || st1.UnitsExecuted != 5 {
			t.Fatalf("budgeted run: paused=%v executed=%d, want paused after 5", st1.Paused, st1.UnitsExecuted)
		}
		if _, _, err := MergeFiles([]string{path}); err == nil {
			t.Fatal("merging a paused shard should report missing units")
		}
		rc.Limit = 0
		st2, err := Run(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		if st2.UnitsSkipped != 5 {
			t.Fatalf("resume re-ran checkpointed units: skipped %d, want 5", st2.UnitsSkipped)
		}
		if st2.UnitsExecuted != st2.UnitsTotal-5 {
			t.Fatalf("resume executed %d of %d", st2.UnitsExecuted, st2.UnitsTotal)
		}
		got, _, err := MergeFiles([]string{path})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want, got, "limit-resume")
	})

	t.Run("cancel", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "s.journal")
		ctx, cancel := context.WithCancel(context.Background())
		killAfter := 3
		rc := RunConfig{Config: cfg, BlockSize: 4, Shard: Shard{0, 1}, JournalPath: path,
			Progress: func(p ProgressInfo) {
				if p.Done >= killAfter {
					cancel()
				}
			}}
		if _, err := Run(ctx, rc); err == nil {
			t.Fatal("cancelled run should return an error")
		}
		rc.Progress = nil
		st, err := Run(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		if st.UnitsSkipped == 0 {
			t.Fatal("resume after kill found no checkpointed units")
		}
		got, _, err := MergeFiles([]string{path})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want, got, "cancel-resume")
	})
}

func TestRunRefusesForeignJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.journal")
	cfgA := testConfig(t, 4, 1, 1, 1)
	if _, err := Run(context.Background(), RunConfig{Config: cfgA, Shard: Shard{0, 1}, JournalPath: path}); err != nil {
		t.Fatal(err)
	}
	// Different seed ⇒ different data ⇒ different fingerprint.
	cfgB := testConfig(t, 4, 1, 1, 2)
	if _, err := Run(context.Background(), RunConfig{Config: cfgB, Shard: Shard{0, 1}, JournalPath: path}); err == nil {
		t.Fatal("resuming with a different configuration should be refused")
	}
	// Same configuration, different shard assignment.
	if _, err := Run(context.Background(), RunConfig{Config: cfgA, Shard: Shard{0, 2}, JournalPath: path}); err == nil {
		t.Fatal("resuming with a different shard assignment should be refused")
	}
}

func TestMergeRejectsMixedSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	cfg := testConfig(t, 4, 1, 1, 1)
	a := runShards(t, cfg, 1, 0, dir)
	other := testConfig(t, 4, 1, 1, 9)
	b := filepath.Join(dir, "other.journal")
	if _, err := Run(context.Background(), RunConfig{Config: other, Shard: Shard{0, 1}, JournalPath: b}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeFiles([]string{a[0], b}); err == nil {
		t.Fatal("merging journals of different sweeps should fail")
	}
}

func TestManifestTracksCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.journal")
	cfg := testConfig(t, 4, 1, 1, 3)
	st, err := Run(context.Background(), RunConfig{Config: cfg, Shard: Shard{0, 1}, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path + ".manifest")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Done || m.UnitsDone != m.UnitsTotal || m.UnitsTotal != st.UnitsTotal {
		t.Fatalf("final manifest %+v, want done with %d units", m, st.UnitsTotal)
	}
	if m.Trades != st.Trades {
		t.Fatalf("manifest trades %d, run stats %d", m.Trades, st.Trades)
	}
	if m.Warm.Windows == 0 || m.Warm.WarmHitFraction <= 0 {
		t.Fatalf("manifest warm-start telemetry missing: %+v", m.Warm)
	}
}

func TestParseShard(t *testing.T) {
	if s, err := ParseShard("2/8"); err != nil || s != (Shard{2, 8}) {
		t.Fatalf("ParseShard(2/8) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "3", "3/3", "-1/2", "a/b", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) should fail", bad)
		}
	}
}

func TestPlanUnitRoundTrip(t *testing.T) {
	cfg := testConfig(t, 6, 3, 2, 1)
	plan, err := NewPlan(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 15 pairs / block 4 ⇒ 4 blocks, final block of 3 pairs.
	if plan.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", plan.NumBlocks())
	}
	if lo, hi := plan.BlockRange(3); lo != 12 || hi != 15 {
		t.Fatalf("BlockRange(3) = [%d,%d), want [12,15)", lo, hi)
	}
	seen := map[int]bool{}
	for id := 0; id < plan.NumUnits(); id++ {
		u := plan.UnitFromID(id)
		if got := plan.UnitID(u); got != id {
			t.Fatalf("UnitID(UnitFromID(%d)) = %d", id, got)
		}
		if seen[id] {
			t.Fatalf("duplicate unit id %d", id)
		}
		seen[id] = true
	}
	// Round-robin ownership partitions the groups exactly.
	for n := 1; n <= 5; n++ {
		counts := make([]int, n)
		for gid := 0; gid < plan.NumGroups(); gid++ {
			counts[plan.GroupOwner(gid, n)]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != plan.NumGroups() {
			t.Fatalf("owners cover %d of %d groups", total, plan.NumGroups())
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testConfig(t, 6, 2, 2, 1)
	fp := Fingerprint(base, 0)
	mutations := map[string]backtest.Config{}
	c := testConfig(t, 6, 2, 2, 2)
	mutations["seed"] = c
	c = testConfig(t, 5, 2, 2, 1)
	mutations["universe"] = c
	c = testConfig(t, 6, 3, 2, 1)
	mutations["days"] = c
	c = testConfig(t, 6, 2, 1, 1)
	mutations["levels"] = c
	for name, m := range mutations {
		if Fingerprint(m, 0) == fp {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
	if Fingerprint(base, 64) == fp {
		t.Error("fingerprint insensitive to block size")
	}
	if Fingerprint(base, 0) != fp {
		t.Error("fingerprint not deterministic")
	}
}
