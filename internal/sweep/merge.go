package sweep

import (
	"fmt"
	"sort"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/metrics"
	"marketminer/internal/taq"
)

// MergeReport describes what MergeFiles combined.
type MergeReport struct {
	// Files is the number of journals read; ShardCount is the sweep's
	// shard width n.
	Files, ShardCount int
	// Units and UnitsTotal count distinct completed units vs the
	// sweep's full decomposition.
	Units, UnitsTotal int
	// Duplicates counts entries that re-recorded an already-seen unit
	// (e.g. the same shard journal passed twice); the last occurrence
	// wins, and because units are deterministic duplicates are always
	// bit-identical.
	Duplicates int
	// Corrupt lists healed-tail reports of damaged journals; the units
	// a damaged tail held are missing, so a corrupt journal usually
	// also implies an incomplete merge until its shard is re-run.
	Corrupt []*Corruption
}

// MergeFiles combines per-shard journals into the full sweep Result —
// the dataset Tables III–V and Figure 2 are computed from. The
// journals must all come from the same sweep (identical configuration
// fingerprints) and together cover every unit; partial coverage is an
// error naming the missing shard indexes, because a silently
// incomplete Result would bias every aggregate.
//
// Merging is pure assembly — no recomputation — so merged output is
// bit-identical to a single-process backtest.Run of the same
// configuration.
func MergeFiles(paths []string) (*backtest.Result, *MergeReport, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("sweep: no journals to merge")
	}
	rep := &MergeReport{Files: len(paths)}
	var ref *journalData
	datas := make([]*journalData, 0, len(paths))
	for _, p := range paths {
		d, err := readJournal(p)
		if err != nil {
			return nil, nil, err
		}
		if d.Corrupt != nil {
			rep.Corrupt = append(rep.Corrupt, d.Corrupt)
		}
		if ref == nil {
			ref = d
		} else {
			if d.Header.Fingerprint != ref.Header.Fingerprint {
				return nil, nil, fmt.Errorf("sweep: %s records a different sweep (fingerprint %s) than %s (%s)",
					p, d.Header.Fingerprint, paths[0], ref.Header.Fingerprint)
			}
			if d.Header.ShardCount != ref.Header.ShardCount {
				return nil, nil, fmt.Errorf("sweep: %s is shard %d/%d but %s is %d/%d — mixed shard widths cannot merge",
					p, d.Header.ShardIndex, d.Header.ShardCount, paths[0], ref.Header.ShardIndex, ref.Header.ShardCount)
			}
		}
		datas = append(datas, d)
	}
	h := ref.Header
	rep.ShardCount = h.ShardCount
	rep.UnitsTotal = h.UnitsTotal

	uni, err := taq.NewUniverse(h.Symbols)
	if err != nil {
		return nil, nil, err
	}
	var types []corr.Type
	for _, name := range h.Types {
		t, err := corr.ParseType(name)
		if err != nil {
			return nil, nil, err
		}
		types = append(types, t)
	}
	plan := &Plan{
		Levels:    h.Levels,
		Types:     types,
		Days:      h.Days,
		NumPairs:  uni.NumPairs(),
		BlockSize: h.BlockSize,
	}
	if plan.NumUnits() != h.UnitsTotal {
		return nil, nil, fmt.Errorf("sweep: journal header inconsistent: %d units declared, %d derived", h.UnitsTotal, plan.NumUnits())
	}

	res := &backtest.Result{Universe: uni, Levels: h.Levels, Types: types, Days: h.Days}
	res.Series = make([][]metrics.PairParamSeries, plan.NumPairs)
	for p := range res.Series {
		res.Series[p] = make([]metrics.PairParamSeries, plan.NumParams())
		for k := range res.Series[p] {
			res.Series[p][k].Daily = make([][]float64, plan.Days)
		}
	}

	seen := make(map[int]bool, h.UnitsTotal)
	for _, d := range datas {
		for _, e := range d.Entries {
			u := plan.UnitFromID(e.U)
			lo, hi := plan.BlockRange(u.Block)
			if len(e.Rets) != hi-lo {
				return nil, nil, fmt.Errorf("sweep: unit %d has %d pair rows, want %d", e.U, len(e.Rets), hi-lo)
			}
			if seen[e.U] {
				rep.Duplicates++
			}
			seen[e.U] = true
			for i, rets := range e.Rets {
				res.Series[lo+i][u.Param].Daily[u.Day] = rets
			}
		}
	}
	rep.Units = len(seen)
	if rep.Units != h.UnitsTotal {
		missing := missingShards(plan, seen, h.ShardCount)
		return nil, rep, fmt.Errorf("sweep: merge incomplete: %d/%d units present; shards with missing work: %v",
			rep.Units, h.UnitsTotal, missing)
	}

	for p := range res.Series {
		for k := range res.Series[p] {
			for _, day := range res.Series[p][k].Daily {
				res.TradeCount += int64(len(day))
			}
		}
	}
	return res, rep, nil
}

// missingShards lists which shard indexes own at least one missing
// unit — the actionable part of an incomplete-merge error.
func missingShards(plan *Plan, seen map[int]bool, n int) []int {
	set := map[int]bool{}
	for id := 0; id < plan.NumUnits(); id++ {
		if !seen[id] {
			set[plan.GroupOwner(id/plan.NumParams(), n)] = true
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
