package sweep

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/corr"
	"marketminer/internal/sched"
)

// RunConfig configures one orchestrated shard run.
type RunConfig struct {
	// Config is the sweep to decompose — the same configuration every
	// cooperating shard must be started with.
	Config backtest.Config
	// BlockSize is the pairs-per-block granularity; ≤ 0 means
	// DefaultBlockSize. All shards must agree (it is fingerprinted).
	BlockSize int
	// Shard selects this process's slice of the groups; the zero value
	// is invalid, use Shard{0, 1} for a single process.
	Shard Shard
	// JournalPath is the checkpoint journal for this shard (required).
	JournalPath string
	// ManifestPath receives the machine-readable progress manifest;
	// empty means JournalPath + ".manifest".
	ManifestPath string
	// Progress, when non-nil, receives periodic progress snapshots.
	Progress func(ProgressInfo)
	// ProgressEvery rate-limits Progress and manifest writes; ≤ 0
	// means every completed unit (tests) — the CLI passes ~2 s.
	ProgressEvery time.Duration
	// Limit, when > 0, stops cleanly after executing that many units
	// in this invocation (checkpoint-budgeted operation); the run
	// reports Paused and a later invocation resumes.
	Limit int
}

func (rc RunConfig) manifestPath() string {
	if rc.ManifestPath != "" {
		return rc.ManifestPath
	}
	return rc.JournalPath + ".manifest"
}

// ProgressInfo is one observability snapshot of a running shard.
type ProgressInfo struct {
	Shard Shard
	// Done/Total count this shard's units (Done includes
	// checkpoint-restored units).
	Done, Total int
	// SweepUnits is the whole sweep's unit count across all shards.
	SweepUnits int
	// Trades counts trades recorded by this shard so far.
	Trades int64
	// Elapsed, Rate and ETA come from the live sched.Meter: rate and
	// ETA measure only this invocation's throughput.
	Elapsed time.Duration
	Rate    float64
	ETA     time.Duration
	// WarmHitFraction is the robust estimator's warm-start hit rate so
	// far (0 when no robust window has been fitted yet).
	WarmHitFraction float64
}

// RobustSummary aggregates corr.RobustStats over every engine pass of
// one run.
type RobustSummary struct {
	Windows         int     `json:"windows"`
	WarmHits        int     `json:"warm_hits"`
	ColdStarts      int     `json:"cold_starts"`
	Fallbacks       int     `json:"fallbacks"`
	WarmHitFraction float64 `json:"warm_hit_fraction"`
	MeanIters       float64 `json:"mean_iterations"`
}

// RunStats reports what one Run invocation did.
type RunStats struct {
	Shard Shard
	// UnitsTotal is this shard's unit count; UnitsExecuted were run
	// now, UnitsSkipped were restored from the journal.
	UnitsTotal, UnitsExecuted, UnitsSkipped int
	// Trades counts trades across all of this shard's completed units
	// (restored + executed).
	Trades int64
	// Paused reports that Limit stopped the run before the shard
	// finished; the journal holds everything completed so far.
	Paused bool
	// Recovered is non-nil when a damaged journal tail was detected
	// and healed before running.
	Recovered *Corruption
	// Warm summarises the robust kernel's warm-start behaviour over
	// the units executed now.
	Warm RobustSummary
}

// Run executes this shard's share of the sweep, skipping units already
// checkpointed in the journal and appending every newly completed unit
// to it. Interrupt it at any point — kill, crash, context cancel,
// Limit — and a later Run with the same RunConfig resumes exactly
// where it stopped; the merged output is bit-identical to an
// uninterrupted single-process sweep because every unit's value is
// independent of scheduling (per-pair warm-start chains never cross
// units). Group execution itself lives in GroupRunner, the path the
// distributed farm's remote workers share.
func Run(ctx context.Context, rc RunConfig) (*RunStats, error) {
	if err := rc.Shard.Validate(); err != nil {
		return nil, err
	}
	if rc.JournalPath == "" {
		return nil, fmt.Errorf("sweep: RunConfig.JournalPath is required")
	}
	runner, err := NewGroupRunner(rc.Config, rc.BlockSize)
	if err != nil {
		return nil, err
	}
	cfg, plan := runner.Config(), runner.Plan()
	header := PlanHeader(runner, rc.Shard)

	journal, done, recovered, err := OpenJournal(rc.JournalPath, header)
	if err != nil {
		return nil, err
	}
	defer journal.Close()

	// This shard's groups and the units still missing from its
	// journal, in deterministic id order. Limit truncates the missing
	// list, which is what makes budgeted runs resumable mid-group.
	var groups []int
	shardUnits := 0
	missingByGroup := map[int][]Unit{}
	var missingTotal int
	stats := &RunStats{Shard: rc.Shard, Recovered: recovered}
	for gid := 0; gid < plan.NumGroups(); gid++ {
		if plan.GroupOwner(gid, rc.Shard.Count) != rc.Shard.Index {
			continue
		}
		day, block := gid/plan.NumBlocks(), gid%plan.NumBlocks()
		shardUnits += plan.NumParams()
		for k := 0; k < plan.NumParams(); k++ {
			u := Unit{Day: day, Block: block, Param: k}
			if n, ok := done[plan.UnitID(u)]; ok {
				stats.UnitsSkipped++
				stats.Trades += int64(n)
				continue
			}
			if rc.Limit > 0 && missingTotal >= rc.Limit {
				stats.Paused = true
				continue
			}
			if len(missingByGroup[gid]) == 0 {
				groups = append(groups, gid)
			}
			missingByGroup[gid] = append(missingByGroup[gid], u)
			missingTotal++
		}
	}
	stats.UnitsTotal = shardUnits
	sort.Ints(groups)

	meter := sched.NewMeter(int64(shardUnits))
	meter.Skip(int64(stats.UnitsSkipped))
	var trades, executed atomic.Int64
	trades.Store(stats.Trades)

	var progressMu sync.Mutex
	var lastProgress time.Time
	emitProgress := func() {
		progressMu.Lock()
		if rc.ProgressEvery > 0 && time.Since(lastProgress) < rc.ProgressEvery {
			progressMu.Unlock()
			return
		}
		lastProgress = time.Now()
		progressMu.Unlock()

		snap := meter.Snapshot()
		ws := runner.WarmStats()
		info := ProgressInfo{
			Shard:           rc.Shard,
			Done:            int(snap.Done),
			Total:           shardUnits,
			SweepUnits:      plan.NumUnits(),
			Trades:          trades.Load(),
			Elapsed:         snap.Elapsed,
			Rate:            snap.Rate,
			ETA:             snap.ETA,
			WarmHitFraction: ws.WarmHitFraction,
		}
		if rc.Progress != nil {
			rc.Progress(info)
		}
		writeManifest(rc.manifestPath(), manifestFrom(header, info, ws, false))
	}

	W := cfg.ResolvedWorkers()
	// Parallelism lives at the group level, but when this shard owns
	// fewer groups than workers the surplus cores would idle; hand the
	// remainder to the matrix engine inside each group. The engine is
	// worker-count-invariant (bit-identical output for any worker
	// count), so shard bytes are unchanged either way.
	engineWorkers := 1
	if len(groups) > 0 && len(groups) < W {
		engineWorkers = (W + len(groups) - 1) / len(groups)
	}
	pool := sched.New(W)
	err = pool.Map(ctx, len(groups), func(ctx context.Context, gi int) error {
		gid := groups[gi]
		return runner.RunGroup(ctx, gid, missingByGroup[gid], engineWorkers, func(e Entry, unitTrades int64) error {
			if err := journal.Append(e); err != nil {
				return err
			}
			trades.Add(unitTrades)
			meter.Add(1)
			executed.Add(1)
			emitProgress()
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	if err := journal.Close(); err != nil {
		return nil, err
	}

	stats.Trades = trades.Load()
	stats.UnitsExecuted = int(executed.Load())
	stats.Warm = runner.WarmStats()
	finished := stats.UnitsSkipped+stats.UnitsExecuted == shardUnits && !stats.Paused
	snap := meter.Snapshot()
	info := ProgressInfo{
		Shard: rc.Shard, Done: int(snap.Done), Total: shardUnits,
		SweepUnits: plan.NumUnits(), Trades: stats.Trades,
		Elapsed: snap.Elapsed, Rate: snap.Rate, ETA: snap.ETA,
		WarmHitFraction: stats.Warm.WarmHitFraction,
	}
	if err := writeManifest(rc.manifestPath(), manifestFrom(header, info, stats.Warm, finished)); err != nil {
		return nil, err
	}
	if rc.Progress != nil {
		rc.Progress(info)
	}
	return stats, nil
}

func summarize(st *corr.RobustStats) RobustSummary {
	s := RobustSummary{
		Windows:    st.Windows,
		WarmHits:   st.WarmHits,
		ColdStarts: st.ColdStarts,
		Fallbacks:  st.Fallbacks,
		MeanIters:  st.MeanIters(),
	}
	if st.Windows > 0 {
		s.WarmHitFraction = float64(st.WarmHits) / float64(st.Windows)
	}
	return s
}
