package sweep

import (
	"context"
	"fmt"
	"math"
	"testing"

	"marketminer/internal/backtest"
	"marketminer/internal/screen"
)

func totalPnL(r *backtest.Result) float64 {
	var s float64
	for p := range r.Series {
		for k := range r.Series[p] {
			for _, day := range r.Series[p][k].Daily {
				for _, ret := range day {
					s += ret
				}
			}
		}
	}
	return s
}

// TestScreenedSweepRecall is the screening recall gate from the design
// contract: on the seed universe, a screened sweep must retain at
// least 95% of the unscreened sweep's trade PnL while actually pruning
// a substantial share of the pair triangle. Screening only removes
// pairs — surviving pairs' series are bit-identical — so lost PnL is
// exactly the pruned pairs' contribution.
func TestScreenedSweepRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(t, 6, 2, 2, 20080301)
	full, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Screen = screen.Config{TopFrac: 0.5, MinKeep: 2}
	screened, err := backtest.Run(context.Background(), scfg)
	if err != nil {
		t.Fatal(err)
	}
	if screened.TradeCount >= full.TradeCount {
		t.Fatalf("screening pruned nothing: %d trades vs %d", screened.TradeCount, full.TradeCount)
	}
	fp, sp := totalPnL(full), totalPnL(screened)
	if fp <= 0 {
		t.Fatalf("unscreened sweep PnL %v not positive; recall gate undefined", fp)
	}
	if lost := fp - sp; lost > 0.05*math.Abs(fp) {
		t.Fatalf("screened sweep retains %.1f%% of PnL (%v of %v), recall gate needs ≥95%%",
			100*sp/fp, sp, fp)
	}
	t.Logf("recall: screened PnL %v / unscreened %v (%.1f%%), trades %d/%d",
		sp, fp, 100*sp/fp, screened.TradeCount, full.TradeCount)
}

// TestScreenedShardedMergeEqualsSingleShot extends the sweep's
// bit-determinism property to the screened and float32 paths: the
// orchestrator's per-day screening and block intersection must
// reproduce the integrated runner's screening decision exactly, for
// any shard count and block size.
func TestScreenedShardedMergeEqualsSingleShot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(t, 6, 2, 2, 42)
	cfg.Screen = screen.Config{TopFrac: 0.4, MinKeep: 1}
	cfg.Float32 = true
	want, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ shards, block int }{
		{1, 0}, // single shard, default blocks
		{2, 5}, // uneven final block
		{3, 1}, // one pair per block: pruned blocks skip the engine
	} {
		label := fmt.Sprintf("screened shards=%d block=%d", tc.shards, tc.block)
		paths := runShards(t, cfg, tc.shards, tc.block, t.TempDir())
		got, rep, err := MergeFiles(paths)
		if err != nil {
			t.Fatalf("%s: merge: %v", label, err)
		}
		if rep.Units != rep.UnitsTotal || rep.Duplicates != 0 {
			t.Fatalf("%s: merge report %+v", label, rep)
		}
		sameResult(t, want, got, label)
	}
}

// TestFingerprintScreenFields pins the fingerprint contract for the
// new knobs: inactive screening and float64 hash exactly as before
// (old journals stay resumable), while any active screening or
// float32 setting forks the fingerprint.
func TestFingerprintScreenFields(t *testing.T) {
	cfg := testConfig(t, 6, 2, 2, 1)
	base := Fingerprint(cfg, 0)

	zero := cfg
	zero.Screen = screen.Config{}
	zero.Float32 = false
	if Fingerprint(zero, 0) != base {
		t.Fatal("zero screening changed the fingerprint")
	}

	seen := map[string]string{"": base}
	for name, mut := range map[string]func(*backtest.Config){
		"topfrac":  func(c *backtest.Config) { c.Screen.TopFrac = 0.5 },
		"topfrac2": func(c *backtest.Config) { c.Screen.TopFrac = 0.6 },
		"maxssd":   func(c *backtest.Config) { c.Screen.MaxSSD = 1e-3 },
		"minkeep":  func(c *backtest.Config) { c.Screen.TopFrac = 0.5; c.Screen.MinKeep = 3 },
		"stride":   func(c *backtest.Config) { c.Screen.TopFrac = 0.5; c.Screen.Stride = 4 },
		"f32":      func(c *backtest.Config) { c.Float32 = true },
	} {
		m := cfg
		mut(&m)
		fp := Fingerprint(m, 0)
		for other, ofp := range seen {
			if fp == ofp {
				t.Fatalf("config %q collides with %q: %s", name, other, fp)
			}
		}
		seen[name] = fp
	}
}
