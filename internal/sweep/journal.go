package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"marketminer/internal/strategy"
)

// JournalSchema versions the on-disk journal format.
const JournalSchema = "marketminer/sweep-journal/v1"

// syncEvery bounds how many appended units may be buffered in the OS
// page cache before an fsync; a hard power loss can cost at most this
// many units of re-execution (a clean kill costs none).
const syncEvery = 64

// Header is the first line of a journal file. It binds the file to one
// sweep configuration (Fingerprint) and one shard assignment, and
// carries enough of the decomposition — symbols, calendar, grid, block
// size — for MergeFiles to rebuild the full Result without access to
// the original configuration.
type Header struct {
	Schema      string            `json:"schema"`
	Fingerprint string            `json:"fingerprint"`
	ShardIndex  int               `json:"shard"`
	ShardCount  int               `json:"of"`
	BlockSize   int               `json:"block_size"`
	Symbols     []string          `json:"symbols"`
	Days        int               `json:"days"`
	Levels      []strategy.Params `json:"levels"`
	Types       []string          `json:"types"`
	UnitsTotal  int               `json:"units_total"`
}

// Entry is one completed unit: the unit id and, for every pair of the
// unit's block (ascending canonical id), that pair's per-trade returns
// for the unit's (day, parameter set).
type Entry struct {
	U    int         `json:"u"`
	Rets [][]float64 `json:"rets"`
}

// journalLine is the envelope around each entry: the CRC32 (IEEE) of
// the raw entry JSON. A line that is truncated mid-write fails to
// parse; a line whose bytes were damaged fails the checksum; both are
// reported as a Corruption and healed by truncating back to the last
// intact entry.
type journalLine struct {
	CRC uint32          `json:"crc"`
	E   json.RawMessage `json:"e"`
}

// Corruption describes a damaged journal tail: where the first bad
// line starts and why it was rejected. Everything before Offset is
// intact and trusted; everything from Offset on is discarded, and the
// units it held are simply re-run.
type Corruption struct {
	Path   string
	Offset int64 // byte offset of the first damaged line
	Line   int   // 1-based line number of the first damaged line
	Units  int   // intact units kept before the damage
	Reason string
}

// String renders the corruption for logs: where the damage was found
// and how many completed units it cost.
func (c *Corruption) String() string {
	return fmt.Sprintf("%s: corrupt entry at line %d (byte %d): %s; %d intact units kept",
		c.Path, c.Line, c.Offset, c.Reason, c.Units)
}

// journalData is a fully-read journal file.
type journalData struct {
	Header  Header
	Entries []Entry
	// Corrupt is non-nil when the tail was damaged; Entries then holds
	// only the intact prefix and CleanSize is its byte length.
	Corrupt   *Corruption
	CleanSize int64
}

// maxJournalLine bounds one journal line: a paper-scale unit is one
// block of ≤ blockSize pairs' trade returns, far below this.
const maxJournalLine = 64 << 20

// readJournal parses a journal file, verifying every entry checksum.
// It returns an error only for damage that cannot be healed by
// truncation (unreadable file, bad header); entry-level damage comes
// back as journalData.Corrupt.
func readJournal(path string) (*journalData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), maxJournalLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sweep: %s: read header: %w", path, err)
		}
		return nil, fmt.Errorf("sweep: %s: journal is empty (no header)", path)
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("sweep: %s: corrupt journal header: %w (delete the file to restart this shard)", path, err)
	}
	if h.Schema != JournalSchema {
		return nil, fmt.Errorf("sweep: %s: journal schema %q, want %q", path, h.Schema, JournalSchema)
	}
	d := &journalData{Header: h, CleanSize: int64(len(sc.Bytes())) + 1}

	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		corrupt := func(reason string) {
			d.Corrupt = &Corruption{Path: path, Offset: d.CleanSize, Line: line, Units: len(d.Entries), Reason: reason}
		}
		var jl journalLine
		if err := json.Unmarshal(raw, &jl); err != nil || jl.E == nil {
			corrupt("unparseable line (truncated write?)")
			return d, nil
		}
		if got := crc32.ChecksumIEEE(jl.E); got != jl.CRC {
			corrupt(fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", jl.CRC, got))
			return d, nil
		}
		var e Entry
		if err := json.Unmarshal(jl.E, &e); err != nil {
			corrupt("unparseable entry payload")
			return d, nil
		}
		if e.U < 0 || e.U >= h.UnitsTotal {
			corrupt(fmt.Sprintf("unit id %d outside [0, %d)", e.U, h.UnitsTotal))
			return d, nil
		}
		d.Entries = append(d.Entries, e)
		d.CleanSize += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			d.Corrupt = &Corruption{Path: path, Offset: d.CleanSize, Line: line + 1, Units: len(d.Entries), Reason: "oversized line"}
			return d, nil
		}
		return nil, fmt.Errorf("sweep: %s: read: %w", path, err)
	}
	return d, nil
}

// Journal is an append-only checkpoint log opened for writing by one
// shard process. Append is safe for concurrent use by the runner's
// workers.
type Journal struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	w         *bufio.Writer
	sinceSync int
}

// OpenJournal opens (or creates) the journal at path for the sweep and
// shard described by h. For an existing file it verifies the header
// matches (same fingerprint, same shard), heals a damaged tail by
// truncating to the last intact entry, and returns the per-unit trade
// counts of every intact entry so the runner can skip completed work.
// The returned Corruption (nil when the file was clean) reports what
// was healed.
func OpenJournal(path string, h Header) (*Journal, map[int]int, *Corruption, error) {
	done := map[int]int{}
	var corrupt *Corruption

	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		d, err := readJournal(path)
		if err != nil {
			return nil, nil, nil, err
		}
		if d.Header.Fingerprint != h.Fingerprint {
			return nil, nil, nil, fmt.Errorf("sweep: %s: journal fingerprint %s does not match this configuration (%s) — it records a different sweep",
				path, d.Header.Fingerprint, h.Fingerprint)
		}
		if d.Header.ShardIndex != h.ShardIndex || d.Header.ShardCount != h.ShardCount {
			return nil, nil, nil, fmt.Errorf("sweep: %s: journal belongs to shard %d/%d, not %d/%d",
				path, d.Header.ShardIndex, d.Header.ShardCount, h.ShardIndex, h.ShardCount)
		}
		for _, e := range d.Entries {
			var n int
			for _, r := range e.Rets {
				n += len(r)
			}
			done[e.U] = n
		}
		corrupt = d.Corrupt
		if corrupt != nil {
			// Recovery: drop the damaged tail so the re-run of its
			// units appends to an intact file.
			if err := os.Truncate(path, d.CleanSize); err != nil {
				return nil, nil, nil, fmt.Errorf("sweep: heal %s: %w", path, err)
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, nil, err
		}
		return &Journal{path: path, f: f, w: bufio.NewWriter(f)}, done, corrupt, nil
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	j := &Journal{path: path, f: f, w: bufio.NewWriter(f)}
	hb, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if _, err := j.w.Write(append(hb, '\n')); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if err := j.w.Flush(); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return j, done, nil, nil
}

// Append writes one completed unit and flushes it to the OS; every
// syncEvery appends it also fsyncs, bounding what a power loss can
// undo.
func (j *Journal) Append(e Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line, err := json.Marshal(journalLine{CRC: crc32.ChecksumIEEE(payload), E: payload})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.sinceSync++
	if j.sinceSync >= syncEvery {
		j.sinceSync = 0
		return j.f.Sync()
	}
	return nil
}

// Close flushes, fsyncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
