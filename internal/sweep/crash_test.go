package sweep

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"

	"marketminer/internal/backtest"
)

// crashConfig must be identical in the helper subprocess and the
// resuming parent: the journal fingerprint binds them together.
func crashConfig(t *testing.T) backtest.Config {
	return testConfig(t, 6, 2, 2, 42)
}

// TestSweepCrashHelper is not a test: it is the subprocess body for
// the SIGKILL test below, selected via environment variable. It kills
// itself — no cleanup, no deferred closes, no journal fsync — the
// moment enough units are done, which is as close to a real crash
// mid-write as a test can get.
func TestSweepCrashHelper(t *testing.T) {
	if os.Getenv("MM_SWEEP_CRASH_HELPER") != "1" {
		t.Skip("helper process only")
	}
	killAfter, err := strconv.Atoi(os.Getenv("MM_SWEEP_CRASH_AFTER"))
	if err != nil {
		t.Fatal(err)
	}
	Run(context.Background(), RunConfig{
		Config:      crashConfig(t),
		BlockSize:   4,
		Shard:       Shard{0, 1},
		JournalPath: os.Getenv("MM_SWEEP_CRASH_JOURNAL"),
		Progress: func(p ProgressInfo) {
			if p.Done >= killAfter {
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			}
		},
	})
	t.Fatal("helper survived its own SIGKILL")
}

// TestSweepSIGKILLResumesLostUnitsOnly hard-kills a real sweep process
// mid-run and resumes its journal: the checkpointed units must be
// restored rather than recomputed, any torn tail healed, and the
// merged result bit-identical to an uninterrupted single-shot run.
// This is the crash-recovery claim tested with an actual SIGKILL, not
// a simulated truncation.
func TestSweepSIGKILLResumesLostUnitsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const killAfter = 12
	cfg := crashConfig(t)
	want, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.journal")

	cmd := exec.Command(os.Args[0], "-test.run=TestSweepCrashHelper", "-test.v")
	cmd.Env = append(os.Environ(),
		"MM_SWEEP_CRASH_HELPER=1",
		"MM_SWEEP_CRASH_JOURNAL="+path,
		"MM_SWEEP_CRASH_AFTER="+strconv.Itoa(killAfter),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper exited cleanly; expected SIGKILL mid-sweep:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != -1 {
		t.Fatalf("helper died of %v, want a signal:\n%s", err, out)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("killed process left no journal (err %v)", err)
	}

	st, err := Run(context.Background(), RunConfig{
		Config: cfg, BlockSize: 4, Shard: Shard{0, 1}, JournalPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != nil {
		t.Logf("healed torn tail: %v", st.Recovered)
	}
	// Every unit the dead process completed must be restored from the
	// journal (the torn final line, if any, may cost one).
	if st.UnitsSkipped < killAfter-1 {
		t.Errorf("resumed run restored %d units, want ≥ %d (checkpoints lost)", st.UnitsSkipped, killAfter-1)
	}
	if st.UnitsSkipped >= st.UnitsTotal {
		t.Errorf("resumed run restored all %d units; the kill should have left work", st.UnitsTotal)
	}
	if st.UnitsExecuted+st.UnitsSkipped != st.UnitsTotal {
		t.Errorf("resume incomplete: %d executed + %d restored of %d", st.UnitsExecuted, st.UnitsSkipped, st.UnitsTotal)
	}

	got, rep, err := MergeFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Units != rep.UnitsTotal || rep.Duplicates != 0 {
		t.Fatalf("merge report after crash+resume: %+v", rep)
	}
	sameResult(t, want, got, "SIGKILL+resume")
}
