package sweep

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"marketminer/internal/backtest"
)

// completeJournal runs a small single-shard sweep to completion and
// returns its journal path, config, and the single-shot reference.
func completeJournal(t *testing.T) (string, backtest.Config, *backtest.Result) {
	t.Helper()
	cfg := testConfig(t, 4, 1, 2, 11)
	want, err := backtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.journal")
	if _, err := Run(context.Background(), RunConfig{Config: cfg, BlockSize: 3, Shard: Shard{0, 1}, JournalPath: path}); err != nil {
		t.Fatal(err)
	}
	return path, cfg, want
}

// reRun resumes the journal and reports how many units were
// re-executed, asserting the healed sweep still matches the reference.
func reRun(t *testing.T, path string, cfg backtest.Config, want *backtest.Result, wantRecovered bool) int {
	t.Helper()
	st, err := Run(context.Background(), RunConfig{Config: cfg, BlockSize: 3, Shard: Shard{0, 1}, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if wantRecovered && st.Recovered == nil {
		t.Fatal("corruption was not detected/reported")
	}
	if !wantRecovered && st.Recovered != nil {
		t.Fatalf("unexpected corruption report: %v", st.Recovered)
	}
	got, _, err := MergeFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got, "post-recovery")
	return st.UnitsExecuted
}

// TestJournalTruncatedTail cuts the final entry mid-line — the shape a
// hard kill during a write leaves — and asserts detection plus minimal
// re-execution: exactly the one damaged unit runs again.
func TestJournalTruncatedTail(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path, cfg, want := completeJournal(t)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	if n := reRun(t, path, cfg, want, true); n != 1 {
		t.Fatalf("re-executed %d units after a truncated tail, want exactly 1", n)
	}
}

// TestJournalGarbageTail appends a non-entry line; recovery drops it
// and re-runs nothing because every real unit survived.
func TestJournalGarbageTail(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path, cfg, want := completeJournal(t)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("!!not json at all!!\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n := reRun(t, path, cfg, want, true); n != 0 {
		t.Fatalf("re-executed %d units after trailing garbage, want 0", n)
	}
}

// TestJournalChecksumMismatch flips a payload byte inside the final
// entry; the CRC catches silent bit damage that still parses as JSON.
func TestJournalChecksumMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path, cfg, want := completeJournal(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the last line's payload (well clear of the
	// line structure so the line still parses).
	i := len(b) - 20
	for ; i > 0; i-- {
		if b[i] >= '1' && b[i] <= '8' {
			b[i]++
			break
		}
	}
	if i == 0 {
		t.Fatal("no digit found to corrupt")
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := reRun(t, path, cfg, want, true); n != 1 {
		t.Fatalf("re-executed %d units after checksum damage, want exactly 1", n)
	}
}

// TestJournalCorruptHeader is unrecoverable by truncation and must
// error rather than silently restart.
func TestJournalCorruptHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path, cfg, _ := completeJournal(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), RunConfig{Config: cfg, BlockSize: 3, Shard: Shard{0, 1}, JournalPath: path}); err == nil {
		t.Fatal("corrupt header should be a hard error")
	}
}
