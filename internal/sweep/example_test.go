package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"marketminer/internal/backtest"
	"marketminer/internal/market"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

// ExampleMergeFiles runs a two-shard sweep into separate checkpoint
// journals and merges them into the full Result — the workflow behind
// `mmreport -merge` and the farm coordinator's -merge-out.
func ExampleMergeFiles() {
	dir, err := os.MkdirTemp("", "mergefiles")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	// A miniature sweep: 4 stocks (6 pairs in one block), 2 days, one
	// parameter level across the 3 correlation treatments — 6 units in
	// 2 (day × block) groups.
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:4])
	if err != nil {
		fmt.Println(err)
		return
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = 2
	mc.Seed = 7
	cfg := backtest.Config{Market: mc, Levels: strategy.BaseGrid()[:1], Workers: 1}

	// Each shard owns the groups with id ≡ Index (mod Count) and
	// journals them independently — here, one group per shard. The
	// shards could as well be separate processes on separate hosts.
	paths := make([]string, 2)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.journal", i))
		if _, err := Run(context.Background(), RunConfig{
			Config:      cfg,
			Shard:       Shard{Index: i, Count: 2},
			JournalPath: paths[i],
		}); err != nil {
			fmt.Println(err)
			return
		}
	}

	// Merging is pure assembly: the result is bit-identical to an
	// uninterrupted single-process backtest.Run of the same config.
	res, rep, err := MergeFiles(paths)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("merged %d/%d units from %d journals (%d duplicates)\n",
		rep.Units, rep.UnitsTotal, rep.Files, rep.Duplicates)
	fmt.Printf("result covers %d days of %d pairs\n", res.Days, res.Universe.NumPairs())
	// Output:
	// merged 6/6 units from 2 journals (0 duplicates)
	// result covers 2 days of 6 pairs
}
