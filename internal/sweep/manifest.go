package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestSchema versions the progress manifest format.
const ManifestSchema = "marketminer/sweep-manifest/v1"

// Manifest is the machine-readable progress snapshot a shard writes
// alongside its journal. External schedulers poll it instead of
// parsing log lines: it answers how far along the shard is, how fast
// it is going, when it will finish, and how healthy the robust
// kernel's warm-start chain is.
type Manifest struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	Of          int    `json:"of"`
	BlockSize   int    `json:"block_size"`

	// UnitsDone / UnitsTotal cover this shard; SweepUnits is the whole
	// sweep across all shards.
	UnitsDone  int `json:"units_done"`
	UnitsTotal int `json:"units_total"`
	SweepUnits int `json:"sweep_units"`

	Trades         int64   `json:"trades"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	UnitsPerSecond float64 `json:"units_per_second"`
	EtaSeconds     float64 `json:"eta_seconds"`

	Warm RobustSummary `json:"warm"`

	// Done marks a shard that has completed every one of its units.
	Done bool `json:"done"`
}

func manifestFrom(h Header, info ProgressInfo, warm RobustSummary, done bool) Manifest {
	return Manifest{
		Schema:         ManifestSchema,
		Fingerprint:    h.Fingerprint,
		Shard:          h.ShardIndex,
		Of:             h.ShardCount,
		BlockSize:      h.BlockSize,
		UnitsDone:      info.Done,
		UnitsTotal:     info.Total,
		SweepUnits:     info.SweepUnits,
		Trades:         info.Trades,
		ElapsedSeconds: info.Elapsed.Seconds(),
		UnitsPerSecond: info.Rate,
		EtaSeconds:     info.ETA.Seconds(),
		Warm:           warm,
		Done:           done,
	}
}

// writeManifest replaces the manifest atomically (write to a temp file
// in the same directory, then rename) so a poller never observes a
// half-written snapshot.
func writeManifest(path string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifest loads a shard progress manifest.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("sweep: manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("sweep: manifest %s: schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
