package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"marketminer/internal/clean"
	"marketminer/internal/corr"
	"marketminer/internal/market"
	"marketminer/internal/risk"
	"marketminer/internal/series"
	"marketminer/internal/strategy"
	"marketminer/internal/taq"
)

func pipelineParams() strategy.Params {
	p := strategy.DefaultParams()
	p.M = 30
	p.W = 20
	p.RT = 20
	p.D = 0.005
	return p
}

func testUniverse(t *testing.T) *taq.Universe {
	t.Helper()
	u, err := taq.NewUniverse([]string{"A1", "A2", "B1", "B2"})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func genQuotes(t *testing.T, u *taq.Universe) []taq.Quote {
	t.Helper()
	gen, err := market.NewGenerator(market.Config{
		Universe:         u,
		Seed:             11,
		Days:             1,
		QuoteRate:        0.25,
		NumSectors:       2,
		BreakdownsPerDay: 8,
		BreakdownMag:     0.006,
		Contamination:    0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	day, err := gen.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	return day.Quotes
}

func TestPipelineEndToEnd(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	cfg := PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{pipelineParams()},
		Workers:  2,
	}
	res, err := RunPipeline(context.Background(), cfg, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuotesIn != len(quotes) {
		t.Errorf("QuotesIn = %d, want %d", res.QuotesIn, len(quotes))
	}
	if res.QuotesClean == 0 || res.QuotesClean > res.QuotesIn {
		t.Errorf("QuotesClean = %d of %d", res.QuotesClean, res.QuotesIn)
	}
	// 780 intervals, M=30 → up to 750 matrices (fewer if warmup later).
	if res.Matrices < 700 || res.Matrices > 751 {
		t.Errorf("Matrices = %d, want ≈750", res.Matrices)
	}
	if len(res.Trades) != 1 {
		t.Fatalf("Trades groups = %d", len(res.Trades))
	}
	if len(res.Trades[0]) == 0 {
		t.Error("pipeline produced no trades despite breakdown events")
	}
	for _, tr := range res.Trades[0] {
		if math.IsNaN(tr.Return) || math.Abs(tr.Return) > 0.5 {
			t.Errorf("implausible trade return %v", tr.Return)
		}
		if tr.ExitS <= tr.EntryS {
			t.Errorf("trade exits before entry: %+v", tr)
		}
	}
	// Every completed trade produced 4 orders (2 entry + 2 exit); an
	// unclosed position adds 2 more.
	minOrders := 4 * len(res.Trades[0])
	if res.Orders < minOrders {
		t.Errorf("Orders = %d, want ≥ %d", res.Orders, minOrders)
	}
	if res.BookFlat && math.IsNaN(res.CashPnL) {
		t.Error("CashPnL undefined")
	}
	// Node statistics should show flow through every stage.
	byName := map[string]int64{}
	for _, s := range res.NodeStats {
		byName[s.Name] = s.Received
	}
	for _, name := range []string{"cleaner", "ohlc-bars", "technical-analysis", "correlation", "strategy-0", "master"} {
		if byName[name] == 0 {
			t.Errorf("node %q received no messages", name)
		}
	}
}

func TestPipelineMultipleStrategyNodes(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	p1 := pipelineParams()
	p2 := pipelineParams()
	p2.HP = 40
	p2.D = 0.008
	cfg := PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{p1, p2},
		Workers:  2,
	}
	res, err := RunPipeline(context.Background(), cfg, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trades) != 2 {
		t.Fatalf("Trades groups = %d, want 2", len(res.Trades))
	}
	// The tighter divergence threshold (p2) must not trade more than p1.
	if len(res.Trades[1]) > len(res.Trades[0]) {
		t.Errorf("wider threshold traded more: p1=%d p2=%d", len(res.Trades[0]), len(res.Trades[1]))
	}
}

// TestPipelineMatchesBatchBacktest is the integration cross-check: the
// streaming Figure-1 path and the batch engine produce the same trades
// for the same cleaned data (identical filter, grid and estimator).
func TestPipelineMatchesBatchBacktest(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	p := pipelineParams()

	res, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{p},
		Workers:  1,
	}, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Batch path over the same quotes: replicate the pipeline stages.
	batch, err := batchReplay(u, quotes, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trades[0]) != len(batch) {
		t.Fatalf("stream %d trades, batch %d", len(res.Trades[0]), len(batch))
	}
	for i := range batch {
		a, b := res.Trades[0][i], batch[i]
		if a.EntryS != b.EntryS || a.ExitS != b.ExitS || a.Return != b.Return {
			t.Errorf("trade %d differs: stream %+v batch %+v", i, a, b)
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	u := testUniverse(t)
	if _, err := RunPipeline(context.Background(), PipelineConfig{Universe: u}, nil, 0); err == nil {
		t.Error("no params should error")
	}
	p1 := pipelineParams()
	p2 := pipelineParams()
	p2.M = p1.M * 2
	if _, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u, Params: []strategy.Params{p1, p2},
	}, nil, 0); err == nil {
		t.Error("disagreeing M should error")
	}
	p3 := pipelineParams()
	p3.Ctype = corr.Maronna
	if _, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u, Params: []strategy.Params{p1, p3},
	}, nil, 0); err == nil {
		t.Error("disagreeing Ctype should error")
	}
	if _, err := RunPipeline(context.Background(), PipelineConfig{
		Params: []strategy.Params{p1},
	}, nil, 0); err == nil {
		t.Error("nil universe should error")
	}
}

func TestPipelineEmptyStream(t *testing.T) {
	u := testUniverse(t)
	res, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{pipelineParams()},
	}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuotesIn != 0 || res.Matrices != 0 || len(res.Trades[0]) != 0 {
		t.Errorf("empty stream produced activity: %+v", res)
	}
}

// batchReplay reruns the pipeline's semantics sequentially: same
// filter, same grid construction, shared correlation series, same
// strategy — the reference the streaming DAG must agree with.
func batchReplay(u *taq.Universe, quotes []taq.Quote, p strategy.Params) ([]strategy.Trade, error) {
	f := clean.NewFilter(clean.Config{})
	grid, err := series.NewGrid(p.DeltaS)
	if err != nil {
		return nil, err
	}
	sm := series.NewSampler(grid, u)
	for _, q := range quotes {
		if f.Accept(q) == clean.OK {
			sm.Add(q)
		}
	}
	pg := sm.Finish()
	s0 := pg.FirstComplete()
	if s0 < 0 {
		return nil, nil
	}
	n := u.Len()
	rets := make([][]float64, n)
	for i := 0; i < n; i++ {
		rets[i] = series.LogReturns(pg.Prices[i][s0:])
	}
	cs, err := corr.ComputeSeries(corr.EngineConfig{Type: p.Ctype, M: p.M, Workers: 1}, rets)
	if err != nil {
		return nil, err
	}
	var out []strategy.Trade
	for pid, pr := range taq.AllPairs(n) {
		trades, err := strategy.RunDay(p, cs.Corr[pid], s0+cs.FirstS, pg, pr.I, pr.J, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, trades...)
	}
	return out, nil
}

func TestPipelineGraphDOT(t *testing.T) {
	u := testUniverse(t)
	res, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{pipelineParams()},
	}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"collector", "cleaner", "ohlc-bars", "technical-analysis", "correlation", "strategy-0", "master"} {
		if !strings.Contains(res.GraphDOT, want) {
			t.Errorf("GraphDOT missing node %q:\n%s", want, res.GraphDOT)
		}
	}
}

// TestPipelineRiskLimits runs the same feed with tight limits: entries
// get rejected, matching exits are suppressed, and the accepted book
// still nets out flat at the close.
func TestPipelineRiskLimits(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	p := pipelineParams()
	unlimited, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u, Params: []strategy.Params{p},
	}, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.OrdersRejected != 0 {
		t.Fatalf("unlimited run rejected %d legs", unlimited.OrdersRejected)
	}
	limited, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{p},
		Risk:     risk.Limits{MaxGrossExposure: 400},
	}, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if limited.OrdersRejected == 0 {
		t.Fatal("tight gross limit rejected nothing")
	}
	if limited.Orders >= unlimited.Orders {
		t.Errorf("limited accepted %d legs, unlimited %d", limited.Orders, unlimited.Orders)
	}
	if !limited.BookFlat {
		t.Error("accepted book should still be flat at the close")
	}
}
