package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"marketminer/internal/strategy"
	"marketminer/internal/supervise"
	"marketminer/internal/taq"
)

func runBaseline(t *testing.T, u *taq.Universe, quotes []taq.Quote) *PipelineResult {
	t.Helper()
	res, err := RunPipeline(context.Background(), PipelineConfig{
		Universe: u, Params: []strategy.Params{pipelineParams()},
	}, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func supervisedConfig(u *taq.Universe, opts *SuperviseOptions) PipelineConfig {
	return PipelineConfig{
		Universe:  u,
		Params:    []strategy.Params{pipelineParams()},
		Supervise: opts,
	}
}

// The supervision runtime must be an observer, not a participant: a
// fault-free supervised run produces results identical to the plain
// pipeline.
func TestSupervisedFaultFreeMatchesUnsupervised(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	base := runBaseline(t, u, quotes)

	res, err := RunPipeline(context.Background(), supervisedConfig(u, &SuperviseOptions{
		SourceBuffer: 64,
	}), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuotesIn != base.QuotesIn || res.QuotesClean != base.QuotesClean ||
		res.Matrices != base.Matrices || res.Orders != base.Orders ||
		res.OrdersRejected != base.OrdersRejected || res.CashPnL != base.CashPnL {
		t.Errorf("supervised run diverged: %+v vs baseline %+v", res, base)
	}
	if !reflect.DeepEqual(res.Trades, base.Trades) {
		t.Error("supervised trade stream differs from unsupervised")
	}
	sup := res.Supervision
	if sup == nil {
		t.Fatal("no supervision report attached")
	}
	if !sup.Drained {
		t.Error("natural end of stream not reported as drained")
	}
	if sup.Ingress.Pushed == 0 || sup.Ingress.Pushed != sup.Ingress.Popped {
		t.Errorf("ingress accounting: %+v, want lossless pushed==popped>0", sup.Ingress)
	}
	if sup.Ingress.Dropped != 0 {
		t.Errorf("lossless ingress dropped %d quotes", sup.Ingress.Dropped)
	}
	if len(sup.Stages) == 0 {
		t.Error("no stage reports collected")
	}
	for _, st := range sup.Stages {
		if st.Panics != 0 || st.Quarantined != 0 {
			t.Errorf("fault-free run reported faults: %+v", st)
		}
	}
}

func TestSupervisedSnapshotThenResume(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	path := filepath.Join(t.TempDir(), "engine.snap")
	// A cadence that does not divide the matrix count, so the last
	// snapshot leaves a genuine tail to recompute.
	opts := func() *SuperviseOptions {
		return &SuperviseOptions{SnapshotPath: path, SnapshotEvery: 13}
	}

	first, err := RunPipeline(context.Background(), supervisedConfig(u, opts()), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Supervision.Snapshots == 0 {
		t.Fatalf("no snapshots written: %+v", first.Supervision)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	// A restarted process over the same stream restores the engine's
	// warm windows and skips the intervals they already contain.
	second, err := RunPipeline(context.Background(), supervisedConfig(u, opts()), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	sup := second.Supervision
	if !sup.Resumed || sup.ResumeCursor <= 0 {
		t.Fatalf("restart did not resume from snapshot: %+v", sup)
	}
	if second.Matrices >= first.Matrices || second.Matrices == 0 {
		t.Errorf("resumed run recomputed %d matrices (first run: %d); want only the post-snapshot tail",
			second.Matrices, first.Matrices)
	}
}

// A snapshot for a different configuration must never be restored: the
// fingerprint binds warm state to engine config, day, and grid spacing.
func TestSupervisedSnapshotFingerprintMismatch(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	path := filepath.Join(t.TempDir(), "engine.snap")
	opts := &SuperviseOptions{SnapshotPath: path, SnapshotEvery: 10}

	if _, err := RunPipeline(context.Background(), supervisedConfig(u, opts), quotes, 0); err != nil {
		t.Fatal(err)
	}
	// Same snapshot, different day: must cold-start, not resume.
	res, err := RunPipeline(context.Background(), supervisedConfig(u, opts), quotes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supervision.Resumed {
		t.Error("snapshot from day 0 was restored into a day-1 run")
	}
	if res.Supervision.ColdStart == "" {
		t.Error("fingerprint mismatch not surfaced as a cold-start warning")
	}
}

func TestSupervisedCorruptSnapshotColdStarts(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	base := runBaseline(t, u, quotes)
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := os.WriteFile(path, []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logged bool
	res, err := RunPipeline(context.Background(), supervisedConfig(u, &SuperviseOptions{
		SnapshotPath: path,
		Logf:         func(string, ...any) { logged = true },
	}), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supervision.Resumed || res.Supervision.ColdStart == "" {
		t.Errorf("corrupt snapshot not rejected: %+v", res.Supervision)
	}
	if !logged {
		t.Error("cold start not logged")
	}
	// Cold start means the corrupt file changed nothing.
	if res.Matrices != base.Matrices || !reflect.DeepEqual(res.Trades, base.Trades) {
		t.Error("corrupt snapshot skewed the results")
	}
}

// A key quarantined in a previous incarnation is skipped on replay
// instead of being re-fed to the stage that it killed.
func TestSupervisedQuarantinedKeySkippedOnReplay(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	base := runBaseline(t, u, quotes)
	path := filepath.Join(t.TempDir(), "quarantine.jsonl")

	// Pre-seed the journal as if a prior run had quarantined a band of
	// return intervals after repeated panics.
	quar, err := supervise.OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	for s := 40; s < 60; s++ {
		if err := quar.Record("correlation", "correlation|interval|"+strconv.Itoa(s), "poison (test)"); err != nil {
			t.Fatal(err)
		}
	}
	quar.Close()

	res, err := RunPipeline(context.Background(), supervisedConfig(u, &SuperviseOptions{
		QuarantinePath: path,
	}), quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	var corrStage *supervise.StageReport
	for i := range res.Supervision.Stages {
		if res.Supervision.Stages[i].Name == "correlation" {
			corrStage = &res.Supervision.Stages[i]
		}
	}
	if corrStage == nil {
		t.Fatal("no correlation stage report")
	}
	if corrStage.Skipped == 0 {
		t.Fatalf("no quarantined intervals skipped: %+v", corrStage)
	}
	if res.Matrices != base.Matrices-int(corrStage.Skipped) {
		t.Errorf("matrices = %d, want baseline %d minus %d skipped pushes",
			res.Matrices, base.Matrices, corrStage.Skipped)
	}
}

// Cancelling a drain-mode run ends the stream instead of aborting the
// DAG: partial results come back with a nil error.
func TestSupervisedGracefulDrainOnCancel(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// An endless feed: cancels itself after a partial day, then keeps
	// emitting until the pipeline tells it to stop.
	sent := 0
	endless := func(ctx context.Context, emit func(taq.Quote) bool) error {
		for i := 0; ; i = (i + 1) % len(quotes) {
			if !emit(quotes[i]) {
				return nil
			}
			if sent++; sent == len(quotes)/2 {
				cancel()
			}
		}
	}

	res, err := RunPipelineSource(ctx, supervisedConfig(u, &SuperviseOptions{
		SourceBuffer: 64,
		DrainTimeout: 5 * time.Second,
	}), endless, 0)
	if err != nil {
		t.Fatalf("cancelled drain-mode run failed: %v", err)
	}
	if !res.Supervision.Drained {
		t.Error("drain within a generous timeout reported as forced abort")
	}
	if res.QuotesIn == 0 || res.QuotesIn > sent {
		t.Errorf("partial results: %d quotes in, %d sent", res.QuotesIn, sent)
	}
}

// A source that ignores cancellation is forcibly aborted once the drain
// deadline passes; the run still returns its partial results.
func TestSupervisedDrainDeadlineForcesAbort(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stuck := func(ctx context.Context, emit func(taq.Quote) bool) error {
		for _, q := range quotes[:200] {
			if !emit(q) {
				return nil
			}
		}
		cancel()
		<-ctx.Done() // ignores the graceful stop; only force reaches it
		return ctx.Err()
	}

	res, err := RunPipelineSource(ctx, supervisedConfig(u, &SuperviseOptions{
		DrainTimeout: 50 * time.Millisecond,
	}), stuck, 0)
	if err != nil {
		t.Fatalf("forced abort should still return partial results, got: %v", err)
	}
	if res.Supervision.Drained {
		t.Error("a stuck source cannot have drained cleanly")
	}
	if res.QuotesIn != 200 {
		t.Errorf("quotes in = %d, want the 200 delivered before the stall", res.QuotesIn)
	}
}
