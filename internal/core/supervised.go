package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"marketminer/internal/corr"
	"marketminer/internal/engine"
	"marketminer/internal/supervise"
	"marketminer/internal/taq"
)

// SuperviseOptions runs the pipeline under the fault-tolerance
// runtime: data stages get panic isolation with retry/backoff and
// poison-message quarantine, the correlation engine persists crash-safe
// warm-state snapshots, the ingress can be bounded with explicit
// backpressure accounting, and cancellation drains the DAG gracefully
// instead of aborting mid-message. The master (order book) node is
// deliberately NOT wrapped: silently skipping an order basket would
// desynchronise the book, so order-path failures keep failing fast.
type SuperviseOptions struct {
	// Policy tunes restart backoff, retry counts, and the circuit
	// breaker for every wrapped stage (zero value = defaults).
	Policy supervise.Policy
	// QuarantinePath persists the poison-message journal ("" keeps it
	// in memory: quarantine still works, but does not survive
	// restarts).
	QuarantinePath string
	// SnapshotPath, when set, persists the online correlation engine's
	// warm state (CRC-guarded, atomically replaced). On start-up an
	// existing valid snapshot is restored and already-processed
	// intervals are skipped; a corrupt or invalid one is discarded
	// with a warning and the engine cold-starts.
	SnapshotPath string
	// SnapshotEvery is the number of matrices between snapshots
	// (default 25).
	SnapshotEvery int
	// SourceBuffer, when positive, bounds the ingress with an explicit
	// accounting queue in lossless (blocking) mode; the report then
	// carries high-water and backpressure counters.
	SourceBuffer int
	// DrainTimeout, when positive, turns context cancellation into a
	// graceful drain: the source stops emitting, in-flight messages
	// finish within the timeout, and the pipeline returns its partial
	// results cleanly. Past the deadline the DAG is aborted.
	DrainTimeout time.Duration
	// Logf receives supervision warnings (default: discard).
	Logf func(format string, args ...any)
}

// SupervisionReport is the runtime's accounting for one pipeline run.
type SupervisionReport struct {
	// Stages are the per-stage retry/quarantine counters, in DAG order.
	Stages []supervise.StageReport
	// Ingress is the bounded source queue's accounting (zero when
	// SourceBuffer is off).
	Ingress supervise.QueueStats
	// Resumed reports that engine warm state was restored; intervals
	// at or before ResumeCursor were skipped instead of recomputed.
	Resumed      bool
	ResumeCursor int
	// ColdStart carries the warning when a snapshot existed but was
	// rejected.
	ColdStart string
	// Snapshots counts warm-state snapshots written this run.
	Snapshots int
	// Drained reports that a cancelled run finished its graceful drain
	// within DrainTimeout (true too for runs that ended naturally).
	Drained bool
	// QuarantineHealed reports that the quarantine journal had a torn
	// tail from a previous crash and was truncated to its last intact
	// record.
	QuarantineHealed bool
}

// supervisor holds the per-run supervision state. A nil *supervisor is
// valid and wraps nothing, so the unsupervised path stays zero-cost.
type supervisor struct {
	opts   SuperviseOptions
	logf   func(format string, args ...any)
	quar   *supervise.Quarantine
	stages []*supervise.Stage
	report SupervisionReport

	cursor  int // last interval covered by the restored snapshot
	pending int // matrices since the last snapshot
}

func newSupervisor(opts *SuperviseOptions) (*supervisor, error) {
	if opts == nil {
		return nil, nil
	}
	s := &supervisor{opts: *opts, logf: opts.Logf, cursor: -1}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if s.opts.SnapshotEvery <= 0 {
		s.opts.SnapshotEvery = 25
	}
	quar, err := supervise.OpenQuarantine(opts.QuarantinePath)
	if err != nil {
		return nil, fmt.Errorf("core: quarantine: %w", err)
	}
	s.quar = quar
	if quar.Healed() {
		s.report.QuarantineHealed = true
		s.logf("core: quarantine journal had a torn tail; healed to %d records", quar.Len())
	}
	return s, nil
}

// wrap supervises one stage. Keys are namespaced by stage so the same
// message quarantined under one stage is not skipped by another.
// Retries are disabled regardless of Policy.Retries: every pipeline
// stage folds each message into cumulative state (filter EWMAs, price
// grids, correlation rings, strategy windows), so re-running a failed
// message would double-apply its side effects. A panicking message
// goes straight to quarantine.
func (s *supervisor) wrap(name string, key supervise.KeyFunc, proc engine.ProcFunc) engine.ProcFunc {
	if s == nil {
		return proc
	}
	namespaced := func(m engine.Message) (string, bool) {
		k, ok := key(m)
		if !ok {
			return "", false
		}
		return name + "|" + k, true
	}
	pol := s.opts.Policy
	pol.Retries = -1
	st := supervise.NewStage(name, pol, s.quar, namespaced)
	s.stages = append(s.stages, st)
	return st.Wrap(proc)
}

// restore loads the engine snapshot, if any. Invalid snapshots are
// logged and discarded: a wrong warm state must never beat a cold one.
func (s *supervisor) restore(online *corr.OnlineEngine, fingerprint string) {
	if s == nil || s.opts.SnapshotPath == "" {
		return
	}
	var st engineState
	err := supervise.LoadSnapshot(s.opts.SnapshotPath, fingerprint, &st)
	switch {
	case err == nil:
		if rerr := online.Restore(st.Engine); rerr != nil {
			s.report.ColdStart = rerr.Error()
			s.logf("core: snapshot rejected, cold-starting: %v", rerr)
			return
		}
		s.cursor = st.Cursor
		s.report.Resumed = true
		s.report.ResumeCursor = st.Cursor
		s.logf("core: resumed correlation engine from snapshot (interval %d)", st.Cursor)
	case errors.Is(err, supervise.ErrNoSnapshot):
		// Fresh day.
	default:
		s.report.ColdStart = err.Error()
		s.logf("core: snapshot unusable, cold-starting: %v", err)
	}
}

// skip reports whether interval S is already covered by the restored
// snapshot (its returns are inside the restored windows).
func (s *supervisor) skip(interval int) bool {
	return s != nil && s.report.Resumed && interval <= s.cursor
}

// snapshot persists warm state after a matrix if one is due.
func (s *supervisor) snapshot(online *corr.OnlineEngine, fingerprint string, interval int) error {
	if s == nil || s.opts.SnapshotPath == "" {
		return nil
	}
	s.pending++
	if s.pending < s.opts.SnapshotEvery {
		return nil
	}
	s.pending = 0
	st := engineState{Cursor: interval, Engine: online.Snapshot()}
	if err := supervise.SaveSnapshot(s.opts.SnapshotPath, fingerprint, st); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	s.report.Snapshots++
	return nil
}

// engineState is the snapshot payload: engine warm state plus the last
// interval it covers, so a resumed run knows what to skip.
type engineState struct {
	Cursor int                  `json:"cursor"`
	Engine *corr.EngineSnapshot `json:"engine"`
}

// boundSource routes the source through a lossless accounting queue so
// ingress backpressure becomes observable.
func (s *supervisor) boundSource(source QuoteSource) QuoteSource {
	if s == nil || s.opts.SourceBuffer <= 0 {
		return source
	}
	return func(ctx context.Context, emit func(taq.Quote) bool) error {
		q := supervise.NewQueue[taq.Quote](s.opts.SourceBuffer, supervise.Block)
		errCh := make(chan error, 1)
		go func() {
			errCh <- source(ctx, func(qt taq.Quote) bool { return q.Push(ctx, qt) })
			q.Close()
		}()
		for {
			qt, ok := q.Pop(ctx)
			if !ok {
				break
			}
			if !emit(qt) {
				break
			}
		}
		err := <-errCh
		s.report.Ingress = q.Stats()
		return err
	}
}

// stopOnCancel makes the source observe the user context while the
// graph runs detached: on cancellation the stream simply ends, which
// lets every downstream stage drain instead of being aborted.
func stopOnCancel(source QuoteSource, userCtx context.Context) QuoteSource {
	return func(ctx context.Context, emit func(taq.Quote) bool) error {
		return source(ctx, func(q taq.Quote) bool {
			if userCtx.Err() != nil {
				return false
			}
			return emit(q)
		})
	}
}

// Quarantine keys: a stable identity per message type, so a poison
// message hit again on a later run (persistent journal) is skipped
// before it can panic the stage again. Messages without a natural
// identity (ticks, baskets) report ok=false and are never journaled.

func quoteKey(m engine.Message) (string, bool) {
	q, ok := m.(taq.Quote)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("quote|%s|%d|%.9g", q.Symbol, q.Day, q.SeqTime), true
}

func intervalKey(m engine.Message) (string, bool) {
	rm, ok := m.(retMsg)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("interval|%d", rm.S), true
}

func matrixKey(m engine.Message) (string, bool) {
	cm, ok := m.(corrMsg)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("matrix|%d", cm.S), true
}

// finish closes the quarantine and attaches the report to the result.
func (s *supervisor) finish(res *PipelineResult) {
	if s == nil {
		return
	}
	for _, st := range s.stages {
		s.report.Stages = append(s.report.Stages, st.Report())
	}
	s.quar.Close()
	res.Supervision = &s.report
	rep := s.report
	if rep.Snapshots > 0 || rep.Resumed || len(rep.Stages) > 0 {
		for _, st := range rep.Stages {
			if st.Quarantined > 0 || st.Retries > 0 {
				s.logf("core: stage %s: %d retries, %d quarantined, %d skipped", st.Name, st.Retries, st.Quarantined, st.Skipped)
			}
		}
	}
}
