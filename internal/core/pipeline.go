// Package core wires the full MarketMiner pair-trading system of the
// paper's Figure 1 on top of the channel-based stream engine: data
// adapters (live/file collectors) feed a cleaning stage, an OHLC bar
// accumulator, a technical-analysis (returns) stage, the parallel
// correlation engine, one pair-trading strategy node per parameter
// set, and a master order-aggregation sink — "the outputs from each
// strategy (trade decisions) can be gathered by a master process".
//
// This is the paper's Approach 3: the strategy consumes correlation
// matrices as they stream out of the engine, with no per-pair
// recomputation, and order requests aggregate into a single basket.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"marketminer/internal/clean"
	"marketminer/internal/corr"
	"marketminer/internal/engine"
	"marketminer/internal/portfolio"
	"marketminer/internal/risk"
	"marketminer/internal/series"
	"marketminer/internal/strategy"
	"marketminer/internal/supervise"
	"marketminer/internal/taq"
)

// PipelineConfig configures one Figure-1 pipeline run.
type PipelineConfig struct {
	// Universe of tradeable stocks.
	Universe *taq.Universe
	// Clean configures the tick filter node.
	Clean clean.Config
	// Params are the strategy parameter sets; each gets its own
	// strategy node fanned out from the correlation engine. All sets
	// must share ∆s, M and Ctype (one correlation engine per
	// pipeline, exactly as in Figure 1).
	Params []strategy.Params
	// Workers bounds the correlation engine's parallelism.
	Workers int
	// Buffer is the channel depth between nodes (default 256).
	Buffer int
	// Risk configures the master node's pre-trade limits; the zero
	// value is unlimited (the paper's evaluated configuration).
	Risk risk.Limits
	// Supervise, when non-nil, runs the DAG under the fault-tolerance
	// runtime: panic isolation with retry and poison-message
	// quarantine on the data stages, crash-safe correlation-engine
	// snapshots, bounded ingress accounting, and graceful drain. See
	// SuperviseOptions.
	Supervise *SuperviseOptions
	// ReturnsTap, when non-nil, observes every cross-sectional
	// log-return vector the technical-analysis stage emits, in grid
	// order, before the correlation engine consumes it. The signature
	// matches broker.Broker.OfferReturns, which is the intended sink:
	// wiring a tap turns a pipeline run into a broker feed. The tap
	// must not retain rets; a returned error fails the TA stage.
	ReturnsTap func(s int, rets []float64) error
}

func (c PipelineConfig) validate() error {
	if c.Universe == nil || c.Universe.Len() < 2 {
		return errors.New("core: universe with ≥ 2 stocks required")
	}
	if len(c.Params) == 0 {
		return errors.New("core: at least one parameter set required")
	}
	p0 := c.Params[0]
	for _, p := range c.Params {
		if err := p.Validate(); err != nil {
			return err
		}
		if p.DeltaS != p0.DeltaS || p.M != p0.M || p.Ctype != p0.Ctype {
			return fmt.Errorf("core: parameter sets disagree on (∆s, M, Ctype): %v vs %v", p, p0)
		}
	}
	return nil
}

// tickMsg marks that the shared price grid is complete through
// interval S (inclusive).
type tickMsg struct{ S int }

// retMsg carries the cross-sectional log-return vector of interval S.
type retMsg struct {
	S    int
	Rets []float64
}

// corrMsg carries the correlation matrix of the window ending at S.
type corrMsg struct {
	S      int
	Matrix *corr.Matrix
}

// basket is a two-leg order bundle from one strategy instance; the
// master accepts or rejects it atomically. Key identifies the
// (strategy node, pair) so that exits of risk-rejected entries are
// suppressed and the book stays consistent with accepted state only.
type basket struct {
	Key   [2]int // (strategy node index, pair id)
	Entry bool
	Legs  []portfolio.Order
}

// PipelineResult summarises one pipeline run.
type PipelineResult struct {
	// Trades per parameter set, in completion order.
	Trades [][]strategy.Trade
	// Orders is the number of order legs the master accepted.
	Orders int
	// OrdersRejected is the number of legs rejected by risk limits.
	OrdersRejected int
	// CashPnL is the master book's realised cash once flat.
	CashPnL float64
	// BookFlat reports whether all positions were closed by day end.
	BookFlat bool
	// Matrices is the number of correlation matrices produced.
	Matrices int
	// QuotesIn / QuotesClean count raw and surviving quotes.
	QuotesIn    int
	QuotesClean int
	// NodeStats are the engine's per-node message counters.
	NodeStats []engine.Stats
	// GraphDOT is the executed DAG in Graphviz dot format — a
	// machine-readable Figure 1.
	GraphDOT string
	// Supervision is the fault-tolerance runtime's accounting (nil
	// when PipelineConfig.Supervise is nil).
	Supervision *SupervisionReport
}

// QuoteSource feeds the pipeline's collector node. It must call emit
// for every quote (time-sorted, as a live feed is) and return when the
// stream ends or emit reports false (pipeline shutdown). This is the
// seam where the paper's interchangeable "Live Collector" / "File
// Collector" adapters plug in: an in-memory slice, a CSV replay, or a
// networked feed.Collector all look identical to the DAG.
type QuoteSource func(ctx context.Context, emit func(taq.Quote) bool) error

// SliceSource adapts an in-memory day of quotes to a QuoteSource.
func SliceSource(quotes []taq.Quote) QuoteSource {
	return func(ctx context.Context, emit func(taq.Quote) bool) error {
		for _, q := range quotes {
			if !emit(q) {
				return nil
			}
		}
		return nil
	}
}

// ChannelSource adapts a quote channel (e.g. feed.Collector.Quotes) to
// a QuoteSource; the stream ends when the channel closes.
func ChannelSource(ch <-chan taq.Quote) QuoteSource {
	return func(ctx context.Context, emit func(taq.Quote) bool) error {
		for {
			select {
			case q, ok := <-ch:
				if !ok {
					return nil
				}
				if !emit(q) {
					return nil
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// RunPipeline executes the Figure-1 DAG over one day's quote stream
// (which must be time-sorted, as a live feed is). It blocks until the
// stream is exhausted and every node has drained.
func RunPipeline(ctx context.Context, cfg PipelineConfig, quotes []taq.Quote, day int) (*PipelineResult, error) {
	return RunPipelineSource(ctx, cfg, SliceSource(quotes), day)
}

// RunPipelineSource executes the Figure-1 DAG over a streaming quote
// source — the networked deployment path, where the collector node is
// backed by a feed.Collector instead of an in-memory day.
func RunPipelineSource(ctx context.Context, cfg PipelineConfig, source QuoteSource, day int) (*PipelineResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if source == nil {
		return nil, errors.New("core: nil quote source")
	}
	p0 := cfg.Params[0]
	grid, err := series.NewGrid(p0.DeltaS)
	if err != nil {
		return nil, err
	}
	n := cfg.Universe.Len()
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 256
	}

	// Shared day state. The bar node completes interval s in the grid
	// before emitting tickMsg{s}; channel delivery orders those writes
	// before any downstream read of intervals ≤ s.
	pg := &series.PriceGrid{Grid: grid, Prices: make([][]float64, n)}
	for i := range pg.Prices {
		row := make([]float64, grid.SMax)
		for s := range row {
			row[s] = math.NaN()
		}
		pg.Prices[i] = row
	}

	online, err := corr.NewOnlineEngine(corr.EngineConfig{Type: p0.Ctype, M: p0.M, Workers: cfg.Workers}, n)
	if err != nil {
		return nil, err
	}

	sup, err := newSupervisor(cfg.Supervise)
	if err != nil {
		return nil, err
	}
	// The snapshot fingerprint binds warm state to everything that
	// shapes it: engine configuration plus day and grid spacing.
	fingerprint := fmt.Sprintf("%s|day=%d|ds=%d", online.Fingerprint(), day, p0.DeltaS)
	sup.restore(online, fingerprint)
	// In drain mode the graph runs on a detached context and only the
	// source observes user cancellation: the stream ends, every stage
	// finishes its in-flight work, and partial results come back clean.
	// stopOnCancel sits inside boundSource so the ingress queue's
	// producer also stops on cancellation instead of blocking against a
	// detached context.
	drain := sup != nil && sup.opts.DrainTimeout > 0
	if drain {
		source = stopOnCancel(source, ctx)
	}
	source = sup.boundSource(source)

	res := &PipelineResult{Trades: make([][]strategy.Trade, len(cfg.Params))}
	g := engine.NewGraph()

	// Source: the data adapter ("Live Collector" / "File Collector").
	src := g.Source("collector", func(ctx context.Context, emit engine.Emit) error {
		return source(ctx, func(q taq.Quote) bool {
			res.QuotesIn++
			return emit(q)
		})
	})

	// Cleaning stage (the TCP-like filter of §III).
	filter := clean.NewFilter(cfg.Clean)
	cleaner := g.Node("cleaner", 1, sup.wrap("cleaner", quoteKey, func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		q := m.(taq.Quote)
		if filter.Accept(q) == clean.OK {
			res.QuotesClean++
			emit(q)
		}
		return nil
	}))

	// OHLC bar accumulator: folds quotes into the shared grid and
	// emits one tick per completed interval.
	bars := newBarNode(grid, cfg.Universe, pg)
	barNode := g.Node("ohlc-bars", 1, bars.process)
	g.OnDrain(barNode, bars.drain)

	// Technical analysis: per-interval log-return vectors.
	ta := &taNode{pg: pg, n: n, tap: cfg.ReturnsTap}
	taNodeID := g.Node("technical-analysis", 1, ta.process)

	// Parallel correlation engine.
	corrNode := g.Node("correlation", 1, sup.wrap("correlation", intervalKey, func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		rm := m.(retMsg)
		if sup.skip(rm.S) {
			// The restored warm windows already contain this interval.
			return nil
		}
		mx, err := online.Push(rm.Rets)
		if err != nil {
			if sup != nil {
				// Supervised runs treat a bad return vector as poison
				// data, not a stream abort: the panic routes it through
				// retry → quarantine and the day continues. (A failed
				// Push never advances the ring, so retrying or skipping
				// the interval leaves the engine consistent.)
				panic(fmt.Sprintf("correlation: interval %d: %v", rm.S, err))
			}
			return err
		}
		if mx != nil {
			res.Matrices++
			emit(corrMsg{S: rm.S, Matrix: mx})
			if err := sup.snapshot(online, fingerprint, rm.S); err != nil {
				return err
			}
		}
		return nil
	}))

	// One strategy node per parameter set, all fed by the correlation
	// engine, all reporting orders to the master.
	stratNodes := make([]*strategyNode, len(cfg.Params))
	stratIDs := make([]engine.NodeID, len(cfg.Params))
	for i, p := range cfg.Params {
		sn, err := newStrategyNode(i, p, n, pg, day)
		if err != nil {
			return nil, err
		}
		stratNodes[i] = sn
		name := fmt.Sprintf("strategy-%d", i)
		stratIDs[i] = g.Node(name, 1, sup.wrap(name, matrixKey, sn.process))
	}

	// Master: aggregates order baskets into a single book behind the
	// risk manager ("risk management and liquidity provisioning").
	manager, err := risk.NewManager(cfg.Risk)
	if err != nil {
		return nil, err
	}
	var bookMu sync.Mutex
	suppressed := make(map[[2]int]bool)
	master := g.Node("master", 1, func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		b := m.(basket)
		bookMu.Lock()
		defer bookMu.Unlock()
		if !b.Entry {
			if suppressed[b.Key] {
				// The matching entry was rejected; drop the exit too.
				delete(suppressed, b.Key)
				return nil
			}
			// Exits are never blocked (risk-off flow).
			if err := manager.ApplyClosingPair(b.Legs); err != nil {
				return err
			}
			res.Orders += len(b.Legs)
			return nil
		}
		if err := manager.ApplyPair(b.Legs); err != nil {
			var rej *risk.ErrRejected
			if errors.As(err, &rej) {
				res.OrdersRejected += len(b.Legs)
				if b.Entry {
					suppressed[b.Key] = true
				}
				return nil
			}
			return err
		}
		res.Orders += len(b.Legs)
		return nil
	})

	g.Connect(src, cleaner, buffer)
	g.Connect(cleaner, barNode, buffer)
	g.Connect(barNode, taNodeID, buffer)
	g.Connect(taNodeID, corrNode, buffer)
	for i := range stratIDs {
		g.Connect(corrNode, stratIDs[i], buffer)
		g.Connect(stratIDs[i], master, buffer)
	}

	res.GraphDOT = g.DOT("marketminer-figure1")
	if drain {
		detached, abort := context.WithCancel(context.WithoutCancel(ctx))
		defer abort()
		done := make(chan struct{})
		var runErr error
		go func() {
			defer close(done)
			runErr = g.Run(detached)
		}()
		drained := supervise.GracefulDrain(ctx, done, sup.opts.DrainTimeout, abort)
		sup.report.Drained = drained
		if runErr != nil && (drained || !errors.Is(runErr, context.Canceled)) {
			return nil, runErr
		}
	} else {
		if err := g.Run(ctx); err != nil {
			return nil, err
		}
		if sup != nil {
			sup.report.Drained = true
		}
	}
	for i, sn := range stratNodes {
		res.Trades[i] = sn.trades()
	}
	res.CashPnL = manager.Book().CashPnL()
	res.BookFlat = manager.Book().Flat()
	res.NodeStats = g.Stats()
	sup.finish(res)
	return res, nil
}

// barNode folds cleaned quotes into the shared price grid, carrying
// levels forward across empty intervals, and emits a tick per
// completed interval.
type barNode struct {
	grid series.Grid
	uni  *taq.Universe
	pg   *series.PriceGrid
	last []float64
	cur  int
	seen bool
	bars []*series.BarAccumulator
}

func newBarNode(grid series.Grid, uni *taq.Universe, pg *series.PriceGrid) *barNode {
	last := make([]float64, uni.Len())
	for i := range last {
		last[i] = math.NaN()
	}
	bars := make([]*series.BarAccumulator, uni.Len())
	for i := range bars {
		bars[i] = series.NewBarAccumulator(grid, uni.Symbol(i), 0)
	}
	return &barNode{grid: grid, uni: uni, pg: pg, last: last, bars: bars}
}

func (b *barNode) process(ctx context.Context, m engine.Message, emit engine.Emit) error {
	q := m.(taq.Quote)
	s, ok := b.grid.Index(q.SeqTime)
	if !ok {
		return nil
	}
	i, ok := b.uni.Index(q.Symbol)
	if !ok {
		return nil
	}
	if !b.seen {
		b.cur = s
		b.seen = true
	}
	if s > b.cur {
		b.flush(s, emit)
	}
	b.last[i] = q.Mid()
	b.bars[i].Add(q)
	return nil
}

// flush completes intervals cur..s-1 into the grid and emits ticks.
func (b *barNode) flush(s int, emit engine.Emit) {
	for t := b.cur; t < s && t < b.grid.SMax; t++ {
		for i := range b.last {
			b.pg.Prices[i][t] = b.last[i]
		}
		emit(tickMsg{S: t})
	}
	b.cur = s
}

func (b *barNode) drain(ctx context.Context, emit engine.Emit) error {
	if b.seen {
		b.flush(b.grid.SMax, emit)
	}
	return nil
}

// taNode converts completed intervals into cross-sectional log-return
// vectors once every stock has a defined price.
type taNode struct {
	pg    *series.PriceGrid
	n     int
	prevS int
	ready bool
	tap   func(s int, rets []float64) error
}

func (t *taNode) process(ctx context.Context, m engine.Message, emit engine.Emit) error {
	tm := m.(tickMsg)
	s := tm.S
	// Wait until all stocks have printed at both s-1 and s.
	if s == 0 {
		return nil
	}
	for i := 0; i < t.n; i++ {
		if math.IsNaN(t.pg.Prices[i][s-1]) || math.IsNaN(t.pg.Prices[i][s]) {
			return nil
		}
	}
	rets := make([]float64, t.n)
	for i := 0; i < t.n; i++ {
		rets[i] = math.Log(t.pg.Prices[i][s] / t.pg.Prices[i][s-1])
	}
	if t.tap != nil {
		if err := t.tap(s, rets); err != nil {
			return err
		}
	}
	emit(retMsg{S: s, Rets: rets})
	return nil
}

// strategyNode runs one Tracker per pair for a single parameter set.
type strategyNode struct {
	idx      int // node index within the pipeline
	p        strategy.Params
	pairs    []taq.Pair
	trackers []*strategy.Tracker
	sums     []float64 // rolling C sums for C̄
	wins     []*series.Window
	pg       *series.PriceGrid
}

func newStrategyNode(idx int, p strategy.Params, n int, pg *series.PriceGrid, day int) (*strategyNode, error) {
	pairs := taq.AllPairs(n)
	sn := &strategyNode{idx: idx, p: p, pairs: pairs, pg: pg}
	sn.trackers = make([]*strategy.Tracker, len(pairs))
	sn.sums = make([]float64, len(pairs))
	sn.wins = make([]*series.Window, len(pairs))
	for k, pr := range pairs {
		tr, err := strategy.NewTracker(p, pr.I, pr.J, day)
		if err != nil {
			return nil, err
		}
		sn.trackers[k] = tr
		sn.wins[k] = series.NewWindow(p.W)
	}
	return sn, nil
}

func (sn *strategyNode) process(ctx context.Context, m engine.Message, emit engine.Emit) error {
	cm := m.(corrMsg)
	for k := range sn.pairs {
		c := cm.Matrix.AtPair(k)
		w := sn.wins[k]
		if w.Full() {
			sn.sums[k] -= w.At(0)
		}
		w.Push(c)
		sn.sums[k] += c
		if !w.Full() {
			continue
		}
		cbar := sn.sums[k] / float64(sn.p.W)
		trade, orders := sn.trackers[k].Step(cm.S, c, cbar, sn.pg)
		if len(orders) > 0 {
			emit(basket{Key: [2]int{sn.idx, k}, Entry: trade == nil, Legs: orders})
		}
	}
	return nil
}

func (sn *strategyNode) trades() []strategy.Trade {
	var out []strategy.Trade
	for _, tr := range sn.trackers {
		out = append(out, tr.Trades()...)
	}
	return out
}
