package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"marketminer/internal/broker"
	"marketminer/internal/strategy"
)

// TestPipelineReturnsTap wires the TA stage's tap into a signal broker
// — the production topology: one pipeline feeding partitioned signal
// fan-out — and checks the tap sees every interval the correlation
// stage consumes, in order, while the broker drains to completion.
func TestPipelineReturnsTap(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	params := pipelineParams()

	bk, err := broker.New(broker.Config{
		N:          u.Len(),
		Partitions: 3,
		M:          params.M,
		W:          params.W,
		D:          params.D,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()
	bk.Start()

	var tapped []int
	cfg := PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{params},
		Workers:  2,
		ReturnsTap: func(s int, rets []float64) error {
			tapped = append(tapped, s) // TA stage is single-worker: no races
			return bk.OfferReturns(s, rets)
		},
	}
	res, err := RunPipeline(context.Background(), cfg, quotes, 0)
	if err != nil {
		t.Fatal(err)
	}
	bk.FinishInput()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := bk.WaitDone(ctx); err != nil {
		t.Fatalf("broker did not drain: %v", err)
	}

	if len(tapped) == 0 {
		t.Fatal("tap observed nothing")
	}
	for i := 1; i < len(tapped); i++ {
		if tapped[i] <= tapped[i-1] {
			t.Fatalf("tap out of order at %d: %d after %d", i, tapped[i], tapped[i-1])
		}
	}
	// Every matrix the pipeline's engine produced came from a tapped
	// vector (the engine needs M vectors before the first matrix).
	if len(tapped) < res.Matrices {
		t.Fatalf("tapped %d vectors < %d matrices", len(tapped), res.Matrices)
	}
	nPairs := u.Len() * (u.Len() - 1) / 2
	total := 0
	for p := 0; p < bk.NumPartitions(); p++ {
		total += len(bk.PartitionPairs(p))
	}
	if total != nPairs {
		t.Fatalf("broker partitions cover %d pairs, want %d", total, nPairs)
	}
}

// TestPipelineReturnsTapError: a failing tap fails the run instead of
// silently dropping broker input.
func TestPipelineReturnsTapError(t *testing.T) {
	u := testUniverse(t)
	quotes := genQuotes(t, u)
	tapErr := errors.New("tap sink rejected vector")
	cfg := PipelineConfig{
		Universe: u,
		Params:   []strategy.Params{pipelineParams()},
		ReturnsTap: func(s int, rets []float64) error {
			return tapErr
		},
	}
	_, err := RunPipeline(context.Background(), cfg, quotes, 0)
	if err == nil {
		t.Fatal("tap error did not fail the pipeline")
	}
	if !strings.Contains(err.Error(), tapErr.Error()) {
		t.Fatalf("error %v does not carry the tap failure", err)
	}
}
