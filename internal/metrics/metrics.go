// Package metrics implements the trading-performance measures of
// Section IV of the paper, Equations (1)–(9): cumulative returns
// (daily, total, and aggregated over pairs or parameter sets), maximum
// drawdown, and the win–loss ratio, plus the equity-curve helper they
// share. The formulas follow the high-frequency finance evaluation
// methodology the paper adapts from Dacorogna et al.
//
// The performance functions are pure: given the same return sets they
// produce the same statistics, bit for bit, with no package state —
// they sit on the deterministic (replayable) side of the codebase.
// The package's second face, the operational counters in ops.go, is
// deliberately the opposite: process-global named monotonic counters
// (feed evictions, supervisor restarts, broker fencing rejections,
// farm zombie results) that hot paths bump with one atomic add.
// Observability never feeds back into computation — no kernel or
// strategy decision may read a counter — so the bit-identity
// guarantees elsewhere are unaffected by what is being measured.
package metrics

import (
	"math"
)

// Compound returns Π(1+rᵢ) − 1, the compounding operator behind
// Equations (2)–(5): it is the daily cumulative return when applied to
// one day's trade returns, the total cumulative return when applied to
// daily cumulative returns, and the pair/parameter aggregate when
// applied across Φ or K. An empty input compounds to 0.
func Compound(returns []float64) float64 {
	prod := 1.0
	for _, r := range returns {
		prod *= 1 + r
	}
	return prod - 1
}

// DailyCumulative implements Equation (2): the within-day cumulative
// return r_p^{t,k} from the day's ordered trade returns.
func DailyCumulative(tradeReturns []float64) float64 { return Compound(tradeReturns) }

// TotalCumulative implements Equation (3): the whole-period cumulative
// return r_p^k from per-day cumulative returns. The same function
// serves Equations (4) and (5), which compound across pairs and
// parameter sets respectively.
func TotalCumulative(dailyCumulative []float64) float64 { return Compound(dailyCumulative) }

// EquityCurve returns the running cumulative return after each entry
// of returns: curve[q] = Π_{i≤q}(1+rᵢ) − 1.
func EquityCurve(returns []float64) []float64 {
	out := make([]float64, len(returns))
	prod := 1.0
	for i, r := range returns {
		prod *= 1 + r
		out[i] = prod - 1
	}
	return out
}

// MaxDrawdown implements Equations (6)/(7): the worst peak-to-valley
// drop of the running cumulative return, max over qa ≤ qb of
// (r_{qa} − r_{qb}). Applied to per-trade returns it is the trade-level
// MDD of Equation (6); applied to daily cumulative returns it is the
// daily MDD of Equation (7) reported in Table IV. The result is ≥ 0;
// it is 0 for monotonically rising equity or fewer than 2 returns.
func MaxDrawdown(returns []float64) float64 {
	if len(returns) < 2 {
		return 0
	}
	curve := EquityCurve(returns)
	peak := curve[0]
	var mdd float64
	for _, v := range curve[1:] {
		if v > peak {
			peak = v
			continue
		}
		if d := peak - v; d > mdd {
			mdd = d
		}
	}
	return mdd
}

// WinLossCounts implements the numerator and denominator of Equations
// (8)/(9): the number of strictly positive and strictly negative trade
// returns. Zero returns count as neither, per the paper's strict
// inequalities.
func WinLossCounts(returns []float64) (wins, losses int) {
	for _, r := range returns {
		if r > 0 {
			wins++
		} else if r < 0 {
			losses++
		}
	}
	return wins, losses
}

// WinLossRatio returns W/L per Equations (8)/(9). By convention it
// returns +Inf for wins with no losses, and 0 when there are no wins.
func WinLossRatio(returns []float64) float64 {
	w, l := WinLossCounts(returns)
	if l == 0 {
		if w == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(w) / float64(l)
}

// PairParamSeries holds the return set R_p^k of one (pair, parameter
// set) combination across the trading period: Daily[t] is the ordered
// list of trade returns realised on day t (Equation (1) is the union
// of these). It is the unit of storage the backtester produces.
type PairParamSeries struct {
	Daily [][]float64
}

// NumTrades returns |R_p^k|.
func (s *PairParamSeries) NumTrades() int {
	var n int
	for _, day := range s.Daily {
		n += len(day)
	}
	return n
}

// Flat returns all trade returns in day-then-trade order (the ordered
// form of Equation (1)).
func (s *PairParamSeries) Flat() []float64 {
	out := make([]float64, 0, s.NumTrades())
	for _, day := range s.Daily {
		out = append(out, day...)
	}
	return out
}

// DailyCumulatives applies Equation (2) to every day, returning the
// r_p^{t,k} series (days with no trades contribute 0).
func (s *PairParamSeries) DailyCumulatives() []float64 {
	out := make([]float64, len(s.Daily))
	for t, day := range s.Daily {
		out[t] = DailyCumulative(day)
	}
	return out
}

// TotalCumulative applies Equation (3): the period cumulative return.
func (s *PairParamSeries) TotalCumulative() float64 {
	return TotalCumulative(s.DailyCumulatives())
}

// MaxDailyDrawdown applies Equation (7): the worst peak-to-valley drop
// of the cumulative return measured at daily granularity.
func (s *PairParamSeries) MaxDailyDrawdown() float64 {
	return MaxDrawdown(s.DailyCumulatives())
}

// MaxTradeDrawdown applies Equation (6): the worst drop measured at
// per-trade granularity.
func (s *PairParamSeries) MaxTradeDrawdown() float64 {
	return MaxDrawdown(s.Flat())
}

// WinLossRatio applies Equation (8) over the whole period.
func (s *PairParamSeries) WinLossRatio() float64 {
	return WinLossRatio(s.Flat())
}
