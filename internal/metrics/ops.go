package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Operational counters. Alongside the paper's trading-performance
// equations this package hosts the process-wide robustness counters the
// supervision and feed layers increment: slow-consumer evictions,
// handler panics, supervisor restarts, quarantined quotes, snapshot
// writes. They are deliberately simple — named monotonic int64s behind
// a sync.Map — so hot paths pay one atomic add and tests can assert on
// exact counts.

var opsRegistry sync.Map // name → *OpsCounter

// OpsCounter is a named monotonic operational counter.
type OpsCounter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *OpsCounter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative only in tests; production callers treat
// counters as monotonic).
func (c *OpsCounter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *OpsCounter) Value() int64 { return c.v.Load() }

// Counter returns the process-wide counter registered under name,
// creating it on first use. Safe for concurrent use.
func Counter(name string) *OpsCounter {
	if c, ok := opsRegistry.Load(name); ok {
		return c.(*OpsCounter)
	}
	c, _ := opsRegistry.LoadOrStore(name, new(OpsCounter))
	return c.(*OpsCounter)
}

// Counters snapshots every registered counter. Names are returned in
// sorted order for stable logs.
func Counters() []NamedCount {
	var out []NamedCount
	opsRegistry.Range(func(k, v any) bool {
		out = append(out, NamedCount{Name: k.(string), Value: v.(*OpsCounter).Value()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedCount is one Counters() entry.
type NamedCount struct {
	Name  string
	Value int64
}

// ResetCounters zeroes every registered counter. Intended for tests
// that assert on exact deltas.
func ResetCounters() {
	opsRegistry.Range(func(_, v any) bool {
		v.(*OpsCounter).v.Store(0)
		return true
	})
}
