package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestCompound(t *testing.T) {
	approx(t, Compound([]float64{0.1, 0.1}), 0.21, 1e-12, "Compound")
	approx(t, Compound([]float64{0.5, -0.5}), -0.25, 1e-12, "Compound mixed")
	if Compound(nil) != 0 {
		t.Error("empty compound should be 0")
	}
	approx(t, Compound([]float64{-1}), -1, 1e-12, "total loss")
}

func TestDailyAndTotalCumulative(t *testing.T) {
	// Two days of trades: day 1 = +1%, +2%; day 2 = -1%.
	d1 := DailyCumulative([]float64{0.01, 0.02})
	approx(t, d1, 1.01*1.02-1, 1e-12, "day1")
	d2 := DailyCumulative([]float64{-0.01})
	total := TotalCumulative([]float64{d1, d2})
	approx(t, total, 1.01*1.02*0.99-1, 1e-12, "total")
}

func TestEquityCurve(t *testing.T) {
	curve := EquityCurve([]float64{0.1, -0.5, 1.0})
	want := []float64{0.1, 1.1*0.5 - 1, 1.1*0.5*2 - 1}
	if len(curve) != 3 {
		t.Fatalf("len = %d", len(curve))
	}
	for i := range want {
		approx(t, curve[i], want[i], 1e-12, "curve point")
	}
	if EquityCurve(nil) != nil && len(EquityCurve(nil)) != 0 {
		t.Error("empty curve should be empty")
	}
}

func TestMaxDrawdownKnown(t *testing.T) {
	// Equity: +10%, then -20% trade (curve 0.10 → -0.12): drop 0.22.
	mdd := MaxDrawdown([]float64{0.10, -0.20})
	approx(t, mdd, 0.22, 1e-12, "MDD")
}

func TestMaxDrawdownMonotone(t *testing.T) {
	if MaxDrawdown([]float64{0.01, 0.02, 0.03}) != 0 {
		t.Error("rising equity should have 0 drawdown")
	}
	if MaxDrawdown([]float64{0.05}) != 0 {
		t.Error("single return should have 0 drawdown")
	}
	if MaxDrawdown(nil) != 0 {
		t.Error("empty should be 0")
	}
}

func TestMaxDrawdownPeakTracking(t *testing.T) {
	// Peak after a recovery must be tracked: 0.1, -0.05, +0.3, -0.2.
	rets := []float64{0.1, -0.05, 0.3, -0.2}
	curve := EquityCurve(rets)
	want := curve[2] - curve[3]
	approx(t, MaxDrawdown(rets), want, 1e-12, "post-recovery MDD")
}

func TestWinLossCounts(t *testing.T) {
	w, l := WinLossCounts([]float64{0.1, -0.1, 0, 0.2, -0.3, 0.4})
	if w != 3 || l != 2 {
		t.Errorf("W/L = %d/%d, want 3/2", w, l)
	}
}

func TestWinLossRatio(t *testing.T) {
	approx(t, WinLossRatio([]float64{0.1, -0.1, 0.2}), 2, 1e-12, "ratio")
	if !math.IsInf(WinLossRatio([]float64{0.1, 0.2}), 1) {
		t.Error("no losses should give +Inf")
	}
	if WinLossRatio([]float64{-0.1}) != 0 {
		t.Error("no wins should give 0")
	}
	if WinLossRatio(nil) != 0 {
		t.Error("empty should give 0")
	}
	if WinLossRatio([]float64{0, 0}) != 0 {
		t.Error("zero returns count as neither win nor loss")
	}
}

func TestPairParamSeries(t *testing.T) {
	s := &PairParamSeries{Daily: [][]float64{
		{0.01, 0.02},
		{},
		{-0.01},
	}}
	if s.NumTrades() != 3 {
		t.Errorf("NumTrades = %d", s.NumTrades())
	}
	flat := s.Flat()
	if len(flat) != 3 || flat[2] != -0.01 {
		t.Errorf("Flat = %v", flat)
	}
	dc := s.DailyCumulatives()
	if len(dc) != 3 || dc[1] != 0 {
		t.Errorf("DailyCumulatives = %v", dc)
	}
	approx(t, s.TotalCumulative(), 1.01*1.02*0.99-1, 1e-12, "TotalCumulative")
	if s.WinLossRatio() != 2 {
		t.Errorf("WinLossRatio = %v", s.WinLossRatio())
	}
	if s.MaxDailyDrawdown() <= 0 {
		t.Error("losing final day should produce positive daily MDD")
	}
	if s.MaxTradeDrawdown() <= 0 {
		t.Error("trade-level MDD should be positive")
	}
}

// Property: MDD is always in [0, peak−valley bound] and equals 0 iff
// the equity curve never falls below a previous peak.
func TestMaxDrawdownProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		rets := make([]float64, n)
		for i := range rets {
			rets[i] = rng.NormFloat64() * 0.02
		}
		mdd := MaxDrawdown(rets)
		if mdd < 0 {
			return false
		}
		// Brute-force reference: max over all qa ≤ qb pairs.
		curve := EquityCurve(rets)
		var ref float64
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				if d := curve[a] - curve[b]; d > ref {
					ref = d
				}
			}
		}
		return math.Abs(mdd-ref) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: compounding is order-sensitive only through products, so
// any permutation gives the same total (multiplication commutes).
func TestCompoundPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		rets := make([]float64, n)
		for i := range rets {
			rets[i] = rng.NormFloat64() * 0.05
		}
		c1 := Compound(rets)
		perm := rng.Perm(n)
		shuffled := make([]float64, n)
		for i, p := range perm {
			shuffled[i] = rets[p]
		}
		return math.Abs(c1-Compound(shuffled)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
