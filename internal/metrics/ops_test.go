package metrics

import (
	"sync"
	"testing"
)

func TestOpsCounterBasics(t *testing.T) {
	ResetCounters()
	c := Counter("test.basic")
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("after Inc+Add(4) = %d, want 5", got)
	}
	if again := Counter("test.basic"); again != c {
		t.Fatalf("Counter returned a different instance for the same name")
	}
	found := false
	for _, nc := range Counters() {
		if nc.Name == "test.basic" {
			found = true
			if nc.Value != 5 {
				t.Fatalf("Counters reports %d, want 5", nc.Value)
			}
		}
	}
	if !found {
		t.Fatalf("Counters() missing test.basic")
	}
	ResetCounters()
	if got := c.Value(); got != 0 {
		t.Fatalf("after reset = %d, want 0", got)
	}
}

func TestOpsCountersSorted(t *testing.T) {
	Counter("test.zz")
	Counter("test.aa")
	all := Counters()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("Counters not sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
}

func TestOpsCounterConcurrent(t *testing.T) {
	ResetCounters()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				Counter("test.concurrent").Inc()
			}
		}()
	}
	wg.Wait()
	if got := Counter("test.concurrent").Value(); got != goroutines*perG {
		t.Fatalf("concurrent count = %d, want %d", got, goroutines*perG)
	}
}
