package farm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/feed"
	"marketminer/internal/sweep"
)

// WorkerConfig configures one farm worker process.
type WorkerConfig struct {
	// Config must match the coordinator's sweep configuration exactly;
	// the Join handshake is refused otherwise.
	Config backtest.Config
	// BlockSize must match the coordinator's (fingerprinted).
	BlockSize int
	// Name identifies this worker in coordinator logs.
	Name string
	// Addr is the coordinator's address; ignored when Dial is set.
	Addr string
	// Dial, when non-nil, replaces the default TCP dial — the chaos
	// dialer hook (chaos.Chaos.Dialer wraps exactly this signature).
	Dial func(ctx context.Context) (net.Conn, error)
	// EngineWorkers sets intra-group matrix-engine parallelism; ≤ 0
	// means Config.ResolvedWorkers(). Any value produces identical
	// bytes (the engine is worker-count-invariant).
	EngineWorkers int
	// HeartbeatEvery is the lease-renewal cadence; ≤ 0 means 1s. Keep
	// it well under the coordinator's lease TTL.
	HeartbeatEvery time.Duration
	// IdleTimeout bounds silence from the coordinator before this
	// worker abandons the connection and redials; ≤ 0 means 30s. The
	// coordinator heartbeats parked workers every TTL/4, so a healthy
	// link never trips this.
	IdleTimeout time.Duration
	// ReconnectWait is the initial redial backoff (doubled per failure
	// up to 32×); ≤ 0 means 100ms.
	ReconnectWait time.Duration
	// MaxJoinFailures gives up after that many consecutive attempts
	// that never reached a Grant; ≤ 0 means 10. Mid-sweep disconnects
	// reset the count — only a coordinator that cannot be reached at
	// all is fatal.
	MaxJoinFailures int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// OnUnit, when non-nil, is called after each completed unit with
	// the running per-worker count (test crash hooks, progress bars).
	OnUnit func(done int)
}

// WorkerStats reports what one RunWorker invocation did.
type WorkerStats struct {
	// Units and Groups count work computed and delivered (accepted or
	// not — a fenced zombie still counts here).
	Units, Groups int
	// Sessions counts successful Join handshakes; Redials counts
	// connection attempts that had to be retried.
	Sessions, Redials int
	// Warm summarises the robust kernel's warm-start behaviour.
	Warm sweep.RobustSummary
}

// errSweepDone signals a clean End from the coordinator.
var errSweepDone = errors.New("farm: sweep complete")

// wireError marks a network failure inside a compute loop: retryable
// by reconnecting, unlike a compute error (wrong config, engine bug)
// which is terminal.
type wireError struct{ err error }

func (e wireError) Error() string { return e.err.Error() }
func (e wireError) Unwrap() error { return e.err }

// RunWorker joins the coordinator, steals and computes groups through
// the same sweep.GroupRunner the single-host orchestrator uses, and
// streams each unit's Result back, until the coordinator sends End.
// It
// reconnects with exponential backoff across coordinator restarts,
// chaos cuts and idle timeouts; it returns an error only when the
// coordinator is unreachable for MaxJoinFailures straight attempts,
// the configuration is rejected locally, or ctx is cancelled.
func RunWorker(ctx context.Context, wc WorkerConfig) (*WorkerStats, error) {
	if wc.HeartbeatEvery <= 0 {
		wc.HeartbeatEvery = time.Second
	}
	if wc.IdleTimeout <= 0 {
		wc.IdleTimeout = 30 * time.Second
	}
	if wc.ReconnectWait <= 0 {
		wc.ReconnectWait = 100 * time.Millisecond
	}
	if wc.MaxJoinFailures <= 0 {
		wc.MaxJoinFailures = 10
	}
	dial := wc.Dial
	if dial == nil {
		if wc.Addr == "" {
			return nil, fmt.Errorf("farm: WorkerConfig.Addr or Dial is required")
		}
		dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", wc.Addr)
		}
	}
	runner, err := sweep.NewGroupRunner(wc.Config, wc.BlockSize)
	if err != nil {
		return nil, err
	}

	w := &worker{wc: wc, runner: runner}
	stats := &w.stats
	backoff := wc.ReconnectWait
	joinFailures := 0
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		conn, err := dial(ctx)
		joined := false
		if err == nil {
			joined, err = w.session(ctx, conn)
			conn.Close()
		}
		if err == nil || errors.Is(err, errSweepDone) {
			stats.Warm = runner.WarmStats()
			return stats, nil
		}
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		var we wireError
		if joined || errors.As(err, &we) {
			joinFailures = 0
			backoff = wc.ReconnectWait
		} else {
			joinFailures++
			if joinFailures >= wc.MaxJoinFailures {
				return stats, fmt.Errorf("farm: giving up after %d failed join attempts: %w", joinFailures, err)
			}
		}
		stats.Redials++
		w.logf("farm worker: connection lost (%v); redialing in %v", err, backoff)
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 32*wc.ReconnectWait {
			backoff = 32 * wc.ReconnectWait
		}
	}
}

type worker struct {
	wc     WorkerConfig
	runner *sweep.GroupRunner
	stats  WorkerStats
}

func (w *worker) logf(format string, args ...any) {
	if w.wc.Logf != nil {
		w.wc.Logf(format, args...)
	}
}

// session runs one connection: Join → Grant, then steal/compute/result
// until End or failure. joined reports whether a Grant was received
// (resets the fatal join-failure counter).
func (w *worker) session(ctx context.Context, conn net.Conn) (joined bool, err error) {
	// Writes come from this goroutine (Join, Steal, Results) and the
	// heartbeat goroutine; writeMu serializes them on the shared
	// encoder.
	var writeMu sync.Mutex
	enc := feed.NewEncoder(conn, nil)
	send := func(f func(*feed.Encoder) error) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return f(enc)
	}
	dec := feed.NewDecoder(conn)
	read := func() (feed.Frame, error) {
		conn.SetReadDeadline(time.Now().Add(w.wc.IdleTimeout))
		return dec.Read()
	}

	if err := send(func(e *feed.Encoder) error {
		return e.WriteJoin(&feed.Join{Version: feed.ProtocolVersion, Name: w.wc.Name, Fingerprint: w.runner.Fingerprint()})
	}); err != nil {
		return false, err
	}
	f, err := read()
	if err != nil {
		return false, err
	}
	var session uint64
	switch f := f.(type) {
	case *feed.Grant:
		session = f.Session
		w.stats.Sessions++
		w.logf("farm worker: joined as session %d (%d/%d units already done)", f.Session, f.UnitsDone, f.UnitsTotal)
	case *feed.End:
		return true, errSweepDone
	default:
		return false, fmt.Errorf("farm: handshake got %T, want Grant", f)
	}

	// Heartbeats renew leases while this goroutine is deep in a
	// compute; the same goroutine closes the conn on ctx cancel so
	// blocked reads and computes unwind promptly.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(w.wc.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				conn.Close()
				return
			case <-t.C:
				send(func(e *feed.Encoder) error { return e.WriteHeartbeat(&feed.Heartbeat{Seq: session}) })
			}
		}
	}()

	for {
		if err := send(func(e *feed.Encoder) error { return e.WriteSteal(&feed.Steal{Done: uint64(w.stats.Units)}) }); err != nil {
			return true, err
		}
		// Read until work arrives; coordinator heartbeats punctuate
		// long parks and reset the idle timer.
	wait:
		for {
			f, err := read()
			if err != nil {
				return true, err
			}
			switch f := f.(type) {
			case *feed.Heartbeat:
				continue
			case *feed.End:
				return true, errSweepDone
			case *feed.Lease:
				if err := w.compute(ctx, f, send); err != nil {
					return true, err
				}
				break wait
			default:
				return true, fmt.Errorf("farm: unexpected %T while awaiting lease", f)
			}
		}
	}
}

// compute executes one leased group and streams each unit's Result
// back, stamped with the lease's fencing generation.
func (w *worker) compute(ctx context.Context, l *feed.Lease, send func(func(*feed.Encoder) error) error) error {
	plan := w.runner.Plan()
	day, block := int(l.Day), int(l.Block)
	if day >= plan.Days || block >= plan.NumBlocks() {
		return fmt.Errorf("farm: lease for group (%d,%d) outside plan", day, block)
	}
	units := make([]sweep.Unit, len(l.Params))
	for i, p := range l.Params {
		if int(p) >= plan.NumParams() {
			return fmt.Errorf("farm: lease param %d outside plan", p)
		}
		units[i] = sweep.Unit{Day: day, Block: block, Param: int(p)}
	}
	engineWorkers := w.wc.EngineWorkers
	if engineWorkers <= 0 {
		engineWorkers = w.runner.Config().ResolvedWorkers()
	}
	gid := plan.GroupID(day, block)
	err := w.runner.RunGroup(ctx, gid, units, engineWorkers, func(e sweep.Entry, trades int64) error {
		err := send(func(enc *feed.Encoder) error {
			return enc.WriteResult(&feed.Result{Lease: l.ID, Gen: l.Gen, Unit: uint64(e.U), Rets: e.Rets})
		})
		if err != nil {
			return wireError{err}
		}
		w.stats.Units++
		if w.wc.OnUnit != nil {
			w.wc.OnUnit(w.stats.Units)
		}
		return nil
	})
	if err == nil {
		w.stats.Groups++
	}
	return err
}
