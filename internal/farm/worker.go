package farm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/feed"
	"marketminer/internal/sweep"
)

// WorkerConfig configures one farm worker process.
type WorkerConfig struct {
	// Config must match the coordinator's sweep configuration exactly;
	// the Join handshake is refused otherwise.
	Config backtest.Config
	// BlockSize must match the coordinator's (fingerprinted).
	BlockSize int
	// Name identifies this worker in coordinator logs.
	Name string
	// Addr is the coordinator's address; ignored when Dial or Addrs is
	// set.
	Addr string
	// Addrs, when non-empty, lists candidate coordinator addresses —
	// the primary first, then warm standbys. Redials rotate through
	// the list, so a worker finds whichever address is serving after a
	// takeover without operator intervention. Ignored when Dial is set.
	Addrs []string
	// Dial, when non-nil, replaces the default TCP dial — the chaos
	// dialer hook (chaos.Chaos.Dialer wraps exactly this signature).
	Dial func(ctx context.Context) (net.Conn, error)
	// EngineWorkers sets intra-group matrix-engine parallelism; ≤ 0
	// means Config.ResolvedWorkers(). Any value produces identical
	// bytes (the engine is worker-count-invariant).
	EngineWorkers int
	// HeartbeatEvery is the lease-renewal cadence; ≤ 0 means 1s. Keep
	// it well under the coordinator's lease TTL.
	HeartbeatEvery time.Duration
	// IdleTimeout bounds silence from the coordinator before this
	// worker abandons the connection and redials; ≤ 0 means 30s. The
	// coordinator heartbeats parked workers every TTL/4, so a healthy
	// link never trips this.
	IdleTimeout time.Duration
	// ReconnectWait is the base redial backoff (doubled per failure up
	// to 32×, then jittered uniformly in [d/2, d] so a farm of workers
	// orphaned by the same coordinator death does not redial in
	// lockstep); ≤ 0 means 100ms.
	ReconnectWait time.Duration
	// MaxJoinFailures gives up after that many consecutive attempts
	// that never reached a Grant; ≤ 0 means 10. Mid-sweep disconnects
	// reset the count — only a coordinator that cannot be *reached* is
	// retried to this cap, while an explicit Refuse (version or
	// fingerprint mismatch) is fatal on the first attempt: retrying a
	// misconfiguration can never succeed.
	MaxJoinFailures int
	// JitterSeed seeds the backoff jitter rng (0 = deterministic
	// default seed; tests rely on reproducible schedules).
	JitterSeed int64
	// Jitter, when non-nil, replaces the JitterSeed-derived rng. The
	// worker owns it privately (single goroutine), so an injected
	// seeded rng pins a test's exact backoff sequence.
	Jitter *rand.Rand
	// Sleep, when non-nil, replaces the real backoff wait. It must
	// return false iff ctx was cancelled before the delay elapsed.
	// Tests inject a recording fake so reconnect schedules can be
	// asserted without wall-clock time.
	Sleep func(ctx context.Context, d time.Duration) bool
	// MaxUnacked caps the completed-but-unacknowledged Results buffered
	// for redelivery across a coordinator restart; ≤ 0 means 1024.
	// Overflow evicts arbitrarily — an evicted unit is merely
	// recomputed, never lost.
	MaxUnacked int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// OnUnit, when non-nil, is called after each computed unit with
	// the running per-worker count (test crash hooks, progress bars).
	OnUnit func(done int)
}

// WorkerStats reports what one RunWorker invocation did.
type WorkerStats struct {
	// Units and Groups count work computed and delivered (accepted or
	// not — a fenced zombie still counts here).
	Units, Groups int
	// Sessions counts successful Join handshakes; Redials counts
	// connection attempts that had to be retried.
	Sessions, Redials int
	// Rejoins counts sessions resumed from a prior one (coordinator
	// restart or takeover); Recovered counts buffered Results
	// redelivered instead of recomputed after such a resume.
	Rejoins, Recovered int
	// Backoffs records each jittered redial delay, in order (tests pin
	// the schedule; operators see reconnect pressure).
	Backoffs []time.Duration
	// Warm summarises the robust kernel's warm-start behaviour.
	Warm sweep.RobustSummary
}

// errSweepDone signals a clean End from the coordinator.
var errSweepDone = errors.New("farm: sweep complete")

// RefusedError is an explicit coordinator rejection of the Join
// handshake — a protocol-version or sweep-fingerprint mismatch. It is
// fatal: the worker exits loudly instead of burning its redial budget
// on a configuration that can never be accepted.
type RefusedError struct {
	Code   uint16 // feed.RefuseVersion or feed.RefuseFingerprint
	Reason string
}

func (e *RefusedError) Error() string {
	kind := "join refused"
	switch e.Code {
	case feed.RefuseVersion:
		kind = "protocol version refused"
	case feed.RefuseFingerprint:
		kind = "sweep fingerprint refused"
	}
	return fmt.Sprintf("farm: %s by coordinator: %s", kind, e.Reason)
}

// wireError marks a network failure inside a compute loop: retryable
// by reconnecting, unlike a compute error (wrong config, engine bug)
// which is terminal.
type wireError struct{ err error }

func (e wireError) Error() string { return e.err.Error() }
func (e wireError) Unwrap() error { return e.err }

// RunWorker joins the coordinator, steals and computes groups through
// the same sweep.GroupRunner the single-host orchestrator uses, and
// streams each unit's Result back, until the coordinator sends End.
// It reconnects with jittered exponential backoff across coordinator
// restarts, standby takeovers (rotating through Addrs), chaos cuts and
// idle timeouts, resuming its prior session so in-flight groups and
// unacknowledged Results survive the handoff; it returns an error only
// when no coordinator is reachable for MaxJoinFailures straight
// attempts, the coordinator explicitly refuses the Join, the
// configuration is rejected locally, or ctx is cancelled.
func RunWorker(ctx context.Context, wc WorkerConfig) (*WorkerStats, error) {
	if wc.HeartbeatEvery <= 0 {
		wc.HeartbeatEvery = time.Second
	}
	if wc.IdleTimeout <= 0 {
		wc.IdleTimeout = 30 * time.Second
	}
	if wc.ReconnectWait <= 0 {
		wc.ReconnectWait = 100 * time.Millisecond
	}
	if wc.MaxJoinFailures <= 0 {
		wc.MaxJoinFailures = 10
	}
	if wc.MaxUnacked <= 0 {
		wc.MaxUnacked = 1024
	}
	if wc.Jitter == nil {
		wc.Jitter = rand.New(rand.NewSource(wc.JitterSeed))
	}
	if wc.Sleep == nil {
		wc.Sleep = func(ctx context.Context, d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return true
			case <-ctx.Done():
				return false
			}
		}
	}
	addrs := wc.Addrs
	if len(addrs) == 0 && wc.Addr != "" {
		addrs = []string{wc.Addr}
	}
	if wc.Dial == nil && len(addrs) == 0 {
		return nil, fmt.Errorf("farm: WorkerConfig.Addr, Addrs or Dial is required")
	}
	dialN := 0
	dial := func(ctx context.Context) (net.Conn, error) {
		if wc.Dial != nil {
			return wc.Dial(ctx)
		}
		addr := addrs[dialN%len(addrs)]
		dialN++
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	runner, err := sweep.NewGroupRunner(wc.Config, wc.BlockSize)
	if err != nil {
		return nil, err
	}

	w := &worker{
		wc:      wc,
		runner:  runner,
		held:    map[int]uint64{},
		unacked: map[int]*feed.Result{},
	}
	stats := &w.stats
	backoff := wc.ReconnectWait
	joinFailures := 0
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		conn, err := dial(ctx)
		joined := false
		if err == nil {
			joined, err = w.session(ctx, conn)
			conn.Close()
		}
		if err == nil || errors.Is(err, errSweepDone) {
			stats.Warm = runner.WarmStats()
			return stats, nil
		}
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		var refused *RefusedError
		if errors.As(err, &refused) {
			w.logf("farm worker: FATAL: %v", refused)
			return stats, refused
		}
		var we wireError
		if joined || errors.As(err, &we) {
			joinFailures = 0
			backoff = wc.ReconnectWait
		} else {
			joinFailures++
			if joinFailures >= wc.MaxJoinFailures {
				return stats, fmt.Errorf("farm: giving up after %d failed join attempts: %w", joinFailures, err)
			}
		}
		stats.Redials++
		// Jitter uniformly in [backoff/2, backoff] (the Collector's
		// reconnect idiom) so orphaned workers spread their redials.
		d := backoff/2 + time.Duration(wc.Jitter.Int63n(int64(backoff/2)+1))
		stats.Backoffs = append(stats.Backoffs, d)
		w.logf("farm worker: connection lost (%v); redialing in %v", err, d)
		if !wc.Sleep(ctx, d) {
			return stats, ctx.Err()
		}
		if backoff *= 2; backoff > 32*wc.ReconnectWait {
			backoff = 32 * wc.ReconnectWait
		}
	}
}

type worker struct {
	wc     WorkerConfig
	runner *sweep.GroupRunner
	stats  WorkerStats

	// Resume state, carried across sessions. held maps gid → the lease
	// id this worker most recently received for it (reported in the
	// rejoin Join so the new coordinator re-confirms instead of
	// reassigning); unacked maps unit id → the completed Result whose
	// durability the coordinator has not yet acknowledged (redelivered
	// under a re-confirmed lease instead of recomputed).
	sessionID uint64
	epoch     uint64
	held      map[int]uint64
	unacked   map[int]*feed.Result
}

func (w *worker) logf(format string, args ...any) {
	if w.wc.Logf != nil {
		w.wc.Logf(format, args...)
	}
}

// heldLeaseIDs snapshots the lease ids to claim in a rejoin Join,
// bounded by the wire-format cap (an unreported lease is merely
// reassigned by the coordinator, never lost).
func (w *worker) heldLeaseIDs() []uint64 {
	const wireCap = 1024 // feed's maxHeldLeases
	ids := make([]uint64, 0, len(w.held))
	for _, id := range w.held {
		ids = append(ids, id)
		if len(ids) == wireCap {
			break
		}
	}
	return ids
}

// ack clears one acknowledged unit and releases its group's held lease
// once nothing of that group remains buffered.
func (w *worker) ack(unit int) {
	if _, ok := w.unacked[unit]; !ok {
		return
	}
	delete(w.unacked, unit)
	plan := w.runner.Plan()
	if unit >= plan.NumUnits() {
		return
	}
	u := plan.UnitFromID(unit)
	gid := plan.GroupID(u.Day, u.Block)
	for id := range w.unacked {
		ou := plan.UnitFromID(id)
		if plan.GroupID(ou.Day, ou.Block) == gid {
			return
		}
	}
	delete(w.held, gid)
}

// buffer records a delivered Result for potential redelivery, evicting
// arbitrarily at the cap (the evicted unit is recomputed, not lost).
func (w *worker) buffer(r *feed.Result) {
	if len(w.unacked) >= w.wc.MaxUnacked {
		for id := range w.unacked {
			delete(w.unacked, id)
			break
		}
	}
	w.unacked[int(r.Unit)] = r
}

// session runs one connection: Join → Grant (or Refuse), then
// steal/compute/result until End or failure. joined reports whether a
// Grant was received (resets the fatal join-failure counter).
func (w *worker) session(ctx context.Context, conn net.Conn) (joined bool, err error) {
	// Writes come from this goroutine (Join, Steal, Results) and the
	// heartbeat goroutine; writeMu serializes them on the shared
	// encoder.
	var writeMu sync.Mutex
	enc := feed.NewEncoder(conn, nil)
	send := func(f func(*feed.Encoder) error) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return f(enc)
	}
	dec := feed.NewDecoder(conn)
	read := func() (feed.Frame, error) {
		conn.SetReadDeadline(time.Now().Add(w.wc.IdleTimeout))
		return dec.Read()
	}

	rejoin := w.sessionID != 0
	join := &feed.Join{
		Version:     feed.ProtocolVersion,
		Name:        w.wc.Name,
		Fingerprint: w.runner.Fingerprint(),
	}
	if rejoin {
		join.PriorSession = w.sessionID
		join.PriorEpoch = w.epoch
		join.HeldLeases = w.heldLeaseIDs()
	}
	if err := send(func(e *feed.Encoder) error { return e.WriteJoin(join) }); err != nil {
		return false, err
	}
	f, err := read()
	if err != nil {
		return false, err
	}
	var session uint64
	switch f := f.(type) {
	case *feed.Grant:
		session = f.Session
		w.sessionID, w.epoch = f.Session, f.Epoch
		// Old lease ids died with the old coordinator; re-confirmed
		// groups arrive as fresh Lease frames and repopulate held.
		w.held = map[int]uint64{}
		w.stats.Sessions++
		if rejoin {
			w.stats.Rejoins++
			w.logf("farm worker: rejoined as session %d under epoch %d (was session %d; %d unit(s) buffered for redelivery)",
				f.Session, f.Epoch, join.PriorSession, len(w.unacked))
		} else {
			w.logf("farm worker: joined as session %d under epoch %d (%d/%d units already done)",
				f.Session, f.Epoch, f.UnitsDone, f.UnitsTotal)
		}
	case *feed.Refuse:
		return false, &RefusedError{Code: f.Code, Reason: f.Reason}
	case *feed.End:
		return true, errSweepDone
	default:
		return false, fmt.Errorf("farm: handshake got %T, want Grant", f)
	}

	// Heartbeats renew leases while this goroutine is deep in a
	// compute; the same goroutine closes the conn on ctx cancel so
	// blocked reads and computes unwind promptly.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(w.wc.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				conn.Close()
				return
			case <-t.C:
				send(func(e *feed.Encoder) error { return e.WriteHeartbeat(&feed.Heartbeat{Seq: session}) })
			}
		}
	}()

	for {
		if err := send(func(e *feed.Encoder) error { return e.WriteSteal(&feed.Steal{Done: uint64(w.stats.Units)}) }); err != nil {
			return true, err
		}
		// Read until work arrives; coordinator heartbeats punctuate
		// long parks and reset the idle timer, result acks retire the
		// redelivery buffer.
	wait:
		for {
			f, err := read()
			if err != nil {
				return true, err
			}
			switch f := f.(type) {
			case *feed.Heartbeat:
				continue
			case *feed.ResultAck:
				w.ack(int(f.Unit))
			case *feed.End:
				return true, errSweepDone
			case *feed.Lease:
				if err := w.compute(ctx, f, send); err != nil {
					return true, err
				}
				break wait
			default:
				return true, fmt.Errorf("farm: unexpected %T while awaiting lease", f)
			}
		}
	}
}

// compute executes one leased group and streams each unit's Result
// back, stamped with the lease's fencing generation and the session's
// coordinator epoch. Units the lease asks for that are already in the
// redelivery buffer (computed under a previous session, ack lost with
// the old coordinator) are resent as-is with the recovered flag;
// buffered units the lease does *not* ask for are already journaled
// and are dropped.
func (w *worker) compute(ctx context.Context, l *feed.Lease, send func(func(*feed.Encoder) error) error) error {
	plan := w.runner.Plan()
	day, block := int(l.Day), int(l.Block)
	if day >= plan.Days || block >= plan.NumBlocks() {
		return fmt.Errorf("farm: lease for group (%d,%d) outside plan", day, block)
	}
	gid := plan.GroupID(day, block)
	w.held[gid] = l.ID

	asked := make(map[int]bool, len(l.Params))
	units := make([]sweep.Unit, 0, len(l.Params))
	recovered := 0
	for _, p := range l.Params {
		if int(p) >= plan.NumParams() {
			return fmt.Errorf("farm: lease param %d outside plan", p)
		}
		u := sweep.Unit{Day: day, Block: block, Param: int(p)}
		id := plan.UnitID(u)
		asked[id] = true
		if r, ok := w.unacked[id]; ok {
			// Re-stamp under the new lease: the value is a pure
			// function of (day, block, param), so the bytes computed
			// under the old session are exactly what this lease wants.
			r.Lease, r.Gen, r.Epoch = l.ID, l.Gen, w.epoch
			r.Flags |= feed.ResultRecovered
			if err := send(func(e *feed.Encoder) error { return e.WriteResult(r) }); err != nil {
				return wireError{err}
			}
			recovered++
			continue
		}
		units = append(units, u)
	}
	for id := range w.unacked {
		u := plan.UnitFromID(id)
		if plan.GroupID(u.Day, u.Block) == gid && !asked[id] {
			delete(w.unacked, id) // journaled before the old coordinator died
		}
	}
	if recovered > 0 {
		w.stats.Recovered += recovered
		w.logf("farm worker: redelivered %d buffered unit(s) for group (%d,%d) instead of recomputing", recovered, day, block)
	}
	if len(units) == 0 {
		w.stats.Groups++
		return nil
	}

	engineWorkers := w.wc.EngineWorkers
	if engineWorkers <= 0 {
		engineWorkers = w.runner.Config().ResolvedWorkers()
	}
	err := w.runner.RunGroup(ctx, gid, units, engineWorkers, func(e sweep.Entry, trades int64) error {
		r := &feed.Result{Lease: l.ID, Gen: l.Gen, Epoch: w.epoch, Unit: uint64(e.U), Rets: e.Rets}
		err := send(func(enc *feed.Encoder) error { return enc.WriteResult(r) })
		if err != nil {
			return wireError{err}
		}
		w.buffer(r)
		w.stats.Units++
		if w.wc.OnUnit != nil {
			w.wc.OnUnit(w.stats.Units)
		}
		return nil
	})
	if err == nil {
		w.stats.Groups++
	}
	return err
}
