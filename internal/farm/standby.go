package farm

import (
	"context"
	"fmt"
	"net"
	"time"

	"marketminer/internal/metrics"
)

// StandbyConfig configures a warm standby coordinator.
type StandbyConfig struct {
	// Coordinator is the configuration the standby will serve with if
	// promoted. Its JournalPath locates the journal, manifest and
	// heartbeat files the standby tails (shared storage with the
	// primary).
	Coordinator CoordinatorConfig
	// PollEvery is the heartbeat-file polling cadence; ≤ 0 means 250ms.
	PollEvery time.Duration
	// TakeoverAfter is how long the heartbeat file must show no
	// (epoch, seq) movement before the standby declares the primary
	// dead and promotes itself; ≤ 0 means the lease TTL (DefaultLeaseTTL
	// when that is unset too). A heartbeat file that never appears at
	// all counts as silence from the moment the standby starts.
	TakeoverAfter time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// now is the injectable clock (tests); nil means time.Now.
	now func() time.Time
}

// RunStandby tails the primary coordinator's on-disk heartbeat and, on
// sustained silence, promotes itself: it binds a listener via listen
// (deferred so the standby holds no port while the primary is healthy
// — primary and standby can even share an address), builds a
// Coordinator from the same journal, and serves under the next epoch.
// The epoch claim in the manifest fences the old primary: if it was
// merely frozen rather than dead, its next durable write fails with
// ErrFenced and it stands down — the journal never takes writes from
// two coordinators.
//
// RunStandby returns the promoted coordinator's stats, or a nil stats
// with ctx's error if cancelled while still standing by.
func RunStandby(ctx context.Context, sc StandbyConfig, listen func() (net.Listener, error)) (*CoordStats, error) {
	if sc.Coordinator.JournalPath == "" {
		return nil, fmt.Errorf("farm: StandbyConfig.Coordinator.JournalPath is required")
	}
	poll := sc.PollEvery
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	ttl := sc.TakeoverAfter
	if ttl <= 0 {
		ttl = sc.Coordinator.LeaseTTL
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	now := sc.now
	if now == nil {
		now = time.Now
	}
	logf := func(format string, args ...any) {
		if sc.Logf != nil {
			sc.Logf(format, args...)
		}
	}

	hbPath := coordHeartbeatPath(sc.Coordinator.JournalPath)
	var lastEpoch, lastSeq uint64
	seen := false
	lastChange := now()
	logf("farm: standby watching %s (takeover after %v of silence)", hbPath, ttl)
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
		hb, err := readCoordHeartbeat(hbPath)
		if err != nil {
			return nil, err
		}
		if hb != nil && (!seen || hb.Epoch != lastEpoch || hb.Seq != lastSeq) {
			seen = true
			lastEpoch, lastSeq = hb.Epoch, hb.Seq
			lastChange = now()
			continue
		}
		if now().Sub(lastChange) < ttl {
			continue
		}
		if seen {
			logf("farm: standby: primary heartbeat (epoch %d, seq %d) silent for %v; taking over", lastEpoch, lastSeq, ttl)
		} else {
			logf("farm: standby: no primary heartbeat ever appeared; taking over after %v", ttl)
		}
		break
	}

	metrics.Counter(MetricCoordTakeovers).Inc()
	l, err := listen()
	if err != nil {
		return nil, err
	}
	c, err := NewCoordinator(sc.Coordinator)
	if err != nil {
		l.Close()
		return nil, err
	}
	if sc.now != nil {
		c.now = sc.now
	}
	return c.Serve(ctx, l)
}
