package farm

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Coordinator durable state. The checkpoint journal remains the only
// durable record of *results*; the coordinator manifest adds the small
// remainder a restarted (or failed-over) coordinator cannot rebuild
// from the journal alone: the coordinator epoch (the fencing token
// that outlives any one process), the monotonic session and lease id
// counters (so new grants never collide with ids a previous
// incarnation issued), the live lease table (so a rejoining worker's
// in-flight groups can be re-confirmed instead of re-computed) and the
// pending deque order (so a restart re-deals lost work in the same
// front-first order a live coordinator would have). Like the journal
// it is CRC-guarded; like the sweep progress manifest it is replaced
// by atomic rename so no reader — a standby tailing it, a stale
// primary fence-checking it — ever observes a torn write.

// CoordManifestSchema versions the coordinator manifest format.
const CoordManifestSchema = "marketminer/farm-coordinator/v1"

// coordLease is one live lease in the manifest: group gid is held by
// session under the given lease id and fencing generation.
type coordLease struct {
	Gid     int    `json:"gid"`
	Lease   uint64 `json:"lease"`
	Gen     uint64 `json:"gen"`
	Session uint64 `json:"session"`
}

// coordManifest is the coordinator's durable state beyond the journal.
type coordManifest struct {
	Schema      string       `json:"schema"`
	Fingerprint string       `json:"fingerprint"`
	Epoch       uint64       `json:"epoch"`
	NextSession uint64       `json:"next_session"`
	NextLease   uint64       `json:"next_lease"`
	Leases      []coordLease `json:"leases"`
	Pending     []int        `json:"pending"`
}

// coordManifestLine is the on-disk envelope: the CRC32 (IEEE) of the
// raw manifest JSON, mirroring the journal's per-entry guard.
type coordManifestLine struct {
	CRC uint32          `json:"crc"`
	M   json.RawMessage `json:"m"`
}

// coordManifestPath derives the manifest path from the journal path.
func coordManifestPath(journalPath string) string { return journalPath + ".coord" }

// coordHeartbeatPath derives the liveness heartbeat path from the
// journal path.
func coordHeartbeatPath(journalPath string) string { return journalPath + ".coordhb" }

// atomicWriteFile replaces path via a same-directory temp file and
// rename, so readers only ever see complete contents.
func atomicWriteFile(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".coord-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeCoordManifest atomically replaces the coordinator manifest.
func writeCoordManifest(path string, m *coordManifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line, err := json.Marshal(coordManifestLine{CRC: crc32.ChecksumIEEE(payload), M: payload})
	if err != nil {
		return err
	}
	return atomicWriteFile(path, append(line, '\n'))
}

// readCoordManifest loads the coordinator manifest. A missing file is
// (nil, nil) — a fresh farm. A present-but-damaged file is an error:
// epoch monotonicity (the whole fencing argument) cannot be trusted
// from a file that fails its checksum, so the caller must decide
// loudly instead of guessing.
func readCoordManifest(path string) (*coordManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var line coordManifestLine
	if err := json.Unmarshal(b, &line); err != nil || line.M == nil {
		return nil, fmt.Errorf("farm: coordinator manifest %s: unparseable (%v)", path, err)
	}
	if got := crc32.ChecksumIEEE(line.M); got != line.CRC {
		return nil, fmt.Errorf("farm: coordinator manifest %s: checksum mismatch (stored %08x, computed %08x)", path, line.CRC, got)
	}
	var m coordManifest
	if err := json.Unmarshal(line.M, &m); err != nil {
		return nil, fmt.Errorf("farm: coordinator manifest %s: %w", path, err)
	}
	if m.Schema != CoordManifestSchema {
		return nil, fmt.Errorf("farm: coordinator manifest %s: schema %q, want %q", path, m.Schema, CoordManifestSchema)
	}
	return &m, nil
}

// coordHeartbeat is the primary's liveness beacon: a tiny file the
// standby polls. Seq is bumped on every write; a standby that sees no
// (Epoch, Seq) movement for its takeover TTL declares the primary dead.
// Wall-clock timestamps are deliberately absent — liveness is judged by
// change, not by comparing clocks across processes.
type coordHeartbeat struct {
	Schema string `json:"schema"`
	Epoch  uint64 `json:"epoch"`
	Seq    uint64 `json:"seq"`
}

// writeCoordHeartbeat atomically replaces the heartbeat file.
func writeCoordHeartbeat(path string, hb coordHeartbeat) error {
	hb.Schema = CoordManifestSchema
	b, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	return atomicWriteFile(path, append(b, '\n'))
}

// readCoordHeartbeat loads the heartbeat file; a missing or damaged
// file is (nil, nil) — the standby treats both as silence.
func readCoordHeartbeat(path string) (*coordHeartbeat, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var hb coordHeartbeat
	if err := json.Unmarshal(b, &hb); err != nil {
		return nil, nil
	}
	return &hb, nil
}
