// Package farm is the distributed sweep layer: a coordinator that
// deals the sweep orchestrator's (day × pair-block × param-set) work
// units to remote worker processes over the internal/feed binary
// codec, journals remotely-completed units into the same CRC32 JSONL
// checkpoint journal a single-host shard writes, and survives worker
// SIGKILL and network partition by lease-TTL expiry, generation
// fencing and reassignment. It closes the loop the paper opens — the
// 854-hour brute-force sweep cut to cluster time — without weakening
// any single-host guarantee: the merged output of a farm run is
// byte-identical to an uninterrupted backtest.Run of the same
// configuration.
//
// # Ownership and determinism contract
//
// Work is dealt at (day, pair-block) group granularity — the same
// grain the local orchestrator schedules, because one fused
// correlation pass serves all of a group's parameter units. Exactly
// one worker generation may deliver results for a group at a time:
// a Lease carries a generation token that is bumped every time the
// group is (re)assigned, and a Result whose generation is stale — a
// zombie worker that lost its lease to TTL expiry or disconnect — is
// rejected and counted (metrics "farm.results_zombie") rather than
// journaled. Unit values themselves are pure functions of (day, block,
// param) — per-day generator seeding, per-pair warm-start chains,
// block-restricted engine pairs — so even when fencing fails to
// prevent duplicate *computation* (it cannot: a partitioned worker
// computes on, unreachable), duplicate results are bit-identical and
// the first journaled copy is as good as any. Workers and coordinator
// execute groups through the shared sweep.GroupRunner, which is what
// makes a remotely computed unit's bytes equal a local one's.
//
// # Failure model
//
// Worker SIGKILL closes its TCP connection: the coordinator reclaims
// its leases immediately and re-deals them to the next idle worker.
// Network partition (half-open connection, stalled reads) is caught by
// lease TTL: a worker that misses heartbeats for LeaseTTL loses its
// groups to reassignment, and generation fencing rejects whatever it
// later delivers. Wire corruption is caught by the feed codec's
// per-frame CRC — a damaged frame drops the connection, the worker
// reconnects with backoff and re-joins, and the units it was carrying
// re-run. Coordinator death loses nothing durable: the journal holds
// every accepted unit, and a restarted coordinator (same journal)
// re-deals only the missing ones. All of this is exercised by the e2e
// tests (subprocess SIGKILL mid-unit, chaos corrupt/cut dialer) and
// scripts/farm_smoke.sh.
//
// # Coordinator crash tolerance
//
// The coordinator itself is crash-tolerant (see DESIGN.md §11). A
// CRC-guarded manifest alongside the journal persists the coordinator
// epoch, the monotonic session/lease counters, the live lease table
// and the pending order; a restarted coordinator (or a warm standby
// promoted by RunStandby after heartbeat-file silence) claims the next
// epoch, holds the manifest's leases open for one TTL so their owners
// can rejoin, and re-deals only what the journal does not already
// hold. Epoch fencing makes the handoff safe: every durable write
// re-reads the manifest epoch first, so a stale primary's writes fail
// with ErrFenced, and Results stamped with an old epoch are dropped as
// zombies. Workers survive the handoff too — they rejoin with their
// prior session id, held lease ids and a buffer of
// completed-but-unacked Results, which the new coordinator re-confirms
// or absorbs idempotently (unit values are pure, so a redelivered
// Result is bit-identical).
package farm

import "time"

// Default timing parameters. LeaseTTL bounds how long a dead-but-
// connected (partitioned) worker can hold a group; the sweep interval
// is how often expiry is checked and parked workers are heartbeated.
const (
	DefaultLeaseTTL  = 10 * time.Second
	defaultTTLDivide = 4 // sweep cadence = LeaseTTL / defaultTTLDivide
)

// Metrics counter names incremented by the coordinator (see
// internal/metrics). Tests assert on exact deltas; operators watch
// them to see a farm's health at a glance.
const (
	MetricWorkersJoined    = "farm.workers_joined"
	MetricLeasesGranted    = "farm.leases_granted"
	MetricLeaseExpiries    = "farm.lease_expiries"
	MetricLeaseReclaims    = "farm.lease_reclaims"
	MetricResultsAccepted  = "farm.results_accepted"
	MetricResultsZombie    = "farm.results_zombie"
	MetricResultsDuplicate = "farm.results_duplicate"
	MetricResultsLate      = "farm.results_late"
)

// Coordinator-recovery counter names. Restarts counts cold starts that
// found a prior manifest; takeovers counts standby promotions; epoch
// fences counts durable writes a stale incarnation had refused; rejoins
// counts accepted worker session resumes, and rejoin results recovered
// counts buffered unacked Results those resumes redelivered (compute
// that survived a coordinator death without re-running).
const (
	MetricCoordRestarts    = "farm.coordinator_restarts"
	MetricCoordTakeovers   = "farm.coordinator_takeovers"
	MetricCoordEpochFences = "farm.coordinator_epoch_fences"
	MetricCoordRejoins     = "farm.coordinator_rejoins_accepted"
	MetricCoordRecovered   = "farm.coordinator_rejoin_results_recovered"
)
