package farm

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/feed"
	"marketminer/internal/metrics"
	"marketminer/internal/sweep"
)

// CoordinatorConfig configures one farm coordinator run.
type CoordinatorConfig struct {
	// Config is the sweep every worker must have been started with;
	// its fingerprint gates Join.
	Config backtest.Config
	// BlockSize is the pairs-per-block granularity; ≤ 0 means
	// sweep.DefaultBlockSize (fingerprinted, so workers must agree).
	BlockSize int
	// JournalPath is the checkpoint journal (required). A farm journal
	// is written as Shard{0, 1}, so mmreport -merge and even a local
	// single-host sweep.Run can pick up where a farm left off.
	JournalPath string
	// LeaseTTL bounds how long a silent worker holds a group before it
	// is reassigned; ≤ 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// SweepEvery is the expiry-check cadence; ≤ 0 means LeaseTTL/4.
	SweepEvery time.Duration
	// Limit, when > 0, pauses the run cleanly after accepting that many
	// results in this invocation; a later run with the same journal
	// resumes.
	Limit int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Progress, when non-nil, is called after every accepted unit with
	// (journaled, total) counts.
	Progress func(done, total int)
}

// CoordStats reports what one Serve invocation did.
type CoordStats struct {
	// UnitsTotal is the whole sweep's unit count; UnitsRestored were
	// already in the journal, UnitsExecuted were accepted from workers
	// now.
	UnitsTotal, UnitsRestored, UnitsExecuted int
	// Trades counts trades across all journaled units.
	Trades int64
	// WorkersJoined counts accepted Join handshakes (reconnects
	// included).
	WorkersJoined int
	// Paused reports that Limit stopped the run before the sweep
	// finished.
	Paused bool
	// Recovered is non-nil when a damaged journal tail was healed
	// before serving.
	Recovered *sweep.Corruption
}

// Coordinator deals sweep groups to remote workers and journals their
// results. One Coordinator serves one sweep; create it with
// NewCoordinator and run it with Serve.
type Coordinator struct {
	cc          CoordinatorConfig
	plan        *sweep.Plan
	header      sweep.Header
	fingerprint string
	ttl         time.Duration
	sweepEvery  time.Duration
	drainGrace  time.Duration
	now         func() time.Time // injectable clock (expiry tests)

	// mu guards everything below, including every session's held set.
	mu          sync.Mutex
	journal     *sweep.Journal
	groups      []groupState
	pending     []int // unleased gids with missing units; front = next out
	waiters     []*session
	sessions    map[uint64]*session
	nextSession uint64
	nextLease   uint64
	unitsTotal  int
	doneUnits   int // journaled units (restored + accepted)
	restored    int
	accepted    int
	trades      int64
	joined      int
	finished    bool
	paused      bool
	fatal       error
	done        chan struct{} // closed once finished
}

// groupState tracks one (day, pair-block) group's lease. The
// generation counter is bumped on every (re)assignment; a Result whose
// (lease, gen, session) triple does not match the current holder is a
// fenced zombie and is dropped.
type groupState struct {
	gen     uint64
	lease   uint64 // 0 = unleased
	session uint64
	expiry  time.Time
	missing map[int]bool // param indexes not yet journaled
}

// session is one connected worker. Its encoder is shared by the
// handler, the sweeper's heartbeats and waiter wake-ups; writeMu
// serializes them. held is guarded by Coordinator.mu, not writeMu.
type session struct {
	id      uint64
	name    string
	conn    net.Conn
	writeMu sync.Mutex
	enc     *feed.Encoder
	held    map[int]bool // gids leased to this session
}

func (s *session) send(f func(*feed.Encoder) error) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return f(s.enc)
}

func (s *session) sendEnd() error {
	return s.send(func(e *feed.Encoder) error { return e.WriteEnd(&feed.End{}) })
}

// NewCoordinator validates the configuration and derives the plan. The
// journal is opened by Serve.
func NewCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	if cc.JournalPath == "" {
		return nil, fmt.Errorf("farm: CoordinatorConfig.JournalPath is required")
	}
	runner, err := sweep.NewGroupRunner(cc.Config, cc.BlockSize)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cc:          cc,
		plan:        runner.Plan(),
		header:      sweep.PlanHeader(runner, sweep.Shard{Index: 0, Count: 1}),
		fingerprint: runner.Fingerprint(),
		ttl:         cc.LeaseTTL,
		sweepEvery:  cc.SweepEvery,
		drainGrace:  3 * time.Second,
		now:         time.Now,
		sessions:    map[uint64]*session{},
		done:        make(chan struct{}),
	}
	if c.ttl <= 0 {
		c.ttl = DefaultLeaseTTL
	}
	if c.sweepEvery <= 0 {
		c.sweepEvery = c.ttl / defaultTTLDivide
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cc.Logf != nil {
		c.cc.Logf(format, args...)
	}
}

// Serve opens (or resumes) the journal, accepts workers on l and deals
// groups until the sweep is complete, Limit is reached, or ctx is
// cancelled. It owns l and closes it on the way out. Serve never
// computes a unit itself — a coordinator on a laptop can drive a room
// full of workers.
func (c *Coordinator) Serve(ctx context.Context, l net.Listener) (*CoordStats, error) {
	journal, done, recovered, err := sweep.OpenJournal(c.cc.JournalPath, c.header)
	if err != nil {
		l.Close()
		return nil, err
	}

	c.mu.Lock()
	c.journal = journal
	c.unitsTotal = c.plan.NumUnits()
	c.groups = make([]groupState, c.plan.NumGroups())
	np := c.plan.NumParams()
	for gid := range c.groups {
		g := &c.groups[gid]
		g.missing = make(map[int]bool, np)
		for k := 0; k < np; k++ {
			g.missing[k] = true
		}
	}
	for id, n := range done {
		u := c.plan.UnitFromID(id)
		delete(c.groups[c.plan.GroupID(u.Day, u.Block)].missing, u.Param)
		c.restored++
		c.doneUnits++
		c.trades += int64(n)
	}
	for gid := range c.groups {
		if len(c.groups[gid].missing) > 0 {
			c.pending = append(c.pending, gid)
		}
	}
	complete := c.doneUnits == c.unitsTotal
	if complete {
		c.finishLocked(false, nil)
	}
	c.mu.Unlock()

	if recovered != nil {
		c.logf("farm: healed journal tail: %v", recovered)
	}
	if complete {
		l.Close()
		err := journal.Close()
		return c.snapshotStats(recovered), err
	}
	c.logf("farm: serving %d/%d units (%d restored), lease TTL %v",
		c.unitsTotal-c.doneUnits, c.unitsTotal, c.restored, c.ttl)

	// Watchdog: on cancel, abort every session; on finish (from any
	// path), just close the listener so Accept returns.
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			ss := c.finishLocked(false, ctx.Err())
			c.mu.Unlock()
			for _, s := range ss {
				s.conn.Close()
			}
		case <-c.done:
		}
		l.Close()
	}()

	// Lease sweeper: expiry checks plus liveness heartbeats to every
	// session (parked workers use them to reset their idle timers).
	go func() {
		t := time.NewTicker(c.sweepEvery)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.sweepLeases()
			}
		}
	}()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := l.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handle(conn)
		}()
	}
	// If the listener died before anything finished the run, that is a
	// real serving error, not a shutdown.
	c.mu.Lock()
	ss := c.finishLocked(false, acceptErr)
	c.mu.Unlock()
	for _, s := range ss {
		s.conn.Close()
	}
	wg.Wait()

	c.mu.Lock()
	ferr := c.fatal
	c.mu.Unlock()
	if cerr := journal.Close(); ferr == nil {
		ferr = cerr
	}
	return c.snapshotStats(recovered), ferr
}

// snapshotStats snapshots run stats under mu.
func (c *Coordinator) snapshotStats(recovered *sweep.Corruption) *CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &CoordStats{
		UnitsTotal:    c.unitsTotal,
		UnitsRestored: c.restored,
		UnitsExecuted: c.accepted,
		Trades:        c.trades,
		WorkersJoined: c.joined,
		Paused:        c.paused,
		Recovered:     recovered,
	}
}

// finishLocked transitions to the finished state exactly once and
// returns the sessions to notify; mu must be held. The caller decides
// how to notify (End + drain deadline on clean finish, Close on
// abort).
func (c *Coordinator) finishLocked(paused bool, err error) []*session {
	if c.finished {
		return nil
	}
	c.finished = true
	c.paused = paused
	c.fatal = err
	close(c.done)
	c.waiters = nil
	out := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		out = append(out, s)
	}
	return out
}

// endSessions notifies workers of a clean finish: End, then a read
// deadline so a wedged peer cannot hold Serve open past the grace
// period. Conns are kept open until the worker hangs up (or the
// deadline) so the End frame is never lost to a reset.
func (c *Coordinator) endSessions(ss []*session) {
	for _, s := range ss {
		s.conn.SetDeadline(time.Now().Add(c.drainGrace))
		s.sendEnd()
	}
}

// handle runs one worker connection: Join/Grant handshake, then a
// Steal/Heartbeat/Result read loop until the peer drops or the run
// ends.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	dec := feed.NewDecoder(conn)
	f, err := dec.Read()
	if err != nil {
		return
	}
	join, ok := f.(*feed.Join)
	if !ok {
		c.logf("farm: dropping connection: first frame %T, want Join", f)
		return
	}
	if join.Version != feed.ProtocolVersion {
		c.logf("farm: dropping worker %q: protocol version %d, want %d", join.Name, join.Version, feed.ProtocolVersion)
		return
	}
	if join.Fingerprint != c.fingerprint {
		c.logf("farm: REFUSING worker %q: sweep fingerprint %s, coordinator has %s (mismatched config?)",
			join.Name, join.Fingerprint, c.fingerprint)
		return
	}

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		// Late joiner: the sweep is over; tell it so it exits cleanly.
		feed.NewEncoder(conn, nil).WriteEnd(&feed.End{})
		return
	}
	c.nextSession++
	s := &session{
		id:   c.nextSession,
		name: join.Name,
		conn: conn,
		enc:  feed.NewEncoder(conn, nil),
		held: map[int]bool{},
	}
	c.sessions[s.id] = s
	c.joined++
	grant := &feed.Grant{Session: s.id, UnitsTotal: uint64(c.unitsTotal), UnitsDone: uint64(c.doneUnits)}
	c.mu.Unlock()

	metrics.Counter(MetricWorkersJoined).Inc()
	c.logf("farm: worker %q joined as session %d", join.Name, s.id)
	defer c.dropSession(s)
	if s.send(func(e *feed.Encoder) error { return e.WriteGrant(grant) }) != nil {
		return
	}

	for {
		f, err := dec.Read()
		if err != nil {
			return
		}
		switch f := f.(type) {
		case *feed.Steal:
			if c.requestWork(s) != nil {
				return
			}
		case *feed.Heartbeat:
			c.renew(s)
		case *feed.Result:
			if err := c.acceptResult(s, f); err != nil {
				c.logf("farm: session %d (%q): %v; dropping connection", s.id, s.name, err)
				return
			}
		default:
			c.logf("farm: session %d sent unexpected %T; dropping connection", s.id, f)
			return
		}
	}
}

// requestWork answers a Steal: the front pending group, a parking slot
// if the queue is dry, or End if the run is over. The returned error
// is a send failure only.
func (c *Coordinator) requestWork(s *session) error {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return s.sendEnd()
	}
	if len(c.pending) == 0 {
		c.waiters = append(c.waiters, s)
		c.mu.Unlock()
		return nil
	}
	gid := c.pending[0]
	c.pending = c.pending[1:]
	lease := c.leaseLocked(gid, s)
	c.mu.Unlock()
	metrics.Counter(MetricLeasesGranted).Inc()
	return s.send(func(e *feed.Encoder) error { return e.WriteLease(lease) })
}

// leaseLocked assigns gid to s, bumping the fencing generation; mu
// must be held.
func (c *Coordinator) leaseLocked(gid int, s *session) *feed.Lease {
	g := &c.groups[gid]
	g.gen++
	c.nextLease++
	g.lease = c.nextLease
	g.session = s.id
	g.expiry = c.now().Add(c.ttl)
	s.held[gid] = true
	params := make([]int, 0, len(g.missing))
	for k := range g.missing {
		params = append(params, k)
	}
	sort.Ints(params)
	l := &feed.Lease{
		ID:        g.lease,
		Gen:       g.gen,
		Day:       uint32(gid / c.plan.NumBlocks()),
		Block:     uint32(gid % c.plan.NumBlocks()),
		TTLMillis: uint32(c.ttl / time.Millisecond),
		Params:    make([]uint16, len(params)),
	}
	for i, k := range params {
		l.Params[i] = uint16(k)
	}
	return l
}

// renew extends every lease s holds; called on worker heartbeats.
func (c *Coordinator) renew(s *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp := c.now().Add(c.ttl)
	for gid := range s.held {
		g := &c.groups[gid]
		if g.session == s.id && g.lease != 0 {
			g.expiry = exp
		}
	}
}

// acceptResult validates one Result against the group's current lease
// and journals it. A non-nil return is a protocol violation that
// drops the connection; fenced zombies and duplicates are dropped
// silently (counted) because the journal must only ever grow by
// currently-leased units.
func (c *Coordinator) acceptResult(s *session, r *feed.Result) error {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		metrics.Counter(MetricResultsLate).Inc()
		return nil
	}
	id := int(r.Unit)
	if id < 0 || id >= c.plan.NumUnits() {
		c.mu.Unlock()
		return fmt.Errorf("result for unit %d outside plan of %d units", id, c.plan.NumUnits())
	}
	u := c.plan.UnitFromID(id)
	gid := c.plan.GroupID(u.Day, u.Block)
	g := &c.groups[gid]
	if g.lease != r.Lease || g.gen != r.Gen || g.session != s.id {
		c.mu.Unlock()
		metrics.Counter(MetricResultsZombie).Inc()
		c.logf("farm: fenced zombie result for unit %d from session %d (lease %d gen %d; current lease %d gen %d session %d)",
			id, s.id, r.Lease, r.Gen, g.lease, g.gen, g.session)
		return nil
	}
	if !g.missing[u.Param] {
		c.mu.Unlock()
		metrics.Counter(MetricResultsDuplicate).Inc()
		return nil
	}
	lo, hi := c.plan.BlockRange(u.Block)
	if len(r.Rets) != hi-lo {
		c.mu.Unlock()
		return fmt.Errorf("result for unit %d carries %d rows, want %d", id, len(r.Rets), hi-lo)
	}
	if err := c.journal.Append(sweep.Entry{U: id, Rets: r.Rets}); err != nil {
		ss := c.finishLocked(false, err)
		c.mu.Unlock()
		for _, x := range ss {
			x.conn.Close()
		}
		return err
	}
	delete(g.missing, u.Param)
	g.expiry = c.now().Add(c.ttl) // progress is as good as a heartbeat
	if len(g.missing) == 0 {
		g.lease, g.session = 0, 0
		delete(s.held, gid)
	}
	c.doneUnits++
	c.accepted++
	for _, row := range r.Rets {
		c.trades += int64(len(row))
	}
	doneNow, total := c.doneUnits, c.unitsTotal
	var ended []*session
	if c.doneUnits == c.unitsTotal {
		ended = c.finishLocked(false, nil)
	} else if c.cc.Limit > 0 && c.accepted >= c.cc.Limit {
		ended = c.finishLocked(true, nil)
	}
	c.mu.Unlock()

	metrics.Counter(MetricResultsAccepted).Inc()
	if c.cc.Progress != nil {
		c.cc.Progress(doneNow, total)
	}
	if ended != nil {
		c.endSessions(ended)
	}
	return nil
}

// dropSession reclaims a disconnected worker's leases immediately —
// no TTL wait when the TCP connection itself tells us the holder is
// gone — and re-deals them to parked workers.
func (c *Coordinator) dropSession(s *session) {
	c.mu.Lock()
	delete(c.sessions, s.id)
	for i, w := range c.waiters {
		if w == s {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	reclaimed := 0
	for gid := range s.held {
		g := &c.groups[gid]
		if g.session == s.id && g.lease != 0 && len(g.missing) > 0 {
			g.lease, g.session = 0, 0
			c.pending = append([]int{gid}, c.pending...)
			reclaimed++
		}
		delete(s.held, gid)
	}
	finished := c.finished
	c.mu.Unlock()
	if reclaimed > 0 {
		metrics.Counter(MetricLeaseReclaims).Add(int64(reclaimed))
		c.logf("farm: session %d (%q) disconnected holding %d group(s); requeued", s.id, s.name, reclaimed)
		c.wakeWaiters()
	} else if !finished {
		c.logf("farm: session %d (%q) disconnected", s.id, s.name)
	}
}

// sweepLeases expires overdue leases (requeued at the front so lost
// work re-deals first) and heartbeats every session so parked workers
// know the coordinator is alive.
func (c *Coordinator) sweepLeases() {
	c.mu.Lock()
	now := c.now()
	var expired []int
	for gid := range c.groups {
		g := &c.groups[gid]
		if g.lease != 0 && len(g.missing) > 0 && g.expiry.Before(now) {
			g.lease, g.session = 0, 0
			expired = append(expired, gid)
		}
	}
	if len(expired) > 0 {
		c.pending = append(append([]int{}, expired...), c.pending...)
	}
	ss := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		ss = append(ss, s)
	}
	c.mu.Unlock()

	if len(expired) > 0 {
		metrics.Counter(MetricLeaseExpiries).Add(int64(len(expired)))
		c.logf("farm: %d lease(s) expired after %v of silence; reassigning", len(expired), c.ttl)
	}
	for _, s := range ss {
		s.send(func(e *feed.Encoder) error { return e.WriteHeartbeat(&feed.Heartbeat{Seq: s.id}) })
	}
	if len(expired) > 0 {
		c.wakeWaiters()
	}
}

// wakeWaiters pairs parked workers with pending groups until one side
// runs dry.
func (c *Coordinator) wakeWaiters() {
	for {
		c.mu.Lock()
		if c.finished {
			ws := c.waiters
			c.waiters = nil
			c.mu.Unlock()
			for _, s := range ws {
				s.sendEnd()
			}
			return
		}
		if len(c.waiters) == 0 || len(c.pending) == 0 {
			c.mu.Unlock()
			return
		}
		s := c.waiters[0]
		c.waiters = c.waiters[1:]
		gid := c.pending[0]
		c.pending = c.pending[1:]
		lease := c.leaseLocked(gid, s)
		c.mu.Unlock()
		metrics.Counter(MetricLeasesGranted).Inc()
		// A failed send is recovered by the session's own read loop
		// (its handler will drop and requeue the lease).
		s.send(func(e *feed.Encoder) error { return e.WriteLease(lease) })
	}
}
