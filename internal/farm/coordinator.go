package farm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/feed"
	"marketminer/internal/metrics"
	"marketminer/internal/sweep"
)

// ErrFenced is returned (wrapped) by Serve when a newer coordinator
// incarnation has claimed the manifest epoch: this process is stale
// and must stand down without touching the journal again.
var ErrFenced = errors.New("farm: coordinator fenced by a higher epoch")

// CoordinatorConfig configures one farm coordinator run.
type CoordinatorConfig struct {
	// Config is the sweep every worker must have been started with;
	// its fingerprint gates Join.
	Config backtest.Config
	// BlockSize is the pairs-per-block granularity; ≤ 0 means
	// sweep.DefaultBlockSize (fingerprinted, so workers must agree).
	BlockSize int
	// JournalPath is the checkpoint journal (required). A farm journal
	// is written as Shard{0, 1}, so mmreport -merge and even a local
	// single-host sweep.Run can pick up where a farm left off. The
	// coordinator manifest (JournalPath + ".coord") and liveness
	// heartbeat (JournalPath + ".coordhb") live alongside it.
	JournalPath string
	// LeaseTTL bounds how long a silent worker holds a group before it
	// is reassigned; ≤ 0 means DefaultLeaseTTL. After a coordinator
	// restart it is also the rejoin grace: a lease restored from the
	// manifest is held for its prior owner this long before expiring
	// into the pending queue.
	LeaseTTL time.Duration
	// SweepEvery is the expiry-check cadence; ≤ 0 means LeaseTTL/4.
	SweepEvery time.Duration
	// Limit, when > 0, pauses the run cleanly after accepting that many
	// results in this invocation; a later run with the same journal
	// resumes.
	Limit int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Progress, when non-nil, is called after every accepted unit with
	// (journaled, total) counts.
	Progress func(done, total int)
}

// CoordStats reports what one Serve invocation did.
type CoordStats struct {
	// UnitsTotal is the whole sweep's unit count; UnitsRestored were
	// already in the journal, UnitsExecuted were accepted from workers
	// now.
	UnitsTotal, UnitsRestored, UnitsExecuted int
	// Trades counts trades across all journaled units.
	Trades int64
	// WorkersJoined counts accepted Join handshakes (reconnects
	// included).
	WorkersJoined int
	// Epoch is the coordinator epoch this incarnation served under:
	// 1 for a fresh farm, prior+1 after every restart or takeover.
	Epoch uint64
	// Paused reports that Limit stopped the run before the sweep
	// finished.
	Paused bool
	// Recovered is non-nil when a damaged journal tail was healed
	// before serving.
	Recovered *sweep.Corruption
}

// Coordinator deals sweep groups to remote workers and journals their
// results. One Coordinator serves one sweep; create it with
// NewCoordinator and run it with Serve.
type Coordinator struct {
	cc           CoordinatorConfig
	plan         *sweep.Plan
	header       sweep.Header
	fingerprint  string
	ttl          time.Duration
	sweepEvery   time.Duration
	drainGrace   time.Duration
	manifestPath string
	hbPath       string
	now          func() time.Time // injectable clock (expiry tests)

	// mu guards everything below, including every session's held set.
	mu          sync.Mutex
	journal     *sweep.Journal
	epoch       uint64
	hbSeq       uint64
	groups      []groupState
	pending     []int // unleased gids with missing units; front = next out
	waiters     []*session
	sessions    map[uint64]*session
	nextSession uint64
	nextLease   uint64
	unitsTotal  int
	doneUnits   int // journaled units (restored + accepted)
	restored    int
	accepted    int
	trades      int64
	joined      int
	finished    bool
	paused      bool
	fatal       error
	done        chan struct{} // closed once finished
}

// groupState tracks one (day, pair-block) group's lease. The
// generation counter is bumped on every (re)assignment; a Result whose
// (lease, gen, session) triple does not match the current holder is a
// fenced zombie and is dropped.
type groupState struct {
	gen     uint64
	lease   uint64 // 0 = unleased
	session uint64
	expiry  time.Time
	missing map[int]bool // param indexes not yet journaled
}

// session is one connected worker. Its encoder is shared by the
// handler, the sweeper's heartbeats and waiter wake-ups; writeMu
// serializes them. held is guarded by Coordinator.mu, not writeMu.
type session struct {
	id      uint64
	name    string
	conn    net.Conn
	writeMu sync.Mutex
	enc     *feed.Encoder
	held    map[int]bool // gids leased to this session
}

func (s *session) send(f func(*feed.Encoder) error) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return f(s.enc)
}

func (s *session) sendEnd() error {
	return s.send(func(e *feed.Encoder) error { return e.WriteEnd(&feed.End{}) })
}

// NewCoordinator validates the configuration and derives the plan. The
// journal is opened by Serve.
func NewCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	if cc.JournalPath == "" {
		return nil, fmt.Errorf("farm: CoordinatorConfig.JournalPath is required")
	}
	runner, err := sweep.NewGroupRunner(cc.Config, cc.BlockSize)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cc:           cc,
		plan:         runner.Plan(),
		header:       sweep.PlanHeader(runner, sweep.Shard{Index: 0, Count: 1}),
		fingerprint:  runner.Fingerprint(),
		ttl:          cc.LeaseTTL,
		sweepEvery:   cc.SweepEvery,
		drainGrace:   3 * time.Second,
		manifestPath: coordManifestPath(cc.JournalPath),
		hbPath:       coordHeartbeatPath(cc.JournalPath),
		now:          time.Now,
		sessions:     map[uint64]*session{},
		done:         make(chan struct{}),
	}
	if c.ttl <= 0 {
		c.ttl = DefaultLeaseTTL
	}
	if c.sweepEvery <= 0 {
		c.sweepEvery = c.ttl / defaultTTLDivide
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cc.Logf != nil {
		c.cc.Logf(format, args...)
	}
}

// Serve opens (or resumes) the journal and manifest, claims the next
// coordinator epoch, accepts workers on l and deals groups until the
// sweep is complete, Limit is reached, ctx is cancelled, or a newer
// incarnation fences this one off. It owns l and closes it on the way
// out. Serve never computes a unit itself — a coordinator on a laptop
// can drive a room full of workers.
func (c *Coordinator) Serve(ctx context.Context, l net.Listener) (*CoordStats, error) {
	prior, err := readCoordManifest(c.manifestPath)
	if err != nil {
		l.Close()
		return nil, err
	}
	if prior != nil && prior.Fingerprint != c.fingerprint {
		l.Close()
		return nil, fmt.Errorf("farm: coordinator manifest %s records fingerprint %s, not this sweep's %s",
			c.manifestPath, prior.Fingerprint, c.fingerprint)
	}
	journal, done, recovered, err := sweep.OpenJournal(c.cc.JournalPath, c.header)
	if err != nil {
		l.Close()
		return nil, err
	}

	c.mu.Lock()
	c.journal = journal
	c.epoch = 1
	c.unitsTotal = c.plan.NumUnits()
	c.groups = make([]groupState, c.plan.NumGroups())
	np := c.plan.NumParams()
	for gid := range c.groups {
		g := &c.groups[gid]
		g.missing = make(map[int]bool, np)
		for k := 0; k < np; k++ {
			g.missing[k] = true
		}
	}
	for id, n := range done {
		u := c.plan.UnitFromID(id)
		delete(c.groups[c.plan.GroupID(u.Day, u.Block)].missing, u.Param)
		c.restored++
		c.doneUnits++
		c.trades += int64(n)
	}
	// Cold restart / takeover: claim the next epoch (fencing the
	// previous incarnation), resume the monotonic id counters, park
	// the manifest's live leases in a rejoin grace window, and rebuild
	// the pending deque in its journaled order.
	limbo := 0
	if prior != nil {
		c.epoch = prior.Epoch + 1
		c.nextSession = prior.NextSession
		c.nextLease = prior.NextLease
		grace := c.now().Add(c.ttl)
		for _, pl := range prior.Leases {
			if pl.Gid < 0 || pl.Gid >= len(c.groups) {
				continue
			}
			g := &c.groups[pl.Gid]
			if len(g.missing) == 0 || g.lease != 0 {
				continue
			}
			g.lease, g.gen, g.session, g.expiry = pl.Lease, pl.Gen, pl.Session, grace
			limbo++
		}
	}
	inPending := map[int]bool{}
	if prior != nil {
		for _, gid := range prior.Pending {
			if gid < 0 || gid >= len(c.groups) || inPending[gid] {
				continue
			}
			g := &c.groups[gid]
			if len(g.missing) > 0 && g.lease == 0 {
				c.pending = append(c.pending, gid)
				inPending[gid] = true
			}
		}
	}
	for gid := range c.groups {
		g := &c.groups[gid]
		if len(g.missing) > 0 && g.lease == 0 && !inPending[gid] {
			c.pending = append(c.pending, gid)
		}
	}
	complete := c.doneUnits == c.unitsTotal
	if complete {
		c.finishLocked(false, nil)
	}
	// Claim the epoch durably before serving anything: from this write
	// on, the previous incarnation's journal/manifest writes bounce off
	// the fence check.
	if err := c.saveManifestLocked(); err == nil {
		c.writeHeartbeatLocked()
	}
	c.mu.Unlock()

	if prior != nil {
		metrics.Counter(MetricCoordRestarts).Inc()
		c.logf("farm: coordinator restarted under epoch %d (%d lease(s) held for rejoin, TTL %v)",
			c.epoch, limbo, c.ttl)
	}
	if recovered != nil {
		c.logf("farm: healed journal tail: %v", recovered)
	}
	if complete {
		l.Close()
		err := journal.Close()
		return c.snapshotStats(recovered), err
	}
	c.logf("farm: serving %d/%d units (%d restored), lease TTL %v, epoch %d",
		c.unitsTotal-c.doneUnits, c.unitsTotal, c.restored, c.ttl, c.epoch)

	// Watchdog: on cancel, abort every session; on finish (from any
	// path), just close the listener so Accept returns.
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			ss := c.finishLocked(false, ctx.Err())
			c.mu.Unlock()
			for _, s := range ss {
				s.conn.Close()
			}
		case <-c.done:
		}
		l.Close()
	}()

	// Lease sweeper: expiry checks plus liveness heartbeats to every
	// session (parked workers use them to reset their idle timers) and
	// to the on-disk heartbeat file (standbys use it to judge when to
	// take over).
	go func() {
		t := time.NewTicker(c.sweepEvery)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.sweepLeases()
			}
		}
	}()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := l.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handle(conn)
		}()
	}
	// If the listener died before anything finished the run, that is a
	// real serving error, not a shutdown.
	c.mu.Lock()
	ss := c.finishLocked(false, acceptErr)
	c.mu.Unlock()
	for _, s := range ss {
		s.conn.Close()
	}
	wg.Wait()

	c.mu.Lock()
	// Final manifest, so a later run resumes exactly here. On a clean
	// finish or Limit pause every session was Ended — no lease can be
	// rejoined, so drop them all and let the next incarnation re-deal
	// immediately instead of waiting out a rejoin grace. An abort keeps
	// the lease table (its workers are alive and will rejoin); a fenced
	// stand-down skips the write — the newer incarnation owns the file.
	if c.fatal == nil {
		for gid := range c.groups {
			g := &c.groups[gid]
			if g.lease != 0 && len(g.missing) > 0 {
				g.lease, g.session = 0, 0
				c.pending = append(c.pending, gid)
			}
		}
	}
	c.saveManifestLocked()
	ferr := c.fatal
	c.mu.Unlock()
	if cerr := journal.Close(); ferr == nil {
		ferr = cerr
	}
	return c.snapshotStats(recovered), ferr
}

// snapshotStats snapshots run stats under mu.
func (c *Coordinator) snapshotStats(recovered *sweep.Corruption) *CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &CoordStats{
		UnitsTotal:    c.unitsTotal,
		UnitsRestored: c.restored,
		UnitsExecuted: c.accepted,
		Trades:        c.trades,
		WorkersJoined: c.joined,
		Epoch:         c.epoch,
		Paused:        c.paused,
		Recovered:     recovered,
	}
}

// fenceCheckLocked verifies this incarnation still owns the manifest
// epoch; it must be called before every durable write (journal append,
// manifest replace). A manifest carrying a higher epoch means a
// standby or restart has taken over: the write is refused, counted,
// and the coordinator stands down. An unreadable manifest never blocks
// the primary — fencing fails open, and the journal's CRC framing plus
// merge-level duplicate dropping keep even a lost race benign.
func (c *Coordinator) fenceCheckLocked() error {
	m, err := readCoordManifest(c.manifestPath)
	if err != nil || m == nil {
		return nil
	}
	if m.Epoch > c.epoch {
		metrics.Counter(MetricCoordEpochFences).Inc()
		c.logf("farm: write refused: coordinator epoch %d fenced by epoch %d", c.epoch, m.Epoch)
		return fmt.Errorf("%w (own epoch %d, manifest epoch %d)", ErrFenced, c.epoch, m.Epoch)
	}
	return nil
}

// buildManifestLocked snapshots the durable coordinator state.
func (c *Coordinator) buildManifestLocked() *coordManifest {
	m := &coordManifest{
		Schema:      CoordManifestSchema,
		Fingerprint: c.fingerprint,
		Epoch:       c.epoch,
		NextSession: c.nextSession,
		NextLease:   c.nextLease,
		Pending:     append([]int{}, c.pending...),
	}
	for gid := range c.groups {
		g := &c.groups[gid]
		if g.lease != 0 && len(g.missing) > 0 {
			m.Leases = append(m.Leases, coordLease{Gid: gid, Lease: g.lease, Gen: g.gen, Session: g.session})
		}
	}
	return m
}

// saveManifestLocked fence-checks, then atomically replaces the
// coordinator manifest. A fencing violation is returned (fatal); an
// I/O failure is logged but tolerated — the manifest is a recovery
// accelerator, the journal remains the ground truth.
func (c *Coordinator) saveManifestLocked() error {
	if err := c.fenceCheckLocked(); err != nil {
		return err
	}
	if err := writeCoordManifest(c.manifestPath, c.buildManifestLocked()); err != nil {
		c.logf("farm: coordinator manifest write failed: %v", err)
	}
	return nil
}

// appendFencedLocked fence-checks, then journals one entry.
func (c *Coordinator) appendFencedLocked(e sweep.Entry) error {
	if err := c.fenceCheckLocked(); err != nil {
		return err
	}
	return c.journal.Append(e)
}

// writeHeartbeatLocked bumps and replaces the liveness beacon.
func (c *Coordinator) writeHeartbeatLocked() {
	c.hbSeq++
	if err := writeCoordHeartbeat(c.hbPath, coordHeartbeat{Epoch: c.epoch, Seq: c.hbSeq}); err != nil {
		c.logf("farm: heartbeat write failed: %v", err)
	}
}

// standDown transitions to the failed state (typically on a fencing
// violation) and hard-closes every session so their handlers unwind.
func (c *Coordinator) standDown(err error) {
	c.mu.Lock()
	ss := c.finishLocked(false, err)
	c.mu.Unlock()
	for _, s := range ss {
		s.conn.Close()
	}
}

// finishLocked transitions to the finished state exactly once and
// returns the sessions to notify; mu must be held. The caller decides
// how to notify (End + drain deadline on clean finish, Close on
// abort).
func (c *Coordinator) finishLocked(paused bool, err error) []*session {
	if c.finished {
		return nil
	}
	c.finished = true
	c.paused = paused
	c.fatal = err
	close(c.done)
	c.waiters = nil
	out := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		out = append(out, s)
	}
	return out
}

// endSessions notifies workers of a clean finish: End, then a read
// deadline so a wedged peer cannot hold Serve open past the grace
// period. Conns are kept open until the worker hangs up (or the
// deadline) so the End frame is never lost to a reset.
func (c *Coordinator) endSessions(ss []*session) {
	for _, s := range ss {
		s.conn.SetDeadline(time.Now().Add(c.drainGrace))
		s.sendEnd()
	}
}

// refuse sends an explicit rejection so the worker can tell a fatal
// misconfiguration from a transient connection failure.
func refuse(conn net.Conn, code uint16, reason string) {
	feed.NewEncoder(conn, nil).WriteRefuse(&feed.Refuse{Code: code, Reason: reason})
}

// handle runs one worker connection: Join/Grant handshake (with the
// rejoin re-confirmation path), then a Steal/Heartbeat/Result read
// loop until the peer drops or the run ends.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	dec := feed.NewDecoder(conn)
	f, err := dec.Read()
	if err != nil {
		return
	}
	join, ok := f.(*feed.Join)
	if !ok {
		c.logf("farm: dropping connection: first frame %T, want Join", f)
		return
	}
	if join.Version != feed.ProtocolVersion {
		c.logf("farm: REFUSING worker %q: protocol version %d, want %d", join.Name, join.Version, feed.ProtocolVersion)
		refuse(conn, feed.RefuseVersion,
			fmt.Sprintf("protocol version %d, coordinator speaks %d", join.Version, feed.ProtocolVersion))
		return
	}
	if join.Fingerprint != c.fingerprint {
		c.logf("farm: REFUSING worker %q: sweep fingerprint %s, coordinator has %s (mismatched config?)",
			join.Name, join.Fingerprint, c.fingerprint)
		refuse(conn, feed.RefuseFingerprint,
			fmt.Sprintf("sweep fingerprint %s, coordinator has %s", join.Fingerprint, c.fingerprint))
		return
	}

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		// Late joiner: the sweep is over; tell it so it exits cleanly.
		feed.NewEncoder(conn, nil).WriteEnd(&feed.End{})
		return
	}
	c.nextSession++
	s := &session{
		id:   c.nextSession,
		name: join.Name,
		conn: conn,
		enc:  feed.NewEncoder(conn, nil),
		held: map[int]bool{},
	}
	c.sessions[s.id] = s
	c.joined++
	// Rejoin: re-confirm the groups the prior session still holds (so
	// the worker's in-flight compute and unacked results survive the
	// coordinator's death) and reclaim the ones it no longer claims.
	var reconfirm []*feed.Lease
	reclaimed := 0
	if join.PriorSession != 0 {
		held := make(map[uint64]bool, len(join.HeldLeases))
		for _, id := range join.HeldLeases {
			held[id] = true
		}
		for gid := range c.groups {
			g := &c.groups[gid]
			if g.lease == 0 || g.session != join.PriorSession || len(g.missing) == 0 {
				continue
			}
			if held[g.lease] {
				reconfirm = append(reconfirm, c.leaseLocked(gid, s))
			} else {
				g.lease, g.session = 0, 0
				c.pending = append([]int{gid}, c.pending...)
				reclaimed++
			}
		}
	}
	ferr := error(nil)
	if len(reconfirm) > 0 || reclaimed > 0 {
		ferr = c.saveManifestLocked()
	}
	grant := &feed.Grant{Session: s.id, Epoch: c.epoch, UnitsTotal: uint64(c.unitsTotal), UnitsDone: uint64(c.doneUnits)}
	c.mu.Unlock()
	if ferr != nil {
		c.standDown(ferr)
		return
	}

	metrics.Counter(MetricWorkersJoined).Inc()
	if join.PriorSession != 0 {
		metrics.Counter(MetricCoordRejoins).Inc()
		c.logf("farm: worker %q rejoined as session %d (was session %d under epoch %d; %d group(s) re-confirmed, %d reclaimed)",
			join.Name, s.id, join.PriorSession, join.PriorEpoch, len(reconfirm), reclaimed)
	} else {
		c.logf("farm: worker %q joined as session %d", join.Name, s.id)
	}
	defer c.dropSession(s)
	if s.send(func(e *feed.Encoder) error { return e.WriteGrant(grant) }) != nil {
		return
	}
	for _, l := range reconfirm {
		if s.send(func(e *feed.Encoder) error { return e.WriteLease(l) }) != nil {
			return
		}
		metrics.Counter(MetricLeasesGranted).Inc()
	}
	if reclaimed > 0 {
		c.wakeWaiters()
	}

	for {
		f, err := dec.Read()
		if err != nil {
			return
		}
		switch f := f.(type) {
		case *feed.Steal:
			if c.requestWork(s) != nil {
				return
			}
		case *feed.Heartbeat:
			c.renew(s)
		case *feed.Result:
			if err := c.acceptResult(s, f); err != nil {
				c.logf("farm: session %d (%q): %v; dropping connection", s.id, s.name, err)
				return
			}
		default:
			c.logf("farm: session %d sent unexpected %T; dropping connection", s.id, f)
			return
		}
	}
}

// requestWork answers a Steal: the front pending group, a parking slot
// if the queue is dry, or End if the run is over. The returned error
// is a send failure or a fencing stand-down.
func (c *Coordinator) requestWork(s *session) error {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return s.sendEnd()
	}
	if len(c.pending) == 0 {
		// A rejoined worker can Steal while already parked (its
		// unsolicited re-confirm leases desynchronize the Steal/Lease
		// cadence); never park the same session twice.
		parked := false
		for _, w := range c.waiters {
			if w == s {
				parked = true
				break
			}
		}
		if !parked {
			c.waiters = append(c.waiters, s)
		}
		c.mu.Unlock()
		return nil
	}
	gid := c.pending[0]
	c.pending = c.pending[1:]
	lease := c.leaseLocked(gid, s)
	ferr := c.saveManifestLocked()
	c.mu.Unlock()
	if ferr != nil {
		c.standDown(ferr)
		return ferr
	}
	metrics.Counter(MetricLeasesGranted).Inc()
	return s.send(func(e *feed.Encoder) error { return e.WriteLease(lease) })
}

// leaseLocked assigns gid to s, bumping the fencing generation; mu
// must be held.
func (c *Coordinator) leaseLocked(gid int, s *session) *feed.Lease {
	g := &c.groups[gid]
	g.gen++
	c.nextLease++
	g.lease = c.nextLease
	g.session = s.id
	g.expiry = c.now().Add(c.ttl)
	s.held[gid] = true
	params := make([]int, 0, len(g.missing))
	for k := range g.missing {
		params = append(params, k)
	}
	sort.Ints(params)
	l := &feed.Lease{
		ID:        g.lease,
		Gen:       g.gen,
		Day:       uint32(gid / c.plan.NumBlocks()),
		Block:     uint32(gid % c.plan.NumBlocks()),
		TTLMillis: uint32(c.ttl / time.Millisecond),
		Params:    make([]uint16, len(params)),
	}
	for i, k := range params {
		l.Params[i] = uint16(k)
	}
	return l
}

// renew extends every lease s holds; called on worker heartbeats.
func (c *Coordinator) renew(s *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp := c.now().Add(c.ttl)
	for gid := range s.held {
		g := &c.groups[gid]
		if g.session == s.id && g.lease != 0 {
			g.expiry = exp
		}
	}
}

// acceptResult validates one Result against the coordinator epoch and
// the group's current lease, journals it, and acks it back so the
// worker can drop its redelivery copy. A non-nil return is a protocol
// violation or fencing stand-down that drops the connection; fenced
// zombies and duplicates are dropped silently (counted) because the
// journal must only ever grow by currently-leased units.
func (c *Coordinator) acceptResult(s *session, r *feed.Result) error {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		metrics.Counter(MetricResultsLate).Inc()
		return nil
	}
	id := int(r.Unit)
	if id < 0 || id >= c.plan.NumUnits() {
		c.mu.Unlock()
		return fmt.Errorf("result for unit %d outside plan of %d units", id, c.plan.NumUnits())
	}
	if r.Epoch != c.epoch {
		c.mu.Unlock()
		metrics.Counter(MetricResultsZombie).Inc()
		c.logf("farm: fenced stale-epoch result for unit %d from session %d (epoch %d, current %d)",
			id, s.id, r.Epoch, c.epoch)
		return nil
	}
	u := c.plan.UnitFromID(id)
	gid := c.plan.GroupID(u.Day, u.Block)
	g := &c.groups[gid]
	if g.lease != r.Lease || g.gen != r.Gen || g.session != s.id {
		c.mu.Unlock()
		metrics.Counter(MetricResultsZombie).Inc()
		c.logf("farm: fenced zombie result for unit %d from session %d (lease %d gen %d; current lease %d gen %d session %d)",
			id, s.id, r.Lease, r.Gen, g.lease, g.gen, g.session)
		return nil
	}
	if !g.missing[u.Param] {
		c.mu.Unlock()
		metrics.Counter(MetricResultsDuplicate).Inc()
		// Already journaled (e.g. the ack for it was lost with the old
		// connection): ack again so the worker clears its buffer.
		s.send(func(e *feed.Encoder) error { return e.WriteResultAck(&feed.ResultAck{Unit: r.Unit}) })
		return nil
	}
	lo, hi := c.plan.BlockRange(u.Block)
	if len(r.Rets) != hi-lo {
		c.mu.Unlock()
		return fmt.Errorf("result for unit %d carries %d rows, want %d", id, len(r.Rets), hi-lo)
	}
	if err := c.appendFencedLocked(sweep.Entry{U: id, Rets: r.Rets}); err != nil {
		ss := c.finishLocked(false, err)
		c.mu.Unlock()
		for _, x := range ss {
			x.conn.Close()
		}
		return err
	}
	delete(g.missing, u.Param)
	g.expiry = c.now().Add(c.ttl) // progress is as good as a heartbeat
	groupDone := len(g.missing) == 0
	if groupDone {
		g.lease, g.session = 0, 0
		delete(s.held, gid)
	}
	c.doneUnits++
	c.accepted++
	for _, row := range r.Rets {
		c.trades += int64(len(row))
	}
	recovered := r.Flags&feed.ResultRecovered != 0
	doneNow, total := c.doneUnits, c.unitsTotal
	var ended []*session
	ferr := error(nil)
	if c.doneUnits == c.unitsTotal {
		ended = c.finishLocked(false, nil)
	} else if c.cc.Limit > 0 && c.accepted >= c.cc.Limit {
		ended = c.finishLocked(true, nil)
	} else if groupDone {
		ferr = c.saveManifestLocked()
	}
	c.mu.Unlock()

	metrics.Counter(MetricResultsAccepted).Inc()
	if recovered {
		metrics.Counter(MetricCoordRecovered).Inc()
	}
	s.send(func(e *feed.Encoder) error { return e.WriteResultAck(&feed.ResultAck{Unit: r.Unit}) })
	if c.cc.Progress != nil {
		c.cc.Progress(doneNow, total)
	}
	if ended != nil {
		c.endSessions(ended)
	}
	if ferr != nil {
		c.standDown(ferr)
		return ferr
	}
	return nil
}

// dropSession reclaims a disconnected worker's leases immediately —
// no TTL wait when the TCP connection itself tells us the holder is
// gone — and re-deals them to parked workers.
func (c *Coordinator) dropSession(s *session) {
	c.mu.Lock()
	delete(c.sessions, s.id)
	ws := c.waiters[:0]
	for _, w := range c.waiters {
		if w != s {
			ws = append(ws, w)
		}
	}
	c.waiters = ws
	reclaimed := 0
	for gid := range s.held {
		g := &c.groups[gid]
		if g.session == s.id && g.lease != 0 && len(g.missing) > 0 {
			g.lease, g.session = 0, 0
			c.pending = append([]int{gid}, c.pending...)
			reclaimed++
		}
		delete(s.held, gid)
	}
	ferr := error(nil)
	if reclaimed > 0 && !c.finished {
		ferr = c.saveManifestLocked()
	}
	finished := c.finished
	c.mu.Unlock()
	if ferr != nil {
		c.standDown(ferr)
		return
	}
	if reclaimed > 0 {
		metrics.Counter(MetricLeaseReclaims).Add(int64(reclaimed))
		c.logf("farm: session %d (%q) disconnected holding %d group(s); requeued", s.id, s.name, reclaimed)
		c.wakeWaiters()
	} else if !finished {
		c.logf("farm: session %d (%q) disconnected", s.id, s.name)
	}
}

// sweepLeases expires overdue leases (requeued at the front so lost
// work re-deals first), heartbeats every session so parked workers
// know the coordinator is alive, and refreshes the on-disk liveness
// beacon. It is also the idle-path fencing probe: a stale coordinator
// with no result traffic still notices a takeover within one tick.
func (c *Coordinator) sweepLeases() {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	if err := c.fenceCheckLocked(); err != nil {
		ss := c.finishLocked(false, err)
		c.mu.Unlock()
		for _, s := range ss {
			s.conn.Close()
		}
		return
	}
	now := c.now()
	var expired []int
	for gid := range c.groups {
		g := &c.groups[gid]
		if g.lease != 0 && len(g.missing) > 0 && g.expiry.Before(now) {
			g.lease, g.session = 0, 0
			expired = append(expired, gid)
		}
	}
	ferr := error(nil)
	if len(expired) > 0 {
		c.pending = append(append([]int{}, expired...), c.pending...)
		ferr = c.saveManifestLocked()
	}
	c.writeHeartbeatLocked()
	ss := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		ss = append(ss, s)
	}
	c.mu.Unlock()
	if ferr != nil {
		c.standDown(ferr)
		return
	}

	if len(expired) > 0 {
		metrics.Counter(MetricLeaseExpiries).Add(int64(len(expired)))
		c.logf("farm: %d lease(s) expired after %v of silence; reassigning", len(expired), c.ttl)
	}
	for _, s := range ss {
		s.send(func(e *feed.Encoder) error { return e.WriteHeartbeat(&feed.Heartbeat{Seq: s.id}) })
	}
	if len(expired) > 0 {
		c.wakeWaiters()
	}
}

// wakeWaiters pairs parked workers with pending groups until one side
// runs dry.
func (c *Coordinator) wakeWaiters() {
	for {
		c.mu.Lock()
		if c.finished {
			ws := c.waiters
			c.waiters = nil
			c.mu.Unlock()
			for _, s := range ws {
				s.sendEnd()
			}
			return
		}
		if len(c.waiters) == 0 || len(c.pending) == 0 {
			c.mu.Unlock()
			return
		}
		s := c.waiters[0]
		c.waiters = c.waiters[1:]
		gid := c.pending[0]
		c.pending = c.pending[1:]
		lease := c.leaseLocked(gid, s)
		ferr := c.saveManifestLocked()
		c.mu.Unlock()
		if ferr != nil {
			c.standDown(ferr)
			return
		}
		metrics.Counter(MetricLeasesGranted).Inc()
		// A failed send is recovered by the session's own read loop
		// (its handler will drop and requeue the lease).
		s.send(func(e *feed.Encoder) error { return e.WriteLease(lease) })
	}
}
