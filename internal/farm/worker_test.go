package farm

import (
	"context"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"
)

// deadAddr binds and immediately closes a listener, yielding an
// address that refuses connections for the rest of the test.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// recordBackoffs runs a worker against a dead coordinator with a
// recording Sleep fake and a seeded jitter rng, returning the exact
// redial schedule it chose.
func recordBackoffs(t *testing.T, addr string, seed int64, attempts int) []time.Duration {
	t.Helper()
	var waits []time.Duration
	st, err := RunWorker(context.Background(), WorkerConfig{
		Config:          mustFarmConfig(),
		BlockSize:       farmBlockSize,
		Name:            "jitter-probe",
		Addr:            addr,
		ReconnectWait:   80 * time.Millisecond,
		MaxJoinFailures: attempts,
		Jitter:          rand.New(rand.NewSource(seed)),
		Sleep: func(ctx context.Context, d time.Duration) bool {
			waits = append(waits, d)
			return true
		},
	})
	if err == nil {
		t.Fatal("worker against a dead coordinator returned nil error")
	}
	if !reflect.DeepEqual(st.Backoffs, waits) {
		t.Fatalf("WorkerStats.Backoffs %v disagree with the slept schedule %v", st.Backoffs, waits)
	}
	return waits
}

// TestFarmWorkerBackoffJitterDeterministic pins the reconnect schedule:
// jitter is drawn from an injectable seeded rng (same seed, same exact
// schedule; different seed, different schedule), every delay lands in
// [base/2, base], and the base doubles per failure up to the 32× cap —
// the same contract feed.Collector's reconnect path keeps, so a farm of
// workers orphaned together spreads its redials instead of thundering.
func TestFarmWorkerBackoffJitterDeterministic(t *testing.T) {
	addr := deadAddr(t)
	const attempts = 9
	a := recordBackoffs(t, addr, 7, attempts)
	b := recordBackoffs(t, addr, 7, attempts)
	c := recordBackoffs(t, addr, 8, attempts)

	if len(a) != attempts-1 {
		t.Fatalf("recorded %d backoffs, want one per retry = %d", len(a), attempts-1)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced the identical schedule %v", a)
	}

	base := 80 * time.Millisecond
	for i, d := range a {
		if d < base/2 || d > base {
			t.Errorf("backoff %d = %v outside the jitter window [%v, %v]", i, d, base/2, base)
		}
		if base *= 2; base > 32*80*time.Millisecond {
			base = 32 * 80 * time.Millisecond
		}
	}
	// The cap must actually have been reached within the budget.
	if last := a[len(a)-1]; last > 32*80*time.Millisecond {
		t.Errorf("final backoff %v exceeds the 32× cap", last)
	}
}
