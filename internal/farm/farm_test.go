package farm

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"marketminer/internal/backtest"
	"marketminer/internal/chaos"
	"marketminer/internal/feed"
	"marketminer/internal/market"
	"marketminer/internal/metrics"
	"marketminer/internal/strategy"
	"marketminer/internal/sweep"
	"marketminer/internal/taq"
)

// mustFarmConfig is the one sweep configuration every farm test (and
// the crash-helper subprocess) shares: the fingerprint binds them all
// to the same journals and coordinators.
func mustFarmConfig() backtest.Config {
	uni, err := taq.NewUniverse(taq.DefaultSymbols()[:6])
	if err != nil {
		panic(err)
	}
	mc := market.DefaultConfig()
	mc.Universe = uni
	mc.Days = 2
	mc.Seed = 42
	return backtest.Config{Market: mc, Levels: strategy.BaseGrid()[:2], Workers: 2}
}

const farmBlockSize = 4

// farmWant computes the uninterrupted single-host reference result
// once per test binary.
var (
	wantOnce   sync.Once
	wantResult *backtest.Result
	wantErr    error
)

func farmWant(t *testing.T) *backtest.Result {
	t.Helper()
	wantOnce.Do(func() {
		wantResult, wantErr = backtest.Run(context.Background(), mustFarmConfig())
	})
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	return wantResult
}

// sameFarmResult asserts bit-identical output through the same JSON
// serialisation mmreport consumes — the farm acceptance criterion.
func sameFarmResult(t *testing.T, want, got *backtest.Result) {
	t.Helper()
	if got.TradeCount != want.TradeCount {
		t.Fatalf("merged farm result has %d trades, want %d", got.TradeCount, want.TradeCount)
	}
	if !reflect.DeepEqual(got.Series, want.Series) {
		t.Fatal("merged farm return series differ from single-host run")
	}
	var wb, gb bytes.Buffer
	if err := backtest.SaveJSON(&wb, want); err != nil {
		t.Fatal(err)
	}
	if err := backtest.SaveJSON(&gb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatal("serialised farm result is not byte-identical to single-host run")
	}
}

// fakeWorker speaks raw farm frames so tests can violate the protocol
// in ways the real worker never would (going silent, delivering under
// a fenced lease).
type fakeWorker struct {
	t     *testing.T
	conn  net.Conn
	enc   *feed.Encoder
	dec   *feed.Decoder
	epoch uint64 // from the Grant; Results must carry it or be fenced
}

func joinFake(t *testing.T, addr, name, fingerprint string) *fakeWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fw := &fakeWorker{t: t, conn: conn, enc: feed.NewEncoder(conn, nil), dec: feed.NewDecoder(conn)}
	if err := fw.enc.WriteJoin(&feed.Join{Version: feed.ProtocolVersion, Name: name, Fingerprint: fingerprint}); err != nil {
		t.Fatal(err)
	}
	g, ok := fw.read().(*feed.Grant)
	if !ok {
		t.Fatalf("fake worker %s: handshake did not yield a Grant", name)
	}
	fw.epoch = g.Epoch
	return fw
}

func (f *fakeWorker) read() feed.Frame {
	f.t.Helper()
	f.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	fr, err := f.dec.Read()
	if err != nil {
		f.t.Fatalf("fake worker read: %v", err)
	}
	return fr
}

// steal requests work and waits out interleaved heartbeats for the
// lease.
func (f *fakeWorker) steal() *feed.Lease {
	f.t.Helper()
	if err := f.enc.WriteSteal(&feed.Steal{}); err != nil {
		f.t.Fatal(err)
	}
	for {
		switch fr := f.read().(type) {
		case *feed.Heartbeat:
		case *feed.ResultAck:
		case *feed.Lease:
			return fr
		default:
			f.t.Fatalf("steal answered with %T, want Lease", fr)
		}
	}
}

func waitCounter(t *testing.T, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if metrics.Counter(name).Value() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("counter %s stuck at %d, want ≥ %d", name, metrics.Counter(name).Value(), want)
}

// TestFarmLeaseExpiryFencesZombies is the lease state machine test: a
// worker goes silent holding a group's units, the TTL (driven by an
// injected clock) expires it, the group is re-leased to a successor
// with a bumped generation, and the zombie's late delivery is rejected
// and counted — while the successor's delivery of the very same unit
// lands, and a redelivery after that counts as a duplicate.
func TestFarmLeaseExpiryFencesZombies(t *testing.T) {
	cfg := mustFarmConfig()
	cc := CoordinatorConfig{
		Config:      cfg,
		BlockSize:   farmBlockSize,
		JournalPath: filepath.Join(t.TempDir(), "farm.journal"),
		LeaseTTL:    time.Minute, // far beyond the test's real runtime
		SweepEvery:  5 * time.Millisecond,
		Logf:        t.Logf,
	}
	c, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	// The sweeper ticks in real time but judges expiry on this clock.
	var clock atomic.Int64
	clock.Store(time.Now().UnixNano())
	c.now = func() time.Time { return time.Unix(0, clock.Load()) }

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		_, err := c.Serve(ctx, l)
		serveDone <- err
	}()

	expBase := metrics.Counter(MetricLeaseExpiries).Value()
	zomBase := metrics.Counter(MetricResultsZombie).Value()
	dupBase := metrics.Counter(MetricResultsDuplicate).Value()
	accBase := metrics.Counter(MetricResultsAccepted).Value()

	zombie := joinFake(t, l.Addr().String(), "zombie", c.fingerprint)
	defer zombie.conn.Close()
	leaseA := zombie.steal()
	if len(leaseA.Params) == 0 {
		t.Fatal("lease carries no units")
	}

	// The zombie dies holding N = len(Params) units — silently: the
	// connection stays open (a partition, not a crash), so only the
	// TTL can free the group.
	clock.Add(int64(cc.LeaseTTL + time.Second))
	waitCounter(t, MetricLeaseExpiries, expBase+1)

	successor := joinFake(t, l.Addr().String(), "successor", c.fingerprint)
	defer successor.conn.Close()
	leaseB := successor.steal()
	if leaseB.Day != leaseA.Day || leaseB.Block != leaseA.Block {
		t.Fatalf("successor got group (%d,%d), want the reclaimed (%d,%d)", leaseB.Day, leaseB.Block, leaseA.Day, leaseA.Block)
	}
	if leaseB.Gen <= leaseA.Gen {
		t.Fatalf("reassignment did not bump generation: %d → %d", leaseA.Gen, leaseB.Gen)
	}
	if leaseB.ID == leaseA.ID {
		t.Fatal("reassignment reused the lease id")
	}
	if !reflect.DeepEqual(leaseB.Params, leaseA.Params) {
		t.Fatalf("reassigned lease re-deals %v, want all of the zombie's %v", leaseB.Params, leaseA.Params)
	}

	lo, hi := c.plan.BlockRange(int(leaseA.Block))
	rows := make([][]float64, hi-lo)
	unit := uint64(c.plan.UnitID(sweep.Unit{Day: int(leaseA.Day), Block: int(leaseA.Block), Param: int(leaseA.Params[0])}))

	// The fenced generation's late result is rejected and counted...
	if err := zombie.enc.WriteResult(&feed.Result{Lease: leaseA.ID, Gen: leaseA.Gen, Epoch: zombie.epoch, Unit: unit, Rets: rows}); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, MetricResultsZombie, zomBase+1)

	// ...and did not consume the unit: the current holder's lands.
	if err := successor.enc.WriteResult(&feed.Result{Lease: leaseB.ID, Gen: leaseB.Gen, Epoch: successor.epoch, Unit: unit, Rets: rows}); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, MetricResultsAccepted, accBase+1)

	// Redelivering a journaled unit under a live lease is a duplicate,
	// not a zombie, and is dropped without growing the journal.
	if err := successor.enc.WriteResult(&feed.Result{Lease: leaseB.ID, Gen: leaseB.Gen, Epoch: successor.epoch, Unit: unit, Rets: rows}); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, MetricResultsDuplicate, dupBase+1)
	if got := metrics.Counter(MetricResultsAccepted).Value(); got != accBase+1 {
		t.Fatalf("accepted counter moved to %d on duplicate, want %d", got, accBase+1)
	}

	cancel()
	if err := <-serveDone; err == nil {
		t.Fatal("cancelled Serve returned nil error")
	}
}

// TestFarmWorkerCrashHelper is not a test: it is the doomed worker
// subprocess for the e2e below, selected by environment variable. It
// SIGKILLs itself mid-group — no deferred closes, no goodbye frame —
// after delivering a few units.
func TestFarmWorkerCrashHelper(t *testing.T) {
	if os.Getenv("MM_FARM_WORKER_HELPER") != "1" {
		t.Skip("helper process only")
	}
	killAfter, err := strconv.Atoi(os.Getenv("MM_FARM_KILL_AFTER"))
	if err != nil {
		t.Fatal(err)
	}
	RunWorker(context.Background(), WorkerConfig{
		Config:    mustFarmConfig(),
		BlockSize: farmBlockSize,
		Name:      "doomed",
		Addr:      os.Getenv("MM_FARM_ADDR"),
		OnUnit: func(done int) {
			if done >= killAfter {
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			}
		},
	})
	t.Fatal("helper survived its own SIGKILL")
}

// TestFarmSIGKILLChaosByteIdentical is the acceptance e2e: a worker is
// SIGKILLed mid-unit, the survivor finishes the sweep over a link with
// deterministic corruption and cuts injected, and the merged journal
// is byte-identical to an uninterrupted single-host backtest.Run.
func TestFarmSIGKILLChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := mustFarmConfig()
	want := farmWant(t)
	journal := filepath.Join(t.TempDir(), "farm.journal")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	var accepted atomic.Int64
	c, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		BlockSize:   farmBlockSize,
		JournalPath: journal,
		LeaseTTL:    2 * time.Second,
		Logf:        t.Logf,
		Progress:    func(done, total int) { accepted.Store(int64(done)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	type serveOut struct {
		stats *CoordStats
		err   error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		st, err := c.Serve(context.Background(), l)
		serveCh <- serveOut{st, err}
	}()

	// Phase 1: the doomed worker delivers a few units, then SIGKILLs
	// itself mid-group, lease in hand.
	cmd := exec.Command(os.Args[0], "-test.run=TestFarmWorkerCrashHelper", "-test.v")
	cmd.Env = append(os.Environ(),
		"MM_FARM_WORKER_HELPER=1",
		"MM_FARM_ADDR="+addr,
		"MM_FARM_KILL_AFTER=4",
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("doomed worker exited cleanly; expected SIGKILL mid-sweep:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != -1 {
		t.Fatalf("doomed worker died of %v, want a signal:\n%s", err, out)
	}
	if accepted.Load() == 0 {
		t.Fatal("doomed worker was killed before delivering anything; raise MM_FARM_KILL_AFTER")
	}

	// Phase 2: the survivor finishes over a chaotic link — every few
	// KB a flipped byte (CRC-detected, connection dropped) or a hard
	// cut, each forcing a redial and a re-leased group.
	spec, err := chaos.ParseSpec("seed=11,corrupt=16384,cut=65536")
	if err != nil {
		t.Fatal(err)
	}
	ch := chaos.New(spec)
	baseDial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	workerDone := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), WorkerConfig{
			Config:          cfg,
			BlockSize:       farmBlockSize,
			Name:            "survivor",
			Dial:            ch.Dialer(baseDial),
			HeartbeatEvery:  100 * time.Millisecond,
			ReconnectWait:   20 * time.Millisecond,
			MaxJoinFailures: 100,
			Logf:            t.Logf,
		})
		workerDone <- err
	}()

	var res serveOut
	select {
	case res = <-serveCh:
	case <-time.After(3 * time.Minute):
		t.Fatal("farm did not finish within 3 minutes")
	}
	if res.err != nil {
		t.Fatalf("coordinator: %v", res.err)
	}
	st := res.stats
	if st.Paused || st.UnitsRestored+st.UnitsExecuted != st.UnitsTotal {
		t.Fatalf("farm did not complete: %+v", st)
	}
	if st.WorkersJoined < 2 {
		t.Fatalf("expected ≥ 2 worker joins (doomed + survivor), got %d", st.WorkersJoined)
	}
	select {
	case <-workerDone:
	case <-time.After(time.Minute):
		t.Fatal("survivor worker did not exit after End")
	}

	got, _, err := sweep.MergeFiles([]string{journal})
	if err != nil {
		t.Fatal(err)
	}
	sameFarmResult(t, want, got)
}

// TestFarmLimitResumeExecutesOnlyLostUnits pins the checkpoint
// contract: a Limit-paused farm run journals exactly Limit units, a
// second run with the same journal restores them and executes only the
// remainder, and a third run finds nothing left to do.
func TestFarmLimitResumeExecutesOnlyLostUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := mustFarmConfig()
	want := farmWant(t)
	journal := filepath.Join(t.TempDir(), "farm.journal")
	const limit = 5

	run := func(limit int) *CoordStats {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCoordinator(CoordinatorConfig{
			Config:      cfg,
			BlockSize:   farmBlockSize,
			JournalPath: journal,
			LeaseTTL:    5 * time.Second,
			Limit:       limit,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wctx, wcancel := context.WithCancel(context.Background())
		defer wcancel()
		go RunWorker(wctx, WorkerConfig{
			Config:         cfg,
			BlockSize:      farmBlockSize,
			Name:           "resumer",
			Addr:           l.Addr().String(),
			HeartbeatEvery: 100 * time.Millisecond,
			ReconnectWait:  20 * time.Millisecond,
		})
		st, err := c.Serve(context.Background(), l)
		if err != nil {
			t.Fatalf("serve (limit %d): %v", limit, err)
		}
		return st
	}

	st1 := run(limit)
	if !st1.Paused || st1.UnitsExecuted != limit {
		t.Fatalf("limited run: paused=%v executed=%d, want paused with exactly %d", st1.Paused, st1.UnitsExecuted, limit)
	}
	st2 := run(0)
	if st2.UnitsRestored != limit {
		t.Fatalf("resume restored %d units, want the %d journaled by the paused run", st2.UnitsRestored, limit)
	}
	if st2.Paused || st2.UnitsExecuted != st2.UnitsTotal-limit {
		t.Fatalf("resume executed %d units (paused=%v), want exactly the %d lost ones", st2.UnitsExecuted, st2.Paused, st2.UnitsTotal-limit)
	}
	st3 := run(0)
	if st3.UnitsExecuted != 0 || st3.UnitsRestored != st3.UnitsTotal {
		t.Fatalf("re-serving a complete journal executed %d units, want 0: %+v", st3.UnitsExecuted, st3)
	}

	got, _, err := sweep.MergeFiles([]string{journal})
	if err != nil {
		t.Fatal(err)
	}
	sameFarmResult(t, want, got)
}

// TestFarmFingerprintMismatchRefused: a worker started with different
// sweep flags must never contribute a unit — the coordinator answers
// its Join with an explicit Refuse, and the worker exits loudly on the
// first attempt instead of burning its redial budget on a
// misconfiguration that can never be accepted.
func TestFarmFingerprintMismatchRefused(t *testing.T) {
	cfg := mustFarmConfig()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		BlockSize:   farmBlockSize,
		JournalPath: filepath.Join(t.TempDir(), "farm.journal"),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		_, err := c.Serve(ctx, l)
		serveDone <- err
	}()

	badCfg := cfg
	badCfg.Market.Seed = 999 // different sweep, different fingerprint
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Config:          badCfg,
		BlockSize:       farmBlockSize,
		Name:            "imposter",
		Addr:            l.Addr().String(),
		ReconnectWait:   5 * time.Millisecond,
		MaxJoinFailures: 3,
	})
	var refused *RefusedError
	if !errors.As(err, &refused) {
		t.Fatalf("mismatched worker returned %v, want RefusedError", err)
	}
	if refused.Code != feed.RefuseFingerprint {
		t.Fatalf("refusal code %d, want RefuseFingerprint (%d)", refused.Code, feed.RefuseFingerprint)
	}
	if !strings.Contains(refused.Reason, "fingerprint") {
		t.Fatalf("refusal reason %q does not name the fingerprint", refused.Reason)
	}
	if stats.Redials != 0 {
		t.Fatalf("refused worker redialed %d times; an explicit refusal must be fatal on the first attempt", stats.Redials)
	}

	cancel()
	<-serveDone
}

// TestFarmUnreachableCoordinatorRetriesThenFails pins the other half of
// the refused/unreachable split: a coordinator that cannot be reached
// at all is retried exactly MaxJoinFailures times under backoff before
// the worker gives up.
func TestFarmUnreachableCoordinatorRetriesThenFails(t *testing.T) {
	// Bind-then-close gives an address that refuses connections.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	stats, err := RunWorker(context.Background(), WorkerConfig{
		Config:          mustFarmConfig(),
		BlockSize:       farmBlockSize,
		Name:            "stranded",
		Addr:            addr,
		ReconnectWait:   time.Millisecond,
		MaxJoinFailures: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "failed join attempts") {
		t.Fatalf("stranded worker returned %v, want join-failure error", err)
	}
	var refused *RefusedError
	if errors.As(err, &refused) {
		t.Fatal("unreachable coordinator surfaced as a refusal; must stay a retryable failure")
	}
	if stats.Redials != 3 {
		t.Fatalf("stranded worker redialed %d times, want MaxJoinFailures-1 = 3", stats.Redials)
	}
}
