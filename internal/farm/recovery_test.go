package farm

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"marketminer/internal/chaos"
	"marketminer/internal/feed"
	"marketminer/internal/metrics"
	"marketminer/internal/sweep"
)

// waitAccepting blocks until addr accepts TCP connections.
func waitAccepting(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing accepting on %s", addr)
}

// rebind re-listens on a specific address a just-killed process held,
// retrying briefly while the kernel releases it.
func rebind(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitManifest polls until the coordinator manifest exists and returns
// it.
func waitManifest(t *testing.T, path string) *coordManifest {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m, err := readCoordManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			return m
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("coordinator manifest %s never appeared", path)
	return nil
}

// TestFarmCoordCrashHelper is not a test: it is the doomed coordinator
// subprocess for the recovery e2es, selected by environment variable.
// It SIGKILLs itself — no final manifest, no journal close, no goodbye
// frames — after accepting a few results.
func TestFarmCoordCrashHelper(t *testing.T) {
	if os.Getenv("MM_FARM_COORD_HELPER") != "1" {
		t.Skip("helper process only")
	}
	killAfter, err := strconv.Atoi(os.Getenv("MM_FARM_COORD_KILL_AFTER"))
	if err != nil {
		t.Fatal(err)
	}
	ttl, err := time.ParseDuration(os.Getenv("MM_FARM_COORD_TTL"))
	if err != nil {
		t.Fatal(err)
	}
	var accepted atomic.Int64
	c, err := NewCoordinator(CoordinatorConfig{
		Config:      mustFarmConfig(),
		BlockSize:   farmBlockSize,
		JournalPath: os.Getenv("MM_FARM_COORD_JOURNAL"),
		LeaseTTL:    ttl,
		Logf:        t.Logf,
		Progress: func(done, total int) {
			if accepted.Add(1) >= int64(killAfter) {
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", os.Getenv("MM_FARM_COORD_LISTEN"))
	if err != nil {
		t.Fatal(err)
	}
	c.Serve(context.Background(), l)
	t.Fatal("helper survived its own SIGKILL")
}

// spawnCoordHelper starts the doomed coordinator subprocess and waits
// until it is accepting workers.
func spawnCoordHelper(t *testing.T, addr, journal string, killAfter int, ttl time.Duration) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestFarmCoordCrashHelper", "-test.v")
	cmd.Env = append(os.Environ(),
		"MM_FARM_COORD_HELPER=1",
		"MM_FARM_COORD_LISTEN="+addr,
		"MM_FARM_COORD_JOURNAL="+journal,
		"MM_FARM_COORD_KILL_AFTER="+strconv.Itoa(killAfter),
		"MM_FARM_COORD_TTL="+ttl.String(),
	)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitAccepting(t, addr)
	return cmd, &out
}

// expectSIGKILLed asserts the subprocess died of a signal, not a clean
// exit or an internal error.
func expectSIGKILLed(t *testing.T, what string, cmd *exec.Cmd, out *bytes.Buffer) {
	t.Helper()
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("%s exited cleanly; expected SIGKILL mid-sweep:\n%s", what, out.Bytes())
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != -1 {
		t.Fatalf("%s died of %v, want a signal:\n%s", what, err, out.Bytes())
	}
}

// TestFarmCoordinatorSIGKILLRestartByteIdentical is the recovery
// acceptance e2e: the coordinator is SIGKILLed mid-sweep — with a
// worker that was itself SIGKILLed earlier and a survivor on a
// chaos-corrupted link — then restarted cold on the same journal. The
// restart must claim a higher epoch, restore every journaled unit,
// re-confirm the survivor's session, and finish with output
// byte-identical to an uninterrupted single-host backtest.Run.
func TestFarmCoordinatorSIGKILLRestartByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := mustFarmConfig()
	want := farmWant(t)
	journal := filepath.Join(t.TempDir(), "farm.journal")
	addr := deadAddr(t)

	restartsBase := metrics.Counter(MetricCoordRestarts).Value()
	rejoinsBase := metrics.Counter(MetricCoordRejoins).Value()

	coord, coordOut := spawnCoordHelper(t, addr, journal, 10, 2*time.Second)

	// Phase 1: a worker is SIGKILLed mid-group while the first
	// coordinator incarnation is serving.
	doomed := exec.Command(os.Args[0], "-test.run=TestFarmWorkerCrashHelper", "-test.v")
	doomed.Env = append(os.Environ(),
		"MM_FARM_WORKER_HELPER=1",
		"MM_FARM_ADDR="+addr,
		"MM_FARM_KILL_AFTER=3",
	)
	dout, derr := doomed.CombinedOutput()
	if derr == nil {
		t.Fatalf("doomed worker exited cleanly; expected SIGKILL mid-sweep:\n%s", dout)
	}
	if ee, ok := derr.(*exec.ExitError); !ok || ee.ExitCode() != -1 {
		t.Fatalf("doomed worker died of %v, want a signal:\n%s", derr, dout)
	}

	// Phase 2: a survivor on a chaotic link computes across BOTH
	// coordinator incarnations, resuming its session over the restart.
	spec, err := chaos.ParseSpec("seed=5,corrupt=32768,cut=131072")
	if err != nil {
		t.Fatal(err)
	}
	ch := chaos.New(spec)
	baseDial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	type workerOut struct {
		stats *WorkerStats
		err   error
	}
	survivorCh := make(chan workerOut, 1)
	go func() {
		st, err := RunWorker(context.Background(), WorkerConfig{
			Config:          cfg,
			BlockSize:       farmBlockSize,
			Name:            "survivor",
			Dial:            ch.Dialer(baseDial),
			HeartbeatEvery:  100 * time.Millisecond,
			ReconnectWait:   20 * time.Millisecond,
			MaxJoinFailures: 1000,
			Logf:            t.Logf,
		})
		survivorCh <- workerOut{st, err}
	}()

	// Phase 3: the coordinator SIGKILLs itself mid-sweep, survivor's
	// lease in flight, manifest and journal left wherever they were.
	expectSIGKILLed(t, "doomed coordinator", coord, coordOut)

	// Phase 4: cold restart on the same journal and address.
	l := rebind(t, addr)
	c2, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		BlockSize:   farmBlockSize,
		JournalPath: journal,
		LeaseTTL:    2 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Serve(context.Background(), l)
	if err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	if st.Paused || st.UnitsRestored+st.UnitsExecuted != st.UnitsTotal {
		t.Fatalf("restarted farm did not complete: %+v", st)
	}
	if st.UnitsRestored == 0 {
		t.Fatal("restart restored nothing; the first incarnation's journal was lost")
	}
	if st.Epoch != 2 {
		t.Fatalf("restarted coordinator serves under epoch %d, want 2", st.Epoch)
	}
	if got := metrics.Counter(MetricCoordRestarts).Value(); got != restartsBase+1 {
		t.Fatalf("coordinator_restarts = %d, want %d", got, restartsBase+1)
	}
	if got := metrics.Counter(MetricCoordRejoins).Value(); got <= rejoinsBase {
		t.Fatal("no rejoin was accepted; the survivor should have resumed its session")
	}

	var sv workerOut
	select {
	case sv = <-survivorCh:
	case <-time.After(time.Minute):
		t.Fatal("survivor did not exit after End")
	}
	if sv.err != nil {
		t.Fatalf("survivor: %v", sv.err)
	}
	if sv.stats.Rejoins == 0 {
		t.Fatal("survivor never resumed a session across the coordinator restart")
	}

	got, _, err := sweep.MergeFiles([]string{journal})
	if err != nil {
		t.Fatal(err)
	}
	sameFarmResult(t, want, got)
}

// TestFarmStandbyTakeoverByteIdentical: a warm standby tails the
// primary's heartbeat file, takes over under a higher epoch when the
// primary is SIGKILLed, and finishes the sweep byte-identically —
// while the worker finds the standby's address by rotating its
// -connect list.
func TestFarmStandbyTakeoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := mustFarmConfig()
	want := farmWant(t)
	journal := filepath.Join(t.TempDir(), "farm.journal")
	addr1 := deadAddr(t)
	addr2 := deadAddr(t)

	takeoverBase := metrics.Counter(MetricCoordTakeovers).Value()

	// Standby first: it must observe the primary's heartbeat appear,
	// then stop moving.
	type standbyOut struct {
		stats *CoordStats
		err   error
	}
	standbyCh := make(chan standbyOut, 1)
	go func() {
		st, err := RunStandby(context.Background(), StandbyConfig{
			Coordinator: CoordinatorConfig{
				Config:      cfg,
				BlockSize:   farmBlockSize,
				JournalPath: journal,
				LeaseTTL:    time.Second,
				Logf:        t.Logf,
			},
			PollEvery:     50 * time.Millisecond,
			TakeoverAfter: 2 * time.Second,
			Logf:          t.Logf,
		}, func() (net.Listener, error) {
			return net.Listen("tcp", addr2)
		})
		standbyCh <- standbyOut{st, err}
	}()

	primary, primaryOut := spawnCoordHelper(t, addr1, journal, 4, time.Second)

	type workerOut struct {
		stats *WorkerStats
		err   error
	}
	workerCh := make(chan workerOut, 1)
	go func() {
		st, err := RunWorker(context.Background(), WorkerConfig{
			Config:          cfg,
			BlockSize:       farmBlockSize,
			Name:            "failover-worker",
			Addrs:           []string{addr1, addr2},
			HeartbeatEvery:  100 * time.Millisecond,
			ReconnectWait:   50 * time.Millisecond,
			MaxJoinFailures: 1000,
			Logf:            t.Logf,
		})
		workerCh <- workerOut{st, err}
	}()

	expectSIGKILLed(t, "primary coordinator", primary, primaryOut)

	var sb standbyOut
	select {
	case sb = <-standbyCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("standby neither took over nor finished within 2 minutes")
	}
	if sb.err != nil {
		t.Fatalf("standby: %v", sb.err)
	}
	if sb.stats.Paused || sb.stats.UnitsRestored+sb.stats.UnitsExecuted != sb.stats.UnitsTotal {
		t.Fatalf("standby takeover did not complete the sweep: %+v", sb.stats)
	}
	if sb.stats.UnitsRestored == 0 {
		t.Fatal("standby restored nothing; the primary's journal was lost")
	}
	if sb.stats.Epoch < 2 {
		t.Fatalf("standby serves under epoch %d, want ≥ 2 (must fence the primary)", sb.stats.Epoch)
	}
	if got := metrics.Counter(MetricCoordTakeovers).Value(); got != takeoverBase+1 {
		t.Fatalf("coordinator_takeovers = %d, want %d", got, takeoverBase+1)
	}

	var wk workerOut
	select {
	case wk = <-workerCh:
	case <-time.After(time.Minute):
		t.Fatal("worker did not exit after End")
	}
	if wk.err != nil {
		t.Fatalf("worker: %v", wk.err)
	}
	if wk.stats.Rejoins == 0 {
		t.Fatal("worker never resumed its session on the promoted standby")
	}

	got, _, err := sweep.MergeFiles([]string{journal})
	if err != nil {
		t.Fatal(err)
	}
	sameFarmResult(t, want, got)
}

// TestFarmEpochFencingLadder drives the epoch fence directly: a higher
// epoch appears in the manifest (as a takeover would write it) and the
// older incarnation must refuse every subsequent durable write, stand
// down with ErrFenced, and leave both journal and manifest untouched —
// from its idle path and from its result-append path — after which a
// restart climbs to the next epoch and finishes normally.
func TestFarmEpochFencingLadder(t *testing.T) {
	cfg := mustFarmConfig()

	t.Run("idle sweeper tick detects the fence", func(t *testing.T) {
		journal := filepath.Join(t.TempDir(), "farm.journal")
		fencesBase := metrics.Counter(MetricCoordEpochFences).Value()
		c, err := NewCoordinator(CoordinatorConfig{
			Config:      cfg,
			BlockSize:   farmBlockSize,
			JournalPath: journal,
			LeaseTTL:    time.Minute,
			SweepEvery:  5 * time.Millisecond,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() {
			_, err := c.Serve(context.Background(), l)
			serveDone <- err
		}()

		m := waitManifest(t, coordManifestPath(journal))
		m.Epoch++
		if err := writeCoordManifest(coordManifestPath(journal), m); err != nil {
			t.Fatal(err)
		}

		select {
		case err := <-serveDone:
			if !errors.Is(err, ErrFenced) {
				t.Fatalf("fenced coordinator returned %v, want ErrFenced", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("fenced idle coordinator did not stand down")
		}
		if got := metrics.Counter(MetricCoordEpochFences).Value(); got <= fencesBase {
			t.Fatal("epoch fence was not counted")
		}
		after, err := readCoordManifest(coordManifestPath(journal))
		if err != nil {
			t.Fatal(err)
		}
		if after.Epoch != m.Epoch {
			t.Fatalf("stale coordinator overwrote the manifest epoch: %d, want the takeover's %d", after.Epoch, m.Epoch)
		}
	})

	t.Run("result append is refused and a restart climbs the ladder", func(t *testing.T) {
		journal := filepath.Join(t.TempDir(), "farm.journal")
		want := farmWant(t)
		fencesBase := metrics.Counter(MetricCoordEpochFences).Value()
		c, err := NewCoordinator(CoordinatorConfig{
			Config:      cfg,
			BlockSize:   farmBlockSize,
			JournalPath: journal,
			LeaseTTL:    time.Minute,
			SweepEvery:  time.Hour, // never ticks: only the append path can notice
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Freeze the clock so lease expiry cannot interfere.
		frozen := time.Now()
		c.now = func() time.Time { return frozen }

		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan error, 1)
		go func() {
			_, err := c.Serve(context.Background(), l)
			serveDone <- err
		}()

		fw := joinFake(t, l.Addr().String(), "stale-path", c.fingerprint)
		defer fw.conn.Close()
		lease := fw.steal()

		// A takeover lands: the manifest now carries a higher epoch.
		m := waitManifest(t, coordManifestPath(journal))
		m.Epoch += 2 // two rungs up, as after a takeover plus a restart
		if err := writeCoordManifest(coordManifestPath(journal), m); err != nil {
			t.Fatal(err)
		}

		// A perfectly valid result — right lease, right gen, right
		// epoch for *this* incarnation — must now be refused at the
		// journal, because the incarnation itself is stale.
		lo, hi := c.plan.BlockRange(int(lease.Block))
		rows := make([][]float64, hi-lo)
		for i := range rows {
			rows[i] = []float64{}
		}
		unit := uint64(c.plan.UnitID(sweep.Unit{Day: int(lease.Day), Block: int(lease.Block), Param: int(lease.Params[0])}))
		if err := fw.enc.WriteResult(&feed.Result{Lease: lease.ID, Gen: lease.Gen, Epoch: fw.epoch, Unit: unit, Rets: rows}); err != nil {
			t.Fatal(err)
		}

		select {
		case err := <-serveDone:
			if !errors.Is(err, ErrFenced) {
				t.Fatalf("fenced coordinator returned %v, want ErrFenced", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("fenced coordinator did not stand down on the refused append")
		}
		if got := metrics.Counter(MetricCoordEpochFences).Value(); got <= fencesBase {
			t.Fatal("epoch fence was not counted")
		}
		// The journal must hold the header only — the fenced append
		// never reached it.
		data, err := os.ReadFile(journal)
		if err != nil {
			t.Fatal(err)
		}
		if n := bytes.Count(data, []byte("\n")); n != 1 {
			t.Fatalf("fenced coordinator's journal has %d lines, want header only", n)
		}
		after, err := readCoordManifest(coordManifestPath(journal))
		if err != nil {
			t.Fatal(err)
		}
		if after.Epoch != m.Epoch {
			t.Fatalf("stale coordinator overwrote the manifest epoch: %d, want %d", after.Epoch, m.Epoch)
		}

		// The ladder's next rung: a restart claims epoch+1 and serves
		// the whole sweep normally.
		c2, err := NewCoordinator(CoordinatorConfig{
			Config:      cfg,
			BlockSize:   farmBlockSize,
			JournalPath: journal,
			LeaseTTL:    500 * time.Millisecond, // expire the fenced incarnation's limbo lease fast
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		l2, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		wctx, wcancel := context.WithCancel(context.Background())
		defer wcancel()
		go RunWorker(wctx, WorkerConfig{
			Config:         cfg,
			BlockSize:      farmBlockSize,
			Name:           "ladder-finisher",
			Addr:           l2.Addr().String(),
			HeartbeatEvery: 100 * time.Millisecond,
			ReconnectWait:  20 * time.Millisecond,
		})
		st, err := c2.Serve(context.Background(), l2)
		if err != nil {
			t.Fatalf("post-fence restart: %v", err)
		}
		if st.Epoch != m.Epoch+1 {
			t.Fatalf("restart claimed epoch %d, want %d (one above the fence)", st.Epoch, m.Epoch+1)
		}
		if st.Paused || st.UnitsRestored+st.UnitsExecuted != st.UnitsTotal {
			t.Fatalf("post-fence restart did not complete: %+v", st)
		}
		got, _, err := sweep.MergeFiles([]string{journal})
		if err != nil {
			t.Fatal(err)
		}
		sameFarmResult(t, want, got)
	})
}

// TestFarmJournalTornTailHealedOnRestart SIGKILLs the coordinator
// mid-append (as far as a test can arrange it), then deliberately
// tears the journal's last record and restarts: the torn record must
// be detected and truncated, every intact unit restored, only the lost
// remainder re-run, and the merged output stay byte-identical.
func TestFarmJournalTornTailHealedOnRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := mustFarmConfig()
	want := farmWant(t)
	journal := filepath.Join(t.TempDir(), "farm.journal")
	addr := deadAddr(t)

	coord, coordOut := spawnCoordHelper(t, addr, journal, 6, 2*time.Second)
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		RunWorker(wctx, WorkerConfig{
			Config:          cfg,
			BlockSize:       farmBlockSize,
			Name:            "feeder",
			Addr:            addr,
			HeartbeatEvery:  100 * time.Millisecond,
			ReconnectWait:   50 * time.Millisecond,
			MaxJoinFailures: 1000,
			Logf:            t.Logf,
		})
	}()
	expectSIGKILLed(t, "doomed coordinator", coord, coordOut)
	wcancel()
	<-workerDone

	// Tear the tail: chop a few bytes off whatever the killed process
	// managed to write, guaranteeing a partial final record.
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 64 {
		t.Fatalf("killed coordinator left a %d-byte journal; nothing to tear", fi.Size())
	}
	if err := os.Truncate(journal, fi.Size()-4); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Complete '\n'-terminated lines survive (their CRCs were written
	// whole); the first is the header.
	intact := bytes.Count(data, []byte("\n")) - 1
	if intact < 1 {
		t.Fatalf("only %d intact entries after the tear; raise the kill threshold", intact)
	}

	c2, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		BlockSize:   farmBlockSize,
		JournalPath: journal,
		LeaseTTL:    time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := rebind(t, addr)
	w2ctx, w2cancel := context.WithCancel(context.Background())
	defer w2cancel()
	go RunWorker(w2ctx, WorkerConfig{
		Config:         cfg,
		BlockSize:      farmBlockSize,
		Name:           "healer",
		Addr:           addr,
		HeartbeatEvery: 100 * time.Millisecond,
		ReconnectWait:  20 * time.Millisecond,
	})
	st, err := c2.Serve(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered == nil {
		t.Fatal("restart did not report the torn tail it must have healed")
	}
	if st.UnitsRestored != intact {
		t.Fatalf("restored %d units, want exactly the %d intact journal entries", st.UnitsRestored, intact)
	}
	if st.UnitsExecuted != st.UnitsTotal-intact {
		t.Fatalf("re-ran %d units, want exactly the %d not intact on disk", st.UnitsExecuted, st.UnitsTotal-intact)
	}
	got, _, err := sweep.MergeFiles([]string{journal})
	if err != nil {
		t.Fatal(err)
	}
	sameFarmResult(t, want, got)
}

// TestFarmCoordinatorMetricsAccountingConcurrent hammers the join path
// from concurrent connections and requires the recovery counters to
// account exactly: every handshake counted once as a join, every
// session resume counted once as a rejoin, no drops and no double
// counting under contention.
func TestFarmCoordinatorMetricsAccountingConcurrent(t *testing.T) {
	cfg := mustFarmConfig()
	c, err := NewCoordinator(CoordinatorConfig{
		Config:      cfg,
		BlockSize:   farmBlockSize,
		JournalPath: filepath.Join(t.TempDir(), "farm.journal"),
		LeaseTTL:    time.Minute,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		_, err := c.Serve(ctx, l)
		serveDone <- err
	}()
	waitAccepting(t, l.Addr().String())

	joinedBase := metrics.Counter(MetricWorkersJoined).Value()
	rejoinsBase := metrics.Counter(MetricCoordRejoins).Value()

	const (
		producers = 8
		sessions  = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prior := uint64(0)
			for s := 0; s < sessions; s++ {
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					errs <- err
					return
				}
				enc := feed.NewEncoder(conn, nil)
				if err := enc.WriteJoin(&feed.Join{
					Version:      feed.ProtocolVersion,
					Name:         "acct-" + strconv.Itoa(p),
					Fingerprint:  c.fingerprint,
					PriorSession: prior,
				}); err != nil {
					conn.Close()
					errs <- err
					return
				}
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				f, err := feed.NewDecoder(conn).Read()
				conn.Close()
				if err != nil {
					errs <- err
					return
				}
				g, ok := f.(*feed.Grant)
				if !ok {
					errs <- errors.New("handshake did not yield a Grant")
					return
				}
				prior = g.Session
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	wantJoined := joinedBase + producers*sessions
	wantRejoins := rejoinsBase + producers*(sessions-1)
	waitCounter(t, MetricWorkersJoined, wantJoined)
	waitCounter(t, MetricCoordRejoins, wantRejoins)
	// Settle, then require exactness: counted once per event, never
	// again.
	time.Sleep(50 * time.Millisecond)
	if got := metrics.Counter(MetricWorkersJoined).Value(); got != wantJoined {
		t.Fatalf("workers_joined = %d, want exactly %d", got, wantJoined)
	}
	if got := metrics.Counter(MetricCoordRejoins).Value(); got != wantRejoins {
		t.Fatalf("coordinator_rejoins_accepted = %d, want exactly %d", got, wantRejoins)
	}

	cancel()
	<-serveDone
}
