package clean

import (
	"math/rand"
	"testing"
	"testing/quick"

	"marketminer/internal/taq"
)

func goodQuote(t float64, mid float64) taq.Quote {
	return taq.Quote{SeqTime: t, Symbol: "AA", Bid: mid - 0.01, Ask: mid + 0.01, BidSize: 5, AskSize: 5}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		OK: "ok", BadStructure: "bad-structure", ZeroSize: "zero-size",
		WideSpread: "wide-spread", Outlier: "outlier", OutOfOrder: "out-of-order", Reason(99): "unknown",
	} {
		if r.String() != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestFilterAcceptsCleanTape(t *testing.T) {
	f := NewFilter(DefaultConfig())
	for i := 0; i < 100; i++ {
		q := goodQuote(float64(i), 50+0.001*float64(i))
		if r := f.Accept(q); r != OK {
			t.Fatalf("quote %d rejected: %v", i, r)
		}
	}
	if f.Accepted() != 100 || f.TotalRejected() != 0 {
		t.Errorf("accepted=%d rejected=%d", f.Accepted(), f.TotalRejected())
	}
}

func TestFilterRejectsStructure(t *testing.T) {
	f := NewFilter(DefaultConfig())
	crossed := taq.Quote{SeqTime: 1, Symbol: "AA", Bid: 51, Ask: 50, BidSize: 1, AskSize: 1}
	if r := f.Accept(crossed); r != BadStructure {
		t.Errorf("crossed quote: %v", r)
	}
	neg := taq.Quote{SeqTime: 1, Symbol: "AA", Bid: -5, Ask: 50, BidSize: 1, AskSize: 1}
	if r := f.Accept(neg); r != BadStructure {
		t.Errorf("negative bid: %v", r)
	}
	if f.Rejected(BadStructure) != 2 {
		t.Errorf("Rejected(BadStructure) = %d", f.Rejected(BadStructure))
	}
}

func TestFilterRejectsTestQuotes(t *testing.T) {
	f := NewFilter(DefaultConfig())
	zero := taq.Quote{SeqTime: 1, Symbol: "AA", Bid: 50, Ask: 50.1, BidSize: 0, AskSize: 0}
	if r := f.Accept(zero); r != ZeroSize {
		t.Errorf("zero-size quote: %v", r)
	}
	wide := taq.Quote{SeqTime: 2, Symbol: "AA", Bid: 40, Ask: 60, BidSize: 1, AskSize: 1}
	if r := f.Accept(wide); r != WideSpread {
		t.Errorf("wide-spread quote: %v", r)
	}
}

func TestFilterRejectsFatFinger(t *testing.T) {
	f := NewFilter(DefaultConfig())
	for i := 0; i < 50; i++ {
		f.Accept(goodQuote(float64(i), 50))
	}
	// A 10x price spike (fat finger) must be rejected as an outlier.
	spike := goodQuote(51, 500)
	if r := f.Accept(spike); r != Outlier {
		t.Errorf("fat-finger: got %v, want Outlier", r)
	}
	// The tape then continues at 50 and is still accepted.
	if r := f.Accept(goodQuote(52, 50.01)); r != OK {
		t.Errorf("post-spike quote rejected: %v", r)
	}
}

func TestFilterWarmupGrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 5
	f := NewFilter(cfg)
	// During warm-up even jumpy prices pass the deviation check.
	for i, mid := range []float64{50, 55, 45, 52, 48} {
		if r := f.Accept(goodQuote(float64(i), mid)); r != OK {
			t.Errorf("warmup quote %d rejected: %v", i, r)
		}
	}
}

func TestFilterTracksDrift(t *testing.T) {
	f := NewFilter(DefaultConfig())
	mid := 50.0
	for i := 0; i < 2000; i++ {
		mid *= 1.0005 // steady drift
		if r := f.Accept(goodQuote(float64(i), mid)); r != OK {
			t.Fatalf("drifting tape rejected at %d (mid=%.2f): %v", i, mid, r)
		}
	}
}

func TestFilterPerSymbolState(t *testing.T) {
	f := NewFilter(DefaultConfig())
	for i := 0; i < 20; i++ {
		f.Accept(goodQuote(float64(i), 50))
		q := goodQuote(float64(i), 200)
		q.Symbol = "BB"
		if r := f.Accept(q); r != OK {
			t.Fatalf("BB tape rejected: %v", r)
		}
	}
	m1, _, ok1 := f.Level("AA")
	m2, _, ok2 := f.Level("BB")
	if !ok1 || !ok2 {
		t.Fatal("missing level state")
	}
	if m1 > 60 || m2 < 150 {
		t.Errorf("levels not independent: AA=%v BB=%v", m1, m2)
	}
	if _, _, ok := f.Level("ZZ"); ok {
		t.Error("unknown symbol should have no level")
	}
}

func TestCheckDoesNotMutate(t *testing.T) {
	f := NewFilter(DefaultConfig())
	q := goodQuote(1, 50)
	for i := 0; i < 10; i++ {
		f.Check(q)
	}
	if f.Accepted() != 0 {
		t.Error("Check must not count as acceptance")
	}
	if _, _, ok := f.Level("AA"); ok {
		t.Error("Check must not create estimator state")
	}
}

func TestNewFilterSanitizesConfig(t *testing.T) {
	f := NewFilter(Config{}) // all zero
	for i := 0; i < 50; i++ {
		if r := f.Accept(goodQuote(float64(i), 50)); r != OK {
			t.Fatalf("sanitized config rejected clean tape: %v", r)
		}
	}
}

func TestCleanBatch(t *testing.T) {
	var quotes []taq.Quote
	for i := 0; i < 100; i++ {
		quotes = append(quotes, goodQuote(float64(i), 50))
	}
	quotes[40] = goodQuote(40, 5000)                                                            // fat finger
	quotes[60] = taq.Quote{SeqTime: 60, Symbol: "AA", Bid: 50, Ask: 50.1}                       // zero size
	quotes[70] = taq.Quote{SeqTime: 70, Symbol: "AA", Bid: 55, Ask: 54, BidSize: 1, AskSize: 1} // crossed
	out, f := Clean(DefaultConfig(), quotes)
	if len(out) != 97 {
		t.Errorf("cleaned %d quotes, want 97", len(out))
	}
	if f.Rejected(Outlier) != 1 || f.Rejected(ZeroSize) != 1 || f.Rejected(BadStructure) != 1 {
		t.Errorf("rejection breakdown: outlier=%d zerosize=%d struct=%d",
			f.Rejected(Outlier), f.Rejected(ZeroSize), f.Rejected(BadStructure))
	}
}

// Property: on a Gaussian tape with occasional 50% spikes, the filter
// rejects every spike and at most a tiny fraction of clean ticks.
func TestFilterSelectivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flt := NewFilter(DefaultConfig())
		var cleanRejected, spikeAccepted int
		cleanTotal := 0
		for i := 0; i < 500; i++ {
			mid := 100 + rng.NormFloat64()*0.02
			spike := i > 50 && rng.Float64() < 0.02
			if spike {
				mid *= 1.5
			}
			r := flt.Accept(goodQuote(float64(i), mid))
			if spike && r == OK {
				spikeAccepted++
			}
			if !spike {
				cleanTotal++
				if r != OK {
					cleanRejected++
				}
			}
		}
		return spikeAccepted == 0 && float64(cleanRejected) < 0.04*float64(cleanTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLevelShiftReAccepted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRun = 5
	f := NewFilter(cfg)
	for i := 0; i < 50; i++ {
		f.Accept(goodQuote(float64(i), 50))
	}
	// A genuine 1% level shift: the first MaxRun-1 quotes at the new
	// level are rejected, then the filter re-anchors.
	var rejected, accepted int
	for i := 50; i < 70; i++ {
		if f.Accept(goodQuote(float64(i), 50.5)) == OK {
			accepted++
		} else {
			rejected++
		}
	}
	if rejected != cfg.MaxRun-1 {
		t.Errorf("rejected %d quotes at the new level, want %d", rejected, cfg.MaxRun-1)
	}
	if accepted != 20-(cfg.MaxRun-1) {
		t.Errorf("accepted %d, want %d", accepted, 20-(cfg.MaxRun-1))
	}
	mean, _, _ := f.Level("AA")
	if mean < 50.3 {
		t.Errorf("estimator did not re-anchor: mean=%v", mean)
	}
}

func TestIsolatedSpikesStillRejectedWithMaxRun(t *testing.T) {
	f := NewFilter(DefaultConfig())
	for i := 0; i < 50; i++ {
		f.Accept(goodQuote(float64(i), 50))
	}
	// Alternating spike/normal never builds a run.
	for i := 50; i < 70; i += 2 {
		if r := f.Accept(goodQuote(float64(i), 500)); r != Outlier {
			t.Fatalf("spike at %d: %v", i, r)
		}
		if r := f.Accept(goodQuote(float64(i+1), 50)); r != OK {
			t.Fatalf("normal quote at %d rejected: %v", i+1, r)
		}
	}
}

func TestFilterOrderedRejectsTimeTravel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ordered = true
	f := NewFilter(cfg)
	for i := 0; i < 20; i++ {
		if r := f.Accept(goodQuote(float64(i), 50)); r != OK {
			t.Fatalf("ordered quote %d rejected: %v", i, r)
		}
	}
	// A quote from the past: statistically perfect, temporally wrong.
	if r := f.Accept(goodQuote(5, 50)); r != OutOfOrder {
		t.Fatalf("stale quote: got %v, want OutOfOrder", r)
	}
	// An earlier Day outranks a larger SeqTime.
	past := goodQuote(100, 50)
	past.Day = -1
	if r := f.Accept(past); r != OutOfOrder {
		t.Fatalf("previous-day quote: got %v, want OutOfOrder", r)
	}
	if f.Rejected(OutOfOrder) != 2 {
		t.Errorf("Rejected(OutOfOrder) = %d, want 2", f.Rejected(OutOfOrder))
	}
	// The stream resumes at the running max, not at the glitch.
	if r := f.Accept(goodQuote(19.5, 50)); r != OK {
		t.Fatalf("resumed quote rejected: %v", r)
	}
}

func TestFilterOrderedShieldsReanchor(t *testing.T) {
	// A MaxRun-length burst of out-of-order quotes must NOT trigger the
	// level-shift re-anchor: ordering rejection precedes outlier
	// counting, so outRun never advances and the estimator is intact.
	cfg := DefaultConfig()
	cfg.Ordered = true
	f := NewFilter(cfg)
	for i := 0; i < 20; i++ {
		f.Accept(goodQuote(float64(i), 50))
	}
	mean0, _, _ := f.Level("AA")
	for i := 0; i < cfg.MaxRun+2; i++ {
		if r := f.Accept(goodQuote(1, 500)); r != OutOfOrder { // stale AND 10× the level
			t.Fatalf("stale outlier %d: got %v, want OutOfOrder", i, r)
		}
	}
	if mean, _, _ := f.Level("AA"); mean != mean0 {
		t.Errorf("estimator perturbed by rejected quotes: %v → %v", mean0, mean)
	}
	if r := f.Accept(goodQuote(20, 50)); r != OK {
		t.Fatalf("clean quote after glitch burst rejected: %v", r)
	}
}

func TestFilterUnorderedIgnoresTime(t *testing.T) {
	// Without Ordered, the default filter is time-agnostic (historical
	// slices are pre-sorted; re-checking them would be pure overhead).
	f := NewFilter(DefaultConfig())
	if r := f.Accept(goodQuote(10, 50)); r != OK {
		t.Fatal(r)
	}
	if r := f.Accept(goodQuote(1, 50)); r != OK {
		t.Fatalf("unordered filter rejected a stale quote: %v", r)
	}
}
