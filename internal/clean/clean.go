// Package clean implements the tick-data cleaning stage of the
// pipeline. Raw TAQ data "contains every raw quote … there can be many
// spurious ticks originating from various sources, some human typing
// errors but mainly from electronic trading systems generating test
// quotes … or far-out limit orders" (§III).
//
// The paper's approach is "a very simple but effective TCP-like filter
// to eliminate prices that are more than a few standard deviations from
// their corresponding moving average and deviation", leaving remaining
// outliers to be down-weighted by the robust correlation measure. The
// name refers to TCP's exponentially-weighted RTT estimator: the filter
// keeps EWMA estimates of the price level and its absolute deviation
// and rejects prices outside mean ± k·dev, exactly like an RTO bound.
package clean

import (
	"math"

	"marketminer/internal/taq"
)

// Reason classifies why a quote was rejected.
type Reason int

// Rejection reasons, in increasing order of statistical subtlety.
const (
	OK           Reason = iota // accepted
	BadStructure               // non-positive price, crossed market, bad sizes/time
	ZeroSize                   // both sizes zero → test quote
	WideSpread                 // spread implausibly wide relative to the mid
	Outlier                    // outside the TCP-like deviation band
	OutOfOrder                 // (Day, SeqTime) ran backwards (Config.Ordered)
)

// String names the reason for diagnostics.
func (r Reason) String() string {
	switch r {
	case OK:
		return "ok"
	case BadStructure:
		return "bad-structure"
	case ZeroSize:
		return "zero-size"
	case WideSpread:
		return "wide-spread"
	case Outlier:
		return "outlier"
	case OutOfOrder:
		return "out-of-order"
	default:
		return "unknown"
	}
}

// Config tunes the filter. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Gain is the EWMA gain α for the level estimate (TCP uses 1/8).
	Gain float64
	// DevGain is the EWMA gain for the deviation estimate (TCP: 1/4).
	DevGain float64
	// K is the acceptance band half-width in deviations ("more than a
	// few standard deviations").
	K float64
	// MaxRelSpread rejects quotes whose spread exceeds this fraction
	// of the mid (far-out test quotes routinely have huge spreads).
	MaxRelSpread float64
	// Warmup is the number of accepted quotes per symbol before the
	// deviation band is enforced; the estimators need a burn-in.
	Warmup int
	// MaxRun bounds consecutive outlier rejections per symbol. A
	// genuine level shift (a breakdown event, a news jump) looks like
	// an outlier to a frozen estimator; after MaxRun consecutive
	// rejections the filter concludes the level is real, re-anchors
	// its estimator on the current quote and accepts it. Isolated bad
	// ticks never persist, so they are still rejected.
	MaxRun int
	// Ordered additionally enforces stream-wide (Day, SeqTime)
	// monotonicity via taq.OrderChecker — the same validator the feed
	// collector runs on networked input. A quote that travels back in
	// time is rejected with OutOfOrder before any statistical test; it
	// never perturbs the EWMA estimators.
	Ordered bool
}

// DefaultConfig mirrors TCP's RTT estimator gains with a 4-deviation
// band, the paper's "a few standard deviations".
func DefaultConfig() Config {
	return Config{Gain: 1.0 / 8, DevGain: 1.0 / 4, K: 4, MaxRelSpread: 0.10, Warmup: 8, MaxRun: 5}
}

// state is the per-symbol EWMA estimator pair.
type state struct {
	n      int
	mean   float64
	dev    float64
	outRun int // consecutive outlier rejections
}

// Filter is a streaming per-symbol quote filter. It is not safe for
// concurrent use; the pipeline runs one Filter per partition.
type Filter struct {
	cfg      Config
	bySymbol map[string]*state
	order    taq.OrderChecker // stream-wide monotonicity (Config.Ordered)
	accepted int
	rejected map[Reason]int
}

// NewFilter returns a Filter with the given configuration.
func NewFilter(cfg Config) *Filter {
	if cfg.Gain <= 0 || cfg.Gain > 1 {
		cfg.Gain = 1.0 / 8
	}
	if cfg.DevGain <= 0 || cfg.DevGain > 1 {
		cfg.DevGain = 1.0 / 4
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.MaxRelSpread <= 0 {
		cfg.MaxRelSpread = 0.10
	}
	if cfg.Warmup < 2 {
		cfg.Warmup = 2
	}
	if cfg.MaxRun < 1 {
		cfg.MaxRun = 5
	}
	return &Filter{
		cfg:      cfg,
		bySymbol: make(map[string]*state),
		rejected: make(map[Reason]int),
	}
}

// Check classifies a quote without updating any state. Exposed for
// testing and for consumers that manage their own estimator updates.
func (f *Filter) Check(q taq.Quote) Reason {
	if !q.Valid() {
		return BadStructure
	}
	if q.BidSize == 0 && q.AskSize == 0 {
		return ZeroSize
	}
	mid := q.Mid()
	if q.Spread() > f.cfg.MaxRelSpread*mid {
		return WideSpread
	}
	st := f.bySymbol[q.Symbol]
	if st == nil || st.n < f.cfg.Warmup {
		return OK
	}
	dev := st.dev
	if floor := devFloor(st.mean); dev < floor {
		dev = floor
	}
	if math.Abs(mid-st.mean) > f.cfg.K*dev {
		return Outlier
	}
	return OK
}

// devFloor keeps the band open when the deviation estimate collapses to
// ~0 on a quiet tape: a one-tick move (a basis point) must never be
// rejected.
func devFloor(mean float64) float64 { return 1e-4 * math.Abs(mean) }

// Accept classifies q and, when accepted, folds its mid into the
// symbol's EWMA estimators. A run of MaxRun consecutive outliers is
// treated as a genuine level shift: the estimator re-anchors on the
// current quote and the quote is accepted.
func (f *Filter) Accept(q taq.Quote) Reason {
	// Ordering is checked first: a time-travelling quote is rejected
	// outright, whatever its price looks like, and the MaxRun re-anchor
	// path below must never fire on one. The checker's running-max
	// semantics mean a rejected glitch does not poison later quotes.
	if f.cfg.Ordered && !f.order.Check(q) {
		f.rejected[OutOfOrder]++
		return OutOfOrder
	}
	r := f.Check(q)
	st := f.bySymbol[q.Symbol]
	if r == Outlier && st != nil {
		st.outRun++
		if st.outRun >= f.cfg.MaxRun {
			// Persistent level: re-anchor and fall through to accept.
			mid := q.Mid()
			st.mean = mid
			st.dev = mid * 0.001
			st.outRun = 0
			st.n++
			f.accepted++
			return OK
		}
	}
	if r != OK {
		f.rejected[r]++
		return r
	}
	if st == nil {
		st = &state{}
		f.bySymbol[q.Symbol] = st
	}
	st.outRun = 0
	mid := q.Mid()
	if st.n == 0 {
		st.mean = mid
		st.dev = mid * 0.001 // initial deviation guess: 10 bps
	} else {
		err := mid - st.mean
		st.mean += f.cfg.Gain * err
		st.dev += f.cfg.DevGain * (math.Abs(err) - st.dev)
	}
	st.n++
	f.accepted++
	return OK
}

// Accepted returns the count of accepted quotes.
func (f *Filter) Accepted() int { return f.accepted }

// Rejected returns the count of rejections for the given reason.
func (f *Filter) Rejected(r Reason) int { return f.rejected[r] }

// TotalRejected returns the count of all rejections.
func (f *Filter) TotalRejected() int {
	var n int
	for _, c := range f.rejected {
		n += c
	}
	return n
}

// Level returns the filter's current EWMA level estimate for a symbol
// and whether the symbol has been seen.
func (f *Filter) Level(symbol string) (mean, dev float64, ok bool) {
	st := f.bySymbol[symbol]
	if st == nil {
		return 0, 0, false
	}
	return st.mean, st.dev, true
}

// Clean filters a quote slice in one pass, returning the accepted
// quotes in order. A convenience wrapper over Accept for batch
// (backtest) use.
func Clean(cfg Config, quotes []taq.Quote) ([]taq.Quote, *Filter) {
	f := NewFilter(cfg)
	out := make([]taq.Quote, 0, len(quotes))
	for _, q := range quotes {
		if f.Accept(q) == OK {
			out = append(out, q)
		}
	}
	return out, f
}
