package screen

import "fmt"

// ExampleConfig screens a four-stock day: two stocks track each other
// closely, a third follows them loosely, and a fourth is unrelated.
// Keeping the closest half of the pair triangle retains the tracking
// pairs and drops everything involving the outlier.
func ExampleConfig() {
	returns := [][]float64{
		{0.010, 0.020, -0.010, 0.010},  // stock 0
		{0.011, 0.019, -0.010, 0.010},  // stock 1: tracks stock 0
		{0.012, 0.022, -0.011, 0.011},  // stock 2: loosely tracks both
		{-0.050, 0.060, -0.040, 0.050}, // stock 3: unrelated
	}

	cfg := Config{TopFrac: 0.5} // keep the closest half of all pairs
	kept, stats, err := Select(cfg, returns)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("surviving pair ids:", kept)
	fmt.Printf("pruned %.0f%% of %d pairs\n", 100*stats.PruneRatio(), stats.PairsTotal)

	// The zero value disables screening: every pair survives (nil
	// means "all pairs" to the engine).
	all, stats, _ := Select(Config{}, returns)
	fmt.Printf("disabled: kept %v of %d pairs\n", all, stats.PairsKept)
	// Output:
	// surviving pair ids: [0 1 3]
	// pruned 50% of 6 pairs
	// disabled: kept [] of 6 pairs
}
