package screen

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"marketminer/internal/taq"
)

// fourStockReturns builds a universe with a known distance structure:
// stocks 0 and 1 track each other tightly, stock 2 drifts away, stock
// 3 is wild. Pair (0,1) must rank first and every pair involving 3
// last.
func fourStockReturns() [][]float64 {
	const T = 120
	rng := rand.New(rand.NewSource(5))
	base := make([]float64, T)
	for i := range base {
		base[i] = 1e-3 * rng.NormFloat64()
	}
	rets := make([][]float64, 4)
	for s := range rets {
		rets[s] = make([]float64, T)
	}
	for i := 0; i < T; i++ {
		rets[0][i] = base[i] + 1e-5*rng.NormFloat64()
		rets[1][i] = base[i] + 1e-5*rng.NormFloat64()
		rets[2][i] = base[i] + 4e-4*rng.NormFloat64()
		rets[3][i] = 5e-2 * rng.NormFloat64()
	}
	return rets
}

func TestSelectRanksByPathDistance(t *testing.T) {
	rets := fourStockReturns()
	keep, st, err := Select(Config{TopFrac: 0.5}, rets)
	if err != nil {
		t.Fatal(err)
	}
	// 6 pairs, TopFrac 0.5 → ceil(3) kept.
	if st.PairsTotal != 6 || st.PairsKept != 3 || len(keep) != 3 {
		t.Fatalf("stats %+v keep %v, want 3 of 6", st, keep)
	}
	if got := st.PruneRatio(); got != 0.5 {
		t.Fatalf("prune ratio %v, want 0.5", got)
	}
	// The closest pair must survive, every pair with the wild stock
	// must be pruned.
	id01 := taq.PairID(0, 1, 4)
	found := false
	for _, k := range keep {
		if k == id01 {
			found = true
		}
		for _, bad := range []int{taq.PairID(0, 3, 4), taq.PairID(1, 3, 4), taq.PairID(2, 3, 4)} {
			if k == bad {
				t.Fatalf("wild-stock pair %d survived screening: %v", k, keep)
			}
		}
	}
	if !found {
		t.Fatalf("closest pair %d pruned: %v", id01, keep)
	}
	if !sort.IntsAreSorted(keep) {
		t.Fatalf("keep not ascending: %v", keep)
	}
}

func TestSelectDisabledKeepsEverything(t *testing.T) {
	keep, st, err := Select(Config{}, fourStockReturns())
	if err != nil {
		t.Fatal(err)
	}
	if keep != nil || st.PairsKept != st.PairsTotal || st.PruneRatio() != 0 {
		t.Fatalf("disabled screening pruned: keep=%v stats=%+v", keep, st)
	}
}

func TestSelectMaxSSDAndMinKeep(t *testing.T) {
	rets := fourStockReturns()
	// An absurdly tight absolute cap kills everything…
	keep, st, err := Select(Config{MaxSSD: 1e-300}, rets)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 0 || st.PairsKept != 0 {
		t.Fatalf("tight cap kept %v", keep)
	}
	// …unless MinKeep re-admits the closest pairs.
	keep, st, err = Select(Config{MaxSSD: 1e-300, MinKeep: 2}, rets)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 2 || st.PairsKept != 2 {
		t.Fatalf("MinKeep floor not honoured: %v %+v", keep, st)
	}
	// MinKeep beyond the triangle clamps to the triangle.
	keep, _, err = Select(Config{MaxSSD: 1e-300, MinKeep: 99}, rets)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 6 {
		t.Fatalf("MinKeep clamp: kept %d, want 6", len(keep))
	}
}

func TestSelectNonFiniteRanksLast(t *testing.T) {
	rets := fourStockReturns()
	rets[3][10] = math.NaN() // poisons every pair with stock 3
	keep, _, err := Select(Config{TopFrac: 0.5}, rets)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keep {
		for _, bad := range []int{taq.PairID(0, 3, 4), taq.PairID(1, 3, 4), taq.PairID(2, 3, 4)} {
			if k == bad {
				t.Fatalf("NaN pair %d survived: %v", k, keep)
			}
		}
	}
}

func TestSelectDeterministicAcrossStride(t *testing.T) {
	rets := fourStockReturns()
	a, _, err := Select(Config{TopFrac: 0.5, Stride: 1}, rets)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Select(Config{TopFrac: 0.5, Stride: 4}, rets)
	if err != nil {
		t.Fatal(err)
	}
	// The structure in this universe is coarse enough that a stride-4
	// subsample must reproduce the same ranking.
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stride changed selection: %v vs %v", a, b)
	}
	// And the same call twice is bit-identical.
	c, _, err := Select(Config{TopFrac: 0.5, Stride: 1}, rets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("selection not deterministic: %v vs %v", a, c)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{TopFrac: -0.1},
		{TopFrac: 1.5},
		{MaxSSD: -1},
		{MinKeep: -2},
	} {
		if _, _, err := Select(bad, fourStockReturns()); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}
