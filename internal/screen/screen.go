// Package screen implements the pair pre-screening stage: a cheap
// distance filter over normalized price paths that prunes the
// O(n²) pair triangle before any robust correlation work is spent on
// it. The paper's bottleneck is "the computation of all pair-wise
// correlations"; at a 1000-stock universe the triangle holds ~500k
// pairs, most of which never trade because their price paths are
// nowhere near each other. Screening removes those pairs for the cost
// of one O(n²·T/stride) sum-of-squared-differences pass — orders of
// magnitude cheaper than one Maronna window, let alone a day of them.
//
// The distance is the classic pairs-trading formation metric (Gatev,
// Goetzmann & Rouwenhorst): for each stock build the normalized price
// path — here the cumulative log-return path, i.e. log(P(t)/P(0)) —
// and for each pair sum the squared differences of the two paths. A
// small SSD means the two (dividend-adjusted, scale-free) price
// series track each other, which is exactly the population the
// correlation-triggered strategy can trade.
//
// Screening is approximate by construction: it can only drop pairs,
// never alter a surviving pair's series, so the contract is a recall
// gate, not bit-identity — a screened sweep must retain at least 95%
// of the unscreened sweep's trade PnL on the seed universe
// (TestScreenedSweepRecall). Selection itself is deterministic: ties
// break on the canonical pair id, so every shard of a sweep prunes
// identically.
package screen

import (
	"fmt"
	"math"
	"sort"

	"marketminer/internal/taq"
)

// Config tunes the pre-screening stage. The zero value disables
// screening entirely (every pair survives).
type Config struct {
	// TopFrac keeps the fraction of pairs with the smallest SSD,
	// 0 < TopFrac ≤ 1; 0 means no fractional cut. The kept count is
	// ceil(TopFrac · pairs).
	TopFrac float64
	// MaxSSD additionally drops any pair whose SSD exceeds this
	// absolute threshold; 0 means no absolute cut.
	MaxSSD float64
	// MinKeep is a floor on the number of surviving pairs: if the
	// fractional and absolute cuts leave fewer, the smallest-SSD pairs
	// are re-admitted up to MinKeep (bounded by the pair count). It
	// guards a sweep against an over-aggressive threshold silently
	// pruning the whole universe.
	MinKeep int
	// Stride subsamples the path when computing the SSD (every
	// Stride-th grid point); ≤ 1 means every point. The day grids are
	// fine (≈780 points at ∆s = 30s), so Stride 4–8 loses almost no
	// ranking fidelity while shrinking the screening pass further.
	Stride int
}

// Enabled reports whether the configuration prunes at all.
func (c Config) Enabled() bool { return c.TopFrac > 0 || c.MaxSSD > 0 }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TopFrac < 0 || c.TopFrac > 1 {
		return fmt.Errorf("screen: TopFrac %v outside [0, 1]", c.TopFrac)
	}
	if c.MaxSSD < 0 {
		return fmt.Errorf("screen: MaxSSD %v negative", c.MaxSSD)
	}
	if c.MinKeep < 0 {
		return fmt.Errorf("screen: MinKeep %d negative", c.MinKeep)
	}
	return nil
}

func (c Config) stride() int {
	if c.Stride > 1 {
		return c.Stride
	}
	return 1
}

// Stats reports what one screening pass did.
type Stats struct {
	// PairsTotal is the size of the full pair triangle.
	PairsTotal int
	// PairsKept is the number of surviving pairs.
	PairsKept int
}

// PruneRatio returns the fraction of pairs removed (0 when nothing
// was pruned or the triangle is empty).
func (s Stats) PruneRatio() float64 {
	if s.PairsTotal == 0 {
		return 0
	}
	return 1 - float64(s.PairsKept)/float64(s.PairsTotal)
}

// Select runs the screening pass over one day's per-stock log-return
// rows and returns the surviving canonical pair ids in ascending
// order. A disabled configuration returns nil (meaning "all pairs" to
// the engine) with PairsKept == PairsTotal. Pairs with non-finite
// SSDs rank last and survive only if MinKeep forces them in.
func Select(cfg Config, returns [][]float64) ([]int, Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	n := len(returns)
	total := n * (n - 1) / 2
	st := Stats{PairsTotal: total, PairsKept: total}
	if !cfg.Enabled() || total == 0 {
		return nil, st, nil
	}
	T := len(returns[0])
	for _, r := range returns {
		if len(r) < T {
			T = len(r)
		}
	}
	if T == 0 {
		return nil, st, fmt.Errorf("screen: empty return series")
	}

	// Normalized price paths: cumulative log returns, subsampled at
	// the configured stride. One row per stock, shared by all of the
	// stock's n-1 pairs.
	stride := cfg.stride()
	pts := (T + stride - 1) / stride
	paths := make([][]float64, n)
	flat := make([]float64, n*pts)
	for s, r := range returns {
		p := flat[s*pts : (s+1)*pts : (s+1)*pts]
		paths[s] = p
		var cum float64
		k := 0
		for t := 0; t < T; t++ {
			cum += r[t]
			if t%stride == 0 {
				p[k] = cum
				k++
			}
		}
	}

	// SSD per pair, indexed by canonical pair id.
	ssd := make([]float64, total)
	for i := 0; i < n; i++ {
		pi := paths[i]
		for j := i + 1; j < n; j++ {
			pj := paths[j][:len(pi)]
			var s float64
			for t := range pi {
				d := pi[t] - pj[t]
				s += d * d
			}
			ssd[taq.PairID(i, j, n)] = s
		}
	}

	// Rank by (SSD, id); non-finite SSDs sort last.
	order := make([]int, total)
	for k := range order {
		order[k] = k
	}
	key := func(k int) float64 {
		v := ssd[k]
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := key(order[a]), key(order[b])
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})

	topN := total
	if cfg.TopFrac > 0 {
		topN = int(math.Ceil(cfg.TopFrac * float64(total)))
		if topN > total {
			topN = total
		}
	}
	keep := make([]int, 0, topN)
	for _, k := range order[:topN] {
		if cfg.MaxSSD > 0 && !(key(k) <= cfg.MaxSSD) {
			break // order is sorted: everything after also exceeds
		}
		keep = append(keep, k)
	}
	// MinKeep floor: re-admit the smallest-SSD pairs past the cuts.
	floor := cfg.MinKeep
	if floor > total {
		floor = total
	}
	if len(keep) < floor {
		keep = append(keep[:0], order[:floor]...)
	}
	sort.Ints(keep)
	st.PairsKept = len(keep)
	return keep, st, nil
}
