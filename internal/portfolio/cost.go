package portfolio

import (
	"errors"
	"math"
)

// CostModel quantifies the "implementation shortfalls that occur in
// practice such as transaction costs, moving the market (on big
// orders) and lost opportunity" that the paper defers to future work.
// The backtest applies it per executed leg:
//
//   - Commission: a fixed fee per share (brokerage),
//   - SpreadCross: the fraction of the quoted half-spread paid to
//     cross it (1 = full aggressive fill at bid/ask; the frictionless
//     baseline trades at the BAM, i.e. 0),
//   - ImpactCoeff: linear market impact in fractions of price per
//     share traded, modelling "moving the market (on big orders)".
//
// The zero CostModel is the paper's frictionless setting.
type CostModel struct {
	Commission  float64 // $ per share
	SpreadCross float64 // fraction of half-spread paid per leg
	ImpactCoeff float64 // price fraction per share of participation
}

// Zero reports whether the model charges nothing.
func (c CostModel) Zero() bool {
	return c.Commission == 0 && c.SpreadCross == 0 && c.ImpactCoeff == 0
}

// Validate rejects negative components.
func (c CostModel) Validate() error {
	if c.Commission < 0 || c.SpreadCross < 0 || c.ImpactCoeff < 0 {
		return errors.New("portfolio: cost components must be non-negative")
	}
	return nil
}

// LegCost returns the dollar cost of executing one leg of `shares` at
// `price` with quoted half-spread `halfSpread`.
func (c CostModel) LegCost(shares int, price, halfSpread float64) float64 {
	sh := float64(shares)
	commission := c.Commission * sh
	spread := c.SpreadCross * halfSpread * sh
	impact := c.ImpactCoeff * sh * sh * price
	return commission + spread + impact
}

// RoundTripCost returns the total dollar cost of a completed pair
// trade: four legs (two at entry, two at exit), each paying
// commission, spread and impact. Half-spreads are approximated as
// halfSpreadBps of each leg's price — the synthetic market quotes a
// known typical spread, and real usage can substitute measured
// spreads.
func (c CostModel) RoundTripCost(p *PairPosition, longExit, shortExit, halfSpreadBps float64) float64 {
	hs := func(px float64) float64 { return px * halfSpreadBps * 1e-4 }
	return c.LegCost(p.LongSh, p.LongPx, hs(p.LongPx)) +
		c.LegCost(p.ShortSh, p.ShortPx, hs(p.ShortPx)) +
		c.LegCost(p.LongSh, longExit, hs(longExit)) +
		c.LegCost(p.ShortSh, shortExit, hs(shortExit))
}

// NetReturn returns the §III step-6 trade return net of costs:
// (π − cost) / gross entry exposure.
func (c CostModel) NetReturn(p *PairPosition, longExit, shortExit, halfSpreadBps float64) float64 {
	g := p.GrossEntry()
	if g <= 0 {
		return 0
	}
	pnl := p.PnL(longExit, shortExit)
	if !c.Zero() {
		pnl -= c.RoundTripCost(p, longExit, shortExit, halfSpreadBps)
	}
	return pnl / g
}

// BreakEvenReturn returns the gross return a trade must clear before
// costs for the given position shape — useful for sizing the
// divergence threshold d against frictions.
func (c CostModel) BreakEvenReturn(p *PairPosition, halfSpreadBps float64) float64 {
	g := p.GrossEntry()
	if g <= 0 {
		return 0
	}
	// Approximate exit prices with entry prices for the bound.
	return math.Abs(c.RoundTripCost(p, p.LongPx, p.ShortPx, halfSpreadBps)) / g
}
