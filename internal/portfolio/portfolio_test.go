package portfolio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSideString(t *testing.T) {
	if Buy.String() != "buy" || Sell.String() != "sell" {
		t.Error("side names wrong")
	}
}

func TestShareRatioPaperExample(t *testing.T) {
	// §III step 4: buying MSFT at $30, selling IBM at $130 → 5:1,
	// i.e. $150 long vs $130 short.
	nIBM, nMSFT := ShareRatio(130, 30, false) // short IBM (i), long MSFT (j)
	if nIBM != 1 || nMSFT != 5 {
		t.Fatalf("ratio = %d:%d, want 1:5", nIBM, nMSFT)
	}
	long := float64(nMSFT) * 30
	short := float64(nIBM) * 130
	if long <= short {
		t.Errorf("allocation not slightly long: long=%v short=%v", long, short)
	}
}

func TestShareRatioCeilWhenShortCheap(t *testing.T) {
	// Long i (expensive), short j (cheap): x = floor(pi/pj) = floor(4.33) = 4.
	ni, nj := ShareRatio(130, 30, true)
	if ni != 1 || nj != 4 {
		t.Errorf("long-i ratio = %d:%d, want 1:4", ni, nj)
	}
	// 1·130 long vs 4·30=120 short: slightly long. Good.
	if 130.0 < 4*30.0 {
		t.Error("long side should dominate")
	}
}

func TestShareRatioFlipsWhenPiSmaller(t *testing.T) {
	// pi < pj: the rule normalises by flipping the pair.
	ni, nj := ShareRatio(30, 130, true) // long i (cheap)
	// Equivalent to ShareRatio(130,30,false) = (1,5) then swapped.
	if nj != 1 || ni != 5 {
		t.Errorf("flipped ratio = %d:%d, want 5:1", ni, nj)
	}
}

func TestShareRatioNearEqualPrices(t *testing.T) {
	ni, nj := ShareRatio(50, 50, true)
	if ni != 1 || nj != 1 {
		t.Errorf("equal prices ratio = %d:%d, want 1:1", ni, nj)
	}
}

func TestShareRatioPanicsOnBadPrice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive price")
		}
	}()
	ShareRatio(0, 10, true)
}

// Property: the long notional is always ≥ the short notional ("as
// close to cash-neutral as possible, but just slightly on the long
// side"), and never more than one share-unit above it.
func TestShareRatioSlightlyLongProperty(t *testing.T) {
	f := func(piRaw, pjRaw uint16, longI bool) bool {
		pi := 1 + float64(piRaw%50000)/100
		pj := 1 + float64(pjRaw%50000)/100
		ni, nj := ShareRatio(pi, pj, longI)
		if ni < 1 || nj < 1 {
			return false
		}
		var long, short float64
		if longI {
			long, short = float64(ni)*pi, float64(nj)*pj
		} else {
			long, short = float64(nj)*pj, float64(ni)*pi
		}
		if long < short {
			return false
		}
		// The imbalance is bounded by one unit of the cheaper stock.
		cheap := math.Min(pi, pj)
		return long-short <= cheap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPairPositionAccounting(t *testing.T) {
	// Paper's step-6 example: long 5 MSFT @ $30, short 1 IBM @ $130;
	// exit MSFT $29, IBM $120 → PnL = -5 + 10 = 5; gross = 280.
	pos := &PairPosition{
		LongStock: 0, ShortStock: 1,
		LongSh: 5, ShortSh: 1,
		LongPx: 30, ShortPx: 130,
	}
	if g := pos.GrossEntry(); g != 280 {
		t.Errorf("GrossEntry = %v, want 280", g)
	}
	if n := pos.NetEntry(); n != 20 {
		t.Errorf("NetEntry = %v, want 20", n)
	}
	if p := pos.PnL(29, 120); p != 5 {
		t.Errorf("PnL = %v, want 5", p)
	}
	want := 5.0 / 280.0
	if r := pos.Return(29, 120); math.Abs(r-want) > 1e-12 {
		t.Errorf("Return = %v, want %v", r, want)
	}
}

func TestPairPositionZeroGross(t *testing.T) {
	pos := &PairPosition{}
	if pos.Return(10, 10) != 0 {
		t.Error("zero-gross position should return 0")
	}
}

func TestOrderNotional(t *testing.T) {
	o := Order{Shares: 7, Price: 12.5}
	if o.Notional() != 87.5 {
		t.Errorf("Notional = %v", o.Notional())
	}
}

func TestBookRoundTrip(t *testing.T) {
	b := NewBook()
	orders := []Order{
		{Stock: 0, Side: Buy, Shares: 5, Price: 30},
		{Stock: 1, Side: Sell, Shares: 1, Price: 130},
		{Stock: 0, Side: Sell, Shares: 5, Price: 29},
		{Stock: 1, Side: Buy, Shares: 1, Price: 120},
	}
	for _, o := range orders {
		if err := b.Apply(o); err != nil {
			t.Fatal(err)
		}
	}
	if !b.Flat() {
		t.Error("book should be flat after round trip")
	}
	if pnl := b.CashPnL(); math.Abs(pnl-5) > 1e-12 {
		t.Errorf("CashPnL = %v, want 5", pnl)
	}
	total, buys, sells := b.Orders()
	if total != 4 || buys != 2 || sells != 2 {
		t.Errorf("order counts = %d/%d/%d", total, buys, sells)
	}
	if b.GrossExposure() != 0 {
		t.Errorf("flat book gross = %v", b.GrossExposure())
	}
}

func TestBookOpenExposure(t *testing.T) {
	b := NewBook()
	b.Apply(Order{Stock: 3, Side: Buy, Shares: 10, Price: 20})
	if b.Flat() {
		t.Error("book with net shares reported flat")
	}
	if b.NetShares(3) != 10 {
		t.Errorf("NetShares = %d", b.NetShares(3))
	}
	if b.GrossExposure() != 200 {
		t.Errorf("GrossExposure = %v", b.GrossExposure())
	}
}

func TestBookRejectsBadOrders(t *testing.T) {
	b := NewBook()
	if err := b.Apply(Order{Shares: 0, Price: 10}); err != ErrBadOrder {
		t.Error("zero shares should be rejected")
	}
	if err := b.Apply(Order{Shares: 1, Price: 0}); err != ErrBadOrder {
		t.Error("zero price should be rejected")
	}
}

func TestCostModelZeroIsFrictionless(t *testing.T) {
	var c CostModel
	if !c.Zero() {
		t.Error("zero model should be frictionless")
	}
	pos := &PairPosition{LongSh: 5, ShortSh: 1, LongPx: 30, ShortPx: 130}
	gross := pos.Return(29, 120)
	if net := c.NetReturn(pos, 29, 120, 2.5); net != gross {
		t.Errorf("zero-cost net %v != gross %v", net, gross)
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := (CostModel{Commission: -1}).Validate(); err == nil {
		t.Error("negative commission should fail")
	}
	if err := (CostModel{Commission: 0.01, SpreadCross: 1, ImpactCoeff: 1e-7}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestCostModelLegCost(t *testing.T) {
	c := CostModel{Commission: 0.01, SpreadCross: 1, ImpactCoeff: 0}
	// 100 shares at $50, half-spread $0.02: 100·0.01 + 100·0.02 = $3.
	if got := c.LegCost(100, 50, 0.02); math.Abs(got-3) > 1e-12 {
		t.Errorf("LegCost = %v, want 3", got)
	}
	// Impact is quadratic in shares (linear impact × shares).
	ci := CostModel{ImpactCoeff: 1e-6}
	if got := ci.LegCost(100, 50, 0); math.Abs(got-1e-6*100*100*50) > 1e-12 {
		t.Errorf("impact LegCost = %v", got)
	}
}

func TestCostModelReducesReturn(t *testing.T) {
	pos := &PairPosition{LongSh: 5, ShortSh: 1, LongPx: 30, ShortPx: 130}
	c := CostModel{Commission: 0.01, SpreadCross: 1}
	gross := pos.Return(29, 120)
	net := c.NetReturn(pos, 29, 120, 2.5)
	if net >= gross {
		t.Errorf("net %v should be below gross %v", net, gross)
	}
	if be := c.BreakEvenReturn(pos, 2.5); be <= 0 {
		t.Errorf("break-even = %v, want > 0", be)
	}
}

func TestCostModelZeroGrossGuard(t *testing.T) {
	var pos PairPosition
	c := CostModel{Commission: 1}
	if c.NetReturn(&pos, 1, 1, 2.5) != 0 || c.BreakEvenReturn(&pos, 2.5) != 0 {
		t.Error("zero-gross position should cost 0")
	}
}
