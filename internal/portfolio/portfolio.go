// Package portfolio provides order, position and P&L accounting for
// the pair-trading strategy: the 1:x share-ratio rule of §III step 4,
// per-trade return accounting of step 6, and the basket book kept by
// the Figure-1 master process that "can be gathered … to perform
// additional tasks such as risk management and liquidity provisioning".
//
// Ownership contract: a Book is single-owner state — exactly one
// goroutine (the master/aggregator) mutates it, so it takes no locks;
// concurrent readers must go through that owner. All arithmetic is
// plain float64 with a fixed evaluation order, so position sizing and
// P&L are deterministic given the same order stream.
package portfolio

import (
	"errors"
	"fmt"
	"math"
)

// Side is the direction of an order leg.
type Side int

// Order sides.
const (
	Buy Side = iota
	Sell
)

// String names the side.
func (s Side) String() string {
	if s == Buy {
		return "buy"
	}
	return "sell"
}

// Order is one leg of a pair trade, the message type emitted by the
// strategy node toward the execution/master node.
type Order struct {
	Day      int
	Interval int
	Stock    int // universe index
	Symbol   string
	Side     Side
	Shares   int
	Price    float64
}

// Notional returns the order's dollar value.
func (o Order) Notional() float64 { return float64(o.Shares) * o.Price }

// ShareRatio implements §III step 4: for prices pi > pj, long i/short j
// uses ratio 1:⌊pi/pj⌋ and short i/long j uses 1:⌈pi/pj⌉, keeping the
// basket "as close to cash-neutral as possible, but just slightly on
// the long side". The returned counts are (shares of i, shares of j).
// It panics on non-positive prices — callers sample from a cleaned
// price grid, so that is a programming error.
func ShareRatio(pi, pj float64, longI bool) (ni, nj int) {
	if pi <= 0 || pj <= 0 {
		panic(fmt.Sprintf("portfolio: non-positive prices %v, %v", pi, pj))
	}
	if pi < pj {
		// Normalise: the rule is stated for pi > pj; flip the pair.
		nj, ni = ShareRatio(pj, pi, !longI)
		return ni, nj
	}
	ratio := pi / pj
	if longI {
		x := int(math.Floor(ratio))
		if x < 1 {
			x = 1
		}
		return 1, x
	}
	x := int(math.Ceil(ratio))
	if x < 1 {
		x = 1
	}
	return 1, x
}

// PairPosition is an open two-legged position.
type PairPosition struct {
	Day         int
	EntryS      int // entry interval
	LongStock   int
	ShortStock  int
	LongSh      int
	ShortSh     int
	LongPx      float64 // entry prices
	ShortPx     float64
	EntrySpread float64 // P_i - P_j at entry (canonical pair order)
	Retrace     float64 // retracement level L
	RetraceUp   bool    // reverse when spread ≥ L (true) or ≤ L (false)
}

// GrossEntry returns the entry gross exposure Pi·Ni + Pj·Nj, the
// denominator of the trade return in §III step 6.
func (p *PairPosition) GrossEntry() float64 {
	return float64(p.LongSh)*p.LongPx + float64(p.ShortSh)*p.ShortPx
}

// NetEntry returns long minus short notional at entry; the ratio rule
// keeps this small and non-negative ("slightly on the long side").
func (p *PairPosition) NetEntry() float64 {
	return float64(p.LongSh)*p.LongPx - float64(p.ShortSh)*p.ShortPx
}

// PnL values the position at exit prices.
func (p *PairPosition) PnL(longExit, shortExit float64) float64 {
	long := (longExit - p.LongPx) * float64(p.LongSh)
	short := (p.ShortPx - shortExit) * float64(p.ShortSh)
	return long + short
}

// Return computes the §III step-6 trade return
// R = π / (Pi·Ni + Pj·Nj) using entry gross exposure.
func (p *PairPosition) Return(longExit, shortExit float64) float64 {
	g := p.GrossEntry()
	if g <= 0 {
		return 0
	}
	return p.PnL(longExit, shortExit) / g
}

// Book is the master-side aggregate over all strategy instances: open
// orders netted per stock, realised P&L, and counters. It is the state
// behind "aggregating the results into a single basket, as opposed to
// many individual trade orders".
type Book struct {
	shares   map[int]int     // net shares per stock
	avgPx    map[int]float64 // volume-weighted average |price| traded
	realized float64
	orders   int
	buys     int
	sells    int
}

// NewBook returns an empty book.
func NewBook() *Book {
	return &Book{shares: make(map[int]int), avgPx: make(map[int]float64)}
}

// ErrBadOrder rejects orders with non-positive shares or price.
var ErrBadOrder = errors.New("portfolio: order needs positive shares and price")

// Apply nets one order into the book.
func (b *Book) Apply(o Order) error {
	if o.Shares <= 0 || o.Price <= 0 {
		return ErrBadOrder
	}
	b.orders++
	signed := o.Shares
	if o.Side == Sell {
		signed = -signed
		b.sells++
		b.realized += o.Notional()
	} else {
		b.buys++
		b.realized -= o.Notional()
	}
	b.shares[o.Stock] += signed
	b.avgPx[o.Stock] = o.Price
	return nil
}

// NetShares returns the net share count held in a stock.
func (b *Book) NetShares(stock int) int { return b.shares[stock] }

// Flat reports whether every stock nets to zero shares.
func (b *Book) Flat() bool {
	for _, n := range b.shares {
		if n != 0 {
			return false
		}
	}
	return true
}

// CashPnL returns cumulative cash from fills (sales minus purchases);
// once the book is flat this equals realised trading profit.
func (b *Book) CashPnL() float64 { return b.realized }

// GrossExposure values current holdings at their last traded prices.
func (b *Book) GrossExposure() float64 {
	var g float64
	for s, n := range b.shares {
		g += math.Abs(float64(n)) * b.avgPx[s]
	}
	return g
}

// Orders returns the total number of orders applied, with buy/sell
// breakdown.
func (b *Book) Orders() (total, buys, sells int) { return b.orders, b.buys, b.sells }
