package supervise

import (
	"context"
	"sync"

	"marketminer/internal/engine"
	"marketminer/internal/metrics"
)

// KeyFunc derives a stable quarantine key for a message. ok=false
// marks the message as unquarantinable: a stage that keeps failing on
// it fails the graph instead of skipping it, which is the right call
// for internally-generated messages (a panic there is a logic bug, not
// bad input data).
type KeyFunc func(msg engine.Message) (key string, ok bool)

// StageReport is a snapshot of one supervised stage's counters.
type StageReport struct {
	Name        string
	Processed   int64 // messages that completed cleanly
	Panics      int64 // panics recovered (including retried attempts)
	Retries     int64 // re-executions after a recovered panic
	Quarantined int64 // messages journaled + skipped after exhausted retries
	Skipped     int64 // messages skipped because their key was already quarantined
}

// Stage wraps an engine.ProcFunc with per-message panic isolation:
// a panic is recovered, the message retried up to Policy.Retries times
// with backoff, and — if it keeps killing the stage — quarantined
// (journaled and skipped) rather than re-fed forever. Emits from a
// failed attempt are buffered and discarded, so a retry can never
// double-deliver downstream. Returned (non-panic) errors pass through
// untouched: an explicit error is an intentional stream abort.
//
// A clean message resets the consecutive-failure count; MaxFailures
// consecutive quarantines (or exhausted retries on an unquarantinable
// message) open the circuit and fail the graph.
//
// Retries are at-least-once: a proc that mutated shared state before
// panicking will re-apply that work. Stages whose per-message effects
// are not idempotent should set Policy.Retries < 0 (quarantine on
// first panic).
type Stage struct {
	name string
	pol  Policy
	bo   *backoff
	quar *Quarantine
	key  KeyFunc

	mu          sync.Mutex
	rep         StageReport
	consecutive int
}

// NewStage returns a stage supervisor. quar may be nil (failing
// messages then always fail the graph once retries are exhausted);
// key may be nil (no message is quarantinable).
func NewStage(name string, p Policy, quar *Quarantine, key KeyFunc) *Stage {
	p = p.withDefaults()
	return &Stage{name: name, pol: p, bo: newBackoff(p), quar: quar, key: key}
}

// Report snapshots the stage counters.
func (s *Stage) Report() StageReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.rep
	rep.Name = s.name
	return rep
}

// Wrap returns the supervised version of proc.
func (s *Stage) Wrap(proc engine.ProcFunc) engine.ProcFunc {
	return func(ctx context.Context, msg engine.Message, emit engine.Emit) error {
		var key string
		keyed := false
		if s.key != nil {
			key, keyed = s.key(msg)
		}
		if keyed && s.quar != nil && s.quar.Seen(key) {
			s.mu.Lock()
			s.rep.Skipped++
			s.mu.Unlock()
			metrics.Counter("supervise.skipped").Inc()
			return nil
		}

		var lastErr error
		for attempt := 0; attempt <= s.pol.Retries; attempt++ {
			if attempt > 0 {
				s.mu.Lock()
				s.rep.Retries++
				s.mu.Unlock()
				if !s.pol.Sleep(ctx, s.bo.delay(attempt)) {
					return ctx.Err()
				}
			}
			// Buffer emits: only a clean return forwards downstream, so
			// an attempt that emitted before panicking cannot double-send.
			var buffered []engine.Message
			err := runRecovered(s.name, func() error {
				return proc(ctx, msg, func(m engine.Message) bool {
					buffered = append(buffered, m)
					return true
				})
			})
			if err == nil {
				for _, m := range buffered {
					if !emit(m) {
						return nil // graph shutting down
					}
				}
				s.mu.Lock()
				s.rep.Processed++
				s.consecutive = 0
				s.mu.Unlock()
				return nil
			}
			if _, ok := err.(*PanicError); !ok {
				return err // explicit stream abort, not a crash
			}
			s.mu.Lock()
			s.rep.Panics++
			s.mu.Unlock()
			metrics.Counter("supervise.panics").Inc()
			lastErr = err
		}

		// Retries exhausted on a recurring panic.
		s.mu.Lock()
		s.consecutive++
		tripped := s.consecutive >= s.pol.MaxFailures
		s.mu.Unlock()
		if keyed && s.quar != nil && !tripped {
			if qerr := s.quar.Record(s.name, key, lastErr.Error()); qerr != nil {
				return qerr
			}
			s.mu.Lock()
			s.rep.Quarantined++
			s.mu.Unlock()
			metrics.Counter("supervise.quarantined").Inc()
			return nil
		}
		if tripped {
			metrics.Counter("supervise.circuit_open").Inc()
			s.mu.Lock()
			failures := s.consecutive
			s.mu.Unlock()
			return &CircuitError{Name: s.name, Failures: failures, Last: lastErr}
		}
		return lastErr
	}
}
