package supervise

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"marketminer/internal/engine"
)

// runStageGraph feeds msgs through a single supervised node and
// collects what reaches the sink.
func runStageGraph(t *testing.T, st *Stage, proc engine.ProcFunc, msgs []int) ([]int, error) {
	t.Helper()
	g := engine.NewGraph()
	src := g.Source("src", func(ctx context.Context, emit engine.Emit) error {
		for _, m := range msgs {
			if !emit(m) {
				return nil
			}
		}
		return nil
	})
	node := g.Node("stage", 1, st.Wrap(proc))
	var got []int
	snk := g.Node("sink", 1, func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		got = append(got, m.(int))
		return nil
	})
	g.Connect(src, node, 4)
	g.Connect(node, snk, 4)
	err := g.Run(context.Background())
	return got, err
}

func intKey(m engine.Message) (string, bool) {
	i, ok := m.(int)
	return fmt.Sprintf("msg-%d", i), ok
}

func TestStageQuarantinesPoisonMessage(t *testing.T) {
	quar, err := OpenQuarantine("")
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{}
	st := NewStage("stage", testPolicy(clk, 5), quar, intKey)

	attempts := map[int]int{}
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		i := m.(int)
		attempts[i]++
		if i == 3 {
			panic("poison")
		}
		emit(i)
		return nil
	}
	got, err := runStageGraph(t, st, proc, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	want := []int{0, 1, 2, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delivered %v, want %v (poison skipped)", got, want)
	}
	if attempts[3] != 3 { // 1 initial + Retries(2)
		t.Errorf("poison attempts = %d, want 3", attempts[3])
	}
	if !quar.Seen("msg-3") || quar.Len() != 1 {
		t.Errorf("quarantine: seen=%v len=%d", quar.Seen("msg-3"), quar.Len())
	}
	rep := st.Report()
	if rep.Processed != 5 || rep.Quarantined != 1 || rep.Panics != 3 || rep.Retries != 2 {
		t.Errorf("report: %+v", rep)
	}
	recs := quar.Records()
	if len(recs) != 1 || recs[0].Stage != "stage" || recs[0].Key != "msg-3" {
		t.Errorf("records: %+v", recs)
	}
}

func TestStageSkipsAlreadyQuarantined(t *testing.T) {
	quar, _ := OpenQuarantine("")
	if err := quar.Record("stage", "msg-2", "poisoned in a previous life"); err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{}
	st := NewStage("stage", testPolicy(clk, 5), quar, intKey)
	calls := 0
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		calls++
		emit(m.(int))
		return nil
	}
	got, err := runStageGraph(t, st, proc, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 3}) {
		t.Errorf("delivered %v, want [1 3]", got)
	}
	if calls != 2 {
		t.Errorf("proc ran %d times, want 2 (quarantined message must not be re-fed)", calls)
	}
	if st.Report().Skipped != 1 {
		t.Errorf("skipped = %d, want 1", st.Report().Skipped)
	}
}

func TestStageRetrySucceedsWithoutDoubleEmit(t *testing.T) {
	// The message emits downstream *before* panicking on its first
	// attempt; buffered emits must make the retry side-effect-atomic:
	// exactly one delivery.
	quar, _ := OpenQuarantine("")
	clk := &fakeClock{}
	st := NewStage("stage", testPolicy(clk, 5), quar, intKey)
	attempt := 0
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		emit(m.(int) * 10)
		attempt++
		if attempt == 1 {
			panic("crash after emit")
		}
		return nil
	}
	got, err := runStageGraph(t, st, proc, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]int{70}) {
		t.Errorf("delivered %v, want exactly one 70", got)
	}
	rep := st.Report()
	if rep.Processed != 1 || rep.Retries != 1 || rep.Quarantined != 0 {
		t.Errorf("report: %+v", rep)
	}
}

func TestStageExplicitErrorPassesThrough(t *testing.T) {
	quar, _ := OpenQuarantine("")
	clk := &fakeClock{}
	st := NewStage("stage", testPolicy(clk, 5), quar, intKey)
	sentinel := errors.New("intentional abort")
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		return sentinel
	}
	_, err := runStageGraph(t, st, proc, []int{1})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the stage's own error (no retry, no quarantine)", err)
	}
	if quar.Len() != 0 {
		t.Errorf("explicit error was quarantined")
	}
}

func TestStageCircuitBreakerOnConsecutivePoison(t *testing.T) {
	// Every message is poison: after MaxFailures consecutive
	// quarantines the stage must stop absorbing and fail the graph.
	quar, _ := OpenQuarantine("")
	clk := &fakeClock{}
	p := testPolicy(clk, 5)
	p.MaxFailures = 3
	p.Retries = -1 // quarantine on first panic; fewer attempts to count
	st := NewStage("stage", p, quar, intKey)
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		panic("all poison")
	}
	_, err := runStageGraph(t, st, proc, []int{1, 2, 3, 4, 5, 6, 7, 8})
	var ce *CircuitError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CircuitError", err)
	}
	if ce.Failures != 3 {
		t.Errorf("failures = %d, want 3", ce.Failures)
	}
	if quar.Len() != 2 { // first two quarantined, third trips the breaker
		t.Errorf("quarantined %d, want 2", quar.Len())
	}
}

func TestStageUnquarantinableFailureFailsGraph(t *testing.T) {
	// Messages with no key (internal message types) must not be
	// silently skipped: exhausted retries fail the graph.
	clk := &fakeClock{}
	st := NewStage("stage", testPolicy(clk, 5), nil, nil)
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		panic("logic bug")
	}
	_, err := runStageGraph(t, st, proc, []int{1})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError surfaced", err)
	}
}

func TestStageCleanMessageResetsBreaker(t *testing.T) {
	quar, _ := OpenQuarantine("")
	clk := &fakeClock{}
	p := testPolicy(clk, 5)
	p.MaxFailures = 3
	p.Retries = -1
	st := NewStage("stage", p, quar, intKey)
	proc := func(ctx context.Context, m engine.Message, emit engine.Emit) error {
		if m.(int)%2 == 1 {
			panic("odd poison")
		}
		emit(m.(int))
		return nil
	}
	// Poison never arrives MaxFailures times consecutively.
	got, err := runStageGraph(t, st, proc, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatalf("interleaved poison tripped the breaker: %v", err)
	}
	if len(got) != 5 {
		t.Errorf("delivered %d messages, want 5", len(got))
	}
	if quar.Len() != 5 {
		t.Errorf("quarantined %d, want 5", quar.Len())
	}
}
