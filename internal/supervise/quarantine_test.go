package supervise

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQuarantinePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.jsonl")
	q, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Record("corr", "quote-17", "panic: NaN mid"); err != nil {
		t.Fatal(err)
	}
	if err := q.Record("corr", "quote-42", "panic: bad index"); err != nil {
		t.Fatal(err)
	}
	if err := q.Record("corr", "quote-17", "duplicate record is a no-op"); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if q2.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2", q2.Len())
	}
	if !q2.Seen("quote-17") || !q2.Seen("quote-42") || q2.Seen("quote-99") {
		t.Errorf("seen set wrong after reload")
	}
	recs := q2.Records()
	if recs[0].Reason != "panic: NaN mid" {
		t.Errorf("first record overwritten by duplicate: %+v", recs[0])
	}
	if q2.Healed() {
		t.Error("clean file reported healed")
	}
}

func TestQuarantineHealsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.jsonl")
	q, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	q.Record("s", "a", "r1")
	q.Record("s", "b", "r2")
	q.Close()

	// Simulate a crash mid-append: garbage trailing bytes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":123,"r":{"stage":"s","key`)
	f.Close()

	q2, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Healed() {
		t.Error("torn tail not reported as healed")
	}
	if q2.Len() != 2 || !q2.Seen("a") || !q2.Seen("b") {
		t.Fatalf("intact records lost: len=%d", q2.Len())
	}
	// The healed journal must accept new appends and reload cleanly.
	if err := q2.Record("s", "c", "r3"); err != nil {
		t.Fatal(err)
	}
	q2.Close()
	q3, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if q3.Len() != 3 || q3.Healed() {
		t.Errorf("after heal+append: len=%d healed=%v, want 3/false", q3.Len(), q3.Healed())
	}
}

func TestQuarantineRejectsBitFlippedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quarantine.jsonl")
	q, _ := OpenQuarantine(path)
	q.Record("s", "a", "r1")
	q.Record("s", "b", "r2")
	q.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the *second* record's payload.
	lines := 0
	for i, c := range raw {
		if c == '\n' {
			lines++
			if lines == 1 {
				raw[i+12] ^= 0x01
				break
			}
		}
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if !q2.Healed() || q2.Len() != 1 || !q2.Seen("a") {
		t.Errorf("bit flip handling: healed=%v len=%d", q2.Healed(), q2.Len())
	}
}

func TestQuarantineMemoryOnly(t *testing.T) {
	q, err := OpenQuarantine("")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Record("s", "k", "r"); err != nil {
		t.Fatal(err)
	}
	if !q.Seen("k") || q.Len() != 1 {
		t.Error("memory-only quarantine not recording")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}
