package supervise

import (
	"context"
	"sync/atomic"
)

// DropPolicy selects what a full Queue does with a new message.
type DropPolicy int

const (
	// Block applies backpressure: Push waits for space (the lossless
	// default — the ingress queue of the supervised pipeline uses it,
	// so chaos-level bursts slow the source instead of losing quotes).
	Block DropPolicy = iota
	// DropOldest evicts the oldest queued message to admit the new one
	// (a live ticker display wants the freshest data).
	DropOldest
	// DropNewest discards the incoming message when full.
	DropNewest
)

// QueueStats is a snapshot of a queue's accounting.
type QueueStats struct {
	Pushed    int64 // messages admitted
	Popped    int64 // messages consumed
	Dropped   int64 // messages lost to DropOldest/DropNewest
	Blocked   int64 // Block-mode pushes that had to wait (backpressure events)
	HighWater int64 // maximum observed depth
}

// Queue is a bounded FIFO with explicit backpressure and drop
// accounting, the instrumented replacement for a bare channel between
// a quote source and the DAG. Pushes and Pops may run from concurrent
// goroutines — the counters are atomic, and at quiescence (all
// producers stopped, queue drained) they reconcile exactly:
// DropOldest admits everything, so Pushed == Popped + Dropped;
// DropNewest discards at the door, so Offered == Pushed + Dropped and
// Pushed == Popped. Close is still a single-owner call, made only
// after every producer's final Push.
type Queue[T any] struct {
	ch      chan T
	pol     DropPolicy
	pushed  atomic.Int64
	popped  atomic.Int64
	dropped atomic.Int64
	blocked atomic.Int64
	high    atomic.Int64
}

// NewQueue returns a queue with the given capacity (clamped to ≥ 1).
func NewQueue[T any](capacity int, pol DropPolicy) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity), pol: pol}
}

// Push offers v. It returns false only when ctx was cancelled before
// the message could be admitted (Block mode); drop modes always return
// true, counting any loss in Stats.
func (q *Queue[T]) Push(ctx context.Context, v T) bool {
	switch q.pol {
	case DropNewest:
		select {
		case q.ch <- v:
			q.admitted()
		default:
			q.dropped.Add(1)
		}
		return true
	case DropOldest:
		for {
			select {
			case q.ch <- v:
				q.admitted()
				return true
			default:
			}
			select {
			case <-q.ch:
				q.dropped.Add(1)
			default:
			}
		}
	default: // Block
		select {
		case q.ch <- v:
			q.admitted()
			return true
		default:
			q.blocked.Add(1)
		}
		select {
		case q.ch <- v:
			q.admitted()
			return true
		case <-ctx.Done():
			return false
		}
	}
}

func (q *Queue[T]) admitted() {
	q.pushed.Add(1)
	depth := int64(len(q.ch))
	for {
		cur := q.high.Load()
		if depth <= cur || q.high.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// Pop takes the next message; ok=false means the queue is closed and
// drained, or ctx was cancelled.
func (q *Queue[T]) Pop(ctx context.Context) (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		if ok {
			q.popped.Add(1)
		}
		return v, ok
	case <-ctx.Done():
		var zero T
		return zero, false
	}
}

// Close marks the end of the stream. Producer-side only, after the
// final Push.
func (q *Queue[T]) Close() { close(q.ch) }

// Stats snapshots the queue accounting.
func (q *Queue[T]) Stats() QueueStats {
	return QueueStats{
		Pushed:    q.pushed.Load(),
		Popped:    q.popped.Load(),
		Dropped:   q.dropped.Load(),
		Blocked:   q.blocked.Load(),
		HighWater: q.high.Load(),
	}
}
