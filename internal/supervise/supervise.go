// Package supervise is the fault-tolerance runtime around the stream
// engine: restart policies with jittered exponential backoff and a
// max-restart circuit breaker, per-message panic isolation for DAG
// stages with poison-message quarantine, bounded queues with explicit
// backpressure and drop accounting, deadline-bounded graceful drain,
// and CRC-guarded atomic-rename snapshots for warm state.
//
// The paper's MarketMiner is a long-running platform fed by live TAQ
// data; its MPI ranks were supervised by the cluster scheduler. In the
// Go rewrite the process itself must play scheduler: a panicking stage
// or a poisoned quote must cost one message or one restart, never the
// day's correlation state. Everything here is deterministic under an
// injected clock and rng, so the restart machinery itself is testable
// to the same bit-for-bit standard as the kernels (see DESIGN.md
// §Robustness).
package supervise

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"marketminer/internal/metrics"
)

// Policy configures restart and retry behaviour for one supervised
// task or stage. The zero value of every field takes the documented
// default, so Policy{} is a usable production policy.
type Policy struct {
	// InitialBackoff is the delay before the first restart (default
	// 10ms); consecutive failures grow it by BackoffFactor (default 2)
	// up to MaxBackoff (default 2s). Each applied delay is jittered
	// uniformly in [d/2, d], the same decorrelation scheme as the feed
	// collector's reconnect loop.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	BackoffFactor  float64
	// MaxFailures is the circuit breaker: this many consecutive
	// failures (restarts without progress, or poisoned messages
	// without a clean one in between) abort with a CircuitError
	// instead of retrying forever (default 8).
	MaxFailures int
	// Retries is the number of times a Stage re-runs a message whose
	// processing panicked before quarantining it (default 2). Retried
	// work must be idempotent or harmless to repeat; stages that are
	// not should set Retries < 0, which disables retrying (a first
	// panic quarantines immediately).
	Retries int
	// Jitter, when non-nil, replaces the backoff jitter rng. The
	// default is a private deterministically-seeded rng per backoff
	// instance; inject a seeded one to pin a test's exact schedule.
	Jitter *rand.Rand
	// Sleep, when non-nil, replaces the real backoff wait; it must
	// return false iff ctx was cancelled before the delay elapsed.
	Sleep func(ctx context.Context, d time.Duration) bool
}

func (p Policy) withDefaults() Policy {
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	if p.MaxFailures <= 0 {
		p.MaxFailures = 8
	}
	if p.Retries == 0 {
		p.Retries = 2
	} else if p.Retries < 0 {
		p.Retries = 0
	}
	if p.Sleep == nil {
		p.Sleep = func(ctx context.Context, d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return true
			case <-ctx.Done():
				return false
			}
		}
	}
	return p
}

// backoff computes jittered exponential delays. Safe for concurrent
// use (stage workers may back off in parallel).
type backoff struct {
	pol Policy
	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(p Policy) *backoff {
	rng := p.Jitter
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &backoff{pol: p, rng: rng}
}

// delay returns the jittered backoff for the given consecutive-failure
// count (1-based).
func (b *backoff) delay(failure int) time.Duration {
	d := b.pol.InitialBackoff
	for i := 1; i < failure; i++ {
		d = time.Duration(float64(d) * b.pol.BackoffFactor)
		if d >= b.pol.MaxBackoff {
			d = b.pol.MaxBackoff
			break
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
}

// CircuitError reports an opened circuit breaker: the supervised unit
// failed MaxFailures consecutive times without progress.
type CircuitError struct {
	Name     string
	Failures int
	Last     error
}

func (e *CircuitError) Error() string {
	return fmt.Sprintf("supervise: %s circuit open after %d consecutive failures: %v", e.Name, e.Failures, e.Last)
}

func (e *CircuitError) Unwrap() error { return e.Last }

// PanicError reports a panic recovered by the supervision layer.
type PanicError struct {
	Name  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("supervise: %s panicked: %v\n%s", e.Name, e.Value, e.Stack)
}

// runRecovered invokes fn, converting a panic into a *PanicError.
func runRecovered(name string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Name: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// TaskReport summarises one supervised task run.
type TaskReport struct {
	Restarts int   // times the task was restarted after a failure
	Panics   int   // failures that were panics (vs returned errors)
	LastErr  error // most recent failure (nil after a clean finish)
}

// Run executes task under restart supervision until it returns nil
// (clean finish), the context is cancelled, or the circuit opens.
//
// task receives a progress callback; calling it marks the current
// incarnation as having made progress, which resets the consecutive-
// failure count — so a task that crashes at a *different* point each
// time keeps being restarted (it is getting somewhere, e.g. resuming
// further from each snapshot), while one that dies instantly every
// time trips the breaker after Policy.MaxFailures attempts. Both
// panics and returned errors count as failures; backoff applies
// between restarts.
func Run(ctx context.Context, name string, p Policy, task func(ctx context.Context, progress func()) error) (TaskReport, error) {
	p = p.withDefaults()
	bo := newBackoff(p)
	var rep TaskReport
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		progressed := false
		err := runRecovered(name, func() error { return task(ctx, func() { progressed = true }) })
		if err == nil {
			rep.LastErr = nil
			return rep, nil
		}
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		if _, ok := err.(*PanicError); ok {
			rep.Panics++
		}
		rep.LastErr = err
		if progressed {
			failures = 0
		}
		failures++
		if failures >= p.MaxFailures {
			metrics.Counter("supervise.circuit_open").Inc()
			return rep, &CircuitError{Name: name, Failures: failures, Last: err}
		}
		rep.Restarts++
		metrics.Counter("supervise.restarts").Inc()
		if !p.Sleep(ctx, bo.delay(failures)) {
			return rep, ctx.Err()
		}
	}
}

// GracefulDrain coordinates a deadline-bounded stop: it waits for done
// while ctx is live; once ctx is cancelled it allows the pipeline up
// to timeout to finish in-flight work, then calls force (the hard
// cancel) and waits for done unconditionally. It returns true when the
// drain completed without forcing.
//
// The caller wires the soft side itself (stop the source when ctx
// dies); GracefulDrain owns only the deadline and the escalation.
func GracefulDrain(ctx context.Context, done <-chan struct{}, timeout time.Duration, force func()) bool {
	select {
	case <-done:
		return true
	case <-ctx.Done():
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		force()
		<-done
		return false
	}
}
