package supervise

import (
	"context"
	"testing"
	"time"
)

func TestQueueBlockModeLosslessWithBackpressure(t *testing.T) {
	q := NewQueue[int](2, Block)
	ctx := context.Background()
	done := make(chan []int)
	go func() {
		var got []int
		for {
			v, ok := q.Pop(ctx)
			if !ok {
				done <- got
				return
			}
			got = append(got, v)
			time.Sleep(time.Millisecond) // slow consumer forces blocking
		}
	}()
	const n = 50
	for i := 0; i < n; i++ {
		if !q.Push(ctx, i) {
			t.Fatalf("push %d returned false without cancellation", i)
		}
	}
	q.Close()
	got := <-done
	if len(got) != n {
		t.Fatalf("delivered %d, want %d (Block mode must be lossless)", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, FIFO order broken", i, v)
		}
	}
	st := q.Stats()
	if st.Pushed != n || st.Popped != n || st.Dropped != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Blocked == 0 {
		t.Errorf("no backpressure recorded against a slow consumer: %+v", st)
	}
	if st.HighWater < 1 || st.HighWater > 2 {
		t.Errorf("high water %d outside capacity bounds", st.HighWater)
	}
}

func TestQueueBlockModePushCancels(t *testing.T) {
	q := NewQueue[int](1, Block)
	ctx, cancel := context.WithCancel(context.Background())
	q.Push(ctx, 1) // fills the queue; no consumer
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if q.Push(ctx, 2) {
		t.Fatal("push on a full queue with cancelled context returned true")
	}
}

func TestQueueDropNewest(t *testing.T) {
	q := NewQueue[int](2, DropNewest)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if !q.Push(ctx, i) {
			t.Fatal("drop-mode push returned false")
		}
	}
	q.Close()
	var got []int
	for {
		v, ok := q.Pop(ctx)
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("kept %v, want the oldest [0 1]", got)
	}
	if st := q.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue[int](2, DropOldest)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		q.Push(ctx, i)
	}
	q.Close()
	var got []int
	for {
		v, ok := q.Pop(ctx)
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("kept %v, want the newest [3 4]", got)
	}
	if st := q.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
}

func TestQueuePopCancel(t *testing.T) {
	q := NewQueue[int](1, Block)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, ok := q.Pop(ctx); ok {
		t.Fatal("pop on empty queue with cancelled context returned ok")
	}
}
