package supervise

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestQueueBlockModeLosslessWithBackpressure(t *testing.T) {
	q := NewQueue[int](2, Block)
	ctx := context.Background()
	done := make(chan []int)
	go func() {
		var got []int
		for {
			v, ok := q.Pop(ctx)
			if !ok {
				done <- got
				return
			}
			got = append(got, v)
			time.Sleep(time.Millisecond) // slow consumer forces blocking
		}
	}()
	const n = 50
	for i := 0; i < n; i++ {
		if !q.Push(ctx, i) {
			t.Fatalf("push %d returned false without cancellation", i)
		}
	}
	q.Close()
	got := <-done
	if len(got) != n {
		t.Fatalf("delivered %d, want %d (Block mode must be lossless)", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, FIFO order broken", i, v)
		}
	}
	st := q.Stats()
	if st.Pushed != n || st.Popped != n || st.Dropped != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Blocked == 0 {
		t.Errorf("no backpressure recorded against a slow consumer: %+v", st)
	}
	if st.HighWater < 1 || st.HighWater > 2 {
		t.Errorf("high water %d outside capacity bounds", st.HighWater)
	}
}

func TestQueueBlockModePushCancels(t *testing.T) {
	q := NewQueue[int](1, Block)
	ctx, cancel := context.WithCancel(context.Background())
	q.Push(ctx, 1) // fills the queue; no consumer
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if q.Push(ctx, 2) {
		t.Fatal("push on a full queue with cancelled context returned true")
	}
}

func TestQueueDropNewest(t *testing.T) {
	q := NewQueue[int](2, DropNewest)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if !q.Push(ctx, i) {
			t.Fatal("drop-mode push returned false")
		}
	}
	q.Close()
	var got []int
	for {
		v, ok := q.Pop(ctx)
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("kept %v, want the oldest [0 1]", got)
	}
	if st := q.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue[int](2, DropOldest)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		q.Push(ctx, i)
	}
	q.Close()
	var got []int
	for {
		v, ok := q.Pop(ctx)
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("kept %v, want the newest [3 4]", got)
	}
	if st := q.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
}

func TestQueuePopCancel(t *testing.T) {
	q := NewQueue[int](1, Block)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, ok := q.Pop(ctx); ok {
		t.Fatal("pop on empty queue with cancelled context returned ok")
	}
}

// TestQueueDropAccountingConcurrentProducers reconciles the drop
// counters with many producers racing each other and a concurrent
// consumer: whatever interleaving the scheduler picks, every offered
// message must be accounted for exactly once.
func TestQueueDropAccountingConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 400
		capacity  = 4
	)
	offered := int64(producers * perProd)
	for _, tc := range []struct {
		name string
		pol  DropPolicy
	}{
		{"DropOldest", DropOldest},
		{"DropNewest", DropNewest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQueue[int](capacity, tc.pol)
			ctx := context.Background()

			var consumed int64
			consumerDone := make(chan struct{})
			go func() {
				defer close(consumerDone)
				for {
					if _, ok := q.Pop(ctx); !ok {
						return
					}
					consumed++
				}
			}()

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProd; i++ {
						if !q.Push(ctx, p*perProd+i) {
							t.Errorf("drop-mode Push returned false")
							return
						}
					}
				}(p)
			}
			wg.Wait()
			q.Close() // all producers joined: single-owner close
			<-consumerDone

			st := q.Stats()
			if st.Popped != consumed {
				t.Fatalf("Popped=%d but consumer saw %d", st.Popped, consumed)
			}
			if st.HighWater > capacity {
				t.Errorf("HighWater %d exceeds capacity %d", st.HighWater, capacity)
			}
			if st.Blocked != 0 {
				t.Errorf("Blocked=%d in a drop mode", st.Blocked)
			}
			switch tc.pol {
			case DropOldest:
				// Every offer is admitted; admitted = popped + evicted.
				if st.Pushed != offered {
					t.Errorf("Pushed=%d, want %d (DropOldest admits all)", st.Pushed, offered)
				}
				if st.Popped+st.Dropped != st.Pushed {
					t.Errorf("accounting leak: popped %d + dropped %d != pushed %d",
						st.Popped, st.Dropped, st.Pushed)
				}
			case DropNewest:
				// Offers are either admitted or dropped at the door, and
				// everything admitted is eventually popped.
				if st.Pushed+st.Dropped != offered {
					t.Errorf("accounting leak: pushed %d + dropped %d != offered %d",
						st.Pushed, st.Dropped, offered)
				}
				if st.Popped != st.Pushed {
					t.Errorf("drained queue: popped %d != pushed %d", st.Popped, st.Pushed)
				}
			}
		})
	}
}
