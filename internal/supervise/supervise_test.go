package supervise

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// fakeClock records requested delays and never actually sleeps.
type fakeClock struct {
	slept []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) bool {
	f.slept = append(f.slept, d)
	return ctx.Err() == nil
}

func testPolicy(clk *fakeClock, seed int64) Policy {
	return Policy{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		BackoffFactor:  2,
		Jitter:         rand.New(rand.NewSource(seed)),
		Sleep:          clk.sleep,
	}
}

func TestRunRestartsAfterPanicUntilSuccess(t *testing.T) {
	clk := &fakeClock{}
	runs := 0
	rep, err := Run(context.Background(), "task", testPolicy(clk, 7), func(ctx context.Context, progress func()) error {
		runs++
		if runs < 4 {
			panic("transient crash")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if runs != 4 || rep.Restarts != 3 || rep.Panics != 3 {
		t.Errorf("runs=%d restarts=%d panics=%d, want 4/3/3", runs, rep.Restarts, rep.Panics)
	}
	if rep.LastErr != nil {
		t.Errorf("LastErr = %v after clean finish", rep.LastErr)
	}
	if len(clk.slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(clk.slept))
	}
}

func TestRunBackoffScheduleDeterministic(t *testing.T) {
	run := func() []time.Duration {
		clk := &fakeClock{}
		p := testPolicy(clk, 11)
		p.MaxFailures = 7
		_, err := Run(context.Background(), "task", p, func(ctx context.Context, progress func()) error {
			return errors.New("always fails")
		})
		var ce *CircuitError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CircuitError", err)
		}
		return clk.slept
	}
	first := run()
	if len(first) != 6 { // MaxFailures=7 → sleeps between failures 1..6
		t.Fatalf("slept %d times, want 6: %v", len(first), first)
	}
	// Exponential growth capped at MaxBackoff, jittered in [d/2, d].
	base := []time.Duration{10, 20, 40, 80, 80, 80}
	rng := rand.New(rand.NewSource(11))
	for i, d := range first {
		b := base[i] * time.Millisecond
		want := b/2 + time.Duration(rng.Int63n(int64(b/2)+1))
		if d != want {
			t.Errorf("delay %d = %v, want %v", i, d, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedule not reproducible: %v vs %v", first, second)
		}
	}
}

func TestRunCircuitBreakerCountsConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{}
	p := testPolicy(clk, 3)
	p.MaxFailures = 4
	runs := 0
	rep, err := Run(context.Background(), "stuck", p, func(ctx context.Context, progress func()) error {
		runs++
		return errors.New("hard failure")
	})
	var ce *CircuitError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CircuitError", err)
	}
	if ce.Name != "stuck" || ce.Failures != 4 {
		t.Errorf("circuit: %+v", ce)
	}
	if runs != 4 || rep.Restarts != 3 {
		t.Errorf("runs=%d restarts=%d, want 4/3", runs, rep.Restarts)
	}
}

func TestRunProgressResetsFailureCount(t *testing.T) {
	// A task that makes progress before each crash must not trip the
	// breaker even after many more crashes than MaxFailures: it is
	// resuming further every time (the snapshot-restore story).
	clk := &fakeClock{}
	p := testPolicy(clk, 3)
	p.MaxFailures = 3
	runs := 0
	_, err := Run(context.Background(), "resumer", p, func(ctx context.Context, progress func()) error {
		runs++
		if runs <= 10 {
			progress()
			panic("crash after progress")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("progressing task tripped the breaker: %v (runs=%d)", err, runs)
	}
	if runs != 11 {
		t.Errorf("runs = %d, want 11", runs)
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Sleep: func(ctx context.Context, d time.Duration) bool {
		cancel()
		return false
	}}
	_, err := Run(ctx, "task", p, func(ctx context.Context, progress func()) error {
		return errors.New("fail once")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGracefulDrainCleanAndForced(t *testing.T) {
	// Clean: done closes within the deadline after cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	cancel()
	forced := false
	if ok := GracefulDrain(ctx, done, 5*time.Second, func() { forced = true }); !ok || forced {
		t.Fatalf("clean drain: ok=%v forced=%v", ok, forced)
	}

	// Already-done before any cancellation.
	done2 := make(chan struct{})
	close(done2)
	if ok := GracefulDrain(context.Background(), done2, time.Second, func() { t.Fatal("forced") }); !ok {
		t.Fatal("pre-completed drain reported forced")
	}

	// Forced: the pipeline never drains on its own; force must fire
	// and GracefulDrain must wait for done afterwards.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	done3 := make(chan struct{})
	if ok := GracefulDrain(ctx3, done3, time.Millisecond, func() { close(done3) }); ok {
		t.Fatal("stuck pipeline reported clean drain")
	}
}

func TestPolicyRetriesSentinel(t *testing.T) {
	if got := (Policy{}).withDefaults().Retries; got != 2 {
		t.Errorf("default Retries = %d, want 2", got)
	}
	if got := (Policy{Retries: -1}).withDefaults().Retries; got != 0 {
		t.Errorf("Retries<0 → %d, want 0 (disabled)", got)
	}
	if got := (Policy{Retries: 5}).withDefaults().Retries; got != 5 {
		t.Errorf("explicit Retries = %d, want 5", got)
	}
}
