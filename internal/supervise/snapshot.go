package supervise

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"marketminer/internal/metrics"
)

// snapshotSchema versions the snapshot envelope itself; payload schemas
// are the caller's business (carried in Fingerprint).
const snapshotSchema = "marketminer/snapshot/v1"

// ErrNoSnapshot is returned by LoadSnapshot when no snapshot file
// exists — the normal cold-start case, distinct from corruption.
var ErrNoSnapshot = errors.New("supervise: no snapshot")

// SnapshotCorruptError reports an unusable snapshot file: damaged
// bytes, a checksum mismatch, or a fingerprint from a different
// configuration. Callers treat it like a healed journal tail — warn
// and cold-start — never as fatal, and never as data.
type SnapshotCorruptError struct {
	Path   string
	Reason string
}

func (e *SnapshotCorruptError) Error() string {
	return fmt.Sprintf("supervise: snapshot %s corrupt: %s", e.Path, e.Reason)
}

// snapshotEnvelope is the on-disk form: schema + config fingerprint +
// CRC32 (IEEE) of the payload bytes.
type snapshotEnvelope struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	CRC         uint32          `json:"crc"`
	Payload     json.RawMessage `json:"payload"`
}

// SaveSnapshot atomically persists payload to path: encode, CRC-seal,
// write to a temp file in the same directory, fsync, rename over path,
// fsync the directory. A reader (or a crash) therefore sees either the
// previous complete snapshot or the new complete snapshot, never a
// torn hybrid — the same atomic-rename idiom as the sweep manifest.
//
// fingerprint identifies the producing configuration; LoadSnapshot
// refuses a snapshot whose fingerprint differs, so state is never
// restored into a differently-configured engine.
func SaveSnapshot(path, fingerprint string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("supervise: encode snapshot: %w", err)
	}
	env, err := json.Marshal(snapshotEnvelope{
		Schema:      snapshotSchema,
		Fingerprint: fingerprint,
		CRC:         crc32.ChecksumIEEE(raw),
		Payload:     raw,
	})
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("supervise: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(env, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("supervise: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("supervise: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("supervise: install snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort directory durability
		d.Close()
	}
	metrics.Counter("supervise.snapshot_saves").Inc()
	return nil
}

// LoadSnapshot reads the snapshot at path into payload. It returns
// ErrNoSnapshot when the file does not exist and *SnapshotCorruptError
// when the file exists but is unusable (bad JSON, schema or
// fingerprint mismatch, CRC failure). Only a nil return means payload
// holds trustworthy state.
func LoadSnapshot(path, fingerprint string, payload any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrNoSnapshot
		}
		return fmt.Errorf("supervise: read snapshot: %w", err)
	}
	corrupt := func(format string, args ...any) error {
		metrics.Counter("supervise.snapshot_corrupt").Inc()
		return &SnapshotCorruptError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	var env snapshotEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return corrupt("undecodable envelope: %v", err)
	}
	if env.Schema != snapshotSchema {
		return corrupt("schema %q, want %q", env.Schema, snapshotSchema)
	}
	if env.Fingerprint != fingerprint {
		return corrupt("fingerprint %q does not match configuration %q", env.Fingerprint, fingerprint)
	}
	if crc32.ChecksumIEEE(env.Payload) != env.CRC {
		return corrupt("payload checksum mismatch")
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return corrupt("undecodable payload: %v", err)
	}
	return nil
}
