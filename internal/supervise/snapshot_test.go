package supervise

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type fakeState struct {
	Cursor  int       `json:"cursor"`
	Values  []float64 `json:"values"`
	Comment string    `json:"comment"`
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	in := fakeState{Cursor: 42, Values: []float64{1.5, -2.25, 1e-300}, Comment: "mid-day"}
	if err := SaveSnapshot(path, "cfg-abc", in); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	if err := LoadSnapshot(path, "cfg-abc", &out); err != nil {
		t.Fatal(err)
	}
	if out.Cursor != in.Cursor || out.Comment != in.Comment || len(out.Values) != 3 || out.Values[2] != 1e-300 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestSnapshotMissingIsColdStart(t *testing.T) {
	var out fakeState
	err := LoadSnapshot(filepath.Join(t.TempDir(), "absent.snap"), "cfg", &out)
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := SaveSnapshot(path, "cfg", fakeState{Cursor: 7}); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func() []byte
	}{
		{"truncated", func() []byte { return clean[:len(clean)/2] }},
		{"bit-flip", func() []byte {
			m := append([]byte(nil), clean...)
			m[len(m)/2] ^= 0x01
			return m
		}},
		{"garbage", func() []byte { return []byte("not json at all\n") }},
		{"empty", func() []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			var out fakeState
			err := LoadSnapshot(path, "cfg", &out)
			var ce *SnapshotCorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want SnapshotCorruptError", err)
			}
		})
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveSnapshot(path, "cfg-v1", fakeState{Cursor: 7}); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	err := LoadSnapshot(path, "cfg-v2", &out)
	var ce *SnapshotCorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want SnapshotCorruptError on fingerprint mismatch", err)
	}
}

func TestSnapshotOverwriteIsAtomicReplacement(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveSnapshot(path, "cfg", fakeState{Cursor: 1}); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(path, "cfg", fakeState{Cursor: 2}); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	if err := LoadSnapshot(path, "cfg", &out); err != nil {
		t.Fatal(err)
	}
	if out.Cursor != 2 {
		t.Errorf("cursor = %d, want 2 (newest snapshot)", out.Cursor)
	}
	// No temp-file litter.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1: %v", len(entries), entries)
	}
}
