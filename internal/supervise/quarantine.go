package supervise

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// QuarantineRecord is one poisoned message: the stage it kept killing,
// its stable key, and the failure it caused.
type QuarantineRecord struct {
	Stage  string `json:"stage"`
	Key    string `json:"key"`
	Reason string `json:"reason"`
}

// quarLine is the on-disk envelope: the CRC32 (IEEE) of the record's
// JSON encoding guards every line, the same idiom as the sweep journal.
type quarLine struct {
	CRC uint32          `json:"crc"`
	R   json.RawMessage `json:"r"`
}

// Quarantine is the poison-message journal: an append-only CRC-guarded
// JSONL file (or memory-only when no path is given) plus the in-memory
// key set stages consult before processing. A message quarantined in a
// previous incarnation of the process is skipped on replay rather than
// being allowed to kill its stage again — "journaled and skipped, not
// re-fed forever".
//
// Tail healing mirrors the sweep journal: on open, a torn or corrupt
// trailing line is detected by its CRC and truncated away; every fully
// synced record survives.
type Quarantine struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	seen    map[string]QuarantineRecord
	healed  bool
	loaded  int
	appends int
}

// OpenQuarantine opens (or creates) the journal at path, loading every
// intact record. An empty path gives a memory-only quarantine, which
// is what unit tests and one-shot pipelines use.
func OpenQuarantine(path string) (*Quarantine, error) {
	q := &Quarantine{path: path, seen: make(map[string]QuarantineRecord)}
	if path == "" {
		return q, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("supervise: open quarantine: %w", err)
	}
	cleanSize, err := q.load(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > cleanSize {
		q.healed = true
		if err := f.Truncate(cleanSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("supervise: heal quarantine tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	q.f = f
	q.w = bufio.NewWriter(f)
	return q, nil
}

// load reads intact records and returns the byte offset of the last
// fully-valid line (the clean size).
func (q *Quarantine) load(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	var clean int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var ql quarLine
		if err := json.Unmarshal(line, &ql); err != nil {
			return clean, nil // torn tail: stop at the last good line
		}
		if crc32.ChecksumIEEE(ql.R) != ql.CRC {
			return clean, nil
		}
		var rec QuarantineRecord
		if err := json.Unmarshal(ql.R, &rec); err != nil {
			return clean, nil
		}
		q.seen[rec.Key] = rec
		q.loaded++
		clean += int64(len(line)) + 1
	}
	return clean, sc.Err()
}

// Seen reports whether key is quarantined.
func (q *Quarantine) Seen(key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.seen[key]
	return ok
}

// Len returns the number of quarantined keys.
func (q *Quarantine) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.seen)
}

// Healed reports whether opening truncated a damaged tail.
func (q *Quarantine) Healed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.healed
}

// Record quarantines key, journaling the record durably (flush+fsync:
// a quarantine exists precisely because the process may be about to
// die) before it takes effect. Recording an already-seen key is a
// no-op.
func (q *Quarantine) Record(stage, key, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.seen[key]; ok {
		return nil
	}
	rec := QuarantineRecord{Stage: stage, Key: key, Reason: reason}
	if q.f != nil {
		raw, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("supervise: encode quarantine record: %w", err)
		}
		line, err := json.Marshal(quarLine{CRC: crc32.ChecksumIEEE(raw), R: raw})
		if err != nil {
			return err
		}
		if _, err := q.w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("supervise: append quarantine: %w", err)
		}
		if err := q.w.Flush(); err != nil {
			return fmt.Errorf("supervise: flush quarantine: %w", err)
		}
		if err := q.f.Sync(); err != nil {
			return fmt.Errorf("supervise: sync quarantine: %w", err)
		}
	}
	q.seen[key] = rec
	q.appends++
	return nil
}

// Records returns every quarantined record, sorted by key for stable
// reports.
func (q *Quarantine) Records() []QuarantineRecord {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantineRecord, 0, len(q.seen))
	for _, rec := range q.seen {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Close flushes and closes the journal file (no-op when memory-only).
func (q *Quarantine) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return nil
	}
	if err := q.w.Flush(); err != nil {
		q.f.Close()
		return err
	}
	err := q.f.Close()
	q.f = nil
	return err
}
