package engine

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// intsSource emits 0..n-1.
func intsSource(n int) SourceFunc {
	return func(ctx context.Context, emit Emit) error {
		for i := 0; i < n; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	}
}

// collector appends every message to a mutex-guarded slice.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) proc(ctx context.Context, m Message, emit Emit) error {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	return nil
}

func (c *collector) ints() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, len(c.msgs))
	for i, m := range c.msgs {
		out[i] = m.(int)
	}
	sort.Ints(out)
	return out
}

func TestLinearPipeline(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(100))
	double := g.Node("double", 1, func(ctx context.Context, m Message, emit Emit) error {
		emit(m.(int) * 2)
		return nil
	})
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(src, double, 8)
	g.Connect(double, snk, 8)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sink.ints()
	if len(got) != 100 {
		t.Fatalf("sink got %d messages", len(got))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestOrderPreservedSingleWorker(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(500))
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(src, snk, 0) // unbuffered: strict lockstep
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, m := range sink.msgs {
		if m.(int) != i {
			t.Fatalf("order broken at %d: %v", i, m)
		}
	}
}

func TestFanOutBroadcast(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(50))
	a := &collector{}
	b := &collector{}
	na := g.Node("a", 1, a.proc)
	nb := g.Node("b", 1, b.proc)
	g.Connect(src, na, 4)
	g.Connect(src, nb, 4)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.ints()) != 50 || len(b.ints()) != 50 {
		t.Errorf("broadcast incomplete: a=%d b=%d", len(a.ints()), len(b.ints()))
	}
}

func TestFanInMerge(t *testing.T) {
	g := NewGraph()
	s1 := g.Source("s1", intsSource(30))
	s2 := g.Source("s2", func(ctx context.Context, emit Emit) error {
		for i := 100; i < 130; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	})
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(s1, snk, 4)
	g.Connect(s2, snk, 4)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sink.ints()
	if len(got) != 60 {
		t.Fatalf("merged %d messages, want 60", len(got))
	}
	if got[0] != 0 || got[59] != 129 {
		t.Errorf("merge contents wrong: %v..%v", got[0], got[59])
	}
}

func TestParallelNodeProcessesAll(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(200))
	var n atomic.Int64
	work := g.Node("work", 8, func(ctx context.Context, m Message, emit Emit) error {
		n.Add(1)
		emit(m)
		return nil
	})
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(src, work, 16)
	g.Connect(work, snk, 16)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 200 {
		t.Errorf("processed %d, want 200", n.Load())
	}
	got := sink.ints()
	for i, v := range got {
		if v != i {
			t.Fatalf("message set wrong at %d: %d", i, v)
		}
	}
}

func TestNodeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	g := NewGraph()
	src := g.Source("src", intsSource(1000000)) // far more than consumed
	bad := g.Node("bad", 1, func(ctx context.Context, m Message, emit Emit) error {
		if m.(int) == 10 {
			return boom
		}
		return nil
	})
	g.Connect(src, bad, 1)
	err := g.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	boom := errors.New("source failed")
	g := NewGraph()
	src := g.Source("src", func(ctx context.Context, emit Emit) error { return boom })
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(src, snk, 1)
	if err := g.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", func(ctx context.Context, emit Emit) error {
		for i := 0; ; i++ {
			if !emit(i) {
				return nil
			}
		}
	})
	snk := g.Node("sink", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
	g.Connect(src, snk, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("graph did not stop after cancellation")
	}
}

func TestOnDrainFlush(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(10))
	var sum int
	agg := g.Node("agg", 1, func(ctx context.Context, m Message, emit Emit) error {
		sum += m.(int)
		return nil
	})
	g.OnDrain(agg, func(ctx context.Context, emit Emit) error {
		emit(sum)
		return nil
	})
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(src, agg, 4)
	g.Connect(agg, snk, 1)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sink.ints()
	if len(got) != 1 || got[0] != 45 {
		t.Errorf("flush output = %v, want [45]", got)
	}
}

func TestValidationErrors(t *testing.T) {
	t.Run("empty graph", func(t *testing.T) {
		if err := NewGraph().Run(context.Background()); err == nil {
			t.Error("want error")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		g := NewGraph()
		g.Source("x", intsSource(1))
		s2 := g.Source("x", intsSource(1))
		snk := g.Node("s", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		g.Connect(s2, snk, 1)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want duplicate-name error")
		}
	})
	t.Run("orphan processor", func(t *testing.T) {
		g := NewGraph()
		g.Source("src", intsSource(1))
		g.Node("orphan", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		if err := g.Run(context.Background()); err == nil {
			t.Error("want no-inputs error")
		}
	})
	t.Run("no source", func(t *testing.T) {
		g := NewGraph()
		a := g.Node("a", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		b := g.Node("b", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		g.Connect(a, b, 1)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want no-source error")
		}
	})
	t.Run("edge into source", func(t *testing.T) {
		g := NewGraph()
		s := g.Source("src", intsSource(1))
		a := g.Node("a", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		g.Connect(s, a, 1)
		g.Connect(a, s, 1)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want source-input error")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		g := NewGraph()
		g.Source("src", intsSource(1))
		a := g.Node("a", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		g.Connect(a, a, 1)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want self-loop error")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		g := NewGraph()
		s := g.Source("src", intsSource(1))
		a := g.Node("a", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		b := g.Node("b", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		g.Connect(s, a, 1)
		g.Connect(a, b, 1)
		g.Connect(b, a, 1)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want cycle error")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		g := NewGraph()
		s := g.Source("src", intsSource(1))
		a := g.Node("a", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
		g.Connect(s, a, 1)
		g.Connect(s, a, 1)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want duplicate-edge error")
		}
	})
	t.Run("nil funcs", func(t *testing.T) {
		g := NewGraph()
		g.Source("src", nil)
		if err := g.Run(context.Background()); err == nil {
			t.Error("want nil-func error")
		}
	})
	t.Run("run twice", func(t *testing.T) {
		g := NewGraph()
		s := g.Source("src", intsSource(1))
		a := &collector{}
		g.Connect(s, g.Node("a", 1, a.proc), 1)
		if err := g.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := g.Run(context.Background()); err == nil {
			t.Error("second Run should error")
		}
	})
}

func TestStatsCounters(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(25))
	pass := g.Node("pass", 1, func(ctx context.Context, m Message, emit Emit) error {
		emit(m)
		return nil
	})
	sink := &collector{}
	snk := g.Node("sink", 1, sink.proc)
	g.Connect(src, pass, 4)
	g.Connect(pass, snk, 4)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := g.Stats()
	byName := map[string]Stats{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if byName["src"].Emitted != 25 {
		t.Errorf("src emitted = %d", byName["src"].Emitted)
	}
	if byName["pass"].Received != 25 || byName["pass"].Emitted != 25 {
		t.Errorf("pass stats = %+v", byName["pass"])
	}
	if byName["sink"].Received != 25 {
		t.Errorf("sink received = %d", byName["sink"].Received)
	}
}

func TestDiamondTopology(t *testing.T) {
	// src → {left, right} → join: classic DAG shape from Figure 1,
	// where quotes fan out to technical analysis and correlation and
	// re-join at the strategy node.
	g := NewGraph()
	src := g.Source("src", intsSource(40))
	left := g.Node("left", 1, func(ctx context.Context, m Message, emit Emit) error {
		emit([2]int{0, m.(int)})
		return nil
	})
	right := g.Node("right", 1, func(ctx context.Context, m Message, emit Emit) error {
		emit([2]int{1, m.(int)})
		return nil
	})
	var mu sync.Mutex
	counts := map[int]int{}
	join := g.Node("join", 1, func(ctx context.Context, m Message, emit Emit) error {
		mu.Lock()
		counts[m.([2]int)[0]]++
		mu.Unlock()
		return nil
	})
	g.Connect(src, left, 4)
	g.Connect(src, right, 4)
	g.Connect(left, join, 4)
	g.Connect(right, join, 4)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 40 || counts[1] != 40 {
		t.Errorf("join counts = %v", counts)
	}
}

func TestLargeThroughputNoDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := NewGraph()
	const n = 100000
	src := g.Source("src", intsSource(n))
	stage1 := g.Node("s1", 4, func(ctx context.Context, m Message, emit Emit) error {
		emit(m)
		return nil
	})
	stage2 := g.Node("s2", 2, func(ctx context.Context, m Message, emit Emit) error {
		emit(m)
		return nil
	})
	var total atomic.Int64
	snk := g.Node("sink", 1, func(ctx context.Context, m Message, emit Emit) error {
		total.Add(1)
		return nil
	})
	g.Connect(src, stage1, 64)
	g.Connect(stage1, stage2, 64)
	g.Connect(stage2, snk, 64)
	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline deadlocked")
	}
	if total.Load() != n {
		t.Errorf("sink saw %d messages, want %d", total.Load(), n)
	}
}

func TestDOTExport(t *testing.T) {
	g := NewGraph()
	src := g.Source("collector", intsSource(1))
	a := g.Node("cleaner", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
	b := g.Node("strategy", 1, func(ctx context.Context, m Message, emit Emit) error { return nil })
	g.Connect(src, a, 4)
	g.Connect(a, b, 4)
	dot := g.DOT("figure1")
	for _, want := range []string{
		`digraph "figure1"`,
		`"collector" [shape=box]`,
		`"cleaner" [shape=ellipse]`,
		`"collector" -> "cleaner"`,
		`"cleaner" -> "strategy"`,
	} {
		if !stringsContains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func stringsContains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestNodePanicBecomesError(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(10))
	boom := g.Node("boom", 1, func(ctx context.Context, m Message, emit Emit) error {
		if m.(int) == 3 {
			panic("poison message")
		}
		return nil
	})
	g.Connect(src, boom, 4)
	err := g.Run(context.Background())
	if err == nil {
		t.Fatal("panicking node should fail the graph, not crash the process")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Node != "boom" || pe.Value != "poison message" || len(pe.Stack) == 0 {
		t.Errorf("panic error fields: node=%q value=%v stackLen=%d", pe.Node, pe.Value, len(pe.Stack))
	}
}

func TestSourcePanicBecomesError(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", func(ctx context.Context, emit Emit) error {
		panic("source blew up")
	})
	snk := g.Node("sink", 1, (&collector{}).proc)
	g.Connect(src, snk, 1)
	err := g.Run(context.Background())
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Node != "src" {
		t.Fatalf("err = %v, want *PanicError from src", err)
	}
}

func TestFlushPanicBecomesError(t *testing.T) {
	g := NewGraph()
	src := g.Source("src", intsSource(3))
	agg := g.Node("agg", 1, (&collector{}).proc)
	g.Connect(src, agg, 4)
	g.OnDrain(agg, func(ctx context.Context, emit Emit) error {
		panic("flush blew up")
	})
	err := g.Run(context.Background())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError from flush", err)
	}
}
