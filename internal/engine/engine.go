// Package engine is the stream-processing runtime of the reproduction —
// the channel-based Go rewrite of MarketMiner's MPI middleware. The
// original system was "a basic MPI-enabled pipeline for processing
// quote data … since extended to support arbitrary directed acyclic
// graph (DAG) stream processing workflows".
//
// A Graph is a DAG of named nodes connected by bounded channels.
// Sources generate messages; processors transform them; sinks consume
// them. Each edge is a Go channel, giving the same point-to-point,
// back-pressured message-passing semantics as the MPI ranks of the
// original, with goroutines standing in for processes:
//
//	g := engine.NewGraph()
//	src := g.Source("collector", sourceFn)
//	ta  := g.Node("technical-analysis", 1, procFn)
//	g.Connect(src, ta, 1024)
//	err := g.Run(ctx)
//
// Run wires the channels, spawns every node, and propagates shutdown:
// when a source returns, its edges close; a node exits after all its
// inputs close; the first error cancels the whole graph.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Message is one unit of data flowing along an edge. Nodes agree on
// concrete types per edge by convention, as MPI ranks agree on message
// schemas per tag.
type Message any

// Emit sends a message downstream. It returns false when the graph is
// shutting down and the message could not be delivered; nodes should
// stop producing once Emit returns false.
type Emit func(Message) bool

// SourceFunc drives a source node. It should call emit for every
// message and return when the stream ends (or emit returns false).
type SourceFunc func(ctx context.Context, emit Emit) error

// ProcFunc handles one message on a processing or sink node. Emitted
// messages are broadcast to every outgoing edge; sink nodes simply
// never emit.
type ProcFunc func(ctx context.Context, msg Message, emit Emit) error

// node is one vertex of the graph.
type node struct {
	name     string
	id       int
	parallel int
	src      SourceFunc
	proc     ProcFunc
	flush    func(ctx context.Context, emit Emit) error
	ins      []chan Message
	outs     []chan Message
	inCnt    atomic.Int64
	outCnt   atomic.Int64
}

// NodeID identifies a node within its graph.
type NodeID int

// Graph is a DAG under construction; call Run to execute it. A Graph
// is single-use: Run may be called once.
type Graph struct {
	nodes []*node
	names map[string]bool
	edges map[[2]int]bool
	ran   bool
	err   error
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{names: make(map[string]bool), edges: make(map[[2]int]bool)}
}

// fail records a construction error (surfaced by Run).
func (g *Graph) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

func (g *Graph) addNode(n *node) NodeID {
	if n.name == "" {
		g.fail(errors.New("engine: empty node name"))
	}
	if g.names[n.name] {
		g.fail(fmt.Errorf("engine: duplicate node name %q", n.name))
	}
	g.names[n.name] = true
	n.id = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return NodeID(n.id)
}

// Source adds a source node.
func (g *Graph) Source(name string, fn SourceFunc) NodeID {
	if fn == nil {
		g.fail(fmt.Errorf("engine: nil source func for %q", name))
	}
	return g.addNode(&node{name: name, parallel: 1, src: fn})
}

// Node adds a processing node with the given worker parallelism
// (clamped to ≥ 1). With parallelism > 1, messages are processed
// concurrently and downstream ordering is not preserved — the same
// trade MarketMiner makes when it shards the correlation computation.
func (g *Graph) Node(name string, parallelism int, fn ProcFunc) NodeID {
	if fn == nil {
		g.fail(fmt.Errorf("engine: nil proc func for %q", name))
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return g.addNode(&node{name: name, parallel: parallelism, proc: fn})
}

// OnDrain registers a flush hook invoked after a node's inputs have
// closed and all in-flight messages are processed, but before its
// outgoing edges close. Aggregating nodes (e.g. end-of-day summaries)
// use it to emit their final state.
func (g *Graph) OnDrain(id NodeID, fn func(ctx context.Context, emit Emit) error) {
	n := g.node(id)
	if n == nil {
		return
	}
	if n.src != nil {
		g.fail(fmt.Errorf("engine: OnDrain on source %q", n.name))
		return
	}
	n.flush = fn
}

func (g *Graph) node(id NodeID) *node {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		g.fail(fmt.Errorf("engine: unknown node id %d", id))
		return nil
	}
	return g.nodes[id]
}

// Connect adds a directed edge from → to with the given channel buffer
// (clamped to ≥ 0). Buffering is the back-pressure knob: a full channel
// blocks the producer, exactly like a saturated MPI send queue.
func (g *Graph) Connect(from, to NodeID, buffer int) {
	a := g.node(from)
	b := g.node(to)
	if a == nil || b == nil {
		return
	}
	if a == b {
		g.fail(fmt.Errorf("engine: self-loop on %q", a.name))
		return
	}
	if b.src != nil {
		g.fail(fmt.Errorf("engine: source %q cannot have inputs", b.name))
		return
	}
	key := [2]int{a.id, b.id}
	if g.edges[key] {
		g.fail(fmt.Errorf("engine: duplicate edge %q → %q", a.name, b.name))
		return
	}
	g.edges[key] = true
	if buffer < 0 {
		buffer = 0
	}
	ch := make(chan Message, buffer)
	a.outs = append(a.outs, ch)
	b.ins = append(b.ins, ch)
}

// Stats reports message counts for one node.
type Stats struct {
	Name     string
	Received int64
	Emitted  int64
}

// Stats returns per-node message counters, valid during and after Run.
func (g *Graph) Stats() []Stats {
	out := make([]Stats, len(g.nodes))
	for i, n := range g.nodes {
		out[i] = Stats{Name: n.name, Received: n.inCnt.Load(), Emitted: n.outCnt.Load()}
	}
	return out
}

// DOT renders the graph in Graphviz dot format — the tooling used to
// draw Figure 1. Sources are boxes, processors ellipses; edge labels
// show buffer capacities. Valid before or after Run.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", title)
	for _, n := range g.nodes {
		shape := "ellipse"
		if n.src != nil {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", n.name, shape)
	}
	// Deterministic edge order: by (from, to) node id.
	keys := make([][2]int, 0, len(g.edges))
	for e := range g.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, e := range keys {
		fmt.Fprintf(&b, "  %q -> %q;\n", g.nodes[e[0]].name, g.nodes[e[1]].name)
	}
	b.WriteString("}\n")
	return b.String()
}

// validate checks graph structure: construction errors, at least one
// source, every processor reachable (has inputs), and acyclicity.
func (g *Graph) validate() error {
	if g.err != nil {
		return g.err
	}
	if len(g.nodes) == 0 {
		return errors.New("engine: empty graph")
	}
	var hasSource bool
	for _, n := range g.nodes {
		if n.src != nil {
			hasSource = true
		} else if len(n.ins) == 0 {
			return fmt.Errorf("engine: node %q has no inputs", n.name)
		}
	}
	if !hasSource {
		return errors.New("engine: no source nodes")
	}
	// Kahn's algorithm over the edge set for cycle detection.
	indeg := make([]int, len(g.nodes))
	adj := make([][]int, len(g.nodes))
	for e := range g.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	queue := make([]int, 0, len(g.nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if seen != len(g.nodes) {
		return errors.New("engine: graph has a cycle")
	}
	return nil
}

// Run validates the graph and executes it to completion. It returns
// nil when every node finished cleanly, the first node error otherwise,
// or ctx.Err if the context was cancelled first.
func (g *Graph) Run(ctx context.Context) error {
	if g.ran {
		return errors.New("engine: graph already ran")
	}
	g.ran = true
	if err := g.validate(); err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	report := func(err error) {
		if err != nil && !errors.Is(err, context.Canceled) {
			errOnce.Do(func() { firstErr = err })
			cancel()
		}
	}

	for _, n := range g.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			report(g.runNode(ctx, n))
		}(n)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runNode executes one node until its input closes (processors) or its
// source function returns, then closes its outgoing edges.
func (g *Graph) runNode(ctx context.Context, n *node) error {
	defer func() {
		for _, out := range n.outs {
			close(out)
		}
	}()
	emit := func(m Message) bool {
		for _, out := range n.outs {
			select {
			case out <- m:
			case <-ctx.Done():
				return false
			}
		}
		n.outCnt.Add(1)
		return true
	}

	if n.src != nil {
		return safeCall(n.name, func() error { return n.src(ctx, emit) })
	}

	merged := mergeInputs(ctx, n)
	var workers sync.WaitGroup
	errCh := make(chan error, n.parallel)
	for w := 0; w < n.parallel; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for m := range merged {
				n.inCnt.Add(1)
				if err := safeCall(n.name, func() error { return n.proc(ctx, m, emit) }); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	workers.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	if n.flush != nil {
		if err := safeCall(n.name+" flush", func() error { return n.flush(ctx, emit) }); err != nil {
			return err
		}
	}
	return nil
}

// safeCall runs one node callback, converting a panic into an error so
// a bad message or buggy stage fails the graph cleanly (first-error
// cancellation, every goroutine joined) instead of crashing the
// process. The supervision layer can then decide whether to restart.
func safeCall(name string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Node: name, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := fn(); err != nil {
		return fmt.Errorf("engine: node %q: %w", name, err)
	}
	return nil
}

// PanicError reports a recovered panic from a node callback.
type PanicError struct {
	Node  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: node %q panicked: %v\n%s", e.Node, e.Value, e.Stack)
}

// mergeInputs funnels all in-edges of n into one channel, closing it
// when every input has closed or the context is cancelled.
func mergeInputs(ctx context.Context, n *node) <-chan Message {
	if len(n.ins) == 1 {
		return wrapCancel(ctx, n.ins[0])
	}
	merged := make(chan Message)
	var wg sync.WaitGroup
	for _, in := range n.ins {
		wg.Add(1)
		go func(in <-chan Message) {
			defer wg.Done()
			for {
				select {
				case m, ok := <-in:
					if !ok {
						return
					}
					select {
					case merged <- m:
					case <-ctx.Done():
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(merged)
	}()
	return merged
}

// wrapCancel adapts a single input channel to honour cancellation.
func wrapCancel(ctx context.Context, in <-chan Message) <-chan Message {
	out := make(chan Message)
	go func() {
		defer close(out)
		for {
			select {
			case m, ok := <-in:
				if !ok {
					return
				}
				select {
				case out <- m:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
