package market

import (
	"math"
	"testing"

	"marketminer/internal/clean"
	"marketminer/internal/corr"
	"marketminer/internal/series"
	"marketminer/internal/taq"
)

// smallConfig keeps unit tests fast: 6 stocks, 1 day, sparse quotes.
func smallConfig() Config {
	u, _ := taq.NewUniverse([]string{"A1", "A2", "A3", "B1", "B2", "B3"})
	return Config{
		Universe:   u,
		Seed:       42,
		Days:       2,
		QuoteRate:  0.05,
		NumSectors: 2,
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := NewGenerator(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Contamination = 1.5
	if _, err := NewGenerator(bad); err == nil {
		t.Error("contamination > 1 should error")
	}
	one, _ := taq.NewUniverse([]string{"X"})
	bad = cfg
	bad.Universe = one
	if _, err := NewGenerator(bad); err == nil {
		t.Error("1-stock universe should error")
	}
}

func TestGenerateDayDeterministic(t *testing.T) {
	g1, _ := NewGenerator(smallConfig())
	g2, _ := NewGenerator(smallConfig())
	d1, err := g1.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Quotes) != len(d2.Quotes) {
		t.Fatalf("quote counts differ: %d vs %d", len(d1.Quotes), len(d2.Quotes))
	}
	for i := range d1.Quotes {
		if d1.Quotes[i] != d2.Quotes[i] {
			t.Fatalf("quote %d differs", i)
		}
	}
}

func TestGenerateDayBounds(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	if _, err := g.GenerateDay(-1); err == nil {
		t.Error("negative day should error")
	}
	if _, err := g.GenerateDay(99); err == nil {
		t.Error("day beyond dataset should error")
	}
}

func TestQuotesSortedAndInSession(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	day, err := g.GenerateDay(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(day.Quotes) == 0 {
		t.Fatal("no quotes generated")
	}
	prev := -1.0
	for _, q := range day.Quotes {
		if q.SeqTime < prev {
			t.Fatal("quotes not sorted by time")
		}
		prev = q.SeqTime
		if q.SeqTime < 0 || q.SeqTime >= taq.TradingDaySec {
			t.Fatalf("quote outside session: %v", q.SeqTime)
		}
		if q.Day != 1 {
			t.Fatalf("quote has day %d, want 1", q.Day)
		}
		if _, ok := g.Config().Universe.Index(q.Symbol); !ok {
			t.Fatalf("unknown symbol %q", q.Symbol)
		}
	}
}

func TestCleanQuotesMostlyValid(t *testing.T) {
	cfg := smallConfig()
	cfg.Contamination = 0
	g, _ := NewGenerator(cfg)
	day, err := g.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	var invalid int
	for _, q := range day.Quotes {
		if !q.Valid() {
			invalid++
		}
	}
	if invalid > 0 {
		t.Errorf("%d structurally invalid quotes in uncontaminated stream", invalid)
	}
	if day.NumBad != 0 {
		t.Errorf("NumBad = %d without contamination", day.NumBad)
	}
}

func TestContaminationProducesBadTicks(t *testing.T) {
	cfg := smallConfig()
	cfg.Contamination = 0.05
	cfg.QuoteRate = 0.2
	g, _ := NewGenerator(cfg)
	day, err := g.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	if day.NumBad == 0 {
		t.Fatal("contaminated stream reported no bad ticks")
	}
	frac := float64(day.NumBad) / float64(len(day.Quotes))
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("bad-tick fraction = %v, want ≈ 0.05", frac)
	}
	// The cleaning filter should catch a large share of them.
	cleaned, flt := clean.Clean(clean.DefaultConfig(), day.Quotes)
	caught := flt.TotalRejected()
	if caught < day.NumBad/3 {
		t.Errorf("filter caught %d of %d bad ticks", caught, day.NumBad)
	}
	if len(cleaned)+caught != len(day.Quotes) {
		t.Error("cleaned + rejected != total")
	}
}

func TestSectorAssignment(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	if !g.SameSector(0, 2) {
		t.Error("stocks 0 and 2 should share sector (i %% 2)")
	}
	if g.SameSector(0, 1) {
		t.Error("stocks 0 and 1 should differ in sector")
	}
	if g.Sector(3) != 1 {
		t.Errorf("Sector(3) = %d", g.Sector(3))
	}
}

// TestFactorStructure verifies the core statistical property: sector
// mates are substantially more correlated than cross-sector pairs, so
// the pair-trading strategy has real structure to find.
func TestFactorStructure(t *testing.T) {
	cfg := smallConfig()
	cfg.QuoteRate = 0.3
	cfg.Contamination = 0
	cfg.BreakdownsPerDay = 0
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day, err := g.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := series.NewGrid(30)
	if err != nil {
		t.Fatal(err)
	}
	sm := series.NewSampler(grid, cfg.Universe)
	for _, q := range day.Quotes {
		sm.Add(q)
	}
	pg := sm.Finish()
	if fc := pg.FirstComplete(); fc != 0 {
		t.Fatalf("FirstComplete = %d", fc)
	}
	rets := series.ReturnGrid(pg)
	same := corr.PearsonCorr(rets[0], rets[2]) // sector mates
	diff := corr.PearsonCorr(rets[0], rets[1]) // cross-sector
	if same < 0.4 {
		t.Errorf("sector-mate correlation = %v, want > 0.4", same)
	}
	if same-diff < 0.2 {
		t.Errorf("sector structure too weak: same=%v diff=%v", same, diff)
	}
}

// TestBreakdownCreatesDivergence checks that a breakdown visibly
// dislocates the latent mid and then retraces.
func TestBreakdownCreatesDivergence(t *testing.T) {
	cfg := smallConfig()
	cfg.BreakdownsPerDay = 3
	cfg.BreakdownMag = 0.01
	g, _ := NewGenerator(cfg)
	day, err := g.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	// Find the largest 5-minute absolute move in any latent mid; with
	// 1% dislocations it must exceed what diffusion alone produces.
	var maxMove float64
	for i := range day.Mid {
		row := day.Mid[i]
		for s := 300; s < len(row); s += 60 {
			mv := math.Abs(float64(row[s])/float64(row[s-300]) - 1)
			if mv > maxMove {
				maxMove = mv
			}
		}
	}
	if maxMove < 0.005 {
		t.Errorf("max 5-min move = %v, breakdowns not visible", maxMove)
	}
}

func TestBreakdownOffsetShape(t *testing.T) {
	b := breakdown{stock: 0, start: 100, duration: 100, mag: 0.01}
	if b.offset(99) != 0 {
		t.Error("offset before start should be 0")
	}
	if got := b.offset(105); got <= 0 || got > 0.01 {
		t.Errorf("ramp offset = %v", got)
	}
	if got := b.offset(150); got != 0.01 {
		t.Errorf("hold offset = %v, want mag", got)
	}
	after := b.offset(260)
	if after >= 0.01 || after <= 0 {
		t.Errorf("decay offset = %v, want in (0, mag)", after)
	}
	if b.offset(2000) > 1e-6 {
		t.Error("offset should decay to ~0")
	}
}

func TestDataset(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	days, err := g.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 2 {
		t.Fatalf("dataset has %d days", len(days))
	}
	if days[0].Index != 0 || days[1].Index != 1 {
		t.Error("day indices wrong")
	}
	// Different days must differ.
	if len(days[0].Quotes) == len(days[1].Quotes) {
		same := true
		for i := range days[0].Quotes {
			if days[0].Quotes[i].SeqTime != days[1].Quotes[i].SeqTime {
				same = false
				break
			}
		}
		if same {
			t.Error("two days generated identical quote streams")
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := newTestRand(7)
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("poisson mean = %v, want 3", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("λ ≤ 0 should give 0")
	}
}

func TestDefaultConfigMatchesPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Universe.Len() != 61 {
		t.Errorf("universe = %d, want 61", cfg.Universe.Len())
	}
	if cfg.Days != 20 {
		t.Errorf("days = %d, want 20", cfg.Days)
	}
}

func TestLiquidityTiers(t *testing.T) {
	cfg := smallConfig()
	cfg.LiquiditySpread = 4
	cfg.QuoteRate = 0.2
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = math.Inf(1), 0
	for i := 0; i < cfg.Universe.Len(); i++ {
		r := g.QuoteRate(i)
		if r < cfg.QuoteRate/4-1e-9 || r > cfg.QuoteRate*4+1e-9 {
			t.Errorf("stock %d rate %v outside tier bounds", i, r)
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo < 1.5 {
		t.Errorf("liquidity tiers too uniform: lo=%v hi=%v", lo, hi)
	}
	// Quote counts should reflect the tiers.
	day, err := g.GenerateDay(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, q := range day.Quotes {
		counts[q.Symbol]++
	}
	var iMax, iMin int
	for i := 1; i < cfg.Universe.Len(); i++ {
		if g.QuoteRate(i) > g.QuoteRate(iMax) {
			iMax = i
		}
		if g.QuoteRate(i) < g.QuoteRate(iMin) {
			iMin = i
		}
	}
	if counts[cfg.Universe.Symbol(iMax)] <= counts[cfg.Universe.Symbol(iMin)] {
		t.Errorf("liquid stock quoted less than illiquid one: %d vs %d",
			counts[cfg.Universe.Symbol(iMax)], counts[cfg.Universe.Symbol(iMin)])
	}
}

func TestLiquiditySpreadClamp(t *testing.T) {
	cfg := smallConfig()
	cfg.LiquiditySpread = 0.2 // clamps to 1 → uniform rates
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Universe.Len(); i++ {
		if math.Abs(g.QuoteRate(i)-g.Config().QuoteRate) > 1e-12 {
			t.Errorf("clamped spread should give uniform rates, got %v", g.QuoteRate(i))
		}
	}
}
