package market

import "math/rand"

// newTestRand returns a seeded rng for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
