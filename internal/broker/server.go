package broker

import (
	"net"
	"time"

	"marketminer/internal/feed"
	"marketminer/internal/metrics"
)

// Serve accepts subscriber connections until the listener is closed
// (Close does that). Each connection is one group-member session.
func (b *Broker) Serve(l net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		l.Close()
		return nil
	}
	b.listeners[l] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.listeners, l)
		b.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if b.ctx.Err() != nil {
				return nil
			}
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		b.connWG.Add(1)
		go func() {
			defer b.connWG.Done()
			b.handleConn(conn)
		}()
	}
}

// subCursor is the per-partition delivery state of one connection.
type subCursor struct {
	next       uint64 // next offset to send (1-based)
	sealedSent bool
}

// handleConn speaks the broker side of the subscription protocol: one
// GroupSub in, then Assign / Snapshot / Delta / Heartbeat / End out,
// with Ack frames flowing back on the same connection.
//
// Delivery per partition resumes from max(member-supplied offset,
// in-session delivery watermark, group commit). A member with no
// progress at all gets the compacted snapshot (latest signal per
// pair) instead of the full log — unless the GroupSub asked
// FromStart, which forces a full replay from offset 1.
func (b *Broker) handleConn(conn net.Conn) {
	defer conn.Close()
	dec := feed.NewDecoder(conn)
	fr, err := dec.Read()
	if err != nil {
		return
	}
	gs, ok := fr.(*feed.GroupSub)
	if !ok || gs.Group == "" || gs.Member == "" {
		return
	}
	g, session := b.joinGroup(gs.Group, gs.Member)
	defer b.leaveGroup(g, gs.Member, session)
	b.cfg.Logf("broker: member %q joined group %q (session %d)", gs.Member, gs.Group, session)

	// Ack reader: commits flow back concurrently with delivery. A read
	// error (disconnect, chaos fault) closes the connection, which in
	// turn fails the writer below. readerDone doubles as the linger
	// signal: after End the writer must not close the socket until the
	// client has hung up, or an RST would destroy the in-flight tail
	// (End included) before the client reads it.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			fr, err := dec.Read()
			if err != nil {
				conn.Close()
				return
			}
			if ack, ok := fr.(*feed.AckFrame); ok {
				b.commit(g, int(ack.Partition), ack.Offset)
				b.touchMember(g, gs.Member, session)
			}
		}
	}()

	// resume holds the highest offset known delivered per partition:
	// seeded from the GroupSub, folded forward when a partition is
	// reassigned away mid-session so a later reassign-back continues
	// where delivery stopped instead of re-taking the snapshot path
	// (which would jump the cursor over signals this member never saw).
	resume := make(map[int]uint64, len(gs.Offsets))
	for _, po := range gs.Offsets {
		resume[int(po.Partition)] = po.Offset
	}
	enc := feed.NewEncoder(conn, nil)
	cursors := make(map[int]*subCursor)
	var curEpoch uint64
	var seq uint64
	lastWrite := b.cfg.Now()

	for {
		if b.ctx.Err() != nil {
			return
		}
		wrote := false

		// Re-announce the assignment whenever the epoch moves (member
		// churn or a partition-processor rebalance).
		if e := b.epochOf(g); e != curEpoch {
			v := b.viewFor(g, gs.Member)
			curEpoch = v.epoch
			parts := make([]uint16, len(v.partitions))
			assigned := make(map[int]bool, len(v.partitions))
			for i, p := range v.partitions {
				parts[i] = uint16(p)
				assigned[p] = true
				if cursors[p] == nil {
					cursors[p] = b.openCursor(enc, g, p, resume[p], v.commits[i], gs.FromStart)
					if cursors[p] == nil {
						return // snapshot write failed
					}
				}
			}
			// Partitions reassigned away stop being served here, but
			// their delivery watermark survives in resume.
			for p, cur := range cursors {
				if !assigned[p] {
					if cur.next > 1 && cur.next-1 > resume[p] {
						resume[p] = cur.next - 1
					}
					delete(cursors, p)
				}
			}
			if err := enc.WriteAssign(&feed.Assign{
				Epoch:         curEpoch,
				NumPartitions: uint16(len(b.parts)),
				Partitions:    parts,
			}); err != nil {
				return
			}
			wrote = true
		}

		allSealed := true
		for p, cur := range cursors {
			log := b.parts[p].log
			if end := log.end(); cur.next > 0 && end >= cur.next && end-(cur.next-1) > b.cfg.EvictLag {
				metrics.Counter("broker.evictions").Inc()
				b.cfg.Logf("broker: evicting member %q (partition %d lag %d)", gs.Member, p, end-(cur.next-1))
				return
			}
			sigs, drained := log.read(cur.next, b.cfg.MaxDelta)
			if len(sigs) > 0 {
				if err := enc.WriteDelta(&feed.DeltaFrame{Partition: uint16(p), Signals: sigs}); err != nil {
					return
				}
				cur.next += uint64(len(sigs))
				wrote = true
			} else if drained && !cur.sealedSent {
				if err := enc.WriteDelta(&feed.DeltaFrame{Partition: uint16(p), Sealed: true}); err != nil {
					return
				}
				cur.sealedSent = true
				wrote = true
			}
			if !cur.sealedSent {
				allSealed = false
			}
		}

		// A member holding no partitions (the group has more members
		// than partitions) is trivially sealed, but only once the whole
		// day is drained — ending it earlier would shrink the group's
		// standby capacity while partitions are still producing.
		if len(cursors) == 0 {
			allSealed = b.Done()
		}
		if allSealed && b.input.isSealed() {
			seq++
			if enc.WriteEnd(&feed.End{Seq: seq}) == nil {
				select { // linger for the client's final acks + close
				case <-readerDone:
				case <-b.ctx.Done():
				case <-time.After(10 * time.Second):
				}
			}
			return
		}
		if wrote {
			lastWrite = b.cfg.Now()
			continue
		}
		if now := b.cfg.Now(); now.Sub(lastWrite) >= b.cfg.Heartbeat {
			seq++
			if err := enc.WriteHeartbeat(&feed.Heartbeat{Seq: seq}); err != nil {
				return
			}
			lastWrite = now
		}
		if !b.waitWake(b.ctx, b.cfg.Heartbeat) {
			return
		}
	}
}

// openCursor decides where delivery starts for a newly assigned
// partition and sends the snapshot when compaction applies. Returns
// nil when the connection died mid-snapshot.
func (b *Broker) openCursor(enc *feed.Encoder, g *group, p int, resumeOff, commitOff uint64, fromStart bool) *subCursor {
	start := resumeOff
	if commitOff > start {
		start = commitOff
	}
	if start == 0 && !fromStart {
		end, latest := b.parts[p].log.snapshotLatest()
		if err := enc.WriteSnapshot(&feed.SnapshotFrame{
			Partition: uint16(p),
			EndOffset: end,
			Latest:    latest,
		}); err != nil {
			return nil
		}
		metrics.Counter("broker.snapshot_sends").Inc()
		return &subCursor{next: end + 1}
	}
	return &subCursor{next: start + 1}
}

// ListenAndServe is the one-call serving entry point used by
// cmd/mmbroker.
func (b *Broker) ListenAndServe(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b.connWG.Add(1)
	go func() {
		defer b.connWG.Done()
		if err := b.Serve(l); err != nil {
			b.cfg.Logf("broker: serve: %v", err)
		}
	}()
	// Give callers the bound address (port 0 support for tests).
	return l.Addr(), nil
}
