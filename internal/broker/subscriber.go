package broker

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"marketminer/internal/feed"
)

// SubscriberConfig tunes a Subscriber.
type SubscriberConfig struct {
	// Group and Member identify this consumer (both required).
	Group, Member string
	// FromStart requests a full replay from offset 1 instead of the
	// compacted snapshot on first subscribe.
	FromStart bool
	// AckEvery commits after this many delivered signals per partition
	// (default 64); a final ack always flushes on End.
	AckEvery int
	// Dial opens a connection to the broker (required). Wrap with
	// chaos.Dialer to fault-inject the wire.
	Dial func(ctx context.Context) (net.Conn, error)
	// Backoff and MaxBackoff bound the reconnect delay (defaults
	// 20ms, 500ms).
	Backoff, MaxBackoff time.Duration
	// MaxAttempts caps consecutive failed sessions (0 = retry until ctx
	// death or End).
	MaxAttempts int
	// OnSignal, when set, observes every newly delivered signal in
	// delivery order (called from the subscriber goroutine).
	OnSignal func(part int, sig feed.Signal)
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// SubscriberStats counts one subscriber's session history.
type SubscriberStats struct {
	Connects   int // sessions that completed the GroupSub handshake
	Reconnects int // sessions after the first
	Snapshots  int // snapshot frames applied
	Delivered  int // signals delivered exactly once
	Duplicates int // redelivered signals suppressed by the offset watermark
	Acked      int // ack frames sent
	Assigns    int // assignment announcements observed
	Jumps      int // forward offset jumps (ranges consumed group-side by another member)
}

// Subscriber is a resuming consumer-group client. Across reconnects it
// carries its per-partition delivered-offset watermark, so redelivered
// signals (a session cut after delivery but before ack) are suppressed
// and the observed stream is exactly-once in delivery order.
type Subscriber struct {
	cfg SubscriberConfig

	mu       sync.Mutex
	next     map[int]uint64 // next expected offset per partition
	acked    map[int]uint64
	sinceAck map[int]int
	signals  map[int][]feed.Signal // delivered signals per partition
	stats    SubscriberStats
	ended    bool
}

// NewSubscriber validates cfg and builds a Subscriber.
func NewSubscriber(cfg SubscriberConfig) (*Subscriber, error) {
	if cfg.Group == "" || cfg.Member == "" {
		return nil, errors.New("broker: subscriber needs Group and Member")
	}
	if cfg.Dial == nil {
		return nil, errors.New("broker: subscriber needs a Dial function")
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 64
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 20 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Subscriber{
		cfg:      cfg,
		next:     make(map[int]uint64),
		acked:    make(map[int]uint64),
		sinceAck: make(map[int]int),
		signals:  make(map[int][]feed.Signal),
	}, nil
}

// Run consumes until the broker sends End (returns nil), the context
// dies, or MaxAttempts consecutive sessions fail. Wire faults trigger
// resubscription from the last delivered offsets.
func (s *Subscriber) Run(ctx context.Context) error {
	backoff := s.cfg.Backoff
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		done, err := s.session(ctx)
		if done {
			return nil
		}
		attempts++
		if s.cfg.MaxAttempts > 0 && attempts >= s.cfg.MaxAttempts {
			return fmt.Errorf("broker: subscriber %q gave up after %d sessions: %w", s.cfg.Member, attempts, err)
		}
		s.cfg.Logf("broker: subscriber %q session failed (%v); retrying in %v", s.cfg.Member, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
	}
}

// session runs one connection. done=true means End was received.
func (s *Subscriber) session(ctx context.Context) (done bool, err error) {
	conn, err := s.cfg.Dial(ctx)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	s.mu.Lock()
	offsets := make([]feed.PartitionOffset, 0, len(s.next))
	for p, n := range s.next {
		if n > 1 {
			offsets = append(offsets, feed.PartitionOffset{Partition: uint16(p), Offset: n - 1})
		}
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i].Partition < offsets[j].Partition })
	s.stats.Connects++
	if s.stats.Connects > 1 {
		s.stats.Reconnects++
	}
	s.mu.Unlock()

	enc := feed.NewEncoder(conn, nil)
	if err := enc.WriteGroupSub(&feed.GroupSub{
		Group:     s.cfg.Group,
		Member:    s.cfg.Member,
		FromStart: s.cfg.FromStart,
		Offsets:   offsets,
	}); err != nil {
		return false, err
	}
	dec := feed.NewDecoder(conn)
	for {
		fr, err := dec.Read()
		if err != nil {
			return false, err
		}
		switch f := fr.(type) {
		case *feed.Assign:
			s.mu.Lock()
			s.stats.Assigns++
			s.mu.Unlock()
		case *feed.SnapshotFrame:
			s.applySnapshot(f)
		case *feed.DeltaFrame:
			if err := s.applyDelta(enc, f); err != nil {
				return false, err
			}
		case *feed.Heartbeat:
			// liveness only
		case *feed.End:
			s.flushAcks(enc)
			s.mu.Lock()
			s.ended = true
			s.mu.Unlock()
			return true, nil
		default:
			return false, fmt.Errorf("broker: unexpected frame %T", fr)
		}
	}
}

// applySnapshot installs a compacted partition state: the latest
// signal per pair, current as of EndOffset. Snapshots only arrive when
// this member has no progress on the partition, so the watermark jump
// cannot skip anything it was owed.
func (s *Subscriber) applySnapshot(f *feed.SnapshotFrame) {
	p := int(f.Partition)
	s.mu.Lock()
	if s.next[p] != 0 {
		s.mu.Unlock()
		return // stale snapshot after progress; ignore
	}
	s.next[p] = f.EndOffset + 1
	s.signals[p] = append(s.signals[p], f.Latest...)
	s.stats.Snapshots++
	s.stats.Delivered += len(f.Latest)
	s.mu.Unlock()
	if s.cfg.OnSignal != nil {
		for _, sig := range f.Latest {
			s.cfg.OnSignal(p, sig)
		}
	}
}

// applyDelta delivers new signals, suppresses redeliveries below the
// watermark, and acks every AckEvery deliveries.
func (s *Subscriber) applyDelta(enc *feed.Encoder, f *feed.DeltaFrame) error {
	p := int(f.Partition)
	var ackAt uint64
	var fresh []feed.Signal
	s.mu.Lock()
	if s.next[p] == 0 {
		s.next[p] = 1
	}
	for _, sig := range f.Signals {
		if sig.Offset < s.next[p] {
			s.stats.Duplicates++
			continue
		}
		// Offsets are contiguous within one tenure of a partition, but
		// the group commit can advance while the partition was assigned
		// elsewhere: another member delivered and acked the range in
		// between, so resuming past it is group-level consumption, not
		// loss. Count the jump (fixed-membership tests assert zero) and
		// move the watermark forward.
		if sig.Offset > s.next[p] {
			s.stats.Jumps++
		}
		s.next[p] = sig.Offset + 1
		s.signals[p] = append(s.signals[p], sig)
		s.stats.Delivered++
		fresh = append(fresh, sig)
		s.sinceAck[p]++
		if s.sinceAck[p] >= s.cfg.AckEvery {
			s.sinceAck[p] = 0
			ackAt = sig.Offset
		}
	}
	if f.Sealed && s.next[p] > 1 {
		ackAt = s.next[p] - 1 // seal flushes the partition's tail ack
		s.sinceAck[p] = 0
	}
	s.mu.Unlock()
	if s.cfg.OnSignal != nil {
		for _, sig := range fresh {
			s.cfg.OnSignal(p, sig)
		}
	}
	if ackAt > 0 {
		if err := enc.WriteAck(&feed.AckFrame{Partition: uint16(p), Offset: ackAt}); err != nil {
			return err
		}
		s.mu.Lock()
		s.acked[p] = ackAt
		s.stats.Acked++
		s.mu.Unlock()
	}
	return nil
}

// flushAcks commits every partition's final watermark (End path).
func (s *Subscriber) flushAcks(enc *feed.Encoder) {
	s.mu.Lock()
	type pa struct {
		p   int
		off uint64
	}
	var pending []pa
	for p, n := range s.next {
		if n > 1 && s.acked[p] < n-1 {
			pending = append(pending, pa{p, n - 1})
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].p < pending[j].p })
	s.mu.Unlock()
	for _, a := range pending {
		if enc.WriteAck(&feed.AckFrame{Partition: uint16(a.p), Offset: a.off}) != nil {
			return
		}
		s.mu.Lock()
		s.acked[a.p] = a.off
		s.stats.Acked++
		s.mu.Unlock()
	}
}

// Stats returns a copy of the session counters.
func (s *Subscriber) Stats() SubscriberStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Signals returns the delivered stream of one partition in delivery
// order (a copy).
func (s *Subscriber) Signals(part int) []feed.Signal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]feed.Signal(nil), s.signals[part]...)
}

// Partitions returns the partitions this subscriber has received
// signals for, ascending.
func (s *Subscriber) Partitions() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.signals))
	for p := range s.signals {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
