package broker

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"marketminer/internal/feed"
	"marketminer/internal/supervise"
)

// PartitionOf maps a canonical pair id to its topic partition by a
// stable splitmix64-style hash: independent of partition-processor
// scheduling, insertion order and process restarts, so a pair's
// partition is a pure function of (pair id, partition count).
func PartitionOf(pairID, partitions int) int {
	h := uint64(pairID) + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(partitions))
}

// partition is one topic partition: its pair subset, its signal log,
// and the lease state of its current processor generation.
type partition struct {
	id    int
	pairs []int // canonical pair ids, ascending
	log   *partitionLog

	mu      sync.Mutex
	gen     int       // processor generation (fencing token)
	killed  bool      // hard-kill flag for the current generation
	renewed time.Time // last lease renewal
	done    bool      // sealed input fully processed
}

// partitionLog is the append-only, offset-addressed signal log of one
// partition. Offsets start at 1 and are contiguous; signals are never
// mutated after append, so readers hold zero-copy subslices. latest
// maps pair id → index of its newest signal (the compaction source for
// snapshot-on-subscribe).
type partitionLog struct {
	mu     sync.Mutex
	sigs   []feed.Signal
	stamps []int64 // append nanos per signal (nil unless collecting)
	latest map[uint32]int
	lastS  int // grid interval of the newest appended batch
	sealed bool
	stamp  bool
}

func newPartitionLog(collectStamps bool) *partitionLog {
	return &partitionLog{latest: make(map[uint32]int), lastS: -1, stamp: collectStamps}
}

// appendBatch assigns contiguous offsets to one interval's signals and
// appends them atomically. The caller (the owning processor, under
// generation fencing) guarantees single-writer semantics.
func (l *partitionLog) appendBatch(s int, sigs []feed.Signal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var now int64
	if l.stamp {
		now = time.Now().UnixNano()
	}
	for i := range sigs {
		sigs[i].Offset = uint64(len(l.sigs) + 1)
		l.latest[sigs[i].Pair] = len(l.sigs)
		l.sigs = append(l.sigs, sigs[i])
		if l.stamp {
			l.stamps = append(l.stamps, now)
		}
	}
	if s > l.lastS {
		l.lastS = s
	}
}

// end returns the newest assigned offset (0 when empty).
func (l *partitionLog) end() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.sigs))
}

// lastLoggedS returns the grid interval of the newest batch (-1 when
// empty) — the replay-deduplication watermark.
func (l *partitionLog) lastLoggedS() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastS
}

// read returns signals with offsets in [next, next+max) and whether
// the log is sealed with nothing at or after next.
func (l *partitionLog) read(next uint64, max int) (sigs []feed.Signal, drained bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if next < 1 {
		next = 1
	}
	lo := int(next - 1)
	if lo >= len(l.sigs) {
		return nil, l.sealed
	}
	hi := lo + max
	if hi > len(l.sigs) {
		hi = len(l.sigs)
	}
	return l.sigs[lo:hi], false
}

// stampAt returns the append timestamp of an offset (bench only).
func (l *partitionLog) stampAt(off uint64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.stamp || off < 1 || int(off) > len(l.stamps) {
		return 0
	}
	return l.stamps[off-1]
}

// snapshotLatest returns the compacted state: the newest signal per
// pair (ascending pair id) and the log end offset it is current as of.
func (l *partitionLog) snapshotLatest() (end uint64, latest []feed.Signal) {
	l.mu.Lock()
	defer l.mu.Unlock()
	latest = make([]feed.Signal, 0, len(l.latest))
	for _, idx := range l.latest {
		latest = append(latest, l.sigs[idx])
	}
	sort.Slice(latest, func(i, j int) bool { return latest[i].Pair < latest[j].Pair })
	return uint64(len(l.sigs)), latest
}

func (l *partitionLog) seal() {
	l.mu.Lock()
	l.sealed = true
	l.mu.Unlock()
}

func (l *partitionLog) isSealed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

// stateStore persists per-partition processor state across restarts.
// The memory store survives processor generations (the common case:
// the broker process is alive, a partition worker died); the file
// store additionally survives the process via supervise's CRC-guarded
// atomic-rename snapshot files.
type stateStore interface {
	save(part int, fingerprint string, payload any) error
	load(part int, fingerprint string, payload any) error
}

type memStore struct {
	mu    sync.Mutex
	blobs map[int][]byte
	fps   map[int]string
}

func (s *memStore) save(part int, fp string, payload any) error {
	b, err := marshalState(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blobs == nil {
		s.blobs = make(map[int][]byte)
		s.fps = make(map[int]string)
	}
	s.blobs[part] = b
	s.fps[part] = fp
	return nil
}

func (s *memStore) load(part int, fp string, payload any) error {
	s.mu.Lock()
	b, ok := s.blobs[part]
	have := s.fps[part]
	s.mu.Unlock()
	if !ok {
		return os.ErrNotExist
	}
	if have != fp {
		return fmt.Errorf("broker: state fingerprint mismatch for partition %d", part)
	}
	return unmarshalState(b, payload)
}

type fileStore struct{ dir string }

func (s *fileStore) path(part int) string {
	return filepath.Join(s.dir, fmt.Sprintf("partition-%03d.snap", part))
}

func (s *fileStore) save(part int, fp string, payload any) error {
	return supervise.SaveSnapshot(s.path(part), fp, payload)
}

func (s *fileStore) load(part int, fp string, payload any) error {
	return supervise.LoadSnapshot(s.path(part), fp, payload)
}
