package broker

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BenchConfig sizes a subscriber-scale fan-out benchmark.
type BenchConfig struct {
	// N, M, Partitions, W, D configure the broker under test.
	N, M, Partitions int
	W                int
	D                float64
	// Intervals is the synthetic day length in return vectors.
	Intervals int
	// Subscribers is the number of simulated in-process followers; each
	// follows one partition (round-robin), the way a horizontally
	// scaled consumer fleet shards the signal space.
	Subscribers int
	// Seed drives the synthetic return stream.
	Seed int64
}

// BenchResult is one benchmark point: sustained fan-out throughput and
// the delivery-latency distribution (publish → follower observation).
type BenchResult struct {
	Subscribers   int     `json:"subscribers"`
	Partitions    int     `json:"partitions"`
	Pairs         int     `json:"pairs"`
	Signals       int     `json:"signals"`         // unique signals published
	Deliveries    int64   `json:"deliveries"`      // signal deliveries across all followers
	DurationMS    float64 `json:"duration_ms"`     // feed start → last follower drained
	SignalsPerSec float64 `json:"signals_per_sec"` // deliveries / duration
	DeliverP50us  float64 `json:"deliver_p50_us"`
	DeliverP99us  float64 `json:"deliver_p99_us"`
}

// benchReturns mirrors the synthetic stream mmchaos uses: smooth
// deterministic cross-sections, no allocation surprises.
func benchReturns(n, T int, seed int64) [][]float64 {
	out := make([][]float64, T)
	for s := range out {
		v := make([]float64, n)
		for i := range v {
			v[i] = 0.001*math.Sin(float64(seed)+float64(s+1)*0.31+float64(i)*1.07) +
				0.0003*math.Cos(float64(s*(i+2))*0.77)
		}
		out[s] = v
	}
	return out
}

// RunBench measures snapshot+delta fan-out at cfg.Subscribers
// in-process followers. Followers read the partition logs through the
// same read/wake path the wire handlers use, so the measured contention
// (log mutex, watch-channel broadcast) is the serving path's — only
// the socket is elided, which is what makes 10k subscribers in one
// process honest rather than an OS file-descriptor benchmark.
func RunBench(ctx context.Context, cfg BenchConfig) (*BenchResult, error) {
	if cfg.Subscribers <= 0 {
		return nil, fmt.Errorf("broker: bench needs subscribers > 0")
	}
	if cfg.Intervals <= cfg.M {
		return nil, fmt.Errorf("broker: bench needs intervals > M")
	}
	b, err := New(Config{
		N:             cfg.N,
		Partitions:    cfg.Partitions,
		M:             cfg.M,
		W:             cfg.W,
		D:             cfg.D,
		CollectStamps: true,
	})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	b.Start()

	var deliveries atomic.Int64
	// Every follower samples one latency per read batch (the newest
	// signal in the batch) — bounded memory at any scale while still
	// populating the tail of the distribution.
	samples := make([][]int64, cfg.Subscribers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		part := b.parts[i%len(b.parts)]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var next uint64 = 1
			for {
				sigs, drained := part.log.read(next, 4096)
				if len(sigs) > 0 {
					now := time.Now().UnixNano()
					last := sigs[len(sigs)-1]
					if st := part.log.stampAt(last.Offset); st > 0 {
						samples[i] = append(samples[i], now-st)
					}
					deliveries.Add(int64(len(sigs)))
					next += uint64(len(sigs))
					continue
				}
				if drained {
					return
				}
				if !b.waitWake(ctx, 10*time.Millisecond) {
					return
				}
			}
		}(i)
	}

	rets := benchReturns(cfg.N, cfg.Intervals, cfg.Seed)
	start := time.Now()
	for s, r := range rets {
		if err := b.OfferReturns(s, r); err != nil {
			return nil, err
		}
	}
	b.FinishInput()
	if err := b.WaitDone(ctx); err != nil {
		return nil, err
	}
	wg.Wait()
	elapsed := time.Since(start)

	signals := 0
	for _, p := range b.parts {
		signals += int(p.log.end())
	}
	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &BenchResult{
		Subscribers:   cfg.Subscribers,
		Partitions:    len(b.parts),
		Pairs:         cfg.N * (cfg.N - 1) / 2,
		Signals:       signals,
		Deliveries:    deliveries.Load(),
		DurationMS:    float64(elapsed.Nanoseconds()) / 1e6,
		SignalsPerSec: float64(deliveries.Load()) / elapsed.Seconds(),
		DeliverP50us:  percentileNanos(all, 0.50) / 1e3,
		DeliverP99us:  percentileNanos(all, 0.99) / 1e3,
	}
	return res, nil
}

func percentileNanos(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx])
}
