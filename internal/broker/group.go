package broker

import (
	"sort"
	"time"

	"marketminer/internal/metrics"
)

// group is one consumer group: a set of members sharing the partition
// space, plus the group's committed ack offsets. Assignments are
// recomputed from the sorted member list, so they are a pure function
// of (membership, partition count) — every member derives the same
// view, and a member that drops and rejoins inside MemberGrace gets
// its old partitions back.
type group struct {
	name    string
	epoch   uint64
	members map[string]*member
	commits []uint64 // per-partition committed offset (max of acks)
}

// member is one group member. A member survives its connection:
// session fencing (a strictly increasing session counter) lets a
// reconnect displace a stale handler, and lastSeen + MemberGrace
// decides when a silent member finally loses its assignment.
type member struct {
	id       string
	session  uint64
	alive    bool
	lastSeen time.Time
}

// joinGroup registers (or revives) a member and returns the member's
// new session token. Membership growth bumps the epoch so every
// handler re-announces assignments.
func (b *Broker) joinGroup(groupName, memberID string) (g *group, session uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g = b.groups[groupName]
	if g == nil {
		g = &group{
			name:    groupName,
			epoch:   1,
			members: make(map[string]*member),
			commits: make([]uint64, len(b.parts)),
		}
		b.groups[groupName] = g
	}
	m := g.members[memberID]
	fresh := m == nil
	if fresh {
		m = &member{id: memberID}
		g.members[memberID] = m
	}
	m.session++
	m.alive = true
	m.lastSeen = b.cfg.Now()
	if fresh {
		g.epoch++
	}
	close(b.watch)
	b.watch = make(chan struct{})
	return g, m.session
}

// leaveGroup marks a member's session as disconnected. The member
// keeps its assignment until MemberGrace expires (reconnect-friendly);
// only sweepMembers removes it.
func (b *Broker) leaveGroup(g *group, memberID string, session uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := g.members[memberID]
	if m == nil || m.session != session {
		return // a newer session owns this member now
	}
	m.alive = false
	m.lastSeen = b.cfg.Now()
}

// sweepMembers removes members whose disconnect outlived MemberGrace
// and rebalances their groups. Called from the lease loop.
func (b *Broker) sweepMembers() {
	now := b.cfg.Now()
	b.mu.Lock()
	bumped := false
	for _, g := range b.groups {
		for id, m := range g.members {
			if !m.alive && now.Sub(m.lastSeen) > b.cfg.MemberGrace {
				delete(g.members, id)
				g.epoch++
				bumped = true
				metrics.Counter("broker.member_sweeps").Inc()
				b.cfg.Logf("broker: group %q member %q grace expired; rebalancing (epoch %d)", g.name, id, g.epoch)
			}
		}
	}
	if bumped {
		close(b.watch)
		b.watch = make(chan struct{})
	}
	b.mu.Unlock()
}

// groupView is a consistent snapshot of one member's assignment at one
// epoch, taken under the broker lock.
type groupView struct {
	epoch      uint64
	partitions []int
	commits    []uint64 // committed offset per assigned partition
}

// viewFor computes member's current assignment: partitions are dealt
// round-robin over the lexicographically sorted member ids. Sorting —
// not join order — makes the assignment deterministic across handler
// scheduling, which the e2e determinism test depends on.
func (b *Broker) viewFor(g *group, memberID string) groupView {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]string, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	v := groupView{epoch: g.epoch}
	slot := -1
	for i, id := range ids {
		if id == memberID {
			slot = i
			break
		}
	}
	if slot < 0 {
		return v // swept: no assignment
	}
	for p := range b.parts {
		if p%len(ids) == slot {
			v.partitions = append(v.partitions, p)
			v.commits = append(v.commits, g.commits[p])
		}
	}
	return v
}

// epochOf reads the group's current epoch.
func (b *Broker) epochOf(g *group) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return g.epoch
}

// touchMember refreshes a member's liveness (any inbound frame).
func (b *Broker) touchMember(g *group, memberID string, session uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m := g.members[memberID]; m != nil && m.session == session {
		m.lastSeen = b.cfg.Now()
	}
}

// commit records an acked offset. Commits are monotonic per partition:
// a stale or duplicate ack (a reconnecting member replaying its last
// ack) is a no-op, so the committed stream only moves forward. The
// offset is clamped to the partition log end — a buggy client must not
// push the group commit past data that exists, or a member later
// resuming from commit+1 would silently skip the range in between.
func (b *Broker) commit(g *group, part int, offset uint64) {
	if part < 0 || part >= len(b.parts) {
		return
	}
	if end := b.parts[part].log.end(); offset > end {
		offset = end
	}
	b.mu.Lock()
	if offset > g.commits[part] {
		g.commits[part] = offset
	}
	b.mu.Unlock()
	metrics.Counter("broker.acks").Inc()
}
