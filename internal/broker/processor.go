package broker

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"marketminer/internal/corr"
	"marketminer/internal/feed"
	"marketminer/internal/metrics"
)

func marshalState(v any) ([]byte, error)   { return json.Marshal(v) }
func unmarshalState(b []byte, v any) error { return json.Unmarshal(b, v) }

// procState is a partition processor's complete resumable state: the
// input cursor, the log end offset the cursor corresponds to, and the
// engine warm state. Cursor and EndOffset are captured in the same
// critical section as the engine snapshot, so a restore replays input
// from exactly where the log ends.
type procState struct {
	Cursor    int                  `json:"cursor"`
	EndOffset uint64               `json:"end_offset"`
	Engine    *corr.EngineSnapshot `json:"engine"`
}

// pairRings holds the per-pair trailing-W correlation windows a
// processor derives C̄ and divergence crossings from. Every value in a
// ring is also in the partition log, which is what makes rings
// rebuildable from the log after a crash.
type pairRings struct {
	pairs []int
	w     int
	rings [][]float64 // chronological, ≤ w values each
}

func newPairRings(pairs []int, w int) *pairRings {
	return &pairRings{pairs: pairs, w: w, rings: make([][]float64, len(pairs))}
}

// avg is the C̄ summation. It always folds in chronological order over
// the ring snapshot, so the value is path-independent: a processor
// that lived through the stream and one that rebuilt its ring from the
// log compute bit-identical C̄ — the keystone of the no-loss/no-dup
// delivery proof.
func avg(ring []float64) float64 {
	var sum float64
	for _, v := range ring {
		sum += v
	}
	return sum / float64(len(ring))
}

// step ingests one matrix interval and produces this partition's
// signal batch: one signal per owned pair, with the divergence
// crossing kind derived statelessly from the ring (previous divergence
// is recomputed from the pre-push ring, not carried as mutable state,
// so a rebuilt processor emits identical kinds).
func (r *pairRings) step(s int, m *corr.Matrix, d float64) []feed.Signal {
	out := make([]feed.Signal, 0, len(r.pairs))
	for idx, k := range r.pairs {
		c := m.AtPair(k)
		ring := r.rings[idx]
		prevDiverged := false
		if len(ring) > 0 {
			prevC := ring[len(ring)-1]
			prevDiverged = prevC < avg(ring)*(1-d)
		}
		if len(ring) == r.w {
			copy(ring, ring[1:])
			ring = ring[:r.w-1]
		}
		ring = append(ring, c)
		r.rings[idx] = ring
		cbar := avg(ring)
		diverged := c < cbar*(1-d)
		kind := KindUpdate
		switch {
		case diverged && !prevDiverged:
			kind = KindDiverge
		case !diverged && prevDiverged:
			kind = KindRevert
		}
		out = append(out, feed.Signal{
			Pair: uint32(k), S: uint32(s), Kind: kind, C: c, Cbar: cbar,
		})
	}
	return out
}

// rebuild reconstructs the rings from the partition log as of
// endOffset: for each pair, its last ≤ W logged C values in
// chronological order — exactly the ring a processor that never died
// would hold after appending offset endOffset.
func (r *pairRings) rebuild(log *partitionLog, endOffset uint64) {
	sigs, _ := log.read(1, int(endOffset))
	if uint64(len(sigs)) > endOffset {
		sigs = sigs[:endOffset]
	}
	byPair := make(map[uint32][]float64, len(r.pairs))
	for i := range sigs {
		p := sigs[i].Pair
		ring := append(byPair[p], sigs[i].C)
		if len(ring) > r.w {
			ring = ring[1:]
		}
		byPair[p] = ring
	}
	for idx, k := range r.pairs {
		r.rings[idx] = append([]float64(nil), byPair[uint32(k)]...)
	}
}

// stateFingerprint extends the engine fingerprint with the signal
// parameters, so a snapshot from a differently-tuned broker never
// restores.
func (b *Broker) stateFingerprint(eng *corr.OnlineEngine) string {
	return fmt.Sprintf("%s|w=%d|d=%g", eng.Fingerprint(), b.cfg.W, b.cfg.D)
}

// runProcessor is one incarnation of partition p's processor under
// generation gen. It restores from the state store when possible,
// replays the input log from its cursor, and publishes fenced signal
// batches. A hard kill exits the goroutine without returning (the
// supervisor never sees it — only the lease checker does); a
// superseded generation returns nil and falls silent.
func (b *Broker) runProcessor(ctx context.Context, p *partition, gen int, progress func()) error {
	engCfg := corr.EngineConfig{
		Type:    b.cfg.Type,
		M:       b.cfg.M,
		Workers: b.cfg.Workers,
		Pairs:   p.pairs,
	}
	eng, err := corr.NewOnlineEngine(engCfg, b.cfg.N)
	if err != nil {
		return err
	}
	rings := newPairRings(p.pairs, b.cfg.W)
	fp := b.stateFingerprint(eng)
	cursor := 0
	var st procState
	if err := b.store.load(p.id, fp, &st); err == nil && st.Engine != nil {
		if err := eng.Restore(st.Engine); err == nil {
			cursor = st.Cursor
			rings.rebuild(p.log, st.EndOffset)
			metrics.Counter("broker.processor_restores").Inc()
			b.cfg.Logf("broker: partition %d gen %d restored at cursor %d offset %d", p.id, gen, cursor, st.EndOffset)
		} else {
			b.cfg.Logf("broker: partition %d snapshot rejected (%v); cold start", p.id, err)
		}
	}

	sinceSnap := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch b.leaseBeat(p, gen) {
		case beatKilled:
			runtime.Goexit() // SIGKILL analogue: no flush, no return
		case beatSuperseded:
			return nil
		}
		entry, ok := b.input.get(cursor)
		if !ok {
			if b.input.isSealed() {
				b.finishPartition(p, gen)
				return nil
			}
			if !b.waitWake(ctx, b.cfg.LeaseEvery) {
				return ctx.Err()
			}
			continue
		}
		// Replay detection must precede the publish: once this interval
		// is appended, lastLoggedS catches up to entry.s and the
		// distinction is gone.
		replaying := entry.s <= p.log.lastLoggedS()
		m, err := eng.Push(entry.rets)
		if err != nil {
			return err // supervised: restart replays from the snapshot
		}
		cursor++
		if m != nil {
			sigs := rings.step(entry.s, m, b.cfg.D)
			// Replay deduplication: batches already in the log (we are
			// re-deriving them after a crash) are regenerated to warm
			// the rings but never re-appended.
			if !replaying {
				if !b.publish(p, gen, entry.s, sigs) {
					return nil // superseded mid-publish
				}
			}
		}
		progress()
		if replaying {
			// No state saves mid-replay: a snapshot taken here would
			// pair a lagging Cursor with the full log's EndOffset, and a
			// restore from it would re-push intervals whose C values are
			// already in the rebuilt rings, corrupting the W-window.
			continue
		}
		sinceSnap++
		if sinceSnap >= b.cfg.SnapshotEvery {
			sinceSnap = 0
			snap := procState{Cursor: cursor, EndOffset: p.log.end(), Engine: eng.Snapshot()}
			if err := b.store.save(p.id, fp, snap); err != nil {
				b.cfg.Logf("broker: partition %d snapshot save: %v", p.id, err)
			}
		}
	}
}

// publish appends one interval's batch under generation fencing and
// wakes subscribers. false means this processor has been superseded.
func (b *Broker) publish(p *partition, gen int, s int, sigs []feed.Signal) bool {
	p.mu.Lock()
	if p.gen != gen || p.killed {
		p.mu.Unlock()
		return false
	}
	p.log.appendBatch(s, sigs)
	p.mu.Unlock()
	metrics.Counter("broker.signals_published").Add(int64(len(sigs)))
	b.wake()
	return true
}

// finishPartition seals partition p's log once the sealed input is
// fully consumed, still under generation fencing.
func (b *Broker) finishPartition(p *partition, gen int) {
	p.mu.Lock()
	if p.gen != gen || p.killed {
		p.mu.Unlock()
		return
	}
	p.done = true
	p.mu.Unlock()
	p.log.seal()
	b.wake()
}
