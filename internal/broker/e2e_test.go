package broker

import (
	"context"
	"net"
	"testing"
	"time"

	"marketminer/internal/chaos"
	"marketminer/internal/feed"
	"marketminer/internal/metrics"
)

// e2eResult is one member's complete observed state after End.
type e2eResult struct {
	sub *Subscriber
	err error
}

// runGroupE2E drives the full acceptance scenario: a 3-member consumer
// group over 4 partitions on a real TCP listener, partition 1's
// processor hard-killed mid-day, optionally with chaos corrupt/cut on
// every subscriber connection. It returns the members keyed by id.
func runGroupE2E(t *testing.T, spec chaos.Spec, rets [][]float64) map[string]*Subscriber {
	t.Helper()
	cfg := testConfig()
	cfg.MemberGrace = 30 * time.Second // reconnects must never reshuffle
	cfg.MaxDelta = 7
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr.String())
	}
	if spec.Active() {
		dial = chaos.New(spec).Dialer(dial)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	members := []string{"m-0", "m-1", "m-2"}
	subs := make(map[string]*Subscriber, len(members))
	done := make(chan e2eResult, len(members))
	for _, id := range members {
		sub, err := NewSubscriber(SubscriberConfig{
			Group:     "g",
			Member:    id,
			FromStart: true,
			AckEvery:  5,
			Dial:      dial,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		subs[id] = sub
		go func() { done <- e2eResult{sub, sub.Run(ctx)} }()
	}

	// All members must be in the group before signals flow, so the
	// assignment (and therefore each member's stream) is deterministic.
	waitFor(t, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		g := b.groups["g"]
		return g != nil && len(g.members) == len(members)
	})

	for s := 0; s < len(rets)/2; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.parts[1].log.end() > 0 })
	rebalBefore := metrics.Counter("broker.rebalances").Value()
	b.KillPartition(1)
	waitFor(t, func() bool { return metrics.Counter("broker.rebalances").Value() > rebalBefore })
	for s := len(rets) / 2; s < len(rets); s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()

	for range members {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatalf("subscriber failed: %v", r.err)
			}
		case <-ctx.Done():
			t.Fatal("subscribers did not finish in time")
		}
	}
	return subs
}

// TestE2EGroupKillRebalance is the acceptance scenario without wire
// faults: after a mid-day processor kill and rebalance, every member's
// delivered stream must be byte-identical to the unfaulted run.
func TestE2EGroupKillRebalance(t *testing.T) {
	rets := testReturns(8, 40)
	want := referenceLogs(t, testConfig(), rets)
	subs := runGroupE2E(t, chaos.Spec{}, rets)
	assertStreams(t, subs, want)
}

// TestE2EGroupKillRebalanceChaos repeats the scenario with bit flips
// and mid-stream cuts injected on every subscriber connection: frames
// that survive CRC are delivered; everything else forces resubscribe,
// and the committed streams must still match bit for bit.
func TestE2EGroupKillRebalanceChaos(t *testing.T) {
	rets := testReturns(8, 40)
	want := referenceLogs(t, testConfig(), rets)
	subs := runGroupE2E(t, chaos.Spec{Seed: 42, CorruptEvery: 64 << 10, CutEvery: 96 << 10}, rets)
	assertStreams(t, subs, want)
	cut := false
	for _, sub := range subs {
		if sub.Stats().Reconnects > 0 {
			cut = true
		}
	}
	if !cut {
		t.Log("warning: chaos schedule injected no reconnects at this stream size")
	}
}

// assertStreams checks the acceptance criterion: each member's
// per-partition delivered stream equals the unfaulted partition log
// exactly — same signals, same order, same offsets, same float bits —
// and the three members cover the four partitions round-robin.
func assertStreams(t *testing.T, subs map[string]*Subscriber, want [][]feed.Signal) {
	t.Helper()
	assignment := map[string][]int{"m-0": {0, 3}, "m-1": {1}, "m-2": {2}}
	for id, parts := range assignment {
		sub := subs[id]
		for _, p := range parts {
			sameSignals(t, id, sub.Signals(p), want[p])
		}
		got := sub.Partitions()
		if len(got) != len(parts) {
			t.Fatalf("%s received partitions %v, want %v", id, got, parts)
		}
		st := sub.Stats()
		if st.Delivered == 0 || st.Acked == 0 {
			t.Fatalf("%s: stats %+v look dead", id, st)
		}
	}
}

// TestSnapshotOnSubscribe: a member joining after the day is done gets
// the compacted latest-signal-per-pair snapshot plus End, not the full
// log.
func TestSnapshotOnSubscribe(t *testing.T) {
	cfg := testConfig()
	rets := testReturns(8, 40)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	feedAll(t, b, rets)
	full := drainLogs(t, b)
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snapBefore := metrics.Counter("broker.snapshot_sends").Value()
	sub, err := NewSubscriber(SubscriberConfig{
		Group: "late", Member: "viewer",
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sub.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.Snapshots != b.NumPartitions() {
		t.Fatalf("snapshots %d, want %d", st.Snapshots, b.NumPartitions())
	}
	if got := metrics.Counter("broker.snapshot_sends").Value(); got-snapBefore != int64(b.NumPartitions()) {
		t.Fatalf("snapshot_sends delta %d, want %d", got-snapBefore, b.NumPartitions())
	}
	totalPairs := 0
	for p := range full {
		_, latest := b.parts[p].log.snapshotLatest()
		sameSignals(t, "snapshot", sub.Signals(p), latest)
		totalPairs += len(latest)
	}
	if st.Delivered != totalPairs {
		t.Fatalf("delivered %d, want compacted %d (full log is %d)", st.Delivered, totalPairs, totalLen(full))
	}
}

func totalLen(logs [][]feed.Signal) int {
	n := 0
	for _, l := range logs {
		n += len(l)
	}
	return n
}

// TestEvictionOfLaggingSubscriber: a subscriber whose cursor lags the
// log end beyond EvictLag is cut loose instead of stalling the broker.
func TestEvictionOfLaggingSubscriber(t *testing.T) {
	cfg := testConfig()
	cfg.EvictLag = 1
	rets := testReturns(8, 40)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	feedAll(t, b, rets)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := b.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	evBefore := metrics.Counter("broker.evictions").Value()
	sub, err := NewSubscriber(SubscriberConfig{
		Group: "slow", Member: "laggard", FromStart: true, MaxAttempts: 2,
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Run(ctx); err == nil {
		t.Fatal("lagging FromStart subscriber was not evicted")
	}
	if got := metrics.Counter("broker.evictions").Value(); got <= evBefore {
		t.Fatal("eviction counter did not move")
	}
}
