package broker

import (
	"context"
	"net"
	"testing"
	"time"

	"marketminer/internal/chaos"
	"marketminer/internal/feed"
	"marketminer/internal/metrics"
)

// e2eResult is one member's complete observed state after End.
type e2eResult struct {
	sub *Subscriber
	err error
}

// runGroupE2E drives the full acceptance scenario: a 3-member consumer
// group over 4 partitions on a real TCP listener, partition 1's
// processor hard-killed mid-day, optionally with chaos corrupt/cut on
// every subscriber connection. It returns the members keyed by id.
func runGroupE2E(t *testing.T, spec chaos.Spec, rets [][]float64) map[string]*Subscriber {
	t.Helper()
	cfg := testConfig()
	cfg.MemberGrace = 30 * time.Second // reconnects must never reshuffle
	cfg.MaxDelta = 7
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr.String())
	}
	if spec.Active() {
		dial = chaos.New(spec).Dialer(dial)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	members := []string{"m-0", "m-1", "m-2"}
	subs := make(map[string]*Subscriber, len(members))
	done := make(chan e2eResult, len(members))
	for _, id := range members {
		sub, err := NewSubscriber(SubscriberConfig{
			Group:     "g",
			Member:    id,
			FromStart: true,
			AckEvery:  5,
			Dial:      dial,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		subs[id] = sub
		go func() { done <- e2eResult{sub, sub.Run(ctx)} }()
	}

	// All members must be in the group before signals flow, so the
	// assignment (and therefore each member's stream) is deterministic.
	waitFor(t, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		g := b.groups["g"]
		return g != nil && len(g.members) == len(members)
	})

	for s := 0; s < len(rets)/2; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.parts[1].log.end() > 0 })
	rebalBefore := metrics.Counter("broker.rebalances").Value()
	b.KillPartition(1)
	waitFor(t, func() bool { return metrics.Counter("broker.rebalances").Value() > rebalBefore })
	for s := len(rets) / 2; s < len(rets); s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()

	for range members {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatalf("subscriber failed: %v", r.err)
			}
		case <-ctx.Done():
			t.Fatal("subscribers did not finish in time")
		}
	}
	return subs
}

// TestE2EGroupKillRebalance is the acceptance scenario without wire
// faults: after a mid-day processor kill and rebalance, every member's
// delivered stream must be byte-identical to the unfaulted run.
func TestE2EGroupKillRebalance(t *testing.T) {
	rets := testReturns(8, 40)
	want := referenceLogs(t, testConfig(), rets)
	subs := runGroupE2E(t, chaos.Spec{}, rets)
	assertStreams(t, subs, want)
}

// TestE2EGroupKillRebalanceChaos repeats the scenario with bit flips
// and mid-stream cuts injected on every subscriber connection: frames
// that survive CRC are delivered; everything else forces resubscribe,
// and the committed streams must still match bit for bit.
func TestE2EGroupKillRebalanceChaos(t *testing.T) {
	rets := testReturns(8, 40)
	want := referenceLogs(t, testConfig(), rets)
	subs := runGroupE2E(t, chaos.Spec{Seed: 42, CorruptEvery: 64 << 10, CutEvery: 96 << 10}, rets)
	assertStreams(t, subs, want)
	cut := false
	for _, sub := range subs {
		if sub.Stats().Reconnects > 0 {
			cut = true
		}
	}
	if !cut {
		t.Log("warning: chaos schedule injected no reconnects at this stream size")
	}
}

// assertStreams checks the acceptance criterion: each member's
// per-partition delivered stream equals the unfaulted partition log
// exactly — same signals, same order, same offsets, same float bits —
// and the three members cover the four partitions round-robin.
func assertStreams(t *testing.T, subs map[string]*Subscriber, want [][]feed.Signal) {
	t.Helper()
	assignment := map[string][]int{"m-0": {0, 3}, "m-1": {1}, "m-2": {2}}
	for id, parts := range assignment {
		sub := subs[id]
		for _, p := range parts {
			sameSignals(t, id, sub.Signals(p), want[p])
		}
		got := sub.Partitions()
		if len(got) != len(parts) {
			t.Fatalf("%s received partitions %v, want %v", id, got, parts)
		}
		st := sub.Stats()
		if st.Delivered == 0 || st.Acked == 0 {
			t.Fatalf("%s: stats %+v look dead", id, st)
		}
		if st.Jumps != 0 {
			t.Fatalf("%s: offsets jumped under fixed membership: %+v", id, st)
		}
	}
}

// TestReassignAwayAndBackNoLoss: a member that loses a partition to a
// joining member mid-session and later wins it back (grace sweep) must
// resume delivery from its in-session watermark — not re-take the
// compacted-snapshot path, which would jump the server cursor over
// every signal appended in between. The member never acks (AckEvery is
// huge), so the group commit stays 0 and only the connection watermark
// stands between the resume rule and silent loss.
func TestReassignAwayAndBackNoLoss(t *testing.T) {
	cfg := testConfig()
	cfg.Partitions = 2
	cfg.MemberGrace = 50 * time.Millisecond
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewSubscriber(SubscriberConfig{
		Group: "g", Member: "m-a",
		AckEvery: 1 << 30, // never ack mid-day: commit must not mask the watermark
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.String())
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sub.Run(ctx) }()

	rets := testReturns(8, 40)
	waitFor(t, func() bool { return sub.Stats().Assigns >= 1 })
	for s := 0; s < 20; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(sub.Signals(1)) > 0 })

	// "m-b" sorts after "m-a": partition 1 moves to it, partition 0
	// stays here.
	g, session := b.joinGroup("g", "m-b")
	waitFor(t, func() bool { return sub.Stats().Assigns >= 2 })

	// Signals appended while the partition is assigned elsewhere are
	// exactly the range the old snapshot path skipped.
	mark := b.parts[1].log.end()
	for s := 20; s < 30; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.parts[1].log.end() > mark })

	// m-b leaves; once MemberGrace expires the sweep rebalances
	// partition 1 back to m-a.
	b.leaveGroup(g, "m-b", session)
	waitFor(t, func() bool { return sub.Stats().Assigns >= 3 })

	for s := 30; s < 40; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	logs := drainLogs(t, b)
	for p := range logs {
		sameSignals(t, "partition", sub.Signals(p), logs[p])
	}
	st := sub.Stats()
	if st.Jumps != 0 {
		t.Fatalf("delivery jumped offsets: %+v", st)
	}
	if st.Reconnects != 0 {
		t.Fatalf("reassignment should not need reconnects: %+v", st)
	}
}

// TestEmptyAssignmentGetsEnd: with more members than partitions, the
// member left holding nothing must still receive End once the day is
// drained — not heartbeat forever while its Run blocks.
func TestEmptyAssignmentGetsEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Partitions = 1
	// A long grace keeps the first member's assignment in place after
	// its Run returns: the empty member must get End on its own merits,
	// not by inheriting the partition from a sweep.
	cfg.MemberGrace = time.Hour
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	feedAll(t, b, testReturns(8, 20))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := b.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-register both members so neither connection ever sees a
	// single-member group: "m-b" computes an empty assignment from the
	// first Assign on.
	b.joinGroup("g", "m-a")
	b.joinGroup("g", "m-b")
	done := make(chan error, 2)
	for _, id := range []string{"m-a", "m-b"} {
		sub, err := NewSubscriber(SubscriberConfig{
			Group: "g", Member: id,
			Dial: func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr.String())
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { done <- sub.Run(ctx) }()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("subscriber did not end cleanly: %v", err)
			}
		case <-ctx.Done():
			t.Fatal("a member with an empty assignment never received End")
		}
	}
}

// TestSnapshotOnSubscribe: a member joining after the day is done gets
// the compacted latest-signal-per-pair snapshot plus End, not the full
// log.
func TestSnapshotOnSubscribe(t *testing.T) {
	cfg := testConfig()
	rets := testReturns(8, 40)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	feedAll(t, b, rets)
	full := drainLogs(t, b)
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	snapBefore := metrics.Counter("broker.snapshot_sends").Value()
	sub, err := NewSubscriber(SubscriberConfig{
		Group: "late", Member: "viewer",
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sub.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := sub.Stats()
	if st.Snapshots != b.NumPartitions() {
		t.Fatalf("snapshots %d, want %d", st.Snapshots, b.NumPartitions())
	}
	if got := metrics.Counter("broker.snapshot_sends").Value(); got-snapBefore != int64(b.NumPartitions()) {
		t.Fatalf("snapshot_sends delta %d, want %d", got-snapBefore, b.NumPartitions())
	}
	totalPairs := 0
	for p := range full {
		_, latest := b.parts[p].log.snapshotLatest()
		sameSignals(t, "snapshot", sub.Signals(p), latest)
		totalPairs += len(latest)
	}
	if st.Delivered != totalPairs {
		t.Fatalf("delivered %d, want compacted %d (full log is %d)", st.Delivered, totalPairs, totalLen(full))
	}
}

func totalLen(logs [][]feed.Signal) int {
	n := 0
	for _, l := range logs {
		n += len(l)
	}
	return n
}

// TestEvictionOfLaggingSubscriber: a subscriber whose cursor lags the
// log end beyond EvictLag is cut loose instead of stalling the broker.
func TestEvictionOfLaggingSubscriber(t *testing.T) {
	cfg := testConfig()
	cfg.EvictLag = 1
	rets := testReturns(8, 40)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	feedAll(t, b, rets)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := b.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	addr, err := b.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	evBefore := metrics.Counter("broker.evictions").Value()
	sub, err := NewSubscriber(SubscriberConfig{
		Group: "slow", Member: "laggard", FromStart: true, MaxAttempts: 2,
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Run(ctx); err == nil {
		t.Fatal("lagging FromStart subscriber was not evicted")
	}
	if got := metrics.Counter("broker.evictions").Value(); got <= evBefore {
		t.Fatal("eviction counter did not move")
	}
}
