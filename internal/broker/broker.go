// Package broker is the partitioned signal-distribution subsystem:
// the layer between the paper's single-consumer pipeline and the
// ROADMAP's "millions of subscribers" north star. It partitions the
// pair universe into topic partitions by a stable hash of the pair id,
// runs one supervised correlation/strategy processor per partition —
// each owning a corr.OnlineEngine pair-subset whose Snapshot/Restore
// is the partition's state store — and fans the resulting signal log
// out to consumer groups over the feed codec's snapshot+delta
// protocol with per-member ack offsets.
//
// Delivery contract: every partition's signal log is deterministic —
// a function only of the input return stream — and offsets are
// contiguous from 1. A processor that dies (panic, or hard kill
// detected by lease expiry) is relaunched by the lease checker under
// a new generation; fenced appends plus replay-past-the-log
// deduplication regenerate the log bit-identically, so a subscriber
// resuming from any committed offset never loses or double-sees a
// signal, no matter how many crashes or reconnects happened in
// between (see DESIGN.md §7).
package broker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"marketminer/internal/corr"
	"marketminer/internal/metrics"
	"marketminer/internal/supervise"
	"marketminer/internal/taq"
)

// Signal kinds carried in feed.Signal.Kind.
const (
	// KindUpdate is a plain per-interval coefficient update.
	KindUpdate uint8 = 0
	// KindDiverge marks the interval a pair crossed below the
	// divergence band C̄·(1−d) — the strategy's entry trigger.
	KindDiverge uint8 = 1
	// KindRevert marks the interval a diverged pair crossed back above
	// the band.
	KindRevert uint8 = 2
)

// Config tunes a Broker. Zero fields take the documented defaults.
type Config struct {
	// N is the stock-universe order (required, ≥ 2).
	N int
	// Partitions is the number of topic partitions (default 4).
	Partitions int
	// M is the correlation window in intervals (required, ≥ 2).
	M int
	// W is the C̄ moving-average window in matrices (default 5).
	W int
	// D is the divergence threshold (default 0.1).
	D float64
	// Type selects the correlation treatment (default Pearson).
	Type corr.Type
	// Workers is the per-partition engine parallelism (default 1 — the
	// parallelism of the broker is across partitions).
	Workers int
	// SnapshotEvery is the number of processed intervals between state-
	// store saves per partition (default 16).
	SnapshotEvery int
	// SnapshotDir, when non-empty, persists partition state through
	// supervise.SaveSnapshot files under this directory; empty keeps
	// state in memory (survives processor restarts, not the process).
	SnapshotDir string
	// LeaseTTL is how stale a processor's lease renewal may be before
	// the lease checker declares it dead and rebalances (default 1s).
	LeaseTTL time.Duration
	// LeaseEvery is the lease-checker and member-sweep period
	// (default 100ms).
	LeaseEvery time.Duration
	// MemberGrace is how long a disconnected group member keeps its
	// partition assignment before the group rebalances without it
	// (default 5s). It must comfortably exceed a subscriber's reconnect
	// backoff so wire faults do not reshuffle assignments.
	MemberGrace time.Duration
	// MaxDelta bounds the signals per delta frame (default 512).
	MaxDelta int
	// EvictLag evicts a subscriber whose next undelivered offset lags
	// the log end by more than this many signals (default 1<<20).
	EvictLag uint64
	// Heartbeat is the idle keep-alive period on subscriber
	// connections (default 1s).
	Heartbeat time.Duration
	// Policy supervises each partition processor (restart backoff and
	// circuit breaker); the zero value is the supervise default.
	Policy supervise.Policy
	// CollectStamps records an append timestamp per signal for
	// delivery-latency benchmarks.
	CollectStamps bool
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Now is the clock (default time.Now; tests inject a fake to drive
	// lease expiry deterministically).
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.N < 2 {
		return c, errors.New("broker: need at least 2 stocks")
	}
	if c.M < 2 {
		return c, fmt.Errorf("broker: window M=%d too small", c.M)
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	nPairs := c.N * (c.N - 1) / 2
	if c.Partitions > nPairs {
		c.Partitions = nPairs
	}
	if c.Partitions > 1<<16 {
		return c, fmt.Errorf("broker: %d partitions exceed uint16 wire range", c.Partitions)
	}
	if c.W <= 0 {
		c.W = 5
	}
	if c.D <= 0 {
		c.D = 0.1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 16
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	if c.LeaseEvery <= 0 {
		c.LeaseEvery = 100 * time.Millisecond
	}
	if c.MemberGrace <= 0 {
		c.MemberGrace = 5 * time.Second
	}
	if c.MaxDelta <= 0 {
		c.MaxDelta = 512
	}
	if c.EvictLag == 0 {
		c.EvictLag = 1 << 20
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// inputEntry is one interval of the shared input log every partition
// processor consumes at its own cursor.
type inputEntry struct {
	s    int
	rets []float64
}

// inputLog is the broker's append-only record of offered return
// vectors. Keeping the whole day lets a crashed processor replay from
// any snapshot cursor — it is the broker-side analogue of the feed
// server's retained batch log.
type inputLog struct {
	mu      sync.Mutex
	entries []inputEntry
	lastS   int
	sealed  bool
}

func (l *inputLog) offer(s int, rets []float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed || (len(l.entries) > 0 && s <= l.lastS) {
		return false
	}
	l.entries = append(l.entries, inputEntry{s: s, rets: append([]float64(nil), rets...)})
	l.lastS = s
	return true
}

func (l *inputLog) get(i int) (inputEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.entries) {
		return inputEntry{}, false
	}
	return l.entries[i], true
}

func (l *inputLog) isSealed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

func (l *inputLog) seal() {
	l.mu.Lock()
	l.sealed = true
	l.mu.Unlock()
}

// Broker owns the partitions, their supervised processors, the
// consumer groups and the serving side. Construct with New, feed it
// via OfferReturns (or core.PipelineConfig.ReturnsTap), then
// FinishInput; Serve accepts subscriber connections until Close.
type Broker struct {
	cfg   Config
	parts []*partition
	input *inputLog
	store stateStore

	ctx    context.Context
	cancel context.CancelFunc
	procWG sync.WaitGroup
	connWG sync.WaitGroup

	mu        sync.Mutex
	watch     chan struct{}
	groups    map[string]*group
	listeners map[interface{ Close() error }]struct{}
	started   bool
	closed    bool
}

// New builds a Broker. The pair universe taq.AllPairs(cfg.N) is
// partitioned by PartitionOf; every pair belongs to exactly one
// partition.
func New(cfg Config) (*Broker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	nPairs := cfg.N * (cfg.N - 1) / 2
	byPart := make([][]int, cfg.Partitions)
	for id := 0; id < nPairs; id++ {
		p := PartitionOf(id, cfg.Partitions)
		byPart[p] = append(byPart[p], id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Broker{
		cfg:       cfg,
		input:     &inputLog{lastS: -1},
		ctx:       ctx,
		cancel:    cancel,
		watch:     make(chan struct{}),
		groups:    make(map[string]*group),
		listeners: make(map[interface{ Close() error }]struct{}),
	}
	if cfg.SnapshotDir != "" {
		b.store = &fileStore{dir: cfg.SnapshotDir}
	} else {
		b.store = &memStore{}
	}
	for i := 0; i < cfg.Partitions; i++ {
		b.parts = append(b.parts, &partition{
			id:    i,
			pairs: byPart[i],
			log:   newPartitionLog(cfg.CollectStamps),
		})
	}
	return b, nil
}

// NumPartitions returns the partition count.
func (b *Broker) NumPartitions() int { return len(b.parts) }

// PartitionPairs returns the canonical pair ids owned by a partition
// (ascending; the caller must not mutate it).
func (b *Broker) PartitionPairs(p int) []int { return b.parts[p].pairs }

// Start launches every partition processor and the lease checker.
func (b *Broker) Start() {
	b.mu.Lock()
	if b.started || b.closed {
		b.mu.Unlock()
		return
	}
	b.started = true
	b.mu.Unlock()
	now := b.cfg.Now()
	for _, p := range b.parts {
		p.mu.Lock()
		p.renewed = now
		gen := p.gen
		p.mu.Unlock()
		b.launchProcessor(p, gen)
	}
	b.procWG.Add(1)
	go func() {
		defer b.procWG.Done()
		b.leaseLoop()
	}()
}

// OfferReturns appends one interval's cross-sectional return vector
// (grid interval s, len cfg.N). Intervals must arrive in ascending s
// order; a duplicate or stale s is dropped (idempotent re-feeds), so
// a supervised pipeline restart can blindly replay its source. The
// signature matches core.PipelineConfig.ReturnsTap.
func (b *Broker) OfferReturns(s int, rets []float64) error {
	if len(rets) != b.cfg.N {
		return fmt.Errorf("broker: vector length %d, want %d", len(rets), b.cfg.N)
	}
	for i, x := range rets {
		if x != x || x-x != 0 {
			return fmt.Errorf("broker: non-finite return for stock %d", i)
		}
	}
	if b.input.offer(s, rets) {
		b.wake()
	}
	return nil
}

// FinishInput seals the input log: processors drain to the end and
// seal their partitions, after which subscribers receive End frames.
func (b *Broker) FinishInput() {
	b.input.seal()
	b.wake()
}

// Close tears the broker down: cancels processors, closes listeners
// and waits for every goroutine.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	ls := make([]interface{ Close() error }, 0, len(b.listeners))
	for l := range b.listeners {
		ls = append(ls, l)
	}
	b.mu.Unlock()
	b.cancel()
	for _, l := range ls {
		l.Close()
	}
	b.wake()
	b.procWG.Wait()
	b.connWG.Wait()
}

// wake broadcasts a state change to every waiter (processors waiting
// for input, handlers waiting for signals or epoch changes).
func (b *Broker) wake() {
	b.mu.Lock()
	close(b.watch)
	b.watch = make(chan struct{})
	b.mu.Unlock()
}

func (b *Broker) watcher() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.watch
}

// waitWake blocks until a wake, a timeout, or ctx death; false means
// ctx died.
func (b *Broker) waitWake(ctx context.Context, d time.Duration) bool {
	w := b.watcher()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-w:
		return true
	case <-t.C:
		return true
	}
}

// KillPartition hard-kills partition p's current processor: the
// in-process analogue of SIGKILL on a partition worker. The processor
// dies at its next lease beat without flushing anything; only lease
// expiry discovers the death and relaunches under a new generation.
func (b *Broker) KillPartition(p int) {
	pt := b.parts[p]
	pt.mu.Lock()
	pt.killed = true
	pt.mu.Unlock()
}

// launchProcessor runs one supervised processor incarnation chain for
// generation gen of partition p.
func (b *Broker) launchProcessor(p *partition, gen int) {
	b.procWG.Add(1)
	go func() {
		defer b.procWG.Done()
		name := fmt.Sprintf("broker-partition-%d", p.id)
		_, err := supervise.Run(b.ctx, name, b.cfg.Policy, func(ctx context.Context, progress func()) error {
			return b.runProcessor(ctx, p, gen, progress)
		})
		if err != nil && b.ctx.Err() == nil {
			b.cfg.Logf("broker: %s gen %d: %v", name, gen, err)
		}
	}()
}

type beat int

const (
	beatOK beat = iota
	beatKilled
	beatSuperseded
)

// leaseBeat renews partition p's lease for generation gen. A killed
// processor learns its fate here; a superseded one (lease already
// reassigned) must fall silent.
func (b *Broker) leaseBeat(p *partition, gen int) beat {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen {
		return beatSuperseded
	}
	if p.killed {
		return beatKilled
	}
	p.renewed = b.cfg.Now()
	return beatOK
}

// leaseLoop periodically expires dead processor leases and sweeps
// group members whose grace ran out.
func (b *Broker) leaseLoop() {
	t := time.NewTicker(b.cfg.LeaseEvery)
	defer t.Stop()
	for {
		select {
		case <-b.ctx.Done():
			return
		case <-t.C:
			b.CheckLeases()
			b.sweepMembers()
		}
	}
}

// CheckLeases scans for expired partition leases and relaunches their
// processors under a new generation, bumping every group epoch so
// subscribers observe the rebalance. Exported so tests (and an
// injected clock) can force a deterministic check; the lease loop
// calls it every LeaseEvery.
func (b *Broker) CheckLeases() {
	now := b.cfg.Now()
	for _, p := range b.parts {
		p.mu.Lock()
		expired := !p.done && (p.killed || now.Sub(p.renewed) > b.cfg.LeaseTTL)
		if expired {
			p.gen++
			p.killed = false
			p.renewed = now
		}
		gen := p.gen
		p.mu.Unlock()
		if expired {
			metrics.Counter("broker.rebalances").Inc()
			b.cfg.Logf("broker: partition %d lease expired; relaunching gen %d", p.id, gen)
			b.launchProcessor(p, gen)
			b.bumpEpochs()
		}
	}
}

// bumpEpochs increments every group's epoch (assignments must be
// re-announced) and wakes the handlers.
func (b *Broker) bumpEpochs() {
	b.mu.Lock()
	for _, g := range b.groups {
		g.epoch++
	}
	close(b.watch)
	b.watch = make(chan struct{})
	b.mu.Unlock()
}

// Done reports whether every partition has fully processed the sealed
// input.
func (b *Broker) Done() bool {
	if !b.input.isSealed() {
		return false
	}
	for _, p := range b.parts {
		if !p.log.isSealed() {
			return false
		}
	}
	return true
}

// WaitDone blocks until Done or ctx death.
func (b *Broker) WaitDone(ctx context.Context) error {
	for {
		if b.Done() {
			return nil
		}
		if !b.waitWake(ctx, 50*time.Millisecond) {
			return ctx.Err()
		}
	}
}

// MemberCount reports the connected (alive) members across all
// consumer groups — cmd/mmbroker's serve mode gates feeding on it so
// orchestrated runs don't race subscribers joining.
func (b *Broker) MemberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, g := range b.groups {
		for _, m := range g.members {
			if m.alive {
				n++
			}
		}
	}
	return n
}

// pairTable returns the canonical pair table of the broker universe.
func (b *Broker) pairTable() []taq.Pair { return taq.AllPairs(b.cfg.N) }
