package broker

import (
	"context"
	"testing"
	"time"
)

// TestRunBenchSmall smoke-tests the bench harness at a toy scale so
// verify's bench gate stays fast.
func TestRunBenchSmall(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := RunBench(ctx, BenchConfig{
		N: 8, M: 4, Partitions: 4, W: 3, D: 0.05,
		Intervals: 20, Subscribers: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Signals == 0 || res.Deliveries == 0 {
		t.Fatalf("empty bench: %+v", res)
	}
	// 16 followers over 4 partitions: each signal fans out 4×.
	if want := int64(res.Signals) * 4; res.Deliveries != want {
		t.Fatalf("deliveries %d, want %d", res.Deliveries, want)
	}
	if res.SignalsPerSec <= 0 || res.DeliverP99us < res.DeliverP50us {
		t.Fatalf("implausible stats: %+v", res)
	}
}
