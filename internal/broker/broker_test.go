package broker

import (
	"context"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"marketminer/internal/feed"
)

// testReturns builds T deterministic cross-sectional return vectors.
func testReturns(n, T int) [][]float64 {
	out := make([][]float64, T)
	for s := range out {
		v := make([]float64, n)
		for i := range v {
			v[i] = 0.001*math.Sin(float64(s+1)*0.37+float64(i)*1.13) +
				0.0004*math.Cos(float64(s*i+3)*0.91)
		}
		out[s] = v
	}
	return out
}

func testConfig() Config {
	return Config{
		N:             8,
		Partitions:    4,
		M:             4,
		W:             3,
		D:             0.01,
		SnapshotEvery: 4,
		LeaseTTL:      80 * time.Millisecond,
		LeaseEvery:    5 * time.Millisecond,
		Heartbeat:     20 * time.Millisecond,
	}
}

// feedAll offers every interval and seals the input.
func feedAll(t *testing.T, b *Broker, rets [][]float64) {
	t.Helper()
	for s, r := range rets {
		if err := b.OfferReturns(s, r); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()
}

// drainLogs waits for completion and copies every partition log.
func drainLogs(t *testing.T, b *Broker) [][]feed.Signal {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := b.WaitDone(ctx); err != nil {
		t.Fatalf("WaitDone: %v", err)
	}
	logs := make([][]feed.Signal, b.NumPartitions())
	for p := range logs {
		sigs, _ := b.parts[p].log.read(1, 1<<30)
		logs[p] = append([]feed.Signal(nil), sigs...)
	}
	return logs
}

// referenceLogs runs an unfaulted broker over rets and returns its
// partition logs — the ground truth every faulted run must reproduce
// bit-identically.
func referenceLogs(t *testing.T, cfg Config, rets [][]float64) [][]feed.Signal {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	feedAll(t, b, rets)
	return drainLogs(t, b)
}

func sameSignals(t *testing.T, label string, got, want []feed.Signal) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d signals, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Offset != w.Offset || g.Pair != w.Pair || g.S != w.S || g.Kind != w.Kind ||
			math.Float64bits(g.C) != math.Float64bits(w.C) ||
			math.Float64bits(g.Cbar) != math.Float64bits(w.Cbar) {
			t.Fatalf("%s: signal %d differs:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

func TestPartitionOfStableAndTotal(t *testing.T) {
	const pairs, parts = 1830, 8
	counts := make([]int, parts)
	for id := 0; id < pairs; id++ {
		p := PartitionOf(id, parts)
		if p != PartitionOf(id, parts) {
			t.Fatalf("pair %d: unstable partition", id)
		}
		if p < 0 || p >= parts {
			t.Fatalf("pair %d: partition %d out of range", id, p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < pairs/parts/2 || c > pairs/parts*2 {
			t.Fatalf("partition %d badly balanced: %d of %d", p, c, pairs)
		}
	}
}

func TestBrokerPartitionsCoverUniverse(t *testing.T) {
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	nPairs := 8 * 7 / 2
	seen := make(map[int]int)
	for p := 0; p < b.NumPartitions(); p++ {
		prev := -1
		for _, id := range b.PartitionPairs(p) {
			if id <= prev {
				t.Fatalf("partition %d pairs not ascending", p)
			}
			prev = id
			seen[id]++
		}
	}
	if len(seen) != nPairs {
		t.Fatalf("pairs covered: %d, want %d", len(seen), nPairs)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("pair %d owned by %d partitions", id, c)
		}
	}
}

// TestBrokerLogsDeterministic runs the same input twice and demands
// bit-identical partition logs.
func TestBrokerLogsDeterministic(t *testing.T) {
	rets := testReturns(8, 30)
	a := referenceLogs(t, testConfig(), rets)
	b := referenceLogs(t, testConfig(), rets)
	for p := range a {
		sameSignals(t, "partition", a[p], b[p])
	}
}

// TestBrokerSignalKinds sanity-checks the generated stream: every
// ready interval appears once per pair, offsets are contiguous, and a
// Revert only ever follows a Diverge.
func TestBrokerSignalKinds(t *testing.T) {
	cfg := testConfig()
	rets := testReturns(8, 40)
	logs := referenceLogs(t, cfg, rets)
	total := 0
	for p, sigs := range logs {
		diverged := make(map[uint32]bool)
		for i, sg := range sigs {
			if sg.Offset != uint64(i+1) {
				t.Fatalf("partition %d: offset %d at index %d", p, sg.Offset, i)
			}
			switch sg.Kind {
			case KindDiverge:
				if diverged[sg.Pair] {
					t.Fatalf("partition %d: double diverge for pair %d", p, sg.Pair)
				}
				diverged[sg.Pair] = true
			case KindRevert:
				if !diverged[sg.Pair] {
					t.Fatalf("partition %d: revert without diverge for pair %d", p, sg.Pair)
				}
				diverged[sg.Pair] = false
			}
		}
		total += len(sigs)
	}
	// 40 intervals, M=4 → 37 ready matrices × 28 pairs.
	if want := 37 * 28; total != want {
		t.Fatalf("total signals %d, want %d", total, want)
	}
}

// TestKillPartitionRebalanceDeterministic hard-kills one partition
// processor mid-stream; the lease checker must relaunch it and the
// regenerated log must be bit-identical to the unfaulted run.
func TestKillPartitionRebalanceDeterministic(t *testing.T) {
	cfg := testConfig()
	rets := testReturns(8, 40)
	want := referenceLogs(t, cfg, rets)

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	for s := 0; s < 20; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.parts[1].log.end() > 0 })
	b.KillPartition(1)
	for s := 20; s < 40; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()
	got := drainLogs(t, b)
	b.parts[1].mu.Lock()
	gen := b.parts[1].gen
	b.parts[1].mu.Unlock()
	if gen == 0 {
		t.Fatal("kill did not advance the partition generation")
	}
	for p := range want {
		sameSignals(t, "partition", got[p], want[p])
	}
}

// TestKillPartitionWithFileStore exercises the snapshot-restore path
// through supervise's on-disk snapshot files.
func TestKillPartitionWithFileStore(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotDir = t.TempDir()
	rets := testReturns(8, 40)
	want := referenceLogs(t, testConfig(), rets)

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	for s := 0; s < 24; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return b.parts[2].log.end() > 0 })
	b.KillPartition(2)
	for s := 24; s < 40; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()
	got := drainLogs(t, b)
	for p := range want {
		sameSignals(t, "partition", got[p], want[p])
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestGroupAssignmentRoundRobin(t *testing.T) {
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	g, _ := b.joinGroup("g", "m-1")
	b.joinGroup("g", "m-0")
	b.joinGroup("g", "m-2")
	want := map[string][]int{
		"m-0": {0, 3}, // sorted member ids deal partitions round-robin
		"m-1": {1},
		"m-2": {2},
	}
	for id, parts := range want {
		v := b.viewFor(g, id)
		if len(v.partitions) != len(parts) {
			t.Fatalf("%s: assigned %v, want %v", id, v.partitions, parts)
		}
		for i := range parts {
			if v.partitions[i] != parts[i] {
				t.Fatalf("%s: assigned %v, want %v", id, v.partitions, parts)
			}
		}
	}
	// A swept member has no assignment.
	if v := b.viewFor(g, "ghost"); len(v.partitions) != 0 {
		t.Fatalf("ghost assigned %v", v.partitions)
	}
}

func TestCommitMonotonicAndClamped(t *testing.T) {
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	g, _ := b.joinGroup("g", "m")
	b.parts[1].log.appendBatch(0, make([]feed.Signal, 12)) // offsets 1..12
	commitAt := func(p int) uint64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return g.commits[p]
	}
	b.commit(g, 1, 10)
	b.commit(g, 1, 7) // stale replay ack must not rewind
	b.commit(g, 99, 5)
	if got := commitAt(1); got != 10 {
		t.Fatalf("commit = %d, want 10", got)
	}
	// An ack past the log end must not push the commit beyond data that
	// exists, or a member resuming from commit+1 would skip the range.
	b.commit(g, 1, 999)
	if got := commitAt(1); got != 12 {
		t.Fatalf("overshooting ack committed %d, want clamp to log end 12", got)
	}
	b.commit(g, 0, 5) // empty partition log: clamps to zero
	if got := commitAt(0); got != 0 {
		t.Fatalf("empty-log ack committed %d, want 0", got)
	}
}

// recordingStore wraps a stateStore, capturing every saved procState
// and optionally failing loads (a lost or rejected snapshot forcing a
// cold-start replay of the partition log).
type recordingStore struct {
	inner stateStore

	mu       sync.Mutex
	saves    []recordedSave
	failLoad bool
}

type recordedSave struct {
	part int
	st   procState
}

func (r *recordingStore) save(part int, fp string, payload any) error {
	if st, ok := payload.(procState); ok {
		r.mu.Lock()
		r.saves = append(r.saves, recordedSave{part, st})
		r.mu.Unlock()
	}
	return r.inner.save(part, fp, payload)
}

func (r *recordingStore) load(part int, fp string, payload any) error {
	r.mu.Lock()
	fail := r.failLoad
	r.mu.Unlock()
	if fail {
		return os.ErrNotExist
	}
	return r.inner.load(part, fp, payload)
}

func (r *recordingStore) recorded() []recordedSave {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recordedSave(nil), r.saves...)
}

// TestNoStateSaveDuringReplay: a cold-started processor replaying a
// non-empty log (its snapshot was lost) must not save state until its
// cursor passes the log. A mid-replay save would pair a lagging Cursor
// with the full log's EndOffset; restoring it would push already-logged
// intervals into rings rebuilt as of EndOffset, duplicating C values in
// the W-window and breaking the bit-identical contract. The invariant
// checked here: every saved state has EndOffset equal to the signals
// its Cursor's input prefix generates.
func TestNoStateSaveDuringReplay(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotEvery = 1 // as aggressive as possible: replay must still save nothing
	rets := testReturns(8, 40)
	want := referenceLogs(t, testConfig(), rets)

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := &recordingStore{inner: b.store}
	b.store = rec
	b.Start()
	for s := 0; s < 24; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	// Partition 2 must fully process the prefix first, so the post-kill
	// replay spans 24 intervals — far more than SnapshotEvery.
	wantEnd := uint64((24 - (cfg.M - 1)) * len(b.parts[2].pairs))
	waitFor(t, func() bool { return b.parts[2].log.end() == wantEnd })

	rec.mu.Lock()
	rec.failLoad = true // the relaunch cold-starts and replays the log
	rec.mu.Unlock()
	b.KillPartition(2)
	waitFor(t, func() bool {
		b.parts[2].mu.Lock()
		defer b.parts[2].mu.Unlock()
		return b.parts[2].gen > 0
	})
	for s := 24; s < 40; s++ {
		if err := b.OfferReturns(s, rets[s]); err != nil {
			t.Fatal(err)
		}
	}
	b.FinishInput()
	got := drainLogs(t, b)
	for p := range want {
		sameSignals(t, "partition", got[p], want[p])
	}
	saves := rec.recorded()
	if len(saves) == 0 {
		t.Fatal("no state saves recorded")
	}
	for _, sv := range saves {
		ready := sv.st.Cursor - (cfg.M - 1)
		if ready < 0 {
			ready = 0
		}
		if want := uint64(ready * len(b.parts[sv.part].pairs)); sv.st.EndOffset != want {
			t.Fatalf("partition %d saved Cursor %d with EndOffset %d, want %d (mid-replay save)",
				sv.part, sv.st.Cursor, sv.st.EndOffset, want)
		}
	}
}

func TestMemberGraceSweep(t *testing.T) {
	cfg := testConfig()
	cfg.MemberGrace = 30 * time.Millisecond
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	g, session := b.joinGroup("g", "m-0")
	b.joinGroup("g", "m-1")
	e0 := b.epochOf(g)
	b.leaveGroup(g, "m-0", session)
	waitFor(t, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(g.members) == 1
	})
	if e := b.epochOf(g); e <= e0 {
		t.Fatalf("epoch %d did not advance past %d on sweep", e, e0)
	}
	// The survivor now owns everything.
	v := b.viewFor(g, "m-1")
	if len(v.partitions) != b.NumPartitions() {
		t.Fatalf("survivor assigned %v", v.partitions)
	}
}

func TestOfferReturnsValidation(t *testing.T) {
	b, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.OfferReturns(0, make([]float64, 3)); err == nil {
		t.Fatal("short vector accepted")
	}
	bad := make([]float64, 8)
	bad[5] = math.NaN()
	if err := b.OfferReturns(0, bad); err == nil {
		t.Fatal("NaN accepted")
	}
	bad[5] = math.Inf(1)
	if err := b.OfferReturns(0, bad); err == nil {
		t.Fatal("Inf accepted")
	}
	ok := make([]float64, 8)
	if err := b.OfferReturns(3, ok); err != nil {
		t.Fatal(err)
	}
	// Stale interval is a silent idempotent drop.
	if err := b.OfferReturns(3, ok); err != nil {
		t.Fatal(err)
	}
	if got := len(b.input.entries); got != 1 {
		t.Fatalf("input log has %d entries, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 1, M: 4}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := New(Config{N: 8, M: 1}); err == nil {
		t.Fatal("M=1 accepted")
	}
	b, err := New(Config{N: 3, M: 4, Partitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.NumPartitions() != 3 { // clamped to the 3-pair universe
		t.Fatalf("partitions = %d, want 3", b.NumPartitions())
	}
}
