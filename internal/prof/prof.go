// Package prof wires the standard runtime/pprof file profiles into the
// command-line tools, so performance work can capture CPU and heap
// evidence from real sweeps without code edits.
//
// Ownership contract: the caller that passes profile paths owns their
// lifecycle — Start begins the CPU profile immediately and the
// returned stop function writes the heap profile and closes both
// files exactly once; empty paths make Start/stop no-ops. Profiling
// is observation only: it never alters scheduling or results, so a
// profiled sweep's output is byte-identical to an unprofiled one.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and, when memPath is
// non-empty, writes a GC-settled heap profile. Call stop exactly once,
// after the measured work; both paths empty makes Start and stop
// no-ops, so callers can pass flag values through unconditionally.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
