package corr

import (
	"math/rand"
	"sort"
	"testing"
)

// sortMedian is the reference the selection-based median must match
// exactly (same order statistics, same even-length averaging).
func sortMedian(xs []float64) float64 {
	buf := append([]float64(nil), xs...)
	sort.Float64s(buf)
	n := len(buf)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

func TestSelectKthMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		buf := append([]float64(nil), xs...)
		selectKth(buf, k)
		if buf[k] != sorted[k] {
			t.Fatalf("trial %d: selectKth(%d) = %v, want %v", trial, k, buf[k], sorted[k])
		}
		for i := 0; i < k; i++ {
			if buf[i] > buf[k] {
				t.Fatalf("trial %d: left partition violated at %d", trial, i)
			}
		}
		for i := k + 1; i < n; i++ {
			if buf[i] < buf[k] {
				t.Fatalf("trial %d: right partition violated at %d", trial, i)
			}
		}
	}
}

func TestMedianSelectMatchesSortMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Adversarial shapes for quickselect: sorted, reverse-sorted,
	// constant, two-valued, and odd/even lengths down to 1.
	cases := [][]float64{
		{3.5},
		{2, 1},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		{15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0},
	}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(20)) // heavy duplication
		}
		cases = append(cases, xs)
	}
	for ci, xs := range cases {
		want := sortMedian(xs)
		buf := append([]float64(nil), xs...)
		if got := medianSelect(buf); got != want {
			t.Fatalf("case %d (n=%d): medianSelect = %v, want %v", ci, len(xs), got, want)
		}
	}
}

func TestMedianIntoMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	buf := make([]float64, 256)
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(250)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), xs...)
		if got, want := medianInto(buf[:n], xs), sortMedian(xs); got != want {
			t.Fatalf("medianInto = %v, want %v", got, want)
		}
		// medianInto must not disturb the input.
		for i := range xs {
			if xs[i] != orig[i] {
				t.Fatal("input mutated")
			}
		}
	}
}
