package corr

import "sort"

// Spearman rank correlation is an extension measure beyond the paper's
// three treatments (its future work calls for "determining the
// characteristics of each correlation measure"; rank correlation is
// the natural next candidate because it is robust to monotone
// distortions and heavy tails without iteration). It is exposed as an
// Estimator so the engine and the ablation benches can sweep it
// alongside Pearson/Maronna/Combined, but it is not part of Types()
// and does not participate in the paper's Tables III–V reproduction.

// SpearmanType is the extension measure's Type value. It deliberately
// sits outside Types() so the paper's treatment set stays faithful.
const SpearmanType Type = 100

// SpearmanEstimator computes Spearman's ρ: the Pearson correlation of
// the ranks, with average ranks for ties. Safe for concurrent use.
type SpearmanEstimator struct{}

// Type implements Estimator.
func (SpearmanEstimator) Type() Type { return SpearmanType }

// Corr implements Estimator.
func (SpearmanEstimator) Corr(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	return PearsonCorr(rx, ry)
}

// ranks returns the 1-based average ranks of xs.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
