package corr

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"marketminer/internal/taq"
)

// EngineConfig configures the sliding-window correlation engine.
type EngineConfig struct {
	// Type selects the measure (the Ctype treatment).
	Type Type
	// M is the window length in intervals: "two vectors Xi(s) and
	// Xj(s), containing the last M log-returns".
	M int
	// Workers is the degree of parallelism; ≤ 0 means GOMAXPROCS.
	// This is the Go analogue of the MPI world size in the original
	// MarketMiner correlation engine.
	Workers int
	// Maronna tunes the robust estimator (used by Maronna and
	// Combined); the zero value means DefaultMaronnaConfig.
	Maronna MaronnaConfig
	// Pairs optionally restricts computation to a subset of pairs
	// (canonical ids). Nil means all n(n-1)/2 pairs.
	Pairs []int
	// RepairPSD, when set, shrinks each online matrix toward the
	// identity until it passes a Cholesky test. Per-pair Maronna
	// estimates do not form a PSD matrix (the defect the paper calls
	// out in its Matlab Approach 2); repair costs O(n³) per matrix
	// and only affects OnlineEngine output.
	RepairPSD bool
}

func (c *EngineConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *EngineConfig) maronna() MaronnaConfig {
	if c.Maronna == (MaronnaConfig{}) {
		return DefaultMaronnaConfig()
	}
	return c.Maronna
}

// Series holds per-pair correlation time series over one trading day:
// Corr[k][t] is the coefficient of pair Pairs[k] at grid interval
// FirstS + t. It is the dataset the paper's Matlab Approach 1 tried to
// reconstruct from 680 dumped matrices per day and ran out of memory.
type Series struct {
	Type   Type
	M      int
	FirstS int   // grid interval of the first coefficient (= M)
	Pairs  []int // canonical pair ids, ascending
	N      int   // universe order
	Corr   [][]float64
}

// Len returns the number of intervals covered.
func (s *Series) Len() int {
	if len(s.Corr) == 0 {
		return 0
	}
	return len(s.Corr[0])
}

// PairSeries returns the coefficient series for a canonical pair id,
// or nil if the pair was not computed.
func (s *Series) PairSeries(pairID int) []float64 {
	for k, id := range s.Pairs {
		if id == pairID {
			return s.Corr[k]
		}
	}
	return nil
}

// ComputeSeries runs the engine over one day of log-returns.
// returns[i][u] is stock i's log-return at return index u (grid
// interval u+1); all rows must have equal length T ≥ M. The resulting
// Series covers grid intervals M .. T (inclusive), i.e. T−M+1 values
// per pair.
//
// Pairs are sharded across workers exactly as MarketMiner sharded them
// across MPI ranks; Pearson uses an O(1)-per-step rolling update while
// the robust measures re-estimate each window (they are not
// incrementally updatable, which is why the paper calls them
// "computationally expensive and thus not commonly used").
func ComputeSeries(cfg EngineConfig, returns [][]float64) (*Series, error) {
	n := len(returns)
	if n < 2 {
		return nil, errors.New("corr: need at least 2 stocks")
	}
	T := len(returns[0])
	for i, row := range returns {
		if len(row) != T {
			return nil, fmt.Errorf("corr: stock %d has %d returns, want %d", i, len(row), T)
		}
	}
	if cfg.M < 2 {
		return nil, fmt.Errorf("corr: window M=%d too small", cfg.M)
	}
	if T < cfg.M {
		return nil, fmt.Errorf("corr: %d returns < window M=%d", T, cfg.M)
	}
	for i, row := range returns {
		for u, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("corr: stock %d has non-finite return at %d", i, u)
			}
		}
	}

	pairs := cfg.Pairs
	if pairs == nil {
		pairs = make([]int, n*(n-1)/2)
		for i := range pairs {
			pairs[i] = i
		}
	}
	steps := T - cfg.M + 1
	out := &Series{Type: cfg.Type, M: cfg.M, FirstS: cfg.M, Pairs: pairs, N: n, Corr: make([][]float64, len(pairs))}
	for k := range out.Corr {
		out.Corr[k] = make([]float64, steps)
	}

	allPairs := taq.AllPairs(n)
	workers := cfg.workers()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			computePairRange(cfg, returns, allPairs, pairs, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// computePairRange fills out.Corr[lo:hi].
func computePairRange(cfg EngineConfig, returns [][]float64, allPairs []taq.Pair, pairs []int, out *Series, lo, hi int) {
	m := cfg.M
	T := len(returns[0])
	switch cfg.Type {
	case Pearson:
		for k := lo; k < hi; k++ {
			p := allPairs[pairs[k]]
			rollingPearson(returns[p.I], returns[p.J], m, out.Corr[k])
		}
	case Maronna:
		est := NewMaronnaEstimator(cfg.maronna())
		var sc *Scratch
		for k := lo; k < hi; k++ {
			p := allPairs[pairs[k]]
			x, y := returns[p.I], returns[p.J]
			for t := 0; t+m <= T; t++ {
				out.Corr[k][t], sc = est.CorrScratch(x[t:t+m], y[t:t+m], sc)
			}
		}
	case Combined:
		est := NewCombinedEstimator(cfg.maronna())
		var sc *Scratch
		for k := lo; k < hi; k++ {
			p := allPairs[pairs[k]]
			x, y := returns[p.I], returns[p.J]
			for t := 0; t+m <= T; t++ {
				out.Corr[k][t], sc = est.CorrScratch(x[t:t+m], y[t:t+m], sc)
			}
		}
	}
}

// rollingPearson fills dst[t] with the Pearson correlation of
// x[t:t+m], y[t:t+m] using O(1) sliding-window updates.
func rollingPearson(x, y []float64, m int, dst []float64) {
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < m; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	fm := float64(m)
	emit := func(t int) {
		vx := sxx - sx*sx/fm
		vy := syy - sy*sy/fm
		if vx <= 0 || vy <= 0 {
			dst[t] = 0
			return
		}
		dst[t] = clampCorr((sxy - sx*sy/fm) / math.Sqrt(vx*vy))
	}
	emit(0)
	for t := 1; t+m <= len(x); t++ {
		ox, oy := x[t-1], y[t-1]
		nx, ny := x[t+m-1], y[t+m-1]
		sx += nx - ox
		sy += ny - oy
		sxx += nx*nx - ox*ox
		syy += ny*ny - oy*oy
		sxy += nx*ny - ox*oy
		emit(t)
	}
}

// OnlineEngine is the streaming form used by the Figure-1 pipeline: it
// ingests one cross-sectional return vector per grid interval and, once
// M vectors have arrived, produces the full correlation matrix of the
// trailing window after every push — "large correlation matrices in an
// online fashion".
type OnlineEngine struct {
	cfg     EngineConfig
	n       int
	windows [][]float64 // ring buffers, one per stock
	head    int
	count   int
	scratch [][]float64 // contiguous window copies, one per stock
	pool    []*Scratch  // per-worker robust scratch
}

// NewOnlineEngine builds a streaming engine over an n-stock universe.
func NewOnlineEngine(cfg EngineConfig, n int) (*OnlineEngine, error) {
	if n < 2 {
		return nil, errors.New("corr: need at least 2 stocks")
	}
	if cfg.M < 2 {
		return nil, fmt.Errorf("corr: window M=%d too small", cfg.M)
	}
	e := &OnlineEngine{cfg: cfg, n: n}
	e.windows = make([][]float64, n)
	e.scratch = make([][]float64, n)
	for i := range e.windows {
		e.windows[i] = make([]float64, cfg.M)
		e.scratch[i] = make([]float64, cfg.M)
	}
	e.pool = make([]*Scratch, cfg.workers())
	for i := range e.pool {
		e.pool[i] = &Scratch{}
	}
	return e, nil
}

// Ready reports whether M vectors have been pushed.
func (e *OnlineEngine) Ready() bool { return e.count >= e.cfg.M }

// Push ingests the return vector for one interval (len n). It returns
// the correlation matrix of the trailing M-interval window, or nil
// while the window is still warming up.
func (e *OnlineEngine) Push(rets []float64) (*Matrix, error) {
	if len(rets) != e.n {
		return nil, fmt.Errorf("corr: vector length %d, want %d", len(rets), e.n)
	}
	for i, x := range rets {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("corr: non-finite return for stock %d", i)
		}
		e.windows[i][e.head] = x
	}
	e.head = (e.head + 1) % e.cfg.M
	if e.count < e.cfg.M {
		e.count++
	}
	if !e.Ready() {
		return nil, nil
	}
	// Unroll the rings into contiguous scratch, oldest first.
	for i := range e.windows {
		w := e.windows[i]
		s := e.scratch[i]
		k := copy(s, w[e.head:])
		copy(s[k:], w[:e.head])
	}
	m := e.matrix()
	if e.cfg.RepairPSD {
		m, _, _ = EnsurePSD(m, 1e-10)
	}
	return m, nil
}

// matrix computes all pairwise coefficients of the current scratch
// windows in parallel.
func (e *OnlineEngine) matrix() *Matrix {
	m := NewMatrix(e.n)
	pairs := taq.AllPairs(e.n)
	workers := len(e.pool)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sc := e.pool[w]
			switch e.cfg.Type {
			case Pearson:
				for k := lo; k < hi; k++ {
					p := pairs[k]
					m.SetPair(k, PearsonCorr(e.scratch[p.I], e.scratch[p.J]))
				}
			case Maronna:
				est := NewMaronnaEstimator(e.cfg.maronna())
				for k := lo; k < hi; k++ {
					p := pairs[k]
					var c float64
					c, sc = est.CorrScratch(e.scratch[p.I], e.scratch[p.J], sc)
					m.SetPair(k, c)
				}
			case Combined:
				est := NewCombinedEstimator(e.cfg.maronna())
				for k := lo; k < hi; k++ {
					p := pairs[k]
					var c float64
					c, sc = est.CorrScratch(e.scratch[p.I], e.scratch[p.J], sc)
					m.SetPair(k, c)
				}
			}
			e.pool[w] = sc
		}(w, lo, hi)
	}
	wg.Wait()
	return m
}
