package corr

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"marketminer/internal/sched"
	"marketminer/internal/taq"
)

// EngineConfig configures the sliding-window correlation engine.
type EngineConfig struct {
	// Type selects the measure (the Ctype treatment). Ignored by
	// ComputeSeriesMulti, which takes an explicit treatment list.
	Type Type
	// M is the window length in intervals: "two vectors Xi(s) and
	// Xj(s), containing the last M log-returns".
	M int
	// Workers is the degree of parallelism; ≤ 0 means GOMAXPROCS.
	// This is the Go analogue of the MPI world size in the original
	// MarketMiner correlation engine.
	Workers int
	// Maronna tunes the robust estimator (used by Maronna and
	// Combined); the zero value means DefaultMaronnaConfig.
	Maronna MaronnaConfig
	// Pairs optionally restricts computation to a subset of pairs
	// (canonical ids). Nil means all n(n-1)/2 pairs.
	Pairs []int
	// TileSize bounds the number of pairs per cache tile in the matrix
	// engine; ≤ 0 means DefaultTileSize. Output is bit-identical for
	// every tile size — the knob only trades scheduling granularity
	// against per-tile cache footprint.
	TileSize int
	// RepairPSD, when set, shrinks each online matrix toward the
	// identity until it passes a Cholesky test. Per-pair Maronna
	// estimates do not form a PSD matrix (the defect the paper calls
	// out in its Matlab Approach 2); repair costs O(n³) per matrix
	// and only affects OnlineEngine output.
	RepairPSD bool
	// Float32 opts the batch engines' robust fixed point into the
	// single-precision iteration lane: converge in float32 at a
	// float32-achievable tolerance, then polish the fixed point with
	// full float64 iterations (falling back to the exact float64 path
	// whenever single precision degenerates). Coefficients differ from
	// the exact path by at most the polished residual — the accuracy
	// gate TestFloat32LaneAccuracy and the f32_max_abs_rho_delta bench
	// field bound it. Off (the default) keeps the engine bit-identical
	// to ComputeSeriesMultiReference. The OnlineEngine rejects it: its
	// snapshots are contractually bit-exact.
	Float32 bool
	// DisableSIMD forces this request's batched Maronna kernels onto
	// the pure-Go scalar path even when the process-wide dispatch
	// (CPUID + MM_NOSIMD + SetSIMDMode) would use the vector backend.
	// The f64 tiers are bit-identical, so the flag changes speed only;
	// the bench harness uses it to A/B the tiers in one process. It is
	// deliberately not part of any sweep fingerprint.
	DisableSIMD bool
}

func (c *EngineConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *EngineConfig) maronna() MaronnaConfig {
	if c.Maronna == (MaronnaConfig{}) {
		return DefaultMaronnaConfig()
	}
	return c.Maronna
}

func (c *EngineConfig) tileSize() int {
	if c.TileSize > 0 {
		return c.TileSize
	}
	return DefaultTileSize
}

// RobustStats aggregates how the warm-started Maronna chain behaved
// over one engine run: how many windows were seeded from the previous
// window's converged fit, how many needed the O(m) median/MAD cold
// start, and the distribution of fixed-point iteration counts. It is
// the evidence that warm starting pays: warm windows concentrate at
// 1–3 iterations while cold windows need 10+.
type RobustStats struct {
	// Windows is the number of robust windows fitted.
	Windows int
	// WarmHits counts windows solved by the warm-started run.
	WarmHits int
	// ColdStarts counts windows initialised from median/MAD (the first
	// window of each pair, windows after a degenerate fit, and
	// fallbacks).
	ColdStarts int
	// Fallbacks counts warm-started runs that failed to converge
	// cleanly and were rerun cold (a subset of ColdStarts).
	Fallbacks int
	// IterHist[i] counts windows whose accepted run executed i
	// fixed-point iterations (length MaxIter+1).
	IterHist []int

	// Batched-kernel telemetry. IterHist stays per-pair (it is part of
	// the reference-equality contract); these fields add the batch view
	// so the "where do the cycles go" profile remains measurable after
	// batching: one sweep applies one fixed-point iteration to every
	// lane of a batch's active set.
	//
	// BatchSweeps counts sweeps executed, BatchLaneSteps sums the
	// active-set size over them (total per-lane iteration steps), and
	// ActiveHist[a] counts sweeps that ran with a active lanes.
	BatchSweeps    int
	BatchLaneSteps int
	ActiveHist     []int

	// SIMD wall-clock telemetry, populated only while SetSIMDProfiling
	// is on (the bench harness measuring the transpose overhead).
	// SIMDPackNs is time spent packing windows into the lane-major
	// tiles; SIMDRunNs is the remainder of the vector batch runs.
	// Excluded from bit-identity comparisons: wall-clock is not part of
	// the reference-equality contract.
	SIMDPackNs int64
	SIMDRunNs  int64
}

// recordSweep records one batched sweep over active lanes.
func (s *RobustStats) recordSweep(active int) {
	s.BatchSweeps++
	s.BatchLaneSteps += active
	if active >= len(s.ActiveHist) {
		s.ActiveHist = append(s.ActiveHist, make([]int, active+1-len(s.ActiveHist))...)
	}
	s.ActiveHist[active]++
}

// MeanActiveLanes returns the average active-set size per batched
// sweep — the occupancy evidence that swap-to-end compaction keeps
// late-converging pairs from serializing the batch.
func (s *RobustStats) MeanActiveLanes() float64 {
	if s.BatchSweeps == 0 {
		return 0
	}
	return float64(s.BatchLaneSteps) / float64(s.BatchSweeps)
}

func (s *RobustStats) record(f Fit, attemptedWarm bool) {
	s.Windows++
	if f.Seeded {
		s.WarmHits++
	} else {
		s.ColdStarts++
		if attemptedWarm {
			s.Fallbacks++
		}
	}
	if f.Iters < len(s.IterHist) {
		s.IterHist[f.Iters]++
	}
}

// Merge folds another run's statistics into s, extending the
// iteration histogram as needed. The sweep orchestrator uses it to
// aggregate warm-start telemetry across many per-block engine passes.
func (s *RobustStats) Merge(o *RobustStats) {
	s.Windows += o.Windows
	s.WarmHits += o.WarmHits
	s.ColdStarts += o.ColdStarts
	s.Fallbacks += o.Fallbacks
	if len(s.IterHist) < len(o.IterHist) {
		s.IterHist = append(s.IterHist, make([]int, len(o.IterHist)-len(s.IterHist))...)
	}
	for i, c := range o.IterHist {
		s.IterHist[i] += c
	}
	s.BatchSweeps += o.BatchSweeps
	s.BatchLaneSteps += o.BatchLaneSteps
	if len(s.ActiveHist) < len(o.ActiveHist) {
		s.ActiveHist = append(s.ActiveHist, make([]int, len(o.ActiveHist)-len(s.ActiveHist))...)
	}
	for i, c := range o.ActiveHist {
		s.ActiveHist[i] += c
	}
	s.SIMDPackNs += o.SIMDPackNs
	s.SIMDRunNs += o.SIMDRunNs
}

// MeanIters returns the average iteration count per window.
func (s *RobustStats) MeanIters() float64 {
	if s.Windows == 0 {
		return 0
	}
	var total int
	for i, c := range s.IterHist {
		total += i * c
	}
	return float64(total) / float64(s.Windows)
}

// Series holds per-pair correlation time series over one trading day:
// Corr[k][t] is the coefficient of pair Pairs[k] at grid interval
// FirstS + t. It is the dataset the paper's Matlab Approach 1 tried to
// reconstruct from 680 dumped matrices per day and ran out of memory.
type Series struct {
	Type   Type
	M      int
	FirstS int   // grid interval of the first coefficient (= M)
	Pairs  []int // canonical pair ids, ascending
	N      int   // universe order
	Corr   [][]float64
	// Robust carries the warm-start iteration statistics of the run
	// that produced this series (nil for Pearson). When Maronna and
	// Combined are computed in one fused pass both series share the
	// same stats object.
	Robust *RobustStats
}

// Len returns the number of intervals covered.
func (s *Series) Len() int {
	if len(s.Corr) == 0 {
		return 0
	}
	return len(s.Corr[0])
}

// PairSeries returns the coefficient series for a canonical pair id,
// or nil if the pair was not computed.
func (s *Series) PairSeries(pairID int) []float64 {
	for k, id := range s.Pairs {
		if id == pairID {
			return s.Corr[k]
		}
	}
	return nil
}

// ComputeSeries runs the engine over one day of log-returns for a
// single treatment (cfg.Type). It is a thin wrapper over
// ComputeSeriesMulti; see there for the computation contract.
func ComputeSeries(cfg EngineConfig, returns [][]float64) (*Series, error) {
	ss, err := ComputeSeriesMulti(cfg, []Type{cfg.Type}, returns)
	if err != nil {
		return nil, err
	}
	return ss[0], nil
}

// ComputeSeriesMulti runs the engine over one day of log-returns and
// produces one Series per requested treatment in a single pass.
// returns[i][u] is stock i's log-return at return index u (grid
// interval u+1); all rows must have equal length T ≥ M. Each resulting
// Series covers grid intervals M .. T (inclusive), i.e. T−M+1 values
// per pair.
//
// Since the matrix-level engine landed this is a thin wrapper over
// ComputeMatrixSeries — per-stock sliding statistics are hoisted out of
// the per-pair loop, the pair triangle is tiled into cache-sized
// blocks, and tiles are scheduled by work stealing. Results are
// bit-deterministic and identical to ComputeSeriesMultiReference for
// every worker count and tile size.
func ComputeSeriesMulti(cfg EngineConfig, types []Type, returns [][]float64) ([]*Series, error) {
	return ComputeMatrixSeries(cfg, types, returns)
}

// prepareSeriesRequest validates an engine request and allocates the
// output series, shared by the matrix engine and the per-pair
// reference.
func prepareSeriesRequest(cfg EngineConfig, types []Type, returns [][]float64) (pairs []int, outs []*Series, err error) {
	if len(types) == 0 {
		return nil, nil, errors.New("corr: no correlation types requested")
	}
	n := len(returns)
	if n < 2 {
		return nil, nil, errors.New("corr: need at least 2 stocks")
	}
	T := len(returns[0])
	for i, row := range returns {
		if len(row) != T {
			return nil, nil, fmt.Errorf("corr: stock %d has %d returns, want %d", i, len(row), T)
		}
	}
	if cfg.M < 2 {
		return nil, nil, fmt.Errorf("corr: window M=%d too small", cfg.M)
	}
	if T < cfg.M {
		return nil, nil, fmt.Errorf("corr: %d returns < window M=%d", T, cfg.M)
	}
	for i, row := range returns {
		for u, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, nil, fmt.Errorf("corr: stock %d has non-finite return at %d", i, u)
			}
		}
	}
	seen := map[Type]bool{}
	for _, ty := range types {
		switch ty {
		case Pearson, Maronna, Combined:
		default:
			return nil, nil, fmt.Errorf("corr: unsupported series type %v", ty)
		}
		if seen[ty] {
			return nil, nil, fmt.Errorf("corr: duplicate series type %v", ty)
		}
		seen[ty] = true
	}

	pairs = cfg.Pairs
	if pairs == nil {
		pairs = make([]int, n*(n-1)/2)
		for i := range pairs {
			pairs[i] = i
		}
	}
	steps := T - cfg.M + 1
	outs = make([]*Series, len(types))
	for oi, ty := range types {
		s := &Series{Type: ty, M: cfg.M, FirstS: cfg.M, Pairs: pairs, N: n, Corr: make([][]float64, len(pairs))}
		for k := range s.Corr {
			s.Corr[k] = make([]float64, steps)
		}
		outs[oi] = s
	}
	return pairs, outs, nil
}

// ComputeSeriesMultiReference is the pre-matrix per-pair engine: a
// static range split of the pair list across workers, each pair
// computing its own sliding statistics from scratch. It is retained as
// the verification baseline the matrix engine must match bit-for-bit
// (TestMatrixEngineMatchesReference) and as the comparison point for
// the sharing+tiling speedup reported in BENCH_corr.json. New code
// should call ComputeSeriesMulti.
func ComputeSeriesMultiReference(cfg EngineConfig, types []Type, returns [][]float64) ([]*Series, error) {
	pairs, outs, err := prepareSeriesRequest(cfg, types, returns)
	if err != nil {
		return nil, err
	}
	n := len(returns)
	allPairs := taq.AllPairs(n)
	workers := cfg.workers()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	robust := false
	for _, ty := range types {
		if ty == Maronna || ty == Combined {
			robust = true
		}
	}
	var workerStats []RobustStats
	if robust {
		workerStats = make([]RobustStats, workers)
		for w := range workerStats {
			workerStats[w].IterHist = make([]int, cfg.maronna().MaxIter+1)
		}
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var st *RobustStats
			if robust {
				st = &workerStats[w]
			}
			computePairRange(cfg, types, returns, allPairs, pairs, outs, st, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	if robust {
		total := &RobustStats{IterHist: make([]int, cfg.maronna().MaxIter+1)}
		for w := range workerStats {
			total.Merge(&workerStats[w])
		}
		for oi, ty := range types {
			if ty == Maronna || ty == Combined {
				outs[oi].Robust = total
			}
		}
	}
	return outs, nil
}

// computePairRange fills outs[*].Corr[lo:hi] for every requested
// treatment. The robust treatments share one warm-started fit per
// window; st (non-nil iff a robust treatment is requested) collects the
// iteration statistics of this worker's shard.
func computePairRange(cfg EngineConfig, types []Type, returns [][]float64, allPairs []taq.Pair, pairs []int, outs []*Series, st *RobustStats, lo, hi int) {
	m := cfg.M
	T := len(returns[0])
	var pearsonDst, maronnaDst, combinedDst [][]float64
	for oi, ty := range types {
		switch ty {
		case Pearson:
			pearsonDst = outs[oi].Corr
		case Maronna:
			maronnaDst = outs[oi].Corr
		case Combined:
			combinedDst = outs[oi].Corr
		}
	}

	var est *MaronnaEstimator
	var sc *Scratch
	if maronnaDst != nil || combinedDst != nil {
		est = NewMaronnaEstimator(cfg.maronna())
	}
	for k := lo; k < hi; k++ {
		p := allPairs[pairs[k]]
		x, y := returns[p.I], returns[p.J]
		if pearsonDst != nil {
			rollingPearson(x, y, m, pearsonDst[k])
		}
		if est == nil {
			continue
		}
		// One robust fit per window, warm-started from the previous
		// window's converged state; each pair starts its own chain.
		var warm Fit
		for t := 0; t+m <= T; t++ {
			attempted := warm.Valid
			var f Fit
			f, sc = est.FitScratch(x[t:t+m], y[t:t+m], sc, &warm)
			st.record(f, attempted)
			if maronnaDst != nil {
				maronnaDst[k][t] = f.Rho
			}
			if combinedDst != nil {
				combinedDst[k][t] = CombinedFromFit(x[t:t+m], y[t:t+m], f.Rho, sc.Weights())
			}
			warm = f
		}
	}
}

// pearsonReanchorEvery bounds floating-point drift in the O(1) rolling
// Pearson updates: the five running sums are recomputed from the raw
// window every this-many steps, so rounding error cannot accumulate
// over more than one block (a full 780-interval day would otherwise
// compound 779 incremental updates).
const pearsonReanchorEvery = 128

// rollingPearson fills dst[t] with the Pearson correlation of
// x[t:t+m], y[t:t+m] using O(1) sliding-window updates, re-anchoring
// the running sums from scratch every pearsonReanchorEvery steps.
func rollingPearson(x, y []float64, m int, dst []float64) {
	steps := len(x) - m + 1
	fm := float64(m)
	var sx, sy, sxx, syy, sxy float64
	// The normaliser is factored as 1/√vx · 1/√vy (not 1/√(vx·vy)) so
	// the matrix engine can hoist each factor per stock and stay
	// bit-identical to this reference; pearsonInvStd is that exact
	// shared expression.
	emit := func(t int) {
		rx := pearsonInvStd(sxx, sx, fm)
		ry := pearsonInvStd(syy, sy, fm)
		if rx == 0 || ry == 0 {
			dst[t] = 0
			return
		}
		dst[t] = clampCorr((sxy - sx*sy/fm) * rx * ry)
	}
	for base := 0; base < steps; base += pearsonReanchorEvery {
		sx, sy, sxx, syy, sxy = 0, 0, 0, 0, 0
		for i := base; i < base+m; i++ {
			sx += x[i]
			sy += y[i]
			sxx += x[i] * x[i]
			syy += y[i] * y[i]
			sxy += x[i] * y[i]
		}
		emit(base)
		end := base + pearsonReanchorEvery
		if end > steps {
			end = steps
		}
		for t := base + 1; t < end; t++ {
			ox, oy := x[t-1], y[t-1]
			nx, ny := x[t+m-1], y[t+m-1]
			sx += nx - ox
			sy += ny - oy
			sxx += nx*nx - ox*ox
			syy += ny*ny - oy*oy
			sxy += nx*ny - ox*oy
			emit(t)
		}
	}
}

// OnlineEngine is the streaming form used by the Figure-1 pipeline: it
// ingests one cross-sectional return vector per grid interval and, once
// M vectors have arrived, produces the full correlation matrix of the
// trailing window after every push — "large correlation matrices in an
// online fashion".
//
// When EngineConfig.Pairs is set the engine computes only that subset
// of the pair triangle (unselected matrix slots stay 0). This is the
// partition seam the signal broker builds on: each partition processor
// owns one pair subset with its own warm state, and Snapshot/Restore
// of a subset engine is its complete per-partition state store.
// Selected-pair coefficients are bit-identical to a full engine's.
type OnlineEngine struct {
	cfg     EngineConfig
	n       int
	windows [][]float64 // ring buffers, one per stock
	head    int
	count   int
	scratch [][]float64 // contiguous window copies, one per stock
	pool    []*pairBatch // per-worker batched robust kernels
	pairs   []taq.Pair  // cached pair table
	sel     []int       // selected canonical pair ids (identity when cfg.Pairs is nil)
	fits    []Fit       // per-pair warm-start state (robust types only)

	// Matrix-level shared state, refreshed per push: tiles over the
	// pair triangle, per-stock window sums (Pearson) and per-stock
	// robust cold-start initialisers (robust types, computed only on
	// pushes where some pair actually needs a cold start).
	tiles    [][]int
	est      *MaronnaEstimator
	sums     []float64
	sumSqs   []float64
	invs     []float64
	inits    []ColdInit
	initBuf  []float64
	haveInit bool
}

// NewOnlineEngine builds a streaming engine over an n-stock universe.
func NewOnlineEngine(cfg EngineConfig, n int) (*OnlineEngine, error) {
	if n < 2 {
		return nil, errors.New("corr: need at least 2 stocks")
	}
	if cfg.M < 2 {
		return nil, fmt.Errorf("corr: window M=%d too small", cfg.M)
	}
	if cfg.Float32 {
		// Online snapshots (the broker's state store) are contractually
		// bit-exact; the approximate lane is an offline accelerator.
		return nil, errors.New("corr: Float32 lane is not supported by the online engine")
	}
	e := &OnlineEngine{cfg: cfg, n: n}
	e.windows = make([][]float64, n)
	e.scratch = make([][]float64, n)
	for i := range e.windows {
		e.windows[i] = make([]float64, cfg.M)
		e.scratch[i] = make([]float64, cfg.M)
	}
	e.pool = make([]*pairBatch, cfg.workers())
	e.pairs = taq.AllPairs(n)
	var pairIdx []int
	if cfg.Pairs != nil {
		// Subset mode: compute only the selected pairs. PSD repair is a
		// whole-matrix operation and cannot be meaningful on a partial
		// triangle, so the combination is rejected outright.
		if cfg.RepairPSD {
			return nil, errors.New("corr: Pairs subset and RepairPSD are incompatible")
		}
		if len(cfg.Pairs) == 0 {
			return nil, errors.New("corr: empty pair subset")
		}
		sel := append([]int(nil), cfg.Pairs...)
		for i, id := range sel {
			if id < 0 || id >= len(e.pairs) {
				return nil, fmt.Errorf("corr: pair id %d outside [0,%d)", id, len(e.pairs))
			}
			if i > 0 && id <= sel[i-1] {
				return nil, fmt.Errorf("corr: pair subset not strictly ascending at index %d", i)
			}
		}
		pairIdx = sel
	} else {
		pairIdx = make([]int, len(e.pairs))
		for i := range pairIdx {
			pairIdx[i] = i
		}
	}
	e.sel = pairIdx
	e.tiles = buildTiles(pairIdx, e.pairs, cfg.tileSize())
	// buildTiles returns positions into pairIdx; remap them to canonical
	// pair ids so matrix() indexes e.pairs/e.fits/Matrix slots uniformly
	// whether or not a subset is selected.
	for _, tile := range e.tiles {
		for i, pos := range tile {
			tile[i] = pairIdx[pos]
		}
	}
	switch cfg.Type {
	case Pearson:
		e.sums = make([]float64, n)
		e.sumSqs = make([]float64, n)
		e.invs = make([]float64, n)
	case Maronna, Combined:
		// Successive pushes slide each pair's window by one point, so
		// the previous matrix's converged fits seed the next one.
		e.fits = make([]Fit, len(e.pairs))
		e.est = NewMaronnaEstimator(cfg.maronna())
		e.inits = make([]ColdInit, n)
		e.initBuf = make([]float64, cfg.M)
	}
	return e, nil
}

// Ready reports whether M vectors have been pushed.
func (e *OnlineEngine) Ready() bool { return e.count >= e.cfg.M }

// Push ingests the return vector for one interval (len n). It returns
// the correlation matrix of the trailing M-interval window, or nil
// while the window is still warming up.
func (e *OnlineEngine) Push(rets []float64) (*Matrix, error) {
	if len(rets) != e.n {
		return nil, fmt.Errorf("corr: vector length %d, want %d", len(rets), e.n)
	}
	for i, x := range rets {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("corr: non-finite return for stock %d", i)
		}
		e.windows[i][e.head] = x
	}
	e.head = (e.head + 1) % e.cfg.M
	if e.count < e.cfg.M {
		e.count++
	}
	if !e.Ready() {
		return nil, nil
	}
	// Unroll the rings into contiguous scratch, oldest first.
	for i := range e.windows {
		w := e.windows[i]
		s := e.scratch[i]
		k := copy(s, w[e.head:])
		copy(s[k:], w[:e.head])
	}
	m := e.matrix()
	if e.cfg.RepairPSD {
		m, _, _ = EnsurePSD(m, 1e-10)
	}
	return m, nil
}

// matrix computes all pairwise coefficients of the current scratch
// windows: per-stock state first (window sums for Pearson, cold
// initialisers for the robust types when some pair needs one), then
// cache tiles of pairs scheduled across workers by work stealing.
// Every pair owns its matrix slot and warm-fit entry and worker
// batch kernels are exchanged only through the steal pool's
// happens-before, so any schedule yields the same matrix.
func (e *OnlineEngine) matrix() *Matrix {
	m := NewMatrix(e.n)
	pairs := e.pairs
	workers := len(e.pool)
	if workers > len(e.tiles) {
		workers = len(e.tiles)
	}
	switch e.cfg.Type {
	case Pearson:
		// Univariate sums and normalisers once per stock per push; each
		// pair then computes only the cross moment. Per-sum addition
		// order is identical to PearsonCorr's fused loop, so
		// coefficients are bit-identical to the per-pair form.
		fn := float64(e.cfg.M)
		for i, s := range e.scratch {
			var sx, sxx float64
			for _, v := range s {
				sx += v
				sxx += v * v
			}
			e.sums[i], e.sumSqs[i] = sx, sxx
			e.invs[i] = pearsonInvStd(sxx, sx, fn)
		}
		sched.Steal(workers, len(e.tiles), func(w, ti int) {
			for _, k := range e.tiles[ti] {
				p := pairs[k]
				x, y := e.scratch[p.I], e.scratch[p.J]
				var sxy float64
				for i := range x {
					sxy += x[i] * y[i]
				}
				rx, ry := e.invs[p.I], e.invs[p.J]
				if rx == 0 || ry == 0 {
					m.SetPair(k, 0)
					continue
				}
				m.SetPair(k, clampCorr((sxy-e.sums[p.I]*e.sums[p.J]/fn)*rx*ry))
			}
		})
	case Maronna, Combined:
		// Shared cold initialisers are only worth refreshing on pushes
		// where some chain actually restarts (the first ready window,
		// and after degenerate fits); mid-stream warm fallbacks are
		// rare and recompute inline, which yields identical values.
		e.haveInit = false
		for _, k := range e.sel {
			if !e.fits[k].Valid {
				for i, s := range e.scratch {
					e.inits[i] = ColdInitOf(e.initBuf, s)
				}
				e.haveInit = true
				break
			}
		}
		sched.Steal(workers, len(e.tiles), func(w, ti int) {
			b := e.pool[w]
			if b == nil {
				b = newPairBatch(e.est.Config(), !e.cfg.DisableSIMD)
				e.pool[w] = b
			}
			tile := e.tiles[ti]
			b.begin(e.cfg.M, len(tile))
			for li, k := range tile {
				p := pairs[k]
				var ix, iy *ColdInit
				if e.haveInit {
					ix, iy = &e.inits[p.I], &e.inits[p.J]
				}
				b.add(e.scratch[p.I], e.scratch[p.J], &e.fits[k], ix, iy, li, nil)
			}
			b.run(nil)
			for li, k := range tile {
				p := pairs[k]
				f := b.fits[li]
				e.fits[k] = f
				c := f.Rho
				if e.cfg.Type == Combined {
					c = CombinedFromFit(e.scratch[p.I], e.scratch[p.J], f.Rho, b.wOut[li])
				}
				m.SetPair(k, c)
			}
		})
	}
	return m
}
