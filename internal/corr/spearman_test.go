package corr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	// Any monotone transform has ρ = 1.
	y := []float64{1, 8, 27, 64, 125}
	if c := (SpearmanEstimator{}).Corr(x, y); math.Abs(c-1) > 1e-12 {
		t.Errorf("Spearman(monotone) = %v, want 1", c)
	}
	yd := []float64{10, 8, 5, 2, -3}
	if c := (SpearmanEstimator{}).Corr(x, yd); math.Abs(c+1) > 1e-12 {
		t.Errorf("Spearman(antitone) = %v, want -1", c)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties, average ranks: x = {1,2,2,3} → ranks {1, 2.5, 2.5, 4}.
	r := ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanOutlierResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := bivariate(rng, 300, 0.9)
	x[0], y[0] = 1e6, -1e6 // one catastrophic outlier
	pc := PearsonCorr(x, y)
	sc := (SpearmanEstimator{}).Corr(x, y)
	if sc < 0.8 {
		t.Errorf("Spearman = %v, want ≈0.9 despite outlier", sc)
	}
	if pc > sc {
		t.Errorf("Pearson (%v) should be more damaged than Spearman (%v)", pc, sc)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	e := SpearmanEstimator{}
	if e.Corr(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
	if e.Corr([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("mismatch should give 0")
	}
	if e.Corr([]float64{5, 5, 5}, []float64{1, 2, 3}) != 0 {
		t.Error("constant should give 0")
	}
	if e.Type() != SpearmanType {
		t.Error("Type wrong")
	}
}

func TestSpearmanNotInPaperTreatments(t *testing.T) {
	for _, ty := range Types() {
		if ty == SpearmanType {
			t.Error("Spearman must not be part of the paper's treatment set")
		}
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	e := SpearmanEstimator{}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 3
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		c := e.Corr(x, y)
		if math.IsNaN(c) || c < -1 || c > 1 {
			return false
		}
		// Invariance under strictly monotone transform of x.
		tx := make([]float64, n)
		for i := range x {
			tx[i] = math.Exp(x[i])
		}
		return math.Abs(e.Corr(tx, y)-c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
