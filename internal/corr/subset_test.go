package corr

import (
	"math"
	"strings"
	"testing"
)

// TestOnlineEnginePairSubset pins the partition seam the signal broker
// relies on: a subset engine's selected-pair coefficients are
// bit-identical to a full engine's, unselected matrix slots stay zero,
// and a snapshot/restore of the subset engine resumes its warm chain
// exactly.
func TestOnlineEnginePairSubset(t *testing.T) {
	n, T, m := 8, 48, 12
	rets := syntheticReturns(41, n, T)
	subset := []int{1, 4, 9, 13, 20, 27}
	for _, ty := range []Type{Pearson, Maronna, Combined} {
		t.Run(ty.String(), func(t *testing.T) {
			full, err := NewOnlineEngine(EngineConfig{Type: ty, M: m, Workers: 2}, n)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := NewOnlineEngine(EngineConfig{Type: ty, M: m, Workers: 3, Pairs: subset, TileSize: 2}, n)
			if err != nil {
				t.Fatal(err)
			}
			selected := make(map[int]bool, len(subset))
			for _, id := range subset {
				selected[id] = true
			}
			nPairs := n * (n - 1) / 2
			vec := make([]float64, n)
			for u := 0; u < T; u++ {
				for i := 0; i < n; i++ {
					vec[i] = rets[i][u]
				}
				mf, err := full.Push(vec)
				if err != nil {
					t.Fatal(err)
				}
				ms, err := sub.Push(vec)
				if err != nil {
					t.Fatal(err)
				}
				if (mf == nil) != (ms == nil) {
					t.Fatalf("u=%d: readiness mismatch", u)
				}
				if mf == nil {
					continue
				}
				for k := 0; k < nPairs; k++ {
					got := ms.AtPair(k)
					if selected[k] {
						if math.Float64bits(got) != math.Float64bits(mf.AtPair(k)) {
							t.Fatalf("u=%d pair %d: subset %v != full %v", u, k, got, mf.AtPair(k))
						}
					} else if got != 0 {
						t.Fatalf("u=%d pair %d: unselected slot = %v, want 0", u, k, got)
					}
				}
			}
		})
	}
}

// TestOnlineEnginePairSubsetSnapshotResume restores a subset engine's
// snapshot into a fresh identically-configured engine mid-stream and
// requires bit-identical continuation — the broker's per-partition
// state-store contract.
func TestOnlineEnginePairSubsetSnapshotResume(t *testing.T) {
	n, T, m, cut := 6, 40, 10, 24
	rets := syntheticReturns(43, n, T)
	subset := []int{0, 3, 7, 11, 14}
	cfg := EngineConfig{Type: Combined, M: m, Pairs: subset}
	orig, err := NewOnlineEngine(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float64, n)
	push := func(e *OnlineEngine, u int) *Matrix {
		for i := 0; i < n; i++ {
			vec[i] = rets[i][u]
		}
		mx, err := e.Push(vec)
		if err != nil {
			t.Fatal(err)
		}
		return mx
	}
	for u := 0; u < cut; u++ {
		push(orig, u)
	}
	snap := orig.Snapshot()

	resumed, err := NewOnlineEngine(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for u := cut; u < T; u++ {
		mo := push(orig, u)
		mr := push(resumed, u)
		for _, k := range subset {
			if math.Float64bits(mo.AtPair(k)) != math.Float64bits(mr.AtPair(k)) {
				t.Fatalf("u=%d pair %d: resumed %v != original %v", u, k, mr.AtPair(k), mo.AtPair(k))
			}
		}
	}
}

func TestOnlineEnginePairSubsetFingerprint(t *testing.T) {
	n, m := 6, 10
	full, _ := NewOnlineEngine(EngineConfig{Type: Pearson, M: m}, n)
	subA, _ := NewOnlineEngine(EngineConfig{Type: Pearson, M: m, Pairs: []int{0, 2}}, n)
	subB, _ := NewOnlineEngine(EngineConfig{Type: Pearson, M: m, Pairs: []int{0, 3}}, n)
	if full.Fingerprint() == subA.Fingerprint() {
		t.Error("subset fingerprint should differ from full")
	}
	if subA.Fingerprint() == subB.Fingerprint() {
		t.Error("different subsets should fingerprint differently")
	}
	if !strings.Contains(subA.Fingerprint(), "pairs=2:") {
		t.Errorf("subset fingerprint %q missing pair count", subA.Fingerprint())
	}
}

func TestOnlineEnginePairSubsetErrors(t *testing.T) {
	n, m := 5, 8
	cases := []struct {
		name string
		cfg  EngineConfig
	}{
		{"repair-psd", EngineConfig{Type: Pearson, M: m, Pairs: []int{0, 1}, RepairPSD: true}},
		{"empty", EngineConfig{Type: Pearson, M: m, Pairs: []int{}}},
		{"out-of-range", EngineConfig{Type: Pearson, M: m, Pairs: []int{0, 99}}},
		{"negative", EngineConfig{Type: Pearson, M: m, Pairs: []int{-1, 2}}},
		{"descending", EngineConfig{Type: Pearson, M: m, Pairs: []int{3, 1}}},
		{"duplicate", EngineConfig{Type: Pearson, M: m, Pairs: []int{2, 2}}},
	}
	for _, tc := range cases {
		if _, err := NewOnlineEngine(tc.cfg, n); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
