package corr

import (
	"fmt"
	"os"
	"sync/atomic"
)

// SIMD dispatch. The batched Maronna kernels (pairBatch, pairBatch32)
// have a hand-written amd64 AVX2 backend that executes the weight
// passes in lane-major lockstep: the active lanes' window data is
// transposed into obs-major tiles and four (f64) or eight (f32) lanes
// advance per vector instruction, each lane's accumulators pinned to
// its own vector slot. Because a lane's operation sequence is exactly
// the scalar reference's — same expressions, same order, one IEEE
// operation per IEEE operation — the f64 vector path is bit-identical
// to the pure-Go kernel (see DESIGN.md §10 for the full argument).
//
// Dispatch is resolved once at process start from CPUID (AVX2 plus OS
// YMM-state support) and can be forced down to the scalar tier three
// ways, strongest first:
//
//   - the `noasm` build tag compiles the assembly out entirely;
//   - the MM_NOSIMD environment variable (any non-empty value)
//     disables it process-wide at init;
//   - SetSIMDMode("off") — the `-simd=off` CLI flag on mmbacktest and
//     mmscale — disables it process-wide at runtime;
//
// and per request via EngineConfig.DisableSIMD, which is what the
// bench harness uses to A/B the tiers inside one process. The scalar
// fallback is the pre-SIMD code, unchanged, so non-amd64 builds and
// hosts without AVX2 lose nothing but speed.

// SIMD dispatch tier names, as reported by SIMDTier.
const (
	// SIMDTierScalar is the pure-Go fallback: the pre-SIMD batched
	// kernel, used on non-amd64 builds, `noasm` builds, hosts without
	// AVX2, and whenever SIMD is disabled by env, flag or config.
	SIMDTierScalar = "scalar"
	// SIMDTierAVX2 is the amd64 AVX2 backend: 4-wide f64 and 8-wide
	// f32 lane-major kernels.
	SIMDTierAVX2 = "avx2"
)

// simdSupported reports whether the running host can execute the
// vector kernels at all (resolved once at init by the arch-specific
// detection; constant false on non-amd64 and noasm builds).
var simdSupported = simdDetect()

// simdModeOff is the process-wide runtime kill switch (SetSIMDMode).
var simdModeOff atomic.Bool

// simdEnvOff is the MM_NOSIMD kill switch, resolved once at init. It
// outranks SetSIMDMode: a flag default of "auto" must not silently
// re-enable a tier the operator disabled in the environment.
var simdEnvOff = os.Getenv("MM_NOSIMD") != ""

// SetSIMDMode selects the process-wide SIMD dispatch mode: "auto"
// (use the best supported tier) or "off" (force the scalar tier).
// The f64 tiers produce bit-identical results, so switching modes
// never changes output — only speed. "auto" does not override the
// MM_NOSIMD environment variable. Returns an error for any other
// mode string.
func SetSIMDMode(mode string) error {
	switch mode {
	case "auto":
		simdModeOff.Store(false)
	case "off":
		simdModeOff.Store(true)
	default:
		return fmt.Errorf("corr: unknown SIMD mode %q (want auto or off)", mode)
	}
	return nil
}

// SIMDSupported reports the highest tier the host and build can
// execute, ignoring the env/flag kill switches.
func SIMDSupported() string {
	if simdSupported {
		return SIMDTierAVX2
	}
	return SIMDTierScalar
}

// SIMDTier reports the dispatch tier new batch kernels will actually
// use: the supported tier unless MM_NOSIMD or SetSIMDMode("off")
// forced the scalar path. Per-request EngineConfig.DisableSIMD is not
// reflected here.
func SIMDTier() string {
	if simdActive() {
		return SIMDTierAVX2
	}
	return SIMDTierScalar
}

// simdActive resolves the process-wide dispatch decision.
func simdActive() bool {
	return simdSupported && !simdEnvOff && !simdModeOff.Load()
}

// simdProfiling gates the pack/run wall-clock telemetry of the SIMD
// batch path (RobustStats.SIMDPackNs / SIMDRunNs). It costs four
// clock reads per batch run, so it is off by default and enabled only
// by the bench harness to measure the transpose overhead.
var simdProfiling atomic.Bool

// SetSIMDProfiling enables or disables SIMD pack/run wall-clock
// telemetry on batch runs that carry a RobustStats collector.
func SetSIMDProfiling(on bool) { simdProfiling.Store(on) }
