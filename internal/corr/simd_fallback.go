//go:build !amd64 || noasm

package corr

// Pure-Go half of the SIMD dispatch: on non-amd64 builds and under
// the `noasm` tag there is no vector backend, simdDetect reports
// false, and the batch kernels run the scalar path. The kernel stubs
// exist only so batch.go/batch32.go compile everywhere; dispatch
// guarantees they are never called (pairBatch.simd / pairBatch32
// parent dispatch is false when simdDetect is).

func simdDetect() bool { return false }

func maronnaLocation4(xt, yt *float64, m int, t1, t2, i11, i22, i12 *float64, k, k2 float64, sw, sx, sy *float64) {
	panic("corr: maronnaLocation4 called without SIMD support")
}

func maronnaScatter4(xt, yt, wt *float64, m int, t1, t2, i11, i22, i12 *float64, k2 float64, n11, n22, n12 *float64) {
	panic("corr: maronnaScatter4 called without SIMD support")
}

func maronnaLocation8f(xt, yt *float32, m int, t1, t2, i11, i22, i12 *float32, k, k2 float32, sw, sx, sy *float32) {
	panic("corr: maronnaLocation8f called without SIMD support")
}

func maronnaScatter8f(xt, yt *float32, m int, t1, t2, i11, i22, i12 *float32, k2 float32, n11, n22, n12 *float32) {
	panic("corr: maronnaScatter8f called without SIMD support")
}
