// Package corr implements the correlation measures and the parallel
// sliding-window correlation engine at the core of MarketMiner.
//
// The paper compares three measures: the classical Pearson coefficient,
// the robust Maronna M-estimator of bivariate scatter (Maronna 1976,
// parallelised in Chilson et al. 2006), and a "Combined" measure. The
// engine computes, for every unordered pair of a stock universe and
// every grid interval s ≥ M, the correlation of the last M log-returns
// — "the enabling aspect of this market-wide strategy is the ability to
// quickly compute a large correlation matrix using a sliding window of
// recent data points".
package corr

import (
	"fmt"
	"math"
	"strings"
)

// Type identifies a correlation measure (the paper's Ctype treatment).
type Type int

// The three treatments of the paper's Section V experiment.
const (
	Pearson Type = iota
	Maronna
	Combined
)

// Types lists all measures in canonical order.
func Types() []Type { return []Type{Pearson, Maronna, Combined} }

// String returns the measure name as printed in Tables III–V.
func (t Type) String() string {
	switch t {
	case Pearson:
		return "Pearson"
	case Maronna:
		return "Maronna"
	case Combined:
		return "Combined"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses a case-insensitive measure name.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "pearson":
		return Pearson, nil
	case "maronna":
		return Maronna, nil
	case "combined":
		return Combined, nil
	default:
		return 0, fmt.Errorf("corr: unknown correlation type %q", s)
	}
}

// PearsonCorr returns the Pearson product-moment correlation of x and
// y, which must have equal positive length. Degenerate inputs (zero
// variance) yield 0, the convention used throughout the engine: an
// untradeable pair rather than a NaN that would poison downstream
// statistics.
func PearsonCorr(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	fn := float64(n)
	vx := sxx - sx*sx/fn
	vy := syy - sy*sy/fn
	if vx <= 0 || vy <= 0 {
		return 0
	}
	c := (sxy - sx*sy/fn) / math.Sqrt(vx*vy)
	return clampCorr(c)
}

// WeightedPearson returns the weighted Pearson correlation of x and y
// under observation weights w (w_i ≥ 0, not all zero). It backs the
// Combined measure, which reuses the Maronna robustness weights to
// down-weight outlying observations inside an otherwise classical
// estimator.
func WeightedPearson(x, y, w []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) || n != len(w) {
		return 0
	}
	var sw, sx, sy float64
	for i := 0; i < n; i++ {
		sw += w[i]
		sx += w[i] * x[i]
		sy += w[i] * y[i]
	}
	if sw <= 0 {
		return 0
	}
	mx, my := sx/sw, sy/sw
	var vx, vy, cxy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		vx += w[i] * dx * dx
		vy += w[i] * dy * dy
		cxy += w[i] * dx * dy
	}
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return clampCorr(cxy / math.Sqrt(vx*vy))
}

// clampCorr forces rounding residue back into [-1, 1].
func clampCorr(c float64) float64 {
	if c > 1 {
		return 1
	}
	if c < -1 {
		return -1
	}
	if math.IsNaN(c) {
		return 0
	}
	return c
}

// Estimator computes a correlation coefficient from two equal-length
// return windows. Implementations must be safe for concurrent use by
// multiple goroutines (the engine shards pairs across workers).
type Estimator interface {
	// Corr returns the coefficient in [-1, 1].
	Corr(x, y []float64) float64
	// Type reports which measure the estimator implements.
	Type() Type
}

// pearsonEstimator is the stateless Pearson Estimator.
type pearsonEstimator struct{}

func (pearsonEstimator) Corr(x, y []float64) float64 { return PearsonCorr(x, y) }
func (pearsonEstimator) Type() Type                  { return Pearson }

// NewEstimator returns the canonical estimator for a measure, using
// DefaultMaronnaConfig for the robust measures.
func NewEstimator(t Type) (Estimator, error) {
	switch t {
	case Pearson:
		return pearsonEstimator{}, nil
	case Maronna:
		return NewMaronnaEstimator(DefaultMaronnaConfig()), nil
	case Combined:
		return NewCombinedEstimator(DefaultMaronnaConfig()), nil
	default:
		return nil, fmt.Errorf("corr: unknown type %v", t)
	}
}
