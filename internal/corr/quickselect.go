package corr

// Order-statistic selection for the robust initialisation. The cold
// start of every Maronna fit needs three medians (two locations, one
// MAD per coordinate); the sort-based version cost O(m log m) each,
// which dominated cold windows. Quickselect gives the same order
// statistics in expected O(m).

// insertionThreshold is the partition size below which selectKth
// finishes with insertion sort; tiny partitions are faster to sort
// than to keep partitioning.
const insertionThreshold = 12

// selectKth partially reorders buf so that buf[k] holds the k-th
// smallest element (0-based), everything before it is ≤ buf[k] and
// everything after it is ≥ buf[k]. Iterative Hoare quickselect with a
// median-of-three pivot; expected O(len(buf)), and deterministic for a
// given input ordering. buf must contain no NaNs (the engine validates
// returns upstream).
func selectKth(buf []float64, k int) {
	lo, hi := 0, len(buf)-1
	for hi-lo >= insertionThreshold {
		// Median-of-three pivot: order buf[lo], buf[mid], buf[hi] and
		// use the middle value. This defeats the O(m²) sorted/reverse
		// cases that matter for slowly-varying return windows.
		mid := lo + (hi-lo)/2
		if buf[mid] < buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] < buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[hi] < buf[mid] {
			buf[hi], buf[mid] = buf[mid], buf[hi]
		}
		pivot := buf[mid]

		// Hoare partition around the pivot value.
		i, j := lo, hi
		for i <= j {
			for buf[i] < pivot {
				i++
			}
			for buf[j] > pivot {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		// Recurse (iteratively) into the side holding k only.
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return // j < k < i: buf[k] already in final position
		}
	}
	// Small remainder: insertion sort settles every position in [lo, hi].
	for i := lo + 1; i <= hi; i++ {
		v := buf[i]
		j := i - 1
		for j >= lo && buf[j] > v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
}

// medianSelect returns the median of buf, reordering it in place.
// Exact same value as sorting and reading the middle element(s), in
// expected O(len(buf)).
func medianSelect(buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return 0
	}
	h := n / 2
	selectKth(buf, h)
	m := buf[h]
	if n%2 == 1 {
		return m
	}
	// Even length: the (h-1)-th order statistic is the maximum of the
	// left partition, which selectKth left entirely ≤ buf[h].
	lo := buf[0]
	for _, v := range buf[1:h] {
		if v > lo {
			lo = v
		}
	}
	return (lo + m) / 2
}
