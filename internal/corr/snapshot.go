package corr

import (
	"fmt"
	"math"
)

// EngineSnapshotSchema identifies the serialized warm-state layout of
// an OnlineEngine. Bump it whenever the meaning of a field changes so
// stale snapshots are rejected instead of silently misread.
const EngineSnapshotSchema = "marketminer/online-engine/v1"

// FitState is the serializable mirror of Fit. The engine's warm-start
// chain is deterministic in these fields, so restoring them (plus the
// ring windows) resumes the robust iteration exactly where the crashed
// process left it.
type FitState struct {
	T1        float64 `json:"t1"`
	T2        float64 `json:"t2"`
	V11       float64 `json:"v11"`
	V22       float64 `json:"v22"`
	V12       float64 `json:"v12"`
	Rho       float64 `json:"rho"`
	Iters     int     `json:"iters"`
	Converged bool    `json:"converged"`
	Seeded    bool    `json:"seeded"`
	Valid     bool    `json:"valid"`
}

// EngineSnapshot is the complete warm state of an OnlineEngine at an
// interval boundary: the ring windows (as stored, head-aligned), the
// ring cursor, and the per-pair warm fits of the robust types. Shared
// per-push state (window sums, cold initialisers, scratch copies) is
// deliberately absent — it is recomputed from the windows on the next
// Push, so a restored engine produces bit-identical matrices to one
// that never stopped.
type EngineSnapshot struct {
	Schema  string      `json:"schema"`
	Type    string      `json:"type"`
	N       int         `json:"n"`
	M       int         `json:"m"`
	Head    int         `json:"head"`
	Count   int         `json:"count"`
	Windows [][]float64 `json:"windows"`
	Fits    []FitState  `json:"fits,omitempty"`
}

// Fingerprint summarises the configuration a snapshot is only valid
// for. Snapshot stores embed it so a snapshot taken under one engine
// configuration is never restored into another. Subset engines (a
// partition processor's slice of the triangle) append a hash of the
// selected pair ids, so a snapshot never crosses partition boundaries
// even when shapes coincide.
func (e *OnlineEngine) Fingerprint() string {
	fp := fmt.Sprintf("%s|%s|n=%d|m=%d|psd=%v", EngineSnapshotSchema, e.cfg.Type, e.n, e.cfg.M, e.cfg.RepairPSD)
	if len(e.sel) != len(e.pairs) {
		h := uint64(14695981039346656037) // FNV-64a offset basis
		for _, id := range e.sel {
			h = (h ^ uint64(id)) * 1099511628211
		}
		fp += fmt.Sprintf("|pairs=%d:%016x", len(e.sel), h)
	}
	return fp
}

// Snapshot captures the engine's warm state. The result shares no
// memory with the engine, so it can be serialized (or mutated) while
// the engine keeps pushing.
func (e *OnlineEngine) Snapshot() *EngineSnapshot {
	s := &EngineSnapshot{
		Schema: EngineSnapshotSchema,
		Type:   e.cfg.Type.String(),
		N:      e.n,
		M:      e.cfg.M,
		Head:   e.head,
		Count:  e.count,
	}
	s.Windows = make([][]float64, e.n)
	for i, w := range e.windows {
		s.Windows[i] = append([]float64(nil), w...)
	}
	if e.fits != nil {
		s.Fits = make([]FitState, len(e.fits))
		for k, f := range e.fits {
			s.Fits[k] = FitState{
				T1: f.T1, T2: f.T2,
				V11: f.V11, V22: f.V22, V12: f.V12,
				Rho: f.Rho, Iters: f.Iters,
				Converged: f.Converged, Seeded: f.Seeded, Valid: f.Valid,
			}
		}
	}
	return s
}

// Restore replaces the engine's warm state with a snapshot taken from
// an identically configured engine. Every field is validated before
// anything is touched — a snapshot that fails validation (wrong shape,
// non-finite values, out-of-range coefficients) leaves the engine
// exactly as it was, so callers can log the error and cold-start.
func (e *OnlineEngine) Restore(s *EngineSnapshot) error {
	if err := e.validateSnapshot(s); err != nil {
		return fmt.Errorf("corr: restore: %w", err)
	}
	for i, w := range s.Windows {
		copy(e.windows[i], w)
	}
	e.head = s.Head
	e.count = s.Count
	for k := range e.fits {
		f := s.Fits[k]
		e.fits[k] = Fit{
			T1: f.T1, T2: f.T2,
			V11: f.V11, V22: f.V22, V12: f.V12,
			Rho: f.Rho, Iters: f.Iters,
			Converged: f.Converged, Seeded: f.Seeded, Valid: f.Valid,
		}
	}
	e.haveInit = false
	return nil
}

func (e *OnlineEngine) validateSnapshot(s *EngineSnapshot) error {
	if s == nil {
		return fmt.Errorf("nil snapshot")
	}
	if s.Schema != EngineSnapshotSchema {
		return fmt.Errorf("schema %q, want %q", s.Schema, EngineSnapshotSchema)
	}
	if s.Type != e.cfg.Type.String() {
		return fmt.Errorf("estimator type %q, engine is %q", s.Type, e.cfg.Type)
	}
	if s.N != e.n || s.M != e.cfg.M {
		return fmt.Errorf("shape n=%d m=%d, engine is n=%d m=%d", s.N, s.M, e.n, e.cfg.M)
	}
	if s.Head < 0 || s.Head >= s.M {
		return fmt.Errorf("head %d outside ring [0,%d)", s.Head, s.M)
	}
	if s.Count < 0 || s.Count > s.M {
		return fmt.Errorf("count %d outside [0,%d]", s.Count, s.M)
	}
	if len(s.Windows) != s.N {
		return fmt.Errorf("%d windows, want %d", len(s.Windows), s.N)
	}
	for i, w := range s.Windows {
		if len(w) != s.M {
			return fmt.Errorf("window %d has %d points, want %d", i, len(w), s.M)
		}
		for j, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("window %d point %d is non-finite (%v)", i, j, v)
			}
		}
	}
	wantFits := 0
	if e.fits != nil {
		wantFits = len(e.fits)
	}
	if len(s.Fits) != wantFits {
		return fmt.Errorf("%d warm fits, engine needs %d", len(s.Fits), wantFits)
	}
	for k, f := range s.Fits {
		for _, v := range [...]float64{f.T1, f.T2, f.V11, f.V22, f.V12, f.Rho} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("fit %d has a non-finite field (%+v)", k, f)
			}
		}
		if f.Iters < 0 {
			return fmt.Errorf("fit %d has negative iteration count %d", k, f.Iters)
		}
		if f.Valid {
			if f.Rho < -1 || f.Rho > 1 {
				return fmt.Errorf("fit %d rho %v outside [-1,1]", k, f.Rho)
			}
			if f.V11 < 0 || f.V22 < 0 {
				return fmt.Errorf("fit %d has negative scatter (v11=%v v22=%v)", k, f.V11, f.V22)
			}
		}
	}
	return nil
}
