package corr

import (
	"math"
	"sort"
)

// MaronnaConfig tunes the bivariate Maronna M-estimator iteration.
type MaronnaConfig struct {
	// K is the Huber tuning constant on the Mahalanobis distance d.
	// Observations with d ≤ K get full weight; beyond K the weight
	// decays as K/d (location) and K²/d² (scatter), giving the smooth
	// down-weighting of outliers the paper relies on.
	K float64
	// MaxIter bounds the fixed-point iteration.
	MaxIter int
	// Tol is the convergence threshold on the relative change of the
	// scatter matrix between iterations.
	Tol float64
}

// DefaultMaronnaConfig uses K = 2.0 (≈ 95th percentile of a bivariate
// normal's Mahalanobis distance is 2.45; 2.0 trims a bit harder, which
// suits contaminated tick data), 50 iterations and 1e-8 tolerance.
func DefaultMaronnaConfig() MaronnaConfig {
	return MaronnaConfig{K: 2.0, MaxIter: 50, Tol: 1e-8}
}

// MaronnaEstimator computes the robust correlation coefficient via
// Maronna's M-estimator of bivariate location and scatter. The
// estimator iterates
//
//	t   = Σ w1(dᵢ)·xᵢ / Σ w1(dᵢ)
//	V   = (1/n) Σ w2(dᵢ²)·(xᵢ−t)(xᵢ−t)ᵀ
//	dᵢ² = (xᵢ−t)ᵀ V⁻¹ (xᵢ−t)
//
// with Huber weights w1(d) = min(1, K/d), w2(d²) = min(1, K²/d²), then
// reads the correlation off the scatter matrix, ρ = V₁₂/√(V₁₁V₂₂).
// Because correlation is scale-free, the usual consistency constant on
// V cancels and is omitted.
//
// The zero value is not usable; construct with NewMaronnaEstimator.
// The estimator itself is stateless between calls and safe for
// concurrent use; scratch space is allocated per call (the engine
// amortises this with per-worker scratch buffers via CorrScratch).
type MaronnaEstimator struct {
	cfg MaronnaConfig
}

// NewMaronnaEstimator validates and captures cfg.
func NewMaronnaEstimator(cfg MaronnaConfig) *MaronnaEstimator {
	if cfg.K <= 0 {
		cfg.K = 2.0
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	return &MaronnaEstimator{cfg: cfg}
}

// Type implements Estimator.
func (e *MaronnaEstimator) Type() Type { return Maronna }

// Corr implements Estimator.
func (e *MaronnaEstimator) Corr(x, y []float64) float64 {
	c, _ := e.CorrScratch(x, y, nil)
	return c
}

// Scratch holds reusable per-worker buffers for the iteration.
type Scratch struct {
	w    []float64 // final per-observation scatter weights
	sbuf []float64 // sorting buffer for medians
}

// Weights returns the per-observation weights of the last CorrScratch
// call (valid until the next call). The Combined estimator feeds them
// into a weighted Pearson computation.
func (s *Scratch) Weights() []float64 { return s.w }

// CorrScratch computes the Maronna correlation using (and growing) the
// provided scratch buffers; pass nil to allocate fresh ones. It returns
// the coefficient and the scratch for reuse.
func (e *MaronnaEstimator) CorrScratch(x, y []float64, sc *Scratch) (float64, *Scratch) {
	n := len(x)
	if sc == nil {
		sc = &Scratch{}
	}
	if n == 0 || n != len(y) {
		sc.w = sc.w[:0]
		return 0, sc
	}
	if cap(sc.w) < n {
		sc.w = make([]float64, n)
		sc.sbuf = make([]float64, n)
	}
	sc.w = sc.w[:n]
	sc.sbuf = sc.sbuf[:n]
	for i := range sc.w {
		sc.w[i] = 1
	}

	// Robust initialisation: coordinate-wise median location and
	// MAD-based diagonal scatter with the sample cross-moment.
	t1 := medianInto(sc.sbuf, x)
	t2 := medianInto(sc.sbuf, y)
	s1 := madInto(sc.sbuf, x, t1)
	s2 := madInto(sc.sbuf, y, t2)
	if s1 == 0 {
		s1 = tinyScale(x, t1)
	}
	if s2 == 0 {
		s2 = tinyScale(y, t2)
	}
	if s1 == 0 || s2 == 0 {
		// A genuinely constant series has no defined correlation.
		return 0, sc
	}
	v11 := s1 * s1
	v22 := s2 * s2
	var v12 float64 // start from zero cross-scatter: no spurious sign

	k := e.cfg.K
	k2 := k * k
	for iter := 0; iter < e.cfg.MaxIter; iter++ {
		det := v11*v22 - v12*v12
		if det <= 0 || v11 <= 0 || v22 <= 0 {
			// Scatter collapsed (perfectly dependent or degenerate
			// sample): read the correlation off the current V.
			break
		}
		// Inverse of the 2x2 scatter.
		i11 := v22 / det
		i22 := v11 / det
		i12 := -v12 / det

		// Location step with Huber w1.
		var sw, sx, sy float64
		for i := 0; i < n; i++ {
			dx, dy := x[i]-t1, y[i]-t2
			d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
			w := 1.0
			if d2 > k2 {
				w = k / math.Sqrt(d2)
			}
			sw += w
			sx += w * x[i]
			sy += w * y[i]
		}
		if sw == 0 {
			break
		}
		t1n, t2n := sx/sw, sy/sw

		// Scatter step with Huber w2.
		var n11, n22, n12 float64
		for i := 0; i < n; i++ {
			dx, dy := x[i]-t1n, y[i]-t2n
			d2 := dx*dx*i11 + 2*dx*dy*i12 + dy*dy*i22
			w := 1.0
			if d2 > k2 {
				w = k2 / d2
			}
			sc.w[i] = w
			n11 += w * dx * dx
			n22 += w * dy * dy
			n12 += w * dx * dy
		}
		fn := float64(n)
		n11 /= fn
		n22 /= fn
		n12 /= fn

		// Relative change of the scatter for the stopping rule.
		den := math.Abs(v11) + math.Abs(v22) + math.Abs(v12)
		num := math.Abs(n11-v11) + math.Abs(n22-v22) + math.Abs(n12-v12)
		t1, t2 = t1n, t2n
		v11, v22, v12 = n11, n22, n12
		if den > 0 && num/den < e.cfg.Tol {
			break
		}
	}
	if v11 <= 0 || v22 <= 0 {
		return 0, sc
	}
	return clampCorr(v12 / math.Sqrt(v11*v22)), sc
}

// medianInto computes the median of xs using buf as sorting space.
func medianInto(buf, xs []float64) float64 {
	buf = buf[:len(xs)]
	copy(buf, xs)
	sort.Float64s(buf)
	n := len(buf)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

// madInto computes the median absolute deviation about center, scaled
// by 1.4826 for consistency at the normal.
func madInto(buf, xs []float64, center float64) float64 {
	buf = buf[:len(xs)]
	for i, x := range xs {
		buf[i] = math.Abs(x - center)
	}
	sort.Float64s(buf)
	n := len(buf)
	if n == 0 {
		return 0
	}
	var med float64
	if n%2 == 1 {
		med = buf[n/2]
	} else {
		med = (buf[n/2-1] + buf[n/2]) / 2
	}
	return 1.4826 * med
}

// tinyScale falls back to the standard deviation when the MAD is zero
// (more than half the sample identical — common for illiquid stocks
// whose BAM does not move every interval).
func tinyScale(xs []float64, center float64) float64 {
	var ss float64
	for _, x := range xs {
		d := x - center
		ss += d * d
	}
	if len(xs) == 0 {
		return 0
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CombinedEstimator implements the paper's third treatment. The paper
// never defines "Combined" formally; our interpretation (documented in
// DESIGN.md) is the average of the Maronna coefficient and a Pearson
// coefficient computed under Maronna's final robustness weights. Both
// halves are outlier-resistant, so the measure is more conservative
// (lower dispersion) than raw Pearson — matching the qualitative role
// Combined plays in the paper's results.
type CombinedEstimator struct {
	m *MaronnaEstimator
}

// NewCombinedEstimator builds a Combined estimator over the given
// Maronna configuration.
func NewCombinedEstimator(cfg MaronnaConfig) *CombinedEstimator {
	return &CombinedEstimator{m: NewMaronnaEstimator(cfg)}
}

// Type implements Estimator.
func (e *CombinedEstimator) Type() Type { return Combined }

// Corr implements Estimator.
func (e *CombinedEstimator) Corr(x, y []float64) float64 {
	c, _ := e.CorrScratch(x, y, nil)
	return c
}

// CorrScratch computes the Combined coefficient with reusable scratch.
func (e *CombinedEstimator) CorrScratch(x, y []float64, sc *Scratch) (float64, *Scratch) {
	mc, sc := e.m.CorrScratch(x, y, sc)
	if len(sc.w) != len(x) {
		return mc, sc
	}
	wp := WeightedPearson(x, y, sc.w)
	return clampCorr((mc + wp) / 2), sc
}
